// Package cashmere is a Go reproduction of Cashmere-2L, the two-level
// software coherent shared memory system of Stets et al. (SOSP 1997),
// together with the comparison protocols and the full evaluation
// harness of the paper.
//
// The original system ran on a cluster of AlphaServer SMPs connected by
// DEC's Memory Channel remote-write network, using virtual-memory page
// protection to detect shared accesses. This library reproduces the
// system on a simulated platform: a Memory Channel model with the
// paper's latencies and bandwidths, software page tables checked inline
// (a Go process cannot cede page-fault handling to a library), and
// per-processor virtual clocks driven by the paper's measured operation
// costs. Applications execute for real — the protocols move real data,
// and results are validated against sequential references — while
// speedups and protocol statistics come from virtual time.
//
// # Quick start
//
//	cfg := cashmere.Config{
//		Nodes:        4,
//		ProcsPerNode: 2,
//		Protocol:     cashmere.TwoLevel,
//		SharedWords:  1 << 16,
//	}
//	c, err := cashmere.New(cfg)
//	if err != nil { ... }
//	res := c.Run(func(p *cashmere.Proc) {
//		p.Store(p.ID(), int64(p.ID()))
//		p.Barrier()
//		sum := int64(0)
//		for i := 0; i < p.NProcs(); i++ {
//			sum += p.Load(i)
//		}
//		_ = sum
//	})
//	fmt.Println(res.ExecSeconds())
//
// Within the body, p.Load/p.Store (and LoadF/StoreF for float64 data)
// access the shared address space; p.Lock/p.Unlock, p.Barrier,
// p.SetFlag/p.WaitFlag synchronize with release-consistency semantics;
// p.Compute charges modelled computation time, and p.Poll charges the
// message-polling instrumentation the real system inserts at loop
// heads. Applications must be data-race-free: conflicting accesses must
// be separated by the provided synchronization operations, exactly as
// the paper requires.
//
// The benchmark suite of the paper (SOR, LU, Water, TSP, Gauss, Ilink,
// Em3d, Barnes) and the harness regenerating its tables and figures
// live under cmd/cashmere-bench; see DESIGN.md and EXPERIMENTS.md.
package cashmere

import (
	"cashmere/internal/core"
	"cashmere/internal/costs"
)

// Re-exported protocol engine types; see the internal/core documentation
// for details.
type (
	// Config describes a cluster and protocol configuration.
	Config = core.Config
	// Cluster is a simulated cluster ready to Run one program.
	Cluster = core.Cluster
	// Proc is the per-processor handle passed to the program body.
	Proc = core.Proc
	// Kind selects a coherence protocol.
	Kind = core.Kind
	// Result carries aggregated statistics and per-processor finish
	// times.
	Result = core.Result
	// CostModel holds the timing parameters of the simulated platform.
	CostModel = costs.Model
)

// The coherence protocols evaluated in the paper.
const (
	// TwoLevel is Cashmere-2L, the paper's contribution.
	TwoLevel = core.TwoLevel
	// TwoLevelSD is Cashmere-2LS, the shootdown variant.
	TwoLevelSD = core.TwoLevelSD
	// OneLevelDiff is Cashmere-1LD, one protocol node per processor
	// with twins and diffs.
	OneLevelDiff = core.OneLevelDiff
	// OneLevelWrite is Cashmere-1L, one protocol node per processor
	// with write doubling.
	OneLevelWrite = core.OneLevelWrite
)

// New builds a cluster for the given configuration.
func New(cfg Config) (*Cluster, error) { return core.New(cfg) }

// DefaultCosts returns the timing model of the paper's platform (eight
// AlphaServer 2100 4/233 nodes on a first-generation Memory Channel).
func DefaultCosts() CostModel { return costs.Default() }
