// Command cashmere-bench regenerates the evaluation of the Cashmere-2L
// paper: Tables 1-3, Figures 6-7, and the Section 3.3.4/3.3.5 ablations.
//
// Usage:
//
//	cashmere-bench -all            # everything (minutes at default sizes)
//	cashmere-bench -table 3       # one table (1, 2, 3, or "costs")
//	cashmere-bench -figure 7      # one figure (6 or 7)
//	cashmere-bench -ablation shootdown|lockfree|adaptive
//	cashmere-bench -quick -adaptive   # adaptive-policy ablation at 16:4
//	cashmere-bench -scaling 128:4  # scale-out sweep, 1-32 nodes at 4 procs/node
//	cashmere-bench -quick -all    # tiny problem sizes (seconds)
//	cashmere-bench -all -j 8      # eight experiment cells in parallel
//	cashmere-bench -all -json out.json -timeout 2m
//	cashmere-bench -table 3 -trace sor.json   # Perfetto trace of one cell
//	cashmere-bench -all -http :6060          # live /metrics, /status, pprof
//	cashmere-bench -table 3 -profile sor.txt  # hot-page report of one cell
//
// -trace records a structured event trace of one experiment cell
// (chosen with -trace-cell, default SOR/2L/32:4) and writes it as
// Chrome trace-event JSON, loadable at https://ui.perfetto.dev; with
// -json, the traced cell's results also carry a "trace" summary of
// event counts and latency histograms. See docs/TRACING.md.
//
// Experiment cells (application x protocol variant x topology) execute
// through a bounded worker pool; -j sets its width (default GOMAXPROCS).
// A panicking or timed-out cell is marked FAIL in the rendered output
// while the rest of the evaluation proceeds; any failure makes the
// command exit nonzero after rendering. -json records every completed
// cell (including failures) in a machine-readable results file whose
// schema is documented in EXPERIMENTS.md.
package main

import (
	"flag"
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"

	"cashmere/internal/bench"
	"cashmere/internal/cli"
	"cashmere/internal/metrics"
	"cashmere/internal/trace"
	"cashmere/internal/transport"
)

func main() {
	var o cli.BenchOptions
	o.Register(flag.CommandLine)
	flag.Parse()
	// Resolve the host-dependent sentinels internal/cli keeps stable for
	// the generated flag documentation.
	if o.Workers == 0 {
		o.Workers = runtime.GOMAXPROCS(0)
	}
	progressSet := false
	flag.Visit(func(f *flag.Flag) {
		if f.Name == "progress" {
			progressSet = true
		}
	})
	if !progressSet {
		o.Progress = stderrIsTerminal()
	}

	stopProfiles := startProfiles(o.CPUProfile, o.MemProfile)
	exit := func(code int) {
		stopProfiles()
		os.Exit(code)
	}

	tk, err := transport.ParseKind(o.Transport)
	if err != nil || tk == transport.TCP {
		if err == nil {
			err = fmt.Errorf(`the multi-process "tcp" backend runs through cashmere-run, not the in-process bench harness`)
		}
		fmt.Fprintln(os.Stderr, "cashmere-bench: -transport:", err)
		exit(2)
	}

	s := bench.NewSuite(o.Quick)
	s.SetTransport(tk)
	s.SetWorkers(o.Workers)
	s.SetTimeout(o.Timeout)
	if o.Progress {
		s.SetProgress(os.Stderr)
	}
	var sink *bench.JSONSink
	if o.JSON != "" {
		sink = bench.NewJSONSink(o.Quick, o.Workers)
		s.SetJSON(sink)
	}
	if o.HTTP != "" {
		reg := metrics.NewRegistry()
		s.SetMetrics(reg)
		srv, err := reg.Start(o.HTTP)
		if err != nil {
			fmt.Fprintln(os.Stderr, "cashmere-bench: -http:", err)
			exit(2)
		}
		fmt.Fprintf(os.Stderr, "cashmere-bench: serving metrics on http://%s/\n", srv.Addr)
		defer srv.Close()
	}
	if o.Trace != "" || o.Profile != "" {
		var pages map[int]bool
		if o.TracePages != "" {
			var err error
			pages, err = trace.ParsePageList(o.TracePages)
			if err != nil {
				fmt.Fprintln(os.Stderr, "cashmere-bench: -trace-pages:", err)
				exit(2)
			}
		}
		// Validate the cell label and normalize its topology through the
		// shared grammar, so "-trace-cell SOR/2L/32:4" and every other
		// topology-bearing flag reject bad input with the same message.
		label, _, err := bench.ParseCell(o.TraceCell)
		if err != nil {
			fmt.Fprintln(os.Stderr, "cashmere-bench: -trace-cell:", err)
			exit(2)
		}
		s.SetTrace(label, pages)
	}

	w := os.Stdout
	fail := func(err error) {
		if err != nil {
			s.Close()
			fmt.Fprintln(os.Stderr, "cashmere-bench:", err)
			exit(1)
		}
	}

	ran := false
	sep := func() { fmt.Fprintln(w) }

	if o.All {
		// Schedule the whole evaluation up front so later sections
		// compute while earlier ones render.
		s.PrefetchAll()
	}
	if o.All || o.Table == "costs" {
		bench.BasicCosts(w)
		sep()
		ran = true
	}
	if o.All || o.Table == "1" {
		fail(bench.Table1(w))
		sep()
		ran = true
	}
	if o.All || o.Table == "2" {
		s.Table2(w)
		sep()
		ran = true
	}
	if o.All || o.Table == "3" {
		fail(s.Table3(w))
		sep()
		ran = true
	}
	if o.All || o.Figure == "6" {
		fail(s.Figure6(w))
		sep()
		ran = true
	}
	if o.All || o.Figure == "7" {
		fail(s.Figure7(w))
		sep()
		ran = true
	}
	if o.All || o.Ablation == "shootdown" {
		fail(s.AblationShootdown(w))
		sep()
		ran = true
	}
	if o.All || o.Ablation == "lockfree" {
		fail(s.AblationLockFree(w))
		sep()
		ran = true
	}
	if o.Adaptive || o.Ablation == "adaptive" {
		fail(s.AblationAdaptive(w, bench.AdaptiveTopology(o.Quick)))
		sep()
		ran = true
	}
	if o.Scaling != "" {
		top, err := bench.ParseTopology(o.Scaling)
		if err != nil {
			s.Close()
			fmt.Fprintln(os.Stderr, "cashmere-bench: -scaling:", err)
			exit(2)
		}
		fail(s.Scaling(w, top))
		sep()
		ran = true
	}
	s.Close()
	if !ran {
		flag.Usage()
		exit(2)
	}

	if sink != nil {
		f, err := os.Create(o.JSON)
		fail(err)
		_, err = sink.WriteTo(f)
		if cerr := f.Close(); err == nil {
			err = cerr
		}
		fail(err)
	}

	if o.Trace != "" || o.Profile != "" {
		tr := s.TraceResult()
		if tr == nil {
			fmt.Fprintf(os.Stderr, "cashmere-bench: -trace/-profile: cell %s was not executed by the selected sections\n", o.TraceCell)
			exit(1)
		}
		if o.Trace != "" {
			f, err := os.Create(o.Trace)
			fail(err)
			err = trace.WriteChrome(f, tr, trace.ChromeOptions{})
			if cerr := f.Close(); err == nil {
				err = cerr
			}
			fail(err)
		}
		if o.Profile != "" {
			prof := metrics.BuildProfile(tr, 20)
			out := os.Stdout
			if o.Profile != "-" {
				f, err := os.Create(o.Profile)
				fail(err)
				out = f
			}
			fmt.Fprintf(out, "hot-page/hot-lock profile of %s\n\n", o.TraceCell)
			fail(prof.WriteText(out))
			if out != os.Stdout {
				fail(out.Close())
			}
		}
	}

	if fails := s.FailedCells(); len(fails) > 0 {
		fmt.Fprintf(os.Stderr, "cashmere-bench: %d cell(s) failed:\n", len(fails))
		for _, f := range fails {
			fmt.Fprintln(os.Stderr, " ", f)
		}
		exit(1)
	}
	stopProfiles()
}

// startProfiles starts a CPU profile and arranges for a heap profile,
// as requested; the returned stop function is idempotent and must run
// before every exit path so the profile files are complete.
func startProfiles(cpu, mem string) func() {
	var f *os.File
	if cpu != "" {
		var err error
		f, err = os.Create(cpu)
		if err == nil {
			err = pprof.StartCPUProfile(f)
		}
		if err != nil {
			fmt.Fprintln(os.Stderr, "cashmere-bench: cpuprofile:", err)
			os.Exit(1)
		}
	}
	return func() {
		if f != nil {
			pprof.StopCPUProfile()
			f.Close()
			f = nil
		}
		if mem != "" {
			g, err := os.Create(mem)
			if err != nil {
				fmt.Fprintln(os.Stderr, "cashmere-bench: memprofile:", err)
				mem = ""
				return
			}
			runtime.GC() // flush recently freed objects out of the profile
			if err := pprof.WriteHeapProfile(g); err != nil {
				fmt.Fprintln(os.Stderr, "cashmere-bench: memprofile:", err)
			}
			g.Close()
			mem = ""
		}
	}
}

// stderrIsTerminal reports whether stderr is a character device, the
// default for enabling the live progress line.
func stderrIsTerminal() bool {
	fi, err := os.Stderr.Stat()
	return err == nil && fi.Mode()&os.ModeCharDevice != 0
}
