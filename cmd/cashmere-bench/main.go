// Command cashmere-bench regenerates the evaluation of the Cashmere-2L
// paper: Tables 1-3, Figures 6-7, and the Section 3.3.4/3.3.5 ablations.
//
// Usage:
//
//	cashmere-bench -all            # everything (minutes at default sizes)
//	cashmere-bench -table 3       # one table (1, 2, 3, or "costs")
//	cashmere-bench -figure 7      # one figure (6 or 7)
//	cashmere-bench -ablation shootdown|lockfree
//	cashmere-bench -scaling 128:4  # scale-out sweep, 1-32 nodes at 4 procs/node
//	cashmere-bench -quick -all    # tiny problem sizes (seconds)
//	cashmere-bench -all -j 8      # eight experiment cells in parallel
//	cashmere-bench -all -json out.json -timeout 2m
//	cashmere-bench -table 3 -trace sor.json   # Perfetto trace of one cell
//	cashmere-bench -all -http :6060          # live /metrics, /status, pprof
//	cashmere-bench -table 3 -profile sor.txt  # hot-page report of one cell
//
// -trace records a structured event trace of one experiment cell
// (chosen with -trace-cell, default SOR/2L/32:4) and writes it as
// Chrome trace-event JSON, loadable at https://ui.perfetto.dev; with
// -json, the traced cell's results also carry a "trace" summary of
// event counts and latency histograms. See docs/TRACING.md.
//
// Experiment cells (application x protocol variant x topology) execute
// through a bounded worker pool; -j sets its width (default GOMAXPROCS).
// A panicking or timed-out cell is marked FAIL in the rendered output
// while the rest of the evaluation proceeds; any failure makes the
// command exit nonzero after rendering. -json records every completed
// cell (including failures) in a machine-readable results file whose
// schema is documented in EXPERIMENTS.md.
package main

import (
	"flag"
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"

	"cashmere/internal/bench"
	"cashmere/internal/metrics"
	"cashmere/internal/trace"
)

func main() {
	var (
		quick    = flag.Bool("quick", false, "use tiny problem sizes")
		all      = flag.Bool("all", false, "run every table, figure, and ablation")
		table    = flag.String("table", "", `table to regenerate: "1", "2", "3", or "costs"`)
		figure   = flag.String("figure", "", `figure to regenerate: "6" or "7"`)
		ablation = flag.String("ablation", "", `ablation to run: "shootdown" or "lockfree"`)
		scaling  = flag.String("scaling", "", `scale-out sweep up to this topology ("procs:procsPerNode", e.g. 128:4 sweeps 1-32 nodes)`)
		workers  = flag.Int("j", runtime.GOMAXPROCS(0), "experiment cells to execute in parallel")
		jsonPath = flag.String("json", "", "write machine-readable per-cell results to this file")
		timeout  = flag.Duration("timeout", 0, "per-cell wall-clock timeout (0 = none)")
		progress = flag.Bool("progress", stderrIsTerminal(), "live progress line on stderr")
		cpuProf  = flag.String("cpuprofile", "", "write a CPU profile to this file")
		memProf  = flag.String("memprofile", "", "write a heap profile to this file on exit")
		traceOut = flag.String("trace", "", "write a Chrome/Perfetto trace of the -trace-cell run to this file")
		traceCel = flag.String("trace-cell", "SOR/2L/32:4", "cell to trace, as app/variant/topology")
		tracePgs = flag.String("trace-pages", "", "comma-separated page numbers for per-page trace notes")
		httpAddr = flag.String("http", "", `serve live /metrics, /status, and pprof on this address (e.g. ":6060")`)
		profOut  = flag.String("profile", "", `write the -trace-cell run's hot-page/hot-lock report to this file ("-" = stdout)`)
	)
	flag.Parse()

	stopProfiles := startProfiles(*cpuProf, *memProf)
	exit := func(code int) {
		stopProfiles()
		os.Exit(code)
	}

	s := bench.NewSuite(*quick)
	s.SetWorkers(*workers)
	s.SetTimeout(*timeout)
	if *progress {
		s.SetProgress(os.Stderr)
	}
	var sink *bench.JSONSink
	if *jsonPath != "" {
		sink = bench.NewJSONSink(*quick, *workers)
		s.SetJSON(sink)
	}
	if *httpAddr != "" {
		reg := metrics.NewRegistry()
		s.SetMetrics(reg)
		srv, err := reg.Start(*httpAddr)
		if err != nil {
			fmt.Fprintln(os.Stderr, "cashmere-bench: -http:", err)
			exit(2)
		}
		fmt.Fprintf(os.Stderr, "cashmere-bench: serving metrics on http://%s/\n", srv.Addr)
		defer srv.Close()
	}
	if *traceOut != "" || *profOut != "" {
		var pages map[int]bool
		if *tracePgs != "" {
			var err error
			pages, err = trace.ParsePageList(*tracePgs)
			if err != nil {
				fmt.Fprintln(os.Stderr, "cashmere-bench: -trace-pages:", err)
				exit(2)
			}
		}
		// Validate the cell label and normalize its topology through the
		// shared grammar, so "-trace-cell SOR/2L/32:4" and every other
		// topology-bearing flag reject bad input with the same message.
		label, _, err := bench.ParseCell(*traceCel)
		if err != nil {
			fmt.Fprintln(os.Stderr, "cashmere-bench: -trace-cell:", err)
			exit(2)
		}
		s.SetTrace(label, pages)
	}

	w := os.Stdout
	fail := func(err error) {
		if err != nil {
			s.Close()
			fmt.Fprintln(os.Stderr, "cashmere-bench:", err)
			exit(1)
		}
	}

	ran := false
	sep := func() { fmt.Fprintln(w) }

	if *all {
		// Schedule the whole evaluation up front so later sections
		// compute while earlier ones render.
		s.PrefetchAll()
	}
	if *all || *table == "costs" {
		bench.BasicCosts(w)
		sep()
		ran = true
	}
	if *all || *table == "1" {
		fail(bench.Table1(w))
		sep()
		ran = true
	}
	if *all || *table == "2" {
		s.Table2(w)
		sep()
		ran = true
	}
	if *all || *table == "3" {
		fail(s.Table3(w))
		sep()
		ran = true
	}
	if *all || *figure == "6" {
		fail(s.Figure6(w))
		sep()
		ran = true
	}
	if *all || *figure == "7" {
		fail(s.Figure7(w))
		sep()
		ran = true
	}
	if *all || *ablation == "shootdown" {
		fail(s.AblationShootdown(w))
		sep()
		ran = true
	}
	if *all || *ablation == "lockfree" {
		fail(s.AblationLockFree(w))
		sep()
		ran = true
	}
	if *scaling != "" {
		top, err := bench.ParseTopology(*scaling)
		if err != nil {
			s.Close()
			fmt.Fprintln(os.Stderr, "cashmere-bench: -scaling:", err)
			exit(2)
		}
		fail(s.Scaling(w, top))
		sep()
		ran = true
	}
	s.Close()
	if !ran {
		flag.Usage()
		exit(2)
	}

	if sink != nil {
		f, err := os.Create(*jsonPath)
		fail(err)
		_, err = sink.WriteTo(f)
		if cerr := f.Close(); err == nil {
			err = cerr
		}
		fail(err)
	}

	if *traceOut != "" || *profOut != "" {
		tr := s.TraceResult()
		if tr == nil {
			fmt.Fprintf(os.Stderr, "cashmere-bench: -trace/-profile: cell %s was not executed by the selected sections\n", *traceCel)
			exit(1)
		}
		if *traceOut != "" {
			f, err := os.Create(*traceOut)
			fail(err)
			err = trace.WriteChrome(f, tr, trace.ChromeOptions{})
			if cerr := f.Close(); err == nil {
				err = cerr
			}
			fail(err)
		}
		if *profOut != "" {
			prof := metrics.BuildProfile(tr, 20)
			out := os.Stdout
			if *profOut != "-" {
				f, err := os.Create(*profOut)
				fail(err)
				out = f
			}
			fmt.Fprintf(out, "hot-page/hot-lock profile of %s\n\n", *traceCel)
			fail(prof.WriteText(out))
			if out != os.Stdout {
				fail(out.Close())
			}
		}
	}

	if fails := s.FailedCells(); len(fails) > 0 {
		fmt.Fprintf(os.Stderr, "cashmere-bench: %d cell(s) failed:\n", len(fails))
		for _, f := range fails {
			fmt.Fprintln(os.Stderr, " ", f)
		}
		exit(1)
	}
	stopProfiles()
}

// startProfiles starts a CPU profile and arranges for a heap profile,
// as requested; the returned stop function is idempotent and must run
// before every exit path so the profile files are complete.
func startProfiles(cpu, mem string) func() {
	var f *os.File
	if cpu != "" {
		var err error
		f, err = os.Create(cpu)
		if err == nil {
			err = pprof.StartCPUProfile(f)
		}
		if err != nil {
			fmt.Fprintln(os.Stderr, "cashmere-bench: cpuprofile:", err)
			os.Exit(1)
		}
	}
	return func() {
		if f != nil {
			pprof.StopCPUProfile()
			f.Close()
			f = nil
		}
		if mem != "" {
			g, err := os.Create(mem)
			if err != nil {
				fmt.Fprintln(os.Stderr, "cashmere-bench: memprofile:", err)
				mem = ""
				return
			}
			runtime.GC() // flush recently freed objects out of the profile
			if err := pprof.WriteHeapProfile(g); err != nil {
				fmt.Fprintln(os.Stderr, "cashmere-bench: memprofile:", err)
			}
			g.Close()
			mem = ""
		}
	}
}

// stderrIsTerminal reports whether stderr is a character device, the
// default for enabling the live progress line.
func stderrIsTerminal() bool {
	fi, err := os.Stderr.Stat()
	return err == nil && fi.Mode()&os.ModeCharDevice != 0
}
