// Command cashmere-bench regenerates the evaluation of the Cashmere-2L
// paper: Tables 1-3, Figures 6-7, and the Section 3.3.4/3.3.5 ablations.
//
// Usage:
//
//	cashmere-bench -all            # everything (minutes at default sizes)
//	cashmere-bench -table 3       # one table (1, 2, 3, or "costs")
//	cashmere-bench -figure 7      # one figure (6 or 7)
//	cashmere-bench -ablation shootdown|lockfree
//	cashmere-bench -quick -all    # tiny problem sizes (seconds)
package main

import (
	"flag"
	"fmt"
	"os"

	"cashmere/internal/bench"
)

func main() {
	var (
		quick    = flag.Bool("quick", false, "use tiny problem sizes")
		all      = flag.Bool("all", false, "run every table, figure, and ablation")
		table    = flag.String("table", "", `table to regenerate: "1", "2", "3", or "costs"`)
		figure   = flag.String("figure", "", `figure to regenerate: "6" or "7"`)
		ablation = flag.String("ablation", "", `ablation to run: "shootdown" or "lockfree"`)
	)
	flag.Parse()

	s := bench.NewSuite(*quick)
	w := os.Stdout
	fail := func(err error) {
		if err != nil {
			fmt.Fprintln(os.Stderr, "cashmere-bench:", err)
			os.Exit(1)
		}
	}

	ran := false
	sep := func() { fmt.Fprintln(w) }

	if *all || *table == "costs" {
		bench.BasicCosts(w)
		sep()
		ran = true
	}
	if *all || *table == "1" {
		fail(bench.Table1(w))
		sep()
		ran = true
	}
	if *all || *table == "2" {
		s.Table2(w)
		sep()
		ran = true
	}
	if *all || *table == "3" {
		fail(s.Table3(w))
		sep()
		ran = true
	}
	if *all || *figure == "6" {
		fail(s.Figure6(w))
		sep()
		ran = true
	}
	if *all || *figure == "7" {
		fail(s.Figure7(w))
		sep()
		ran = true
	}
	if *all || *ablation == "shootdown" {
		fail(s.AblationShootdown(w))
		sep()
		ran = true
	}
	if *all || *ablation == "lockfree" {
		fail(s.AblationLockFree(w))
		sep()
		ran = true
	}
	if !ran {
		flag.Usage()
		os.Exit(2)
	}
}
