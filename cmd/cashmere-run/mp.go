package main

// The -transport tcp launcher: one cashmere-run process per cluster
// node, connected by a loopback TCP mesh speaking the versioned
// transport/wire format, running the home-based multi-process protocol
// in internal/mprun.
//
// The parent re-executes its own binary once per rank with
// CASHMERE_MP_CHILD=rank:nodes in the environment and the original
// command line unchanged, so every child parses the same flags and
// picks the same application. Rendezvous is a two-line pipe protocol:
// each child binds 127.0.0.1:0 and prints
//
//	CASHMERE-MP-ADDR <host:port>
//
// on stdout; the parent collects all N addresses and writes
//
//	CASHMERE-MP-PEERS <addr0> <addr1> ... <addrN-1>
//
// to every child's stdin. The children then build the all-pairs mesh
// (tcpchan.Connect), run the application, and exit 0 on a verified
// result. Everything else a child writes is streamed through the
// parent: rank 0 verbatim, other ranks prefixed "[node R] ".
//
// # Observability
//
// With -trace or -http set, each child also streams observability
// reports on the same pipe as single lines tagged
//
//	CASHMERE-MP-OBS <one-line JSON, metrics.MPReport>
//
// — periodic frame-counter snapshots every -mp-stats-interval, and one
// final report at run exit that additionally carries the rank's trace
// buffer, tracer epoch, and clock-offset estimates from the hello
// exchange. The parent keeps the latest report per rank: -http serves
// the aggregate on /metrics (cashmere_mp_* families) and per-rank
// progress on /status, and -trace merges every rank's buffer into one
// clock-aligned Perfetto timeline (trace.WriteChromeRanks). A missing
// final trace report from any rank fails the run rather than writing a
// partial timeline.

import (
	"bufio"
	"fmt"
	"io"
	"net"
	"os"
	"os/exec"
	"strings"
	"sync"
	"time"

	"cashmere/internal/apps"
	"cashmere/internal/cli"
	"cashmere/internal/costs"
	"cashmere/internal/metrics"
	"cashmere/internal/mprun"
	"cashmere/internal/trace"
	"cashmere/internal/transport"
	"cashmere/internal/transport/tcpchan"
)

const (
	mpAddrTag  = "CASHMERE-MP-ADDR"
	mpPeersTag = "CASHMERE-MP-PEERS"
	mpObsTag   = "CASHMERE-MP-OBS"
)

// mpMaxLine bounds one line of child output. A final observability
// report carries a rank's whole trace buffer as JSON, far past
// bufio.Scanner's 64 KiB default.
const mpMaxLine = 256 << 20

// runMPChild is the child side of the tcp launcher: announce a
// listening address, receive the peer map, join the mesh, run the
// application. Returns the process exit code.
func runMPChild(o cli.RunOptions, app apps.App, rank, nodes int) int {
	if nodes != o.Nodes {
		fmt.Fprintf(os.Stderr, "cashmere-run: CASHMERE_MP_CHILD says %d nodes but flags say %d\n", nodes, o.Nodes)
		return 2
	}
	lis, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		fmt.Fprintln(os.Stderr, "cashmere-run: node listen:", err)
		return 1
	}
	fmt.Printf("%s %s\n", mpAddrTag, lis.Addr())

	sc := bufio.NewScanner(os.Stdin)
	if !sc.Scan() {
		fmt.Fprintln(os.Stderr, "cashmere-run: parent closed stdin before sending the peer map")
		return 1
	}
	fields := strings.Fields(sc.Text())
	if len(fields) != nodes+1 || fields[0] != mpPeersTag {
		fmt.Fprintf(os.Stderr, "cashmere-run: bad peer-map line %q (want %q + %d addresses)\n", sc.Text(), mpPeersTag, nodes)
		return 1
	}
	ep, err := tcpchan.Connect(rank, fields[1:], lis)
	if err != nil {
		fmt.Fprintf(os.Stderr, "cashmere-run: node %d mesh: %v\n", rank, err)
		return 1
	}
	defer ep.Close()

	// The child sees the parent's flags verbatim: -trace enables the
	// rank-local tracer (the parent writes the merged file), and either
	// -trace or -http enables frame statistics. The child itself never
	// binds -http — the parent serves the aggregate.
	var (
		tr    *trace.Tracer
		epoch int64
		stats *transport.FrameStats
	)
	if o.Trace != "" {
		epoch = time.Now().UnixNano()
		tr = trace.New(trace.Config{Procs: o.PPN + 1})
	}
	if o.Trace != "" || o.HTTP != "" {
		stats = transport.NewFrameStats(nodes)
		ep.SetStats(stats)
	}

	report := func(final bool) metrics.MPReport {
		rep := metrics.MPReport{Rank: rank, Nodes: nodes, PPN: o.PPN, App: app.Name(), Final: final}
		if stats != nil {
			s := stats.Snapshot()
			rep.Frames = &s
		}
		if final && tr != nil {
			rep.EpochUnixNS = epoch
			rep.OffsetsNS = ep.ClockOffsets()
			rep.TraceEvents = tr.Events()
			rep.TraceDropped = tr.Dropped()
		}
		return rep
	}
	var outMu sync.Mutex // one report line per Write; never interleave
	emit := func(rep metrics.MPReport) {
		line, err := metrics.EncodeMPReport(rep)
		if err != nil {
			fmt.Fprintln(os.Stderr, "cashmere-run: obs report:", err)
			return
		}
		outMu.Lock()
		fmt.Printf("%s %s\n", mpObsTag, line)
		outMu.Unlock()
	}
	stopObs := func() {}
	if stats != nil && o.MPStatsInterval > 0 {
		stop := make(chan struct{})
		var obsWG sync.WaitGroup
		obsWG.Add(1)
		go func() {
			defer obsWG.Done()
			tick := time.NewTicker(o.MPStatsInterval)
			defer tick.Stop()
			for {
				select {
				case <-stop:
					return
				case <-tick.C:
					emit(report(false))
				}
			}
		}()
		stopObs = func() { close(stop); obsWG.Wait() }
	}

	cfg := mprun.Config{Rank: rank, Nodes: nodes, PPN: o.PPN, Model: costs.Default(), Tracer: tr}
	runErr := mprun.Run(app, cfg, ep)
	stopObs()
	if runErr != nil {
		fmt.Fprintf(os.Stderr, "cashmere-run: node %d: %v\n", rank, runErr)
		return 1
	}
	if stats != nil || tr != nil {
		emit(report(true))
	}
	if rank == 0 {
		fmt.Printf("%s on %d:%d over tcp — %s\n", app.Name(), nodes*o.PPN, o.PPN, app.DataSet())
		fmt.Printf("verified against sequential reference: OK\n")
		fmt.Printf("%d OS processes over loopback, %d procs/node\n", nodes, o.PPN)
	}
	return 0
}

// obsCollector keeps the latest observability report per rank.
type obsCollector struct {
	mu     sync.Mutex
	latest []*metrics.MPReport
}

func newObsCollector(nodes int) *obsCollector {
	return &obsCollector{latest: make([]*metrics.MPReport, nodes)}
}

func (c *obsCollector) put(rep metrics.MPReport) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if rep.Rank >= 0 && rep.Rank < len(c.latest) {
		r := rep
		c.latest[rep.Rank] = &r
	}
}

// reports returns the latest report of every rank that has sent one.
func (c *obsCollector) reports() []metrics.MPReport {
	c.mu.Lock()
	defer c.mu.Unlock()
	var out []metrics.MPReport
	for _, r := range c.latest {
		if r != nil {
			out = append(out, *r)
		}
	}
	return out
}

// runMPParent launches o.Nodes child processes, brokers the address
// exchange, relays their output, collects their observability reports,
// and reaps them. Returns the process exit code.
func runMPParent(o cli.RunOptions) int {
	exe, err := os.Executable()
	if err != nil {
		fmt.Fprintln(os.Stderr, "cashmere-run:", err)
		return 1
	}
	if o.TraceTL != "" || o.Profile != "" {
		fmt.Fprintln(os.Stderr, "cashmere-run: -trace-timeline and -profile are not supported with -transport tcp; ignored")
	}
	nodes := o.Nodes
	coll := newObsCollector(nodes)

	// Per-rank progress for /status: "running" until the reap, then
	// "done" or "failed".
	var stMu sync.Mutex
	stStart := time.Now()
	states := make([]string, nodes)
	for i := range states {
		states[i] = "running"
	}

	if o.HTTP != "" {
		reg := metrics.NewRegistry()
		reg.SetMPFunc(coll.reports)
		reg.SetStatusFunc(func() metrics.Status {
			stMu.Lock()
			defer stMu.Unlock()
			var s metrics.Status
			for r, state := range states {
				cell := metrics.CellStatus{Name: fmt.Sprintf("rank%d", r), State: state}
				switch state {
				case "running":
					s.Running++
					cell.WallMS = time.Since(stStart).Milliseconds()
				case "failed":
					s.Failed++
					cell.WallMS = time.Since(stStart).Milliseconds()
				default:
					s.Done++
					cell.WallMS = time.Since(stStart).Milliseconds()
				}
				s.Cells = append(s.Cells, cell)
			}
			return s
		})
		srv, err := reg.Start(o.HTTP)
		if err != nil {
			fmt.Fprintln(os.Stderr, "cashmere-run: -http:", err)
			return 2
		}
		fmt.Fprintf(os.Stderr, "cashmere-run: serving metrics on http://%s/\n", srv.Addr)
		defer srv.Close()
	}

	type child struct {
		cmd   *exec.Cmd
		stdin io.WriteCloser
		out   *bufio.Scanner
	}
	children := make([]*child, nodes)
	fail := func(format string, args ...any) int {
		fmt.Fprintf(os.Stderr, "cashmere-run: "+format+"\n", args...)
		for _, c := range children {
			if c != nil {
				c.cmd.Process.Kill()
				c.cmd.Wait()
			}
		}
		return 1
	}
	for r := 0; r < nodes; r++ {
		cmd := exec.Command(exe, os.Args[1:]...)
		cmd.Env = append(os.Environ(), cli.MPChildEnv(r, nodes))
		cmd.Stderr = os.Stderr
		stdin, err := cmd.StdinPipe()
		if err != nil {
			return fail("node %d stdin: %v", r, err)
		}
		stdout, err := cmd.StdoutPipe()
		if err != nil {
			return fail("node %d stdout: %v", r, err)
		}
		if err := cmd.Start(); err != nil {
			return fail("node %d start: %v", r, err)
		}
		sc := bufio.NewScanner(stdout)
		sc.Buffer(make([]byte, 64<<10), mpMaxLine)
		children[r] = &child{cmd: cmd, stdin: stdin, out: sc}
	}

	// handle routes one line of child output: observability reports to
	// the collector, everything else to the relay.
	handle := func(r int, line string) {
		if body, ok := strings.CutPrefix(line, mpObsTag+" "); ok {
			rep, err := metrics.DecodeMPReport(body)
			if err != nil {
				fmt.Fprintf(os.Stderr, "cashmere-run: node %d: %v\n", r, err)
				return
			}
			coll.put(rep)
			return
		}
		relay(r, line)
	}

	// Collect each child's announced address; route any other output it
	// produces before the announcement.
	addrs := make([]string, nodes)
	for r, c := range children {
		for {
			if !c.out.Scan() {
				return fail("node %d exited before announcing its address", r)
			}
			line := c.out.Text()
			if a, ok := strings.CutPrefix(line, mpAddrTag+" "); ok {
				addrs[r] = strings.TrimSpace(a)
				break
			}
			handle(r, line)
		}
	}
	peers := mpPeersTag + " " + strings.Join(addrs, " ") + "\n"
	for r, c := range children {
		if _, err := io.WriteString(c.stdin, peers); err != nil {
			return fail("node %d peer map: %v", r, err)
		}
		c.stdin.Close()
	}

	// Stream the rest of every child's output, then reap.
	var wg sync.WaitGroup
	for r, c := range children {
		wg.Add(1)
		go func(r int, c *child) {
			defer wg.Done()
			for c.out.Scan() {
				handle(r, c.out.Text())
			}
			if err := c.out.Err(); err != nil {
				fmt.Fprintf(os.Stderr, "cashmere-run: node %d output: %v\n", r, err)
			}
		}(r, c)
	}
	wg.Wait()
	code := 0
	for r, c := range children {
		err := c.cmd.Wait()
		stMu.Lock()
		if err != nil {
			states[r] = "failed"
		} else {
			states[r] = "done"
		}
		stMu.Unlock()
		if err != nil {
			fmt.Fprintf(os.Stderr, "cashmere-run: node %d: %v\n", r, err)
			code = 1
		}
	}

	if o.Trace != "" {
		// Merge every rank's trace buffer onto rank 0's clock. A rank
		// that never delivered its final report (crash, dropped pipe)
		// fails the run rather than producing a partial timeline.
		tracks, err := metrics.MPTracks(coll.reports())
		if err != nil {
			fmt.Fprintln(os.Stderr, "cashmere-run: -trace:", err)
			if code == 0 {
				code = 1
			}
		} else if err := writeMPFile(o.Trace, tracks); err != nil {
			fmt.Fprintln(os.Stderr, "cashmere-run: -trace:", err)
			if code == 0 {
				code = 1
			}
		}
	}
	return code
}

// writeMPFile writes the merged multi-rank timeline to path ("-" for
// stdout).
func writeMPFile(path string, tracks []trace.RankTrack) error {
	f := os.Stdout
	if path != "-" {
		var err error
		f, err = os.Create(path)
		if err != nil {
			return err
		}
	}
	err := trace.WriteChromeRanks(f, tracks, trace.ChromeOptions{})
	if f != os.Stdout {
		if cerr := f.Close(); err == nil {
			err = cerr
		}
	}
	return err
}

// relay forwards one line of child output: rank 0 owns the run's
// result summary and passes through verbatim; other ranks are tagged.
func relay(rank int, line string) {
	if rank == 0 {
		fmt.Println(line)
	} else {
		fmt.Printf("[node %d] %s\n", rank, line)
	}
}
