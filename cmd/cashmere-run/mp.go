package main

// The -transport tcp launcher: one cashmere-run process per cluster
// node, connected by a loopback TCP mesh speaking the versioned
// transport/wire format, running the home-based multi-process protocol
// in internal/mprun.
//
// The parent re-executes its own binary once per rank with
// CASHMERE_MP_CHILD=rank:nodes in the environment and the original
// command line unchanged, so every child parses the same flags and
// picks the same application. Rendezvous is a two-line pipe protocol:
// each child binds 127.0.0.1:0 and prints
//
//	CASHMERE-MP-ADDR <host:port>
//
// on stdout; the parent collects all N addresses and writes
//
//	CASHMERE-MP-PEERS <addr0> <addr1> ... <addrN-1>
//
// to every child's stdin. The children then build the all-pairs mesh
// (tcpchan.Connect), run the application, and exit 0 on a verified
// result. Everything else a child writes is streamed through the
// parent: rank 0 verbatim, other ranks prefixed "[node R] ".

import (
	"bufio"
	"fmt"
	"io"
	"net"
	"os"
	"os/exec"
	"strings"
	"sync"

	"cashmere/internal/apps"
	"cashmere/internal/cli"
	"cashmere/internal/costs"
	"cashmere/internal/mprun"
	"cashmere/internal/transport/tcpchan"
)

const (
	mpAddrTag  = "CASHMERE-MP-ADDR"
	mpPeersTag = "CASHMERE-MP-PEERS"
)

// runMPChild is the child side of the tcp launcher: announce a
// listening address, receive the peer map, join the mesh, run the
// application. Returns the process exit code.
func runMPChild(o cli.RunOptions, app apps.App, rank, nodes int) int {
	if nodes != o.Nodes {
		fmt.Fprintf(os.Stderr, "cashmere-run: CASHMERE_MP_CHILD says %d nodes but flags say %d\n", nodes, o.Nodes)
		return 2
	}
	lis, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		fmt.Fprintln(os.Stderr, "cashmere-run: node listen:", err)
		return 1
	}
	fmt.Printf("%s %s\n", mpAddrTag, lis.Addr())

	sc := bufio.NewScanner(os.Stdin)
	if !sc.Scan() {
		fmt.Fprintln(os.Stderr, "cashmere-run: parent closed stdin before sending the peer map")
		return 1
	}
	fields := strings.Fields(sc.Text())
	if len(fields) != nodes+1 || fields[0] != mpPeersTag {
		fmt.Fprintf(os.Stderr, "cashmere-run: bad peer-map line %q (want %q + %d addresses)\n", sc.Text(), mpPeersTag, nodes)
		return 1
	}
	ep, err := tcpchan.Connect(rank, fields[1:], lis)
	if err != nil {
		fmt.Fprintf(os.Stderr, "cashmere-run: node %d mesh: %v\n", rank, err)
		return 1
	}
	defer ep.Close()

	cfg := mprun.Config{Rank: rank, Nodes: nodes, PPN: o.PPN, Model: costs.Default()}
	if err := mprun.Run(app, cfg, ep); err != nil {
		fmt.Fprintf(os.Stderr, "cashmere-run: node %d: %v\n", rank, err)
		return 1
	}
	if rank == 0 {
		fmt.Printf("%s on %d:%d over tcp — %s\n", app.Name(), nodes*o.PPN, o.PPN, app.DataSet())
		fmt.Printf("verified against sequential reference: OK\n")
		fmt.Printf("%d OS processes over loopback, %d procs/node\n", nodes, o.PPN)
	}
	return 0
}

// runMPParent launches o.Nodes child processes, brokers the address
// exchange, relays their output, and reaps them. Returns the process
// exit code.
func runMPParent(o cli.RunOptions) int {
	exe, err := os.Executable()
	if err != nil {
		fmt.Fprintln(os.Stderr, "cashmere-run:", err)
		return 1
	}
	nodes := o.Nodes
	type child struct {
		cmd   *exec.Cmd
		stdin io.WriteCloser
		out   *bufio.Scanner
	}
	children := make([]*child, nodes)
	fail := func(format string, args ...any) int {
		fmt.Fprintf(os.Stderr, "cashmere-run: "+format+"\n", args...)
		for _, c := range children {
			if c != nil {
				c.cmd.Process.Kill()
				c.cmd.Wait()
			}
		}
		return 1
	}
	for r := 0; r < nodes; r++ {
		cmd := exec.Command(exe, os.Args[1:]...)
		cmd.Env = append(os.Environ(), cli.MPChildEnv(r, nodes))
		cmd.Stderr = os.Stderr
		stdin, err := cmd.StdinPipe()
		if err != nil {
			return fail("node %d stdin: %v", r, err)
		}
		stdout, err := cmd.StdoutPipe()
		if err != nil {
			return fail("node %d stdout: %v", r, err)
		}
		if err := cmd.Start(); err != nil {
			return fail("node %d start: %v", r, err)
		}
		children[r] = &child{cmd: cmd, stdin: stdin, out: bufio.NewScanner(stdout)}
	}

	// Collect each child's announced address; relay any other output
	// it produces before the announcement.
	addrs := make([]string, nodes)
	for r, c := range children {
		for {
			if !c.out.Scan() {
				return fail("node %d exited before announcing its address", r)
			}
			line := c.out.Text()
			if a, ok := strings.CutPrefix(line, mpAddrTag+" "); ok {
				addrs[r] = strings.TrimSpace(a)
				break
			}
			relay(r, line)
		}
	}
	peers := mpPeersTag + " " + strings.Join(addrs, " ") + "\n"
	for r, c := range children {
		if _, err := io.WriteString(c.stdin, peers); err != nil {
			return fail("node %d peer map: %v", r, err)
		}
		c.stdin.Close()
	}

	// Stream the rest of every child's output, then reap.
	var wg sync.WaitGroup
	for r, c := range children {
		wg.Add(1)
		go func(r int, c *child) {
			defer wg.Done()
			for c.out.Scan() {
				relay(r, c.out.Text())
			}
		}(r, c)
	}
	wg.Wait()
	code := 0
	for r, c := range children {
		if err := c.cmd.Wait(); err != nil {
			fmt.Fprintf(os.Stderr, "cashmere-run: node %d: %v\n", r, err)
			code = 1
		}
	}
	return code
}

// relay forwards one line of child output: rank 0 owns the run's
// result summary and passes through verbatim; other ranks are tagged.
func relay(rank int, line string) {
	if rank == 0 {
		fmt.Println(line)
	} else {
		fmt.Printf("[node %d] %s\n", rank, line)
	}
}
