// Command cashmere-run executes one benchmark application on a chosen
// protocol and cluster configuration, verifies the result against the
// sequential reference, and prints the run's statistics and speedup.
//
// Usage:
//
//	cashmere-run -app Gauss -protocol 2L -nodes 8 -ppn 4
//	cashmere-run -app Barnes -protocol 1LD -homeopt -quick
package main

import (
	"flag"
	"fmt"
	"os"

	"cashmere/internal/apps"
	"cashmere/internal/core"
	"cashmere/internal/costs"
)

func protocolByName(name string) (core.Kind, bool) {
	switch name {
	case "2L":
		return core.TwoLevel, true
	case "2LS":
		return core.TwoLevelSD, true
	case "1LD":
		return core.OneLevelDiff, true
	case "1L":
		return core.OneLevelWrite, true
	}
	return 0, false
}

func main() {
	var (
		appName    = flag.String("app", "SOR", "application: SOR, LU, Water, TSP, Gauss, Ilink, Em3d, Barnes")
		protoName  = flag.String("protocol", "2L", "protocol: 2L, 2LS, 1LD, 1L")
		nodes      = flag.Int("nodes", 8, "SMP nodes (max 8)")
		ppn        = flag.Int("ppn", 4, "processors per node")
		homeOpt    = flag.Bool("homeopt", false, "home-node optimization (one-level protocols)")
		lockBased  = flag.Bool("lockbased", false, "lock-based protocol metadata (Section 3.3.5 ablation)")
		interrupts = flag.Bool("interrupts", false, "interrupt-based messaging instead of polling")
		quick      = flag.Bool("quick", false, "tiny problem size")
	)
	flag.Parse()

	kind, ok := protocolByName(*protoName)
	if !ok {
		fmt.Fprintf(os.Stderr, "cashmere-run: unknown protocol %q\n", *protoName)
		os.Exit(2)
	}
	set := apps.All()
	if *quick {
		set = apps.Small()
	}
	var app apps.App
	for _, a := range set {
		if a.Name() == *appName {
			app = a
		}
	}
	if app == nil {
		fmt.Fprintf(os.Stderr, "cashmere-run: unknown application %q\n", *appName)
		os.Exit(2)
	}

	cfg := core.Config{
		Nodes:         *nodes,
		ProcsPerNode:  *ppn,
		Protocol:      kind,
		HomeOpt:       *homeOpt,
		LockBasedMeta: *lockBased,
		UseInterrupts: *interrupts,
	}
	res, err := apps.Run(app, cfg)
	if err != nil {
		fmt.Fprintln(os.Stderr, "cashmere-run:", err)
		os.Exit(1)
	}
	seq := app.SeqTime(costs.Default())
	fmt.Printf("%s on %d:%d under %s — %s\n", app.Name(), *nodes**ppn, *ppn, kind, app.DataSet())
	fmt.Printf("verified against sequential reference: OK\n")
	fmt.Printf("sequential %.3fs, parallel %.3fs, speedup %.2f\n",
		float64(seq)/1e9, res.ExecSeconds(), float64(seq)/float64(res.ExecNS))
	fmt.Print(res.Total.String())
}
