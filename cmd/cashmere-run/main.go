// Command cashmere-run executes one benchmark application on a chosen
// protocol and cluster configuration, verifies the result against the
// sequential reference, and prints the run's statistics and speedup.
//
// Usage:
//
//	cashmere-run -app Gauss -protocol 2L -nodes 8 -ppn 4
//	cashmere-run -app SOR -topology 128:4 -fabric switched  # beyond the paper's 8x4
//	cashmere-run -app Barnes -protocol 1LD -homeopt -quick
//	cashmere-run -app Em3d -adaptive       # per-page adaptive policy
//	cashmere-run -app SOR -quick -trace sor.json        # Perfetto trace
//	cashmere-run -app SOR -quick -trace-timeline - -trace-pages 0,3
//	cashmere-run -app SOR -profile -                    # hot-page report
//	cashmere-run -app Water -http :6060                 # live /metrics
//
// -trace records a structured event trace of the run and writes it as
// Chrome trace-event JSON, loadable at https://ui.perfetto.dev.
// -trace-timeline writes a plain-text per-page event timeline ("-" for
// stdout), optionally restricted to the -trace-pages page numbers; it
// is the structured successor of the CASHMERE_TRACE_PAGE environment
// variable. See docs/TRACING.md.
//
// -profile writes the run's hot-page / hot-lock attribution report
// ("-" for stdout): the top pages by protocol time with sharing-pattern
// labels, contended locks and flags, and barrier latency. -http serves
// live /metrics (Prometheus text format), /status, and net/http/pprof
// while the run executes. See docs/METRICS.md.
//
// -replay re-executes a model-checker counterexample (the JSON file the
// checker or fuzzer writes on an invariant violation; see
// docs/MODELCHECK.md) deterministically against a fresh cluster and
// prints the step-by-step account with the recorded protocol events. It
// exits 0 when the recorded violation reproduces and 1 when the replay
// diverges (runs clean); all other flags are ignored:
//
//	cashmere-run -replay counterexample.json
package main

import (
	"flag"
	"fmt"
	"os"

	"cashmere/internal/apps"
	"cashmere/internal/cli"
	"cashmere/internal/core"
	"cashmere/internal/costs"
	"cashmere/internal/metrics"
	"cashmere/internal/modelcheck"
	"cashmere/internal/policy"
	"cashmere/internal/topology"
	"cashmere/internal/trace"
	"cashmere/internal/transport"
)

func protocolByName(name string) (core.Kind, bool) {
	switch name {
	case "2L":
		return core.TwoLevel, true
	case "2LS":
		return core.TwoLevelSD, true
	case "1LD":
		return core.OneLevelDiff, true
	case "1L":
		return core.OneLevelWrite, true
	}
	return 0, false
}

func main() {
	var o cli.RunOptions
	o.Register(flag.CommandLine)
	flag.Parse()

	if o.Replay != "" {
		os.Exit(replay(o.Replay))
	}

	kind, ok := protocolByName(o.Protocol)
	if !ok {
		fmt.Fprintf(os.Stderr, "cashmere-run: unknown protocol %q\n", o.Protocol)
		os.Exit(2)
	}
	spec := topology.New(o.Nodes, o.PPN)
	if o.Topology != "" {
		var err error
		spec, err = topology.Parse(o.Topology)
		if err != nil {
			fmt.Fprintln(os.Stderr, "cashmere-run: -topology:", err)
			os.Exit(2)
		}
		o.Nodes, o.PPN = spec.Nodes, spec.ProcsPerNode
	}
	fab, err := costs.ParseFabric(o.Fabric)
	if err != nil {
		fmt.Fprintln(os.Stderr, "cashmere-run: -fabric:", err)
		os.Exit(2)
	}
	spec.Interconnect.Fabric = fab
	set := apps.All()
	if o.Quick {
		set = apps.Small()
	}
	var app apps.App
	for _, a := range set {
		if a.Name() == o.App {
			app = a
		}
	}
	if app == nil {
		fmt.Fprintf(os.Stderr, "cashmere-run: unknown application %q\n", o.App)
		os.Exit(2)
	}
	tk, err := transport.ParseKind(o.Transport)
	if err != nil {
		fmt.Fprintln(os.Stderr, "cashmere-run: -transport:", err)
		os.Exit(2)
	}
	if rank, mpNodes, isChild, err := cli.MPChildFromEnv(); isChild {
		if err != nil {
			fmt.Fprintln(os.Stderr, "cashmere-run:", err)
			os.Exit(2)
		}
		os.Exit(runMPChild(o, app, rank, mpNodes))
	}
	if tk == transport.TCP {
		// One OS process per node over loopback sockets; the
		// single-process engine below never runs. See docs/TRANSPORT.md.
		os.Exit(runMPParent(o))
	}

	cfg := core.Config{
		Topology:      spec,
		Protocol:      kind,
		Transport:     tk,
		HomeOpt:       o.HomeOpt,
		LockBasedMeta: o.LockBased,
		UseInterrupts: o.Interrupts,
	}
	var tr *trace.Tracer
	if o.Trace != "" || o.TraceTL != "" || o.Profile != "" {
		var pages map[int]bool
		if o.TracePages != "" {
			var err error
			pages, err = trace.ParsePageList(o.TracePages)
			if err != nil {
				fmt.Fprintln(os.Stderr, "cashmere-run: -trace-pages:", err)
				os.Exit(2)
			}
		}
		tr = trace.New(trace.Config{Procs: o.Nodes * o.PPN, Links: o.Nodes, Pages: pages})
		cfg.Trace = tr
	}
	var detach func()
	if o.HTTP != "" {
		reg := metrics.NewRegistry()
		cfg.Observer = func(c *core.Cluster) { detach = reg.Attach(c) }
		srv, err := reg.Start(o.HTTP)
		if err != nil {
			fmt.Fprintln(os.Stderr, "cashmere-run: -http:", err)
			os.Exit(2)
		}
		fmt.Fprintf(os.Stderr, "cashmere-run: serving metrics on http://%s/\n", srv.Addr)
		defer srv.Close()
	}
	if o.Adaptive {
		// Wire chains any Observer installed above (e.g. -http metrics).
		policy.Wire(&cfg, policy.Defaults())
	}
	res, err := apps.Run(app, cfg)
	if detach != nil {
		detach()
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "cashmere-run:", err)
		os.Exit(1)
	}
	if o.Trace != "" {
		writeOut(o.Trace, func(f *os.File) error {
			return trace.WriteChrome(f, tr, trace.ChromeOptions{})
		})
	}
	if o.TraceTL != "" {
		writeOut(o.TraceTL, func(f *os.File) error {
			return trace.WritePageTimeline(f, tr, nil)
		})
	}
	if o.Profile != "" {
		prof := metrics.BuildProfile(tr, 20)
		writeOut(o.Profile, func(f *os.File) error {
			return prof.WriteText(f)
		})
	}
	seq := app.SeqTime(costs.Default())
	protoLabel := kind.String()
	if o.Adaptive {
		protoLabel += "+A"
	}
	fmt.Printf("%s on %d:%d under %s — %s\n", app.Name(), o.Nodes*o.PPN, o.PPN, protoLabel, app.DataSet())
	fmt.Printf("verified against sequential reference: OK\n")
	fmt.Printf("sequential %.3fs, parallel %.3fs, speedup %.2f\n",
		float64(seq)/1e9, res.ExecSeconds(), float64(seq)/float64(res.ExecNS))
	fmt.Print(res.Total.String())
}

// replay re-executes a model-checker counterexample file and returns
// the process exit code: 0 when the recorded violation reproduces, 1
// when the schedule runs clean (a divergence — the protocol no longer
// exhibits the bug, or the file is stale), 2 on a bad file.
func replay(path string) int {
	data, err := os.ReadFile(path)
	if err != nil {
		fmt.Fprintln(os.Stderr, "cashmere-run: -replay:", err)
		return 2
	}
	cx, err := modelcheck.Decode(data)
	if err != nil {
		fmt.Fprintln(os.Stderr, "cashmere-run: -replay:", err)
		return 2
	}
	v, err := modelcheck.Replay(cx, os.Stdout)
	if err != nil {
		fmt.Fprintln(os.Stderr, "cashmere-run: -replay:", err)
		return 2
	}
	if v == nil {
		return 1
	}
	return 0
}

// writeOut writes through fn to the named file, or to stdout for "-".
func writeOut(path string, fn func(*os.File) error) {
	f := os.Stdout
	if path != "-" {
		var err error
		f, err = os.Create(path)
		if err != nil {
			fmt.Fprintln(os.Stderr, "cashmere-run:", err)
			os.Exit(1)
		}
	}
	err := fn(f)
	if f != os.Stdout {
		if cerr := f.Close(); err == nil {
			err = cerr
		}
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "cashmere-run:", err)
		os.Exit(1)
	}
}
