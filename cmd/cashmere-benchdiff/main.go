// Command cashmere-benchdiff compares two cashmere-bench -json results
// files cell by cell and exits nonzero when the current file regresses
// beyond tolerance against the baseline — the CI performance gate.
//
//	cashmere-benchdiff [-tol 0.05] [-count-tol 0.25] [-count-slack 64] \
//	    [-cells '^(SOR|LU)/'] baseline.json current.json
//
// Virtual-time metrics (exec_ns, data_bytes, event counters) are
// functions of the program and the cost model, not of the host, so a
// committed baseline stays comparable across machines. The tolerances
// absorb the residual host-order tie-breaks; -cells restricts the gate
// to the deterministic barrier-phased applications when lock-based
// cells are too noisy to gate.
package main

import (
	"flag"
	"fmt"
	"os"

	"cashmere/internal/bench"
)

func main() {
	tol := flag.Float64("tol", 0.05, "relative tolerance for exec_ns and data_bytes")
	countTol := flag.Float64("count-tol", 0, "relative tolerance for event counters (default: -tol)")
	countSlack := flag.Int64("count-slack", 0, "absolute counter difference always tolerated")
	cells := flag.String("cells", "", "regexp restricting compared cells by app/variant/topology label")
	flag.Usage = func() {
		fmt.Fprintf(flag.CommandLine.Output(),
			"usage: cashmere-benchdiff [flags] baseline.json current.json\n")
		flag.PrintDefaults()
	}
	flag.Parse()
	if flag.NArg() != 2 {
		flag.Usage()
		os.Exit(2)
	}

	baseline, err := bench.LoadResults(flag.Arg(0))
	if err != nil {
		fail("%v", err)
	}
	current, err := bench.LoadResults(flag.Arg(1))
	if err != nil {
		fail("%v", err)
	}

	rep, err := bench.DiffResults(baseline, current, bench.DiffOptions{
		RelTol:      *tol,
		CountTol:    *countTol,
		CountSlack:  *countSlack,
		CellPattern: *cells,
	})
	if err != nil {
		fail("%v", err)
	}
	rep.WriteText(os.Stdout)
	if !rep.OK() {
		os.Exit(1)
	}
}

func fail(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "cashmere-benchdiff: "+format+"\n", args...)
	os.Exit(2)
}
