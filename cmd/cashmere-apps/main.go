// Command cashmere-apps lists the benchmark suite and optionally
// validates every application under every protocol at a small
// configuration — a fast end-to-end health check of the protocols.
//
// Usage:
//
//	cashmere-apps            # list the suite
//	cashmere-apps -validate  # run every app x protocol and verify
package main

import (
	"flag"
	"fmt"
	"os"

	"cashmere/internal/apps"
	"cashmere/internal/core"
	"cashmere/internal/costs"
)

func main() {
	validate := flag.Bool("validate", false, "run every application under every protocol and verify results")
	flag.Parse()

	fmt.Printf("%-8s %s\n", "Program", "Problem Size (default evaluation scale)")
	m := costs.Default()
	for _, a := range apps.All() {
		fmt.Printf("%-8s %s (sequential %.2fs virtual)\n",
			a.Name(), a.DataSet(), float64(a.SeqTime(m))/1e9)
	}
	if !*validate {
		return
	}

	fmt.Println("\nvalidating (tiny sizes, 2 nodes x 2 procs):")
	kinds := []core.Kind{core.TwoLevel, core.TwoLevelSD, core.OneLevelDiff, core.OneLevelWrite}
	failed := false
	for _, a := range apps.Small() {
		for _, k := range kinds {
			app := apps.ByName(a.Name())
			_ = app
			inst := freshSmall(a.Name())
			cfg := core.Config{Nodes: 2, ProcsPerNode: 2, Protocol: k}
			if _, err := apps.Run(inst, cfg); err != nil {
				fmt.Printf("  %-8s %-4s FAIL: %v\n", a.Name(), k, err)
				failed = true
				continue
			}
			fmt.Printf("  %-8s %-4s ok\n", a.Name(), k)
		}
	}
	if failed {
		os.Exit(1)
	}
}

// freshSmall returns a new small instance by name (instances cache
// their layout and sequential results, so each run gets its own).
func freshSmall(name string) apps.App {
	for _, a := range apps.Small() {
		if a.Name() == name {
			return a
		}
	}
	return nil
}
