module cashmere

go 1.23
