package cashmere_test

import (
	"testing"

	"cashmere"
)

func TestQuickstartAPI(t *testing.T) {
	cfg := cashmere.Config{
		Nodes:        4,
		ProcsPerNode: 2,
		Protocol:     cashmere.TwoLevel,
		SharedWords:  1 << 12,
	}
	c, err := cashmere.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	res := c.Run(func(p *cashmere.Proc) {
		p.Store(p.ID(), int64(p.ID()*3))
		p.Barrier()
		for i := 0; i < p.NProcs(); i++ {
			if got := p.Load(i); got != int64(i*3) {
				t.Errorf("proc %d read %d = %d, want %d", p.ID(), i, got, i*3)
				return
			}
		}
	})
	if res.ExecSeconds() <= 0 {
		t.Error("no virtual time elapsed")
	}
	for i := 0; i < 8; i++ {
		if got := c.ReadShared(i); got != int64(i*3) {
			t.Errorf("ReadShared(%d) = %d, want %d", i, got, i*3)
		}
	}
}

func TestAllProtocolsViaPublicAPI(t *testing.T) {
	for _, k := range []cashmere.Kind{
		cashmere.TwoLevel, cashmere.TwoLevelSD,
		cashmere.OneLevelDiff, cashmere.OneLevelWrite,
	} {
		c, err := cashmere.New(cashmere.Config{
			Nodes: 2, ProcsPerNode: 2, Protocol: k, SharedWords: 4096, Locks: 1,
		})
		if err != nil {
			t.Fatalf("%v: %v", k, err)
		}
		c.Run(func(p *cashmere.Proc) {
			for i := 0; i < 5; i++ {
				p.Lock(0)
				p.Store(0, p.Load(0)+1)
				p.Unlock(0)
			}
			p.Barrier()
			if got := p.Load(0); got != 20 {
				t.Errorf("%v: counter = %d, want 20", k, got)
			}
		})
	}
}

func TestDefaultCosts(t *testing.T) {
	m := cashmere.DefaultCosts()
	if m.MCWriteLatency != 5200 {
		t.Errorf("MCWriteLatency = %d, want 5200", m.MCWriteLatency)
	}
}

func TestFloatRoundTrip(t *testing.T) {
	c, err := cashmere.New(cashmere.Config{
		Nodes: 1, ProcsPerNode: 1, SharedWords: 1024,
	})
	if err != nil {
		t.Fatal(err)
	}
	c.Run(func(p *cashmere.Proc) {
		p.StoreF(10, -2.5e17)
		if got := p.LoadF(10); got != -2.5e17 {
			t.Errorf("LoadF = %v", got)
		}
	})
	if got := c.ReadSharedF(10); got != -2.5e17 {
		t.Errorf("ReadSharedF = %v", got)
	}
}
