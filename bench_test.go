// Benchmarks regenerating each table and figure of the paper's
// evaluation. Each benchmark runs the corresponding experiment once per
// iteration at quick (test-scale) problem sizes and reports the paper's
// headline quantity as custom metrics; `cashmere-bench -all` runs the
// same experiments at the full (scaled) evaluation sizes.
package cashmere_test

import (
	"io"
	"testing"

	"cashmere/internal/bench"
	"cashmere/internal/core"
)

// BenchmarkTable1BasicOps regenerates Table 1: basic operation costs of
// the two-level and one-level protocol families.
func BenchmarkTable1BasicOps(b *testing.B) {
	var two, one bench.BasicOps
	for i := 0; i < b.N; i++ {
		var err error
		if two, err = bench.MeasureBasicOps(core.TwoLevel); err != nil {
			b.Fatal(err)
		}
		if one, err = bench.MeasureBasicOps(core.OneLevelDiff); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(two.LockAcquire)/1000, "2L-lock-us")
	b.ReportMetric(float64(one.LockAcquire)/1000, "1L-lock-us")
	b.ReportMetric(float64(two.Barrier32)/1000, "2L-barrier32-us")
	b.ReportMetric(float64(two.PageTransferRemote)/1000, "2L-xfer-us")
}

// benchApp runs one application under one protocol at the full cluster
// and reports its virtual speedup and data volume.
func benchApp(b *testing.B, name string, kind core.Kind) {
	b.Helper()
	s := bench.NewSuite(true)
	v := bench.Variant{Kind: kind}
	var sp float64
	for i := 0; i < b.N; i++ {
		var err error
		sp, err = s.Speedup(name, v, bench.FullCluster)
		if err != nil {
			b.Fatal(err)
		}
	}
	res, _ := s.Run(name, v, bench.FullCluster)
	b.ReportMetric(sp, "speedup")
	b.ReportMetric(res.DataMB(), "dataMB")
	b.ReportMetric(res.ExecSeconds()*1000, "virtual-ms")
}

// BenchmarkTable3 regenerates one Table 3 column pair per suite
// application: the 2L statistics at 32 processors (the companion 1LD
// runs are exercised by the Figure 7 benchmarks).
func BenchmarkTable3(b *testing.B) {
	for _, name := range bench.AppNames() {
		b.Run(name, func(b *testing.B) { benchApp(b, name, core.TwoLevel) })
	}
}

// BenchmarkFigure6Breakdown regenerates the Figure 6 execution-time
// breakdown for the full protocol set on one application.
func BenchmarkFigure6Breakdown(b *testing.B) {
	s := bench.NewSuite(true)
	for i := 0; i < b.N; i++ {
		if err := s.Figure6(io.Discard); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFigure7 regenerates Figure 7's bars for each application
// under the main head-to-head (2L vs 1LD) at the full configuration.
func BenchmarkFigure7(b *testing.B) {
	for _, name := range bench.AppNames() {
		for _, v := range []bench.Variant{
			{Kind: core.TwoLevel}, {Kind: core.OneLevelDiff},
		} {
			b.Run(name+"/"+v.Label(), func(b *testing.B) {
				benchApp(b, name, v.Kind)
			})
		}
	}
}

// BenchmarkFigure7Clustering regenerates the clustering axis of Figure
// 7: the same processor count at different degrees of clustering.
func BenchmarkFigure7Clustering(b *testing.B) {
	s := bench.NewSuite(true)
	for _, topo := range []bench.Topology{
		{Nodes: 8, PPN: 1}, {Nodes: 4, PPN: 2}, {Nodes: 2, PPN: 4},
	} {
		b.Run("SOR/"+topo.Label(), func(b *testing.B) {
			var sp float64
			for i := 0; i < b.N; i++ {
				var err error
				sp, err = s.Speedup("SOR", bench.Variant{Kind: core.TwoLevel}, topo)
				if err != nil {
					b.Fatal(err)
				}
			}
			b.ReportMetric(sp, "speedup")
		})
	}
}

// BenchmarkAblationShootdown regenerates Section 3.3.4: two-way diffing
// (2L) versus polling- and interrupt-based shootdown (2LS) on Water,
// the suite's false-sharing lock application.
func BenchmarkAblationShootdown(b *testing.B) {
	s := bench.NewSuite(true)
	for _, v := range []bench.Variant{
		{Kind: core.TwoLevel},
		{Kind: core.TwoLevelSD},
		{Kind: core.TwoLevelSD, Interrupts: true},
	} {
		b.Run(v.Label(), func(b *testing.B) {
			var res core.Result
			for i := 0; i < b.N; i++ {
				var err error
				res, err = s.Run("Water", v, bench.FullCluster)
				if err != nil {
					b.Fatal(err)
				}
			}
			b.ReportMetric(res.ExecSeconds()*1000, "virtual-ms")
		})
	}
}

// BenchmarkAblationLockFree regenerates Section 3.3.5: lock-free versus
// globally-locked protocol metadata on Barnes, the suite's heaviest
// directory user.
func BenchmarkAblationLockFree(b *testing.B) {
	s := bench.NewSuite(true)
	for _, v := range []bench.Variant{
		{Kind: core.TwoLevel},
		{Kind: core.TwoLevel, LockBased: true},
	} {
		b.Run(v.Label(), func(b *testing.B) {
			var res core.Result
			for i := 0; i < b.N; i++ {
				var err error
				res, err = s.Run("Barnes", v, bench.FullCluster)
				if err != nil {
					b.Fatal(err)
				}
			}
			b.ReportMetric(res.ExecSeconds()*1000, "virtual-ms")
		})
	}
}
