package metrics_test

import (
	"encoding/json"
	"flag"
	"io"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"regexp"
	"runtime"
	"strings"
	"testing"

	"cashmere/internal/apps"
	"cashmere/internal/core"
	"cashmere/internal/metrics"
	"cashmere/internal/stats"
)

var update = flag.Bool("update", false, "rewrite golden files")

// fakeRun is a canned metrics.Run for registry tests.
type fakeRun struct {
	total stats.Total
	links []int64
	hub   int64
	has   bool
}

func (f *fakeRun) SnapshotStats() stats.Total { return f.total }
func (f *fakeRun) LinkBusy() []int64          { return append([]int64(nil), f.links...) }
func (f *fakeRun) HubBusy() (int64, bool)     { return f.hub, f.has }

func TestRegistryAttachDetach(t *testing.T) {
	r := metrics.NewRegistry()

	var run fakeRun
	run.total.Counts[stats.ReadFaults] = 7
	run.total.DataBytes = 4096
	run.total.ExecNS = 1000
	run.total.Procs = 4
	run.links = []int64{100, 200}
	run.hub, run.has = 300, true

	detach := r.Attach(&run)

	s := r.Snapshot()
	if s.ActiveRuns != 1 || s.DoneRuns != 0 {
		t.Fatalf("active snapshot: active=%d done=%d", s.ActiveRuns, s.DoneRuns)
	}
	if s.Total.Counts[stats.ReadFaults] != 7 {
		t.Fatalf("live counts not visible: %d", s.Total.Counts[stats.ReadFaults])
	}
	if s.LinkBusy[1] != 200 || s.LinkVirtualNS != 1000 {
		t.Fatalf("link busy %v denom %d", s.LinkBusy, s.LinkVirtualNS)
	}
	if !s.HasHub || s.HubBusy != 300 {
		t.Fatalf("hub busy %d has=%v", s.HubBusy, s.HasHub)
	}

	detach()
	detach() // second call must be a no-op, not a double count

	s = r.Snapshot()
	if s.ActiveRuns != 0 || s.DoneRuns != 1 {
		t.Fatalf("after detach: active=%d done=%d", s.ActiveRuns, s.DoneRuns)
	}
	if s.Total.Counts[stats.ReadFaults] != 7 || s.LinkBusy[0] != 100 || s.HubBusy != 300 {
		t.Fatalf("completed accumulators wrong: %+v", s)
	}

	// A second run's totals merge with the first's.
	run2 := run
	r.Attach(&run2)()
	s = r.Snapshot()
	if s.Total.Counts[stats.ReadFaults] != 14 || s.LinkBusy[1] != 400 || s.DoneRuns != 2 {
		t.Fatalf("merge across runs wrong: %+v", s)
	}
	if s.Total.ExecNS != 1000 {
		t.Fatalf("ExecNS should max, not sum: %d", s.Total.ExecNS)
	}
	if s.LinkVirtualNS != 2000 {
		t.Fatalf("utilization denominator should sum per-run exec: %d", s.LinkVirtualNS)
	}
}

func TestPrometheusEncodingDeterministic(t *testing.T) {
	snap := metrics.Snapshot{
		ActiveRuns:    1,
		DoneRuns:      2,
		WallSeconds:   1.5,
		LinkBusy:      []int64{500, 0, 250},
		LinkVirtualNS: 1000,
		HubBusy:       600,
		HasHub:        true,
	}
	snap.Total.Counts[stats.ReadFaults] = 3
	snap.Total.Counts[stats.Barriers] = 8
	snap.Total.Time[stats.CommWait] = 900
	snap.Total.DataBytes = 1 << 20
	snap.Total.ExecNS = 12345
	snap.Total.Procs = 8

	var a, b strings.Builder
	if err := metrics.WritePrometheus(&a, snap); err != nil {
		t.Fatal(err)
	}
	if err := metrics.WritePrometheus(&b, snap); err != nil {
		t.Fatal(err)
	}
	if a.String() != b.String() {
		t.Fatal("encoding is not deterministic")
	}

	out := a.String()
	for _, want := range []string{
		`cashmere_counter_total{counter="Barriers"} 8`,
		`cashmere_counter_total{counter="ReadFaults"} 3`,
		`cashmere_component_time_ns{component="Comm & Wait"} 900`,
		`cashmere_link_busy_ns_total{link="2"} 250`,
		`cashmere_link_utilization{link="0"} 0.5`,
		`cashmere_hub_utilization 0.6`,
		`cashmere_virtual_time_ns 12345`,
		`cashmere_runs_active 1`,
		`cashmere_runs_completed_total 2`,
	} {
		if !strings.Contains(out, want+"\n") {
			t.Errorf("missing series %q in output:\n%s", want, out)
		}
	}
	checkPrometheusSyntax(t, out)
}

// checkPrometheusSyntax validates the exposition format line by line:
// every non-comment line is `name{labels} value` or `name value`, and
// every series name is introduced by HELP and TYPE comments first.
func checkPrometheusSyntax(t *testing.T, out string) {
	t.Helper()
	series := regexp.MustCompile(`^([a-zA-Z_:][a-zA-Z0-9_:]*)(\{[a-zA-Z_]+="(?:[^"\\]|\\.)*"\})? (-?[0-9.e+-]+|NaN)$`)
	declared := map[string]bool{}
	for _, line := range strings.Split(strings.TrimRight(out, "\n"), "\n") {
		if strings.HasPrefix(line, "# HELP ") || strings.HasPrefix(line, "# TYPE ") {
			fields := strings.Fields(line)
			if len(fields) < 4 {
				t.Fatalf("malformed comment: %q", line)
			}
			declared[fields[2]] = true
			continue
		}
		m := series.FindStringSubmatch(line)
		if m == nil {
			t.Fatalf("malformed series line: %q", line)
		}
		if !declared[m[1]] {
			t.Fatalf("series %q not introduced by HELP/TYPE", m[1])
		}
	}
}

// runSmallSOR executes the fixed small run the golden scrape test
// uses, attached to reg, and returns its result.
func runSmallSOR(t *testing.T, reg *metrics.Registry) core.Result {
	t.Helper()
	var detach func()
	cfg := core.Config{
		Nodes:        2,
		ProcsPerNode: 2,
		Protocol:     core.TwoLevel,
		Observer: func(c *core.Cluster) {
			detach = reg.Attach(c)
		},
	}
	res, err := apps.Run(apps.SmallSOR(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	if detach == nil {
		t.Fatal("Observer was not called")
	}
	detach()
	return res
}

// TestScrapeMatchesRun asserts the /metrics endpoint reports exactly
// the statistics the run itself returned — the scrape path adds or
// loses nothing.
func TestScrapeMatchesRun(t *testing.T) {
	reg := metrics.NewRegistry()
	res := runSmallSOR(t, reg)

	snap := reg.Snapshot()
	if snap.Total.Counts != res.Counts || snap.Total.Time != res.Time ||
		snap.Total.DataBytes != res.DataBytes || snap.Total.ExecNS != res.ExecNS {
		t.Fatalf("registry snapshot diverges from run result:\nsnap %+v\nrun  %+v", snap.Total, res.Total)
	}

	srv := httptest.NewServer(reg.Handler())
	defer srv.Close()

	body := get(t, srv.URL+"/metrics")
	checkPrometheusSyntax(t, body)
	if !strings.Contains(body, `cashmere_link_utilization{link="1"}`) {
		t.Errorf("missing link utilization gauge:\n%s", body)
	}

	status := get(t, srv.URL+"/status")
	var st metrics.Status
	if err := json.Unmarshal([]byte(status), &st); err != nil {
		t.Fatalf("/status is not valid JSON: %v\n%s", err, status)
	}
}

// TestGoldenEndpoints compares /metrics (wall-clock line scrubbed) and
// /status against committed golden files for a fixed small run. The
// run's virtual-time results are deterministic under GOMAXPROCS(1)
// (see internal/bench's determinism tests), so the scrape is
// byte-stable. Regenerate with -update.
func TestGoldenEndpoints(t *testing.T) {
	if raceEnabled {
		t.Skip("deterministic golden run requires race detector off")
	}
	defer runtime.GOMAXPROCS(runtime.GOMAXPROCS(1))

	reg := metrics.NewRegistry()
	runSmallSOR(t, reg)
	reg.SetStatusFunc(func() metrics.Status {
		return metrics.Status{
			Queued: 1, Running: 0, Done: 1, Failed: 0,
			ETASeconds: 2.5,
			Cells: []metrics.CellStatus{
				{Name: "SOR/2L/2:2", State: "done", WallMS: 42},
				{Name: "SOR/2L/4:1", State: "queued"},
			},
		}
	})

	srv := httptest.NewServer(reg.Handler())
	defer srv.Close()

	wall := regexp.MustCompile(`(?m)^cashmere_wall_time_seconds .*$`)
	gotMetrics := wall.ReplaceAllString(get(t, srv.URL+"/metrics"), "cashmere_wall_time_seconds X")
	compareGolden(t, "metrics_golden.txt", gotMetrics)
	compareGolden(t, "status_golden.json", get(t, srv.URL+"/status"))
}

func compareGolden(t *testing.T, name, got string) {
	t.Helper()
	path := filepath.Join("testdata", name)
	if *update {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, []byte(got), 0o644); err != nil {
			t.Fatal(err)
		}
		return
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("missing golden file (regenerate with -update): %v", err)
	}
	if string(want) != got {
		t.Errorf("%s diverges from golden; regenerate with -update if intended\ngot:\n%s\nwant:\n%s", name, got, want)
	}
}

func get(t *testing.T, url string) string {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != 200 {
		t.Fatalf("GET %s: %s\n%s", url, resp.Status, body)
	}
	return string(body)
}
