// Package metrics is the pull-based runtime observability layer: a
// registry that aggregates live statistics from running clusters, a
// Prometheus text-format encoder, an opt-in HTTP server exposing
// /metrics, /status, and net/http/pprof, and a hot-page / hot-lock
// profiler built on the internal/trace event stream.
//
// The package sits above internal/stats and internal/trace and below
// the bench harness and command binaries: it knows nothing about
// internal/core. A running cluster is visible only through the Run
// interface, which core.Cluster satisfies; attachment happens through
// core.Config.Observer so neither apps.Run nor the protocol engine
// needed restructuring.
//
// Collection is strictly passive. Scrapes read the per-processor
// statistics with plain loads ("monitoring-grade": a mid-run value may
// be a few events stale), charge zero virtual time, and take no
// protocol lock, so an instrumented run produces bit-identical
// virtual-time results to an uninstrumented one — the determinism
// tests in internal/bench assert exactly that.
package metrics

import (
	"sort"
	"sync"
	"time"

	"cashmere/internal/stats"
)

// Run is the registry's view of one running (or finished) cluster.
// core.Cluster implements it; tests may supply fakes.
type Run interface {
	// SnapshotStats aggregates the per-processor statistics as they
	// stand now (monitoring-grade mid-run, exact once the run is done).
	SnapshotStats() stats.Total
	// LinkBusy returns cumulative busy virtual nanoseconds per Memory
	// Channel link, indexed by physical node.
	LinkBusy() []int64
	// HubBusy returns the shared hub's cumulative busy virtual
	// nanoseconds; ok is false when the fabric has no hub (switched).
	HubBusy() (int64, bool)
}

// Status is the live progress snapshot served at /status. The bench
// harness fills it from its runner; cashmere-run serves a single-cell
// equivalent.
type Status struct {
	Queued  int `json:"queued"`
	Running int `json:"running"`
	Done    int `json:"done"`
	Failed  int `json:"failed"`

	// ETASeconds estimates the remaining wall time from the mean wall
	// duration of completed cells times the cells not yet done. Zero
	// until at least one cell has completed.
	ETASeconds float64 `json:"eta_seconds"`

	// Cells lists per-cell progress, running cells first.
	Cells []CellStatus `json:"cells,omitempty"`
}

// CellStatus is one benchmark cell's progress entry.
type CellStatus struct {
	Name  string `json:"name"`
	State string `json:"state"` // "queued", "running", "done", or "failed"
	// WallMS is the cell's wall-clock duration: elapsed so far for
	// running cells, final for done/failed ones, zero for queued.
	WallMS int64 `json:"wall_ms,omitempty"`
}

// Registry aggregates statistics across attached runs and serves them
// to the HTTP layer. The zero value is not ready; use NewRegistry.
type Registry struct {
	start time.Time
	now   func() time.Time // test hook

	mu     sync.Mutex
	nextID int64
	active map[int64]Run

	// Accumulated state of detached (completed) runs.
	completed     stats.Total
	completedRuns int64
	doneLinkBusy  []int64
	doneLinkVT    int64 // summed ExecNS of completed runs, the utilization denominator
	doneHubBusy   int64
	hubSeen       bool

	status func() Status     // nil until SetStatusFunc
	mp     func() []MPReport // nil until SetMPFunc
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{
		start:  time.Now(),
		now:    time.Now,
		active: make(map[int64]Run),
	}
}

// Attach registers a run for live scraping and returns its detach
// function. Detach must be called exactly once, after the run's
// goroutines have finished: it takes a final (now exact) snapshot and
// folds it into the registry's completed-run accumulators, so totals
// survive the run's cluster being garbage collected.
func (r *Registry) Attach(run Run) (detach func()) {
	r.mu.Lock()
	id := r.nextID
	r.nextID++
	r.active[id] = run
	r.mu.Unlock()

	var once sync.Once
	return func() {
		once.Do(func() {
			final := run.SnapshotStats()
			busy := run.LinkBusy()
			hub, hasHub := run.HubBusy()

			r.mu.Lock()
			defer r.mu.Unlock()
			delete(r.active, id)
			r.completed.Merge(final)
			r.completedRuns++
			r.foldLinksLocked(busy, final.ExecNS, hub, hasHub)
		})
	}
}

// foldLinksLocked accumulates one run's link and hub busy time.
func (r *Registry) foldLinksLocked(busy []int64, execNS, hub int64, hasHub bool) {
	for len(r.doneLinkBusy) < len(busy) {
		r.doneLinkBusy = append(r.doneLinkBusy, 0)
	}
	for i, b := range busy {
		r.doneLinkBusy[i] += b
	}
	r.doneLinkVT += execNS
	if hasHub {
		r.doneHubBusy += hub
		r.hubSeen = true
	}
}

// SetStatusFunc installs the provider for the /status snapshot. Passing
// nil reverts /status to an empty snapshot.
func (r *Registry) SetStatusFunc(f func() Status) {
	r.mu.Lock()
	r.status = f
	r.mu.Unlock()
}

// SetMPFunc installs the provider of the latest multi-process rank
// reports; /metrics appends their families (WriteMPPrometheus) to
// every scrape. The cashmere-run launcher installs it when children
// stream observability reports. Passing nil removes the families.
func (r *Registry) SetMPFunc(f func() []MPReport) {
	r.mu.Lock()
	r.mp = f
	r.mu.Unlock()
}

// MPReports returns the latest multi-process rank reports, or nil when
// no provider is installed.
func (r *Registry) MPReports() []MPReport {
	r.mu.Lock()
	f := r.mp
	r.mu.Unlock()
	if f == nil {
		return nil
	}
	return f()
}

// Status returns the current progress snapshot.
func (r *Registry) Status() Status {
	r.mu.Lock()
	f := r.status
	r.mu.Unlock()
	if f == nil {
		return Status{}
	}
	return f()
}

// Snapshot is the registry's aggregate view at one instant, the input
// to the Prometheus encoder.
type Snapshot struct {
	Total         stats.Total // completed runs merged with live snapshots
	ActiveRuns    int
	DoneRuns      int64
	WallSeconds   float64
	LinkBusy      []int64 // per-link busy virtual ns, summed across runs
	LinkVirtualNS int64   // summed per-run virtual time: utilization denominator
	HubBusy       int64
	HasHub        bool
}

// Snapshot collects the registry's aggregate state: the completed-run
// accumulators plus a monitoring-grade snapshot of every active run.
func (r *Registry) Snapshot() Snapshot {
	r.mu.Lock()
	s := Snapshot{
		Total:         r.completed,
		ActiveRuns:    len(r.active),
		DoneRuns:      r.completedRuns,
		WallSeconds:   r.now().Sub(r.start).Seconds(),
		LinkBusy:      append([]int64(nil), r.doneLinkBusy...),
		LinkVirtualNS: r.doneLinkVT,
		HubBusy:       r.doneHubBusy,
		HasHub:        r.hubSeen,
	}
	// Snapshot active runs outside any per-run lock but under the
	// registry lock so detach cannot double-count a run mid-scrape.
	ids := make([]int64, 0, len(r.active))
	for id := range r.active {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	for _, id := range ids {
		run := r.active[id]
		t := run.SnapshotStats()
		s.Total.Merge(t)
		busy := run.LinkBusy()
		for len(s.LinkBusy) < len(busy) {
			s.LinkBusy = append(s.LinkBusy, 0)
		}
		for i, b := range busy {
			s.LinkBusy[i] += b
		}
		s.LinkVirtualNS += t.ExecNS
		if hub, ok := run.HubBusy(); ok {
			s.HubBusy += hub
			s.HasHub = true
		}
	}
	r.mu.Unlock()
	return s
}
