package metrics

import (
	"fmt"
	"io"
	"sort"

	"cashmere/internal/trace"
)

// Sharing-pattern labels assigned by classifyPage. The taxonomy follows
// the paper's discussion of application behavior (Section 4): pages a
// protocol spends time on are usually one of these shapes, and the
// label tells the user which protocol mechanism (first-touch homes,
// exclusive mode, padding) would help.
const (
	PatternReadOnly         = "read-only"
	PatternSingleWriter     = "single-writer"
	PatternProducerConsumer = "producer-consumer"
	PatternMigratory        = "migratory"
	PatternFalseSharing     = "false-sharing"
	PatternWriteShared      = "write-shared"
)

// PageProfile aggregates one page's protocol activity over a run.
type PageProfile struct {
	Page int `json:"page"`

	// ProtocolNS sums the virtual duration of the page's read- and
	// write-fault spans — the time processors stalled resolving access
	// to it. Page-fetch spans nest inside fault spans and are not added
	// again.
	ProtocolNS int64 `json:"protocol_ns"`

	ReadFaults  int64 `json:"read_faults"`
	WriteFaults int64 `json:"write_faults"`
	Transfers   int64 `json:"transfers"`
	Shootdowns  int64 `json:"shootdowns,omitempty"`
	DiffsOut    int64 `json:"diffs_out"`
	DiffsIn     int64 `json:"diffs_in"`
	DiffWords   int64 `json:"diff_words"`

	// Readers and Writers count distinct faulting processors.
	Readers int `json:"readers"`
	Writers int `json:"writers"`

	// Samples is the number of classification-relevant events (faults
	// and diffs) behind the Pattern label. A label backed by fewer than
	// LowConfidenceSamples events is weak evidence: a page touched three
	// times can look "migratory" by accident, one touched three hundred
	// times cannot.
	Samples int64 `json:"samples"`

	Pattern string `json:"pattern"`
}

// LowConfidenceSamples is the evidence threshold below which a sharing-
// pattern label is flagged as low-confidence in the text report. The
// adaptive policy engine uses the same bar (policy.Config.MinSamples
// defaults to it) before acting on a classification.
const LowConfidenceSamples = 8

// SyncProfile aggregates acquire latency for one lock or flag.
type SyncProfile struct {
	Kind     string `json:"kind"` // "lock" or "flag"
	Index    int    `json:"index"`
	Acquires int64  `json:"acquires"`
	TotalNS  int64  `json:"total_ns"`
	MaxNS    int64  `json:"max_ns"`
}

// MeanNS returns the mean acquire latency.
func (s SyncProfile) MeanNS() int64 {
	if s.Acquires == 0 {
		return 0
	}
	return s.TotalNS / s.Acquires
}

// BarrierProfile aggregates barrier episode latency across processors.
type BarrierProfile struct {
	Episodes int64 `json:"episodes"`
	TotalNS  int64 `json:"total_ns"`
	MaxNS    int64 `json:"max_ns"`
}

// MeanNS returns the mean per-processor barrier span.
func (b BarrierProfile) MeanNS() int64 {
	if b.Episodes == 0 {
		return 0
	}
	return b.TotalNS / b.Episodes
}

// Profile is the hot-page / hot-lock attribution report for one traced
// run: the top pages by protocol time, every contended lock and flag,
// and the barrier aggregate.
type Profile struct {
	// Pages holds the top-N pages by ProtocolNS, descending.
	Pages []PageProfile `json:"pages"`
	// TotalPages is the number of distinct pages with protocol events,
	// before the top-N cut.
	TotalPages int `json:"total_pages"`

	Locks   []SyncProfile  `json:"locks,omitempty"`
	Barrier BarrierProfile `json:"barrier"`

	// DroppedEvents is the number of trace events overwritten in the
	// rings; nonzero means the attribution undercounts.
	DroppedEvents uint64 `json:"dropped_events,omitempty"`
}

// pageAcc is the per-page accumulator while scanning the event stream.
type pageAcc struct {
	prof    PageProfile
	readers map[int32]bool
	writers map[int32]bool

	// spans holds each processor's merged written-word envelope from
	// its EvDiffOut spans, for the false-sharing test.
	spans map[int32][2]int

	// lastWriter and alternations track the write-fault processor
	// sequence in virtual-time order, for the migratory test.
	lastWriter   int32
	writeSeqLen  int64
	alternations int64
}

// BuildProfile scans a tracer's recorded events and returns the
// attribution profile. topN bounds the page list (<= 0 means 20).
// Events() merges rings in virtual-time order, so the write-fault
// alternation sequence is deterministic for deterministic runs.
func BuildProfile(t *trace.Tracer, topN int) *Profile {
	if topN <= 0 {
		topN = 20
	}
	p := &Profile{DroppedEvents: t.Dropped()}

	pages := make(map[int32]*pageAcc)
	pg := func(id int32) *pageAcc {
		a := pages[id]
		if a == nil {
			a = &pageAcc{
				prof:       PageProfile{Page: int(id)},
				readers:    make(map[int32]bool),
				writers:    make(map[int32]bool),
				spans:      make(map[int32][2]int),
				lastWriter: -1,
			}
			pages[id] = a
		}
		return a
	}

	locks := make(map[[2]int64]*SyncProfile) // {kindTag, index}
	syncAcc := func(kind string, tag, idx, dur int64) {
		key := [2]int64{tag, idx}
		s := locks[key]
		if s == nil {
			s = &SyncProfile{Kind: kind, Index: int(idx)}
			locks[key] = s
		}
		s.Acquires++
		s.TotalNS += dur
		if dur > s.MaxNS {
			s.MaxNS = dur
		}
	}

	for _, e := range t.Events() {
		switch e.Kind {
		case trace.EvReadFault:
			a := pg(e.Page)
			a.prof.ReadFaults++
			a.prof.ProtocolNS += e.Dur
			a.readers[e.Proc] = true
		case trace.EvWriteFault:
			a := pg(e.Page)
			a.prof.WriteFaults++
			a.prof.ProtocolNS += e.Dur
			a.writers[e.Proc] = true
			a.writeSeqLen++
			if a.lastWriter >= 0 && a.lastWriter != e.Proc {
				a.alternations++
			}
			a.lastWriter = e.Proc
		case trace.EvPageFetch:
			pg(e.Page).prof.Transfers++
		case trace.EvShootdown:
			pg(e.Page).prof.Shootdowns++
		case trace.EvDiffOut:
			a := pg(e.Page)
			a.prof.DiffsOut++
			a.prof.DiffWords += e.Arg
			a.writers[e.Proc] = true
			if lo, hi, ok := trace.UnpackWordSpan(e.Arg2); ok {
				if sp, seen := a.spans[e.Proc]; seen {
					if lo < sp[0] {
						sp[0] = lo
					}
					if hi > sp[1] {
						sp[1] = hi
					}
					a.spans[e.Proc] = sp
				} else {
					a.spans[e.Proc] = [2]int{lo, hi}
				}
			}
		case trace.EvDiffIn:
			a := pg(e.Page)
			a.prof.DiffsIn++
			a.prof.DiffWords += e.Arg
		case trace.EvLock:
			syncAcc("lock", 0, e.Arg, e.Dur)
		case trace.EvFlagWait:
			syncAcc("flag", 1, e.Arg, e.Dur)
		case trace.EvBarrier:
			p.Barrier.Episodes++
			p.Barrier.TotalNS += e.Dur
			if e.Dur > p.Barrier.MaxNS {
				p.Barrier.MaxNS = e.Dur
			}
		}
	}

	p.TotalPages = len(pages)
	all := make([]*pageAcc, 0, len(pages))
	for _, a := range pages {
		a.prof.Readers = len(a.readers)
		a.prof.Writers = len(a.writers)
		a.prof.Samples = a.prof.ReadFaults + a.prof.WriteFaults +
			a.prof.DiffsOut + a.prof.DiffsIn
		a.prof.Pattern = classifyPage(a)
		all = append(all, a)
	}
	sort.Slice(all, func(i, j int) bool {
		if all[i].prof.ProtocolNS != all[j].prof.ProtocolNS {
			return all[i].prof.ProtocolNS > all[j].prof.ProtocolNS
		}
		return all[i].prof.Page < all[j].prof.Page
	})
	if len(all) > topN {
		all = all[:topN]
	}
	for _, a := range all {
		p.Pages = append(p.Pages, a.prof)
	}

	lk := make([]SyncProfile, 0, len(locks))
	for _, s := range locks {
		lk = append(lk, *s)
	}
	sort.Slice(lk, func(i, j int) bool {
		if lk[i].TotalNS != lk[j].TotalNS {
			return lk[i].TotalNS > lk[j].TotalNS
		}
		if lk[i].Kind != lk[j].Kind {
			return lk[i].Kind < lk[j].Kind
		}
		return lk[i].Index < lk[j].Index
	})
	p.Locks = lk
	return p
}

// classifyPage assigns the sharing-pattern label.
//
//   - No writer: read-only.
//   - One writer with other readers: producer-consumer. Alone:
//     single-writer.
//   - Multiple writers whose flushed word envelopes are pairwise
//     disjoint: false-sharing candidate — distinct processors modify
//     distinct parts of the page and share it only because they share
//     the coherence block.
//   - Multiple writers whose write faults alternate between processors
//     at least three quarters of the time: migratory — the page moves
//     writer to writer (a reduction variable, a task queue head).
//   - Anything else: write-shared.
func classifyPage(a *pageAcc) string {
	outsideReader := false
	for r := range a.readers {
		if !a.writers[r] {
			outsideReader = true
			break
		}
	}
	return ClassifySharing(len(a.readers), len(a.writers), outsideReader,
		len(a.spans) >= 2 && disjointSpans(a.spans),
		a.writeSeqLen, a.alternations)
}

// ClassifySharing is the sharing-pattern decision procedure behind
// classifyPage, exported so the adaptive policy engine (internal/policy)
// applies the same taxonomy to its online per-epoch counters that the
// offline profiler applies to a full trace.
//
// readers and writers count distinct faulting processors;
// outsideReader reports whether some reader is not also a writer;
// spansDisjoint reports whether multiple writers' flushed word
// envelopes are pairwise disjoint (callers without span tracking pass
// false, which only forfeits the false-sharing label); writeSeqLen and
// alternations describe the write-fault processor sequence (callers
// without ordering pass 0, 0, which only forfeits the migratory label).
func ClassifySharing(readers, writers int, outsideReader, spansDisjoint bool, writeSeqLen, alternations int64) string {
	if writers == 0 {
		return PatternReadOnly
	}
	if writers == 1 {
		if outsideReader {
			return PatternProducerConsumer
		}
		return PatternSingleWriter
	}
	if spansDisjoint {
		return PatternFalseSharing
	}
	if writeSeqLen >= 4 && alternations*4 >= (writeSeqLen-1)*3 {
		return PatternMigratory
	}
	return PatternWriteShared
}

// disjointSpans reports whether every pair of per-processor word
// envelopes is non-overlapping.
func disjointSpans(spans map[int32][2]int) bool {
	list := make([][2]int, 0, len(spans))
	for _, sp := range spans {
		list = append(list, sp)
	}
	sort.Slice(list, func(i, j int) bool { return list[i][0] < list[j][0] })
	for i := 1; i < len(list); i++ {
		if list[i][0] <= list[i-1][1] {
			return false
		}
	}
	return true
}

// WriteText renders the profile as the -profile text report.
func (p *Profile) WriteText(w io.Writer) error {
	fmt.Fprintf(w, "hot pages (%d of %d with protocol activity)\n", len(p.Pages), p.TotalPages)
	fmt.Fprintf(w, "%6s %12s %7s %7s %6s %6s %6s %4s %4s %6s  %s\n",
		"page", "proto-ns", "rfault", "wfault", "fetch", "dout", "din", "rd", "wr", "smpl", "pattern")
	for _, pg := range p.Pages {
		pattern := pg.Pattern
		if pg.Samples < LowConfidenceSamples {
			pattern += " ?" // too few samples to trust the label
		}
		fmt.Fprintf(w, "%6d %12d %7d %7d %6d %6d %6d %4d %4d %6d  %s\n",
			pg.Page, pg.ProtocolNS, pg.ReadFaults, pg.WriteFaults, pg.Transfers,
			pg.DiffsOut, pg.DiffsIn, pg.Readers, pg.Writers, pg.Samples, pattern)
	}

	if len(p.Locks) > 0 {
		fmt.Fprintf(w, "\nhot locks/flags\n")
		fmt.Fprintf(w, "%6s %5s %9s %12s %12s %12s\n",
			"kind", "idx", "acquires", "total-ns", "mean-ns", "max-ns")
		for _, l := range p.Locks {
			fmt.Fprintf(w, "%6s %5d %9d %12d %12d %12d\n",
				l.Kind, l.Index, l.Acquires, l.TotalNS, l.MeanNS(), l.MaxNS)
		}
	}

	if p.Barrier.Episodes > 0 {
		fmt.Fprintf(w, "\nbarriers: %d episodes, mean %d ns, max %d ns\n",
			p.Barrier.Episodes, p.Barrier.MeanNS(), p.Barrier.MaxNS)
	}
	if p.DroppedEvents > 0 {
		fmt.Fprintf(w, "\nwarning: %d trace events dropped; attribution undercounts\n", p.DroppedEvents)
	}
	return nil
}
