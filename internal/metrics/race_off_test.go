//go:build !race

package metrics_test

// raceEnabled mirrors internal/bench's build-tag constant: the golden
// scrape test relies on bit-identical virtual-time results, which hold
// only under GOMAXPROCS(1) without the race detector's scheduling
// perturbation (see the determinism tests in internal/bench).
const raceEnabled = false
