package metrics_test

import (
	"strings"
	"testing"

	"cashmere/internal/apps"
	"cashmere/internal/core"
	"cashmere/internal/metrics"
	"cashmere/internal/trace"
)

// emit writes one event on proc's ring with the given virtual time.
func emit(t *trace.Tracer, proc int, e trace.Event) {
	e.Proc = int32(proc)
	t.EmitProc(proc, e)
}

func TestProfileClassification(t *testing.T) {
	tr := trace.New(trace.Config{Procs: 4, Links: 2})

	// Page 0: read-only — two readers, no writer.
	emit(tr, 0, trace.Event{Kind: trace.EvReadFault, Page: 0, VT: 10, Dur: 100})
	emit(tr, 1, trace.Event{Kind: trace.EvReadFault, Page: 0, VT: 20, Dur: 100})

	// Page 1: single-writer — proc 2 writes, nobody else reads.
	emit(tr, 2, trace.Event{Kind: trace.EvWriteFault, Page: 1, VT: 30, Dur: 50})

	// Page 2: producer-consumer — proc 0 writes, procs 1 and 3 read.
	emit(tr, 0, trace.Event{Kind: trace.EvWriteFault, Page: 2, VT: 40, Dur: 300})
	emit(tr, 1, trace.Event{Kind: trace.EvReadFault, Page: 2, VT: 50, Dur: 200})
	emit(tr, 3, trace.Event{Kind: trace.EvReadFault, Page: 2, VT: 60, Dur: 200})

	// Page 3: false-sharing — procs 0 and 1 write disjoint word ranges.
	emit(tr, 0, trace.Event{Kind: trace.EvWriteFault, Page: 3, VT: 70, Dur: 400})
	emit(tr, 1, trace.Event{Kind: trace.EvWriteFault, Page: 3, VT: 80, Dur: 400})
	emit(tr, 0, trace.Event{Kind: trace.EvDiffOut, Page: 3, VT: 90, Arg: 4, Arg2: trace.PackWordSpan(0, 7)})
	emit(tr, 1, trace.Event{Kind: trace.EvDiffOut, Page: 3, VT: 95, Arg: 4, Arg2: trace.PackWordSpan(512, 519)})

	// Page 4: migratory — write faults strictly alternate 0,1,0,1 and
	// their flushed spans overlap.
	for i := 0; i < 4; i++ {
		emit(tr, i%2, trace.Event{Kind: trace.EvWriteFault, Page: 4, VT: int64(100 + 10*i), Dur: 150})
		emit(tr, i%2, trace.Event{Kind: trace.EvDiffOut, Page: 4, VT: int64(105 + 10*i), Arg: 2, Arg2: trace.PackWordSpan(0, 1)})
	}

	// Page 5: write-shared — two writers, overlapping spans, repeated
	// faults by the same proc (low alternation).
	for i := 0; i < 4; i++ {
		emit(tr, 0, trace.Event{Kind: trace.EvWriteFault, Page: 5, VT: int64(200 + 10*i), Dur: 100})
	}
	for i := 0; i < 4; i++ {
		emit(tr, 1, trace.Event{Kind: trace.EvWriteFault, Page: 5, VT: int64(240 + 10*i), Dur: 100})
	}
	emit(tr, 0, trace.Event{Kind: trace.EvDiffOut, Page: 5, VT: 300, Arg: 3, Arg2: trace.PackWordSpan(0, 9)})
	emit(tr, 1, trace.Event{Kind: trace.EvDiffOut, Page: 5, VT: 310, Arg: 3, Arg2: trace.PackWordSpan(5, 12)})

	// Lock, flag, and barrier latency.
	emit(tr, 0, trace.Event{Kind: trace.EvLock, Page: -1, VT: 400, Dur: 1000, Arg: 3})
	emit(tr, 1, trace.Event{Kind: trace.EvLock, Page: -1, VT: 410, Dur: 3000, Arg: 3})
	emit(tr, 2, trace.Event{Kind: trace.EvFlagWait, Page: -1, VT: 420, Dur: 500, Arg: 1})
	emit(tr, 0, trace.Event{Kind: trace.EvBarrier, Page: -1, VT: 430, Dur: 2000})
	emit(tr, 1, trace.Event{Kind: trace.EvBarrier, Page: -1, VT: 430, Dur: 4000})

	p := metrics.BuildProfile(tr, 0)

	want := map[int]string{
		0: metrics.PatternReadOnly,
		1: metrics.PatternSingleWriter,
		2: metrics.PatternProducerConsumer,
		3: metrics.PatternFalseSharing,
		4: metrics.PatternMigratory,
		5: metrics.PatternWriteShared,
	}
	got := map[int]string{}
	for _, pg := range p.Pages {
		got[pg.Page] = pg.Pattern
	}
	for page, pattern := range want {
		if got[page] != pattern {
			t.Errorf("page %d: pattern %q, want %q", page, got[page], pattern)
		}
	}
	if p.TotalPages != 6 {
		t.Errorf("TotalPages = %d, want 6", p.TotalPages)
	}

	// Ranking: page 5 (800ns of write faults) must come before page 1
	// (50ns).
	rank := map[int]int{}
	for i, pg := range p.Pages {
		rank[pg.Page] = i
	}
	if rank[5] > rank[1] {
		t.Errorf("page 5 (hot) ranked below page 1 (cold): %v", rank)
	}

	if len(p.Locks) != 2 {
		t.Fatalf("lock profiles: %+v", p.Locks)
	}
	if l := p.Locks[0]; l.Kind != "lock" || l.Index != 3 || l.Acquires != 2 || l.TotalNS != 4000 || l.MaxNS != 3000 || l.MeanNS() != 2000 {
		t.Errorf("hottest lock: %+v", l)
	}
	if l := p.Locks[1]; l.Kind != "flag" || l.Index != 1 || l.Acquires != 1 {
		t.Errorf("flag profile: %+v", l)
	}
	if p.Barrier.Episodes != 2 || p.Barrier.MaxNS != 4000 || p.Barrier.MeanNS() != 3000 {
		t.Errorf("barrier profile: %+v", p.Barrier)
	}

	var b strings.Builder
	if err := p.WriteText(&b); err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"hot pages", "false-sharing", "hot locks/flags", "barriers: 2 episodes"} {
		if !strings.Contains(b.String(), want) {
			t.Errorf("report missing %q:\n%s", want, b.String())
		}
	}
}

func TestProfileTopNCut(t *testing.T) {
	tr := trace.New(trace.Config{Procs: 1, Links: 1})
	for page := 0; page < 30; page++ {
		emit(tr, 0, trace.Event{Kind: trace.EvReadFault, Page: int32(page), VT: int64(page), Dur: int64(1 + page)})
	}
	p := metrics.BuildProfile(tr, 5)
	if len(p.Pages) != 5 || p.TotalPages != 30 {
		t.Fatalf("topN cut: %d pages listed of %d", len(p.Pages), p.TotalPages)
	}
	if p.Pages[0].Page != 29 {
		t.Errorf("hottest page should rank first, got %d", p.Pages[0].Page)
	}
}

// TestProfileRealRuns builds profiles from real traced SOR and TSP
// runs: pages must rank with patterns assigned and protocol time
// attributed (the acceptance criterion for -profile).
func TestProfileRealRuns(t *testing.T) {
	for _, app := range []apps.App{apps.SmallSOR(), apps.SmallTSP()} {
		t.Run(app.Name(), func(t *testing.T) {
			tr := trace.New(trace.Config{Procs: 4, Links: 2})
			cfg := core.Config{
				Nodes:        2,
				ProcsPerNode: 2,
				Protocol:     core.TwoLevel,
				Trace:        tr,
			}
			if _, err := apps.Run(app, cfg); err != nil {
				t.Fatal(err)
			}
			p := metrics.BuildProfile(tr, 10)
			if len(p.Pages) == 0 {
				t.Fatal("no hot pages attributed")
			}
			if p.Pages[0].ProtocolNS <= 0 {
				t.Errorf("hottest page has no protocol time: %+v", p.Pages[0])
			}
			for _, pg := range p.Pages {
				if pg.Pattern == "" {
					t.Errorf("page %d has no sharing pattern", pg.Page)
				}
			}
			for i := 1; i < len(p.Pages); i++ {
				if p.Pages[i].ProtocolNS > p.Pages[i-1].ProtocolNS {
					t.Errorf("pages not ranked by protocol time at %d", i)
				}
			}
			if app.Name() == "TSP" && p.Barrier.Episodes == 0 && len(p.Locks) == 0 {
				t.Error("TSP run attributed no synchronization at all")
			}
		})
	}
}
