package metrics

import (
	"net/http/httptest"
	"strings"
	"testing"

	"cashmere/internal/trace"
	"cashmere/internal/transport"
)

func sampleReports() []MPReport {
	frames0 := &transport.MsgSnapshot{
		Peers: 2,
		Sent: []transport.FlowCount{
			{Peer: 1, Type: "page-req", Frames: 4, Bytes: 200},
			{Peer: 1, Type: "diff", Frames: 2, Bytes: 400},
		},
		Recv: []transport.FlowCount{
			{Peer: 1, Type: "page-reply", Frames: 4, Bytes: 600},
		},
		PageFetchNS: trace.Hist{Count: 4, Sum: 4000, Buckets: []trace.HistBucket{{Lo: 512, Count: 4}}},
	}
	frames1 := &transport.MsgSnapshot{
		Peers: 2,
		Sent: []transport.FlowCount{
			{Peer: 0, Type: "page-req", Frames: 3, Bytes: 150},
		},
		PageFetchNS: trace.Hist{Count: 3, Sum: 300, Buckets: []trace.HistBucket{{Lo: 64, Count: 3}}},
	}
	return []MPReport{
		{Rank: 0, Nodes: 2, PPN: 2, App: "SOR", Final: true,
			EpochUnixNS: 1_000_000, OffsetsNS: []int64{0, 500},
			Frames: frames0,
			TraceEvents: []trace.Event{
				{Kind: trace.EvBarrier, Proc: 0, Node: 0, Page: -1, VT: 10, Dur: 5},
			}},
		{Rank: 1, Nodes: 2, PPN: 2, App: "SOR", Final: true,
			EpochUnixNS: 1_000_400, OffsetsNS: []int64{-500, 0},
			Frames: frames1,
			TraceEvents: []trace.Event{
				{Kind: trace.EvBarrier, Proc: 0, Node: 1, Page: -1, VT: 20, Dur: 6},
			},
			TraceDropped: 3},
	}
}

func TestMPReportRoundTrip(t *testing.T) {
	for _, rep := range sampleReports() {
		line, err := EncodeMPReport(rep)
		if err != nil {
			t.Fatal(err)
		}
		if strings.ContainsAny(line, "\n\r") {
			t.Fatalf("encoded report contains a newline: %q", line)
		}
		back, err := DecodeMPReport(line)
		if err != nil {
			t.Fatal(err)
		}
		if back.Rank != rep.Rank || back.Final != rep.Final ||
			back.EpochUnixNS != rep.EpochUnixNS ||
			len(back.TraceEvents) != len(rep.TraceEvents) ||
			back.TraceDropped != rep.TraceDropped {
			t.Errorf("round trip lost data: %+v vs %+v", back, rep)
		}
		if rep.Frames != nil && (back.Frames == nil || back.Frames.PageFetchNS.Count != rep.Frames.PageFetchNS.Count) {
			t.Errorf("frames lost in round trip")
		}
	}
	if _, err := DecodeMPReport("{not json"); err == nil {
		t.Error("DecodeMPReport accepted malformed input")
	}
	if _, err := DecodeMPReport(`{"rank":0,"surprise":1}`); err == nil {
		t.Error("DecodeMPReport accepted unknown fields (protocol drift would pass silently)")
	}
}

func TestMPTracksAlignment(t *testing.T) {
	// Reports arrive in reverse rank order; tracks come back sorted with
	// rank 0's clock as the reference.
	reports := sampleReports()
	reports[0], reports[1] = reports[1], reports[0]
	tracks, err := MPTracks(reports)
	if err != nil {
		t.Fatal(err)
	}
	if len(tracks) != 2 || tracks[0].Rank != 0 || tracks[1].Rank != 1 {
		t.Fatalf("tracks = %+v", tracks)
	}
	if tracks[0].Procs != 2 || tracks[1].Procs != 2 {
		t.Errorf("Procs not carried: %+v", tracks)
	}
	// Rank 0: epoch 1_000_000, offset to itself 0.
	if tracks[0].OffsetNS != 1_000_000 {
		t.Errorf("rank 0 offset = %d, want 1000000", tracks[0].OffsetNS)
	}
	// Rank 1: epoch 1_000_400 in its own clock, which rank 0 estimates
	// runs 500 ns ahead → 999_900 on rank 0's clock.
	if tracks[1].OffsetNS != 999_900 {
		t.Errorf("rank 1 offset = %d, want 999900", tracks[1].OffsetNS)
	}
}

func TestMPTracksMissingRank(t *testing.T) {
	reports := sampleReports()

	if _, err := MPTracks(reports[:1]); err == nil || !strings.Contains(err.Error(), "rank(s) [1]") {
		t.Errorf("missing rank 1 not reported: %v", err)
	}

	nonFinal := append([]MPReport(nil), reports...)
	nonFinal[1].Final = false
	if _, err := MPTracks(nonFinal); err == nil || !strings.Contains(err.Error(), "rank(s) [1]") {
		t.Errorf("non-final report accepted as a trace source: %v", err)
	}

	dup := []MPReport{reports[0], reports[0]}
	if _, err := MPTracks(dup); err == nil || !strings.Contains(err.Error(), "duplicate") {
		t.Errorf("duplicate rank accepted: %v", err)
	}

	if _, err := MPTracks(nil); err == nil {
		t.Error("empty report set accepted")
	}
}

func TestWriteMPPrometheus(t *testing.T) {
	var b strings.Builder
	if err := WriteMPPrometheus(&b, sampleReports()); err != nil {
		t.Fatal(err)
	}
	out := b.String()

	for _, want := range []string{
		"cashmere_mp_ranks 2\n",
		`cashmere_mp_frames_total{rank="0",peer="1",dir="sent",type="page-req"} 4`,
		`cashmere_mp_frames_total{rank="1",peer="0",dir="sent",type="page-req"} 3`,
		`cashmere_mp_frame_bytes_total{rank="0",peer="1",dir="recv",type="page-reply"} 600`,
		// Histogram aggregated across ranks: 3 samples in [64,128), 4 in
		// [512,1024), cumulative at le=1024 is 7.
		`cashmere_mp_page_fetch_latency_ns_bucket{le="128"} 3`,
		`cashmere_mp_page_fetch_latency_ns_bucket{le="1024"} 7`,
		`cashmere_mp_page_fetch_latency_ns_bucket{le="+Inf"} 7`,
		"cashmere_mp_page_fetch_latency_ns_sum 4300",
		"cashmere_mp_page_fetch_latency_ns_count 7",
		`cashmere_mp_trace_events{rank="0"} 1`,
		`cashmere_mp_trace_dropped_total{rank="1"} 3`,
	} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q\n%s", want, out)
		}
	}

	// Deterministic: same input, same bytes.
	var b2 strings.Builder
	if err := WriteMPPrometheus(&b2, sampleReports()); err != nil {
		t.Fatal(err)
	}
	if b2.String() != out {
		t.Error("WriteMPPrometheus output not deterministic")
	}
}

// TestMetricsEndpointServesMPFamilies wires an MP provider into a
// registry and scrapes /metrics through the HTTP handler, proving the
// parent's aggregated exposition includes both the core families and
// the cashmere_mp_* families.
func TestMetricsEndpointServesMPFamilies(t *testing.T) {
	reg := NewRegistry()
	reg.SetMPFunc(func() []MPReport { return sampleReports() })

	srv := httptest.NewServer(reg.Handler())
	defer srv.Close()
	resp, err := srv.Client().Get(srv.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var sb strings.Builder
	buf := make([]byte, 32<<10)
	for {
		n, err := resp.Body.Read(buf)
		sb.Write(buf[:n])
		if err != nil {
			break
		}
	}
	out := sb.String()
	for _, want := range []string{"cashmere_counter_total", "cashmere_mp_ranks 2", "cashmere_mp_frames_total{"} {
		if !strings.Contains(out, want) {
			t.Errorf("/metrics missing %q", want)
		}
	}

	reg.SetMPFunc(nil)
	if got := reg.MPReports(); got != nil {
		t.Errorf("MPReports after SetMPFunc(nil) = %v", got)
	}
}
