package metrics

import (
	"context"
	"encoding/json"
	"net"
	"net/http"
	"net/http/pprof"
	"time"
)

// Server is the opt-in introspection HTTP server started by the -http
// flag of cashmere-run and cashmere-bench.
type Server struct {
	// Addr is the bound listen address (useful with ":0").
	Addr string

	srv *http.Server
	ln  net.Listener
}

// Handler returns the registry's HTTP handler: /metrics (Prometheus
// text format), /status (JSON progress snapshot), and /debug/pprof.
// It is exposed separately from Start so tests can drive it through
// httptest without opening a port.
func (r *Registry) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, req *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		_ = WritePrometheus(w, r.Snapshot())
		if reports := r.MPReports(); len(reports) > 0 {
			_ = WriteMPPrometheus(w, reports)
		}
	})
	mux.HandleFunc("/status", func(w http.ResponseWriter, req *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		enc := json.NewEncoder(w)
		enc.SetIndent("", " ")
		_ = enc.Encode(r.Status())
	})
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	mux.HandleFunc("/", func(w http.ResponseWriter, req *http.Request) {
		if req.URL.Path != "/" {
			http.NotFound(w, req)
			return
		}
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		_, _ = w.Write([]byte("cashmere metrics: /metrics /status /debug/pprof/\n"))
	})
	return mux
}

// Start listens on addr (host:port; ":0" picks a free port) and serves
// the registry's handler in a background goroutine. The returned
// server's Addr holds the bound address.
func (r *Registry) Start(addr string) (*Server, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, err
	}
	s := &Server{
		Addr: ln.Addr().String(),
		srv:  &http.Server{Handler: r.Handler()},
		ln:   ln,
	}
	go func() { _ = s.srv.Serve(ln) }()
	return s, nil
}

// Close shuts the server down, waiting briefly for in-flight scrapes.
func (s *Server) Close() error {
	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Second)
	defer cancel()
	return s.srv.Shutdown(ctx)
}
