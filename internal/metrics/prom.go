package metrics

import (
	"fmt"
	"io"
	"sort"
	"strings"
)

// WritePrometheus renders a registry snapshot in the Prometheus text
// exposition format (version 0.0.4). Output is deterministic: metric
// families appear in a fixed order and labeled series are sorted by
// label value, so a scrape of a quiescent registry is byte-stable (the
// golden test relies on this, scrubbing only the wall-clock gauge).
func WritePrometheus(w io.Writer, s Snapshot) error {
	b := &strings.Builder{}

	family := func(name, help, typ string) {
		fmt.Fprintf(b, "# HELP %s %s\n# TYPE %s %s\n", name, help, name, typ)
	}

	family("cashmere_counter_total", "Protocol event counters (Table 3), summed across runs.", "counter")
	writeLabeledInts(b, "cashmere_counter_total", "counter", s.Total.CountsMap())

	family("cashmere_component_time_ns", "Execution-time breakdown (Figure 6) in virtual nanoseconds, summed across processors and runs.", "counter")
	writeLabeledInts(b, "cashmere_component_time_ns", "component", s.Total.TimeMap())

	family("cashmere_data_bytes_total", "Memory Channel payload traffic in bytes.", "counter")
	fmt.Fprintf(b, "cashmere_data_bytes_total %d\n", s.Total.DataBytes)

	family("cashmere_virtual_time_ns", "Virtual execution time of the slowest processor of the longest run.", "gauge")
	fmt.Fprintf(b, "cashmere_virtual_time_ns %d\n", s.Total.ExecNS)

	family("cashmere_wall_time_seconds", "Host wall-clock seconds since the metrics registry was created.", "gauge")
	fmt.Fprintf(b, "cashmere_wall_time_seconds %g\n", s.WallSeconds)

	family("cashmere_procs", "Simulated processors, summed across runs.", "gauge")
	fmt.Fprintf(b, "cashmere_procs %d\n", s.Total.Procs)

	family("cashmere_runs_active", "Clusters currently attached and running.", "gauge")
	fmt.Fprintf(b, "cashmere_runs_active %d\n", s.ActiveRuns)

	family("cashmere_runs_completed_total", "Clusters that have run to completion and detached.", "counter")
	fmt.Fprintf(b, "cashmere_runs_completed_total %d\n", s.DoneRuns)

	family("cashmere_link_busy_ns_total", "Per-link Memory Channel busy (occupied) virtual nanoseconds, indexed by physical node and summed across runs.", "counter")
	for i, busy := range s.LinkBusy {
		fmt.Fprintf(b, "cashmere_link_busy_ns_total{link=\"%d\"} %d\n", i, busy)
	}

	family("cashmere_link_utilization", "Per-link busy fraction: busy time over summed per-run virtual execution time.", "gauge")
	for i, busy := range s.LinkBusy {
		fmt.Fprintf(b, "cashmere_link_utilization{link=\"%d\"} %s\n", i, ratio(busy, s.LinkVirtualNS))
	}

	if s.HasHub {
		family("cashmere_hub_busy_ns_total", "Memory Channel hub busy virtual nanoseconds, summed across runs (absent for switched fabrics).", "counter")
		fmt.Fprintf(b, "cashmere_hub_busy_ns_total %d\n", s.HubBusy)

		family("cashmere_hub_utilization", "Hub busy fraction: busy time over summed per-run virtual execution time.", "gauge")
		fmt.Fprintf(b, "cashmere_hub_utilization %s\n", ratio(s.HubBusy, s.LinkVirtualNS))
	}

	_, err := io.WriteString(w, b.String())
	return err
}

// writeLabeledInts emits one series per map entry, sorted by label
// value for deterministic output.
func writeLabeledInts(b *strings.Builder, name, label string, m map[string]int64) {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		// %q escapes quotes, backslashes, and newlines exactly as the
		// exposition format requires of label values.
		fmt.Fprintf(b, "%s{%s=%q} %d\n", name, label, k, m[k])
	}
}

// ratio formats busy/total as a fraction, "0" when the denominator is
// zero (nothing has run yet).
func ratio(busy, total int64) string {
	if total <= 0 {
		return "0"
	}
	return fmt.Sprintf("%g", float64(busy)/float64(total))
}
