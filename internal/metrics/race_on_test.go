//go:build race

package metrics_test

const raceEnabled = true
