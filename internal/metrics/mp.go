package metrics

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"
	"strings"

	"cashmere/internal/trace"
	"cashmere/internal/transport"
)

// Multi-process observability: the report a child rank ships to the
// cashmere-run launcher over the stdio rendezvous, the clock-aligned
// merge of per-rank trace buffers, and the Prometheus families the
// parent serves for the whole cluster.
//
// The collection protocol is one line of JSON (EncodeMPReport /
// DecodeMPReport) on the child's stdout, tagged by the launcher so it
// never collides with application output. Periodic reports carry
// frame-counter snapshots only; the final report additionally carries
// the rank's trace buffer, its tracer epoch, and its clock-offset
// estimates so the parent can merge all ranks onto one timeline.

// MPReport is one rank's observability snapshot.
type MPReport struct {
	Rank  int    `json:"rank"`
	Nodes int    `json:"nodes"`
	PPN   int    `json:"ppn"`
	App   string `json:"app,omitempty"`
	// Final marks the run-exit report, the one carrying the trace
	// buffer; earlier periodic reports are monitoring-grade.
	Final bool `json:"final,omitempty"`

	// EpochUnixNS is the rank's tracer start in its own wall clock
	// (unix nanoseconds); event VT stamps are relative to it.
	EpochUnixNS int64 `json:"epoch_unix_ns,omitempty"`
	// OffsetsNS[j] estimates rank j's clock minus this rank's clock,
	// measured during the transport hello exchange (zero at self, and
	// everywhere for backends without clock estimation).
	OffsetsNS []int64 `json:"offsets_ns,omitempty"`

	// Frames is the transport seam's traffic snapshot.
	Frames *transport.MsgSnapshot `json:"frames,omitempty"`

	// TraceEvents is the rank's committed event buffer (final reports
	// only); TraceDropped counts events lost to ring wraparound.
	TraceEvents  []trace.Event `json:"trace_events,omitempty"`
	TraceDropped uint64        `json:"trace_dropped,omitempty"`
}

// EncodeMPReport renders rep as a single line of JSON (no interior
// newlines), ready to ship over the stdio rendezvous.
func EncodeMPReport(rep MPReport) (string, error) {
	buf, err := json.Marshal(rep)
	if err != nil {
		return "", err
	}
	return string(buf), nil
}

// DecodeMPReport parses a line produced by EncodeMPReport.
func DecodeMPReport(line string) (MPReport, error) {
	var rep MPReport
	dec := json.NewDecoder(strings.NewReader(line))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&rep); err != nil {
		return MPReport{}, fmt.Errorf("metrics: bad mp report: %w", err)
	}
	return rep, nil
}

// MPTracks converts the final per-rank reports of one run into merged
// trace tracks for trace.WriteChromeRanks, aligning every rank's clock
// to rank 0's using rank 0's offset estimates: an event at rank-local
// wall time Epoch_r + VT lands on the merged timeline at
// Epoch_r + VT − offset0[r] (offset0[r] ≈ rank r's clock minus rank
// 0's). reports may arrive in any order; every rank 0..Nodes-1 must be
// present exactly once and final, or MPTracks reports which are
// missing rather than merging a partial timeline.
func MPTracks(reports []MPReport) ([]trace.RankTrack, error) {
	if len(reports) == 0 {
		return nil, fmt.Errorf("metrics: no rank reports to merge")
	}
	nodes := reports[0].Nodes
	byRank := make(map[int]MPReport, len(reports))
	for _, rep := range reports {
		if rep.Nodes != nodes {
			return nil, fmt.Errorf("metrics: rank %d says %d nodes, rank %d says %d",
				reports[0].Rank, nodes, rep.Rank, rep.Nodes)
		}
		if rep.Rank < 0 || rep.Rank >= nodes {
			return nil, fmt.Errorf("metrics: rank %d outside 0..%d", rep.Rank, nodes-1)
		}
		if _, dup := byRank[rep.Rank]; dup {
			return nil, fmt.Errorf("metrics: duplicate report for rank %d", rep.Rank)
		}
		byRank[rep.Rank] = rep
	}
	var missing []int
	for r := 0; r < nodes; r++ {
		if rep, ok := byRank[r]; !ok || !rep.Final {
			missing = append(missing, r)
		}
	}
	if len(missing) > 0 {
		return nil, fmt.Errorf("metrics: missing final trace report from rank(s) %v", missing)
	}
	offset0 := byRank[0].OffsetsNS
	tracks := make([]trace.RankTrack, 0, nodes)
	for r := 0; r < nodes; r++ {
		rep := byRank[r]
		var off int64
		if r < len(offset0) {
			off = offset0[r]
		}
		tracks = append(tracks, trace.RankTrack{
			Rank:     r,
			Procs:    rep.PPN,
			OffsetNS: rep.EpochUnixNS - off,
			Events:   rep.TraceEvents,
		})
	}
	return tracks, nil
}

// WriteMPPrometheus renders the multi-process metric families from the
// latest per-rank reports in the Prometheus text exposition format.
// Output is deterministic for fixed reports: ranks ascend, and within
// a rank the flow series keep their snapshot order (peer, then wire
// type code). Latency histograms are aggregated across ranks; their
// power-of-two buckets become cumulative le bounds.
func WriteMPPrometheus(w io.Writer, reports []MPReport) error {
	b := &strings.Builder{}

	sorted := append([]MPReport(nil), reports...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i].Rank < sorted[j].Rank })

	family := func(name, help, typ string) {
		fmt.Fprintf(b, "# HELP %s %s\n# TYPE %s %s\n", name, help, name, typ)
	}

	family("cashmere_mp_ranks", "Ranks that have reported observability data.", "gauge")
	fmt.Fprintf(b, "cashmere_mp_ranks %d\n", len(sorted))

	emitFlows := func(name string, value func(f transport.FlowCount) int64) {
		for _, rep := range sorted {
			if rep.Frames == nil {
				continue
			}
			emit := func(dir string, flows []transport.FlowCount) {
				for _, f := range flows {
					fmt.Fprintf(b, "%s{rank=\"%d\",peer=\"%d\",dir=%q,type=%q} %d\n",
						name, rep.Rank, f.Peer, dir, f.Type, value(f))
				}
			}
			emit("sent", rep.Frames.Sent)
			emit("recv", rep.Frames.Recv)
		}
	}

	family("cashmere_mp_frames_total", "Wire frames at the transport seam by rank, peer, direction, and frame type.", "counter")
	emitFlows("cashmere_mp_frames_total", func(f transport.FlowCount) int64 { return f.Frames })

	family("cashmere_mp_frame_bytes_total", "Encoded frame bytes at the transport seam by rank, peer, direction, and frame type.", "counter")
	emitFlows("cashmere_mp_frame_bytes_total", func(f transport.FlowCount) int64 { return f.Bytes })

	writeHist := func(name, help string, pick func(s *transport.MsgSnapshot) trace.Hist) {
		merged := map[int64]int64{}
		var count, sum int64
		for _, rep := range sorted {
			if rep.Frames == nil {
				continue
			}
			h := pick(rep.Frames)
			count += h.Count
			sum += h.Sum
			for _, bk := range h.Buckets {
				merged[bk.Lo] += bk.Count
			}
		}
		family(name, help, "histogram")
		los := make([]int64, 0, len(merged))
		for lo := range merged {
			los = append(los, lo)
		}
		sort.Slice(los, func(i, j int) bool { return los[i] < los[j] })
		var cum int64
		for _, lo := range los {
			cum += merged[lo]
			// Bucket [lo, 2lo) upper-bounds at 2lo; the zero bucket holds
			// exactly zero.
			le := 2 * lo
			fmt.Fprintf(b, "%s_bucket{le=\"%d\"} %d\n", name, le, cum)
		}
		fmt.Fprintf(b, "%s_bucket{le=\"+Inf\"} %d\n", name, count)
		fmt.Fprintf(b, "%s_sum %d\n", name, sum)
		fmt.Fprintf(b, "%s_count %d\n", name, count)
	}

	writeHist("cashmere_mp_page_fetch_latency_ns",
		"TPageReq to TPageReply wall latency at the requester, aggregated across ranks.",
		func(s *transport.MsgSnapshot) trace.Hist { return s.PageFetchNS })
	writeHist("cashmere_mp_flush_ack_latency_ns",
		"TDiff to TFlushAck wall latency at the flusher, aggregated across ranks.",
		func(s *transport.MsgSnapshot) trace.Hist { return s.FlushAckNS })
	writeHist("cashmere_mp_lock_grant_latency_ns",
		"TLockReq to TLockGrant wall latency at the requester (includes hold time of predecessors), aggregated across ranks.",
		func(s *transport.MsgSnapshot) trace.Hist { return s.LockGrantNS })

	family("cashmere_mp_trace_events", "Trace events carried by each rank's most recent report.", "gauge")
	for _, rep := range sorted {
		fmt.Fprintf(b, "cashmere_mp_trace_events{rank=\"%d\"} %d\n", rep.Rank, len(rep.TraceEvents))
	}

	family("cashmere_mp_trace_dropped_total", "Trace events lost to ring wraparound, per rank.", "counter")
	for _, rep := range sorted {
		fmt.Fprintf(b, "cashmere_mp_trace_dropped_total{rank=\"%d\"} %d\n", rep.Rank, rep.TraceDropped)
	}

	_, err := io.WriteString(w, b.String())
	return err
}
