package bench

import (
	"testing"

	"cashmere/internal/apps"
	"cashmere/internal/core"
)

// End-to-end cell benchmarks: one full application run at the default
// (scaled-down) evaluation size on the paper's full 8x4 cluster, per
// iteration. These are the wall-clock numbers behind
// BENCH_access_fastpath.json; verification is excluded so the timing
// covers only the simulated run itself.

func benchCell(b *testing.B, mk func() apps.App, kind core.Kind) {
	b.Helper()
	for i := 0; i < b.N; i++ {
		app := mk()
		shape := app.Shape()
		cfg := core.Config{
			Nodes:        FullCluster.Nodes,
			ProcsPerNode: FullCluster.PPN,
			Protocol:     kind,
			SharedWords:  shape.SharedWords,
			Locks:        shape.Locks,
			Flags:        shape.Flags,
			PageWords:    apps.PageWords,
		}
		c, err := core.New(cfg)
		if err != nil {
			b.Fatal(err)
		}
		c.Run(func(p *core.Proc) { app.Body(p) })
	}
}

func BenchmarkCellSOR2L(b *testing.B) {
	benchCell(b, func() apps.App { return apps.DefaultSOR() }, core.TwoLevel)
}

func BenchmarkCellLU2L(b *testing.B) {
	benchCell(b, func() apps.App { return apps.DefaultLU() }, core.TwoLevel)
}

func BenchmarkCellGauss2L(b *testing.B) {
	benchCell(b, func() apps.App { return apps.DefaultGauss() }, core.TwoLevel)
}

func BenchmarkCellEm3d2L(b *testing.B) {
	benchCell(b, func() apps.App { return apps.DefaultEm3d() }, core.TwoLevel)
}

func BenchmarkCellSOR1L(b *testing.B) {
	benchCell(b, func() apps.App { return apps.DefaultSOR() }, core.OneLevelWrite)
}
