package bench

import (
	"fmt"
	"io"

	"cashmere/internal/core"
	"cashmere/internal/costs"
)

// Table 1: costs of basic operations for the two-level protocols
// (2L/2LS) and the one-level protocols (1LD/1L), measured by running
// microbenchmark programs on the simulated cluster.

// BasicOps holds one protocol family's measured basic operation costs
// in nanoseconds of virtual time.
type BasicOps struct {
	LockAcquire        int64
	Barrier2           int64
	Barrier32          int64
	PageTransferLocal  int64
	PageTransferRemote int64
}

// MeasureBasicOps runs the microbenchmarks for one protocol family.
func MeasureBasicOps(kind core.Kind) (BasicOps, error) {
	var out BasicOps
	var err error
	if out.LockAcquire, err = measureLock(kind); err != nil {
		return out, err
	}
	if out.Barrier2, err = measureBarrier(kind, 2, 1); err != nil {
		return out, err
	}
	if out.Barrier32, err = measureBarrier(kind, 8, 4); err != nil {
		return out, err
	}
	if out.PageTransferRemote, err = measureTransfer(kind, false); err != nil {
		return out, err
	}
	if kind.TwoLevelFamily() {
		// Two processors of one SMP share the frame in hardware, so a
		// "local transfer" never occurs under the two-level protocols;
		// the platform cost is reported for reference.
		out.PageTransferLocal = costs.Default().PageTransferLocal
	} else {
		if out.PageTransferLocal, err = measureTransfer(kind, true); err != nil {
			return out, err
		}
	}
	return out, nil
}

func microCluster(kind core.Kind, nodes, ppn int) (*core.Cluster, error) {
	return core.New(core.Config{
		Nodes:        nodes,
		ProcsPerNode: ppn,
		Protocol:     kind,
		PageWords:    1024,
		SharedWords:  16 * 1024,
		Locks:        1,
	})
}

// measureLock times an uncontended application lock acquire.
func measureLock(kind core.Kind) (int64, error) {
	c, err := microCluster(kind, 2, 1)
	if err != nil {
		return 0, err
	}
	var cost int64
	c.Run(func(p *core.Proc) {
		if p.ID() != 0 {
			return
		}
		t0 := p.Now()
		p.Lock(0)
		cost = p.Now() - t0
		p.Unlock(0)
	})
	return cost, nil
}

// measureBarrier times one barrier episode with all processors arriving
// together.
func measureBarrier(kind core.Kind, nodes, ppn int) (int64, error) {
	c, err := microCluster(kind, nodes, ppn)
	if err != nil {
		return 0, err
	}
	var cost int64
	c.Run(func(p *core.Proc) {
		p.Barrier() // align clocks
		t0 := p.Now()
		p.Barrier()
		if p.ID() == 0 {
			cost = p.Now() - t0
		}
	})
	return cost, nil
}

// measureTransfer times a page fetch after invalidation, reporting the
// transfer component (total fault time minus the fault and mprotect
// overheads).
func measureTransfer(kind core.Kind, local bool) (int64, error) {
	nodes, ppn := 2, 1
	if local {
		nodes, ppn = 1, 2
	}
	c, err := microCluster(kind, nodes, ppn)
	if err != nil {
		return 0, err
	}
	m := costs.Default()
	var cost int64
	c.Run(func(p *core.Proc) {
		// Both processors map page 0 (homed on protocol node 0), so it
		// never enters exclusive mode.
		p.Load(0)
		p.Barrier()
		if p.ID() == 0 {
			p.Store(0, 42)
		}
		p.Barrier() // departure invalidates proc 1's copy
		if p.ID() == 1 {
			t0 := p.Now()
			p.Load(0)
			cost = p.Now() - t0 - m.PageFault - m.MProtect
		}
		p.Barrier()
	})
	return cost, nil
}

// Table1 writes the regenerated Table 1.
func Table1(w io.Writer) error {
	two, err := MeasureBasicOps(core.TwoLevel)
	if err != nil {
		return err
	}
	one, err := MeasureBasicOps(core.OneLevelDiff)
	if err != nil {
		return err
	}
	us := func(ns int64) string { return fmt.Sprintf("%d", (ns+500)/1000) }
	line(w, "Table 1: costs of basic operations (microseconds)")
	line(w, "%-28s %12s %12s", "Operation", "2L/2LS", "1LD/1L")
	line(w, "%-28s %12s %12s", "Lock Acquire", us(two.LockAcquire), us(one.LockAcquire))
	line(w, "%-28s %7s (%s) %7s (%s)", "Barrier (2 proc / 32 proc)",
		us(two.Barrier2), us(two.Barrier32), us(one.Barrier2), us(one.Barrier32))
	line(w, "%-28s %12s %12s", "Page Transfer (Local)", us(two.PageTransferLocal), us(one.PageTransferLocal))
	line(w, "%-28s %12s %12s", "Page Transfer (Remote)", us(two.PageTransferRemote), us(one.PageTransferRemote))
	return nil
}

// BasicCosts writes the Section 3.1 microcosts straight from the cost
// model (twinning, diffs, directory updates) alongside the measured
// ranges.
func BasicCosts(w io.Writer) {
	m := costs.Default()
	us := func(ns int64) float64 { return float64(ns) / 1000 }
	line(w, "Section 3.1 basic operation costs (microseconds)")
	line(w, "%-38s %8.0f", "Memory protection (mprotect)", us(m.MProtect))
	line(w, "%-38s %8.0f", "Page fault (resident page)", us(m.PageFault))
	line(w, "%-38s %8.0f", "Twin creation (8K page)", us(m.Twin))
	line(w, "%-38s %5.0f - %3.0f", "Outgoing diff (local home)",
		us(m.OutgoingDiffLocalMin), us(m.OutgoingDiffLocalMax))
	line(w, "%-38s %5.0f - %3.0f", "Outgoing diff (remote home)",
		us(m.OutgoingDiffRemoteMin), us(m.OutgoingDiffRemoteMax))
	line(w, "%-38s %5.0f - %3.0f", "Incoming diff",
		us(m.IncomingDiffMin), us(m.IncomingDiffMax))
	line(w, "%-38s %8.0f", "Directory update (lock-free)", us(m.DirectoryUpdate))
	line(w, "%-38s %8.0f", "Directory update (locked)", us(m.DirectoryUpdateLocked))
	line(w, "%-38s %8.0f", "Global lock acquire+release", us(m.GlobalLock))
	line(w, "%-38s %8.0f", "Shootdown per processor (polling)", us(m.ShootdownPoll))
	line(w, "%-38s %8.0f", "Shootdown per processor (interrupt)", us(m.ShootdownInterrupt))
	line(w, "%-38s %8.1f", "MC remote write latency", us(m.MCWriteLatency))
}
