//go:build race

package bench

// raceEnabled reports that this binary was built with the race
// detector (see determinism_test.go for why that matters).
const raceEnabled = true
