package bench

import (
	"runtime"
	"testing"

	"cashmere/internal/apps"
	"cashmere/internal/core"
	"cashmere/internal/directory"
)

// goldenCell pins one cell's virtual-time statistics to the values the
// pre-topology-refactor revision produced (captured from main before
// the directory-layout and interconnect parameterization landed). The
// refactor's contract is that the paper's configurations are
// bit-identical: the packed directory layout encodes the same words,
// the serial fabric charges the same contention, and the barrier
// interpolation is unchanged at and below 32 processors.
type goldenCell struct {
	app   string
	kind  core.Kind
	topo  Topology
	exec  int64
	bytes int64
}

// Topologies of the golden set, in the paper's P:ppn notation:
// 32:4 = 8x4, 8:2 = 4x2, 8:1 = 8x1.
var (
	g32x4 = Topology{Nodes: 8, PPN: 4}
	g8x2  = Topology{Nodes: 4, PPN: 2}
	g8x1  = Topology{Nodes: 8, PPN: 1}
)

// goldenCells covers the deterministic barrier applications under all
// four protocols at three paper topologies. Two cells whose virtual
// times are not stable across repeated same-binary runs (their
// tie-breaks sit on a host-scheduling edge even at GOMAXPROCS=1) are
// omitted (Gauss/2LS/8:1 and Em3d/1LD/32:4), as is the whole
// write-doubling protocol (1L): repeated same-binary runs of its cells
// occasionally flip a tie-break, so they cannot pin exact values.
var goldenCells = []goldenCell{
	{"SOR", core.TwoLevel, g32x4, 49377455, 432448},
	{"SOR", core.TwoLevelSD, g32x4, 43013402, 432448},
	{"SOR", core.OneLevelDiff, g32x4, 72529354, 1709456},
	{"SOR", core.TwoLevel, g8x2, 56853386, 281352},
	{"SOR", core.TwoLevelSD, g8x2, 48708647, 281352},
	{"SOR", core.OneLevelDiff, g8x2, 66801215, 374088},
	{"SOR", core.TwoLevel, g8x1, 63234837, 373960},
	{"SOR", core.TwoLevelSD, g8x1, 60604147, 373960},
	{"SOR", core.OneLevelDiff, g8x1, 63200939, 374088},

	{"LU", core.TwoLevel, g32x4, 28147477, 110128},
	{"LU", core.TwoLevelSD, g32x4, 25143003, 110128},
	{"LU", core.OneLevelDiff, g32x4, 53498777, 352256},
	{"LU", core.TwoLevel, g8x2, 32924159, 159576},
	{"LU", core.TwoLevelSD, g8x2, 28560097, 159576},
	{"LU", core.OneLevelDiff, g8x2, 43307575, 235704},
	{"LU", core.TwoLevel, g8x1, 43812089, 236272},
	{"LU", core.TwoLevelSD, g8x1, 38395497, 236272},
	{"LU", core.OneLevelDiff, g8x1, 43236089, 235704},

	{"Gauss", core.TwoLevel, g32x4, 35718752, 120904},
	{"Gauss", core.TwoLevelSD, g32x4, 34476631, 120984},
	{"Gauss", core.OneLevelDiff, g32x4, 48567831, 428448},
	{"Gauss", core.TwoLevel, g8x2, 59039395, 263680},
	{"Gauss", core.TwoLevelSD, g8x2, 58828143, 268328},
	{"Gauss", core.OneLevelDiff, g8x2, 72196971, 403096},
	{"Gauss", core.TwoLevel, g8x1, 72075748, 402744},
	{"Gauss", core.OneLevelDiff, g8x1, 72196971, 403096},

	{"Em3d", core.TwoLevel, g32x4, 101687966, 1230560},
	{"Em3d", core.TwoLevelSD, g32x4, 82616628, 1230560},
	{"Em3d", core.TwoLevel, g8x2, 59084717, 437424},
	{"Em3d", core.TwoLevelSD, g8x2, 47276334, 437424},
	{"Em3d", core.OneLevelDiff, g8x2, 89739757, 728392},
	{"Em3d", core.TwoLevel, g8x1, 86836396, 736224},
	{"Em3d", core.TwoLevelSD, g8x1, 70383862, 736224},
	{"Em3d", core.OneLevelDiff, g8x1, 85212552, 728392},
}

// TestGoldenPaperConfigsBitIdentical asserts that the paper's default
// configurations produce virtual-time statistics bit-identical to the
// pre-refactor revision of this codebase. It shares the determinism
// test's preconditions (GOMAXPROCS=1, no race detector — see
// TestVirtualTimeDeterminism for why).
func TestGoldenPaperConfigsBitIdentical(t *testing.T) {
	if testing.Short() {
		t.Skip("full golden sweep")
	}
	if raceEnabled {
		t.Skip("virtual-time tie-breaks flip under the race detector (see determinism test)")
	}
	defer runtime.GOMAXPROCS(runtime.GOMAXPROCS(1))
	for _, g := range goldenCells {
		g := g
		t.Run(g.app+"/"+g.kind.String()+"/"+g.topo.Label(), func(t *testing.T) {
			cfg := core.Config{
				Nodes:        g.topo.Nodes,
				ProcsPerNode: g.topo.PPN,
				Protocol:     g.kind,
			}
			// Even the retained cells can, rarely, land a virtual-time
			// tie-break on the wrong side of a host-scheduling edge. A
			// genuine protocol change is deterministic and reproduces on
			// every run, so one retry separates drift from flake.
			var res core.Result
			for attempt := 0; ; attempt++ {
				var err error
				res, err = apps.Run(freshApp(t, g.app), cfg)
				if err != nil {
					t.Fatal(err)
				}
				if (res.ExecNS == g.exec && res.DataBytes == g.bytes) || attempt == 1 {
					break
				}
				t.Logf("attempt %d: ExecNS %d / DataBytes %d off golden; retrying to rule out a tie-break flake",
					attempt, res.ExecNS, res.DataBytes)
			}
			if res.ExecNS != g.exec {
				t.Errorf("ExecNS = %d, want pre-refactor %d (drift %+d)",
					res.ExecNS, g.exec, res.ExecNS-g.exec)
			}
			if res.DataBytes != g.bytes {
				t.Errorf("DataBytes = %d, want pre-refactor %d", res.DataBytes, g.bytes)
			}
		})
	}
}

// TestLayoutEquivalenceSmallRun asserts that forcing the wide directory
// layout on a paper-sized cluster changes nothing observable: every
// virtual-time statistic matches the packed default bit for bit, because
// the layout only changes how words are packed, never what the protocol
// does with them.
func TestLayoutEquivalenceSmallRun(t *testing.T) {
	if raceEnabled {
		t.Skip("virtual-time tie-breaks flip under the race detector (see determinism test)")
	}
	defer runtime.GOMAXPROCS(runtime.GOMAXPROCS(1))
	for _, kind := range []core.Kind{core.TwoLevel, core.OneLevelDiff} {
		kind := kind
		t.Run(kind.String(), func(t *testing.T) {
			base := core.Config{Nodes: 4, ProcsPerNode: 2, Protocol: kind}
			packed, err := apps.Run(freshApp(t, "SOR"), base)
			if err != nil {
				t.Fatal(err)
			}
			wideCfg := base
			wideCfg.DirectoryLayout = directory.LayoutWide
			wide, err := apps.Run(freshApp(t, "SOR"), wideCfg)
			if err != nil {
				t.Fatal(err)
			}
			compareResults(t, packed, wide)
		})
	}
}
