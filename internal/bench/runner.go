package bench

import (
	"fmt"
	"io"
	"runtime/debug"
	"sort"
	"sync"
	"time"

	"cashmere/internal/core"
	"cashmere/internal/metrics"
)

// runner is the Suite's concurrent execution engine: a bounded worker
// pool with singleflight deduplication, per-cell panic recovery, and
// optional per-cell wall-clock timeouts. Every experiment cell is an
// independent core.Cluster, so cells parallelize freely at the host
// level; the pool bounds how many simulated clusters run at once.
type runner struct {
	timeout time.Duration
	exec    func(key runKey) (core.Result, error)

	sem chan struct{} // bounded worker slots

	mu       sync.Mutex
	results  map[runKey]cellOut
	inflight map[runKey]*flight

	// starts records when each currently-executing cell acquired its
	// worker slot; a key in inflight but not here is queued. This feeds
	// the /status snapshot and is independent of the progress line.
	starts map[runKey]time.Time

	prog *progress
	sink *JSONSink
}

// cellOut is the outcome of one executed cell.
type cellOut struct {
	res    core.Result
	err    error
	wallNS int64 // host wall-clock time spent executing
}

// flight is an in-progress execution of one cell: latecomers for the
// same key block on done instead of executing the cell again
// (singleflight).
type flight struct {
	done chan struct{}
	out  cellOut
}

// newRunner returns a runner executing cells through exec with the
// given worker-pool width.
func newRunner(workers int, exec func(runKey) (core.Result, error)) *runner {
	r := &runner{
		exec:     exec,
		results:  make(map[runKey]cellOut),
		inflight: make(map[runKey]*flight),
		starts:   make(map[runKey]time.Time),
	}
	r.setWorkers(workers)
	return r
}

// setWorkers resizes the worker pool. It must not be called after the
// first run or prefetch.
func (r *runner) setWorkers(n int) {
	if n < 1 {
		n = 1
	}
	r.sem = make(chan struct{}, n)
}

// workers returns the worker-pool width.
func (r *runner) workers() int { return cap(r.sem) }

// run executes the cell identified by key, deduplicating against
// concurrent and past executions, and returns its result.
func (r *runner) run(key runKey) (core.Result, error) {
	r.mu.Lock()
	if out, ok := r.results[key]; ok {
		r.mu.Unlock()
		return out.res, out.err
	}
	if f, ok := r.inflight[key]; ok {
		r.mu.Unlock()
		<-f.done
		return f.out.res, f.out.err
	}
	f := &flight{done: make(chan struct{})}
	r.inflight[key] = f
	r.mu.Unlock()
	r.prog.scheduled()

	r.sem <- struct{}{} // acquire a worker slot
	r.prog.started(key)
	start := time.Now()
	r.mu.Lock()
	r.starts[key] = start
	r.mu.Unlock()
	res, err := r.execCell(key)
	out := cellOut{res: res, err: err, wallNS: time.Since(start).Nanoseconds()}
	<-r.sem

	r.mu.Lock()
	r.results[key] = out
	delete(r.inflight, key)
	delete(r.starts, key)
	r.mu.Unlock()
	f.out = out
	close(f.done)
	r.prog.finished(key)
	if r.sink != nil {
		r.sink.add(key, out)
	}
	return out.res, out.err
}

// execCell performs one cell with panic recovery and, if configured, a
// wall-clock timeout. A panicking cell (a diverging application or a
// protocol bug) reports an error instead of killing the whole
// evaluation; a timed-out cell is marked failed and abandoned (its
// goroutine cannot be cancelled — the cluster runs to completion or
// diverges in the background — but the rest of the evaluation
// proceeds).
func (r *runner) execCell(key runKey) (core.Result, error) {
	ch := make(chan cellOut, 1)
	go func() {
		defer func() {
			if p := recover(); p != nil {
				ch <- cellOut{err: fmt.Errorf("bench: %s panicked: %v\n%s",
					keyLabel(key), p, debug.Stack())}
			}
		}()
		res, err := r.exec(key)
		ch <- cellOut{res: res, err: err}
	}()
	if r.timeout <= 0 {
		out := <-ch
		return out.res, out.err
	}
	timer := time.NewTimer(r.timeout)
	defer timer.Stop()
	select {
	case out := <-ch:
		return out.res, out.err
	case <-timer.C:
		return core.Result{}, fmt.Errorf("bench: %s timed out after %v (cell abandoned)",
			keyLabel(key), r.timeout)
	}
}

// prefetch schedules keys through the worker pool without waiting for
// them: renderers then pull each cell through run, which joins the
// in-flight execution. Cells already completed or in flight are
// deduplicated by run itself.
func (r *runner) prefetch(keys []runKey) {
	for _, k := range keys {
		go r.run(k)
	}
}

// failed returns the labels and errors of every failed cell, sorted.
func (r *runner) failed() []string {
	r.mu.Lock()
	var out []string
	for k, o := range r.results {
		if o.err != nil {
			out = append(out, fmt.Sprintf("%s: %v", keyLabel(k), o.err))
		}
	}
	r.mu.Unlock()
	sort.Strings(out)
	return out
}

// keyLabel renders a cell key as app/variant/topology.
func keyLabel(k runKey) string {
	return fmt.Sprintf("%s/%s/%s", k.app, k.v.Label(), k.topo.Label())
}

// status builds the /status snapshot: per-cell progress (running cells
// first, then queued, then completed) and an ETA extrapolated from the
// mean wall time of completed cells across the worker pool.
func (r *runner) status() metrics.Status {
	now := time.Now()
	r.mu.Lock()
	defer r.mu.Unlock()

	var st metrics.Status
	var running, queued, finished []metrics.CellStatus
	var doneWallNS int64

	for k, start := range r.starts {
		st.Running++
		running = append(running, metrics.CellStatus{
			Name:   keyLabel(k),
			State:  "running",
			WallMS: now.Sub(start).Milliseconds(),
		})
	}
	for k := range r.inflight {
		if _, isRunning := r.starts[k]; isRunning {
			continue
		}
		st.Queued++
		queued = append(queued, metrics.CellStatus{Name: keyLabel(k), State: "queued"})
	}
	for k, o := range r.results {
		cs := metrics.CellStatus{Name: keyLabel(k), State: "done", WallMS: o.wallNS / 1e6}
		if o.err != nil {
			cs.State = "failed"
			st.Failed++
		} else {
			st.Done++
		}
		doneWallNS += o.wallNS
		finished = append(finished, cs)
	}

	if completed := st.Done + st.Failed; completed > 0 {
		mean := float64(doneWallNS) / float64(completed) / 1e9
		remaining := st.Queued + st.Running
		st.ETASeconds = float64(remaining) * mean / float64(cap(r.sem))
	}

	byWall := func(cells []metrics.CellStatus) {
		sort.Slice(cells, func(i, j int) bool {
			if cells[i].WallMS != cells[j].WallMS {
				return cells[i].WallMS > cells[j].WallMS
			}
			return cells[i].Name < cells[j].Name
		})
	}
	byWall(running)
	sort.Slice(queued, func(i, j int) bool { return queued[i].Name < queued[j].Name })
	byWall(finished)
	st.Cells = append(append(running, queued...), finished...)
	return st
}

// progress renders a live one-line status of the evaluation: cells
// done/total, cells running, and the cell that has been running the
// longest (the current slowest). A nil *progress discards all updates,
// so call sites need no checks.
type progress struct {
	w io.Writer

	mu      sync.Mutex
	total   int
	done    int
	running map[runKey]time.Time
	wrote   bool
}

func newProgress(w io.Writer) *progress {
	return &progress{w: w, running: make(map[runKey]time.Time)}
}

func (p *progress) scheduled() {
	if p == nil {
		return
	}
	p.mu.Lock()
	p.total++
	p.mu.Unlock()
}

func (p *progress) started(key runKey) {
	if p == nil {
		return
	}
	p.mu.Lock()
	p.running[key] = time.Now()
	p.render()
	p.mu.Unlock()
}

func (p *progress) finished(key runKey) {
	if p == nil {
		return
	}
	p.mu.Lock()
	delete(p.running, key)
	p.done++
	p.render()
	p.mu.Unlock()
}

// render writes the status line. Called with p.mu held.
func (p *progress) render() {
	slowest := ""
	var slowStart time.Time
	for k, t := range p.running {
		if slowest == "" || t.Before(slowStart) {
			slowest, slowStart = keyLabel(k), t
		}
	}
	line := fmt.Sprintf("\rbench: %d/%d cells done, %d running", p.done, p.total, len(p.running))
	if slowest != "" {
		line += fmt.Sprintf(", slowest %s (%.1fs)", slowest, time.Since(slowStart).Seconds())
	}
	// Pad to overwrite a longer previous line.
	if len(line) < 79 {
		line += fmt.Sprintf("%*s", 79-len(line), "")
	}
	fmt.Fprint(p.w, line)
	p.wrote = true
}

// close terminates the progress line with a newline if anything was
// written.
func (p *progress) close() {
	if p == nil {
		return
	}
	p.mu.Lock()
	if p.wrote {
		fmt.Fprintln(p.w)
		p.wrote = false
	}
	p.mu.Unlock()
}
