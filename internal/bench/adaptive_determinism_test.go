package bench

import (
	"runtime"
	"testing"

	"cashmere/internal/apps"
	"cashmere/internal/core"
	"cashmere/internal/policy"
)

// TestAdaptiveGaussDeterministic pins the fix for the Gauss/2L+A
// bistability: the adaptive decision gate shifts Gauss's pivot-row
// flag waits onto equal-virtual-time ties, and before the ordered
// flag-wakeup tie-break (msync.Flag.WaitOrdered) host scheduling chose
// between two outcomes. With the tie-break, repeated adaptive runs
// must agree bit for bit, which is what lets the CI adaptive gate
// cover Gauss like every other app.
func TestAdaptiveGaussDeterministic(t *testing.T) {
	if raceEnabled {
		t.Skip("other virtual-time tie-breaks still flip under the race detector (see determinism test)")
	}
	defer runtime.GOMAXPROCS(runtime.GOMAXPROCS(1))
	var first core.Result
	for i := 0; i < 4; i++ {
		cfg := core.Config{Nodes: 4, ProcsPerNode: 4, Protocol: core.TwoLevel}
		policy.Wire(&cfg, policy.Defaults())
		res, err := apps.Run(freshApp(t, "Gauss"), cfg)
		if err != nil {
			t.Fatal(err)
		}
		if i == 0 {
			first = res
		} else if res.ExecNS != first.ExecNS || res.DataBytes != first.DataBytes {
			t.Errorf("run %d diverged: ExecNS %d / DataBytes %d vs run 0's %d / %d",
				i, res.ExecNS, res.DataBytes, first.ExecNS, first.DataBytes)
		}
	}
}
