package bench

import (
	"runtime"
	"testing"

	"cashmere/internal/apps"
	"cashmere/internal/core"
	"cashmere/internal/stats"
)

// TestVirtualTimeDeterminism asserts the simulator's core invariant
// for the barrier-phased applications: virtual-time results are a
// function of the program and the cost model, not of host scheduling.
// Each application is run twice on the full cluster and the complete
// per-category execution-time breakdown, event counts, and
// per-processor finish times must match bit for bit.
//
// The lock-based applications (TSP, Water, Ilink, Barnes) are outside
// the invariant: lock grant order is a genuine protocol freedom —
// two runs on the real platform interleave differently too — and the
// downstream fault and fetch sequences legitimately differ with it,
// so they are not tested here.
//
// This is also the invariant that lets the access fast path (software
// TLB + range kernels) be validated: the fast path must not change any
// virtual-time accounting, so a before/after comparison of these same
// quantities must be identical.
//
// Caveat: the simulator breaks genuine virtual-time ties by host
// arrival order (bus reservations, concurrent same-page faults on one
// node, the first-touch race for a superpage's home), so determinism
// holds only under repeatable scheduling, not under adversarial timing
// perturbation. The race detector's instrumentation perturbs timing
// enough to flip those tie-breaks on every app — the unmodified seed
// fails this test under -race too — so the test is skipped there. For
// the same reason the test pins GOMAXPROCS to 1: both runs of an app
// then see the near-deterministic single-threaded schedule, and the
// comparison is stable. Run it via plain `go test ./internal/bench`.
func TestVirtualTimeDeterminism(t *testing.T) {
	if testing.Short() {
		t.Skip("two full quick-suite sweeps")
	}
	if raceEnabled {
		t.Skip("virtual-time tie-breaks are host-order dependent; the race detector's timing perturbation flips them (seed behaviour, see comment)")
	}
	defer runtime.GOMAXPROCS(runtime.GOMAXPROCS(1))
	deterministic := map[string]bool{"SOR": true, "LU": true, "Gauss": true, "Em3d": true}
	for _, app := range apps.Small() {
		app := app
		if !deterministic[app.Name()] {
			continue
		}
		t.Run(app.Name(), func(t *testing.T) {
			cfg := core.Config{
				Nodes:        FullCluster.Nodes,
				ProcsPerNode: FullCluster.PPN,
				Protocol:     core.TwoLevel,
			}
			a, err := apps.Run(freshApp(t, app.Name()), cfg)
			if err != nil {
				t.Fatal(err)
			}
			b, err := apps.Run(freshApp(t, app.Name()), cfg)
			if err != nil {
				t.Fatal(err)
			}
			compareResults(t, a, b)
		})
	}
}

// freshApp returns a new small instance of the named application (app
// instances cache layout state, so each run gets its own).
func freshApp(t *testing.T, name string) apps.App {
	t.Helper()
	for _, a := range apps.Small() {
		if a.Name() == name {
			return a
		}
	}
	t.Fatalf("unknown app %q", name)
	return nil
}

func compareResults(t *testing.T, a, b core.Result) {
	t.Helper()
	if a.ExecNS != b.ExecNS {
		t.Errorf("ExecNS differs between runs: %d vs %d", a.ExecNS, b.ExecNS)
	}
	if a.DataBytes != b.DataBytes {
		t.Errorf("DataBytes differs: %d vs %d", a.DataBytes, b.DataBytes)
	}
	for c := stats.Component(0); int(c) < stats.NumComponents; c++ {
		if a.Time[c] != b.Time[c] {
			t.Errorf("time[%v] differs: %d vs %d", c, a.Time[c], b.Time[c])
		}
	}
	for c := stats.Counter(0); int(c) < stats.NumCounters; c++ {
		if a.Counts[c] != b.Counts[c] {
			t.Errorf("count[%v] differs: %d vs %d", c, a.Counts[c], b.Counts[c])
		}
	}
	if len(a.Finish) != len(b.Finish) {
		t.Fatalf("finish lengths differ: %d vs %d", len(a.Finish), len(b.Finish))
	}
	for i := range a.Finish {
		if a.Finish[i] != b.Finish[i] {
			t.Errorf("proc %d finish time differs: %d vs %d", i, a.Finish[i], b.Finish[i])
		}
	}
}
