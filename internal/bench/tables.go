package bench

import (
	"io"

	"cashmere/internal/costs"
)

// Table2 writes the data set sizes and sequential execution times of
// the application suite (paper Table 2, at this reproduction's scaled
// problem sizes).
func (s *Suite) Table2(w io.Writer) {
	line(w, "Table 2: data set sizes and sequential execution time")
	line(w, "%-8s %-48s %12s", "Program", "Problem Size", "Time (sec)")
	m := costs.Default()
	for _, name := range AppNames() {
		app := s.appInstance(name)
		line(w, "%-8s %-48s %12.3f", app.Name(), app.DataSet(),
			float64(app.SeqTime(m))/1e9)
	}
}

// Table3 writes the detailed per-application statistics under the four
// protocols at the full 32-processor configuration (paper Table 3).
// Cells compute in parallel through the suite's worker pool; a failed
// cell renders as a FAIL column while the rest of the table proceeds.
func (s *Suite) Table3(w io.Writer) error {
	s.Prefetch(FourProtocols, []Topology{FullCluster})
	line(w, "Table 3: detailed statistics at %d processors (%s)",
		FullCluster.Nodes*FullCluster.PPN, FullCluster.Label())
	for _, v := range FourProtocols {
		line(w, "")
		line(w, "--- %s ---", v.Label())
		rows := make([][]string, len(statLabels))
		for i := range rows {
			rows[i] = []string{statLabels[i]}
		}
		header := "Application            "
		for _, name := range AppNames() {
			res, err := s.Run(name, v, FullCluster)
			header += pad(name, 10)
			for i, cell := range statRow(res) {
				if err != nil {
					cell = "FAIL"
				}
				rows[i] = append(rows[i], cell)
			}
		}
		line(w, "%s", header)
		for _, row := range rows {
			out := pad(row[0], 23)
			for _, cell := range row[1:] {
				out += pad(cell, 10)
			}
			line(w, "%s", out)
		}
	}
	return nil
}

// pad right-pads s to width.
func pad(s string, width int) string {
	for len(s) < width {
		s += " "
	}
	return s
}
