package bench

import (
	"fmt"
	"io"

	"cashmere/internal/core"
	"cashmere/internal/stats"
)

// Figure6 writes the normalized execution-time breakdown at the full
// configuration: User / Protocol / Polling / Comm & Wait / Write
// Doubling per application and protocol, normalized to Cashmere-2L's
// total (paper Figure 6).
func (s *Suite) Figure6(w io.Writer) error {
	s.Prefetch(FourProtocols, []Topology{FullCluster})
	line(w, "Figure 6: normalized execution time breakdown at %s (percent of 2L total)",
		FullCluster.Label())
	line(w, "%-8s %-6s %8s %9s %8s %10s %10s %8s", "App", "Proto",
		"User", "Protocol", "Polling", "Comm&Wait", "WriteDbl", "Total")
	for _, name := range AppNames() {
		base, err := s.Run(name, Variant{Kind: core.TwoLevel}, FullCluster)
		if err != nil {
			line(w, "%-8s %-6s FAIL (2L baseline: %v)", name, "2L", err)
			continue
		}
		baseSum := timeSum(base)
		for _, v := range FourProtocols {
			res, err := s.Run(name, v, FullCluster)
			if err != nil {
				line(w, "%-8s %-6s FAIL", name, v.Label())
				continue
			}
			t := res.Total
			pct := func(c stats.Component) float64 {
				return 100 * float64(t.Time[c]) / float64(baseSum)
			}
			total := 100 * float64(timeSum(res)) / float64(baseSum)
			line(w, "%-8s %-6s %8.1f %9.1f %8.1f %10.1f %10.1f %8.1f",
				name, v.Label(), pct(stats.User), pct(stats.Protocol),
				pct(stats.Polling), pct(stats.CommWait), pct(stats.WriteDoubling),
				total)
		}
	}
	return nil
}

func timeSum(res core.Result) int64 {
	var sum int64
	for _, v := range res.Time {
		sum += v
	}
	if sum == 0 {
		sum = 1
	}
	return sum
}

// Figure7Variants are the bar groups of Figure 7: the four protocols
// plus the home-node-optimized one-level protocols (the unshaded
// extensions in the paper's chart).
var Figure7Variants = []Variant{
	{Kind: core.TwoLevel},
	{Kind: core.TwoLevelSD},
	{Kind: core.OneLevelDiff},
	{Kind: core.OneLevelWrite},
	{Kind: core.OneLevelDiff, HomeOpt: true},
	{Kind: core.OneLevelWrite, HomeOpt: true},
}

// Figure7 writes the speedup chart: every application under every
// protocol variant across the nine cluster configurations (paper
// Figure 7).
func (s *Suite) Figure7(w io.Writer) error {
	s.Prefetch(Figure7Variants, Figure7Topologies)
	line(w, "Figure 7: speedups (sequential time / parallel virtual time)")
	for _, name := range AppNames() {
		line(w, "")
		line(w, "--- %s ---", name)
		header := pad("config", 8)
		for _, v := range Figure7Variants {
			header += pad(v.Label(), 9)
		}
		line(w, "%s", header)
		maxSp := 0.0
		type cell struct {
			sp     float64
			failed bool
		}
		grid := make([][]cell, len(Figure7Topologies))
		for ti, topo := range Figure7Topologies {
			grid[ti] = make([]cell, len(Figure7Variants))
			for vi, v := range Figure7Variants {
				sp, err := s.Speedup(name, v, topo)
				if err != nil {
					grid[ti][vi] = cell{failed: true}
					continue
				}
				grid[ti][vi] = cell{sp: sp}
				if sp > maxSp {
					maxSp = sp
				}
			}
		}
		for ti, topo := range Figure7Topologies {
			out := pad(topo.Label(), 8)
			for vi := range Figure7Variants {
				out += pad(fmtCell(grid[ti][vi].sp, grid[ti][vi].failed), 9)
			}
			line(w, "%s", out)
		}
		// Bar chart of the full configuration.
		line(w, "  at %s:", FullCluster.Label())
		for vi, v := range Figure7Variants {
			c := grid[len(Figure7Topologies)-1][vi]
			if c.failed {
				line(w, "  %-8s   FAIL |", v.Label())
				continue
			}
			line(w, "  %-8s %6.2f |%s", v.Label(), c.sp, bar(c.sp, maxSp, 40))
		}
	}
	return nil
}

// fmtCell renders one Figure 7 grid cell, marking failed cells.
func fmtCell(sp float64, failed bool) string {
	if failed {
		return "FAIL"
	}
	return fmtSp(sp)
}

func fmtSp(sp float64) string {
	return fmt.Sprintf("%.2f", sp)
}
