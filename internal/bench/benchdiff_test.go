package bench

import (
	"math"
	"strings"
	"testing"
)

// diffFixture returns a small baseline results file.
func diffFixture() *ResultsFile {
	return &ResultsFile{
		Tool: "cashmere-bench", Schema: 1, Quick: true, Workers: 4,
		Cells: []CellResult{
			{
				App: "SOR", Variant: "2L", Topology: "32:4",
				Procs: 32, ExecNS: 1_000_000, DataBytes: 500_000,
				Counts: map[string]int64{"Barriers": 100, "ReadFaults": 2000},
			},
			{
				App: "LU", Variant: "2L", Topology: "32:4",
				Procs: 32, ExecNS: 2_000_000, DataBytes: 800_000,
				Counts: map[string]int64{"Barriers": 50, "Shootdowns": 3},
			},
			{
				App: "TSP", Variant: "1L", Topology: "8:1",
				Procs: 8, ExecNS: 3_000_000, DataBytes: 100_000,
				Counts: map[string]int64{"LockAcquires": 400},
			},
		},
	}
}

// copyResults deep-copies a fixture so tests can perturb it.
func copyResults(f *ResultsFile) *ResultsFile {
	out := *f
	out.Cells = append([]CellResult(nil), f.Cells...)
	for i, c := range out.Cells {
		m := make(map[string]int64, len(c.Counts))
		for k, v := range c.Counts {
			m[k] = v
		}
		out.Cells[i].Counts = m
	}
	return &out
}

func TestDiffIdenticalFilesPass(t *testing.T) {
	base := diffFixture()
	rep, err := DiffResults(base, copyResults(base), DiffOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if !rep.OK() {
		t.Fatalf("identical files must pass: %+v", rep)
	}
	if rep.Compared != 3 {
		t.Errorf("compared %d cells, want 3", rep.Compared)
	}
	var b strings.Builder
	rep.WriteText(&b)
	if !strings.Contains(b.String(), "OK") {
		t.Errorf("report should say OK:\n%s", b.String())
	}
}

// TestDiffSeededRegressionFails is the acceptance criterion: a seeded
// 10% exec_ns regression must fail under the default 5% tolerance.
func TestDiffSeededRegressionFails(t *testing.T) {
	base := diffFixture()
	cur := copyResults(base)
	cur.Cells[0].ExecNS = base.Cells[0].ExecNS * 110 / 100 // +10%

	rep, err := DiffResults(base, cur, DiffOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if rep.OK() {
		t.Fatal("10% exec_ns regression passed the 5% gate")
	}
	if len(rep.Regressions) != 1 {
		t.Fatalf("regressions: %+v", rep.Regressions)
	}
	e := rep.Regressions[0]
	if e.Cell != "SOR/2L/32:4" || e.Metric != "exec_ns" || e.Delta < 0.09 || e.Delta > 0.11 {
		t.Errorf("entry: %+v", e)
	}
	var b strings.Builder
	rep.WriteText(&b)
	for _, want := range []string{"SOR/2L/32:4", "exec_ns", "+10.0%"} {
		if !strings.Contains(b.String(), want) {
			t.Errorf("report missing %q:\n%s", want, b.String())
		}
	}
}

func TestDiffImprovementAlsoFlagged(t *testing.T) {
	// A big improvement is also beyond tolerance: the baseline is stale
	// and should be regenerated, so the gate flags it symmetrically.
	base := diffFixture()
	cur := copyResults(base)
	cur.Cells[1].ExecNS = base.Cells[1].ExecNS / 2

	rep, err := DiffResults(base, cur, DiffOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if rep.OK() {
		t.Fatal("50% improvement should still be beyond tolerance")
	}
	if rep.Regressions[0].Delta >= 0 {
		t.Errorf("delta should be negative: %+v", rep.Regressions[0])
	}
}

func TestDiffTolerances(t *testing.T) {
	base := diffFixture()
	cur := copyResults(base)
	cur.Cells[0].ExecNS = base.Cells[0].ExecNS * 104 / 100 // +4%: inside 5%
	cur.Cells[0].Counts["ReadFaults"] = 2300               // +15%: inside CountTol 0.25
	cur.Cells[1].Counts["Shootdowns"] = 40                 // huge relative, inside slack 64
	rep, err := DiffResults(base, cur, DiffOptions{CountTol: 0.25, CountSlack: 64})
	if err != nil {
		t.Fatal(err)
	}
	if !rep.OK() {
		t.Fatalf("all drifts within tolerance, got %+v", rep.Regressions)
	}

	// Without the slack, the shootdown jump fires.
	rep, err = DiffResults(base, cur, DiffOptions{CountTol: 0.25})
	if err != nil {
		t.Fatal(err)
	}
	if rep.OK() {
		t.Fatal("shootdown jump should fire without slack")
	}
}

func TestDiffCoverageChanges(t *testing.T) {
	base := diffFixture()
	cur := copyResults(base)
	cur.Cells = cur.Cells[:2] // TSP cell lost
	cur.Cells = append(cur.Cells, CellResult{App: "Water", Variant: "2L", Topology: "32:4", ExecNS: 1})

	rep, err := DiffResults(base, cur, DiffOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if rep.OK() {
		t.Fatal("missing baseline cell must fail the gate")
	}
	if len(rep.MissingCells) != 1 || rep.MissingCells[0] != "TSP/1L/8:1" {
		t.Errorf("missing: %v", rep.MissingCells)
	}
	if len(rep.NewCells) != 1 || rep.NewCells[0] != "Water/2L/32:4" {
		t.Errorf("new: %v", rep.NewCells)
	}
}

func TestDiffNewlyFailingCell(t *testing.T) {
	base := diffFixture()
	cur := copyResults(base)
	cur.Cells[2] = CellResult{App: "TSP", Variant: "1L", Topology: "8:1", Error: "panicked"}

	rep, err := DiffResults(base, cur, DiffOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if rep.OK() {
		t.Fatal("newly failing cell must fail the gate")
	}
	if len(rep.ErrorCells) != 1 || !strings.Contains(rep.ErrorCells[0], "TSP/1L/8:1") {
		t.Errorf("error cells: %v", rep.ErrorCells)
	}
}

func TestDiffCellPattern(t *testing.T) {
	base := diffFixture()
	cur := copyResults(base)
	cur.Cells[2].ExecNS *= 2 // TSP regresses badly

	rep, err := DiffResults(base, cur, DiffOptions{CellPattern: `^(SOR|LU)/`})
	if err != nil {
		t.Fatal(err)
	}
	if !rep.OK() {
		t.Fatalf("TSP excluded by pattern, got %+v", rep.Regressions)
	}
	if rep.Compared != 2 {
		t.Errorf("compared %d, want 2", rep.Compared)
	}

	if _, err := DiffResults(base, cur, DiffOptions{CellPattern: `[`}); err == nil {
		t.Error("bad pattern should error")
	}
}

func TestDiffZeroBaselineCell(t *testing.T) {
	// A zero baseline makes the relative change undefined; the naive
	// (new-old)/old would divide by zero. Equal zeros must pass, a value
	// appearing from zero must fail with a well-defined infinite delta
	// (rendered "from 0", not Inf-percent garbage), and the counter
	// slack must still absorb small appearances.
	base := diffFixture()
	base.Cells[0].ExecNS = 0
	base.Cells[0].DataBytes = 0
	base.Cells[0].Counts["ReadFaults"] = 0
	cur := copyResults(base)

	rep, err := DiffResults(base, cur, DiffOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if !rep.OK() {
		t.Fatalf("identical zero cells must pass: %+v", rep.Regressions)
	}

	cur.Cells[0].ExecNS = 700
	rep, err = DiffResults(base, cur, DiffOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if rep.OK() {
		t.Fatal("exec_ns appearing from a zero baseline must fail the gate")
	}
	if len(rep.Regressions) != 1 {
		t.Fatalf("regressions: %+v", rep.Regressions)
	}
	if e := rep.Regressions[0]; e.Metric != "exec_ns" || !math.IsInf(e.Delta, 1) {
		t.Errorf("entry: %+v, want exec_ns with +Inf delta", e)
	}
	var b strings.Builder
	rep.WriteText(&b)
	if !strings.Contains(b.String(), "from 0") {
		t.Errorf("report does not mark the zero baseline:\n%s", b.String())
	}
	if strings.Contains(b.String(), "Inf") {
		t.Errorf("report renders a raw infinity:\n%s", b.String())
	}

	// A counter appearing from zero within the absolute slack is noise,
	// beyond it a regression.
	cur = copyResults(base)
	cur.Cells[0].Counts["ReadFaults"] = 5
	rep, err = DiffResults(base, cur, DiffOptions{CountSlack: 8})
	if err != nil {
		t.Fatal(err)
	}
	if !rep.OK() {
		t.Fatalf("appearance within slack must pass: %+v", rep.Regressions)
	}
	rep, err = DiffResults(base, cur, DiffOptions{CountSlack: 2})
	if err != nil {
		t.Fatal(err)
	}
	if rep.OK() {
		t.Fatal("appearance beyond slack must fail")
	}
}

func TestDiffRejectsNonFiniteTolerances(t *testing.T) {
	// NaN compares false against everything, so a NaN tolerance would
	// silently pass every regression; "-tol NaN" parses as a valid
	// float flag. Non-finite tolerances must be rejected up front.
	base := diffFixture()
	cur := copyResults(base)
	cur.Cells[0].ExecNS *= 10
	for _, opts := range []DiffOptions{
		{RelTol: math.NaN()},
		{RelTol: math.Inf(1)},
		{CountTol: math.NaN()},
		{CountTol: math.Inf(-1)},
		{RelTol: -0.05},
		{CountTol: -0.25},
		{CountSlack: -1},
	} {
		if _, err := DiffResults(base, cur, opts); err == nil {
			t.Errorf("DiffResults accepted options %+v", opts)
		}
	}
}

func TestDiffBaselineErrorCellIgnored(t *testing.T) {
	base := diffFixture()
	base.Cells[2].Error = "timed out"
	base.Cells[2].ExecNS = 0
	cur := copyResults(diffFixture())

	rep, err := DiffResults(base, cur, DiffOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if !rep.OK() {
		t.Fatalf("failed baseline cell must not gate: %+v", rep)
	}
	if rep.Compared != 2 {
		t.Errorf("compared %d, want 2", rep.Compared)
	}
}
