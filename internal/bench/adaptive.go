package bench

import (
	"io"

	"cashmere/internal/core"
	"cashmere/internal/stats"
)

// AdaptiveVariant is the adaptive ablation column: the 2L protocol with
// the internal/policy engine re-deciding per-page coherence policy at
// every barrier epoch.
var AdaptiveVariant = Variant{Kind: core.TwoLevel, Adaptive: true}

// AdaptiveTopology returns the topology the adaptive ablation runs at:
// 16:4 for quick runs (the CI smoke lane) and the paper's full 32:4
// cluster otherwise.
func AdaptiveTopology(quick bool) Topology {
	if quick {
		return Topology{Nodes: 4, PPN: 4}
	}
	return FullCluster
}

// AblationAdaptive renders the adaptive-policy ablation: every
// application under the four fixed protocols and under 2L+A (2L with
// the adaptive engine), with the win or loss of adaptive against the
// best fixed column. docs/ADAPTIVE.md explains how to read the table;
// the committed BENCH_adaptive.json records the quick 16:4 cells.
func (s *Suite) AblationAdaptive(w io.Writer, topo Topology) error {
	variants := append(append([]Variant(nil), FourProtocols...), AdaptiveVariant)
	s.Prefetch(variants, []Topology{topo})
	line(w, "Adaptive per-page policy vs fixed protocols at %s", topo.Label())
	line(w, "%-8s %9s %9s %9s %9s %9s %10s %9s  %s", "App",
		"2L (s)", "2LS (s)", "1LD (s)", "1L (s)", "2L+A (s)", "best", "vs best", "policy actions")
	for _, name := range AppNames() {
		secs := make([]float64, len(variants))
		var adaptive core.Result
		failed := false
		for i, v := range variants {
			res, err := s.Run(name, v, topo)
			if err != nil {
				failed = true
				continue
			}
			secs[i] = res.ExecSeconds()
			if v.Adaptive {
				adaptive = res
			}
		}
		if failed {
			line(w, "%-8s %9s", name, "FAIL")
			continue
		}
		best, bestLabel := secs[0], variants[0].Label()
		for i := 1; i < len(FourProtocols); i++ {
			if secs[i] < best {
				best, bestLabel = secs[i], variants[i].Label()
			}
		}
		win := 100 * (1 - secs[len(secs)-1]/best)
		line(w, "%-8s %9.3f %9.3f %9.3f %9.3f %9.3f %10s %8.1f%%  mode=%d upd=%d repl=%d mig=%d",
			name, secs[0], secs[1], secs[2], secs[3], secs[4], bestLabel, win,
			adaptive.Counts[stats.PolicyModeChanges],
			adaptive.Counts[stats.PolicyUpdates],
			adaptive.Counts[stats.PolicyReplications],
			adaptive.Counts[stats.HomeMigrations])
	}
	return nil
}
