package bench

import (
	"fmt"
	"io"
	"strings"

	"cashmere/internal/core"
	"cashmere/internal/stats"
	"cashmere/internal/topology"
)

// Topology-string parsing shared by every flag that names a
// configuration (-topology, -trace-cell, -scaling): one grammar, one
// error message (see topology.Grammar).

// ParseTopology parses the paper's "procs:procsPerNode" notation into a
// Topology, through the shared grammar of internal/topology.
func ParseTopology(s string) (Topology, error) {
	spec, err := topology.Parse(s)
	if err != nil {
		return Topology{}, err
	}
	return Topology{Nodes: spec.Nodes, PPN: spec.ProcsPerNode}, nil
}

// ParseCell parses an experiment-cell label of the form
// "app/variant/topology" (e.g. "SOR/2L/32:4"), validating the topology
// portion against the shared grammar. The returned label is the
// canonical rendering, suitable for Suite.SetTrace.
func ParseCell(cell string) (label string, topo Topology, err error) {
	parts := strings.Split(cell, "/")
	if len(parts) != 3 || parts[0] == "" || parts[1] == "" {
		return "", Topology{}, fmt.Errorf(`bench: cell %q is not "app/variant/topology" (topology is %s)`,
			cell, topology.Grammar)
	}
	topo, err = ParseTopology(parts[2])
	if err != nil {
		return "", Topology{}, fmt.Errorf("bench: cell %q: %w", cell, err)
	}
	return parts[0] + "/" + parts[1] + "/" + topo.Label(), topo, nil
}

// ScalingVariants are the protocol columns of the scaling sweep: the
// two-level protocol and the one-level diff protocol, whose per-proc
// protocol nodes exercise the wide directory layout past 62 processors.
var ScalingVariants = []Variant{
	{Kind: core.TwoLevel},
	{Kind: core.OneLevelDiff},
}

// ScalingSeries returns the node counts of a scaling sweep: doubling
// from 1 up to and including maxNodes (with maxNodes itself always the
// last point).
func ScalingSeries(maxNodes int) []int {
	var series []int
	for n := 1; n < maxNodes; n *= 2 {
		series = append(series, n)
	}
	return append(series, maxNodes)
}

// messages returns the protocol message count the scaling sweep tracks:
// page transfers, write notices, directory updates, and lock/flag
// acquires (each acquire is a request/grant message exchange). Under
// the two-level protocol this total grows monotonically with the node
// count for every application.
func messages(res core.Result) int64 {
	t := res.Total
	return t.Counts[stats.PageTransfers] +
		t.Counts[stats.WriteNotices] +
		t.Counts[stats.DirectoryUpdates] +
		t.Counts[stats.LockAcquires]
}

// Scaling writes the scale-out sweep: speedup and protocol message
// counts per application and protocol as the node count doubles from 1
// to top.Nodes at top.PPN processors per node. Configurations past the
// paper's 8x4 run with wide directory words and barrier costs
// extrapolated along the measured slope, so the absolute numbers beyond
// 32 processors are a model extrapolation, not a platform measurement.
func (s *Suite) Scaling(w io.Writer, top Topology) error {
	series := ScalingSeries(top.Nodes)
	topos := make([]Topology, len(series))
	for i, n := range series {
		topos[i] = Topology{Nodes: n, PPN: top.PPN}
	}
	s.Prefetch(ScalingVariants, topos)

	line(w, "Scaling sweep: 1-%d nodes at %d procs/node (speedup | messages: transfers+notices+dir updates+acquires)",
		top.Nodes, top.PPN)
	for _, name := range AppNames() {
		line(w, "")
		line(w, "--- %s ---", name)
		header := pad("config", 8)
		for _, v := range ScalingVariants {
			header += pad(v.Label()+" sp", 10) + pad(v.Label()+" msgs", 12)
		}
		line(w, "%s", header)
		for _, topo := range topos {
			out := pad(topo.Label(), 8)
			for _, v := range ScalingVariants {
				res, err := s.Run(name, v, topo)
				if err != nil {
					out += pad("FAIL", 10) + pad("-", 12)
					continue
				}
				sp, err := s.Speedup(name, v, topo)
				if err != nil {
					sp = 0
				}
				out += pad(fmtSp(sp), 10) + pad(kcount(messages(res)), 12)
			}
			line(w, "%s", out)
		}
	}
	return nil
}
