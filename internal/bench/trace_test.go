package bench

import (
	"runtime"
	"testing"

	"cashmere/internal/apps"
	"cashmere/internal/core"
	"cashmere/internal/trace"
)

// TestTracingPreservesVirtualTime is the off-path guarantee of the
// observability layer: attaching a tracer must not change any
// virtual-time accounting, so a traced run and an untraced run of a
// deterministic application produce bit-identical stat vectors. Runs
// under the same conditions as TestVirtualTimeDeterminism (no -race,
// GOMAXPROCS pinned — see that test's comment).
func TestTracingPreservesVirtualTime(t *testing.T) {
	if raceEnabled {
		t.Skip("virtual-time tie-breaks are host-order dependent under -race (see determinism_test.go)")
	}
	defer runtime.GOMAXPROCS(runtime.GOMAXPROCS(1))
	cfg := core.Config{
		Nodes:        FullCluster.Nodes,
		ProcsPerNode: FullCluster.PPN,
		Protocol:     core.TwoLevel,
	}
	plain, err := apps.Run(freshApp(t, "SOR"), cfg)
	if err != nil {
		t.Fatal(err)
	}
	tr := trace.New(trace.Config{
		Procs: cfg.Nodes * cfg.ProcsPerNode,
		Links: cfg.Nodes,
	})
	cfg.Trace = tr
	traced, err := apps.Run(freshApp(t, "SOR"), cfg)
	if err != nil {
		t.Fatal(err)
	}
	compareResults(t, plain, traced)

	sum := tr.Summary()
	if sum.Events["barrier"] == 0 || sum.Events["page-fetch"] == 0 {
		t.Errorf("traced run recorded no protocol events: %v", sum.Events)
	}
}

// TestSuiteSetTrace checks the bench plumbing: the selected cell (and
// only that cell) runs under a tracer, the tracer is retrievable, and
// the JSON sink attaches the trace summary to the matching cell.
func TestSuiteSetTrace(t *testing.T) {
	s := NewSuite(true)
	sink := NewJSONSink(true, 1)
	s.SetJSON(sink)
	s.SetTrace("SOR/2L/8:2", nil)

	v := Variant{Kind: core.TwoLevel}
	if _, err := s.Run("SOR", v, Topology{Nodes: 4, PPN: 2}); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Run("LU", v, Topology{Nodes: 4, PPN: 2}); err != nil {
		t.Fatal(err)
	}
	tr := s.TraceResult()
	if tr == nil {
		t.Fatal("TraceResult nil after the selected cell ran")
	}
	if tr.Summary().Events["barrier"] == 0 {
		t.Error("selected cell's tracer recorded no barriers")
	}

	sink.mu.Lock()
	defer sink.mu.Unlock()
	var traced, untraced int
	for _, c := range sink.file.Cells {
		if c.Trace != nil {
			traced++
			if c.App != "SOR" {
				t.Errorf("trace summary attached to %s/%s/%s", c.App, c.Variant, c.Topology)
			}
		} else {
			untraced++
		}
	}
	if traced != 1 || untraced != 1 {
		t.Errorf("traced/untraced cells = %d/%d, want 1/1", traced, untraced)
	}
}
