package bench

import (
	"bytes"
	"encoding/json"
	"fmt"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"cashmere/internal/core"
)

// TestSingleflightDedup is the regression test for the Suite.Run cache
// race: the seed's check-then-act on s.cache let two concurrent callers
// both miss and execute the same cell twice. With the singleflight
// in-flight entry, exactly one caller executes and the rest share its
// result.
func TestSingleflightDedup(t *testing.T) {
	s := NewSuite(true)
	var execs atomic.Int64
	s.exec = func(name string, v Variant, topo Topology) (core.Result, error) {
		execs.Add(1)
		// Widen the race window: the seed's implementation would let
		// every waiter fall through the cache miss during this sleep.
		time.Sleep(50 * time.Millisecond)
		res := core.Result{}
		res.ExecNS = 12345
		return res, nil
	}

	const callers = 16
	var wg sync.WaitGroup
	results := make([]core.Result, callers)
	v := Variant{Kind: core.TwoLevel}
	topo := Topology{2, 2}
	for i := 0; i < callers; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			res, err := s.Run("SOR", v, topo)
			if err != nil {
				t.Errorf("caller %d: %v", i, err)
			}
			results[i] = res
		}(i)
	}
	wg.Wait()

	if n := execs.Load(); n != 1 {
		t.Errorf("cell executed %d times for %d concurrent callers, want 1", n, callers)
	}
	for i, res := range results {
		if res.ExecNS != 12345 {
			t.Errorf("caller %d got ExecNS=%d, want shared result 12345", i, res.ExecNS)
		}
	}

	// A different key still executes.
	if _, err := s.Run("SOR", v, Topology{4, 1}); err != nil {
		t.Fatal(err)
	}
	if n := execs.Load(); n != 2 {
		t.Errorf("second key: %d executions, want 2", n)
	}
}

// TestWorkerPoolBounded checks that at most -j cells execute at once.
func TestWorkerPoolBounded(t *testing.T) {
	s := NewSuite(true)
	s.SetWorkers(2)
	var cur, peak atomic.Int64
	s.exec = func(name string, v Variant, topo Topology) (core.Result, error) {
		n := cur.Add(1)
		for {
			p := peak.Load()
			if n <= p || peak.CompareAndSwap(p, n) {
				break
			}
		}
		time.Sleep(20 * time.Millisecond)
		cur.Add(-1)
		return core.Result{}, nil
	}
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			s.Run(fmt.Sprintf("app%d", i), Variant{Kind: core.TwoLevel}, FullCluster)
		}(i)
	}
	wg.Wait()
	if p := peak.Load(); p > 2 {
		t.Errorf("peak concurrency %d exceeds pool width 2", p)
	}
}

// TestPanicIsolation checks that one panicking cell reports an error
// and leaves the rest of the evaluation intact.
func TestPanicIsolation(t *testing.T) {
	s := NewSuite(true)
	s.exec = func(name string, v Variant, topo Topology) (core.Result, error) {
		if name == "boom" {
			panic("injected divergence")
		}
		res := core.Result{}
		res.ExecNS = 7
		return res, nil
	}
	v := Variant{Kind: core.TwoLevel}
	_, err := s.Run("boom", v, FullCluster)
	if err == nil || !strings.Contains(err.Error(), "panicked") ||
		!strings.Contains(err.Error(), "injected divergence") {
		t.Fatalf("panicking cell error = %v, want panic report", err)
	}
	res, err := s.Run("fine", v, FullCluster)
	if err != nil || res.ExecNS != 7 {
		t.Errorf("healthy cell after panic: res=%+v err=%v", res.Total, err)
	}
	fails := s.FailedCells()
	if len(fails) != 1 || !strings.Contains(fails[0], "boom/2L/32:4") {
		t.Errorf("FailedCells = %v, want one entry for boom", fails)
	}
}

// TestTimeoutMarksCellFailed checks that a cell exceeding the per-run
// wall-clock timeout is marked failed while the suite stays usable.
func TestTimeoutMarksCellFailed(t *testing.T) {
	s := NewSuite(true)
	s.SetTimeout(20 * time.Millisecond)
	release := make(chan struct{})
	s.exec = func(name string, v Variant, topo Topology) (core.Result, error) {
		if name == "slow" {
			<-release
		}
		return core.Result{}, nil
	}
	v := Variant{Kind: core.OneLevelDiff}
	_, err := s.Run("slow", v, FullCluster)
	if err == nil || !strings.Contains(err.Error(), "timed out") {
		t.Fatalf("slow cell error = %v, want timeout", err)
	}
	close(release) // let the abandoned goroutine finish
	if _, err := s.Run("quick", v, FullCluster); err != nil {
		t.Errorf("cell after timeout failed: %v", err)
	}
	if fails := s.FailedCells(); len(fails) != 1 {
		t.Errorf("FailedCells = %v, want the timed-out cell only", fails)
	}
}

// deterministicExec returns a fake cell executor whose result is a pure
// function of the cell key, for tests that compare parallel and serial
// suite fills.
func deterministicExec() func(string, Variant, Topology) (core.Result, error) {
	return func(name string, v Variant, topo Topology) (core.Result, error) {
		res := core.Result{}
		h := int64(len(name)*1000003 + topo.Nodes*8191 + topo.PPN*131 + int(v.Kind)*17)
		res.ExecNS = h
		res.DataBytes = h * 3
		res.Counts[0] = h % 97
		time.Sleep(time.Millisecond) // widen interleaving windows
		return res, nil
	}
}

// TestConcurrentSuiteMatchesSerial runs the full app x protocol x
// topology cross product through the pool and asserts every cell
// equals the result of a serial fill — the pool must not mix up,
// drop, or duplicate cells. Runs under -race in CI.
func TestConcurrentSuiteMatchesSerial(t *testing.T) {
	serial := NewSuite(true)
	serial.SetWorkers(1)
	serial.exec = deterministicExec()
	parallel := NewSuite(true)
	parallel.SetWorkers(8)
	parallel.exec = deterministicExec()

	names := AppNames()
	base := make(map[runKey]core.Result)
	for _, name := range names {
		for _, v := range Figure7Variants {
			for _, topo := range Figure7Topologies {
				res, err := serial.Run(name, v, topo)
				if err != nil {
					t.Fatal(err)
				}
				base[runKey{name, v, topo}] = res
			}
		}
	}

	parallel.Prefetch(Figure7Variants, Figure7Topologies)
	var wg sync.WaitGroup
	for _, name := range names {
		for _, v := range Figure7Variants {
			for _, topo := range Figure7Topologies {
				wg.Add(1)
				go func(name string, v Variant, topo Topology) {
					defer wg.Done()
					res, err := parallel.Run(name, v, topo)
					if err != nil {
						t.Errorf("%s/%s/%s: %v", name, v.Label(), topo.Label(), err)
						return
					}
					want := base[runKey{name, v, topo}]
					if res.ExecNS != want.ExecNS || res.DataBytes != want.DataBytes {
						t.Errorf("%s/%s/%s: parallel %d/%d, serial %d/%d",
							name, v.Label(), topo.Label(),
							res.ExecNS, res.DataBytes, want.ExecNS, want.DataBytes)
					}
				}(name, v, topo)
			}
		}
	}
	wg.Wait()
	if got, want := len(parallel.sortedKeys()), len(base); got != want {
		t.Errorf("parallel suite cached %d cells, want %d", got, want)
	}
}

// TestConcurrentRealAppAllProtocols runs a real quick-size application
// across all four protocols simultaneously through the pool (under
// -race in CI). Every run is validated against the sequential
// reference inside apps.Run, and re-querying must return the cached
// result bit-for-bit.
func TestConcurrentRealAppAllProtocols(t *testing.T) {
	s := NewSuite(true)
	s.SetWorkers(4)
	topo := Topology{2, 2}
	var wg sync.WaitGroup
	first := make([]core.Result, len(FourProtocols))
	for i, v := range FourProtocols {
		wg.Add(1)
		go func(i int, v Variant) {
			defer wg.Done()
			res, err := s.Run("SOR", v, topo)
			if err != nil {
				t.Errorf("SOR/%s: %v", v.Label(), err)
			}
			first[i] = res
		}(i, v)
	}
	wg.Wait()
	for i, v := range FourProtocols {
		res, err := s.Run("SOR", v, topo)
		if err != nil {
			t.Fatalf("re-query SOR/%s: %v", v.Label(), err)
		}
		if res.ExecNS != first[i].ExecNS || res.DataBytes != first[i].DataBytes {
			t.Errorf("SOR/%s: re-query differs from pooled run", v.Label())
		}
	}
}

// TestJSONSinkSchema checks that completed and failed cells serialize
// into the documented results-file schema, sorted for stable diffs.
func TestJSONSinkSchema(t *testing.T) {
	s := NewSuite(true)
	s.SetWorkers(2)
	sink := NewJSONSink(true, 2)
	s.SetJSON(sink)
	s.exec = func(name string, v Variant, topo Topology) (core.Result, error) {
		if name == "bad" {
			return core.Result{}, fmt.Errorf("synthetic failure")
		}
		res := core.Result{}
		res.ExecNS = 42
		res.DataBytes = 99
		res.Procs = topo.Nodes * topo.PPN
		res.Counts[0] = 5
		return res, nil
	}
	v := Variant{Kind: core.TwoLevel}
	s.Run("zzz", v, Topology{2, 2})
	s.Run("bad", v, Topology{2, 2})
	s.Run("aaa", v, Topology{2, 2})

	var buf bytes.Buffer
	if _, err := sink.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	var file ResultsFile
	if err := json.Unmarshal(buf.Bytes(), &file); err != nil {
		t.Fatalf("results file is not valid JSON: %v\n%s", err, buf.String())
	}
	if file.Tool != "cashmere-bench" || file.Schema != 1 || !file.Quick || file.Workers != 2 {
		t.Errorf("header = %+v", file)
	}
	if len(file.Cells) != 3 {
		t.Fatalf("%d cells, want 3", len(file.Cells))
	}
	if file.Cells[0].App != "aaa" || file.Cells[1].App != "bad" || file.Cells[2].App != "zzz" {
		t.Errorf("cells not sorted: %s %s %s",
			file.Cells[0].App, file.Cells[1].App, file.Cells[2].App)
	}
	ok := file.Cells[0]
	if ok.ExecNS != 42 || ok.DataBytes != 99 || ok.Procs != 4 ||
		ok.Counts["LockAcquires"] != 5 || ok.Error != "" {
		t.Errorf("good cell = %+v", ok)
	}
	bad := file.Cells[1]
	if bad.Error != "synthetic failure" || bad.ExecNS != 0 {
		t.Errorf("failed cell = %+v", bad)
	}
	if ok.WallNS < 0 {
		t.Errorf("wall time %d negative", ok.WallNS)
	}
}

// TestProgressLine checks the live progress line renders counts.
func TestProgressLine(t *testing.T) {
	s := NewSuite(true)
	var buf bytes.Buffer
	s.SetProgress(&buf)
	s.exec = func(name string, v Variant, topo Topology) (core.Result, error) {
		return core.Result{}, nil
	}
	s.Run("one", Variant{Kind: core.TwoLevel}, Topology{2, 2})
	s.Run("two", Variant{Kind: core.TwoLevel}, Topology{2, 2})
	s.Close()
	out := buf.String()
	if !strings.Contains(out, "1/1 cells done") {
		t.Errorf("progress output missing completion count:\n%q", out)
	}
	if !strings.HasSuffix(out, "\n") {
		t.Errorf("Close did not terminate the progress line")
	}
}
