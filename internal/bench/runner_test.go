package bench

import (
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"cashmere/internal/core"
)

// TestSingleflightDedup is the regression test for the Suite.Run cache
// race: the seed's check-then-act on s.cache let two concurrent callers
// both miss and execute the same cell twice. With the singleflight
// in-flight entry, exactly one caller executes and the rest share its
// result.
func TestSingleflightDedup(t *testing.T) {
	s := NewSuite(true)
	var execs atomic.Int64
	s.exec = func(name string, v Variant, topo Topology) (core.Result, error) {
		execs.Add(1)
		// Widen the race window: the seed's implementation would let
		// every waiter fall through the cache miss during this sleep.
		time.Sleep(50 * time.Millisecond)
		res := core.Result{}
		res.ExecNS = 12345
		return res, nil
	}

	const callers = 16
	var wg sync.WaitGroup
	results := make([]core.Result, callers)
	v := Variant{Kind: core.TwoLevel}
	topo := Topology{2, 2}
	for i := 0; i < callers; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			res, err := s.Run("SOR", v, topo)
			if err != nil {
				t.Errorf("caller %d: %v", i, err)
			}
			results[i] = res
		}(i)
	}
	wg.Wait()

	if n := execs.Load(); n != 1 {
		t.Errorf("cell executed %d times for %d concurrent callers, want 1", n, callers)
	}
	for i, res := range results {
		if res.ExecNS != 12345 {
			t.Errorf("caller %d got ExecNS=%d, want shared result 12345", i, res.ExecNS)
		}
	}

	// A different key still executes.
	if _, err := s.Run("SOR", v, Topology{4, 1}); err != nil {
		t.Fatal(err)
	}
	if n := execs.Load(); n != 2 {
		t.Errorf("second key: %d executions, want 2", n)
	}
}
