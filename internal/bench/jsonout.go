package bench

import (
	"encoding/json"
	"io"
	"sort"
	"sync"

	"cashmere/internal/metrics"
	"cashmere/internal/trace"
)

// JSON results output: every completed experiment cell is recorded in a
// machine-readable file so benchmark trajectories can be diffed across
// revisions. The file is a single JSON document:
//
//	{
//	  "tool": "cashmere-bench",
//	  "schema": 1,
//	  "quick": true,
//	  "workers": 4,
//	  "cells": [
//	    {
//	      "app": "SOR",
//	      "variant": "2L",
//	      "topology": "32:4",
//	      "procs": 32,
//	      "exec_ns": 50123456,
//	      "data_bytes": 744480,
//	      "counts": {"Barriers": 14, "ReadFaults": 59, ...},
//	      "time_ns": {"User": ..., "Protocol": ..., ...},
//	      "wall_ns": 1834000,
//	      "trace": {...},         // present only for the cell traced
//	                              // with -trace (see docs/TRACING.md)
//	      "profile": {...},       // hot-page/hot-lock attribution for
//	                              // the traced cell (docs/METRICS.md)
//	      "error": "..."          // present only for failed cells
//	    }, ...
//	  ]
//	}
//
// Cells are sorted by (app, variant, topology) regardless of execution
// order, so two runs of the same evaluation diff cleanly. Zero-valued
// counters and components are omitted from the maps.

// CellResult is one experiment cell in the results file.
type CellResult struct {
	App      string `json:"app"`
	Variant  string `json:"variant"`
	Topology string `json:"topology"`

	// Procs is the number of simulated processors; zero for failed
	// cells.
	Procs int `json:"procs,omitempty"`

	// ExecNS is the virtual execution time (stats.Total.ExecNS).
	ExecNS int64 `json:"exec_ns"`

	// DataBytes is the Memory Channel payload traffic.
	DataBytes int64 `json:"data_bytes"`

	// Counts holds the nonzero protocol event counters by name.
	Counts map[string]int64 `json:"counts,omitempty"`

	// TimeNS holds the nonzero execution-time breakdown components by
	// name, in virtual nanoseconds.
	TimeNS map[string]int64 `json:"time_ns,omitempty"`

	// WallNS is the host wall-clock time spent executing the cell.
	WallNS int64 `json:"wall_ns"`

	// Trace holds the structured-trace summary (event counts and
	// latency/size histograms) for the cell selected with
	// Suite.SetTrace; nil for untraced cells.
	Trace *trace.Summary `json:"trace,omitempty"`

	// Profile holds the hot-page / hot-lock attribution report for the
	// traced cell; nil for untraced cells.
	Profile *metrics.Profile `json:"profile,omitempty"`

	// Error is the failure message of a failed (errored, panicked, or
	// timed-out) cell; empty on success.
	Error string `json:"error,omitempty"`
}

// ResultsFile is the top-level document of the JSON results output.
type ResultsFile struct {
	Tool    string       `json:"tool"`
	Schema  int          `json:"schema"`
	Quick   bool         `json:"quick"`
	Workers int          `json:"workers"`
	Cells   []CellResult `json:"cells"`
}

// JSONSink accumulates per-cell results as the evaluation runs and
// serializes them on WriteTo. It is safe for concurrent use.
type JSONSink struct {
	mu       sync.Mutex
	file     ResultsFile
	trsums   map[runKey]*trace.Summary
	profiles map[runKey]*metrics.Profile
}

// NewJSONSink returns a sink describing an evaluation at the given
// problem size and worker-pool width.
func NewJSONSink(quick bool, workers int) *JSONSink {
	return &JSONSink{file: ResultsFile{Tool: "cashmere-bench", Schema: 1, Quick: quick, Workers: workers}}
}

// noteTrace records a cell's trace summary, to be attached when the
// cell itself is added (the runner adds cells after execution returns,
// so the summary is always noted first).
func (s *JSONSink) noteTrace(key runKey, sum trace.Summary) {
	s.mu.Lock()
	if s.trsums == nil {
		s.trsums = make(map[runKey]*trace.Summary)
	}
	s.trsums[key] = &sum
	s.mu.Unlock()
}

// noteProfile records a traced cell's attribution profile, attached to
// the cell like noteTrace's summary.
func (s *JSONSink) noteProfile(key runKey, p *metrics.Profile) {
	s.mu.Lock()
	if s.profiles == nil {
		s.profiles = make(map[runKey]*metrics.Profile)
	}
	s.profiles[key] = p
	s.mu.Unlock()
}

// add records one completed cell.
func (s *JSONSink) add(key runKey, out cellOut) {
	cr := CellResult{
		App:      key.app,
		Variant:  key.v.Label(),
		Topology: key.topo.Label(),
		WallNS:   out.wallNS,
	}
	if out.err != nil {
		cr.Error = out.err.Error()
	} else {
		t := out.res.Total
		cr.Procs = t.Procs
		cr.ExecNS = t.ExecNS
		cr.DataBytes = t.DataBytes
		cr.Counts = t.CountsMap()
		cr.TimeNS = t.TimeMap()
	}
	s.mu.Lock()
	if sum, ok := s.trsums[key]; ok && out.err == nil {
		cr.Trace = sum
	}
	if p, ok := s.profiles[key]; ok && out.err == nil {
		cr.Profile = p
	}
	s.file.Cells = append(s.file.Cells, cr)
	s.mu.Unlock()
}

// Len returns the number of recorded cells.
func (s *JSONSink) Len() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.file.Cells)
}

// WriteTo serializes the collected results as indented JSON, with
// cells sorted by (app, variant, topology) for stable diffs.
func (s *JSONSink) WriteTo(w io.Writer) (int64, error) {
	s.mu.Lock()
	file := s.file
	file.Cells = append([]CellResult(nil), s.file.Cells...)
	s.mu.Unlock()
	sort.Slice(file.Cells, func(i, j int) bool {
		a, b := file.Cells[i], file.Cells[j]
		if a.App != b.App {
			return a.App < b.App
		}
		if a.Variant != b.Variant {
			return a.Variant < b.Variant
		}
		return a.Topology < b.Topology
	})
	buf, err := json.MarshalIndent(file, "", "  ")
	if err != nil {
		return 0, err
	}
	buf = append(buf, '\n')
	n, err := w.Write(buf)
	return int64(n), err
}
