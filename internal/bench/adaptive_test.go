package bench

import (
	"math"
	"testing"
)

// TestAdaptiveBaselineShowsWins pins the claim the committed
// BENCH_adaptive.json makes: at the quick 16:4 configuration, 2L with
// the adaptive policy engine beats the best fixed protocol on at least
// two applications. The CI smoke lane regenerates these cells and
// gates them with cashmere-benchdiff against the same file, so the
// committed numbers cannot drift from the code.
func TestAdaptiveBaselineShowsWins(t *testing.T) {
	rf, err := LoadResults("../../BENCH_adaptive.json")
	if err != nil {
		t.Fatalf("loading committed adaptive baseline: %v", err)
	}
	fixed := make(map[string]bool)
	for _, v := range FourProtocols {
		fixed[v.Label()] = true
	}
	adaptiveLabel := AdaptiveVariant.Label()

	bestFixed := make(map[string]float64)
	adaptive := make(map[string]float64)
	for _, c := range rf.Cells {
		if c.Error != "" {
			t.Errorf("committed baseline contains failed cell %s/%s/%s: %s",
				c.App, c.Variant, c.Topology, c.Error)
			continue
		}
		switch {
		case fixed[c.Variant]:
			if cur, ok := bestFixed[c.App]; !ok || float64(c.ExecNS) < cur {
				bestFixed[c.App] = float64(c.ExecNS)
			}
		case c.Variant == adaptiveLabel:
			adaptive[c.App] = float64(c.ExecNS)
		}
	}
	if len(adaptive) == 0 {
		t.Fatalf("no %s cells in committed baseline", adaptiveLabel)
	}

	wins := 0
	for app, a := range adaptive {
		best, ok := bestFixed[app]
		if !ok || math.IsNaN(best) {
			t.Errorf("app %s has an adaptive cell but no fixed-protocol cells", app)
			continue
		}
		if a < best {
			wins++
			t.Logf("%s: %s %.3fs beats best fixed %.3fs (%.1f%%)",
				app, adaptiveLabel, a/1e9, best/1e9, 100*(1-a/best))
		}
	}
	if wins < 2 {
		t.Errorf("adaptive beats the best fixed protocol on %d app(s), want >= 2", wins)
	}
}
