package bench

import (
	"reflect"
	"strings"
	"testing"
)

func TestParseTopology(t *testing.T) {
	topo, err := ParseTopology("32:4")
	if err != nil {
		t.Fatal(err)
	}
	if topo != (Topology{Nodes: 8, PPN: 4}) {
		t.Errorf("ParseTopology(32:4) = %+v", topo)
	}
	if topo.Label() != "32:4" {
		t.Errorf("label roundtrip = %q", topo.Label())
	}
	// Malformed input carries the shared grammar message.
	if _, err := ParseTopology("8x4"); err == nil ||
		!strings.Contains(err.Error(), "procs:procsPerNode") {
		t.Errorf("ParseTopology(8x4) error %v does not quote the grammar", err)
	}
}

func TestParseCell(t *testing.T) {
	label, topo, err := ParseCell("SOR/2L/32:4")
	if err != nil {
		t.Fatal(err)
	}
	if label != "SOR/2L/32:4" || topo != (Topology{Nodes: 8, PPN: 4}) {
		t.Errorf("ParseCell = %q, %+v", label, topo)
	}
	for _, in := range []string{"", "SOR", "SOR/2L", "SOR/2L/8x4", "//32:4", "SOR/2L/32:4/extra"} {
		if _, _, err := ParseCell(in); err == nil {
			t.Errorf("ParseCell(%q) did not fail", in)
		} else if !strings.Contains(err.Error(), "procs:procsPerNode") {
			t.Errorf("ParseCell(%q) error %q does not quote the grammar", in, err)
		}
	}
}

func TestScalingSeries(t *testing.T) {
	cases := []struct {
		max  int
		want []int
	}{
		{1, []int{1}},
		{2, []int{1, 2}},
		{8, []int{1, 2, 4, 8}},
		{32, []int{1, 2, 4, 8, 16, 32}},
		{12, []int{1, 2, 4, 8, 12}}, // non-power-of-two endpoint kept
	}
	for _, c := range cases {
		if got := ScalingSeries(c.max); !reflect.DeepEqual(got, c.want) {
			t.Errorf("ScalingSeries(%d) = %v, want %v", c.max, got, c.want)
		}
	}
}

func TestScalingSweepSmoke(t *testing.T) {
	// A tiny sweep (1-4 nodes at 2 procs/node, quick sizes) must render
	// every cell without failures, including a beyond-paper row once the
	// endpoint exceeds 8 nodes elsewhere; here it validates the renderer
	// end to end.
	s := NewSuite(true)
	var buf strings.Builder
	if err := s.Scaling(&buf, Topology{Nodes: 4, PPN: 2}); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"Scaling sweep", "2:2", "4:2", "8:2", "SOR"} {
		if !strings.Contains(out, want) {
			t.Errorf("sweep output missing %q", want)
		}
	}
	if strings.Contains(out, "FAIL") {
		t.Errorf("sweep contains failed cells:\n%s", out)
	}
	if fails := s.FailedCells(); len(fails) > 0 {
		t.Errorf("failed cells: %v", fails)
	}
}
