// Package bench regenerates the evaluation of the paper: Table 1 (basic
// operation costs), Table 2 (data set sizes and sequential times),
// Table 3 (detailed per-application protocol statistics at 32
// processors), Figure 6 (normalized execution-time breakdown), Figure 7
// (speedups across protocols and cluster configurations), and the
// Section 3.3.4/3.3.5 ablations (shootdown vs two-way diffing, lock-free
// vs lock-based metadata).
//
// Absolute numbers depend on the simulated platform; what the harness is
// expected to reproduce is the paper's shape: which protocol wins, by
// roughly what factor, and where the crossovers fall. EXPERIMENTS.md
// records paper-vs-measured for every experiment.
package bench

import (
	"fmt"
	"io"
	"runtime"
	"sort"
	"sync"
	"time"

	"cashmere/internal/apps"
	"cashmere/internal/core"
	"cashmere/internal/costs"
	"cashmere/internal/metrics"
	"cashmere/internal/policy"
	"cashmere/internal/stats"
	"cashmere/internal/trace"
	"cashmere/internal/transport"
)

// Variant identifies a protocol configuration column.
type Variant struct {
	Kind       core.Kind
	HomeOpt    bool
	LockBased  bool
	Interrupts bool

	// Adaptive wires the internal/policy engine: the page-mode table
	// starts at the variant's base protocol and the engine re-decides
	// per-page policy at every barrier epoch (see docs/ADAPTIVE.md).
	Adaptive bool
}

// Label returns the paper's abbreviation for the variant.
func (v Variant) Label() string {
	s := v.Kind.String()
	if v.HomeOpt {
		s += "+H"
	}
	if v.LockBased {
		s += "+lk"
	}
	if v.Interrupts {
		s += "+intr"
	}
	if v.Adaptive {
		s += "+A"
	}
	return s
}

// FourProtocols are the paper's main comparison columns.
var FourProtocols = []Variant{
	{Kind: core.TwoLevel},
	{Kind: core.TwoLevelSD},
	{Kind: core.OneLevelDiff},
	{Kind: core.OneLevelWrite},
}

// Topology is a processor configuration in the paper's P:ppn notation
// (total processors : processes per node).
type Topology struct {
	Nodes, PPN int
}

// Label renders the paper's notation, e.g. "32:4".
func (t Topology) Label() string { return fmt.Sprintf("%d:%d", t.Nodes*t.PPN, t.PPN) }

// Figure7Topologies are the configurations of Figure 7.
var Figure7Topologies = []Topology{
	{4, 1}, {1, 4}, {8, 1}, {4, 2}, {2, 4}, {8, 2}, {4, 4}, {8, 3}, {8, 4},
}

// FullCluster is the paper's full platform: eight 4-processor nodes.
var FullCluster = Topology{Nodes: 8, PPN: 4}

// Suite runs and caches experiment executions through a bounded
// concurrent runner: cells execute in parallel (each is an independent
// simulated cluster), concurrent requests for the same cell are
// deduplicated (singleflight), a panicking cell reports an error
// instead of killing the evaluation, and cells can be bounded by a
// wall-clock timeout.
type Suite struct {
	// Quick selects the tiny test problem sizes instead of the default
	// (scaled-down) evaluation sizes.
	Quick bool

	// transport selects the fabric backend every cell's cluster runs
	// over. The zero value is transport.Sim, the virtual-time Memory
	// Channel simulator the paper's numbers are pinned on; see
	// SetTransport.
	transport transport.Kind

	// exec performs one experiment cell; tests may substitute it to
	// count or fail executions.
	exec func(name string, v Variant, topo Topology) (core.Result, error)

	r *runner

	// traceLabel selects the cell (app/variant/topology) whose run is
	// recorded by a structured event tracer; empty disables tracing.
	traceLabel string
	tracePages map[int]bool

	trMu    sync.Mutex
	traceTr *trace.Tracer

	// metrics, when set, receives every cell's cluster for live
	// scraping: clusters attach through core.Config.Observer as they
	// are built and detach (folding their final statistics into the
	// registry) when their run completes.
	metrics *metrics.Registry
}

type runKey struct {
	app  string
	v    Variant
	topo Topology
}

// NewSuite returns an empty suite with a worker pool of GOMAXPROCS
// cells.
func NewSuite(quick bool) *Suite {
	s := &Suite{Quick: quick}
	s.exec = s.execute
	s.r = newRunner(runtime.GOMAXPROCS(0), func(k runKey) (core.Result, error) {
		return s.exec(k.app, k.v, k.topo)
	})
	return s
}

// SetWorkers sets the number of experiment cells executing
// concurrently. It must be called before the first Run or prefetch.
func (s *Suite) SetWorkers(n int) { s.r.setWorkers(n) }

// Workers returns the worker-pool width.
func (s *Suite) Workers() int { return s.r.workers() }

// SetTransport selects the fabric backend for every experiment cell
// (transport.Sim or transport.SHM; the multi-process tcp backend
// cannot host the single-process engine and is rejected by core.New).
// Only sim produces the paper's virtual-time numbers — shm runs the
// same protocol with no time model, useful for wall-clock and race
// coverage. Call before the first Run or prefetch.
func (s *Suite) SetTransport(k transport.Kind) { s.transport = k }

// SetTimeout bounds each cell's host wall-clock execution time; a cell
// exceeding it is marked failed (its error appears in the rendered
// tables and the JSON results) while the rest of the evaluation
// proceeds. Zero disables the bound.
func (s *Suite) SetTimeout(d time.Duration) { s.r.timeout = d }

// SetProgress enables a live progress line (cells done/total, current
// slowest cell) written to w, typically stderr. Call Close to
// terminate the line.
func (s *Suite) SetProgress(w io.Writer) { s.r.prog = newProgress(w) }

// SetJSON attaches a sink recording every completed cell for the
// machine-readable results file.
func (s *Suite) SetJSON(sink *JSONSink) { s.r.sink = sink }

// SetTrace arranges for the cell with the given "app/variant/topology"
// label (e.g. "SOR/2L/32:4") to run under a structured event tracer
// (see internal/trace). pages optionally restricts per-page live notes
// to those page numbers; nil records all pages. Call before the first
// Run or prefetch; retrieve the recorder with TraceResult.
func (s *Suite) SetTrace(cell string, pages map[int]bool) {
	s.traceLabel = cell
	s.tracePages = pages
}

// TraceResult returns the tracer of the cell selected with SetTrace,
// or nil if that cell has not (successfully) executed.
func (s *Suite) TraceResult() *trace.Tracer {
	s.trMu.Lock()
	defer s.trMu.Unlock()
	return s.traceTr
}

// SetMetrics attaches the suite to a live metrics registry: every
// cell's cluster becomes scrapeable through /metrics while it runs,
// and the registry's /status snapshot is served from the suite's
// runner (per-cell queued/running/done/failed progress with an ETA).
// Call before the first Run or prefetch.
func (s *Suite) SetMetrics(reg *metrics.Registry) {
	s.metrics = reg
	reg.SetStatusFunc(s.Status)
}

// Status returns the evaluation's live progress snapshot.
func (s *Suite) Status() metrics.Status { return s.r.status() }

// Close terminates the progress line, if one is active.
func (s *Suite) Close() { s.r.prog.close() }

// FailedCells returns a sorted description of every failed cell
// (errored, panicked, or timed out) executed so far.
func (s *Suite) FailedCells() []string { return s.r.failed() }

// appInstance returns a fresh instance of the named application at the
// suite's problem size.
func (s *Suite) appInstance(name string) apps.App {
	set := apps.All()
	if s.Quick {
		set = apps.Small()
	}
	for _, a := range set {
		if a.Name() == name {
			return a
		}
	}
	return nil
}

// AppNames returns the suite's application names in Table 2 order.
func AppNames() []string {
	var names []string
	for _, a := range apps.Small() {
		names = append(names, a.Name())
	}
	return names
}

// Run executes (with caching) the named application under the variant
// and topology and returns its statistics. Concurrent calls for the
// same cell are deduplicated: one caller executes, the rest block on
// its in-flight entry and share the result (singleflight).
func (s *Suite) Run(name string, v Variant, topo Topology) (core.Result, error) {
	return s.r.run(runKey{name, v, topo})
}

// Prefetch schedules cells for every application under the given
// variants and topologies through the worker pool without waiting for
// them; later Run calls for the same cells join the in-flight
// executions. Renderers prefetch the cells they need, so tables and
// figures compute in parallel while rendering stays serial and
// deterministic given the cached results.
func (s *Suite) Prefetch(variants []Variant, topos []Topology) {
	var keys []runKey
	for _, name := range AppNames() {
		for _, v := range variants {
			for _, topo := range topos {
				keys = append(keys, runKey{name, v, topo})
			}
		}
	}
	s.r.prefetch(keys)
}

// PrefetchAll schedules every cell of the full evaluation (Tables 3,
// Figures 6-7, and both ablations); used by the -all driver so late
// sections compute while early ones render.
func (s *Suite) PrefetchAll() {
	s.Prefetch(allVariants(), []Topology{FullCluster})
	s.Prefetch(Figure7Variants, Figure7Topologies)
}

// allVariants returns every protocol variant used at the full cluster
// configuration: the four main columns plus the ablation variants.
func allVariants() []Variant {
	vs := append([]Variant(nil), FourProtocols...)
	vs = append(vs,
		Variant{Kind: core.TwoLevelSD, Interrupts: true},
		Variant{Kind: core.TwoLevel, LockBased: true},
	)
	return vs
}

// execute performs one experiment cell uncached.
func (s *Suite) execute(name string, v Variant, topo Topology) (core.Result, error) {
	app := s.appInstance(name)
	if app == nil {
		return core.Result{}, fmt.Errorf("bench: unknown application %q", name)
	}
	cfg := core.Config{
		Nodes:         topo.Nodes,
		ProcsPerNode:  topo.PPN,
		Protocol:      v.Kind,
		Transport:     s.transport,
		HomeOpt:       v.HomeOpt,
		LockBasedMeta: v.LockBased,
		UseInterrupts: v.Interrupts,
	}
	key := runKey{name, v, topo}
	var tr *trace.Tracer
	if s.traceLabel != "" && keyLabel(key) == s.traceLabel {
		tr = trace.New(trace.Config{
			Procs: topo.Nodes * topo.PPN,
			Links: topo.Nodes,
			Pages: s.tracePages,
		})
		cfg.Trace = tr
	}
	var detach func()
	if s.metrics != nil {
		cfg.Observer = func(c *core.Cluster) { detach = s.metrics.Attach(c) }
	}
	if v.Adaptive {
		// Wire chains the Observer above, so metrics still attach.
		policy.Wire(&cfg, policy.Defaults())
	}
	res, err := apps.Run(app, cfg)
	if detach != nil {
		detach()
	}
	if tr != nil && err == nil {
		s.trMu.Lock()
		s.traceTr = tr
		s.trMu.Unlock()
		if s.r.sink != nil {
			s.r.sink.noteTrace(key, tr.Summary())
			s.r.sink.noteProfile(key, metrics.BuildProfile(tr, 20))
		}
	}
	return res, err
}

// Speedup returns the named application's speedup for a cached or fresh
// run under the variant and topology.
func (s *Suite) Speedup(name string, v Variant, topo Topology) (float64, error) {
	res, err := s.Run(name, v, topo)
	if err != nil {
		return 0, err
	}
	app := s.appInstance(name)
	seq := app.SeqTime(costs.Default())
	return float64(seq) / float64(res.ExecNS), nil
}

// bar renders an ASCII bar of the given value against a scale maximum.
func bar(v, max float64, width int) string {
	if max <= 0 {
		max = 1
	}
	n := int(v / max * float64(width))
	if n < 0 {
		n = 0
	}
	if n > width {
		n = width
	}
	out := make([]byte, n)
	for i := range out {
		out[i] = '#'
	}
	return string(out)
}

// sortedKeys is a test helper exposing the cached run set.
func (s *Suite) sortedKeys() []runKey {
	s.r.mu.Lock()
	defer s.r.mu.Unlock()
	keys := make([]runKey, 0, len(s.r.results))
	for k := range s.r.results {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool {
		a, b := keys[i], keys[j]
		if a.app != b.app {
			return a.app < b.app
		}
		return a.v.Label() < b.v.Label()
	})
	return keys
}

// kcount formats a count the way Table 3 does (thousands with two
// decimals for large values).
func kcount(n int64) string {
	if n >= 1000 {
		return fmt.Sprintf("%.2fK", float64(n)/1000)
	}
	return fmt.Sprintf("%d", n)
}

// line writes a printf-formatted line.
func line(w io.Writer, format string, args ...any) {
	fmt.Fprintf(w, format+"\n", args...)
}

// statRow extracts a Table 3 statistics row.
func statRow(res core.Result) []string {
	t := res.Total
	return []string{
		fmt.Sprintf("%.3f", t.ExecSeconds()),
		kcount(t.Counts[stats.LockAcquires]),
		fmt.Sprintf("%d", t.Counts[stats.Barriers]),
		kcount(t.Counts[stats.ReadFaults]),
		kcount(t.Counts[stats.WriteFaults]),
		kcount(t.Counts[stats.PageTransfers]),
		kcount(t.Counts[stats.DirectoryUpdates]),
		kcount(t.Counts[stats.WriteNotices]),
		kcount(t.Counts[stats.ExclTransitions]),
		fmt.Sprintf("%.2f", t.DataMB()),
		kcount(t.Counts[stats.TwinCreations]),
		kcount(t.Counts[stats.IncomingDiffs]),
		kcount(t.Counts[stats.FlushUpdates]),
		kcount(t.Counts[stats.Shootdowns]),
	}
}

// statLabels are the Table 3 row labels, matching statRow's order.
var statLabels = []string{
	"Exec. time (secs)",
	"Lock/Flag Acquires",
	"Barriers",
	"Read Faults",
	"Write Faults",
	"Page Transfers",
	"Directory Updates",
	"Write Notices",
	"Excl. Mode Transitions",
	"Data (Mbytes)",
	"Twin Creations",
	"Incoming Diffs",
	"Flush-Updates",
	"Shootdowns",
}
