package bench

import (
	"bytes"
	"strings"
	"testing"
	"time"

	"cashmere/internal/core"
	"cashmere/internal/costs"
	"cashmere/internal/stats"
)

func TestVariantLabels(t *testing.T) {
	cases := map[string]Variant{
		"2L":       {Kind: core.TwoLevel},
		"2LS":      {Kind: core.TwoLevelSD},
		"1LD":      {Kind: core.OneLevelDiff},
		"1L":       {Kind: core.OneLevelWrite},
		"1LD+H":    {Kind: core.OneLevelDiff, HomeOpt: true},
		"2L+lk":    {Kind: core.TwoLevel, LockBased: true},
		"2LS+intr": {Kind: core.TwoLevelSD, Interrupts: true},
	}
	for want, v := range cases {
		if got := v.Label(); got != want {
			t.Errorf("Label() = %q, want %q", got, want)
		}
	}
}

func TestTopologyLabels(t *testing.T) {
	if got := (Topology{8, 4}).Label(); got != "32:4" {
		t.Errorf("label = %q", got)
	}
	if got := (Topology{1, 4}).Label(); got != "4:4" {
		t.Errorf("label = %q", got)
	}
	// The figure's nine configurations match the paper.
	want := []string{"4:1", "4:4", "8:1", "8:2", "8:4", "16:2", "16:4", "24:3", "32:4"}
	if len(Figure7Topologies) != len(want) {
		t.Fatalf("%d topologies, want %d", len(Figure7Topologies), len(want))
	}
	for i, topo := range Figure7Topologies {
		if topo.Label() != want[i] {
			t.Errorf("topology %d = %s, want %s", i, topo.Label(), want[i])
		}
	}
}

func TestMeasureBasicOpsMatchTable1(t *testing.T) {
	m := costs.Default()
	us := int64(time.Microsecond)
	two, err := MeasureBasicOps(core.TwoLevel)
	if err != nil {
		t.Fatal(err)
	}
	one, err := MeasureBasicOps(core.OneLevelDiff)
	if err != nil {
		t.Fatal(err)
	}
	approx := func(name string, got, want, tol int64) {
		t.Helper()
		if got < want-tol || got > want+tol {
			t.Errorf("%s = %dus, want %dus (+/- %dus)", name, got/us, want/us, tol/us)
		}
	}
	// Paper Table 1: 19/11us locks; 58/41us and 321/364us barriers;
	// 824/777us remote transfers; 467us local.
	approx("2L lock", two.LockAcquire, m.LockAcquire2L, 2*us)
	approx("1L lock", one.LockAcquire, m.LockAcquire1L, 2*us)
	approx("2L barrier2", two.Barrier2, m.Barrier2Proc2L, 5*us)
	approx("1L barrier2", one.Barrier2, m.Barrier2Proc1L, 5*us)
	approx("2L barrier32", two.Barrier32, m.Barrier32Proc2L, 40*us)
	approx("1L barrier32", one.Barrier32, m.Barrier32Proc1L, 40*us)
	approx("2L remote xfer", two.PageTransferRemote, m.PageTransferRemote2L, 90*us)
	approx("1L remote xfer", one.PageTransferRemote, m.PageTransferRemote1L, 90*us)
	approx("1L local xfer", one.PageTransferLocal, m.PageTransferLocal, 90*us)
	if two.PageTransferLocal != m.PageTransferLocal {
		t.Errorf("2L local transfer = %d, want platform constant", two.PageTransferLocal)
	}
	// The relationships the paper calls out: two-level locks cost more,
	// two-level barriers cost less at scale.
	if two.LockAcquire <= one.LockAcquire {
		t.Error("2L lock not more expensive than 1L lock")
	}
	if two.Barrier32 >= one.Barrier32 {
		t.Error("2L 32-proc barrier not cheaper than 1L")
	}
}

func TestTable1Output(t *testing.T) {
	var buf bytes.Buffer
	if err := Table1(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"Lock Acquire", "Barrier", "Page Transfer (Remote)", "2L/2LS"} {
		if !strings.Contains(out, want) {
			t.Errorf("Table1 output missing %q:\n%s", want, out)
		}
	}
}

func TestBasicCostsOutput(t *testing.T) {
	var buf bytes.Buffer
	BasicCosts(&buf)
	for _, want := range []string{"Twin creation", "Incoming diff", "Directory update", "199"} {
		if !strings.Contains(buf.String(), want) {
			t.Errorf("BasicCosts missing %q", want)
		}
	}
}

func TestTable2Output(t *testing.T) {
	s := NewSuite(true)
	var buf bytes.Buffer
	s.Table2(&buf)
	out := buf.String()
	for _, name := range AppNames() {
		if !strings.Contains(out, name) {
			t.Errorf("Table2 missing %s", name)
		}
	}
}

func TestSuiteRunCaching(t *testing.T) {
	s := NewSuite(true)
	v := Variant{Kind: core.TwoLevel}
	topo := Topology{2, 2}
	r1, err := s.Run("SOR", v, topo)
	if err != nil {
		t.Fatal(err)
	}
	r2, err := s.Run("SOR", v, topo)
	if err != nil {
		t.Fatal(err)
	}
	if r1.ExecNS != r2.ExecNS {
		t.Error("cached run differs")
	}
	if len(s.sortedKeys()) != 1 {
		t.Errorf("cache holds %d keys, want 1", len(s.sortedKeys()))
	}
	if _, err := s.Run("nope", v, topo); err == nil {
		t.Error("unknown app accepted")
	}
}

func TestSpeedupPositive(t *testing.T) {
	s := NewSuite(true)
	sp, err := s.Speedup("Em3d", Variant{Kind: core.TwoLevel}, Topology{4, 2})
	if err != nil {
		t.Fatal(err)
	}
	if sp <= 0 {
		t.Errorf("speedup = %f", sp)
	}
}

func TestTable3AndFigure6Quick(t *testing.T) {
	s := NewSuite(true)
	var buf bytes.Buffer
	if err := s.Table3(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"--- 2L ---", "--- 1LD ---", "Twin Creations", "Data (Mbytes)", "Shootdowns"} {
		if !strings.Contains(out, want) {
			t.Errorf("Table3 missing %q", want)
		}
	}
	buf.Reset()
	if err := s.Figure6(&buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "Comm&Wait") {
		t.Error("Figure6 missing breakdown header")
	}
}

func TestAblationsQuick(t *testing.T) {
	s := NewSuite(true)
	var buf bytes.Buffer
	if err := s.AblationShootdown(&buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "2LS poll") {
		t.Error("shootdown ablation missing column")
	}
	buf.Reset()
	if err := s.AblationLockFree(&buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "lock-based") {
		t.Error("lock-free ablation missing column")
	}
}

func TestShapeTwoLevelWinsOnSharingHeavyApps(t *testing.T) {
	// The paper's headline: 2L transfers less data than 1LD for the
	// sharing-heavy applications (Gauss shows ~4x) and never does
	// worse. Quick sizes are noisy, so only the direction is checked.
	s := NewSuite(true)
	for _, name := range []string{"Gauss", "Em3d", "Barnes"} {
		two, err := s.Run(name, Variant{Kind: core.TwoLevel}, FullCluster)
		if err != nil {
			t.Fatal(err)
		}
		one, err := s.Run(name, Variant{Kind: core.OneLevelDiff}, FullCluster)
		if err != nil {
			t.Fatal(err)
		}
		if two.DataBytes >= one.DataBytes {
			t.Errorf("%s: 2L data (%d) not below 1LD (%d)", name, two.DataBytes, one.DataBytes)
		}
		if two.Counts[stats.PageTransfers] >= one.Counts[stats.PageTransfers] {
			t.Errorf("%s: 2L transfers (%d) not below 1LD (%d)", name,
				two.Counts[stats.PageTransfers], one.Counts[stats.PageTransfers])
		}
	}
}

func TestKcount(t *testing.T) {
	if kcount(345) != "345" {
		t.Errorf("kcount(345) = %q", kcount(345))
	}
	if kcount(12345) != "12.35K" {
		t.Errorf("kcount(12345) = %q", kcount(12345))
	}
}
