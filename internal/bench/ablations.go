package bench

import (
	"io"

	"cashmere/internal/core"
	"cashmere/internal/stats"
)

// AblationShootdown regenerates Section 3.3.4: TLB shootdown versus
// two-way diffing. It compares 2L against 2LS with polling-based
// shootdown and 2LS with interrupt-based shootdown, at the full
// configuration. The paper finds 2LS(poll) matches 2L, while
// interrupt-based shootdown costs Water about 6%.
func (s *Suite) AblationShootdown(w io.Writer) error {
	variants := []Variant{
		{Kind: core.TwoLevel},
		{Kind: core.TwoLevelSD},
		{Kind: core.TwoLevelSD, Interrupts: true},
	}
	s.Prefetch(variants, []Topology{FullCluster})
	line(w, "Section 3.3.4: two-way diffing vs shootdown at %s", FullCluster.Label())
	line(w, "%-8s %12s %12s %12s %14s", "App", "2L (s)", "2LS poll (s)", "2LS intr (s)", "intr/2L")
	for _, name := range AppNames() {
		var secs [3]float64
		var shoot [3]int64
		failed := false
		for i, v := range variants {
			res, err := s.Run(name, v, FullCluster)
			if err != nil {
				failed = true
				continue
			}
			secs[i] = res.ExecSeconds()
			shoot[i] = res.Counts[stats.Shootdowns]
		}
		if failed {
			line(w, "%-8s %12s", name, "FAIL")
			continue
		}
		line(w, "%-8s %12.3f %12.3f %12.3f %13.1f%%  (shootdowns: %d)",
			name, secs[0], secs[1], secs[2], 100*(secs[2]/secs[0]-1), shoot[2])
	}
	return nil
}

// AblationLockFree regenerates Section 3.3.5: the impact of the
// lock-free protocol structures. 2L is compared against a variant whose
// global directory entries and write-notice lists sit behind global
// locks. The paper reports improvements of about 5% for Barnes and
// Em3d and 7% for Ilink from going lock-free.
func (s *Suite) AblationLockFree(w io.Writer) error {
	lockfree := Variant{Kind: core.TwoLevel}
	locked := Variant{Kind: core.TwoLevel, LockBased: true}
	s.Prefetch([]Variant{lockfree, locked}, []Topology{FullCluster})
	line(w, "Section 3.3.5: lock-free vs lock-based protocol structures at %s", FullCluster.Label())
	line(w, "%-8s %14s %14s %12s %12s", "App", "lock-free (s)", "lock-based (s)", "improvement", "dir updates")
	for _, name := range AppNames() {
		free, errFree := s.Run(name, lockfree, FullCluster)
		lk, errLk := s.Run(name, locked, FullCluster)
		if errFree != nil || errLk != nil {
			line(w, "%-8s %14s", name, "FAIL")
			continue
		}
		imp := 100 * (lk.ExecSeconds()/free.ExecSeconds() - 1)
		line(w, "%-8s %14.3f %14.3f %11.1f%% %12d",
			name, free.ExecSeconds(), lk.ExecSeconds(), imp,
			free.Counts[stats.DirectoryUpdates])
	}
	return nil
}
