package bench

import (
	"runtime"
	"sync/atomic"
	"testing"

	"cashmere/internal/apps"
	"cashmere/internal/core"
	"cashmere/internal/metrics"
)

// TestMetricsPreservesVirtualTime is the instrumented-equals-
// uninstrumented guarantee of the metrics layer, the counterpart of
// TestTracingPreservesVirtualTime: attaching a cluster to a live
// metrics registry — with a goroutine scraping it concurrently the
// whole time — must not change any virtual-time statistic, because
// scrapes are plain reads that charge nothing and take no protocol
// lock. Runs under the same conditions as TestVirtualTimeDeterminism
// (no -race: scrapes intentionally race the owner goroutines'
// plain-field counters, which is monitoring-grade by design but would
// be flagged by the detector; GOMAXPROCS pinned for stable
// tie-breaks).
func TestMetricsPreservesVirtualTime(t *testing.T) {
	if raceEnabled {
		t.Skip("mid-run scrapes are deliberate monitoring-grade data races; see comment")
	}
	defer runtime.GOMAXPROCS(runtime.GOMAXPROCS(1))
	cfg := core.Config{
		Nodes:        FullCluster.Nodes,
		ProcsPerNode: FullCluster.PPN,
		Protocol:     core.TwoLevel,
	}
	plain, err := apps.Run(freshApp(t, "SOR"), cfg)
	if err != nil {
		t.Fatal(err)
	}

	reg := metrics.NewRegistry()
	var detach func()
	cfg.Observer = func(c *core.Cluster) { detach = reg.Attach(c) }

	// Scrape continuously while the observed run executes.
	var stop atomic.Bool
	scraped := make(chan int)
	go func() {
		n := 0
		for !stop.Load() {
			reg.Snapshot()
			n++
		}
		scraped <- n
	}()

	observed, err := apps.Run(freshApp(t, "SOR"), cfg)
	stop.Store(true)
	n := <-scraped
	if err != nil {
		t.Fatal(err)
	}
	if detach == nil {
		t.Fatal("Observer was not invoked")
	}
	detach()
	if n == 0 {
		t.Fatal("scraper never ran")
	}

	compareResults(t, plain, observed)

	// After detach the registry's totals are exact.
	snap := reg.Snapshot()
	if snap.Total.Counts != observed.Counts || snap.Total.ExecNS != observed.ExecNS {
		t.Errorf("registry totals diverge from the run result:\nreg %+v\nrun %+v", snap.Total, observed.Total)
	}
	if snap.DoneRuns != 1 || snap.ActiveRuns != 0 {
		t.Errorf("run accounting: done=%d active=%d", snap.DoneRuns, snap.ActiveRuns)
	}
}

// TestSuiteSetMetrics checks the bench plumbing: every executed cell
// attaches to and detaches from the registry, and the /status snapshot
// reports the completed cells.
func TestSuiteSetMetrics(t *testing.T) {
	s := NewSuite(true)
	reg := metrics.NewRegistry()
	s.SetMetrics(reg)

	v := Variant{Kind: core.TwoLevel}
	if _, err := s.Run("SOR", v, Topology{Nodes: 2, PPN: 2}); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Run("LU", v, Topology{Nodes: 2, PPN: 2}); err != nil {
		t.Fatal(err)
	}

	snap := reg.Snapshot()
	if snap.DoneRuns != 2 || snap.ActiveRuns != 0 {
		t.Fatalf("registry run accounting: done=%d active=%d", snap.DoneRuns, snap.ActiveRuns)
	}
	if snap.Total.Counts[0] == 0 && snap.Total.DataBytes == 0 {
		t.Error("registry accumulated no statistics")
	}
	if len(snap.LinkBusy) != 2 {
		t.Errorf("link busy gauges: %v", snap.LinkBusy)
	}

	st := reg.Status()
	if st.Done != 2 || st.Running != 0 || st.Queued != 0 || st.Failed != 0 {
		t.Fatalf("status: %+v", st)
	}
	if len(st.Cells) != 2 {
		t.Fatalf("status cells: %+v", st.Cells)
	}
	for _, c := range st.Cells {
		if c.State != "done" {
			t.Errorf("cell %s state %q", c.Name, c.State)
		}
	}
}

// TestSuiteProfileInJSON checks that the traced cell's attribution
// profile lands in the JSON results, and only there.
func TestSuiteProfileInJSON(t *testing.T) {
	s := NewSuite(true)
	sink := NewJSONSink(true, 1)
	s.SetJSON(sink)
	s.SetTrace("SOR/2L/8:2", nil)

	v := Variant{Kind: core.TwoLevel}
	if _, err := s.Run("SOR", v, Topology{Nodes: 4, PPN: 2}); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Run("LU", v, Topology{Nodes: 4, PPN: 2}); err != nil {
		t.Fatal(err)
	}

	sink.mu.Lock()
	defer sink.mu.Unlock()
	var withProfile int
	for _, c := range sink.file.Cells {
		if c.Profile == nil {
			continue
		}
		withProfile++
		if c.App != "SOR" {
			t.Errorf("profile attached to %s/%s/%s", c.App, c.Variant, c.Topology)
		}
		if len(c.Profile.Pages) == 0 {
			t.Error("traced cell's profile has no pages")
		}
		for _, pg := range c.Profile.Pages {
			if pg.Pattern == "" {
				t.Errorf("page %d missing sharing pattern", pg.Page)
			}
		}
	}
	if withProfile != 1 {
		t.Errorf("cells with profile = %d, want 1", withProfile)
	}
}

// TestRunnerStatusStates drives a runner whose exec blocks, verifying
// the queued → running → done transitions /status reports.
func TestRunnerStatusStates(t *testing.T) {
	release := make(chan struct{})
	started := make(chan struct{}, 8)
	r := newRunner(1, func(k runKey) (core.Result, error) {
		started <- struct{}{}
		<-release
		return core.Result{}, nil
	})

	k1 := runKey{app: "A", v: Variant{}, topo: Topology{Nodes: 1, PPN: 1}}
	k2 := runKey{app: "B", v: Variant{}, topo: Topology{Nodes: 1, PPN: 1}}
	done := make(chan struct{}, 2)
	go func() { r.run(k1); done <- struct{}{} }()
	<-started // k1 holds the single worker slot
	go func() { r.run(k2); done <- struct{}{} }()

	// Wait until k2 is registered in flight (queued behind k1).
	for {
		st := r.status()
		if st.Running == 1 && st.Queued == 1 {
			if st.Cells[0].State != "running" || st.Cells[1].State != "queued" {
				t.Fatalf("cell ordering: %+v", st.Cells)
			}
			break
		}
	}

	close(release)
	<-done
	<-done
	st := r.status()
	if st.Done != 2 || st.Running != 0 || st.Queued != 0 {
		t.Fatalf("final status: %+v", st)
	}
}
