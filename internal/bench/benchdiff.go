package bench

import (
	"encoding/json"
	"fmt"
	"io"
	"math"
	"os"
	"regexp"
	"sort"
)

// Benchmark regression diffing: cell-by-cell comparison of two -json
// results files (see jsonout.go for the schema). Because exec_ns,
// data_bytes, and the counters are virtual-time quantities — functions
// of the program and the cost model, not of the host — a committed
// baseline stays comparable across machines; the tolerances absorb the
// residual host-order tie-breaks the determinism tests document.
// cashmere-benchdiff wraps this in a command, and CI runs it against
// BENCH_quick_baseline.json to gate performance regressions.

// DiffOptions configures a results comparison.
type DiffOptions struct {
	// RelTol is the relative tolerance for exec_ns and data_bytes
	// (default 0.05: a >5% move in either direction is reported).
	RelTol float64

	// CountTol is the relative tolerance for protocol event counters
	// (default: RelTol). Counters are noisier than virtual time on
	// lock-based apps, so it is usually set looser.
	CountTol float64

	// CountSlack is an absolute allowance added on top of CountTol for
	// counters: a counter difference within CountSlack events never
	// fires. It keeps tiny counters (3 vs 4 shootdowns) from tripping a
	// relative gate.
	CountSlack int64

	// CellPattern, when non-empty, restricts the comparison to cells
	// whose "app/variant/topology" label matches this regular
	// expression. CI uses it to gate only the deterministic
	// barrier-phased applications.
	CellPattern string
}

func (o *DiffOptions) fill() error {
	// NaN compares false against everything, so an unvalidated NaN
	// tolerance would make every "beyond tolerance" test fail and the
	// gate silently pass all regressions; infinities likewise disable
	// the gate. Both are flag-parsing accidents ("-tol NaN" parses), so
	// reject them instead of guessing.
	if math.IsNaN(o.RelTol) || math.IsInf(o.RelTol, 0) {
		return fmt.Errorf("benchdiff: tolerance %g is not a finite number", o.RelTol)
	}
	if o.RelTol == 0 {
		o.RelTol = 0.05
	}
	if o.RelTol < 0 {
		return fmt.Errorf("benchdiff: negative tolerance %g", o.RelTol)
	}
	if math.IsNaN(o.CountTol) || math.IsInf(o.CountTol, 0) {
		return fmt.Errorf("benchdiff: counter tolerance %g is not a finite number", o.CountTol)
	}
	if o.CountTol == 0 {
		o.CountTol = o.RelTol
	}
	if o.CountTol < 0 {
		return fmt.Errorf("benchdiff: negative counter tolerance %g", o.CountTol)
	}
	if o.CountSlack < 0 {
		return fmt.Errorf("benchdiff: negative count slack %d", o.CountSlack)
	}
	return nil
}

// DiffEntry is one reported difference.
type DiffEntry struct {
	Cell   string  // app/variant/topology label
	Metric string  // "exec_ns", "data_bytes", or a counter name
	Old    int64   // baseline value
	New    int64   // current value
	Delta  float64 // relative change, (new-old)/old
}

// DiffReport is the outcome of comparing two results files.
type DiffReport struct {
	// Regressions are differences beyond tolerance. Any entry here
	// makes OK() false.
	Regressions []DiffEntry

	// MissingCells are baseline cells absent from the current file;
	// NewCells the reverse. Missing cells are regressions (coverage
	// loss); new cells are informational.
	MissingCells []string
	NewCells     []string

	// ErrorCells are cells that failed in the current file but
	// succeeded in the baseline.
	ErrorCells []string

	// Compared is the number of cell pairs actually compared.
	Compared int
}

// OK reports whether the comparison passed: no metric beyond
// tolerance, no lost cells, no newly-failing cells.
func (r *DiffReport) OK() bool {
	return len(r.Regressions) == 0 && len(r.MissingCells) == 0 && len(r.ErrorCells) == 0
}

// LoadResults reads a -json results file.
func LoadResults(path string) (*ResultsFile, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var f ResultsFile
	if err := json.Unmarshal(data, &f); err != nil {
		return nil, fmt.Errorf("benchdiff: parsing %s: %w", path, err)
	}
	return &f, nil
}

// cellLabel renders a CellResult's identity label.
func cellLabel(c CellResult) string {
	return fmt.Sprintf("%s/%s/%s", c.App, c.Variant, c.Topology)
}

// DiffResults compares current against baseline cell by cell.
func DiffResults(baseline, current *ResultsFile, opts DiffOptions) (*DiffReport, error) {
	if err := opts.fill(); err != nil {
		return nil, err
	}
	var pat *regexp.Regexp
	if opts.CellPattern != "" {
		var err error
		pat, err = regexp.Compile(opts.CellPattern)
		if err != nil {
			return nil, fmt.Errorf("benchdiff: bad cell pattern: %w", err)
		}
	}
	match := func(label string) bool { return pat == nil || pat.MatchString(label) }

	cur := make(map[string]CellResult)
	for _, c := range current.Cells {
		cur[cellLabel(c)] = c
	}
	base := make(map[string]CellResult, len(baseline.Cells))
	for _, c := range baseline.Cells {
		base[cellLabel(c)] = c
	}

	rep := &DiffReport{}
	for _, c := range current.Cells {
		label := cellLabel(c)
		if _, ok := base[label]; !ok && match(label) {
			rep.NewCells = append(rep.NewCells, label)
		}
	}
	sort.Strings(rep.NewCells)

	labels := make([]string, 0, len(base))
	for label := range base {
		labels = append(labels, label)
	}
	sort.Strings(labels)

	for _, label := range labels {
		if !match(label) {
			continue
		}
		b := base[label]
		c, ok := cur[label]
		if !ok {
			rep.MissingCells = append(rep.MissingCells, label)
			continue
		}
		if b.Error != "" {
			continue // baseline itself failed: nothing to gate against
		}
		if c.Error != "" {
			rep.ErrorCells = append(rep.ErrorCells, fmt.Sprintf("%s: %s", label, c.Error))
			continue
		}
		rep.Compared++

		check := func(metric string, old, new int64, tol float64, slack int64) {
			d := new - old
			if d < 0 {
				d = -d
			}
			if d <= slack {
				return
			}
			// A zero baseline makes the relative change undefined (the
			// naive new/old-1 divides by zero): a metric appearing from
			// nothing is beyond any finite tolerance once it clears the
			// absolute slack, so record it as an infinite delta —
			// WriteText renders that case specially — rather than
			// letting a 0/0 NaN slip past every comparison below.
			var rel float64
			if old != 0 {
				rel = float64(new-old) / float64(old)
			} else {
				rel = math.Inf(1) // new != 0 here: d > slack >= 0
			}
			if math.Abs(rel) > tol {
				rep.Regressions = append(rep.Regressions, DiffEntry{
					Cell: label, Metric: metric, Old: old, New: new, Delta: rel,
				})
			}
		}

		check("exec_ns", b.ExecNS, c.ExecNS, opts.RelTol, 0)
		check("data_bytes", b.DataBytes, c.DataBytes, opts.RelTol, 0)

		names := make(map[string]bool)
		for n := range b.Counts {
			names[n] = true
		}
		for n := range c.Counts {
			names[n] = true
		}
		sorted := make([]string, 0, len(names))
		for n := range names {
			sorted = append(sorted, n)
		}
		sort.Strings(sorted)
		for _, n := range sorted {
			check(n, b.Counts[n], c.Counts[n], opts.CountTol, opts.CountSlack)
		}
	}
	return rep, nil
}

// WriteText renders the report as a readable table: regressions first
// (worst relative change at the top), then coverage changes.
func (r *DiffReport) WriteText(w io.Writer) {
	if r.OK() {
		fmt.Fprintf(w, "benchdiff: OK — %d cells compared, no regression beyond tolerance\n", r.Compared)
		if len(r.NewCells) > 0 {
			fmt.Fprintf(w, "%d new cells not in baseline (informational)\n", len(r.NewCells))
		}
		return
	}

	if len(r.Regressions) > 0 {
		regs := append([]DiffEntry(nil), r.Regressions...)
		sort.Slice(regs, func(i, j int) bool {
			if a, b := math.Abs(regs[i].Delta), math.Abs(regs[j].Delta); a != b {
				return a > b
			}
			if regs[i].Cell != regs[j].Cell {
				return regs[i].Cell < regs[j].Cell
			}
			return regs[i].Metric < regs[j].Metric
		})
		fmt.Fprintf(w, "benchdiff: %d metric(s) beyond tolerance across %d compared cells\n\n", len(regs), r.Compared)
		fmt.Fprintf(w, "%-24s %-18s %14s %14s %8s\n", "cell", "metric", "baseline", "current", "delta")
		for _, e := range regs {
			delta := fmt.Sprintf("%+7.1f%%", 100*e.Delta)
			if math.IsInf(e.Delta, 0) {
				delta = " from 0" // zero baseline: no finite relative change
			}
			fmt.Fprintf(w, "%-24s %-18s %14d %14d %s\n", e.Cell, e.Metric, e.Old, e.New, delta)
		}
	}
	for _, m := range r.MissingCells {
		fmt.Fprintf(w, "missing from current results: %s\n", m)
	}
	for _, e := range r.ErrorCells {
		fmt.Fprintf(w, "newly failing: %s\n", e)
	}
}
