package shmchan

import (
	"fmt"
	"sync"
	"testing"

	"cashmere/internal/costs"
	"cashmere/internal/transport"
	"cashmere/internal/transport/wire"
)

func TestRingFIFO(t *testing.T) {
	q := newRing()
	for i := 0; i < ringSize; i++ {
		if !q.push(frame{off: i}) {
			t.Fatalf("push %d failed on non-full ring", i)
		}
	}
	if q.push(frame{off: ringSize}) {
		t.Fatal("push succeeded on a full ring")
	}
	for i := 0; i < ringSize; i++ {
		f, ok := q.pop()
		if !ok {
			t.Fatalf("pop %d failed on non-empty ring", i)
		}
		if f.off != i {
			t.Fatalf("pop %d returned off %d; ring is not FIFO", i, f.off)
		}
	}
	if _, ok := q.pop(); ok {
		t.Fatal("pop succeeded on an empty ring")
	}
}

func TestRingWraparound(t *testing.T) {
	q := newRing()
	next := 0
	for round := 0; round < 5; round++ {
		for i := 0; i < ringSize/2+1; i++ {
			if !q.push(frame{off: next + i}) {
				t.Fatalf("round %d: push %d failed", round, i)
			}
		}
		for i := 0; i < ringSize/2+1; i++ {
			f, ok := q.pop()
			if !ok || f.off != next+i {
				t.Fatalf("round %d: pop got (%d,%v), want (%d,true)", round, f.off, ok, next+i)
			}
		}
		next += ringSize/2 + 1
	}
}

// TestRingConcurrentProducers drives the multi-producer path under the
// race detector: the consumer must see every frame exactly once, and
// each producer's frames in issue order.
func TestRingConcurrentProducers(t *testing.T) {
	const producers, perProducer = 4, 2000
	q := newRing()
	var wg sync.WaitGroup
	for p := 0; p < producers; p++ {
		wg.Add(1)
		go func(p int) {
			defer wg.Done()
			for i := 0; i < perProducer; i++ {
				for !q.push(frame{src: p, off: i}) {
					// Ring full: wait for the consumer.
				}
			}
		}(p)
	}
	done := make(chan struct{})
	go func() {
		defer close(done)
		next := make([]int, producers)
		seen := 0
		for seen < producers*perProducer {
			f, ok := q.pop()
			if !ok {
				continue
			}
			if f.off != next[f.src] {
				t.Errorf("producer %d: frame %d arrived, want %d (per-source order broken)", f.src, f.off, next[f.src])
				return
			}
			next[f.src]++
			seen++
		}
	}()
	wg.Wait()
	<-done
}

func TestDrainOnReadVisibility(t *testing.T) {
	n := New(3, costs.Default())
	r := n.NewRegion(4, false)
	// A write from node 0 is not yet applied at node 1 until it reads.
	if got := r.Write(0, 2, 42, 100); got != 100 {
		t.Fatalf("Write returned %d, want the caller's clock 100", got)
	}
	if got := r.Read(1, 2); got != 42 {
		t.Fatalf("node 1 read %d after drain, want 42", got)
	}
	if got := r.Read(2, 2); got != 42 {
		t.Fatalf("node 2 read %d after drain, want 42", got)
	}
	// Without loop-back the writer's own copy stays stale.
	if got := r.Read(0, 2); got != 0 {
		t.Fatalf("writer's copy shows %d without loop-back, want 0", got)
	}
}

func TestLoopback(t *testing.T) {
	n := New(2, costs.Default())
	r := n.NewRegion(2, true)
	r.Write(0, 1, 7, 0)
	if got := r.Read(0, 1); got != 7 {
		t.Fatalf("loop-back read %d, want 7", got)
	}
}

func TestWriteBlockAndBytesMoved(t *testing.T) {
	n := New(2, costs.Default())
	r := n.NewRegion(8, true)
	vals := []int64{1, 2, 3, 4}
	r.WriteBlock(0, 2, vals, 0)
	for i, want := range vals {
		if got := r.Read(1, 2+i); got != want {
			t.Fatalf("word %d = %d, want %d", 2+i, got, want)
		}
		if got := r.Read(0, 2+i); got != want {
			t.Fatalf("loop-back word %d = %d, want %d", 2+i, got, want)
		}
	}
	want := int64(len(vals)) * transport.WordBytes
	if got := n.BytesMoved(); got != want {
		t.Fatalf("BytesMoved = %d, want %d", got, want)
	}
	n.Transfer(0, 100, 5)
	if got := n.BytesMoved(); got != want+100 {
		t.Fatalf("BytesMoved after Transfer = %d, want %d", got, want+100)
	}
}

func TestPerSourceOrder(t *testing.T) {
	n := New(2, costs.Default())
	r := n.NewRegion(1, false)
	// Two writes from the same source to the same word: the later one
	// must win at the receiver.
	r.Write(0, 0, 1, 0)
	r.Write(0, 0, 2, 0)
	if got := r.Read(1, 0); got != 2 {
		t.Fatalf("read %d after two same-source writes, want the later value 2", got)
	}
}

// TestFullRingFallback forces the (0,1) ring full while node 1 never
// reads; the producer must drain node 1 itself and complete.
func TestFullRingFallback(t *testing.T) {
	n := New(2, costs.Default())
	r := n.NewRegion(1, false)
	for i := 0; i < 4*ringSize; i++ {
		r.Write(0, 0, int64(i), 0)
	}
	if got := r.Read(1, 0); got != 4*ringSize-1 {
		t.Fatalf("read %d, want %d (frames lost under full-ring fallback)", got, 4*ringSize-1)
	}
}

func TestRegionAtReceivers(t *testing.T) {
	n := New(3, costs.Default())
	r := n.NewRegionAt(2, true, 0, 2)
	if !r.Receives(0) || r.Receives(1) || !r.Receives(2) {
		t.Fatalf("receive map wrong: got %v %v %v, want true false true",
			r.Receives(0), r.Receives(1), r.Receives(2))
	}
	r.Write(0, 0, 9, 0)
	if got := r.Read(2, 0); got != 9 {
		t.Fatalf("receiver 2 read %d, want 9", got)
	}
	defer func() {
		if recover() == nil {
			t.Fatal("Read on a non-receiving node did not panic")
		}
	}()
	r.Read(1, 0)
}

func TestPoke(t *testing.T) {
	n := New(2, costs.Default())
	r := n.NewRegion(1, false)
	r.Poke(1, 0, 5)
	if got := r.Read(1, 0); got != 5 {
		t.Fatalf("read %d after Poke, want 5", got)
	}
	if got := r.Read(0, 0); got != 0 {
		t.Fatalf("Poke leaked to another node: read %d, want 0", got)
	}
}

func TestFabricContract(t *testing.T) {
	n := New(2, costs.Default())
	if n.Kind() != transport.SHM {
		t.Fatalf("Kind = %v, want SHM", n.Kind())
	}
	if n.Nodes() != 2 {
		t.Fatalf("Nodes = %d, want 2", n.Nodes())
	}
	if n.LinkBusyNS(0) != 0 {
		t.Fatal("LinkBusyNS must be 0 on the uncontended fabric")
	}
	if _, ok := n.HubBusyNS(); ok {
		t.Fatal("HubBusyNS must report no hub")
	}
	if got := n.Transfer(1, 64, 17); got != 17 {
		t.Fatalf("Transfer returned %d, want the caller's clock 17", got)
	}
	if err := n.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	r := n.NewRegion(1, false)
	if r.Fabric() != transport.Fabric(n) {
		t.Fatal("Region.Fabric does not return its network")
	}
}

// TestConcurrentWritersReaders stresses the region path under -race:
// every node writes its own word while every node reads all words.
func TestConcurrentWritersReaders(t *testing.T) {
	const nodes, iters = 4, 500
	n := New(nodes, costs.Default())
	r := n.NewRegion(nodes, true)
	var wg sync.WaitGroup
	for node := 0; node < nodes; node++ {
		wg.Add(1)
		go func(node int) {
			defer wg.Done()
			for i := 1; i <= iters; i++ {
				r.Write(node, node, int64(i), 0)
				for w := 0; w < nodes; w++ {
					if v := r.Read(node, w); v < 0 || v > iters {
						t.Errorf("node %d read impossible value %d", node, v)
						return
					}
				}
			}
		}(node)
	}
	wg.Wait()
	for w := 0; w < nodes; w++ {
		for node := 0; node < nodes; node++ {
			if got := r.Read(node, w); got != iters {
				t.Fatalf("node %d sees word %d = %d after quiescence, want %d", node, w, got, iters)
			}
		}
	}
}

func TestMeshDelivery(t *testing.T) {
	m := NewMesh(3)
	type rcv struct {
		from int
		f    wire.Frame
	}
	got := make([]chan rcv, 3)
	for i := 0; i < 3; i++ {
		got[i] = make(chan rcv, 16)
		e, ch := m.Endpoint(i), got[i]
		if e.Self() != i {
			t.Fatalf("Self = %d, want %d", e.Self(), i)
		}
		if e.Peers() != 3 {
			t.Fatalf("Peers = %d, want 3", e.Peers())
		}
		e.SetHandler(func(from int, f wire.Frame) { ch <- rcv{from, f} })
	}
	if err := m.Endpoint(0).Send(1, wire.Frame{Type: wire.TBarArrive, A: 7}); err != nil {
		t.Fatal(err)
	}
	if err := m.Endpoint(2).Send(1, wire.Frame{Type: wire.TFlagSet, A: 8}); err != nil {
		t.Fatal(err)
	}
	seen := map[int]int64{}
	for i := 0; i < 2; i++ {
		r := <-got[1]
		seen[r.from] = r.f.A
	}
	if seen[0] != 7 || seen[2] != 8 {
		t.Fatalf("endpoint 1 received %v, want {0:7, 2:8}", seen)
	}
	// Self-send loops through the local handler.
	if err := m.Endpoint(1).Send(1, wire.Frame{Type: wire.TBye, A: 9}); err != nil {
		t.Fatal(err)
	}
	if r := <-got[1]; r.from != 1 || r.f.A != 9 {
		t.Fatalf("self-send delivered (%d, %d), want (1, 9)", r.from, r.f.A)
	}
	for i := 0; i < 3; i++ {
		if err := m.Endpoint(i).Close(); err != nil {
			t.Fatal(err)
		}
	}
}

func TestMeshOrderPerSender(t *testing.T) {
	const frames = 200
	m := NewMesh(2)
	seq := make(chan int64, frames)
	m.Endpoint(1).SetHandler(func(from int, f wire.Frame) { seq <- f.A })
	m.Endpoint(0).SetHandler(func(from int, f wire.Frame) {})
	for i := 0; i < frames; i++ {
		if err := m.Endpoint(0).Send(1, wire.Frame{Type: wire.TDiff, A: int64(i)}); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < frames; i++ {
		if got := <-seq; got != int64(i) {
			t.Fatalf("frame %d delivered out of order (got %d)", i, got)
		}
	}
	m.Endpoint(0).Close()
	m.Endpoint(1).Close()
}

func TestMeshCloseSemantics(t *testing.T) {
	m := NewMesh(2)
	var mu sync.Mutex
	count := 0
	m.Endpoint(1).SetHandler(func(from int, f wire.Frame) { mu.Lock(); count++; mu.Unlock() })
	m.Endpoint(0).SetHandler(func(from int, f wire.Frame) {})
	for i := 0; i < 10; i++ {
		if err := m.Endpoint(0).Send(1, wire.Frame{Type: wire.TPageReq}); err != nil {
			t.Fatal(err)
		}
	}
	// Close drains already-queued frames before returning, and is
	// idempotent.
	if err := m.Endpoint(1).Close(); err != nil {
		t.Fatal(err)
	}
	if err := m.Endpoint(1).Close(); err != nil {
		t.Fatal(err)
	}
	mu.Lock()
	if count != 10 {
		mu.Unlock()
		t.Fatalf("handler ran %d times before Close returned, want 10", count)
	}
	mu.Unlock()
	if err := m.Endpoint(0).Send(1, wire.Frame{Type: wire.TPageReq}); err == nil {
		t.Fatal("Send to a closed endpoint succeeded")
	}
	if err := m.Endpoint(1).Send(0, wire.Frame{}); err != nil {
		t.Fatalf("send from a closed endpoint to an open one: %v", err)
	}
	m.Endpoint(0).Close()
}

func TestMeshInvalidDestination(t *testing.T) {
	m := NewMesh(1)
	m.Endpoint(0).SetHandler(func(int, wire.Frame) {})
	defer m.Endpoint(0).Close()
	if err := m.Endpoint(0).Send(3, wire.Frame{}); err == nil {
		t.Fatal("Send to an out-of-range endpoint succeeded")
	}
}

func TestInterfaceSatisfaction(t *testing.T) {
	var _ transport.Fabric = (*Network)(nil)
	var _ transport.Region = (*Region)(nil)
	var _ transport.Messenger = (*Endpoint)(nil)
}

func ExampleNetwork() {
	n := New(2, costs.Default())
	r := n.NewRegion(1, true)
	r.Write(0, 0, 41, 0)
	fmt.Println(r.Read(1, 0))
	// Output: 41
}
