// Package shmchan is the in-process shared-memory transport backend:
// cluster nodes are goroutines in one address space exchanging region
// writes as frames through lock-free rings. It implements the same
// fabric contract as the Memory Channel simulator (transport/simchan)
// but with no virtual-time coupling: writes and transfers return the
// caller's clock unchanged, and there is no bandwidth contention
// modelling, so LinkBusyNS is always zero and there is no hub.
//
// # Visibility
//
// A remote write enqueues one frame per receiving node into the
// (source, destination) ring; the receiving node applies every pending
// frame at its next Region.Read (drain-on-read). This gives the same
// guarantee the protocols rely on from the simulator backend — a value
// written before a synchronization release is visible to any read
// after the matching acquire — while keeping the write path free of
// locks. Frames from one source are applied in issue order (the ring
// is FIFO); frames from different sources are unordered relative to
// each other, exactly the Memory Channel's per-source ordering.
//
// # Messenger
//
// NewMesh builds the explicit point-to-point messaging surface
// (transport.Messenger) over the same process: one endpoint per node,
// a dispatcher goroutine per node invoking the installed handler in
// arrival order. The multi-process DSM runtime (internal/mprun) uses
// it to exercise the full wire-frame protocol under the race detector
// without spawning OS processes.
package shmchan

import (
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"

	"cashmere/internal/costs"
	"cashmere/internal/trace"
	"cashmere/internal/transport"
	"cashmere/internal/transport/wire"
)

// ringSize is the per-(source,destination) frame ring capacity. It
// must be a power of two. A full ring never drops or blocks: the
// producer drains the destination itself and retries.
const ringSize = 256

// frame is one pending region update.
type frame struct {
	src int // issuing node, selecting the (src,dst) ring
	r   *Region
	off int
	v   int64   // single-word payload when val is nil
	val []int64 // block payload (shared read-only across destinations)
}

// slot is one ring entry with its sequence word (Vyukov bounded queue).
type slot struct {
	seq atomic.Uint64
	f   frame
}

// ring is a bounded multi-producer queue; the consumer side is
// serialized by the destination node's drain lock.
type ring struct {
	slots [ringSize]slot
	enq   atomic.Uint64
	deq   atomic.Uint64
}

func newRing() *ring {
	r := &ring{}
	for i := range r.slots {
		r.slots[i].seq.Store(uint64(i))
	}
	return r
}

// push enqueues f, reporting false when the ring is full.
func (q *ring) push(f frame) bool {
	for {
		pos := q.enq.Load()
		s := &q.slots[pos&(ringSize-1)]
		seq := s.seq.Load()
		switch {
		case seq == pos:
			if q.enq.CompareAndSwap(pos, pos+1) {
				s.f = f
				s.seq.Store(pos + 1)
				return true
			}
		case seq < pos:
			return false // full
		}
		// Another producer moved enq; retry.
	}
}

// pop dequeues the oldest frame. Only the holder of the destination's
// drain lock may call it, so there is a single consumer at a time.
func (q *ring) pop() (frame, bool) {
	for {
		pos := q.deq.Load()
		s := &q.slots[pos&(ringSize-1)]
		seq := s.seq.Load()
		switch {
		case seq == pos+1:
			if q.deq.CompareAndSwap(pos, pos+1) {
				f := s.f
				s.f = frame{}
				s.seq.Store(pos + ringSize)
				return f, true
			}
		case seq <= pos:
			return frame{}, false // empty
		}
	}
}

// Network is an in-process fabric connecting a fixed set of
// goroutine-hosted nodes.
type Network struct {
	nodes int
	model costs.Model
	moved atomic.Int64
	tr    *trace.Tracer

	// rings[src][dst] carries src's pending writes toward dst; drain[dst]
	// serializes the application of dst's incoming frames.
	rings [][]*ring
	drain []sync.Mutex
}

// New creates an in-process fabric for nodes nodes. The timing model is
// carried only so protocol layers can read latency constants; nothing
// is charged against it.
func New(nodes int, model costs.Model) *Network {
	if nodes <= 0 {
		panic("shmchan: network needs at least one node")
	}
	n := &Network{nodes: nodes, model: model, drain: make([]sync.Mutex, nodes)}
	n.rings = make([][]*ring, nodes)
	for src := range n.rings {
		n.rings[src] = make([]*ring, nodes)
		for dst := range n.rings[src] {
			n.rings[src][dst] = newRing()
		}
	}
	return n
}

// Kind identifies the backend as the in-process shared-memory fabric.
func (n *Network) Kind() transport.Kind { return transport.SHM }

// Close is a no-op: the fabric owns no goroutines or descriptors.
func (n *Network) Close() error { return nil }

// Nodes returns the number of nodes on the fabric.
func (n *Network) Nodes() int { return n.nodes }

// Model returns the carried timing model.
func (n *Network) Model() costs.Model { return n.model }

// BytesMoved returns the total payload bytes transferred so far.
func (n *Network) BytesMoved() int64 { return n.moved.Load() }

// LinkBusyNS is always zero: the fabric has no contention model.
func (n *Network) LinkBusyNS(i int) int64 { return 0 }

// HubBusyNS reports no hub.
func (n *Network) HubBusyNS() (int64, bool) { return 0, false }

// SetTracer attaches a structured event tracer (nil disables tracing).
// Set it before the fabric carries traffic.
func (n *Network) SetTracer(t *trace.Tracer) { n.tr = t }

// Tracer returns the attached tracer, or nil.
func (n *Network) Tracer() *trace.Tracer { return n.tr }

// Transfer accounts a bulk transfer and returns now unchanged: the
// fabric charges no virtual time.
func (n *Network) Transfer(src int, nbytes int64, now int64) int64 {
	if src < 0 || src >= n.nodes {
		panic(fmt.Sprintf("shmchan: transfer from invalid node %d", src))
	}
	if nbytes > 0 {
		n.moved.Add(nbytes)
	}
	return now
}

// drainNode applies every frame pending toward node, in per-source
// order.
func (n *Network) drainNode(node int) {
	n.drain[node].Lock()
	n.drainLocked(node)
	n.drain[node].Unlock()
}

func (n *Network) drainLocked(node int) {
	for src := 0; src < n.nodes; src++ {
		q := n.rings[src][node]
		for {
			f, ok := q.pop()
			if !ok {
				break
			}
			f.apply(node)
		}
	}
}

func (f *frame) apply(node int) {
	b := f.r.recv[node]
	if f.val == nil {
		atomic.StoreInt64(&b[f.off], f.v)
		return
	}
	for i, v := range f.val {
		atomic.StoreInt64(&b[f.off+i], v)
	}
}

// post enqueues f toward dst, draining dst ourselves when its ring is
// full so a slow reader never blocks a writer indefinitely.
func (n *Network) post(dst int, f frame) {
	for !n.rings[f.src][dst].push(f) {
		n.drainNode(dst)
		runtime.Gosched()
	}
}

// Region is a replicated remote-write region on the in-process fabric.
type Region struct {
	net      *Network
	words    int
	loopback bool
	recv     [][]int64
}

// NewRegion creates a region of the given word length received by every
// node.
func (n *Network) NewRegion(words int, loopback bool) transport.Region {
	recv := make([][]int64, n.nodes)
	for i := range recv {
		recv[i] = make([]int64, words)
	}
	return &Region{net: n, words: words, loopback: loopback, recv: recv}
}

// NewRegionAt creates a region received only by the given nodes.
func (n *Network) NewRegionAt(words int, loopback bool, receivers ...int) transport.Region {
	recv := make([][]int64, n.nodes)
	for _, r := range receivers {
		if r < 0 || r >= n.nodes {
			panic(fmt.Sprintf("shmchan: invalid receiver node %d", r))
		}
		recv[r] = make([]int64, words)
	}
	return &Region{net: n, words: words, loopback: loopback, recv: recv}
}

// Words returns the region's length in words.
func (r *Region) Words() int { return r.words }

// Fabric returns the fabric the region is mapped on.
func (r *Region) Fabric() transport.Fabric { return r.net }

// Receives reports whether node maps the region for receive.
func (r *Region) Receives(node int) bool {
	return node >= 0 && node < len(r.recv) && r.recv[node] != nil
}

// Read applies node's pending incoming frames and returns word off of
// its receive copy.
func (r *Region) Read(node, off int) int64 {
	b := r.recv[node]
	if b == nil {
		panic(fmt.Sprintf("shmchan: node %d does not receive this region", node))
	}
	r.net.drainNode(node)
	return atomic.LoadInt64(&b[off])
}

// Write posts a remote write of v to word off from node from. The
// writer's own copy is updated immediately under loop-back; remote
// copies see the value at their next Read. Returns now unchanged.
func (r *Region) Write(from, off int, v int64, now int64) int64 {
	for node, b := range r.recv {
		if b == nil {
			continue
		}
		if node == from {
			if r.loopback {
				atomic.StoreInt64(&b[off], v)
			}
			continue
		}
		r.net.post(node, frame{src: from, r: r, off: off, v: v})
	}
	r.net.moved.Add(transport.WordBytes)
	return now
}

// WriteBlock posts an ordered burst of remote writes of vals starting
// at word off. The payload is copied once and shared read-only across
// destinations. Returns now unchanged.
func (r *Region) WriteBlock(from, off int, vals []int64, now int64) int64 {
	var shared []int64
	for node, b := range r.recv {
		if b == nil {
			continue
		}
		if node == from {
			if r.loopback {
				for i, v := range vals {
					atomic.StoreInt64(&b[off+i], v)
				}
			}
			continue
		}
		if shared == nil {
			shared = append([]int64(nil), vals...)
		}
		r.net.post(node, frame{src: from, r: r, off: off, val: shared})
	}
	r.net.moved.Add(int64(len(vals)) * transport.WordBytes)
	return now
}

// Poke stores v directly into node's local receive copy.
func (r *Region) Poke(node, off int, v int64) {
	b := r.recv[node]
	if b == nil {
		panic(fmt.Sprintf("shmchan: node %d does not receive this region", node))
	}
	atomic.StoreInt64(&b[off], v)
}

// Mesh is an in-process messenger mesh: one endpoint per node,
// exchanging wire frames through per-node FIFO queues with a
// dispatcher goroutine per endpoint.
type Mesh struct {
	eps []*Endpoint
}

// NewMesh builds a messenger mesh of n endpoints. Install each
// endpoint's handler with SetHandler before any peer sends.
func NewMesh(n int) *Mesh {
	if n <= 0 {
		panic("shmchan: mesh needs at least one endpoint")
	}
	m := &Mesh{eps: make([]*Endpoint, n)}
	for i := range m.eps {
		e := &Endpoint{mesh: m, self: i}
		e.cond = sync.NewCond(&e.mu)
		m.eps[i] = e
	}
	return m
}

// Endpoint returns node i's messenger.
func (m *Mesh) Endpoint(i int) *Endpoint { return m.eps[i] }

// queued is one frame in flight with its sender.
type queued struct {
	from int
	f    wire.Frame
}

// Endpoint is one node's side of the mesh.
type Endpoint struct {
	mesh *Mesh
	self int

	mu     sync.Mutex
	cond   *sync.Cond
	queue  []queued
	closed bool

	stats   *transport.FrameStats
	started bool
	handler func(from int, f wire.Frame)
	done    chan struct{}
}

// SetStats attaches a frame-statistics collector recording every frame
// this endpoint sends and receives (nil detaches). Call it before the
// mesh carries protocol traffic.
func (e *Endpoint) SetStats(s *transport.FrameStats) {
	e.stats = s
}

// Self returns the local node's rank.
func (e *Endpoint) Self() int { return e.self }

// Peers returns the number of endpoints in the mesh.
func (e *Endpoint) Peers() int { return len(e.mesh.eps) }

// Send delivers f to endpoint to in arrival order; sending to self
// loops the frame through the local handler like any other.
func (e *Endpoint) Send(to int, f wire.Frame) error {
	if to < 0 || to >= len(e.mesh.eps) {
		return fmt.Errorf("shmchan: send to invalid endpoint %d", to)
	}
	if e.stats != nil {
		e.stats.RecordSend(to, f)
	}
	dst := e.mesh.eps[to]
	dst.mu.Lock()
	if dst.closed {
		dst.mu.Unlock()
		return fmt.Errorf("shmchan: endpoint %d is closed", to)
	}
	dst.queue = append(dst.queue, queued{from: e.self, f: f})
	dst.mu.Unlock()
	dst.cond.Signal()
	return nil
}

// SetHandler installs the frame handler and starts the endpoint's
// dispatcher. It must be called exactly once, before any peer sends.
func (e *Endpoint) SetHandler(h func(from int, f wire.Frame)) {
	e.mu.Lock()
	if e.started {
		e.mu.Unlock()
		panic("shmchan: SetHandler called twice")
	}
	e.handler = h
	e.started = true
	e.done = make(chan struct{})
	e.mu.Unlock()
	go e.dispatch()
}

func (e *Endpoint) dispatch() {
	defer close(e.done)
	for {
		e.mu.Lock()
		for len(e.queue) == 0 && !e.closed {
			e.cond.Wait()
		}
		if len(e.queue) == 0 && e.closed {
			e.mu.Unlock()
			return
		}
		batch := e.queue
		e.queue = nil
		e.mu.Unlock()
		for _, q := range batch {
			if e.stats != nil {
				e.stats.RecordRecv(q.from, q.f)
			}
			e.handler(q.from, q.f)
		}
	}
}

// Close shuts the endpoint down after delivering already-queued frames.
// Close is idempotent.
func (e *Endpoint) Close() error {
	e.mu.Lock()
	if e.closed {
		started := e.started
		e.mu.Unlock()
		if started {
			<-e.done
		}
		return nil
	}
	e.closed = true
	started := e.started
	e.mu.Unlock()
	e.cond.Broadcast()
	if started {
		<-e.done
	}
	return nil
}
