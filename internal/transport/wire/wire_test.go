package wire

import (
	"bytes"
	"encoding/hex"
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

var updateGolden = flag.Bool("update", false, "rewrite testdata golden fixtures")

// goldenFrames is the fixture set: one frame of every shape the
// protocol produces. Changing the byte layout of any of them without
// bumping Version fails TestGoldenFixtures.
func goldenFrames() []Frame {
	return []Frame{
		Hello(3),
		{Type: TDiff, A: 17, B: 9001, Offs: []int32{0, 2, 100, 3}, Words: []int64{1, 2, 3, 4, 5}},
		{Type: TWriteNotice, A: 17, B: 9002, Pages: []int32{18, 19}},
		{Type: TNoticeAck, A: 17, B: 9002},
		{Type: TDirUpdate, A: 4, B: 1, C: 1},
		{Type: TPageReq, A: 44},
		{Type: TPageReply, A: 44, Words: []int64{-1, 0, 1, 1 << 62}},
		{Type: TFlushAck, A: 17, B: 9001},
		{Type: TBarArrive, A: 2, B: 7},
		{Type: TBarRelease, A: 2},
		{Type: TLockReq, A: 1, B: 6},
		{Type: TLockGrant, A: 1, B: 6},
		{Type: TLockRelease, A: 1, B: 6},
		{Type: TFlagSet, A: 12},
		{Type: TRegionWrite, A: 2, B: 640, Words: []int64{42}},
		{Type: TBye},
	}
}

// TestGoldenFixtures pins the exact encoded bytes of every frame shape
// against testdata/frames_v1.hex. A diff means the wire layout changed:
// either revert, or bump Version and regenerate with -update.
func TestGoldenFixtures(t *testing.T) {
	var b strings.Builder
	for _, f := range goldenFrames() {
		enc := Append(nil, f)
		fmt.Fprintf(&b, "%-12s %s\n", f.Type, hex.EncodeToString(enc))
	}
	path := filepath.Join("testdata", fmt.Sprintf("frames_v%d.hex", Version))
	if *updateGolden {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, []byte(b.String()), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("golden fixture missing (regenerate with go test -run Golden -update): %v", err)
	}
	if got := b.String(); got != string(want) {
		t.Errorf("encoded bytes differ from %s — the wire layout changed without a Version bump\ngot:\n%swant:\n%s",
			path, got, want)
	}
}

// TestGoldenFixturesParse decodes the committed hex back and checks the
// decoder agrees with the encoder on every fixture.
func TestGoldenFixturesParse(t *testing.T) {
	data, err := os.ReadFile(filepath.Join("testdata", fmt.Sprintf("frames_v%d.hex", Version)))
	if err != nil {
		t.Fatal(err)
	}
	frames := goldenFrames()
	lines := strings.Split(strings.TrimSpace(string(data)), "\n")
	if len(lines) != len(frames) {
		t.Fatalf("fixture has %d lines, want %d", len(lines), len(frames))
	}
	for i, line := range lines {
		raw, err := hex.DecodeString(strings.Fields(line)[1])
		if err != nil {
			t.Fatalf("line %d: %v", i, err)
		}
		f, rest, err := Parse(raw)
		if err != nil {
			t.Fatalf("line %d (%v): %v", i, frames[i].Type, err)
		}
		if len(rest) != 0 {
			t.Fatalf("line %d: %d trailing bytes", i, len(rest))
		}
		if !Equal(f, frames[i]) {
			t.Errorf("line %d: decoded %+v, want %+v", i, f, frames[i])
		}
	}
}

func TestRoundTripAll(t *testing.T) {
	var stream bytes.Buffer
	for _, f := range goldenFrames() {
		if err := WriteFrame(&stream, f); err != nil {
			t.Fatal(err)
		}
		if got := EncodedLen(f); got != len(Append(nil, f)) {
			t.Errorf("%v: EncodedLen %d != encoded size %d", f.Type, got, len(Append(nil, f)))
		}
	}
	for _, want := range goldenFrames() {
		f, err := ReadFrame(&stream)
		if err != nil {
			t.Fatal(err)
		}
		if !Equal(f, want) {
			t.Errorf("round trip: got %+v, want %+v", f, want)
		}
	}
	if _, err := ReadFrame(&stream); err != io.EOF {
		t.Fatalf("drained stream returned %v, want io.EOF", err)
	}
}

func TestCheckHello(t *testing.T) {
	rank, err := CheckHello(Hello(5))
	if err != nil || rank != 5 {
		t.Fatalf("CheckHello(Hello(5)) = (%d, %v), want (5, nil)", rank, err)
	}
	cases := []struct {
		name string
		f    Frame
		want string
	}{
		{"not hello", Frame{Type: TDiff, A: Magic, B: Version}, "expected hello"},
		{"bad magic", Frame{Type: THello, A: 0x12345678, B: Version}, "bad magic"},
		{"version ahead", Frame{Type: THello, A: Magic, B: Version + 1}, "version mismatch"},
		{"version zero", Frame{Type: THello, A: Magic, B: 0}, "version mismatch"},
	}
	for _, tc := range cases {
		if _, err := CheckHello(tc.f); err == nil || !strings.Contains(err.Error(), tc.want) {
			t.Errorf("%s: err = %v, want containing %q", tc.name, err, tc.want)
		}
	}
}

// TestVersionMismatchOverStream checks the rejection end to end: a
// v(N+1) hello travels the stream intact and is refused by CheckHello,
// not by the frame decoder (the framing is version-independent).
func TestVersionMismatchOverStream(t *testing.T) {
	var stream bytes.Buffer
	future := Hello(2)
	future.B = Version + 1
	if err := WriteFrame(&stream, future); err != nil {
		t.Fatal(err)
	}
	f, err := ReadFrame(&stream)
	if err != nil {
		t.Fatalf("framing must be version-independent, got %v", err)
	}
	if _, err := CheckHello(f); err == nil {
		t.Fatal("CheckHello accepted a future-version hello")
	}
}

func TestParseMalformed(t *testing.T) {
	valid := Append(nil, Hello(0))
	cases := []struct {
		name string
		b    []byte
		eof  bool // expect io.ErrUnexpectedEOF (need more bytes)
	}{
		{"empty", nil, true},
		{"short prefix", valid[:3], true},
		{"truncated body", valid[:len(valid)-1], true},
		{"oversize length", []byte{0xff, 0xff, 0xff, 0xff}, false},
		{"undersize length", []byte{1, 0, 0, 0, 0}, false},
		{"zero type", func() []byte {
			b := append([]byte(nil), valid...)
			b[4] = 0
			return b
		}(), false},
		{"count/length mismatch", func() []byte {
			b := append([]byte(nil), valid...)
			b[4+25] = 7 // claim 7 pages the payload does not carry (nPages is at body[25:])
			return b
		}(), false},
	}
	for _, tc := range cases {
		_, rest, err := Parse(tc.b)
		if err == nil {
			t.Errorf("%s: Parse accepted malformed input", tc.name)
			continue
		}
		if tc.eof != (err == io.ErrUnexpectedEOF) {
			t.Errorf("%s: err = %v, want ErrUnexpectedEOF=%v", tc.name, err, tc.eof)
		}
		if len(rest) != len(tc.b) {
			t.Errorf("%s: rest consumed %d bytes on error", tc.name, len(tc.b)-len(rest))
		}
	}
}

func TestParseLeavesRemainder(t *testing.T) {
	b := Append(nil, Hello(1))
	b = Append(b, Frame{Type: TBye})
	f1, rest, err := Parse(b)
	if err != nil || f1.Type != THello {
		t.Fatalf("first frame: (%v, %v)", f1.Type, err)
	}
	f2, rest, err := Parse(rest)
	if err != nil || f2.Type != TBye || len(rest) != 0 {
		t.Fatalf("second frame: (%v, %v), %d left", f2.Type, err, len(rest))
	}
}

func TestReadFrameRejectsOversize(t *testing.T) {
	var b [4]byte
	b[0], b[1], b[2], b[3] = 0xff, 0xff, 0xff, 0x7f
	if _, err := ReadFrame(bytes.NewReader(b[:])); err == nil || err == io.ErrUnexpectedEOF {
		t.Fatalf("oversize frame returned %v, want a limit error before allocating", err)
	}
}

func TestTypeStrings(t *testing.T) {
	for ty := THello; ty <= TBye; ty++ {
		if s := ty.String(); strings.HasPrefix(s, "Type(") {
			t.Errorf("type %d has no wire name", ty)
		}
	}
	if s := Type(0).String(); s != "Type(0)" {
		t.Errorf("reserved type 0 stringifies as %q", s)
	}
	if s := Type(200).String(); s != "Type(200)" {
		t.Errorf("unknown type stringifies as %q", s)
	}
}

// FuzzParse feeds arbitrary bytes to the decoder (it must never panic
// or over-read) and re-encodes whatever decodes cleanly, which must
// round-trip bit-identically.
func FuzzParse(f *testing.F) {
	for _, fr := range goldenFrames() {
		f.Add(Append(nil, fr))
	}
	f.Add([]byte{})
	f.Add([]byte{0xff, 0xff, 0xff, 0xff})
	f.Add([]byte{1, 0, 0, 0, 0})
	f.Fuzz(func(t *testing.T, b []byte) {
		fr, rest, err := Parse(b)
		if err != nil {
			if len(rest) != len(b) {
				t.Fatalf("Parse consumed %d bytes on error", len(b)-len(rest))
			}
			return
		}
		consumed := b[:len(b)-len(rest)]
		re := Append(nil, fr)
		if !bytes.Equal(re, consumed) {
			t.Fatalf("re-encode differs:\n in: %x\nout: %x", consumed, re)
		}
		back, rest2, err := Parse(re)
		if err != nil || len(rest2) != 0 || !Equal(back, fr) {
			t.Fatalf("re-parse: (%+v, %d, %v)", back, len(rest2), err)
		}
	})
}

// FuzzRoundTrip builds frames from fuzzed fields and checks
// encode→stream→decode identity.
func FuzzRoundTrip(f *testing.F) {
	f.Add(uint8(TDiff), int64(17), int64(9001), int64(0), []byte{0, 0, 0, 1}, 3)
	f.Add(uint8(TPageReply), int64(44), int64(0), int64(0), []byte{}, 1024)
	f.Add(uint8(TBye), int64(0), int64(0), int64(0), []byte{}, 0)
	f.Fuzz(func(t *testing.T, ty uint8, a, bb, c int64, raw []byte, nWords int) {
		if ty == 0 {
			t.Skip("type 0 is reserved")
		}
		if nWords < 0 || nWords > 4096 || len(raw) > 4096 {
			t.Skip("outside the size envelope")
		}
		fr := Frame{Type: Type(ty), A: a, B: bb, C: c}
		for i := 0; i+3 < len(raw); i += 4 {
			v := int32(raw[i]) | int32(raw[i+1])<<8 | int32(raw[i+2])<<16 | int32(raw[i+3])<<24
			if i%8 == 0 {
				fr.Pages = append(fr.Pages, v)
			} else {
				fr.Offs = append(fr.Offs, v)
			}
		}
		for i := 0; i < nWords; i++ {
			fr.Words = append(fr.Words, int64(i)*0x9e3779b9)
		}
		var stream bytes.Buffer
		if err := WriteFrame(&stream, fr); err != nil {
			t.Fatal(err)
		}
		got, err := ReadFrame(&stream)
		if err != nil {
			t.Fatal(err)
		}
		if !Equal(got, fr) {
			t.Fatalf("round trip: got %+v, want %+v", got, fr)
		}
	})
}
