// Package wire defines the versioned, length-prefixed frame format the
// socket transport (transport/tcpchan) speaks: diffs, write notices,
// directory updates, page fetches, and synchronization traffic, each a
// self-delimiting frame that can be written onto any ordered byte
// stream. The in-process shm backend passes the same Frame structs by
// value, so the multi-process runtime (internal/mprun) is agnostic to
// which carries them.
//
// # Frame layout
//
// Every frame is
//
//	u32  payload length (little-endian; excludes these four bytes)
//	u8   frame type
//	i64  A, B, C        (three scalar arguments, meaning per type)
//	u32  nPages         (length of the page-number list)
//	u32  nOffs          (length of the offset/run list)
//	u32  nWords         (length of the 64-bit payload)
//	i32  pages[nPages]
//	i32  offs[nOffs]
//	i64  words[nWords]
//
// all little-endian. The scalar fields carry page numbers, lock ids,
// barrier generations, and ack tokens; the three arrays carry write
// notice page lists, diff run headers (paired start/count offsets),
// and bulk word payloads. A frame whose declared lengths disagree
// with its payload length is rejected, as is any frame longer than
// MaxFrameBytes — a stream decoder can never be driven into an
// unbounded allocation by a corrupt or hostile peer.
//
// # Versioning
//
// The first frame on every connection must be a Hello carrying the
// magic number and format version (and the sender's rank in C). A
// decoder checks the pair with CheckHello before trusting anything
// else on the stream; bumping Version is the mechanism for breaking
// format changes, and the golden fixtures under testdata pin the byte
// layout so an accidental change fails loudly in tests.
package wire

import (
	"encoding/binary"
	"fmt"
	"io"
)

// Magic identifies a Cashmere wire stream ("CSHM" little-endian).
const Magic = 0x4d485343

// Version is the current wire-format version. Bump on any change to
// the frame layout or to the meaning of an existing frame type.
const Version = 1

// MaxFrameBytes bounds a single frame's payload. The largest
// legitimate frame is a full-page reply (8 Kbyte page = 1024 words)
// plus headers; the bound leaves room for larger configured pages
// while keeping a corrupt length field from allocating gigabytes.
const MaxFrameBytes = 1 << 22

// Type identifies a frame's meaning.
type Type uint8

// The frame types of wire-format version 1.
const (
	// THello opens a connection: A=Magic, B=Version, C=sender rank.
	THello Type = iota + 1
	// TDiff carries released modifications to a page's home:
	// A=page, B=ack token, Offs=paired (start,count) runs,
	// Words=the runs' values concatenated.
	TDiff
	// TWriteNotice invalidates: A=page, B=ack token (echoed in
	// TNoticeAck). Pages may carry additional page numbers when
	// notices are batched.
	TWriteNotice
	// TNoticeAck acknowledges a write notice: A=page, B=token.
	TNoticeAck
	// TDirUpdate maintains the home's sharer directory: A=page,
	// B=node, C=1 to add the node to the page's sharer set, 0 to
	// drop it.
	TDirUpdate
	// TPageReq requests a page copy from its home: A=page.
	TPageReq
	// TPageReply answers: A=page, Words=the full page.
	TPageReply
	// TFlushAck acknowledges a TDiff after every affected sharer has
	// been invalidated: A=page, B=token.
	TFlushAck
	// TBarArrive announces barrier arrival to the coordinator:
	// A=generation, B=arriving global processor id.
	TBarArrive
	// TBarRelease releases a barrier generation: A=generation.
	TBarRelease
	// TLockReq requests an application lock: A=lock id, B=requesting
	// global processor id.
	TLockReq
	// TLockGrant grants it: A=lock id, B=grantee global processor id.
	TLockGrant
	// TLockRelease returns it: A=lock id, B=releasing global
	// processor id.
	TLockRelease
	// TFlagSet raises a set-once application flag: A=flag id.
	TFlagSet
	// TRegionWrite carries a remote-write burst into a replicated
	// region: A=region id, B=starting word offset, Words=the values.
	TRegionWrite
	// TBye ends the session; a node that has received TBye may shut
	// down once its peers' streams drain.
	TBye
)

// String returns the type's wire name.
func (t Type) String() string {
	switch t {
	case THello:
		return "hello"
	case TDiff:
		return "diff"
	case TWriteNotice:
		return "write-notice"
	case TNoticeAck:
		return "notice-ack"
	case TDirUpdate:
		return "dir-update"
	case TPageReq:
		return "page-req"
	case TPageReply:
		return "page-reply"
	case TFlushAck:
		return "flush-ack"
	case TBarArrive:
		return "bar-arrive"
	case TBarRelease:
		return "bar-release"
	case TLockReq:
		return "lock-req"
	case TLockGrant:
		return "lock-grant"
	case TLockRelease:
		return "lock-release"
	case TFlagSet:
		return "flag-set"
	case TRegionWrite:
		return "region-write"
	case TBye:
		return "bye"
	default:
		return fmt.Sprintf("Type(%d)", uint8(t))
	}
}

// Frame is one decoded message. The zero value is invalid (Type 0 is
// reserved so an accidentally-zeroed frame cannot masquerade as
// traffic).
type Frame struct {
	Type    Type
	A, B, C int64
	Pages   []int32
	Offs    []int32
	Words   []int64
}

// Hello returns the connection-opening frame for the given rank.
func Hello(rank int) Frame {
	return Frame{Type: THello, A: Magic, B: Version, C: int64(rank)}
}

// HelloAt returns the connection-opening frame for the given rank,
// carrying the sender's wall clock (unix nanoseconds) as the first
// payload word. Receivers estimate per-peer clock offsets from it
// (tcpchan.ClockOffsets); CheckHello ignores the payload, so a peer
// sending a plain Hello simply provides no estimate. The frame layout
// is unchanged — Words was always legal on any type — so this needs no
// version bump.
func HelloAt(rank int, clockNS int64) Frame {
	f := Hello(rank)
	f.Words = []int64{clockNS}
	return f
}

// HelloClock extracts the sender's clock stamp from a hello frame. ok
// is false when the hello carries none (a plain Hello).
func HelloClock(f Frame) (clockNS int64, ok bool) {
	if f.Type != THello || len(f.Words) == 0 {
		return 0, false
	}
	return f.Words[0], true
}

// CheckHello validates a connection's first frame and returns the
// sender's rank. It rejects non-Hello frames, a wrong magic number,
// and a version mismatch — each with an error naming what was seen.
func CheckHello(f Frame) (rank int, err error) {
	if f.Type != THello {
		return 0, fmt.Errorf("wire: expected hello, got %v frame", f.Type)
	}
	if f.A != Magic {
		return 0, fmt.Errorf("wire: bad magic %#x (want %#x): not a cashmere stream", f.A, Magic)
	}
	if f.B != Version {
		return 0, fmt.Errorf("wire: version mismatch: peer speaks v%d, this build speaks v%d", f.B, Version)
	}
	return int(f.C), nil
}

// fixedHeader is the encoded size of the per-frame fields after the
// length prefix: type byte, three i64 scalars, three u32 counts.
const fixedHeader = 1 + 3*8 + 3*4

// EncodedLen returns the total encoded size of f, including the
// four-byte length prefix.
func EncodedLen(f Frame) int {
	return 4 + fixedHeader + 4*len(f.Pages) + 4*len(f.Offs) + 8*len(f.Words)
}

// Append encodes f onto dst and returns the extended slice.
func Append(dst []byte, f Frame) []byte {
	payload := fixedHeader + 4*len(f.Pages) + 4*len(f.Offs) + 8*len(f.Words)
	dst = binary.LittleEndian.AppendUint32(dst, uint32(payload))
	dst = append(dst, byte(f.Type))
	dst = binary.LittleEndian.AppendUint64(dst, uint64(f.A))
	dst = binary.LittleEndian.AppendUint64(dst, uint64(f.B))
	dst = binary.LittleEndian.AppendUint64(dst, uint64(f.C))
	dst = binary.LittleEndian.AppendUint32(dst, uint32(len(f.Pages)))
	dst = binary.LittleEndian.AppendUint32(dst, uint32(len(f.Offs)))
	dst = binary.LittleEndian.AppendUint32(dst, uint32(len(f.Words)))
	for _, p := range f.Pages {
		dst = binary.LittleEndian.AppendUint32(dst, uint32(p))
	}
	for _, o := range f.Offs {
		dst = binary.LittleEndian.AppendUint32(dst, uint32(o))
	}
	for _, w := range f.Words {
		dst = binary.LittleEndian.AppendUint64(dst, uint64(w))
	}
	return dst
}

// Parse decodes one frame from the front of b and returns it together
// with the unconsumed remainder. It returns io.ErrUnexpectedEOF when b
// holds a syntactically-valid prefix of a frame (read more and retry)
// and a descriptive error for anything malformed.
func Parse(b []byte) (f Frame, rest []byte, err error) {
	if len(b) < 4 {
		return Frame{}, b, io.ErrUnexpectedEOF
	}
	payload := int(binary.LittleEndian.Uint32(b))
	if payload > MaxFrameBytes {
		return Frame{}, b, fmt.Errorf("wire: frame length %d exceeds limit %d", payload, MaxFrameBytes)
	}
	if payload < fixedHeader {
		return Frame{}, b, fmt.Errorf("wire: frame length %d shorter than header %d", payload, fixedHeader)
	}
	if len(b) < 4+payload {
		return Frame{}, b, io.ErrUnexpectedEOF
	}
	body := b[4 : 4+payload]
	rest = b[4+payload:]

	f.Type = Type(body[0])
	if f.Type == 0 {
		return Frame{}, b, fmt.Errorf("wire: zero frame type")
	}
	f.A = int64(binary.LittleEndian.Uint64(body[1:]))
	f.B = int64(binary.LittleEndian.Uint64(body[9:]))
	f.C = int64(binary.LittleEndian.Uint64(body[17:]))
	nPages := int(binary.LittleEndian.Uint32(body[25:]))
	nOffs := int(binary.LittleEndian.Uint32(body[29:]))
	nWords := int(binary.LittleEndian.Uint32(body[33:]))
	want := fixedHeader + 4*nPages + 4*nOffs + 8*nWords
	if want != payload || nPages < 0 || nOffs < 0 || nWords < 0 {
		return Frame{}, b, fmt.Errorf("wire: %v frame declares %d pages/%d offs/%d words but carries %d payload bytes",
			f.Type, nPages, nOffs, nWords, payload)
	}
	at := fixedHeader
	if nPages > 0 {
		f.Pages = make([]int32, nPages)
		for i := range f.Pages {
			f.Pages[i] = int32(binary.LittleEndian.Uint32(body[at:]))
			at += 4
		}
	}
	if nOffs > 0 {
		f.Offs = make([]int32, nOffs)
		for i := range f.Offs {
			f.Offs[i] = int32(binary.LittleEndian.Uint32(body[at:]))
			at += 4
		}
	}
	if nWords > 0 {
		f.Words = make([]int64, nWords)
		for i := range f.Words {
			f.Words[i] = int64(binary.LittleEndian.Uint64(body[at:]))
			at += 8
		}
	}
	return f, rest, nil
}

// WriteFrame encodes f onto w.
func WriteFrame(w io.Writer, f Frame) error {
	buf := Append(make([]byte, 0, EncodedLen(f)), f)
	_, err := w.Write(buf)
	return err
}

// ReadFrame decodes one frame from r, which must deliver a byte stream
// produced by WriteFrame/Append. It returns io.EOF only at a clean
// frame boundary.
func ReadFrame(r io.Reader) (Frame, error) {
	var hdr [4]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return Frame{}, err
	}
	payload := int(binary.LittleEndian.Uint32(hdr[:]))
	if payload > MaxFrameBytes {
		return Frame{}, fmt.Errorf("wire: frame length %d exceeds limit %d", payload, MaxFrameBytes)
	}
	buf := make([]byte, 4+payload)
	copy(buf, hdr[:])
	if _, err := io.ReadFull(r, buf[4:]); err != nil {
		if err == io.EOF {
			err = io.ErrUnexpectedEOF
		}
		return Frame{}, err
	}
	f, _, err := Parse(buf)
	return f, err
}

// Equal reports whether two frames are identical, treating nil and
// empty slices as equal (Parse never allocates empty non-nil slices,
// but hand-built frames may hold them).
func Equal(a, b Frame) bool {
	if a.Type != b.Type || a.A != b.A || a.B != b.B || a.C != b.C {
		return false
	}
	if len(a.Pages) != len(b.Pages) || len(a.Offs) != len(b.Offs) || len(a.Words) != len(b.Words) {
		return false
	}
	for i := range a.Pages {
		if a.Pages[i] != b.Pages[i] {
			return false
		}
	}
	for i := range a.Offs {
		if a.Offs[i] != b.Offs[i] {
			return false
		}
	}
	for i := range a.Words {
		if a.Words[i] != b.Words[i] {
			return false
		}
	}
	return true
}
