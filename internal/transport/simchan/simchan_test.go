package simchan

import (
	"sync"
	"testing"
	"time"

	"cashmere/internal/costs"
)

func net8(t *testing.T) *Network {
	t.Helper()
	return New(8, costs.Default())
}

func TestNewValidation(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("New(0) did not panic")
		}
	}()
	New(0, costs.Default())
}

func TestBroadcastWrite(t *testing.T) {
	n := net8(t)
	r := n.NewRegion(16, false)
	done := r.Write(2, 5, 99, 1000)
	if done != 1000+n.Model().MCWriteLatency {
		t.Errorf("globally performed at %d, want %d", done, 1000+n.Model().MCWriteLatency)
	}
	for node := 0; node < 8; node++ {
		got := r.Read(node, 5)
		if node == 2 {
			// No loop-back: writer's own copy untouched.
			if got != 0 {
				t.Errorf("writer's copy updated without loop-back: %d", got)
			}
			continue
		}
		if got != 99 {
			t.Errorf("node %d read %d, want 99", node, got)
		}
	}
}

func TestLoopback(t *testing.T) {
	n := net8(t)
	r := n.NewRegion(4, true)
	r.Write(3, 0, 7, 0)
	if got := r.Read(3, 0); got != 7 {
		t.Errorf("loop-back write not visible to writer: %d", got)
	}
}

func TestPokeDoubling(t *testing.T) {
	n := net8(t)
	r := n.NewRegion(4, false)
	r.Write(1, 2, 42, 0)
	r.Poke(1, 2, 42) // manual doubling, as the global directory does
	for node := 0; node < 8; node++ {
		if got := r.Read(node, 2); got != 42 {
			t.Errorf("node %d read %d after write+poke, want 42", node, got)
		}
	}
}

func TestRegionAtReceivers(t *testing.T) {
	n := net8(t)
	r := n.NewRegionAt(8, false, 4)
	if !r.Receives(4) {
		t.Error("node 4 should receive")
	}
	if r.Receives(0) || r.Receives(7) {
		t.Error("non-receivers report receiving")
	}
	if r.Receives(-1) || r.Receives(99) {
		t.Error("out-of-range nodes report receiving")
	}
	r.Write(0, 3, 11, 0)
	if got := r.Read(4, 3); got != 11 {
		t.Errorf("home copy read %d, want 11", got)
	}
	defer func() {
		if recover() == nil {
			t.Error("reading a non-received region did not panic")
		}
	}()
	r.Read(1, 3)
}

func TestRegionAtInvalidReceiver(t *testing.T) {
	n := net8(t)
	defer func() {
		if recover() == nil {
			t.Error("invalid receiver did not panic")
		}
	}()
	n.NewRegionAt(8, false, 9)
}

func TestPokeNonReceiverPanics(t *testing.T) {
	n := net8(t)
	r := n.NewRegionAt(8, false, 2)
	defer func() {
		if recover() == nil {
			t.Error("Poke on non-receiver did not panic")
		}
	}()
	r.Poke(3, 0, 1)
}

func TestWriteOrdering(t *testing.T) {
	// A reader that observes the second write must observe the first:
	// MC guarantees write ordering from a single source.
	n := New(2, costs.Default())
	r := n.NewRegion(2, false)
	var wg sync.WaitGroup
	wg.Add(2)
	stop := make(chan struct{})
	go func() {
		defer wg.Done()
		for i := int64(1); i <= 10000; i++ {
			r.Write(0, 0, i, 0)
			r.Write(0, 1, i, 0)
		}
		close(stop)
	}()
	go func() {
		defer wg.Done()
		for {
			select {
			case <-stop:
				return
			default:
			}
			second := r.Read(1, 1)
			first := r.Read(1, 0)
			if first < second {
				t.Errorf("ordering violated: second=%d visible but first=%d", second, first)
				return
			}
		}
	}()
	wg.Wait()
}

func TestWriteBlock(t *testing.T) {
	n := net8(t)
	r := n.NewRegion(64, false)
	vals := []int64{1, 2, 3, 4}
	done := r.WriteBlock(0, 10, vals, 0)
	if done <= 0 {
		t.Errorf("WriteBlock completion = %d", done)
	}
	for i, v := range vals {
		if got := r.Read(5, 10+i); got != v {
			t.Errorf("word %d = %d, want %d", 10+i, got, v)
		}
	}
	// Completion includes at least the link occupancy plus latency.
	m := n.Model()
	min := costs.Occupancy(int64(len(vals)*WordBytes), m.MCLinkBandwidth) + m.MCWriteLatency
	if done < min {
		t.Errorf("WriteBlock done=%d < minimum %d", done, min)
	}
}

func TestTransferUncontended(t *testing.T) {
	n := net8(t)
	m := n.Model()
	// One 8K page from an idle network: link bandwidth (29 MB/s) is the
	// bottleneck, so ~269us + 5.2us latency.
	done := n.Transfer(0, 8192, 0)
	want := costs.Occupancy(8192, m.MCLinkBandwidth) + m.MCWriteLatency
	if done != want {
		t.Errorf("Transfer = %d, want %d", done, want)
	}
}

func TestTransferContention(t *testing.T) {
	n := net8(t)
	m := n.Model()
	// Eight nodes each inject an 8K page at time zero. Each node's own
	// link is idle, but the shared hub (60 MB/s) must serialize them:
	// the last one completes no earlier than 8*8192 bytes over the hub.
	var last int64
	for src := 0; src < 8; src++ {
		if done := n.Transfer(src, 8192, 0); done > last {
			last = done
		}
	}
	// Allow a few ns of integer-division rounding per transfer.
	hubBound := costs.Occupancy(8*8192, m.MCAggregateBandwidth) + m.MCWriteLatency - 16
	if last < hubBound {
		t.Errorf("last transfer at %d, want >= hub bound %d", last, hubBound)
	}
	// And a single link never moved more than its own page, so no
	// transfer should cost more than ~8 pages over the hub plus slack.
	if last > 2*hubBound {
		t.Errorf("last transfer at %d, absurdly above hub bound %d", last, hubBound)
	}
}

func TestBusyTimeAccounting(t *testing.T) {
	n := net8(t)
	m := n.Model()
	// Two nodes inject a page each at the same instant. The transfers
	// overlap on the hub (which serializes them) but ride separate
	// links, so: each link's busy time is exactly one page's link
	// occupancy, and the hub's busy time is exactly two pages' hub
	// occupancy — contention shifts completion times, never the busy
	// accounting.
	n.Transfer(0, 8192, 0)
	n.Transfer(1, 8192, 0)
	linkOcc := costs.Occupancy(8192, m.MCLinkBandwidth)
	for _, src := range []int{0, 1} {
		if got := n.LinkBusyNS(src); got != linkOcc {
			t.Errorf("link %d busy = %d, want %d", src, got, linkOcc)
		}
	}
	if got := n.LinkBusyNS(2); got != 0 {
		t.Errorf("idle link busy = %d, want 0", got)
	}
	if got := n.LinkBusyNS(-1); got != 0 {
		t.Errorf("out-of-range link busy = %d, want 0", got)
	}
	hubOcc := 2 * costs.Occupancy(8192, m.MCAggregateBandwidth)
	hub, ok := n.HubBusyNS()
	if !ok {
		t.Fatal("serial fabric reported no hub")
	}
	if hub != hubOcc {
		t.Errorf("hub busy = %d, want %d", hub, hubOcc)
	}
}

func TestBusyTimeSwitchedFabricHasNoHub(t *testing.T) {
	m := costs.Default()
	m.MCFabric = costs.FabricSwitched
	n := New(4, m)
	n.Transfer(0, 8192, 0)
	if _, ok := n.HubBusyNS(); ok {
		t.Error("switched fabric reported a hub")
	}
	if got := n.LinkBusyNS(0); got != costs.Occupancy(8192, m.MCLinkBandwidth) {
		t.Errorf("switched-fabric link busy = %d", got)
	}
}

func TestTransferSameLinkSerializes(t *testing.T) {
	n := net8(t)
	m := n.Model()
	d1 := n.Transfer(3, 8192, 0)
	d2 := n.Transfer(3, 8192, 0)
	if d2 <= d1 {
		t.Errorf("second transfer on same link (%d) not after first (%d)", d2, d1)
	}
	// Allow a few ns of integer-division rounding per transfer.
	linkBound := costs.Occupancy(2*8192, m.MCLinkBandwidth) + m.MCWriteLatency - 16
	if d2 < linkBound {
		t.Errorf("two pages on one 29MB/s link done at %d, want >= %d", d2, linkBound)
	}
}

func TestTransferZeroBytes(t *testing.T) {
	n := net8(t)
	if done := n.Transfer(0, 0, 100); done != 100+n.Model().MCWriteLatency {
		t.Errorf("zero-byte transfer = %d", done)
	}
}

func TestTransferInvalidNode(t *testing.T) {
	n := net8(t)
	defer func() {
		if recover() == nil {
			t.Error("Transfer from invalid node did not panic")
		}
	}()
	n.Transfer(8, 100, 0)
}

func TestBytesMovedAccounting(t *testing.T) {
	n := net8(t)
	r := n.NewRegion(16, false)
	n.Transfer(0, 1000, 0)
	r.Write(0, 0, 1, 0)
	r.WriteBlock(1, 0, []int64{1, 2}, 0)
	want := int64(1000 + WordBytes + 2*WordBytes)
	if got := n.BytesMoved(); got != want {
		t.Errorf("BytesMoved = %d, want %d", got, want)
	}
}

func TestConcurrentDistinctWordWriters(t *testing.T) {
	// The protocols guarantee each metadata word has a single writing
	// node; concurrent writers to distinct words must not interfere.
	n := net8(t)
	r := n.NewRegion(8, false)
	var wg sync.WaitGroup
	for node := 0; node < 8; node++ {
		wg.Add(1)
		go func(node int) {
			defer wg.Done()
			for i := int64(0); i < 1000; i++ {
				r.Write(node, node, i, 0)
				r.Poke(node, node, i)
			}
		}(node)
	}
	wg.Wait()
	for node := 0; node < 8; node++ {
		for reader := 0; reader < 8; reader++ {
			if got := r.Read(reader, node); got != 999 {
				t.Errorf("node %d reads word %d = %d, want 999", reader, node, got)
			}
		}
	}
}

func TestWordBytesMatchesLatencyScale(t *testing.T) {
	// Sanity: an 8K page at 29MB/s should take roughly 270us, i.e.
	// vastly more than the 5.2us word latency — the reason the paper's
	// protocols fight to reduce data volume.
	m := costs.Default()
	page := costs.Occupancy(8192, m.MCLinkBandwidth)
	if page < 50*m.MCWriteLatency {
		t.Errorf("page occupancy %v should dwarf word latency %v",
			time.Duration(page), time.Duration(m.MCWriteLatency))
	}
}

func TestSwitchedFabricSkipsHubContention(t *testing.T) {
	// Three nodes inject a bulk transfer at the same instant. Under the
	// paper's serial fabric the shared ~60 MB/s hub gates the third
	// transfer (3 x 29 MB/s links > aggregate); under a switched
	// crossbar each transfer pays only its own link occupancy, so every
	// transfer completes at the single-link time.
	const nbytes = 1 << 20
	serial := New(4, costs.Default())
	alone := serial.Transfer(0, nbytes, 0)

	swModel := costs.Default()
	swModel.MCFabric = costs.FabricSwitched
	switched := New(4, swModel)

	var serialMax, switchedMax int64
	for src := 1; src <= 3; src++ {
		if done := serial.Transfer(src, nbytes, 1000); done > serialMax {
			serialMax = done
		}
		if done := switched.Transfer(src, nbytes, 1000); done > switchedMax {
			switchedMax = done
		}
	}
	if switchedMax != 1000+alone {
		t.Errorf("switched transfers gated beyond link occupancy: max %d, want %d",
			switchedMax, 1000+alone)
	}
	if serialMax <= switchedMax {
		t.Errorf("serial hub imposed no extra contention: serial %d, switched %d",
			serialMax, switchedMax)
	}
}

func TestSwitchedFabricStillChargesLink(t *testing.T) {
	m := costs.Default()
	m.MCFabric = costs.FabricSwitched
	n := New(2, m)
	// Two back-to-back transfers from one node serialize on its link.
	first := n.Transfer(0, 1<<20, 0)
	second := n.Transfer(0, 1<<20, 0)
	if second <= first {
		t.Errorf("same-source transfers did not serialize on the link: %d then %d", first, second)
	}
}
