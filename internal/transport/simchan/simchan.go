// Package simchan simulates DEC's Memory Channel: a low-latency
// remote-write cluster interconnect (Gillett, IEEE Micro 1996). It is
// the virtual-time backend of the transport contract
// (internal/transport) — the fabric the paper's protocols are
// evaluated on, and the only backend whose results are pinned
// bit-identical by the golden paper configurations.
//
// The simulation preserves the four properties the Cashmere protocols
// depend on (paper Section 2.1):
//
//   - Remote writes only. A node writes through a transmit mapping and
//     the data appears in the receive regions (local RAM) of every node
//     that maps the region; there are no remote reads, so reading remote
//     state requires either replication-by-broadcast or an explicit
//     request/reply message.
//   - Write ordering. Two writes issued by one node to a region are
//     observed in issue order by every receiver (simulated with
//     sequentially-consistent atomics; the protocols additionally write
//     each metadata word from a single node, which is what makes the
//     lock-free directory sound).
//   - Broadcast. A region may be received by many nodes; one write
//     updates every replica.
//   - Loop-back. A region may be configured so the writer's own receive
//     region is updated by the network; observing one's own write there
//     proves it has been globally performed. Without loop-back a node
//     must "double" writes to its local copy manually.
//
// Costs follow the paper's platform: 5.2 us process-to-process write
// latency, 29 MB/s per-link (PCI-limited) bandwidth, and roughly 60 MB/s
// aggregate through the hub — the first-generation Memory Channel is a
// serial global interconnect, so bulk transfers from all nodes contend
// for it. The contention model is parameterized by costs.Model: the
// per-link and aggregate bandwidths are Model fields, and
// Model.MCFabric can replace the serial hub with a switched (crossbar)
// fabric in which transfers contend only for their source's link and
// aggregate bandwidth scales with the node count.
//
// # Concurrency
//
// All Network and Region methods are safe for concurrent use by any
// number of simulated processors. Region words are read and written
// with sequentially-consistent atomics, which is what gives the
// simulated network its write-ordering property; Transfer serializes
// bandwidth accounting through the sim.Bus mutexes. SetTracer is the
// one exception: it must be called before the network carries traffic
// (New in internal/core calls it during cluster construction).
package simchan

import (
	"fmt"
	"sync/atomic"

	"cashmere/internal/costs"
	"cashmere/internal/sim"
	"cashmere/internal/trace"
	"cashmere/internal/transport"
)

// Network is a simulated Memory Channel connecting a fixed set of nodes.
type Network struct {
	nodes int
	model costs.Model
	hub   *sim.Bus // nil under a switched fabric (no shared cap)
	links []*sim.Bus
	moved atomic.Int64 // total bytes moved, for accounting and tests
	tr    *trace.Tracer
}

// New creates a network connecting nodes nodes using the given timing
// model. Under the default serial fabric every transfer also occupies
// the shared hub; under costs.FabricSwitched only the source's link
// gates transfers.
func New(nodes int, model costs.Model) *Network {
	if nodes <= 0 {
		panic("simchan: network needs at least one node")
	}
	n := &Network{
		nodes: nodes,
		model: model,
	}
	if model.MCFabric == costs.FabricSerial {
		n.hub = sim.NewBus(model.MCAggregateBandwidth)
	}
	n.links = make([]*sim.Bus, nodes)
	for i := range n.links {
		n.links[i] = sim.NewBus(model.MCLinkBandwidth)
	}
	return n
}

// Kind identifies the backend as the virtual-time simulator.
func (n *Network) Kind() transport.Kind { return transport.Sim }

// Close is a no-op: the simulator holds no external resources.
func (n *Network) Close() error { return nil }

// Nodes returns the number of nodes on the network.
func (n *Network) Nodes() int { return n.nodes }

// Model returns the network's timing model.
func (n *Network) Model() costs.Model { return n.model }

// BytesMoved returns the total payload bytes transferred so far.
func (n *Network) BytesMoved() int64 { return n.moved.Load() }

// LinkBusyNS returns the total virtual time node i's PCI link has been
// occupied by transfers. The accounting is exact — each modelled
// transfer contributes precisely its occupancy — so dividing by the
// run's current virtual time gives the link's true utilization.
func (n *Network) LinkBusyNS(i int) int64 {
	if i < 0 || i >= len(n.links) {
		return 0
	}
	return n.links[i].BusyNS()
}

// HubBusyNS returns the total virtual time the shared hub has been
// occupied, and whether the fabric has a hub at all (a switched fabric
// does not).
func (n *Network) HubBusyNS() (int64, bool) {
	if n.hub == nil {
		return 0, false
	}
	return n.hub.BusyNS(), true
}

// SetTracer attaches a structured event tracer (nil disables tracing).
// The tracer must have at least Nodes() link tracks. Not safe to call
// concurrently with traffic; set it before the simulation starts.
func (n *Network) SetTracer(t *trace.Tracer) { n.tr = t }

// Tracer returns the attached tracer, or nil when tracing is off.
func (n *Network) Tracer() *trace.Tracer { return n.tr }

// Transfer models a bulk transfer of nbytes injected by node src at
// virtual time now and returns the time the data is globally performed.
// The transfer occupies the source's PCI link and the shared hub
// concurrently (the slower of the two gates completion) and then pays
// the network latency.
func (n *Network) Transfer(src int, nbytes int64, now int64) int64 {
	if src < 0 || src >= n.nodes {
		panic(fmt.Sprintf("simchan: transfer from invalid node %d", src))
	}
	if nbytes <= 0 {
		return now + n.model.MCWriteLatency
	}
	n.moved.Add(nbytes)
	done := n.links[src].Use(now, nbytes)
	if n.hub != nil {
		if hubDone := n.hub.Use(now, nbytes); hubDone > done {
			done = hubDone
		}
	}
	done += n.model.MCWriteLatency
	if n.tr != nil {
		n.tr.EmitLink(src, trace.Event{
			Kind: trace.EvLinkTransfer,
			Proc: -1,
			Node: int32(src),
			Page: -1,
			VT:   now,
			Dur:  done - now,
			Arg:  nbytes,
		})
	}
	return done
}

// WordBytes is the size of one region word. The hardware's write grain
// is 32 bits; the simulator uses 64-bit words so applications can store
// float64 data directly, and charges transfer sizes in these units.
const WordBytes = transport.WordBytes

// Region is a Memory Channel region: words of memory replicated into the
// receive regions of its receiver nodes. Writes through a transmit
// mapping update every receiver's copy.
type Region struct {
	net      *Network
	words    int
	loopback bool
	// recv[i] is node i's receive backing, nil if node i does not map
	// the region for receive. Words are accessed atomically.
	recv [][]int64
}

// NewRegion creates a region of the given word length received by every
// node. loopback configures whether a node's own writes are delivered
// back to its receive region by the network (used for synchronization
// objects); without it, writers must double writes locally via Poke.
func (n *Network) NewRegion(words int, loopback bool) transport.Region {
	recv := make([][]int64, n.nodes)
	for i := range recv {
		recv[i] = make([]int64, words)
	}
	return &Region{net: n, words: words, loopback: loopback, recv: recv}
}

// NewRegionAt creates a region received only by the given nodes. Writes
// from any node are delivered to those receivers alone — the shape used
// for home-node page copies and per-node metadata areas (paper Figures
// 2 and 3).
func (n *Network) NewRegionAt(words int, loopback bool, receivers ...int) transport.Region {
	recv := make([][]int64, n.nodes)
	for _, r := range receivers {
		if r < 0 || r >= n.nodes {
			panic(fmt.Sprintf("simchan: invalid receiver node %d", r))
		}
		recv[r] = make([]int64, words)
	}
	return &Region{net: n, words: words, loopback: loopback, recv: recv}
}

// Words returns the region's length in words.
func (r *Region) Words() int { return r.words }

// Fabric returns the network the region is mapped on.
func (r *Region) Fabric() transport.Fabric { return r.net }

// Receives reports whether node maps the region for receive.
func (r *Region) Receives(node int) bool {
	return node >= 0 && node < len(r.recv) && r.recv[node] != nil
}

// Read returns word off of node's receive region. Reading a region the
// node does not receive is a programming error and panics, mirroring the
// hardware's lack of remote reads.
func (r *Region) Read(node, off int) int64 {
	b := r.recv[node]
	if b == nil {
		panic(fmt.Sprintf("simchan: node %d does not receive this region", node))
	}
	return atomic.LoadInt64(&b[off])
}

// Write performs a remote write of v to word off from node from, at
// virtual time now. The write is posted (the writer does not stall); the
// returned time is when the write has been globally performed, which a
// writer using loop-back can wait for. Without loop-back the writer's
// own receive copy is NOT updated (double manually with Poke).
func (r *Region) Write(from, off int, v int64, now int64) int64 {
	for node, b := range r.recv {
		if b == nil || (node == from && !r.loopback) {
			continue
		}
		atomic.StoreInt64(&b[off], v)
	}
	r.net.moved.Add(WordBytes)
	return now + r.net.model.MCWriteLatency
}

// WriteBlock performs an ordered burst of remote writes of vals starting
// at word off, charging link and hub occupancy for the burst. It returns
// the time the burst is globally performed.
func (r *Region) WriteBlock(from, off int, vals []int64, now int64) int64 {
	for node, b := range r.recv {
		if b == nil || (node == from && !r.loopback) {
			continue
		}
		for i, v := range vals {
			atomic.StoreInt64(&b[off+i], v)
		}
	}
	return r.net.Transfer(from, int64(len(vals))*WordBytes, now)
}

// Poke stores v directly into node's local receive copy without touching
// the network — the "doubling" of writes to the local replica that
// regions without loop-back require (paper Figure 1).
func (r *Region) Poke(node, off int, v int64) {
	b := r.recv[node]
	if b == nil {
		panic(fmt.Sprintf("simchan: node %d does not receive this region", node))
	}
	atomic.StoreInt64(&b[off], v)
}
