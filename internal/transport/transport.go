// Package transport defines the fabric contract the Cashmere protocols
// run over: ordered remote-write regions with broadcast and loop-back,
// explicit point-to-point messaging, and the cost-model hooks the
// simulator charges. The protocol layers (internal/core, internal/msync,
// internal/directory) are written against these interfaces only; the
// concrete fabrics live in the backend packages:
//
//   - transport/simchan — the virtual-time Memory Channel simulator
//     (the paper's platform; the default and the only backend the
//     golden paper configurations run on),
//   - transport/shmchan — an in-process shared-memory fabric for
//     co-located goroutine nodes (frames travel through lock-free
//     rings; no virtual-time coupling),
//   - transport/tcpchan — a TCP fabric whose nodes are separate OS
//     processes exchanging versioned wire frames (transport/wire).
//
// The contract mirrors the four Memory Channel properties of paper
// Section 2.1 — remote writes only, per-source write ordering,
// broadcast, loop-back — plus the explicit request/reply messages the
// hardware's lack of remote reads forces. See docs/TRANSPORT.md for
// the backend matrix and the exact visibility guarantees each backend
// provides.
package transport

import (
	"fmt"

	"cashmere/internal/costs"
	"cashmere/internal/trace"
	"cashmere/internal/transport/wire"
)

// WordBytes is the size of one region word across every backend. The
// hardware's write grain is 32 bits; the fabrics use 64-bit words so
// applications can store float64 data directly, and charge transfer
// sizes in these units.
const WordBytes = 8

// Kind selects a transport backend.
type Kind int

const (
	// Sim is the virtual-time Memory Channel simulator
	// (transport/simchan): bandwidth-contended transfers, the paper's
	// latency model, and bit-reproducible virtual-time results.
	Sim Kind = iota
	// SHM is the in-process shared-memory fabric (transport/shmchan):
	// goroutine nodes exchange frames through lock-free rings with no
	// virtual-time coupling (transfers charge nothing).
	SHM
	// TCP is the socket fabric (transport/tcpchan): cluster nodes are
	// separate OS processes connected by a loopback/LAN mesh speaking
	// the versioned transport/wire format. It cannot host the
	// single-process simulation engine; cashmere-run launches one OS
	// process per node instead (see internal/mprun).
	TCP
)

// String returns the backend's flag spelling.
func (k Kind) String() string {
	switch k {
	case Sim:
		return "sim"
	case SHM:
		return "shm"
	case TCP:
		return "tcp"
	default:
		return fmt.Sprintf("Kind(%d)", int(k))
	}
}

// ParseKind parses a -transport flag value.
func ParseKind(s string) (Kind, error) {
	switch s {
	case "", "sim":
		return Sim, nil
	case "shm":
		return SHM, nil
	case "tcp":
		return TCP, nil
	}
	return 0, fmt.Errorf(`unknown transport %q (want "sim", "shm", or "tcp")`, s)
}

// Region is a remote-write region: words of memory replicated into the
// receive buffers of its receiver nodes. Writes through a transmit
// mapping update every receiver's copy, in issue order per source;
// there are no remote reads (Read hits the caller's own replica).
//
// Virtual-time parameters and results follow the simulator convention:
// a write is given the writer's current virtual time and returns the
// time the write is globally performed. Backends without a virtual
// clock return now unchanged.
type Region interface {
	// Words returns the region's length in words.
	Words() int
	// Receives reports whether node maps the region for receive.
	Receives(node int) bool
	// Read returns word off of node's receive copy. Reading a region
	// the node does not receive is a programming error and panics,
	// mirroring the hardware's lack of remote reads.
	Read(node, off int) int64
	// Write performs a remote write of v to word off from node from at
	// virtual time now, returning the time the write is globally
	// performed. Without loop-back the writer's own copy is NOT
	// updated (double manually with Poke).
	Write(from, off int, v int64, now int64) int64
	// WriteBlock performs an ordered burst of remote writes of vals
	// starting at word off, charging link occupancy for the burst, and
	// returns the time the burst is globally performed.
	WriteBlock(from, off int, vals []int64, now int64) int64
	// Poke stores v directly into node's local receive copy without
	// touching the network — the "doubling" of writes that regions
	// without loop-back require.
	Poke(node, off int, v int64)
	// Fabric returns the fabric the region is mapped on.
	Fabric() Fabric
}

// Fabric is one interconnect backend connecting a fixed set of nodes.
// All methods are safe for concurrent use by any number of node
// goroutines except SetTracer, which must be called before the fabric
// carries traffic.
type Fabric interface {
	// Kind identifies the backend.
	Kind() Kind
	// Nodes returns the number of nodes on the fabric.
	Nodes() int
	// Model returns the fabric's timing model. Backends without a
	// virtual clock still carry one so protocol layers can read
	// latency constants.
	Model() costs.Model
	// NewRegion creates a region of the given word length received by
	// every node. loopback configures whether a node's own writes are
	// delivered back to its receive copy by the network.
	NewRegion(words int, loopback bool) Region
	// NewRegionAt creates a region received only by the given nodes.
	NewRegionAt(words int, loopback bool, receivers ...int) Region
	// Transfer models a bulk transfer of nbytes injected by node src
	// at virtual time now and returns the time the data is globally
	// performed. This is the cost-model hook the simulator charges
	// bandwidth contention through; backends without a virtual clock
	// return now plus nothing.
	Transfer(src int, nbytes int64, now int64) int64
	// BytesMoved returns the total payload bytes transferred so far.
	BytesMoved() int64
	// LinkBusyNS returns the total virtual time node i's link has been
	// occupied by transfers (zero on backends without contention
	// modelling).
	LinkBusyNS(i int) int64
	// HubBusyNS returns the total virtual time the shared hub has been
	// occupied, and whether the fabric has a hub at all.
	HubBusyNS() (int64, bool)
	// SetTracer attaches a structured event tracer (nil disables
	// tracing). Not safe to call concurrently with traffic.
	SetTracer(t *trace.Tracer)
	// Tracer returns the attached tracer, or nil.
	Tracer() *trace.Tracer
	// Close releases backend resources (connections, goroutines).
	// Close is idempotent; the simulator backend has nothing to
	// release.
	Close() error
}

// Messenger is the explicit point-to-point messaging surface of a
// fabric: the request/reply channel the Memory Channel's lack of
// remote reads forces onto the protocol (page fetches, diffs,
// synchronization traffic). Frames from one sender to one receiver
// are delivered in send order; frames from different senders are
// unordered relative to each other.
//
// The simulator backend does not implement Messenger — the simulation
// engine models messages as cost charges against directly-shared
// memory. The shm and tcp backends do; internal/mprun drives the
// multi-process DSM runtime through it.
type Messenger interface {
	// Self returns the local node's rank.
	Self() int
	// Peers returns the number of nodes in the mesh.
	Peers() int
	// Send delivers f to node to. Sending to self is allowed and
	// loops the frame back through the local handler. Send never
	// blocks on a slow receiver (frames queue).
	Send(to int, f wire.Frame) error
	// SetHandler installs the frame handler. It must be called before
	// any peer can send; the handler may be invoked concurrently for
	// frames from different senders, but frames from one sender are
	// handled in order.
	SetHandler(h func(from int, f wire.Frame))
	// Close tears the mesh down. Close is idempotent.
	Close() error
}
