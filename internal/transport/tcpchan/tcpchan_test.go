package tcpchan

import (
	"fmt"
	"net"
	"strings"
	"sync"
	"testing"

	"cashmere/internal/transport/wire"
)

// dialMesh builds an n-rank loopback mesh in-process and returns the
// endpoints.
func dialMesh(t *testing.T, n int) []*Endpoint {
	t.Helper()
	listeners := make([]net.Listener, n)
	addrs := make([]string, n)
	for i := range listeners {
		l, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		listeners[i] = l
		addrs[i] = l.Addr().String()
	}
	eps := make([]*Endpoint, n)
	errs := make([]error, n)
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			eps[i], errs[i] = Connect(i, addrs, listeners[i])
		}(i)
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			t.Fatalf("rank %d: %v", i, err)
		}
	}
	return eps
}

func TestMeshExchange(t *testing.T) {
	const n = 3
	eps := dialMesh(t, n)
	inboxes := make([]chan delivery, n)
	for i, e := range eps {
		inboxes[i] = make(chan delivery, 64)
		ch := inboxes[i]
		if e.Self() != i || e.Peers() != n {
			t.Fatalf("rank %d: Self/Peers = %d/%d", i, e.Self(), e.Peers())
		}
		e.SetHandler(func(from int, f wire.Frame) { ch <- delivery{from, f} })
	}
	// Every rank sends one frame to every rank, including itself.
	for i, e := range eps {
		for j := 0; j < n; j++ {
			if err := e.Send(j, wire.Frame{Type: TDiffFor(i, j), A: int64(100*i + j)}); err != nil {
				t.Fatalf("send %d->%d: %v", i, j, err)
			}
		}
	}
	for j := 0; j < n; j++ {
		seen := map[int]int64{}
		for k := 0; k < n; k++ {
			d := <-inboxes[j]
			seen[d.from] = d.f.A
		}
		for i := 0; i < n; i++ {
			if seen[i] != int64(100*i+j) {
				t.Errorf("rank %d received %v from rank %d, want %d", j, seen[i], i, 100*i+j)
			}
		}
	}
	for _, e := range eps {
		if err := e.Close(); err != nil {
			t.Fatal(err)
		}
		if err := e.Close(); err != nil {
			t.Fatalf("second Close: %v", err)
		}
	}
}

// TDiffFor varies the frame type per pair so a misrouted frame is
// visible in failures.
func TDiffFor(i, j int) wire.Type {
	if (i+j)%2 == 0 {
		return wire.TDiff
	}
	return wire.TWriteNotice
}

func TestPerPeerFIFO(t *testing.T) {
	const frames = 500
	eps := dialMesh(t, 2)
	seq := make(chan int64, frames)
	eps[1].SetHandler(func(from int, f wire.Frame) { seq <- f.A })
	eps[0].SetHandler(func(int, wire.Frame) {})
	for i := 0; i < frames; i++ {
		if err := eps[0].Send(1, wire.Frame{Type: wire.TRegionWrite, A: int64(i), Words: []int64{int64(i)}}); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < frames; i++ {
		if got := <-seq; got != int64(i) {
			t.Fatalf("frame %d delivered out of order (got %d)", i, got)
		}
	}
	eps[0].Close()
	eps[1].Close()
}

// TestVersionMismatchRejected connects a raw peer speaking a future
// format version; Connect must refuse the stream.
func TestVersionMismatchRejected(t *testing.T) {
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	res := make(chan error, 1)
	go func() {
		// Rank 0 of a 2-rank mesh: accepts rank 1.
		_, err := Connect(0, []string{l.Addr().String(), "unused"}, l)
		res <- err
	}()
	c, err := net.Dial("tcp", l.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	bad := wire.Hello(1)
	bad.B = wire.Version + 1
	if err := wire.WriteFrame(c, bad); err != nil {
		t.Fatal(err)
	}
	err = <-res
	if err == nil || !strings.Contains(err.Error(), "version mismatch") {
		t.Fatalf("Connect returned %v, want a version-mismatch error", err)
	}
}

// TestWrongRankRejected dials claiming a rank the acceptor is not
// expecting.
func TestWrongRankRejected(t *testing.T) {
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	res := make(chan error, 1)
	go func() {
		_, err := Connect(0, []string{l.Addr().String(), "unused"}, l)
		res <- err
	}()
	c, err := net.Dial("tcp", l.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if err := wire.WriteFrame(c, wire.Hello(0)); err != nil { // claims to be rank 0
		t.Fatal(err)
	}
	if err := <-res; err == nil {
		t.Fatal("Connect accepted a peer claiming the acceptor's own rank")
	}
}

func TestSendInvalidRank(t *testing.T) {
	eps := dialMesh(t, 2)
	defer eps[0].Close()
	defer eps[1].Close()
	eps[0].SetHandler(func(int, wire.Frame) {})
	eps[1].SetHandler(func(int, wire.Frame) {})
	if err := eps[0].Send(7, wire.Frame{}); err == nil {
		t.Fatal("Send to an out-of-mesh rank succeeded")
	}
}

// TestConcurrentSenders hammers one receiver from concurrent sender
// goroutines on both ranks of each peer stream; the write mutex must
// keep frames intact.
func TestConcurrentSenders(t *testing.T) {
	const senders, each = 4, 200
	eps := dialMesh(t, 2)
	var mu sync.Mutex
	got := map[int64]bool{}
	all := make(chan struct{})
	eps[1].SetHandler(func(from int, f wire.Frame) {
		mu.Lock()
		got[f.A] = true
		n := len(got)
		mu.Unlock()
		if n == senders*each {
			close(all)
		}
	})
	eps[0].SetHandler(func(int, wire.Frame) {})
	var wg sync.WaitGroup
	for s := 0; s < senders; s++ {
		wg.Add(1)
		go func(s int) {
			defer wg.Done()
			for i := 0; i < each; i++ {
				f := wire.Frame{Type: wire.TDiff, A: int64(s*each + i), Words: []int64{1, 2, 3}}
				if err := eps[0].Send(1, f); err != nil {
					t.Error(err)
					return
				}
			}
		}(s)
	}
	wg.Wait()
	<-all
	eps[0].Close()
	eps[1].Close()
	if err := eps[1].Err(); err != nil {
		t.Fatalf("receiver recorded stream failure: %v", err)
	}
}

func ExampleConnect() {
	fmt.Println("rank i dials j<i, accepts j>i")
	// Output: rank i dials j<i, accepts j>i
}
