// Package tcpchan is the socket transport backend: a fully-connected
// mesh of TCP streams between the ranks of a multi-process run, each
// stream carrying the versioned length-prefixed frames of
// transport/wire. It implements transport.Messenger for the
// multi-process DSM runtime (internal/mprun); the launcher
// (cashmere-run -transport tcp) distributes the rank/address map and
// then every rank calls Connect.
//
// # Mesh construction
//
// Rank i dials every rank j < i and accepts a connection from every
// rank j > i, so each pair of ranks shares exactly one stream and the
// dial/accept pattern is deadlock-free by construction (rank 0 only
// accepts; the highest rank only dials). Each stream opens with a
// wire.Hello exchange — dialer first — that carries the magic number,
// the format version, and the sender's rank; Connect fails on a
// mismatch rather than trusting an unversioned stream.
//
// # Delivery order
//
// Frames from one peer are delivered in the order sent (TCP FIFO);
// frames from different peers are unordered relative to each other,
// the same per-source guarantee the other backends give. All incoming
// frames are funneled into a single dispatcher goroutine, so the
// handler installed with SetHandler is never invoked concurrently —
// protocol state above needs no locking against itself.
package tcpchan

import (
	"fmt"
	"net"
	"sync"
	"time"

	"cashmere/internal/transport"
	"cashmere/internal/transport/wire"
)

// Endpoint is one rank's side of the TCP mesh.
type Endpoint struct {
	self    int
	conns   []*conn // indexed by peer rank; nil at self
	offsets []int64 // estimated peer clock minus local clock, ns; 0 at self

	mu      sync.Mutex
	cond    *sync.Cond
	inbox   []delivery
	started bool
	closed  bool
	failure error

	stats   *transport.FrameStats
	handler func(from int, f wire.Frame)
	done    chan struct{}
	readers sync.WaitGroup
}

type delivery struct {
	from int
	f    wire.Frame
}

// conn is one peer stream with its write lock (frames are single
// writes, serialized so concurrent senders cannot interleave bytes).
type conn struct {
	c  net.Conn
	wm sync.Mutex
}

var _ transport.Messenger = (*Endpoint)(nil)

// Connect builds rank self's endpoint of an n-rank mesh, where
// n = len(addrs) and addrs[j] is rank j's listen address. lis must be
// the listener bound at addrs[self]; Connect takes ownership and
// closes it before returning. It dials the lower ranks, accepts the
// higher ones, and validates every stream's hello exchange.
func Connect(self int, addrs []string, lis net.Listener) (*Endpoint, error) {
	n := len(addrs)
	if self < 0 || self >= n {
		return nil, fmt.Errorf("tcpchan: rank %d outside 0..%d", self, n-1)
	}
	defer lis.Close()
	e := &Endpoint{self: self, conns: make([]*conn, n), offsets: make([]int64, n)}
	e.cond = sync.NewCond(&e.mu)

	fail := func(err error) (*Endpoint, error) {
		for _, pc := range e.conns {
			if pc != nil {
				pc.c.Close()
			}
		}
		return nil, err
	}

	// Dial every lower rank; the dialer speaks first.
	for j := 0; j < self; j++ {
		c, err := net.Dial("tcp", addrs[j])
		if err != nil {
			return fail(fmt.Errorf("tcpchan: rank %d dialing rank %d at %s: %w", self, j, addrs[j], err))
		}
		e.conns[j] = &conn{c: c}
		t0 := time.Now()
		if err := wire.WriteFrame(c, wire.HelloAt(self, t0.UnixNano())); err != nil {
			return fail(fmt.Errorf("tcpchan: rank %d hello to rank %d: %w", self, j, err))
		}
		f, err := wire.ReadFrame(c)
		t1 := time.Now()
		if err != nil {
			return fail(fmt.Errorf("tcpchan: rank %d reading hello from rank %d: %w", self, j, err))
		}
		rank, err := wire.CheckHello(f)
		if err != nil {
			return fail(fmt.Errorf("tcpchan: rank %d handshake with rank %d: %w", self, j, err))
		}
		if rank != j {
			return fail(fmt.Errorf("tcpchan: dialed rank %d but peer identifies as rank %d", j, rank))
		}
		if theta, ok := wire.HelloClock(f); ok {
			// Classic one-sample offset estimate: the peer stamped its
			// hello between our send and our receive, so compare it to
			// the exchange midpoint. Error is bounded by half the RTT.
			e.offsets[j] = theta - (t0.UnixNano()+t1.UnixNano())/2
		}
	}

	// Accept every higher rank, in whatever order they arrive.
	for need := n - 1 - self; need > 0; need-- {
		c, err := lis.Accept()
		if err != nil {
			return fail(fmt.Errorf("tcpchan: rank %d accepting: %w", self, err))
		}
		f, err := wire.ReadFrame(c)
		tRecv := time.Now()
		if err != nil {
			c.Close()
			return fail(fmt.Errorf("tcpchan: rank %d reading hello: %w", self, err))
		}
		rank, err := wire.CheckHello(f)
		if err != nil {
			c.Close()
			return fail(fmt.Errorf("tcpchan: rank %d handshake: %w", self, err))
		}
		if rank <= self || rank >= n || e.conns[rank] != nil {
			c.Close()
			return fail(fmt.Errorf("tcpchan: unexpected connection from rank %d at rank %d", rank, self))
		}
		if err := wire.WriteFrame(c, wire.HelloAt(self, time.Now().UnixNano())); err != nil {
			c.Close()
			return fail(fmt.Errorf("tcpchan: rank %d hello reply to rank %d: %w", self, rank, err))
		}
		if theta, ok := wire.HelloClock(f); ok {
			// One-way estimate: the peer's stamp predates our receipt by
			// the dial-side latency, so this is biased low by one-way
			// delay — tens of microseconds on loopback, good enough to
			// align merged wall-clock traces.
			e.offsets[rank] = theta - tRecv.UnixNano()
		}
		e.conns[rank] = &conn{c: c}
	}
	return e, nil
}

// ClockOffsets returns the estimated clock offset of every peer
// relative to this rank (peer clock minus local clock, nanoseconds;
// zero at self and for peers whose hello carried no stamp), measured
// during the hello exchange. On a single host the true offsets are
// near zero and the estimate's error is bounded by the connection
// round-trip; over a LAN it absorbs genuine wall-clock skew so merged
// traces still line up.
func (e *Endpoint) ClockOffsets() []int64 {
	return append([]int64(nil), e.offsets...)
}

// SetStats attaches a frame-statistics collector recording every frame
// this endpoint sends and receives (nil detaches). Call it before the
// mesh carries protocol traffic; the hello exchange is not counted.
func (e *Endpoint) SetStats(s *transport.FrameStats) {
	e.stats = s
}

// Self returns the local rank.
func (e *Endpoint) Self() int { return e.self }

// Peers returns the number of ranks in the mesh.
func (e *Endpoint) Peers() int { return len(e.conns) }

// Send delivers f to rank to. Sending to self enqueues the frame on
// the local dispatcher like any received frame, preserving the
// per-source order of a node's messages to itself.
func (e *Endpoint) Send(to int, f wire.Frame) error {
	if to < 0 || to >= len(e.conns) {
		return fmt.Errorf("tcpchan: send to invalid rank %d", to)
	}
	if e.stats != nil {
		e.stats.RecordSend(to, f)
	}
	if to == e.self {
		e.mu.Lock()
		if e.closed {
			e.mu.Unlock()
			return fmt.Errorf("tcpchan: endpoint is closed")
		}
		e.inbox = append(e.inbox, delivery{from: e.self, f: f})
		e.mu.Unlock()
		e.cond.Signal()
		return nil
	}
	pc := e.conns[to]
	pc.wm.Lock()
	err := wire.WriteFrame(pc.c, f)
	pc.wm.Unlock()
	if err != nil {
		return fmt.Errorf("tcpchan: send to rank %d: %w", to, err)
	}
	return nil
}

// SetHandler installs the frame handler and starts the per-peer reader
// goroutines and the single dispatcher. It must be called exactly
// once, before any peer sends protocol traffic.
func (e *Endpoint) SetHandler(h func(from int, f wire.Frame)) {
	e.mu.Lock()
	if e.started {
		e.mu.Unlock()
		panic("tcpchan: SetHandler called twice")
	}
	e.handler = h
	e.started = true
	e.done = make(chan struct{})
	e.mu.Unlock()
	for rank, pc := range e.conns {
		if pc == nil {
			continue
		}
		e.readers.Add(1)
		go e.readLoop(rank, pc)
	}
	go e.dispatch()
}

// readLoop decodes rank's stream into the shared inbox until the
// stream ends.
func (e *Endpoint) readLoop(rank int, pc *conn) {
	defer e.readers.Done()
	for {
		f, err := wire.ReadFrame(pc.c)
		if err != nil {
			e.mu.Lock()
			if !e.closed && e.failure == nil {
				e.failure = fmt.Errorf("tcpchan: stream from rank %d: %w", rank, err)
			}
			e.mu.Unlock()
			e.cond.Broadcast()
			return
		}
		e.mu.Lock()
		e.inbox = append(e.inbox, delivery{from: rank, f: f})
		e.mu.Unlock()
		e.cond.Signal()
	}
}

// dispatch runs the handler over the inbox in arrival order, one frame
// at a time.
func (e *Endpoint) dispatch() {
	defer close(e.done)
	for {
		e.mu.Lock()
		for len(e.inbox) == 0 && !e.closed {
			e.cond.Wait()
		}
		if len(e.inbox) == 0 && e.closed {
			e.mu.Unlock()
			return
		}
		batch := e.inbox
		e.inbox = nil
		e.mu.Unlock()
		for _, d := range batch {
			if e.stats != nil {
				e.stats.RecordRecv(d.from, d.f)
			}
			e.handler(d.from, d.f)
		}
	}
}

// Err returns the first stream failure observed by a reader, if any.
// A failure after Close (the expected shutdown path) is not recorded.
func (e *Endpoint) Err() error {
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.failure
}

// Close shuts the endpoint down: already-queued frames are delivered,
// the streams are closed, and the reader and dispatcher goroutines are
// joined. Close is idempotent.
func (e *Endpoint) Close() error {
	e.mu.Lock()
	if e.closed {
		started := e.started
		e.mu.Unlock()
		if started {
			<-e.done
		}
		return nil
	}
	e.closed = true
	started := e.started
	e.mu.Unlock()
	e.cond.Broadcast()
	if started {
		<-e.done
	}
	for _, pc := range e.conns {
		if pc != nil {
			pc.c.Close()
		}
	}
	if started {
		e.readers.Wait()
	}
	return nil
}
