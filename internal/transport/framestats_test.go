package transport

import (
	"reflect"
	"testing"

	"cashmere/internal/transport/wire"
)

func TestFrameStatsCounters(t *testing.T) {
	s := NewFrameStats(3)
	req := wire.Frame{Type: wire.TPageReq, A: 7, C: 1}
	s.RecordSend(1, req)
	s.RecordSend(1, req)
	s.RecordSend(2, wire.Frame{Type: wire.TDiff, A: 7, B: 9, Offs: []int32{0, 2}, Words: []int64{1, 2}})
	s.RecordRecv(1, wire.Frame{Type: wire.TPageReply, A: 7, C: 1, Words: make([]int64, 16)})

	snap := s.Snapshot()
	if snap.Peers != 3 {
		t.Errorf("Peers = %d, want 3", snap.Peers)
	}
	wantSent := []FlowCount{
		{Peer: 1, Type: "page-req", Frames: 2, Bytes: 2 * int64(wire.EncodedLen(req))},
		{Peer: 2, Type: "diff", Frames: 1, Bytes: int64(wire.EncodedLen(wire.Frame{Type: wire.TDiff, A: 7, B: 9, Offs: []int32{0, 2}, Words: []int64{1, 2}}))},
	}
	if !reflect.DeepEqual(snap.Sent, wantSent) {
		t.Errorf("Sent = %+v, want %+v", snap.Sent, wantSent)
	}
	if len(snap.Recv) != 1 || snap.Recv[0].Peer != 1 || snap.Recv[0].Type != "page-reply" || snap.Recv[0].Frames != 1 {
		t.Errorf("Recv = %+v", snap.Recv)
	}
}

func TestFrameStatsLatencyCorrelation(t *testing.T) {
	s := NewFrameStats(2)

	// Page fetch: request with a correlation id, matching reply.
	s.RecordSend(1, wire.Frame{Type: wire.TPageReq, A: 3, C: 42})
	s.RecordRecv(1, wire.Frame{Type: wire.TPageReply, A: 3, C: 42})
	// Mismatched id: no sample.
	s.RecordSend(1, wire.Frame{Type: wire.TPageReq, A: 4, C: 43})
	s.RecordRecv(1, wire.Frame{Type: wire.TPageReply, A: 4, C: 99})
	// Diff flush and lock grant, correlated by Frame.B.
	s.RecordSend(0, wire.Frame{Type: wire.TDiff, A: 5, B: 7})
	s.RecordRecv(0, wire.Frame{Type: wire.TFlushAck, A: 5, B: 7})
	s.RecordSend(0, wire.Frame{Type: wire.TLockReq, A: 0, B: 3})
	s.RecordRecv(0, wire.Frame{Type: wire.TLockGrant, A: 0, B: 3})

	snap := s.Snapshot()
	if snap.PageFetchNS.Count != 1 {
		t.Errorf("PageFetchNS.Count = %d, want 1 (mismatched ids must not correlate)", snap.PageFetchNS.Count)
	}
	if snap.FlushAckNS.Count != 1 {
		t.Errorf("FlushAckNS.Count = %d, want 1", snap.FlushAckNS.Count)
	}
	if snap.LockGrantNS.Count != 1 {
		t.Errorf("LockGrantNS.Count = %d, want 1", snap.LockGrantNS.Count)
	}
	if snap.PageFetchNS.Sum < 0 {
		t.Errorf("negative latency sum %d", snap.PageFetchNS.Sum)
	}
}

func TestFrameStatsZeroCorrelationIDSkipped(t *testing.T) {
	s := NewFrameStats(2)
	// A request without a correlation id (C == 0) must not enter the
	// pending map: a reply bearing C == 0 would otherwise match any
	// such request from that peer.
	s.RecordSend(1, wire.Frame{Type: wire.TPageReq, A: 3})
	s.RecordRecv(1, wire.Frame{Type: wire.TPageReply, A: 3})
	snap := s.Snapshot()
	if snap.PageFetchNS.Count != 0 {
		t.Errorf("uncorrelated request produced %d latency samples", snap.PageFetchNS.Count)
	}
	// The frames themselves still count.
	if len(snap.Sent) != 1 || snap.Sent[0].Frames != 1 {
		t.Errorf("Sent = %+v", snap.Sent)
	}
}

func TestFrameStatsOutOfRangePeer(t *testing.T) {
	s := NewFrameStats(2)
	// Out-of-range peers are dropped, not panicked on.
	s.RecordSend(-1, wire.Frame{Type: wire.THello})
	s.RecordSend(2, wire.Frame{Type: wire.THello})
	s.RecordRecv(5, wire.Frame{Type: wire.THello})
	if snap := s.Snapshot(); len(snap.Sent) != 0 || len(snap.Recv) != 0 {
		t.Errorf("out-of-range peers counted: %+v", snap)
	}
}

func TestFrameStatsSnapshotDeterministicOrder(t *testing.T) {
	s := NewFrameStats(4)
	// Record in scrambled peer/type order; the snapshot must come out
	// sorted by (peer, type code).
	s.RecordSend(3, wire.Frame{Type: wire.TBarArrive})
	s.RecordSend(1, wire.Frame{Type: wire.TDiff})
	s.RecordSend(1, wire.Frame{Type: wire.TPageReq, C: 1})
	s.RecordSend(0, wire.Frame{Type: wire.TFlagSet})
	snap := s.Snapshot()
	var got [][2]any
	for _, f := range snap.Sent {
		got = append(got, [2]any{f.Peer, f.Type})
	}
	want := [][2]any{
		{0, "flag-set"},
		{1, "diff"},
		{1, "page-req"},
		{3, "bar-arrive"},
	}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("Sent order = %v, want %v", got, want)
	}
}
