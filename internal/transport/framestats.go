package transport

import (
	"sync"
	"sync/atomic"
	"time"

	"cashmere/internal/trace"
	"cashmere/internal/transport/wire"
)

// FrameStats counts messenger traffic at the transport seam: per-peer,
// per-wire.Type frame and byte totals in each direction, plus
// request→reply wall-clock latency histograms for the three
// correlatable exchanges of the multi-process protocol:
//
//   - page fetch:  TPageReq → TPageReply, correlated by the request id
//     the sender places in Frame.C (the home echoes it back);
//   - diff flush:  TDiff → TFlushAck, correlated by the ack token in
//     Frame.B (already echoed by the protocol);
//   - lock grant:  TLockReq → TLockGrant, correlated by the requesting
//     global processor id in Frame.B (a processor has at most one lock
//     request outstanding). Grant latency includes predecessors' hold
//     time — it is the latency the application observes.
//
// Barrier waits are deliberately not correlated here: TBarRelease is a
// broadcast, not a reply, and the runtime's EvBarrier trace spans
// already measure the wait per processor.
//
// Byte totals use wire.EncodedLen — the exact on-the-wire size for the
// tcp backend and the canonical equivalent for the in-process shm mesh,
// so the two backends report comparable numbers.
//
// A backend with no attached FrameStats pays one nil check per frame.
// All counter updates are atomic; RecordSend and RecordRecv may be
// called from any goroutine. The latency correlation map is guarded by
// a mutex taken only for the three request/reply types above.
type FrameStats struct {
	epoch time.Time

	// counters[dir][peer][type] — dir 0 = sent, 1 = received.
	counters [2][][]countPair

	mu      sync.Mutex
	pending map[pendingKey]int64 // request send time, ns since epoch

	pageFetchNS trace.HistAcc
	flushAckNS  trace.HistAcc
	lockGrantNS trace.HistAcc
}

type countPair struct {
	frames atomic.Int64
	bytes  atomic.Int64
}

// numWireTypes bounds the per-type arrays; types at or beyond it are
// folded into the last slot so a future wire.Type cannot index out of
// range.
const numWireTypes = int(wire.TBye) + 2

type pendingKey struct {
	peer  int32
	class uint8
	id    int64
}

const (
	classPage uint8 = iota
	classFlush
	classLock
)

// NewFrameStats returns a collector for a mesh of peers ranks.
func NewFrameStats(peers int) *FrameStats {
	s := &FrameStats{epoch: time.Now(), pending: make(map[pendingKey]int64)}
	for d := range s.counters {
		s.counters[d] = make([][]countPair, peers)
		for p := range s.counters[d] {
			s.counters[d][p] = make([]countPair, numWireTypes)
		}
	}
	return s
}

func (s *FrameStats) nowNS() int64 { return time.Since(s.epoch).Nanoseconds() }

func typeSlot(t wire.Type) int {
	if int(t) >= numWireTypes {
		return numWireTypes - 1
	}
	return int(t)
}

// RecordSend accounts one frame sent to peer to.
func (s *FrameStats) RecordSend(to int, f wire.Frame) {
	if to < 0 || to >= len(s.counters[0]) {
		return
	}
	c := &s.counters[0][to][typeSlot(f.Type)]
	c.frames.Add(1)
	c.bytes.Add(int64(wire.EncodedLen(f)))

	var key pendingKey
	switch f.Type {
	case wire.TPageReq:
		if f.C == 0 {
			return // sender threads no correlation id
		}
		key = pendingKey{int32(to), classPage, f.C}
	case wire.TDiff:
		key = pendingKey{int32(to), classFlush, f.B}
	case wire.TLockReq:
		key = pendingKey{int32(to), classLock, f.B}
	default:
		return
	}
	now := s.nowNS()
	s.mu.Lock()
	s.pending[key] = now
	s.mu.Unlock()
}

// RecordRecv accounts one frame received from peer from.
func (s *FrameStats) RecordRecv(from int, f wire.Frame) {
	if from < 0 || from >= len(s.counters[1]) {
		return
	}
	c := &s.counters[1][from][typeSlot(f.Type)]
	c.frames.Add(1)
	c.bytes.Add(int64(wire.EncodedLen(f)))

	var key pendingKey
	var h *trace.HistAcc
	switch f.Type {
	case wire.TPageReply:
		if f.C == 0 {
			return
		}
		key, h = pendingKey{int32(from), classPage, f.C}, &s.pageFetchNS
	case wire.TFlushAck:
		key, h = pendingKey{int32(from), classFlush, f.B}, &s.flushAckNS
	case wire.TLockGrant:
		key, h = pendingKey{int32(from), classLock, f.B}, &s.lockGrantNS
	default:
		return
	}
	now := s.nowNS()
	s.mu.Lock()
	t0, ok := s.pending[key]
	if ok {
		delete(s.pending, key)
	}
	s.mu.Unlock()
	if ok {
		h.Add(now - t0)
	}
}

// FlowCount is one (peer, frame type) traffic total.
type FlowCount struct {
	Peer   int    `json:"peer"`
	Type   string `json:"type"`
	Frames int64  `json:"frames"`
	Bytes  int64  `json:"bytes"`
}

// MsgSnapshot is a point-in-time export of a FrameStats, shaped for
// JSON transport from a child process to the launcher and for the
// Prometheus encoder. Flow lists hold only nonzero entries, sorted by
// (peer, type code) so output is deterministic.
type MsgSnapshot struct {
	Peers int         `json:"peers"`
	Sent  []FlowCount `json:"sent,omitempty"`
	Recv  []FlowCount `json:"recv,omitempty"`

	// Request→reply wall latency distributions, nanoseconds.
	PageFetchNS trace.Hist `json:"page_fetch_ns"`
	FlushAckNS  trace.Hist `json:"flush_ack_ns"`
	LockGrantNS trace.Hist `json:"lock_grant_ns"`
}

// Snapshot exports the collector's current totals. It is safe to call
// while traffic is flowing; a mid-run snapshot is monitoring-grade (a
// frame recorded concurrently may or may not be included).
func (s *FrameStats) Snapshot() MsgSnapshot {
	out := MsgSnapshot{Peers: len(s.counters[0])}
	flows := func(d int) []FlowCount {
		var fl []FlowCount
		for p := range s.counters[d] {
			for t := range s.counters[d][p] {
				c := &s.counters[d][p][t]
				if n := c.frames.Load(); n != 0 {
					fl = append(fl, FlowCount{
						Peer: p, Type: wire.Type(t).String(),
						Frames: n, Bytes: c.bytes.Load(),
					})
				}
			}
		}
		return fl
	}
	out.Sent = flows(0)
	out.Recv = flows(1)
	out.PageFetchNS = s.pageFetchNS.Export()
	out.FlushAckNS = s.flushAckNS.Export()
	out.LockGrantNS = s.lockGrantNS.Export()
	return out
}
