package wnotice

import (
	"sort"
	"sync"
	"testing"
	"testing/quick"
)

func TestGlobalPostDrain(t *testing.T) {
	g := NewGlobal(4)
	g.Post(0, 10)
	g.Post(2, 20)
	g.Post(0, 11)
	if got := g.Pending(); got != 3 {
		t.Errorf("Pending = %d, want 3", got)
	}
	got := g.Drain()
	sort.Ints(got)
	want := []int{10, 11, 20}
	if len(got) != len(want) {
		t.Fatalf("Drain = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("Drain = %v, want %v", got, want)
		}
	}
	if g.Pending() != 0 {
		t.Errorf("Pending after drain = %d", g.Pending())
	}
	if out := g.Drain(); len(out) != 0 {
		t.Errorf("second Drain = %v", out)
	}
}

func TestGlobalPerBinOrder(t *testing.T) {
	g := NewGlobal(2)
	for i := 0; i < 10; i++ {
		g.Post(1, i)
	}
	got := g.Drain()
	for i := 0; i < 10; i++ {
		if got[i] != i {
			t.Fatalf("bin order violated: %v", got)
		}
	}
}

func TestGlobalConcurrentSenders(t *testing.T) {
	const senders = 8
	const per = 500
	g := NewGlobal(senders)
	var wg sync.WaitGroup
	for s := 0; s < senders; s++ {
		wg.Add(1)
		go func(s int) {
			defer wg.Done()
			for i := 0; i < per; i++ {
				g.Post(s, s*per+i)
			}
		}(s)
	}
	wg.Wait()
	got := g.Drain()
	if len(got) != senders*per {
		t.Fatalf("drained %d notices, want %d", len(got), senders*per)
	}
	seen := make(map[int]bool, len(got))
	for _, p := range got {
		if seen[p] {
			t.Fatalf("duplicate notice %d", p)
		}
		seen[p] = true
	}
}

func TestPerProcDedup(t *testing.T) {
	p := NewPerProc(128)
	if !p.Add(5) {
		t.Error("first Add returned false")
	}
	if p.Add(5) {
		t.Error("duplicate Add returned true")
	}
	if !p.Add(64) {
		t.Error("Add in second bitmap word returned false")
	}
	if !p.Has(5) || !p.Has(64) || p.Has(6) {
		t.Error("Has() wrong")
	}
	if p.Len() != 2 {
		t.Errorf("Len = %d, want 2", p.Len())
	}
	got := p.Flush()
	if len(got) != 2 || got[0] != 5 || got[1] != 64 {
		t.Errorf("Flush = %v, want [5 64]", got)
	}
	if p.Len() != 0 || p.Has(5) {
		t.Error("Flush did not clear state")
	}
	// After a flush the same page may be posted again.
	if !p.Add(5) {
		t.Error("Add after Flush returned false")
	}
}

func TestPerProcFlushEmpty(t *testing.T) {
	p := NewPerProc(10)
	if got := p.Flush(); got != nil {
		t.Errorf("Flush of empty list = %v", got)
	}
}

func TestPerProcConcurrent(t *testing.T) {
	p := NewPerProc(1024)
	var wg sync.WaitGroup
	var added sync.Map
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 1024; i++ {
				if p.Add(i) {
					if _, loaded := added.LoadOrStore(i, w); loaded {
						t.Errorf("page %d newly-added twice", i)
					}
				}
			}
		}(w)
	}
	wg.Wait()
	got := p.Flush()
	if len(got) != 1024 {
		t.Errorf("flushed %d pages, want 1024", len(got))
	}
}

func TestPerProcProperty(t *testing.T) {
	// Flushing always yields exactly the set of distinct pages added
	// since the previous flush.
	f := func(pages []uint8) bool {
		p := NewPerProc(256)
		want := map[int]bool{}
		for _, pg := range pages {
			p.Add(int(pg))
			want[int(pg)] = true
		}
		got := p.Flush()
		if len(got) != len(want) {
			return false
		}
		for _, pg := range got {
			if !want[pg] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestLocked(t *testing.T) {
	l := NewLocked()
	const lockCost = 11
	now := l.Post(100, 1, lockCost)
	if now != 111 {
		t.Errorf("Post time = %d, want 111", now)
	}
	// A poster arriving after the first critical section completed pays
	// only the lock cost.
	now2 := l.Post(200, 2, lockCost)
	if now2 != 211 {
		t.Errorf("second Post time = %d, want 211", now2)
	}
	pages, now3 := l.Drain(now2+5, lockCost)
	if now3 != now2+5+lockCost {
		t.Errorf("Drain time = %d, want %d", now3, now2+5+lockCost)
	}
	if len(pages) != 2 || pages[0] != 1 || pages[1] != 2 {
		t.Errorf("Drain pages = %v", pages)
	}
	pages, _ = l.Drain(now3, lockCost)
	if len(pages) != 0 {
		t.Errorf("second Drain = %v", pages)
	}
}

func TestDrainIsAtomicSnapshot(t *testing.T) {
	// A poster emits causally-ordered pairs: notice 2k to bin 0, then
	// notice 2k+1 to bin 1. A concurrent drainer must never observe the
	// second of a pair without having observed the first — that would
	// mean the drain split an in-flight post sequence, collecting a
	// causally-later notice while leaving its predecessor queued in a
	// lower-numbered bin. The pre-fix bin-at-a-time drain fails this.
	const pairs = 20000
	g := NewGlobal(2)
	done := make(chan struct{})
	go func() {
		defer close(done)
		for k := 0; k < pairs; k++ {
			g.Post(0, 2*k)
			g.Post(1, 2*k+1)
		}
	}()

	seen := make([]bool, 2*pairs)
	record := func(batch []int) {
		for _, page := range batch {
			if page%2 == 1 && !seen[page-1] {
				t.Fatalf("drain returned notice %d before its causal predecessor %d", page, page-1)
			}
			seen[page] = true
		}
	}
	for {
		select {
		case <-done:
			record(g.Drain())
			for page, ok := range seen {
				if !ok {
					t.Fatalf("notice %d lost", page)
				}
			}
			return
		default:
			record(g.Drain())
		}
	}
}

func TestSnapshotIsAtomic(t *testing.T) {
	// Same causal-pair discipline as TestDrainIsAtomicSnapshot, checked
	// on the non-draining read side: notice 2k goes to bin 0 strictly
	// before 2k+1 goes to bin 1, so any single Snapshot containing 2k+1
	// must also contain 2k. The pre-fix bin-at-a-time walk could read
	// bin 0 before the pair was posted and bin 1 after, returning the
	// later notice without its predecessor.
	const pairs = 10000
	g := NewGlobal(2)
	done := make(chan struct{})
	go func() {
		defer close(done)
		for k := 0; k < pairs; k++ {
			g.Post(0, 2*k)
			g.Post(1, 2*k+1)
		}
	}()
	check := func() {
		snap := g.Snapshot()
		have := make(map[int]bool, len(snap))
		for _, page := range snap {
			have[page] = true
		}
		for _, page := range snap {
			if page%2 == 1 && !have[page-1] {
				t.Fatalf("snapshot holds notice %d but not its causal predecessor %d", page, page-1)
			}
		}
	}
	for {
		select {
		case <-done:
			check()
			if n := g.Pending(); n != 2*pairs {
				t.Fatalf("Pending = %d after all posts, want %d", n, 2*pairs)
			}
			return
		default:
			check()
		}
	}
}
