// Package wnotice implements the write-notice lists of the Cashmere
// protocols (paper Section 2.3, Figure 4).
//
// A write notice tells a node that a page it shares has been modified
// elsewhere; notices take effect (as invalidations) at the next acquire.
// To avoid global locks, each node's globally-accessible list is split
// into bins, one per remote node, so that every bin has a single writer.
// On an acquire, a processor drains all bins and distributes the notices
// to the per-processor second-level lists of the local processors with
// mappings for the page.
//
// Per-processor lists pair a bitmap with a queue under a local (ll/sc
// class) lock: posting an already-present notice is a no-op, which keeps
// redundant notices from ballooning the queues.
//
// The same bitmap+queue structure serves the no-longer-exclusive (NLE)
// lists, which record pages a processor must start flushing because
// another node broke them out of exclusive mode.
//
// # Concurrency
//
// Global is safe for concurrent use by any mix of posters and a
// drainer: each bin has its own mutex, Post(b, ...) contends only with
// drains, and the single-writer-per-bin discipline means two Posts to
// one bin never race at the protocol level. Drain (and the Pending and
// Snapshot read-side helpers) lock every bin before touching any, so a
// drain is a single atomic snapshot with respect to concurrent posts. PerProc (and the NLE lists
// built on it) is also internally locked, but its intended sharing is
// narrower: remote processors Post under the owning node's big lock,
// and only the owning processor Flushes. Locked (the global-lock
// ablation's list) serializes every operation behind one sim.VLock and
// additionally models the lock's virtual-time cost.
package wnotice

import (
	"sync"

	"cashmere/internal/sim"
)

// Global is one node's globally-accessible write notice list: one bin
// per sending protocol node. Bin b is written only by node b, mirroring
// the single-writer discipline that removes the need for global locks.
type Global struct {
	bins []bin
}

type bin struct {
	mu    sync.Mutex
	pages []int
}

// NewGlobal returns a list accepting notices from senders protocol
// nodes.
func NewGlobal(senders int) *Global {
	return &Global{bins: make([]bin, senders)}
}

// Post appends a notice for page from sending node from. Notices from
// one sender are delivered in order; duplicates are filtered later at
// the per-processor lists.
func (g *Global) Post(from, page int) {
	b := &g.bins[from]
	b.mu.Lock()
	b.pages = append(b.pages, page)
	b.mu.Unlock()
}

// Drain removes and returns all queued notices across all bins, as one
// atomic snapshot: every bin is locked (in bin order) before any is
// read, so concurrent posts either land entirely before the drain or
// entirely after it. Draining bins one at a time instead would let a
// drain in flight collect a notice from a high-numbered bin while
// missing a causally-earlier one already posted to a lower-numbered bin
// the drainer had passed — the acquirer would then apply an
// invalidation without the one that preceded it. The result may contain
// duplicates.
func (g *Global) Drain() []int {
	for i := range g.bins {
		g.bins[i].mu.Lock()
	}
	var out []int
	for i := range g.bins {
		b := &g.bins[i]
		out = append(out, b.pages...)
		b.pages = b.pages[:0]
	}
	for i := range g.bins {
		g.bins[i].mu.Unlock()
	}
	return out
}

// Pending returns the total number of queued notices, counted under the
// same all-bins lock as Drain so the count is a consistent snapshot
// rather than a sum over moving bins.
func (g *Global) Pending() int {
	for i := range g.bins {
		g.bins[i].mu.Lock()
	}
	n := 0
	for i := range g.bins {
		n += len(g.bins[i].pages)
	}
	for i := range g.bins {
		g.bins[i].mu.Unlock()
	}
	return n
}

// Snapshot returns a copy of the queued notices across all bins, in bin
// order, without draining them, under the same all-bins lock as Drain.
// Intended for verification harnesses.
func (g *Global) Snapshot() []int {
	for i := range g.bins {
		g.bins[i].mu.Lock()
	}
	var out []int
	for i := range g.bins {
		out = append(out, g.bins[i].pages...)
	}
	for i := range g.bins {
		g.bins[i].mu.Unlock()
	}
	return out
}

// PerProc is a per-processor notice list: a bitmap plus a queue under a
// local lock. It serves both second-level write-notice lists and
// no-longer-exclusive lists.
type PerProc struct {
	mu     sync.Mutex
	bitmap []uint64
	queue  []int
}

// NewPerProc returns a list able to hold notices for pages pages.
func NewPerProc(pages int) *PerProc {
	return &PerProc{bitmap: make([]uint64, (pages+63)/64)}
}

// Add posts a notice for page. It reports whether the notice was newly
// enqueued (false when one was already pending, in which case no action
// was needed).
func (p *PerProc) Add(page int) bool {
	p.mu.Lock()
	defer p.mu.Unlock()
	w, b := page/64, uint64(1)<<(page%64)
	if p.bitmap[w]&b != 0 {
		return false
	}
	p.bitmap[w] |= b
	p.queue = append(p.queue, page)
	return true
}

// Flush drains the queue and clears the bitmap, returning the pending
// pages in posting order without duplicates.
func (p *PerProc) Flush() []int {
	p.mu.Lock()
	defer p.mu.Unlock()
	if len(p.queue) == 0 {
		return nil
	}
	out := make([]int, len(p.queue))
	copy(out, p.queue)
	p.queue = p.queue[:0]
	for i := range p.bitmap {
		p.bitmap[i] = 0
	}
	return out
}

// Len returns the number of pending notices.
func (p *PerProc) Len() int {
	p.mu.Lock()
	defer p.mu.Unlock()
	return len(p.queue)
}

// Has reports whether a notice for page is pending.
func (p *PerProc) Has(page int) bool {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.bitmap[page/64]&(uint64(1)<<(page%64)) != 0
}

// Locked is the Section 3.3.5 ablation variant: a single per-node list
// guarded by a cluster-wide global lock. Callers acquire the lock
// (paying the global lock latency), mutate, and release with their
// updated virtual time.
type Locked struct {
	lock  sim.VLock
	pages []int
}

// NewLocked returns an empty lock-based list.
func NewLocked() *Locked { return &Locked{} }

// Post appends a notice for page at virtual time now, returning the
// time after waiting for and holding the global lock.
func (l *Locked) Post(now int64, page int, lockCost int64) int64 {
	now = l.lock.Acquire(now, lockCost)
	l.pages = append(l.pages, page)
	l.lock.Release(now)
	return now
}

// Drain removes and returns all notices at virtual time now, returning
// the notices and the time after the locked traversal.
func (l *Locked) Drain(now int64, lockCost int64) ([]int, int64) {
	now = l.lock.Acquire(now, lockCost)
	out := make([]int, len(l.pages))
	copy(out, l.pages)
	l.pages = l.pages[:0]
	l.lock.Release(now)
	return out, now
}

// Pending returns the number of queued notices without charging
// virtual time. Intended for verification harnesses.
func (l *Locked) Pending() int { return len(l.pages) }

// Snapshot returns a copy of the queued notices without draining them
// or charging virtual time. Intended for verification harnesses.
func (l *Locked) Snapshot() []int {
	out := make([]int, len(l.pages))
	copy(out, l.pages)
	return out
}
