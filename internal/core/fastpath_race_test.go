package core

import (
	"fmt"
	"sync"
	"testing"
)

// TestRangeStoresSurviveConcurrentDowngrades drives the shared-access
// fast path through its hostile cases: every processor issues range
// stores and loads against pages the other processors are concurrently
// writing (false sharing), so software-TLB entries are invalidated by
// remote downgrades while accesses are in flight. Under 2LS those
// downgrades are shootdowns — the exact race the StoreRange drain
// handshake exists for — and the single-writer phase pushes a page into
// exclusive mode so the following all-writer phase breaks it mid-use.
// The program is data-race-free at word granularity (disjoint runs,
// barriers between conflicting phases), so every store must survive;
// run under `go test -race` this doubles as the memory-model check for
// the TLB and range-kernel synchronization.
func TestRangeStoresSurviveConcurrentDowngrades(t *testing.T) {
	const iters = 20
	for _, k := range allKinds {
		k := k
		t.Run(k.String(), func(t *testing.T) {
			t.Parallel()
			cfg := testConfig(k, 4, 2) // 8 procs, 16-word pages, 64 pages
			c, err := New(cfg)
			if err != nil {
				t.Fatal(err)
			}
			pw := cfg.PageWords
			np := cfg.Nodes * cfg.ProcsPerNode
			run := pw / np // disjoint words per proc within every page
			pages := c.Pages()
			val := func(it, id, page, j int) int64 {
				return int64(((it*64+id)*1024+page)*64 + j)
			}
			// Record only the first mismatch; a proc must keep running
			// to its barriers even after a failure or the others hang.
			var mu sync.Mutex
			var firstErr error
			report := func(format string, args ...any) {
				mu.Lock()
				if firstErr == nil {
					firstErr = fmt.Errorf(format, args...)
				}
				mu.Unlock()
			}
			c.Run(func(p *Proc) {
				id := p.ID()
				buf := make([]int64, run)
				for it := 0; it < iters; it++ {
					// Phase 1: all procs write their own run of every
					// page — maximal false sharing, concurrent
					// shootdowns under 2LS.
					for page := 0; page < pages; page++ {
						for j := range buf {
							buf[j] = val(it, id, page, j)
						}
						p.StoreRange(page*pw+id*run, buf)
					}
					p.Barrier()
					// Phase 2: read a neighbour's run back with the
					// range loader; the barrier made it visible.
					other := (id + 1) % np
					for page := 0; page < pages; page++ {
						p.LoadRange(buf, page*pw+other*run)
						for j, got := range buf {
							if want := val(it, other, page, j); got != want {
								report("%v it %d: page %d word %d of proc %d = %d, want %d",
									k, it, page, j, other, got, want)
							}
						}
					}
					p.Barrier()
					// Phase 3: proc 0 writes page 0 alone so repeated
					// single-writer intervals can promote it to
					// exclusive mode...
					if id == 0 {
						for j := range buf {
							buf[j] = val(it, 0, pages, j)
						}
						p.StoreRange(0, buf)
					}
					p.Barrier()
					// ...and then every proc writes it, breaking
					// exclusivity while ranges are in flight.
					for j := range buf {
						buf[j] = val(it, id, pages+1, j)
					}
					p.StoreRange(id*run, buf)
					p.Barrier()
				}
			})
			if firstErr != nil {
				t.Fatal(firstErr)
			}
			// Final state: the phase-4 runs of the last iteration on
			// page 0, the phase-1 runs everywhere else.
			for page := 0; page < pages; page++ {
				for id := 0; id < np; id++ {
					for j := 0; j < run; j++ {
						want := val(iters-1, id, page, j)
						if page == 0 {
							want = val(iters-1, id, pages+1, j)
						}
						if got := c.ReadShared(page*pw + id*run + j); got != want {
							t.Fatalf("%v: final page %d proc %d word %d = %d, want %d",
								k, page, id, j, got, want)
						}
					}
				}
			}
		})
	}
}
