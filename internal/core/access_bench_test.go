package core

import (
	"testing"
)

// Wall-clock microbenchmarks for the shared-access fast path: scalar
// Load/Store, the range kernels, and the write-doubling store path.
// These measure simulator overhead (host nanoseconds per simulated
// access), not virtual time; BENCH_access_fastpath.json at the repo
// root records before/after numbers for the fast-path PR.

// benchCluster builds a small cluster and returns processor 0, which
// the benchmark goroutine drives directly (a Proc is owned by one
// goroutine; any single goroutine may be the owner).
func benchCluster(b *testing.B, nodes int, kind Kind) (*Cluster, *Proc) {
	b.Helper()
	c, err := New(Config{
		Nodes:        nodes,
		ProcsPerNode: 1,
		Protocol:     kind,
		SharedWords:  64 * 1024,
	})
	if err != nil {
		b.Fatal(err)
	}
	return c, c.procs[0]
}

// touchAll maps every page at p with write permission so the benchmark
// loop measures only the no-fault fast path.
func touchAll(p *Proc) {
	for a := 0; a < p.Words(); a += p.PageWords() {
		p.Store(a, 1)
	}
}

func BenchmarkLoad(b *testing.B) {
	_, p := benchCluster(b, 1, TwoLevel)
	touchAll(p)
	mask := p.Words() - 1
	b.ResetTimer()
	var s int64
	for i := 0; i < b.N; i++ {
		s += p.Load(i & mask)
	}
	sinkInt64 = s
}

func BenchmarkStore(b *testing.B) {
	_, p := benchCluster(b, 1, TwoLevel)
	touchAll(p)
	mask := p.Words() - 1
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		p.Store(i&mask, int64(i))
	}
}

// BenchmarkStoreDoubling measures the 1L write-doubling store path: a
// two-node cluster where processor 0 writes a page homed on node 1, so
// every store propagates to the master copy.
func BenchmarkStoreDoubling(b *testing.B) {
	c, p := benchCluster(b, 2, OneLevelWrite)
	// Superpage 1 (pages 8..15) is homed on node 1 by the round-robin
	// default; writes there are doubled.
	base := 8 * c.PageWords()
	mask := c.PageWords() - 1
	p.Store(base, 1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		p.Store(base+(i&mask), int64(i))
	}
}

func BenchmarkLoadRange(b *testing.B) {
	_, p := benchCluster(b, 1, TwoLevel)
	touchAll(p)
	buf := make([]int64, p.PageWords())
	b.SetBytes(int64(len(buf)) * 8)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		p.LoadRange(buf, 0)
	}
}

func BenchmarkStoreRange(b *testing.B) {
	_, p := benchCluster(b, 1, TwoLevel)
	touchAll(p)
	buf := make([]int64, p.PageWords())
	b.SetBytes(int64(len(buf)) * 8)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		p.StoreRange(0, buf)
	}
}

// BenchmarkStoreRangeDoubling is BenchmarkStoreDoubling through the
// range kernel: every word still propagates to the master copy and is
// charged, but permission checks and accounting are per run.
func BenchmarkStoreRangeDoubling(b *testing.B) {
	c, p := benchCluster(b, 2, OneLevelWrite)
	base := 8 * c.PageWords()
	buf := make([]int64, c.PageWords())
	p.Store(base, 1)
	b.SetBytes(int64(len(buf)) * 8)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		p.StoreRange(base, buf)
	}
}

func BenchmarkLoadFRow(b *testing.B) {
	_, p := benchCluster(b, 1, TwoLevel)
	touchAll(p)
	buf := make([]float64, p.PageWords())
	b.SetBytes(int64(len(buf)) * 8)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		p.LoadFRow(buf, 0)
	}
}

var sinkInt64 int64
