package core

import (
	"testing"

	"cashmere/internal/directory"
)

// Minimized regression tests for the protocol bugs the model checker
// (internal/modelcheck) flushed out, driving the harness through the
// exact transition sequences of the minimized counterexamples. Each
// test also flips the matching injection knob to prove it discriminates:
// reverting the fix makes the assertion fail. See docs/MODELCHECK.md.

// TestExclusiveReleaseDropsTwin is the minimized counterexample for the
// stale-twin bug: a one-level release that moves a page into exclusive
// mode (Section 2.6) must drop the twin. The flush just before the
// transition left the twin equal to the master, so keeping it lets
// exclusive-mode writes diverge from it; after a later break — which
// flushes the frame but keeps an existing twin — the stale twin
// misclassifies already-flushed words as unreleased local writes, and
// the incoming-diff merge then destroys remote updates.
func TestExclusiveReleaseDropsTwin(t *testing.T) {
	c, err := New(testConfig(OneLevelDiff, 2, 2))
	if err != nil {
		t.Fatal(err)
	}
	h := c.Harness()
	node := h.ProtoNodeOf(3) // every proc is its own protocol node

	h.Write(3, 0, 7)
	if st := h.PageState(node, 0); !st.HasTwin {
		t.Fatal("write fault did not create a twin")
	}
	h.Release(3)
	st := h.PageState(node, 0)
	if _, ok := h.Layout().Excl(st.OwnWord); !ok {
		t.Fatal("sole-sharer release did not enter exclusive mode")
	}
	if st.HasTwin {
		t.Error("page entered exclusive mode with its twin retained")
	}
	// The exclusive data must still reach a later reader via a break.
	h.BreakExclusive(0, 0)
	h.Acquire(0)
	if got := h.Read(0, 0); got != 7 {
		t.Errorf("reader after break sees %d, want 7", got)
	}

	// The injected defect restores the old behavior, so this test fails
	// if the fix is reverted.
	SetInjectedDefectForTest(DefectKeepExclusiveTwin, true)
	defer SetInjectedDefectForTest(DefectKeepExclusiveTwin, false)
	c2, err := New(testConfig(OneLevelDiff, 2, 2))
	if err != nil {
		t.Fatal(err)
	}
	h2 := c2.Harness()
	h2.Write(3, 0, 7)
	h2.Release(3)
	if st := h2.PageState(node, 0); !st.HasTwin {
		t.Error("defect injection did not retain the twin (knob broken?)")
	}
}

// TestExclusiveRejoinRepublishesWord is the minimized counterexample
// for the silent-rejoin bug: a one-level page re-enters exclusive mode
// at a release after a break downgraded the holder's mapping to
// read-only, so the republished word records ro. A later write fault
// joins the exclusively-held page intra-node ("alreadyExcl") and must
// republish the directory word at rw — leaving it at ro makes the
// global directory disagree with the local page table.
func TestExclusiveRejoinRepublishesWord(t *testing.T) {
	run := func(h *Harness) directory.Word {
		h.Write(3, 0, 7)
		h.Release(3)           // enters exclusive at rw
		h.BreakExclusive(0, 0) // downgrades proc 3's mapping to ro
		h.Release(3)           // re-enters exclusive, word records ro
		h.Write(3, 0, 8)       // joins exclusively, local table back to rw
		return h.PageState(h.ProtoNodeOf(3), 0).OwnWord
	}

	c, err := New(testConfig(OneLevelDiff, 2, 2))
	if err != nil {
		t.Fatal(err)
	}
	w := run(c.Harness())
	lay := c.Harness().Layout()
	if _, ok := lay.Excl(w); !ok {
		t.Fatal("page not exclusive after rejoin")
	}
	if got := lay.Perm(w); got != directory.ReadWrite {
		t.Errorf("directory word records %v after an exclusive rw rejoin, want rw", got)
	}

	SetInjectedDefectForTest(DefectSkipExclusiveRepublish, true)
	defer SetInjectedDefectForTest(DefectSkipExclusiveRepublish, false)
	c2, err := New(testConfig(OneLevelDiff, 2, 2))
	if err != nil {
		t.Fatal(err)
	}
	if got := lay.Perm(run(c2.Harness())); got != directory.ReadOnly {
		t.Errorf("defect injection left word at %v, want the stale ro (knob broken?)", got)
	}
}

// TestStaleMappingQueuesSelfNotice is the minimized counterexample for
// the lost-invalidation bug: a fault that maps a copy predating a write
// notice the node already drained must queue a self-notice, because the
// drain only distributed the invalidation to the processors mapped at
// drain time. Without it the late-mapping processor's next acquire
// invalidates nothing and the stale data survives past the
// synchronization point.
func TestStaleMappingQueuesSelfNotice(t *testing.T) {
	run := func(h *Harness) int64 {
		h.Read(3, 0)      // node 1 maps the page
		h.Write(0, 0, 42) // home write: master holds 42
		h.Release(0)      // flush posts a notice to node 1
		h.Acquire(3)      // drain invalidates p3's mapping only
		h.Read(2, 0)      // p2 maps the node's stale frame
		h.Acquire(2)      // must invalidate via the self-notice
		return h.Read(2, 0)
	}

	c, err := New(testConfig(TwoLevel, 2, 2))
	if err != nil {
		t.Fatal(err)
	}
	if got := run(c.Harness()); got != 42 {
		t.Errorf("p2 reads %d after its acquire, want 42", got)
	}

	SetInjectedDefectForTest(DefectDropStaleMapNotice, true)
	defer SetInjectedDefectForTest(DefectDropStaleMapNotice, false)
	c2, err := New(testConfig(TwoLevel, 2, 2))
	if err != nil {
		t.Fatal(err)
	}
	if got := run(c2.Harness()); got != 0 {
		t.Errorf("defect injection: p2 reads %d, want the stale 0 (knob broken?)", got)
	}
}
