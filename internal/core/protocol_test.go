package core

import (
	"testing"

	"cashmere/internal/costs"
	"cashmere/internal/directory"
	"cashmere/internal/stats"
)

// Tests of finer-grained protocol behaviours and edge cases, separate
// from the end-to-end coherence tests in core_test.go.

func TestWarmupEpochIsUncharged(t *testing.T) {
	c, err := New(testConfig(TwoLevel, 2, 2))
	if err != nil {
		t.Fatal(err)
	}
	res := c.Run(func(p *Proc) {
		p.BeginInit()
		if p.ID() == 0 {
			for i := 0; i < 16*8; i++ {
				p.Store(i, int64(i))
			}
		}
		p.EndInit()
		p.Warmup(func() {
			// Touch remote pages: faults and fetches happen for real
			// but charge nothing.
			for i := 0; i < 16*8; i += 16 {
				p.Load(i)
			}
		})
	})
	// Real protocol events occurred...
	if res.Counts[stats.ReadFaults] == 0 && res.Counts[stats.WriteFaults] == 0 {
		t.Error("no faults recorded during init/warmup")
	}
	// ...but only barrier costs reached the clocks.
	if res.Time[stats.Protocol] > 5e6 {
		t.Errorf("excessive protocol time charged around uncharged epochs: %d", res.Time[stats.Protocol])
	}
	if res.Time[stats.CommWait] > int64(20)*costs.Default().Barrier32Proc2L {
		t.Errorf("excessive comm/wait charged during uncharged epochs: %d", res.Time[stats.CommWait])
	}
}

func TestChargingOutsideInitEpochs(t *testing.T) {
	// Programs that never use the init markers charge from the start.
	c, err := New(testConfig(TwoLevel, 2, 1))
	if err != nil {
		t.Fatal(err)
	}
	res := c.Run(func(p *Proc) {
		if p.ID() == 0 {
			p.Store(0, 1)
		}
		p.Barrier()
		p.Load(0)
	})
	if res.Time[stats.Protocol] == 0 {
		t.Error("no protocol time charged outside init epochs")
	}
}

func TestSuperpageSharesHome(t *testing.T) {
	// All pages of a superpage must relocate together on first touch
	// (the paper's Memory Channel mapping-table constraint).
	cfg := testConfig(TwoLevel, 2, 1)
	cfg.SuperpagePages = 4
	c, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	c.Run(func(p *Proc) {
		p.BeginInit()
		if p.ID() == 0 {
			for i := 0; i < 16*8; i++ {
				p.Store(i, 1)
			}
		}
		p.EndInit()
		if p.ID() == 1 { // node 1 touches ONE page of superpage 0
			p.Load(0)
		}
		p.Barrier()
	})
	// The whole superpage's home moved with the single touch.
	home0, _ := c.homeOf(0)
	for page := 1; page < 4; page++ {
		if h, _ := c.homeOf(page); h != home0 {
			t.Errorf("page %d home %d differs from superpage leader %d", page, h, home0)
		}
	}
	if home0 != 1 {
		t.Errorf("superpage 0 homed on node %d, want first toucher's node 1", home0)
	}
}

func TestTwoLevelSharingSetIsSticky(t *testing.T) {
	// Under 2L, a node invalidated at an acquire stays in the sharing
	// set (Section 2.6 gives self-removal only to the one-level
	// protocols) — the mechanism behind Table 3's near-zero exclusive
	// transitions for barrier applications.
	c, err := New(testConfig(TwoLevel, 2, 1))
	if err != nil {
		t.Fatal(err)
	}
	res := c.Run(func(p *Proc) {
		p.BeginInit()
		p.EndInit()
		for round := 0; round < 6; round++ {
			if p.ID() == 0 {
				p.Store(0, int64(round))
			}
			p.Barrier()
			if p.ID() == 1 {
				if got := p.Load(0); got != int64(round) {
					t.Errorf("round %d: read %d", round, got)
				}
			}
			p.Barrier()
		}
	})
	// At most the initial enter/leave pair; no per-round cycling.
	if res.Counts[stats.ExclTransitions] > 3 {
		t.Errorf("exclusive transitions = %d; sharing set not sticky",
			res.Counts[stats.ExclTransitions])
	}
}

func TestOneLevelSharingSetSelfRemoval(t *testing.T) {
	// One-level protocols remove themselves at acquires, so the same
	// pattern does cycle through exclusive mode.
	c, err := New(testConfig(OneLevelDiff, 4, 1))
	if err != nil {
		t.Fatal(err)
	}
	// Page 16 (superpage 2) homes on protocol node 2; the writer and
	// reader are both remote. Once the reader stops touching the page,
	// its acquire-time self-removal leaves the writer as sole sharer
	// and the writer's next release moves the page into exclusive mode.
	const addr = 16 * 16
	res := c.Run(func(p *Proc) {
		for round := 0; round < 8; round++ {
			if p.ID() == 0 {
				p.Store(addr, int64(round))
			}
			p.Barrier()
			if p.ID() == 1 && round < 2 {
				if got := p.Load(addr); got != int64(round) {
					t.Errorf("round %d: read %d", round, got)
				}
			}
			p.Barrier()
		}
	})
	if res.Counts[stats.ExclTransitions] < 1 {
		t.Errorf("exclusive transitions = %d; expected cycling under 1LD",
			res.Counts[stats.ExclTransitions])
	}
}

func TestReadSharedExclusivePage(t *testing.T) {
	// ReadShared must return an exclusive holder's (possibly
	// unflushed) frame contents.
	c, err := New(testConfig(TwoLevel, 2, 1))
	if err != nil {
		t.Fatal(err)
	}
	c.Run(func(p *Proc) {
		if p.ID() == 1 {
			// Page 32 is homed on node 0 (superpage round-robin), so
			// node 1 holds it exclusive with a private frame whose
			// master copy is stale.
			p.Store(32*16, 777)
		}
	})
	if got := c.ReadShared(32 * 16); got != 777 {
		t.Errorf("ReadShared of exclusive page = %d, want 777", got)
	}
}

func TestReadSharedExclusiveNonZeroNode(t *testing.T) {
	// A page left in exclusive mode by a processor on a non-zero node
	// must be found through the holder's own directory replica: the
	// directory region has no loop-back, so only the owner's doubled
	// copy of its word is authoritative, and a scan pinned to replica 0
	// trusts broadcast delivery it has no right to assume.
	t.Run("2L", func(t *testing.T) {
		c, err := New(testConfig(TwoLevel, 4, 2))
		if err != nil {
			t.Fatal(err)
		}
		c.Run(func(p *Proc) {
			if p.ID() == 7 {
				// Page 40 is homed on node 0; the sole writer lives on
				// node 3, which takes the page exclusive with a private
				// frame and a stale master copy.
				p.Store(40*16, 4242)
			}
		})
		if got := c.ReadShared(40 * 16); got != 4242 {
			t.Errorf("ReadShared of node-3 exclusive page = %d, want 4242", got)
		}
	})
	t.Run("1LD", func(t *testing.T) {
		// One-level protocols map protocol nodes to processors, so the
		// holder's word lives on a physical node derived from the
		// proc-to-SMP mapping rather than the protocol node index.
		c, err := New(testConfig(OneLevelDiff, 2, 2))
		if err != nil {
			t.Fatal(err)
		}
		c.Run(func(p *Proc) {
			if p.ID() == 3 {
				p.Lock(0)
				p.Store(40*16, 555)
				p.Unlock(0) // release with no sharers: enters exclusive
				p.Store(40*16, 556)
			}
		})
		if got := c.ReadShared(40 * 16); got != 556 {
			t.Errorf("ReadShared of proc-3 exclusive page = %d, want 556", got)
		}
	})
}

func TestWriteNoticesExcludeHomeAndAliased(t *testing.T) {
	// A release sends notices to sharing nodes but never to nodes
	// reading the master copy directly.
	c, err := New(testConfig(TwoLevel, 4, 1))
	if err != nil {
		t.Fatal(err)
	}
	res := c.Run(func(p *Proc) {
		// Page 0 homes on node 0. Everyone maps it; node 1 writes.
		p.Load(0)
		p.Barrier()
		if p.ID() == 1 {
			p.Store(0, 5)
		}
		p.Barrier()
		if got := p.Load(0); got != 5 {
			t.Errorf("proc %d reads %d", p.ID(), got)
		}
		p.Barrier()
	})
	// Notices go to nodes 2 and 3 only (node 0 is home/aliased, node 1
	// is the writer): per flush of page 0, exactly 2 notices.
	if n := res.Counts[stats.WriteNotices]; n < 2 || n > 8 {
		t.Errorf("WriteNotices = %d, want a small count excluding home", n)
	}
}

func TestBreakdownComponentsPartitionExecTime(t *testing.T) {
	// Per processor, the five breakdown components must sum to the
	// finishing time (the Figure 6 invariant).
	c, err := New(testConfig(TwoLevel, 2, 2))
	if err != nil {
		t.Fatal(err)
	}
	type snap struct {
		sum, fin int64
	}
	out := make(chan snap, 4)
	c.Run(func(p *Proc) {
		p.Store(p.ID()*16, 1)
		p.Compute(1000, 100)
		p.Poll()
		p.Barrier()
		p.Load(((p.ID() + 1) % 4) * 16)
		st := p.Stats()
		var sum int64
		for _, v := range st.Time {
			sum += v
		}
		out <- snap{sum, p.Now()}
	})
	for i := 0; i < 4; i++ {
		s := <-out
		if s.sum != s.fin {
			t.Errorf("components sum to %d but clock reads %d", s.sum, s.fin)
		}
	}
}

func TestPageWordsVariants(t *testing.T) {
	// The protocol must work at unusual coherence block sizes.
	for _, pw := range []int{8, 100, 1024} {
		cfg := testConfig(TwoLevel, 2, 2)
		cfg.PageWords = pw
		cfg.SharedWords = pw * 10
		c, err := New(cfg)
		if err != nil {
			t.Fatal(err)
		}
		c.Run(func(p *Proc) {
			p.Store(p.ID()*pw, int64(p.ID()))
			p.Barrier()
			for i := 0; i < 4; i++ {
				if got := p.Load(i * pw); got != int64(i) {
					t.Errorf("pw=%d: proc %d reads %d, want %d", pw, p.ID(), got, i)
					return
				}
			}
		})
	}
}

func TestDirectoryWordsReflectProtocolState(t *testing.T) {
	c, err := New(testConfig(TwoLevel, 2, 2))
	if err != nil {
		t.Fatal(err)
	}
	c.Run(func(p *Proc) {
		if p.ID() == 0 {
			p.Store(0, 9) // no other sharer: exclusive on node 0
		}
		p.Barrier()
		if p.ID() == 0 {
			w := c.dir.Load(0, 0, 0)
			if _, ok := c.lay.Excl(w); !ok {
				t.Error("directory word missing exclusive holder")
			}
			if c.lay.Perm(w) != directory.ReadWrite {
				t.Errorf("directory perm = %v, want rw", c.lay.Perm(w))
			}
		}
		p.Barrier()
		if p.ID() == 2 {
			p.Load(0) // breaks exclusivity
		}
		p.Barrier()
		if p.ID() == 0 {
			if _, _, ok := c.dir.ExclHolder(0, 0); ok {
				t.Error("exclusive holder survives a remote read")
			}
		}
	})
}

func TestFlagsAreReleaseAcquirePairs(t *testing.T) {
	// Data written before SetFlag must be visible after WaitFlag even
	// with no other synchronization, for every protocol.
	for _, k := range allKinds {
		c, err := New(testConfig(k, 4, 2))
		if err != nil {
			t.Fatal(err)
		}
		c.Run(func(p *Proc) {
			switch {
			case p.ID() == 0:
				for i := 0; i < 64; i++ {
					p.Store(i, int64(i*i))
				}
				p.SetFlag(0)
			default:
				p.WaitFlag(0)
				for i := 0; i < 64; i++ {
					if got := p.Load(i); got != int64(i*i) {
						t.Errorf("%v: proc %d flag read %d = %d", k, p.ID(), i, got)
						return
					}
				}
			}
		})
	}
}

func TestManyLocksManyPages(t *testing.T) {
	// Stress: independent counters under independent locks across many
	// pages and all protocols.
	for _, k := range allKinds {
		cfg := testConfig(k, 4, 2)
		cfg.Locks = 4
		c, err := New(cfg)
		if err != nil {
			t.Fatal(err)
		}
		c.Run(func(p *Proc) {
			for i := 0; i < 8; i++ {
				l := (p.ID() + i) % 4
				p.Lock(l)
				addr := l * 16
				p.Store(addr, p.Load(addr)+1)
				p.Unlock(l)
			}
			p.Barrier()
			total := int64(0)
			for l := 0; l < 4; l++ {
				total += p.Load(l * 16)
			}
			if total != int64(8*c.NumProcs()) {
				t.Errorf("%v: total = %d, want %d", k, total, 8*c.NumProcs())
			}
		})
	}
}

func TestInterleavedReadersAndWriters(t *testing.T) {
	// Rotating single-writer/multi-reader ownership of one page across
	// all nodes over many rounds.
	for _, k := range allKinds {
		c, err := New(testConfig(k, 4, 2))
		if err != nil {
			t.Fatal(err)
		}
		n := c.NumProcs()
		c.Run(func(p *Proc) {
			for round := 0; round < 2*n; round++ {
				if round%n == p.ID() {
					p.Store(3, int64(round))
				}
				p.Barrier()
				if got := p.Load(3); got != int64(round) {
					t.Errorf("%v: proc %d round %d reads %d", k, p.ID(), round, got)
					return
				}
				p.Barrier()
			}
		})
	}
}
