package core

import (
	"fmt"

	"cashmere/internal/directory"
)

// Verification harness (used by internal/modelcheck).
//
// The model checker explores interleavings of the protocol's atomic
// transitions — the operations that appear as single steps in the
// paper's protocol description: faults, release flushes, acquire-side
// notice drains, exclusive-mode breaks, and the two halves of a
// barrier. Each transition already runs to completion under the owning
// node's mutex, so executing them one at a time from a single
// controlling goroutine explores exactly the protocol-level
// interleavings while keeping every run deterministic and replayable.
//
// Harness methods call the same unexported protocol routines the
// application-facing entry points use (acquireActions, releaseActions,
// flushForBarrier, maybeBreakExclusive); nothing is re-implemented.
// The only decomposition is the barrier: Barrier's arrival half (flush
// under the last-arriving-local-writer rule) and departure half
// (acquire-side consistency actions) are exposed as separate steps with
// the rendezvous enforced by the scheduler instead of a blocking wait,
// which lets the checker interleave other processors' operations
// between arrivals — a strict superset of the schedules the blocking
// barrier admits.

// Harness exposes the protocol's atomic transitions and internal state
// to the verification layer. Obtain one with Cluster.Harness. All
// methods must be called from a single goroutine, with no application
// body running (i.e. outside Cluster.Run); they are not safe for
// concurrent use.
type Harness struct {
	c *Cluster
}

// Harness returns the cluster's verification harness.
func (c *Cluster) Harness() *Harness { return &Harness{c: c} }

// Cluster returns the underlying cluster.
func (h *Harness) Cluster() *Cluster { return h.c }

func (h *Harness) proc(i int) *Proc { return h.c.procs[i] }

// Read performs a shared read of addr on processor proc, servicing any
// read fault (page fetch, exclusive break, refetch) exactly as the
// application fast path would.
func (h *Harness) Read(proc, addr int) int64 { return h.proc(proc).Load(addr) }

// Write performs a shared write of addr on processor proc, servicing
// any write fault (twinning, exclusive entry, write doubling) exactly
// as the application fast path would.
func (h *Harness) Write(proc, addr int, v int64) { h.proc(proc).Store(addr, v) }

// Acquire performs processor proc's acquire-side consistency actions:
// draining the node's global write-notice bins, distributing notices to
// local per-processor lists, and invalidating stale mappings (Section
// 2.4.2). It is the consistency half of Lock/WaitFlag, without the
// synchronization object.
func (h *Harness) Acquire(proc int) { h.proc(proc).acquireActions() }

// Release performs processor proc's release-side consistency actions:
// flushing dirty and no-longer-exclusive pages to their homes and
// sending write notices to sharing nodes (Section 2.4.3). It is the
// consistency half of Unlock/SetFlag, without the synchronization
// object.
func (h *Harness) Release(proc int) { h.proc(proc).releaseActions() }

// BreakExclusive checks the directory for an exclusive holder of page
// on a node other than proc's and, if found, performs the explicit-
// request exchange breaking the page out of exclusive mode on proc's
// behalf. It reports whether a break was performed. This is the same
// transition a fault on proc would trigger first; exposing it
// separately lets a schedule break exclusive mode without the
// subsequent map-in.
func (h *Harness) BreakExclusive(proc, page int) bool {
	return h.proc(proc).maybeBreakExclusive(page)
}

// BarrierArrive performs the arrival half of Barrier for processor
// proc: draining doubled writes, marking the processor arrived, and
// flushing the dirty pages for which it is the last arriving local
// writer (earlier arrivals delegate via no-longer-exclusive notices).
// The caller is responsible for the rendezvous: every processor must
// arrive before any departs, and an arrived processor must perform no
// other operation until its BarrierDepart.
func (h *Harness) BarrierArrive(proc int) {
	p := h.proc(proc)
	n := p.n
	p.drainDoubled()
	n.mu.Lock()
	n.lclock.Tick()
	releaseStart := n.lclock.Now()
	n.arrived[p.local] = true
	p.flushForBarrier(releaseStart)
	n.mu.Unlock()
}

// BarrierDepart performs the departure half of Barrier for processor
// proc, releasing it at virtual time release (the caller computes
// max arrival time + BarrierCost, as the blocking rendezvous would) and
// running the departure-side acquire actions.
func (h *Harness) BarrierDepart(proc int, release int64) {
	p := h.proc(proc)
	p.chargeWait(release)
	n := p.n
	n.mu.Lock()
	n.arrived[p.local] = false
	n.mu.Unlock()
	p.acquireActions()
}

// BarrierCost returns the modeled cost of one barrier episode, the
// value the blocking rendezvous adds to the latest arrival time.
func (h *Harness) BarrierCost() int64 {
	return h.c.model.Barrier(len(h.c.procs), h.c.cfg.Protocol.TwoLevelFamily())
}

// PageMode returns page's current adaptive coherence mode.
func (h *Harness) PageMode(page int) PageMode { return h.c.pageModeOf(page) }

// SetPageMode switches page's coherence mode on processor proc's
// behalf (the policy engine's SetMode transition), reporting whether
// the mode changed.
func (h *Harness) SetPageMode(proc, page int, mode PageMode) bool {
	return (&PolicyActions{c: h.c, p: h.proc(proc)}).SetMode(page, mode)
}

// Replicate performs the broadcast-replication transition for page on
// processor proc's behalf (see PolicyActions.Replicate).
func (h *Harness) Replicate(proc, page int) bool {
	return (&PolicyActions{c: h.c, p: h.proc(proc)}).Replicate(page)
}

// MigrateHomeTo migrates page's superpage home to processor proc's
// protocol node on proc's behalf (see PolicyActions.MigrateHome).
func (h *Harness) MigrateHomeTo(proc, page int) bool {
	return (&PolicyActions{c: h.c, p: h.proc(proc)}).MigrateHome(page, proc)
}

// Clock returns processor proc's current virtual time.
func (h *Harness) Clock(proc int) int64 { return h.proc(proc).clk.Now() }

// ProtoNodes returns the number of protocol nodes (physical nodes under
// the two-level protocols, processors under the one-level ones).
func (h *Harness) ProtoNodes() int { return len(h.c.nodes) }

// ProtoNodeOf returns the protocol node hosting processor proc.
func (h *Harness) ProtoNodeOf(proc int) int { return h.c.protoOfProc(proc) }

// Directory returns the cluster's global directory.
func (h *Harness) Directory() *directory.Global { return h.c.dir }

// Layout returns the directory word layout in use.
func (h *Harness) Layout() directory.Layout { return h.c.lay }

// Master returns a copy of page's master copy (the home node's Memory
// Channel receive region).
func (h *Harness) Master(page int) []int64 {
	src := h.c.masters[page]
	out := make([]int64, len(src))
	copy(out, src)
	return out
}

// HomeOf returns the protocol node currently serving as page's home.
func (h *Harness) HomeOf(page int) int {
	pn, _ := h.c.homeOf(page)
	return pn
}

// SetFirstTouch enables or disables first-touch home relocation, the
// state EndInit normally switches on. The harness flips it directly so
// schedules can cover the home-migration paths without the barrier
// pair EndInit requires.
func (h *Harness) SetFirstTouch(on bool) { h.c.initFlag.Store(on) }

// PendingNotices returns the number of write notices queued in protocol
// node node's globally-accessible list (or the lock-based list under
// that ablation).
func (h *Harness) PendingNotices(node int) int {
	n := h.c.nodes[node]
	if n.wnLocked != nil {
		return n.wnLocked.Pending()
	}
	return n.gwn.Pending()
}

// QueuedNotices returns a snapshot of the pages with write notices
// queued for protocol node node, in bin order.
func (h *Harness) QueuedNotices(node int) []int {
	n := h.c.nodes[node]
	if n.wnLocked != nil {
		return n.wnLocked.Snapshot()
	}
	return n.gwn.Snapshot()
}

// ProcNotices returns the pages pending on processor proc's
// second-level write-notice list.
func (h *Harness) ProcNotices(proc int) int { return h.proc(proc).pwn.Len() }

// PageState is a read-only snapshot of one protocol node's view of one
// page, for invariant checking.
type PageState struct {
	HasFrame bool    // the node holds a local copy
	Aliased  bool    // the local frame is the master copy itself
	HasTwin  bool    // a twin tracks local modifications
	Frame    []int64 // copy of the local frame (nil when absent)
	Twin     []int64 // copy of the twin (nil when absent)

	// Perms holds each local processor's page-table permission.
	Perms []directory.Perm

	// The three per-page logical timestamps of Section 2.3.
	FlushTS, UpdateTS, WnTS int64

	// OwnWord is the node's own directory word for the page, read
	// through the node's own replica (the authoritative copy).
	OwnWord directory.Word
}

// PageState snapshots protocol node node's state for page. It must not
// race with a running transition (see the Harness contract).
func (h *Harness) PageState(node, page int) PageState {
	n := h.c.nodes[node]
	st := PageState{
		Perms:    make([]directory.Perm, n.vm.Procs()),
		FlushTS:  n.meta[page].flushTS,
		UpdateTS: n.meta[page].updateTS,
		WnTS:     n.meta[page].wnTS,
		OwnWord:  h.c.dir.Load(node, page, node),
	}
	for i := range st.Perms {
		st.Perms[i] = n.vm.Proc(i).Get(page)
	}
	if f := n.frames[page].p.Load(); f != nil {
		st.HasFrame = true
		st.Aliased = n.frames[page].aliased.Load()
		st.Frame = make([]int64, len(*f))
		copy(st.Frame, *f)
	}
	if tw := n.twins[page]; tw != nil {
		st.HasTwin = true
		st.Twin = make([]int64, len(tw))
		copy(st.Twin, tw)
	}
	return st
}

// LocalProcs returns the global processor ids hosted on protocol node
// node.
func (h *Harness) LocalProcs(node int) []int {
	var out []int
	for _, p := range h.c.nodes[node].procs {
		out = append(out, p.global)
	}
	return out
}

// String describes the cluster shape, for counterexample headers.
func (h *Harness) String() string {
	c := h.c
	return fmt.Sprintf("%s %d:%d, %d pages x %d words, layout %s",
		c.cfg.Protocol, len(c.procs), c.cfg.ProcsPerNode, c.pages, c.cfg.PageWords,
		map[bool]string{true: "wide", false: "packed"}[c.lay.Wide()])
}
