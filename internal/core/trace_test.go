package core

import (
	"testing"

	"cashmere/internal/trace"
)

func TestParseTracePages(t *testing.T) {
	good := []struct {
		in   string
		want []int
	}{
		{"7", []int{7}},
		{"0", []int{0}},
		{"7,12,40", []int{7, 12, 40}},
		{" 7 , 12 ", []int{7, 12}},
	}
	for _, c := range good {
		pages, err := parseTracePages(c.in)
		if err != nil {
			t.Errorf("parseTracePages(%q): %v", c.in, err)
			continue
		}
		if len(pages) != len(c.want) {
			t.Errorf("parseTracePages(%q) = %v, want %v", c.in, pages, c.want)
			continue
		}
		for _, p := range c.want {
			if !pages[p] {
				t.Errorf("parseTracePages(%q) missing page %d", c.in, p)
			}
		}
	}

	for _, in := range []string{"", "x", "7,", "7,,12", "7;12", "-1", "7,-2"} {
		if pages, err := parseTracePages(in); err == nil {
			t.Errorf("parseTracePages(%q) = %v, want error", in, pages)
		}
	}
}

// TestNewClampsTracedPages: page numbers beyond the cluster's page
// count are removed from the tracer's filter (with a stderr warning)
// instead of silently never matching.
func TestNewClampsTracedPages(t *testing.T) {
	cfg := testConfig(TwoLevel, 2, 2)
	pages := cfg.SharedWords / cfg.PageWords
	tr := trace.New(trace.Config{
		Procs: cfg.Nodes * cfg.ProcsPerNode,
		Links: cfg.Nodes,
		Pages: map[int]bool{0: true, pages - 1: true, pages: true, pages + 7: true},
	})
	cfg.Trace = tr
	c, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if c.Tracer() != tr {
		t.Fatal("cluster did not adopt the supplied tracer")
	}
	if !tr.TracesPage(0) || !tr.TracesPage(pages-1) {
		t.Error("in-range pages dropped from the filter")
	}
	if tr.TracesPage(pages) || tr.TracesPage(pages+7) {
		t.Error("out-of-range pages survived New")
	}
}

// TestNewRejectsUndersizedTracer: a tracer with too few rings for the
// cluster is a configuration error, not a silent partial trace.
func TestNewRejectsUndersizedTracer(t *testing.T) {
	cfg := testConfig(TwoLevel, 2, 2)
	cfg.Trace = trace.New(trace.Config{Procs: 1, Links: 2})
	if _, err := New(cfg); err == nil {
		t.Error("tracer with 1 proc ring accepted for a 4-proc cluster")
	}
	cfg.Trace = trace.New(trace.Config{Procs: 4, Links: 1})
	if _, err := New(cfg); err == nil {
		t.Error("tracer with 1 link ring accepted for a 2-node cluster")
	}
}
