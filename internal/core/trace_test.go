package core

import "testing"

func TestParseTracePages(t *testing.T) {
	good := []struct {
		in   string
		want []int
	}{
		{"7", []int{7}},
		{"0", []int{0}},
		{"7,12,40", []int{7, 12, 40}},
		{" 7 , 12 ", []int{7, 12}},
	}
	for _, c := range good {
		pages, err := parseTracePages(c.in)
		if err != nil {
			t.Errorf("parseTracePages(%q): %v", c.in, err)
			continue
		}
		if len(pages) != len(c.want) {
			t.Errorf("parseTracePages(%q) = %v, want %v", c.in, pages, c.want)
			continue
		}
		for _, p := range c.want {
			if !pages[p] {
				t.Errorf("parseTracePages(%q) missing page %d", c.in, p)
			}
		}
	}

	for _, in := range []string{"", "x", "7,", "7,,12", "7;12", "-1", "7,-2"} {
		if pages, err := parseTracePages(in); err == nil {
			t.Errorf("parseTracePages(%q) = %v, want error", in, pages)
		}
	}
}
