package core

import "sync/atomic"

// Historical protocol defects, deliberately re-introducible so the model
// checker's own tests can prove each one still produces a replayable
// counterexample (see docs/MODELCHECK.md). Every defect here was found
// by the checker, fixed, and is guarded by a regression test; the
// injection switches exist only for that validation and must stay off
// everywhere else.
//
// The switches are process-global: they gate code running under node
// mutexes, and the checker drives clusters from a single goroutine, so
// plain atomics are enough.

// Defect names accepted by SetInjectedDefectForTest.
const (
	// DefectKeepExclusiveTwin suppresses dropping the twin when a
	// one-level protocol moves a page into exclusive mode at a release.
	// The retained twin goes stale across exclusive-era writes and, after
	// a break, misclassifies already-flushed words as unreleased local
	// writes — a later release then pushes stale data over newer remote
	// writes.
	DefectKeepExclusiveTwin = "keep-exclusive-twin"
	// DefectDropStaleMapNotice suppresses the self-notice queued when a
	// fault maps a page copy that predates an already-drained write
	// notice. Processors unmapped at drain time then never learn of the
	// invalidation and can keep reading the stale copy past their next
	// acquire.
	DefectDropStaleMapNotice = "drop-stale-map-notice"
	// DefectSkipExclusiveRepublish suppresses republishing the directory
	// word when a write fault joins a page its node already holds
	// exclusively. After a one-level release re-enters exclusive mode
	// with only read-only mappings, the word then understates the node's
	// access.
	DefectSkipExclusiveRepublish = "skip-exclusive-republish"
)

var injectedDefects struct {
	keepExclusiveTwin      atomic.Bool
	dropStaleMapNotice     atomic.Bool
	skipExclusiveRepublish atomic.Bool
}

// SetInjectedDefectForTest enables or disables one named defect. It
// panics on an unknown name so a misspelled test cannot silently
// validate nothing.
func SetInjectedDefectForTest(name string, on bool) {
	switch name {
	case DefectKeepExclusiveTwin:
		injectedDefects.keepExclusiveTwin.Store(on)
	case DefectDropStaleMapNotice:
		injectedDefects.dropStaleMapNotice.Store(on)
	case DefectSkipExclusiveRepublish:
		injectedDefects.skipExclusiveRepublish.Store(on)
	default:
		panic("core: unknown injected defect " + name)
	}
}
