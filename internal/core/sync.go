package core

import (
	"cashmere/internal/diff"
	"cashmere/internal/directory"
	"cashmere/internal/stats"
	"cashmere/internal/trace"
)

// Synchronization entry points and the consistency actions they trigger
// (paper Sections 2.4.2 and 2.4.3).
//
// Releases flush the processor's dirty and no-longer-exclusive pages to
// their home nodes and send write notices to sharing nodes. Acquires
// drain the node's global write-notice bins, distribute the notices to
// the per-processor lists of locally-mapped processors, and invalidate
// the acquirer's mappings for pages whose update timestamp precedes
// their write-notice timestamp.

// Lock acquires application lock i, then performs acquire-side
// consistency actions.
func (p *Proc) Lock(i int) {
	c := p.c
	begin := p.clk.Now()
	cost := c.model.LockAcquire(c.cfg.Protocol.TwoLevelFamily())
	held := c.locks[i].Acquire(p.n.phys, p.clk.Now(), cost)
	p.chargeProtocol(cost)
	p.chargeWait(held)
	p.st.Inc(stats.LockAcquires)
	p.acquireActions()
	p.emitSpan(trace.EvLock, -1, begin, int64(i), 0)
}

// Unlock performs release-side consistency actions, then releases
// application lock i.
func (p *Proc) Unlock(i int) {
	begin := p.clk.Now()
	p.releaseActions()
	p.c.locks[i].Release(p.n.phys, p.clk.Now())
	p.emitSpan(trace.EvUnlock, -1, begin, int64(i), 0)
}

// SetFlag performs release-side consistency actions and raises flag i.
func (p *Proc) SetFlag(i int) {
	begin := p.clk.Now()
	p.releaseActions()
	p.c.flags[i].Set(p.n.phys, p.clk.Now())
	p.emitSpan(trace.EvFlagSet, -1, begin, int64(i), 0)
}

// WaitFlag blocks until flag i is raised, then performs acquire-side
// consistency actions. Under an adaptive policy engine, waiters that
// were blocked when the flag was raised — who all resume at the same
// virtual time — run their acquire actions serially in descending
// global processor id (the deterministic tie-break for the equal-time
// wakeup; see msync.Flag.WaitOrdered), with the done handle releasing
// the next waiter. That removes the Gauss/2L+A bistability the
// decision gate exposes (docs/ADAPTIVE.md). The non-adaptive
// protocols keep the free broadcast wakeup whose schedule the golden
// paper configurations were pinned under.
func (p *Proc) WaitFlag(i int) {
	begin := p.clk.Now()
	id := -1 // opt out of the wakeup ordering
	if p.c.cfg.Adaptive != nil {
		id = p.global
	}
	t, done := p.c.flags[i].WaitOrdered(p.clk.Now(), id)
	p.chargeWait(t)
	p.st.Inc(stats.LockAcquires)
	p.acquireActions()
	done()
	p.emitLink(trace.EvMsgDeliver, t, -1, int64(i), 0)
	p.emitSpan(trace.EvFlagWait, -1, begin, int64(i), 0)
}

// FlagSet reports whether flag i has been raised (without acquiring).
func (p *Proc) FlagSet(i int) bool { return p.c.flags[i].IsSet() }

// ResetFlag returns flag i to the unset state at the caller's current
// virtual time. No processor may be waiting on the flag, and the reset
// must be separated from any re-raise by application synchronization.
func (p *Proc) ResetFlag(i int) {
	p.c.flags[i].Reset(p.n.phys, p.clk.Now())
}

// Barrier synchronizes all processors. On arrival each processor
// flushes the dirty pages for which it is the last arriving local
// writer (earlier arrivers delegate via no-longer-exclusive notices, so
// a page shared by several local writers is flushed exactly once); the
// departure phase performs acquire-side consistency actions.
func (p *Proc) Barrier() {
	c := p.c
	n := p.n
	begin := p.clk.Now()
	p.drainDoubled()

	n.mu.Lock()
	n.lclock.Tick()
	releaseStart := n.lclock.Now()
	n.arrived[p.local] = true
	p.flushForBarrier(releaseStart)
	n.mu.Unlock()

	if p.global == 0 {
		p.st.Inc(stats.Barriers)
	}
	released := c.bar.Wait(p.clk.Now())
	p.chargeWait(released)

	if c.cfg.Adaptive != nil {
		// Decision epoch: every processor is protocol-quiescent between
		// the rendezvous above and the decision gate, so processor 0's
		// policy transitions run against a stopped cluster.
		p.decidePolicyEpoch()
	}

	n.mu.Lock()
	n.arrived[p.local] = false
	n.mu.Unlock()

	p.acquireActions()
	p.emitSpan(trace.EvBarrier, -1, begin, 0, 0)
}

// flushForBarrier applies the last-arriving-local-writer rule to the
// processor's dirty and NLE pages. Called with p.n.mu held.
func (p *Proc) flushForBarrier(releaseStart int64) {
	n := p.n
	work := p.nle.Flush()
	work = append(work, p.dirty...)
	for _, page := range work {
		if w := p.pendingWriter(page); w >= 0 {
			p.trace(page, "barrier delegate -> local %d", w)
			// A local writer has not arrived yet; it flushes for all
			// of us (initiating a flush now would only force it to
			// flush again).
			n.procs[w].nle.Add(page)
			// Still give up our own write permission so our next
			// write is trapped.
			p.downgradeAfterFlush(page)
			continue
		}
		p.flushPage(page, releaseStart)
	}
	p.clearDirty()
}

// pendingWriter returns a local processor (other than p) that holds a
// write mapping for page and has not arrived at the current barrier, or
// -1 if none. Called with p.n.mu held.
func (p *Proc) pendingWriter(page int) int {
	n := p.n
	for l := 0; l < n.vm.Procs(); l++ {
		if l == p.local || n.arrived[l] {
			continue
		}
		if n.vm.Proc(l).Get(page) == directory.ReadWrite {
			return l
		}
	}
	return -1
}

// BeginInit marks the start of the program initialization epoch: until
// the matching EndInit, protocol operations run normally but charge no
// virtual time (the paper's full-length executions amortize
// initialization; a scaled-down problem would otherwise be dominated by
// it). Every processor must call it.
func (p *Proc) BeginInit() {
	p.Barrier()
	if p.global == 0 {
		p.c.charging.Store(false)
	}
	p.Barrier()
}

// EndInit marks the end of program initialization: charging resumes and
// pages touched from here on have their homes relocated to the first
// toucher (Section 2.3). Every processor must call it.
func (p *Proc) EndInit() {
	p.Barrier()
	if p.global == 0 {
		p.c.initFlag.Store(true)
		p.c.charging.Store(true)
	}
	p.Barrier()
}

// Warmup runs f on every processor with virtual-time charging
// suspended: applications touch their working sets once so that
// first-touch relocation and the initial fetch/exclusive-break storm
// happen outside the measured region, following the SPLASH methodology
// of excluding cold-start from timing. Every processor must call it.
func (p *Proc) Warmup(f func()) {
	p.Barrier()
	if p.global == 0 {
		p.c.charging.Store(false)
	}
	p.Barrier()
	f()
	p.Barrier()
	if p.global == 0 {
		p.c.charging.Store(true)
	}
	p.Barrier()
}

// releaseActions implements the release operation of Section 2.4.3.
func (p *Proc) releaseActions() {
	n := p.n
	p.drainDoubled()

	n.mu.Lock()
	n.lclock.Tick()
	releaseStart := n.lclock.Now()
	for _, page := range p.nle.Flush() {
		p.flushPage(page, releaseStart)
	}
	for _, page := range p.dirty {
		p.flushPage(page, releaseStart)
	}
	p.clearDirty()
	n.mu.Unlock()
}

// flushPage flushes one dirty page to its home and sends write notices
// to sharing nodes. Called with p.n.mu held.
func (p *Proc) flushPage(page int, releaseStart int64) {
	c := p.c
	n := p.n
	meta := &n.meta[page]

	if _, excl := p.c.lay.Excl(p.ownWord(page)); excl {
		p.trace(page, "flush skipped: exclusive")
		return // exclusive pages incur no coherence overhead
	}
	if meta.flushTS > releaseStart {
		p.trace(page, "flush skipped: flushTS=%d > relStart=%d", meta.flushTS, releaseStart)
		// A flush that began after this release began already covers
		// our modifications (overlapping-release rule).
		return
	}
	framePtr := n.frames[page].p.Load()
	if framePtr == nil {
		return
	}
	frame := *framePtr

	// Frames that alias the master copy (home node, home-opt) write
	// through directly and need no data flush; private frames flush
	// their twin-tracked modifications to the master.
	aliased := n.frames[page].aliased.Load()
	if !aliased && n.twins[page] != nil {
		n.wbuf = n.vm.Writers(page, n.wbuf[:0])
		concurrent := false
		for _, w := range n.wbuf {
			if w != p.local {
				concurrent = true
			}
		}
		changed, lo, hi := diff.FlushUpdateRange(frame, n.twins[page], c.masters[page])
		p.trace(page, "flush-update: %d words", changed)
		if ap := c.cfg.Adaptive; ap != nil {
			ap.NoteFlush(page, p.global, changed)
		}
		if changed > 0 {
			p.st.Inc(stats.PageFlushes)
			if concurrent {
				p.st.Inc(stats.FlushUpdates)
			}
			p.flushBytes(page, changed, lo, hi)
		}
		meta.flushTS = n.lclock.Tick()
	}

	// One-level protocols move a page with no other sharers into
	// exclusive mode at a release (Section 2.6); it then stops
	// participating in coherence transactions entirely. Exclusive pages
	// have no twin: the flush-update above left the twin equal to the
	// master, and keeping it would let exclusive-mode writes silently
	// diverge from it — after a later break (which flushes the frame but
	// sees an existing twin) the stale twin would misclassify those
	// already-flushed words as unreleased local writes.
	if !c.cfg.Protocol.TwoLevelFamily() && !aliased &&
		c.dir.Sharers(n.id, page, n.id) == 0 {
		if !injectedDefects.keepExclusiveTwin.Load() {
			n.dropTwin(page)
		}
		p.st.Inc(stats.ExclTransitions)
		p.publishOwnWord(page, p.global)
		return
	}

	// Send write notices to every sharing node except ourselves and
	// nodes working on the master copy directly (the home and home-opt
	// aliases receive the data itself, paper Section 2.4.3).
	for x := range c.nodes {
		if x == n.id {
			continue
		}
		if c.lay.Perm(c.dir.Load(n.id, page, x)) == directory.Invalid {
			continue
		}
		if c.nodes[x].frames[page].aliased.Load() {
			continue
		}
		p.trace(page, "notice -> node %d", x)
		p.postNotice(x, page)
		p.emit(trace.EvNoticeSend, page, int64(x), 0)
	}

	p.downgradeAfterFlush(page)
}

// downgradeAfterFlush removes p's write permission for page so future
// modifications are trapped. Called with p.n.mu held.
func (p *Proc) downgradeAfterFlush(page int) {
	if p.table.Get(page) != directory.ReadWrite {
		return
	}
	p.table.Set(page, directory.ReadOnly)
	p.chargeProtocol(p.c.model.MProtect)
	if p.n.vm.Loosest(page) != directory.ReadWrite {
		p.publishOwnWord(page, -1)
	}
}

// postNotice delivers a write notice for page to node x.
func (p *Proc) postNotice(x, page int) {
	c := p.c
	if c.cfg.LockBasedMeta {
		t := c.nodes[x].wnLocked.Post(p.clk.Now(), page, c.model.GlobalLock)
		p.chargeWait(t)
	} else {
		c.nodes[x].gwn.Post(p.n.id, page)
		p.chargeProtocol(c.model.DirectoryUpdate)
	}
	p.st.Inc(stats.WriteNotices)
	p.st.Data(wordBytes)
}

// acquireActions implements the acquire operation of Section 2.4.2.
func (p *Proc) acquireActions() {
	c := p.c
	n := p.n
	p.drainDoubled()

	n.mu.Lock()
	n.lclock.Tick()
	p.acquireTS = n.lclock.Now()

	var notices []int
	if c.cfg.LockBasedMeta {
		var t int64
		notices, t = n.wnLocked.Drain(p.clk.Now(), c.model.GlobalLock)
		p.chargeWait(t)
	} else {
		notices = n.gwn.Drain()
	}
	for _, page := range notices {
		n.meta[page].wnTS = n.lclock.Now()
		if n.frames[page].aliased.Load() {
			continue // master alias is never stale
		}
		n.wbuf = n.vm.Mapped(page, n.wbuf[:0])
		for _, l := range n.wbuf {
			n.procs[l].pwn.Add(page)
		}
		p.chargeProtocol(c.model.LLSC)
	}

	for _, page := range p.pwn.Flush() {
		meta := &n.meta[page]
		if meta.updateTS >= meta.wnTS {
			continue // already updated by another local processor
		}
		if _, excl := p.c.lay.Excl(p.ownWord(page)); excl {
			continue
		}
		if c.pageModeOf(page) != ModeInvalidate && p.refreshPage(page) {
			// Write-update mode: the notice was serviced by refreshing
			// the frame in place; every local mapping stays valid.
			continue
		}
		if p.table.Get(page) == directory.Invalid {
			continue
		}
		p.trace(page, "acquire invalidate: updTS=%d wnTS=%d", meta.updateTS, meta.wnTS)
		p.table.Set(page, directory.Invalid)
		p.chargeProtocol(c.model.MProtect)
		p.emit(trace.EvNoticeApply, page, 0, 0)
		if !c.cfg.Protocol.TwoLevelFamily() && n.vm.Loosest(page) == directory.Invalid {
			// Only the one-level protocols remove themselves from the
			// sharing set at an acquire (Section 2.6). Cashmere-2L
			// keeps the node in the set even with no valid mappings —
			// this is what makes exclusive-mode transitions rare
			// (Table 3 shows zero for SOR): a node that shared a page
			// once keeps receiving notices instead of cycling the page
			// in and out of exclusive mode.
			p.publishOwnWord(page, -1)
		}
	}
	n.mu.Unlock()
}
