package core

import (
	"math/rand"
	"testing"
)

// TestRandomDRFPrograms generates random barrier-synchronized
// data-race-free programs and checks every read against a sequential
// model, under every protocol. Each round assigns every address a
// unique writer, so programs are DRF by construction while still
// producing arbitrary page-level multi-writer false sharing.
func TestRandomDRFPrograms(t *testing.T) {
	const (
		words  = 16 * 24 // 24 pages of 16 words
		rounds = 6
		writes = 40
		reads  = 60
	)
	for _, k := range allKinds {
		for seed := int64(1); seed <= 3; seed++ {
			// Build the script and its sequential model up front so
			// all processors agree on it.
			rng := rand.New(rand.NewSource(seed))
			model := make([]int64, words)
			type op struct{ addr, proc int }
			script := make([][]op, rounds) // writes per round
			checks := make([][]op, rounds) // reads per round
			for r := 0; r < rounds; r++ {
				perm := rng.Perm(words)
				for w := 0; w < writes; w++ {
					script[r] = append(script[r], op{perm[w], rng.Intn(16)})
				}
				for c := 0; c < reads; c++ {
					checks[r] = append(checks[r], op{rng.Intn(words), rng.Intn(16)})
				}
			}
			expected := make([][]int64, rounds)
			for r := 0; r < rounds; r++ {
				for _, o := range script[r] {
					model[o.addr] = int64(1000*r + o.addr)
				}
				expected[r] = append([]int64(nil), model...)
			}

			c, err := New(Config{
				Nodes: 4, ProcsPerNode: 4, Protocol: k,
				PageWords: 16, SharedWords: words,
			})
			if err != nil {
				t.Fatal(err)
			}
			c.Run(func(p *Proc) {
				for r := 0; r < rounds; r++ {
					for _, o := range script[r] {
						if o.proc == p.ID() {
							p.Store(o.addr, int64(1000*r+o.addr))
						}
					}
					p.Barrier()
					for _, o := range checks[r] {
						if o.proc != p.ID() {
							continue
						}
						if got := p.Load(o.addr); got != expected[r][o.addr] {
							t.Errorf("%v seed %d round %d: proc %d read [%d] = %d, want %d",
								k, seed, r, p.ID(), o.addr, got, expected[r][o.addr])
							return
						}
					}
					p.Barrier()
				}
			})
			if t.Failed() {
				return
			}
			// Post-run, the master copies (or exclusive frames) must
			// hold the final model state.
			for addr, want := range expected[rounds-1] {
				if got := c.ReadShared(addr); got != want {
					t.Fatalf("%v seed %d: final memory [%d] = %d, want %d",
						k, seed, addr, got, want)
				}
			}
		}
	}
}
