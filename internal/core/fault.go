package core

import (
	"runtime"

	"cashmere/internal/diff"
	"cashmere/internal/directory"
	"cashmere/internal/stats"
	"cashmere/internal/trace"
)

// Page fault handling (paper Section 2.4.1).
//
// The access fast path consults the processor's software page table; a
// missing permission lands here. A read fault maps the page, fetching a
// fresh copy from the home node when the local copy is missing or stale
// (its update timestamp precedes both its write-notice timestamp and the
// processor's acquire timestamp). A write fault additionally creates a
// twin and a dirty-list entry when other nodes share the page, or moves
// the page into exclusive mode when they don't.

// readFault services a read access violation on page, recording the
// fault's virtual-time span when tracing is on.
func (p *Proc) readFault(page int) {
	if p.ring == nil {
		p.doReadFault(page)
		return
	}
	begin := p.clk.Now()
	p.doReadFault(page)
	p.emitSpan(trace.EvReadFault, page, begin, 0, 0)
}

func (p *Proc) doReadFault(page int) {
	p.trace(page, "readFault")
	p.st.Inc(stats.ReadFaults)
	p.chargeProtocol(p.c.model.PageFault)
	if ap := p.c.cfg.Adaptive; ap != nil {
		ap.NoteReadFault(page, p.global)
	}
	p.drainDoubled()
	p.maybeFirstTouch(page)

	for {
		if p.maybeBreakExclusive(page) {
			continue
		}
		n := p.n
		n.mu.Lock()
		if p.table.CanRead(page) {
			n.mu.Unlock()
			return // resolved by a concurrent local fault
		}
		if !p.ensureCurrentLocked(page) {
			n.mu.Unlock()
			continue // raced with a new exclusive holder
		}
		wasInvalid := n.vm.Loosest(page) == directory.Invalid
		p.table.Set(page, directory.ReadOnly)
		p.chargeProtocol(p.c.model.MProtect)
		if wasInvalid {
			excl := -1
			if e, ok := p.c.lay.Excl(p.ownWord(page)); ok {
				excl = e
			}
			p.publishOwnWord(page, excl)
		}
		n.mu.Unlock()
		return
	}
}

// writeFault services a write access violation on page, recording the
// fault's virtual-time span when tracing is on.
func (p *Proc) writeFault(page int) {
	if p.ring == nil {
		p.doWriteFault(page)
		return
	}
	begin := p.clk.Now()
	p.doWriteFault(page)
	p.emitSpan(trace.EvWriteFault, page, begin, 0, 0)
}

func (p *Proc) doWriteFault(page int) {
	p.trace(page, "writeFault")
	p.st.Inc(stats.WriteFaults)
	p.chargeProtocol(p.c.model.PageFault)
	if ap := p.c.cfg.Adaptive; ap != nil {
		ap.NoteWriteFault(page, p.global)
	}
	p.maybeDemoteBroadcast(page)
	p.drainDoubled()
	p.maybeFirstTouch(page)

	for {
		if p.maybeBreakExclusive(page) {
			continue
		}
		n := p.n
		n.mu.Lock()
		if p.table.CanWrite(page) {
			n.mu.Unlock()
			return
		}
		if !p.ensureCurrentLocked(page) {
			n.mu.Unlock()
			continue
		}

		own := p.ownWord(page)
		_, alreadyExcl := p.c.lay.Excl(own)

		switch {
		case alreadyExcl:
			// This node holds the page exclusively; intra-node hardware
			// coherence lets us join for free. The directory word must
			// still be republished when our mapping loosens the node's
			// summary (the one-level protocols re-enter exclusive mode at
			// a release after a break downgraded every local mapping to
			// read-only, so the exclusive word can record ro) — read
			// faults do the same when they raise the summary out of
			// Invalid.
			wasLoosest := n.vm.Loosest(page)
			p.table.Set(page, directory.ReadWrite)
			p.chargeProtocol(p.c.model.MProtect)
			if wasLoosest != directory.ReadWrite && !injectedDefects.skipExclusiveRepublish.Load() {
				e, _ := p.c.lay.Excl(own)
				p.publishOwnWord(page, e)
			}

		case p.c.cfg.Protocol.TwoLevelFamily() && p.c.dir.Sharers(n.id, page, n.id) == 0:
			// No other node is sharing: enter exclusive mode. The
			// page incurs no further coherence overhead — no twin,
			// no dirty-list entry, no flushes or notices — until
			// another node breaks it out (Section 2.4.1).
			p.trace(page, "enter exclusive")
			n.dropTwin(page) // exclusive pages have no twin
			p.table.Set(page, directory.ReadWrite)
			p.chargeProtocol(p.c.model.MProtect)
			p.st.Inc(stats.ExclTransitions)
			p.emit(trace.EvExclEnter, page, 0, 0)
			p.publishOwnWord(page, p.global)

		default:
			// Actively shared: track modifications for the next
			// release.
			p.markDirty(page)
			if p.needsTwin(page) && n.twins[page] == nil {
				frame := *n.frames[page].p.Load()
				n.twins[page] = n.newTwin(frame)
				p.st.Inc(stats.TwinCreations)
				p.chargeProtocol(p.c.model.Twin)
				p.emit(trace.EvTwin, page, int64(p.c.cfg.PageWords), 0)
			}
			wasLoosest := n.vm.Loosest(page)
			p.table.Set(page, directory.ReadWrite)
			p.chargeProtocol(p.c.model.MProtect)
			if wasLoosest != directory.ReadWrite {
				p.publishOwnWord(page, -1)
			}
		}
		n.mu.Unlock()
		return
	}
}

// needsTwin reports whether p's node maintains a twin for a shared,
// writable page: yes except when the frame aliases the master copy
// (home node, or a home-opt alias — writes land in the master directly)
// and except under the write-doubling protocol, which propagates writes
// eagerly instead. Must be called after ensureCurrentLocked has settled
// the frame's aliasing.
func (p *Proc) needsTwin(page int) bool {
	if p.c.cfg.Protocol == OneLevelWrite {
		return false
	}
	return !p.n.frames[page].aliased.Load()
}

// ensureCurrentLocked makes the node's copy of page resident and
// current, fetching from the home node if necessary. It must be called
// with p.n.mu held. It returns false if the caller must retry because an
// exclusive holder elsewhere was discovered.
func (p *Proc) ensureCurrentLocked(page int) bool {
	c := p.c
	n := p.n

	if holder, _, ok := c.dir.ExclHolder(n.id, page); ok && holder != n.id {
		return false
	}

	homeProto, _ := c.homeOf(page)
	slot := &n.frames[page]
	meta := &n.meta[page]

	if p.isHomeLike(homeProto) {
		if slot.aliased.Load() {
			return true // already working on the master copy
		}
		f := slot.p.Load()
		// A home-like node normally maps the master copy directly. A
		// private frame can exist here only transiently, after a
		// first-touch relocation made us home: adopt the master once no
		// local writer is still working on the private frame (the
		// aliased bit, not home identity, drives flush and notice
		// decisions, so falling through to the diff-based path below
		// stays correct in the interim).
		if f == nil || !n.vm.HasWriters(page) {
			// Preserve any data the private frame holds that the
			// master lacks before adopting the master copy.
			if f != nil {
				if _, excl := p.c.lay.Excl(p.ownWord(page)); excl {
					p.trace(page, "alias: flushing exclusive frame")
					diff.Copy(c.masters[page], *f)
				} else if tw := n.twins[page]; tw != nil {
					p.trace(page, "alias: flush-update private frame")
					diff.FlushUpdate(*f, tw, c.masters[page])
				}
			}
			p.trace(page, "alias master (home=%d)", homeProto)
			m := c.masters[page]
			slot.p.Store(&m)
			slot.aliased.Store(true)
			n.dropTwin(page)
			n.vm.Bump() // invalidate translations to the private frame
			meta.updateTS = n.lclock.Tick()
			return true
		}
	}
	if slot.aliased.Load() {
		// We used to be home (before a first-touch relocation moved
		// it); drop the alias and refetch as an ordinary sharer.
		slot.p.Store(nil)
		slot.aliased.Store(false)
		n.dropTwin(page)
		n.vm.Bump()
	}

	frame := slot.p.Load()
	wnOrAcq := meta.wnTS
	if p.acquireTS < wnOrAcq {
		wnOrAcq = p.acquireTS
	}
	switch {
	case frame == nil:
		p.trace(page, "fresh fetch (home=%d)", homeProto)
		f := make([]int64, c.cfg.PageWords)
		p.fetchPage(page, homeProto)
		diff.CopyIn(f, c.masters[page]) // f is not yet published
		slot.p.Store(&f)
		n.vm.Bump()
		meta.updateTS = n.lclock.Tick()
	case meta.updateTS < wnOrAcq:
		p.trace(page, "refetch: updTS=%d wnTS=%d acqTS=%d", meta.updateTS, meta.wnTS, p.acquireTS)
		p.fetchPage(page, homeProto)
		p.applyUpdate(page, *frame)
		meta.updateTS = n.lclock.Tick()
	}
	if meta.updateTS < meta.wnTS && !injectedDefects.dropStaleMapNotice.Load() {
		// The copy being mapped predates a write notice the node has
		// already drained. Release consistency lets this processor use
		// it until its next acquire (its acquire timestamp precedes the
		// notice), but the acquire must then invalidate the mapping —
		// and the notice distribution only reached the processors
		// mapped at drain time. Post the notice to our own second-level
		// list so the invalidation is not lost.
		p.trace(page, "stale map: queue self-notice (updTS=%d wnTS=%d)", meta.updateTS, meta.wnTS)
		p.pwn.Add(page)
		p.chargeProtocol(p.c.model.LLSC)
	}
	return true
}

// fetchPage charges a page transfer from the home node: the fixed
// minimum transfer cost (Table 1) and the network occupancy of the page
// data, whichever completes later.
func (p *Proc) fetchPage(page, homeProto int) {
	c := p.c
	physHome := c.physOfProto(homeProto)
	local := physHome == p.n.phys
	pageBytes := int64(c.cfg.PageWords) * wordBytes
	begin := p.clk.Now()

	p.st.Inc(stats.PageTransfers)
	p.st.Data(pageBytes)

	fixed := c.model.PageTransfer(local, c.cfg.Protocol.TwoLevelFamily())
	if c.cfg.UseInterrupts {
		if local {
			fixed += c.model.IntraNodeInterrupt
		} else {
			fixed += c.model.InterNodeInterrupt
		}
	}
	arrival := c.net.Transfer(physHome, pageBytes, p.clk.Now())
	target := p.clk.Now() + fixed
	if arrival > target {
		target = arrival
	}
	p.chargeWait(target)
	p.emitSpan(trace.EvPageFetch, page, begin, pageBytes, int64(homeProto))
}

// applyUpdate merges freshly fetched master data into an existing local
// frame. With no concurrent local writers it is a plain copy. With
// concurrent writers, Cashmere-2L applies an incoming diff against the
// twin (two-way diffing, Section 2.5), while Cashmere-2LS shoots the
// writers down, flushes their outstanding changes, and discards the twin
// (Section 2.6). Called with p.n.mu held.
func (p *Proc) applyUpdate(page int, frame []int64) {
	c := p.c
	n := p.n
	twin := n.twins[page]
	master := c.masters[page]

	if twin == nil {
		diff.Copy(frame, master)
		return
	}

	if c.cfg.Protocol == TwoLevelSD {
		// Shootdown: revoke concurrent local write mappings, flush
		// their outstanding modifications to the home, and drop the
		// twin; writers re-twin at their next write fault. (The real
		// system halts the writers with an interrupt or poll-detected
		// message; a goroutine cannot be halted mid-store, so the
		// update is applied as remote-only differences — the same
		// memory outcome — while the full page-copy cost is charged.)
		n.wbuf = n.vm.Writers(page, n.wbuf[:0])
		writers := n.wbuf
		cost := c.model.ShootdownPoll
		if c.cfg.UseInterrupts {
			cost = c.model.ShootdownInterrupt
		}
		for _, w := range writers {
			if w == p.local {
				continue
			}
			n.vm.Proc(w).Set(page, directory.ReadOnly)
			p.st.Inc(stats.Shootdowns)
			p.chargeProtocol(cost)
			p.emit(trace.EvShootdown, page, int64(w), 0)
		}
		// Drain in-flight store-range runs on the page: a run that
		// validated its mapping before the revocation above may still
		// be writing (the real system's interrupt latency). The diffs
		// below must observe its stores — once the twin is dropped a
		// straggler would never be flushed — so wait for each revoked
		// writer to leave the page. Writers cannot start a new run:
		// the revocation is visible to their next validation, and the
		// fault they take then blocks on the node mutex we hold.
		revoked := int64(0)
		for _, w := range writers {
			if w == p.local {
				continue
			}
			revoked++
			victim := &n.procs[w].activeRange
			for victim.Load() == int64(page) {
				runtime.Gosched()
			}
		}
		p.emit(trace.EvShootdownDrain, page, revoked, 0)
		changed, lo, hi := diff.OutgoingRange(frame, twin, master)
		if changed > 0 {
			p.flushBytes(page, changed, lo, hi)
		}
		diff.Incoming(frame, twin, master)
		n.dropTwin(page)
		n.meta[page].flushTS = n.lclock.Tick()
		return
	}

	p.trace(page, "incoming diff")
	// Two-way diffing: apply only the remote modifications, to both the
	// working page and the twin, with no intra-node synchronization.
	changed := diff.Incoming(frame, twin, master)
	p.st.Inc(stats.IncomingDiffs)
	p.chargeProtocol(c.model.IncomingDiff(changed, c.cfg.PageWords))
	p.emit(trace.EvDiffIn, page, int64(changed), 0)
}

// flushBytes accounts for changed words of diff data flowing from p's
// node to page's home: protocol cost for the diff, plus network
// occupancy. lo/hi is the inclusive changed-word span (-1, -1 when
// unknown), recorded on the diff event for the hot-page profiler's
// false-sharing classifier.
func (p *Proc) flushBytes(page, changedWords, lo, hi int) {
	c := p.c
	homeProto, _ := c.homeOf(page)
	physHome := c.physOfProto(homeProto)
	localDiff := physHome == p.n.phys
	bytes := int64(changedWords) * wordBytes

	p.chargeProtocol(c.model.OutgoingDiff(changedWords, c.cfg.PageWords, localDiff))
	p.st.Data(bytes)
	arrival := c.net.Transfer(p.n.phys, bytes, p.clk.Now())
	p.chargeWait(arrival)
	p.emit(trace.EvDiffOut, page, int64(changedWords), trace.PackWordSpan(lo, hi))
}
