package core

import (
	"math"
	"sync/atomic"

	"cashmere/internal/directory"
	"cashmere/internal/sim"
	"cashmere/internal/stats"
	"cashmere/internal/trace"
	"cashmere/internal/transport"
	"cashmere/internal/vm"
	"cashmere/internal/wnotice"
)

// framePtr atomically publishes a page frame to the access fast path.
type framePtr = atomic.Pointer[[]int64]

// wordBytes is the accounting size of one shared word.
const wordBytes = transport.WordBytes

// tlbSize is the number of direct-mapped entries in each processor's
// software TLB. Sixteen entries cover the applications' working rows
// (SOR's three neighbouring rows, for instance, land in adjacent
// entries without conflict).
const (
	tlbSize = 16
	tlbMask = tlbSize - 1
)

// tlbEntry caches one page translation in plain fields owned by the
// accessing goroutine. An entry is valid while its epoch tag equals the
// node's current epoch (see the vm package's epoch contract): any
// permission change, frame republish, or alias flip on the node bumps
// the epoch and so invalidates every cached translation at its next
// use. The common-case access is then one atomic epoch load instead of
// a permission-table load plus a frame-pointer load.
type tlbEntry struct {
	page  int    // cached page number (-1 when empty)
	epoch uint64 // node epoch observed before the state below was read
	perm  directory.Perm
	frame []int64
	// doubling is set when the 1L protocol write-doubles stores on this
	// page (i.e. the frame does not alias the master copy); master is
	// the home copy the doubled words land in.
	doubling bool
	master   []int64
}

// Proc is the handle a simulated processor's goroutine uses to access
// shared memory, synchronize, and account for computation. A Proc is
// owned by exactly one goroutine.
type Proc struct {
	c      *Cluster
	n      *node
	global int // global processor id
	local  int // index within the protocol node

	table *vm.Table

	// Software TLB state. vmEpoch points at the node's translation
	// generation; pageShift/pageMask mirror the cluster's shift/mask
	// page arithmetic (pageShift is -1 when PageWords is not a power of
	// two); sd notes the shootdown protocol, whose range stores must be
	// drainable (see activeRange).
	tlb       [tlbSize]tlbEntry
	vmEpoch   *atomic.Uint64
	pageShift int
	pageMask  int
	sd        bool

	// activeRange publishes the page a StoreRange run is currently
	// writing (-1 otherwise). A 2LS shootdown, after revoking this
	// processor's write mapping, spins until the field leaves the page
	// being shot down, so a page-length store run cannot slip
	// modifications past the shootdown's diff of the page. The scalar
	// store path needs no such handshake: its revocation window is a
	// single in-flight store, the same window the per-word permission
	// check had.
	activeRange atomic.Int64

	// rowBuf is scratch for the float64 range kernels.
	rowBuf []int64

	clk sim.Clock
	st  stats.Proc

	// dirty is the processor's private dirty list: shared pages written
	// since its last release. dirtyIn mirrors membership.
	dirty   []int
	dirtyIn []bool

	// nle is the no-longer-exclusive list (writable by other local
	// processors); pwn is the per-processor write notice list.
	nle *wnotice.PerProc
	pwn *wnotice.PerProc

	// acquireTS is the logical time of this processor's last acquire.
	acquireTS int64

	// doubledBytes accumulates 1L write-through traffic between
	// protocol operations, then drains onto the network for contention
	// accounting.
	doubledBytes int64

	// tr and ring carry the structured event tracer (internal/trace);
	// both are nil when tracing is disabled, and every emission site is
	// gated on a single nil check of ring (see events.go).
	tr   *trace.Tracer
	ring *trace.Ring
}

// ID returns the processor's global id.
func (p *Proc) ID() int { return p.global }

// NProcs returns the total number of processors in the cluster.
func (p *Proc) NProcs() int { return len(p.c.procs) }

// NodeID returns the physical node hosting the processor.
func (p *Proc) NodeID() int { return p.n.phys }

// Now returns the processor's virtual clock in nanoseconds.
func (p *Proc) Now() int64 { return p.clk.Now() }

// Words returns the size of the shared address space in words.
func (p *Proc) Words() int { return p.c.cfg.SharedWords }

// PageWords returns the coherence block size in words.
func (p *Proc) PageWords() int { return p.c.cfg.PageWords }

// Stats returns a snapshot of the processor's statistics.
func (p *Proc) Stats() stats.Proc { return p.st }

// split returns addr's page number and in-page offset.
func (p *Proc) split(addr int) (page, off int) {
	if p.pageShift >= 0 {
		return addr >> uint(p.pageShift), addr & p.pageMask
	}
	return addr / p.c.cfg.PageWords, addr % p.c.cfg.PageWords
}

// fill caches the translation for page, which must currently be mapped
// with at least the permission the caller verified. ep is the node
// epoch observed before that verification, so any protocol transition
// after it leaves the entry stale and forces revalidation.
func (p *Proc) fill(page int, ep uint64) *tlbEntry {
	e := &p.tlb[page&tlbMask]
	slot := &p.n.frames[page]
	e.page = page
	e.epoch = ep
	e.perm = p.table.Get(page)
	e.frame = *slot.p.Load()
	e.doubling = p.c.cfg.Protocol == OneLevelWrite && !slot.aliased.Load()
	if e.doubling {
		e.master = p.c.masters[page]
	} else {
		e.master = nil
	}
	return e
}

// readEntry returns a TLB entry valid for reading page, faulting as
// needed.
func (p *Proc) readEntry(page int) *tlbEntry {
	e := &p.tlb[page&tlbMask]
	if e.page == page && e.perm >= directory.ReadOnly && e.epoch == p.vmEpoch.Load() {
		return e
	}
	for {
		ep := p.vmEpoch.Load()
		if p.table.CanRead(page) {
			return p.fill(page, ep)
		}
		p.readFault(page)
	}
}

// writeEntry returns a TLB entry valid for writing page, faulting as
// needed.
func (p *Proc) writeEntry(page int) *tlbEntry {
	e := &p.tlb[page&tlbMask]
	if e.page == page && e.perm >= directory.ReadWrite && e.epoch == p.vmEpoch.Load() {
		return e
	}
	for {
		ep := p.vmEpoch.Load()
		if p.table.CanWrite(page) {
			return p.fill(page, ep)
		}
		p.writeFault(page)
	}
}

// Load reads the shared word at addr.
func (p *Proc) Load(addr int) int64 {
	page, off := p.split(addr)
	e := &p.tlb[page&tlbMask]
	if e.page == page && e.perm >= directory.ReadOnly && e.epoch == p.vmEpoch.Load() {
		return atomic.LoadInt64(&e.frame[off])
	}
	return atomic.LoadInt64(&p.readEntry(page).frame[off])
}

// Store writes the shared word at addr.
func (p *Proc) Store(addr int, v int64) {
	page, off := p.split(addr)
	e := &p.tlb[page&tlbMask]
	if e.page != page || e.perm < directory.ReadWrite || e.epoch != p.vmEpoch.Load() {
		e = p.writeEntry(page)
	}
	atomic.StoreInt64(&e.frame[off], v)
	if e.doubling {
		// Write doubling: propagate the word to the home copy on the
		// fly (Section 2.6). The network occupancy is accumulated and
		// charged at the next protocol operation.
		atomic.StoreInt64(&e.master[off], v)
		p.clk.Advance(p.c.model.WriteDouble)
		p.st.Charge(stats.WriteDoubling, p.c.model.WriteDouble)
		p.doubledBytes += wordBytes
		p.st.Data(wordBytes)
	}
}

// LoadRange reads len(dst) consecutive shared words starting at addr
// into dst. The permission check and fault loop run once per page
// spanned — at the same page boundaries, in the same order, with the
// same charges as word-at-a-time Loads — and the words of each page
// are then copied in one run.
func (p *Proc) LoadRange(dst []int64, addr int) {
	for len(dst) > 0 {
		page, off := p.split(addr)
		run := p.c.cfg.PageWords - off
		if run > len(dst) {
			run = len(dst)
		}
		frame := p.readEntry(page).frame[off : off+run]
		for i := range frame {
			dst[i] = atomic.LoadInt64(&frame[i])
		}
		dst = dst[run:]
		addr += run
	}
}

// StoreRange writes the words of src to consecutive shared addresses
// starting at addr. Permission checks, faults, and the 1L
// write-doubling charges are identical in count and order to
// word-at-a-time Stores; doubling time and traffic are accounted in
// bulk per page run.
func (p *Proc) StoreRange(addr int, src []int64) {
	for len(src) > 0 {
		page, off := p.split(addr)
		run := p.c.cfg.PageWords - off
		if run > len(src) {
			run = len(src)
		}
		e := p.writeEntry(page)
		if p.sd {
			// Publish the run so a concurrent shootdown drains it
			// (applyUpdate waits until activeRange leaves the page it
			// is diffing). Revalidate after publishing: with
			// sequentially-consistent atomics either we observe the
			// revocation here, or the shooter observes our published
			// range and waits.
			p.activeRange.Store(int64(page))
			if e.epoch != p.vmEpoch.Load() {
				p.activeRange.Store(-1)
				continue
			}
		}
		frame := e.frame[off : off+run]
		for i, v := range src[:run] {
			atomic.StoreInt64(&frame[i], v)
		}
		if p.sd {
			p.activeRange.Store(-1)
		}
		if e.doubling {
			master := e.master[off : off+run]
			for i, v := range src[:run] {
				atomic.StoreInt64(&master[i], v)
			}
			d := int64(run) * p.c.model.WriteDouble
			p.clk.Advance(d)
			p.st.Charge(stats.WriteDoubling, d)
			p.doubledBytes += int64(run) * wordBytes
			p.st.Data(int64(run) * wordBytes)
		}
		src = src[run:]
		addr += run
	}
}

// LoadF reads the shared word at addr as a float64.
func (p *Proc) LoadF(addr int) float64 {
	return math.Float64frombits(uint64(p.Load(addr)))
}

// StoreF writes the shared word at addr as a float64.
func (p *Proc) StoreF(addr int, v float64) {
	p.Store(addr, int64(math.Float64bits(v)))
}

// LoadFRow reads len(dst) consecutive shared words starting at addr as
// float64s. Equivalent to len(dst) LoadF calls.
func (p *Proc) LoadFRow(dst []float64, addr int) {
	for len(dst) > 0 {
		page, off := p.split(addr)
		run := p.c.cfg.PageWords - off
		if run > len(dst) {
			run = len(dst)
		}
		frame := p.readEntry(page).frame[off : off+run]
		for i := range frame {
			dst[i] = math.Float64frombits(uint64(atomic.LoadInt64(&frame[i])))
		}
		dst = dst[run:]
		addr += run
	}
}

// StoreFRow writes the float64s of src to consecutive shared addresses
// starting at addr. Equivalent to len(src) StoreF calls.
func (p *Proc) StoreFRow(addr int, src []float64) {
	if cap(p.rowBuf) < len(src) {
		p.rowBuf = make([]int64, len(src))
	}
	buf := p.rowBuf[:len(src)]
	for i, v := range src {
		buf[i] = int64(math.Float64bits(v))
	}
	p.StoreRange(addr, buf)
}

// Compute charges ns nanoseconds of user computation and busBytes of
// memory traffic on the node's shared bus (capacity misses). Bus
// contention stalls — every processor of the SMP node sharing the one
// memory bus, the source of the paper's negative clustering effects —
// are charged to user time, as the paper's breakdown does with cache
// misses.
func (p *Proc) Compute(ns int64, busBytes int64) {
	stall := sim.Stall(ns, busBytes, int64(p.c.cfg.ProcsPerNode), p.c.model.NodeBusBandwidth)
	p.clk.Advance(ns + stall)
	p.st.Charge(stats.User, ns+stall)
}

// Poll charges one message-poll check (inserted at loop heads by the
// instrumentation pass in the real system).
func (p *Proc) Poll() {
	p.clk.Advance(p.c.model.Poll)
	p.st.Charge(stats.Polling, p.c.model.Poll)
}

// PollN charges n message-poll checks at once.
func (p *Proc) PollN(n int64) {
	if n <= 0 {
		return
	}
	d := n * p.c.model.Poll
	p.clk.Advance(d)
	p.st.Charge(stats.Polling, d)
}

// drainDoubled charges any accumulated write-through traffic onto the
// network so concurrent 1L writers contend for Memory Channel bandwidth.
func (p *Proc) drainDoubled() {
	if p.doubledBytes == 0 {
		return
	}
	done := p.c.net.Transfer(p.n.phys, p.doubledBytes, p.clk.Now())
	p.doubledBytes = 0
	if wait := p.clk.AdvanceTo(done); wait > 0 {
		p.st.Charge(stats.CommWait, wait)
	}
}

// markDirty inserts page into the private dirty list.
func (p *Proc) markDirty(page int) {
	if !p.dirtyIn[page] {
		p.dirtyIn[page] = true
		p.dirty = append(p.dirty, page)
	}
}

// clearDirty empties the dirty list.
func (p *Proc) clearDirty() {
	for _, page := range p.dirty {
		p.dirtyIn[page] = false
	}
	p.dirty = p.dirty[:0]
}

// chargeProtocol advances the clock by ns of protocol work. Protocol
// time during the initialization epoch (before EndInit) is not charged:
// the paper's runs are long enough to amortize initialization, while a
// scaled-down problem would be dominated by it.
func (p *Proc) chargeProtocol(ns int64) {
	if !p.c.charging.Load() {
		return
	}
	p.clk.Advance(ns)
	p.st.Charge(stats.Protocol, ns)
}

// chargeWait advances the clock to t, charging the skipped time as
// communication/wait. Like chargeProtocol, it is free during the
// initialization epoch.
func (p *Proc) chargeWait(t int64) {
	if !p.c.charging.Load() {
		return
	}
	if w := p.clk.AdvanceTo(t); w > 0 {
		p.st.Charge(stats.CommWait, w)
	}
}
