package core

import (
	"math"
	"sync/atomic"

	"cashmere/internal/memchan"
	"cashmere/internal/sim"
	"cashmere/internal/stats"
	"cashmere/internal/vm"
	"cashmere/internal/wnotice"
)

// framePtr atomically publishes a page frame to the access fast path.
type framePtr = atomic.Pointer[[]int64]

// memchanWordBytes is the accounting size of one shared word.
const memchanWordBytes = memchan.WordBytes

// Proc is the handle a simulated processor's goroutine uses to access
// shared memory, synchronize, and account for computation. A Proc is
// owned by exactly one goroutine.
type Proc struct {
	c      *Cluster
	n      *node
	global int // global processor id
	local  int // index within the protocol node

	table *vm.Table

	clk sim.Clock
	st  stats.Proc

	// dirty is the processor's private dirty list: shared pages written
	// since its last release. dirtyIn mirrors membership.
	dirty   []int
	dirtyIn []bool

	// nle is the no-longer-exclusive list (writable by other local
	// processors); pwn is the per-processor write notice list.
	nle *wnotice.PerProc
	pwn *wnotice.PerProc

	// acquireTS is the logical time of this processor's last acquire.
	acquireTS int64

	// doubledBytes accumulates 1L write-through traffic between
	// protocol operations, then drains onto the network for contention
	// accounting.
	doubledBytes int64
}

// ID returns the processor's global id.
func (p *Proc) ID() int { return p.global }

// NProcs returns the total number of processors in the cluster.
func (p *Proc) NProcs() int { return len(p.c.procs) }

// NodeID returns the physical node hosting the processor.
func (p *Proc) NodeID() int { return p.n.phys }

// Now returns the processor's virtual clock in nanoseconds.
func (p *Proc) Now() int64 { return p.clk.Now() }

// Words returns the size of the shared address space in words.
func (p *Proc) Words() int { return p.c.cfg.SharedWords }

// PageWords returns the coherence block size in words.
func (p *Proc) PageWords() int { return p.c.cfg.PageWords }

// Stats returns a snapshot of the processor's statistics.
func (p *Proc) Stats() stats.Proc { return p.st }

// Load reads the shared word at addr.
func (p *Proc) Load(addr int) int64 {
	page := addr / p.c.cfg.PageWords
	for !p.table.CanRead(page) {
		p.readFault(page)
	}
	f := *p.n.frames[page].p.Load()
	return atomic.LoadInt64(&f[addr%p.c.cfg.PageWords])
}

// Store writes the shared word at addr.
func (p *Proc) Store(addr int, v int64) {
	page := addr / p.c.cfg.PageWords
	for !p.table.CanWrite(page) {
		p.writeFault(page)
	}
	slot := &p.n.frames[page]
	f := *slot.p.Load()
	atomic.StoreInt64(&f[addr%p.c.cfg.PageWords], v)
	if p.c.cfg.Protocol == OneLevelWrite && !slot.aliased.Load() {
		// Write doubling: propagate the word to the home copy on the
		// fly (Section 2.6). The network occupancy is accumulated and
		// charged at the next protocol operation.
		atomic.StoreInt64(&p.c.masters[page][addr%p.c.cfg.PageWords], v)
		p.clk.Advance(p.c.model.WriteDouble)
		p.st.Charge(stats.WriteDoubling, p.c.model.WriteDouble)
		p.doubledBytes += memchanWordBytes
		p.st.Data(memchanWordBytes)
	}
}

// LoadF reads the shared word at addr as a float64.
func (p *Proc) LoadF(addr int) float64 {
	return math.Float64frombits(uint64(p.Load(addr)))
}

// StoreF writes the shared word at addr as a float64.
func (p *Proc) StoreF(addr int, v float64) {
	p.Store(addr, int64(math.Float64bits(v)))
}

// Compute charges ns nanoseconds of user computation and busBytes of
// memory traffic on the node's shared bus (capacity misses). Bus
// contention stalls — every processor of the SMP node sharing the one
// memory bus, the source of the paper's negative clustering effects —
// are charged to user time, as the paper's breakdown does with cache
// misses.
func (p *Proc) Compute(ns int64, busBytes int64) {
	stall := sim.Stall(ns, busBytes, int64(p.c.cfg.ProcsPerNode), p.c.model.NodeBusBandwidth)
	p.clk.Advance(ns + stall)
	p.st.Charge(stats.User, ns+stall)
}

// Poll charges one message-poll check (inserted at loop heads by the
// instrumentation pass in the real system).
func (p *Proc) Poll() {
	p.clk.Advance(p.c.model.Poll)
	p.st.Charge(stats.Polling, p.c.model.Poll)
}

// PollN charges n message-poll checks at once.
func (p *Proc) PollN(n int64) {
	if n <= 0 {
		return
	}
	d := n * p.c.model.Poll
	p.clk.Advance(d)
	p.st.Charge(stats.Polling, d)
}

// drainDoubled charges any accumulated write-through traffic onto the
// network so concurrent 1L writers contend for Memory Channel bandwidth.
func (p *Proc) drainDoubled() {
	if p.doubledBytes == 0 {
		return
	}
	done := p.c.net.Transfer(p.n.phys, p.doubledBytes, p.clk.Now())
	p.doubledBytes = 0
	if wait := p.clk.AdvanceTo(done); wait > 0 {
		p.st.Charge(stats.CommWait, wait)
	}
}

// markDirty inserts page into the private dirty list.
func (p *Proc) markDirty(page int) {
	if !p.dirtyIn[page] {
		p.dirtyIn[page] = true
		p.dirty = append(p.dirty, page)
	}
}

// clearDirty empties the dirty list.
func (p *Proc) clearDirty() {
	for _, page := range p.dirty {
		p.dirtyIn[page] = false
	}
	p.dirty = p.dirty[:0]
}

// chargeProtocol advances the clock by ns of protocol work. Protocol
// time during the initialization epoch (before EndInit) is not charged:
// the paper's runs are long enough to amortize initialization, while a
// scaled-down problem would be dominated by it.
func (p *Proc) chargeProtocol(ns int64) {
	if !p.c.charging.Load() {
		return
	}
	p.clk.Advance(ns)
	p.st.Charge(stats.Protocol, ns)
}

// chargeWait advances the clock to t, charging the skipped time as
// communication/wait. Like chargeProtocol, it is free during the
// initialization epoch.
func (p *Proc) chargeWait(t int64) {
	if !p.c.charging.Load() {
		return
	}
	if w := p.clk.AdvanceTo(t); w > 0 {
		p.st.Charge(stats.CommWait, w)
	}
}
