package core

import (
	"sync/atomic"

	"cashmere/internal/directory"
	"cashmere/internal/stats"
	"cashmere/internal/trace"
)

// Home-node management (paper Section 2.3, "Home node selection").
//
// Homes are initially assigned round-robin per superpage; after program
// initialization (signalled by EndInit) the first processor to touch a
// page relocates the whole superpage's home to its node, once, under the
// only global lock in the protocol. Ordinary page operations never take
// that lock: they always follow the initial access in time.

// homeState packs a superpage's home assignment for lock-free reads:
// protocol node, home processor id, and the first-touch-done bit. The
// processor field is 31 bits wide so the packing never constrains the
// cluster size before the directory layout does.
const homeProcBits = 31

func encodeHome(protoNode, proc int, done bool) int64 {
	v := int64(protoNode)<<(homeProcBits+1) | int64(proc)<<1
	if done {
		v |= 1
	}
	return v
}

func decodeHome(v int64) (protoNode, proc int, done bool) {
	return int(v >> (homeProcBits + 1)), int(v>>1) & (1<<homeProcBits - 1), v&1 != 0
}

// initHomes installs the round-robin defaults into the atomic table.
func (c *Cluster) initHomes() {
	c.homes = make([]atomic.Int64, c.superpages)
	for sp := range c.homes {
		c.homes[sp].Store(encodeHome(c.homeNode[sp], c.homeProc[sp], false))
	}
}

// homeOf returns the protocol node and processor currently serving as
// page's home.
func (c *Cluster) homeOf(page int) (protoNode, proc int) {
	pn, pr, _ := decodeHome(c.homes[c.superOf(page)].Load())
	return pn, pr
}

// isHomeLike reports whether p accesses page's master copy directly:
// true on the home node itself, and — under the one-level protocols'
// home-node optimization — on any processor physically co-located with
// the home.
func (p *Proc) isHomeLike(homeProto int) bool {
	if p.n.id == homeProto {
		return true
	}
	if p.c.cfg.HomeOpt && !p.c.cfg.Protocol.TwoLevelFamily() {
		return p.n.phys == p.c.physOfProto(homeProto)
	}
	return false
}

// maybeFirstTouch relocates page's superpage home to p's node if this is
// the first post-initialization touch. Called with no node locks held.
func (p *Proc) maybeFirstTouch(page int) {
	c := p.c
	if !c.initFlag.Load() {
		return
	}
	sp := c.superOf(page)
	if _, _, done := decodeHome(c.homes[sp].Load()); done {
		return
	}

	// The only lock-acquiring path in the protocol: home relocation.
	held := c.homeLock.Acquire(p.clk.Now(), c.model.GlobalLock)
	p.chargeWait(held)

	oldProto, _, done := decodeHome(c.homes[sp].Load())
	if done {
		c.homeLock.Release(p.clk.Now())
		return
	}
	newProto := p.n.id
	if oldProto != newProto {
		c.migrateSuperpage(p, sp, oldProto)
	}
	p.trace(page, "first-touch: superpage %d home %d -> %d", sp, oldProto, newProto)
	c.homes[sp].Store(encodeHome(newProto, p.global, true))
	p.st.Inc(stats.HomeMigrations)
	p.emit(trace.EvHomeMigrate, page, int64(oldProto), int64(newProto))
	c.homeLock.Release(p.clk.Now())
}

// migrateSuperpage detaches the old home node from every page of
// superpage sp: processors there lose their aliased master mappings and
// will re-fault as ordinary remote sharers. Master data stays in place
// (the Memory Channel region is remapped, not copied).
func (c *Cluster) migrateSuperpage(p *Proc, sp, oldProto int) {
	old := c.nodes[oldProto]
	first := sp * c.cfg.SuperpagePages
	last := first + c.cfg.SuperpagePages
	if last > c.pages {
		last = c.pages
	}
	old.mu.Lock()
	for page := first; page < last; page++ {
		slot := &old.frames[page]
		if !slot.aliased.Load() {
			continue
		}
		for l := 0; l < old.vm.Procs(); l++ {
			old.vm.Proc(l).Set(page, directory.Invalid)
		}
		slot.aliased.Store(false)
		slot.p.Store(nil)
		old.vm.Bump() // invalidate cached translations to the master alias
		old.meta[page] = pageMeta{}
		// The old home's directory word no longer claims a mapping.
		w := c.lay.ClearExcl(c.lay.WithPerm(c.dir.Load(oldProto, page, oldProto), directory.Invalid))
		c.storeDirWord(p, oldProto, page, w)
	}
	old.mu.Unlock()
	p.chargeProtocol(c.model.ExplicitRequest) // remap request to the old home
}

// storeDirWord broadcasts a directory word update on behalf of writer
// node by, charging proc p. Under the lock-based ablation the page's
// global lock brackets the update.
func (c *Cluster) storeDirWord(p *Proc, by, page int, w directory.Word) {
	if c.dir.LockBased() {
		l := c.dir.PageLock(page)
		held := l.Acquire(p.clk.Now(), c.model.DirectoryUpdateLocked)
		p.chargeWait(held)
		c.dir.Store(by, page, w, p.clk.Now())
		l.Release(p.clk.Now())
	} else {
		p.chargeProtocol(c.model.DirectoryUpdate)
		c.dir.Store(by, page, w, p.clk.Now())
	}
	p.st.Inc(stats.DirectoryUpdates)
	p.st.Data(wordBytes)
	p.emit(trace.EvDirUpdate, page, int64(by), 0)
}

// publishOwnWord recomputes and broadcasts p's node's directory word for
// page from the current second-level state. Must be called with p.n.mu
// held. excl supplies the exclusive holder processor (negative for
// none).
func (p *Proc) publishOwnWord(page int, excl int) {
	n := p.n
	_, hproc := p.c.homeOf(page)
	_, _, done := decodeHome(p.c.homes[p.c.superOf(page)].Load())
	w := p.c.lay.Make(n.vm.Loosest(page), excl, hproc, done)
	p.c.storeDirWord(p, n.id, page, w)
}

// ownWord reads p's node's current directory word for page.
func (p *Proc) ownWord(page int) directory.Word {
	return p.c.dir.Load(p.n.id, page, p.n.id)
}
