package core

import (
	"fmt"

	"cashmere/internal/diff"
	"cashmere/internal/directory"
	"cashmere/internal/stats"
	"cashmere/internal/trace"
)

// Adaptive per-page coherence policy (see docs/ADAPTIVE.md).
//
// Every page carries a coherence mode. The default, ModeInvalidate, is
// the paper's protocol exactly: write notices invalidate stale mappings
// at an acquire and readers refetch on the next fault. The adaptive
// engine (internal/policy) may switch individual pages to:
//
//   - ModeUpdate (write-update): a write notice is serviced at the
//     acquire by refreshing the local frame from the master copy in
//     place — an incoming diff against the twin when local writers are
//     active, a counted copy otherwise — instead of invalidating the
//     mappings. Consumers keep their mappings and skip the fault,
//     refetch transfer, and remap on their next read. The data cost is
//     already paid: the producer's release flushed the modifications to
//     the master over the Memory Channel's broadcast medium.
//
//   - ModeBroadcast: write-update semantics plus eager replication —
//     the page is pushed to every node and mapped read-only for every
//     processor, so readers that never touched it skip even the first
//     fault. Reserved for read-mostly pages; a write fault on a
//     broadcast page demotes it to ModeInvalidate on the spot (the
//     safety valve for a misclassified page).
//
// Mode changes, home migrations, and replications are applied by one
// deciding processor at a decision epoch (a barrier at which every
// other processor is quiesced between the rendezvous and the decision
// gate), or by the verification harness between modelcheck transitions.
// The mode table itself is read lock-free on the fault and acquire
// paths; with Config.Adaptive nil every page stays in ModeInvalidate
// and the protocol's virtual-time behavior is bit-identical to a build
// without this layer.

// PageMode is a page's coherence mode under the adaptive policy.
type PageMode int32

const (
	// ModeInvalidate is the paper's write-invalidate protocol (default).
	ModeInvalidate PageMode = iota
	// ModeUpdate services write notices by refreshing the frame in
	// place at the acquire instead of invalidating mappings.
	ModeUpdate
	// ModeBroadcast is ModeUpdate plus eager cluster-wide replication;
	// it demotes itself to ModeInvalidate at the first write fault.
	ModeBroadcast
)

// String returns the mode's short name.
func (m PageMode) String() string {
	switch m {
	case ModeInvalidate:
		return "invalidate"
	case ModeUpdate:
		return "update"
	case ModeBroadcast:
		return "broadcast"
	default:
		return fmt.Sprintf("PageMode(%d)", int32(m))
	}
}

// PolicyController is the adaptive policy engine's interface to the
// protocol (Config.Adaptive). The Note hooks are the in-run feedback
// path: they are called from the fault and flush paths, outside any
// node lock, possibly concurrently from every processor, and must not
// block or charge virtual time. DecideEpoch is called at every barrier
// by global processor 0 while all other processors are quiesced at the
// decision gate; transitions it applies through acts are charged to
// that processor and extend the barrier for everyone.
//
// Attaching any controller — even one that never acts — inserts the
// decision gate into every barrier. The gate adds no virtual time, but
// as a second rendezvous it changes which sibling processor happens to
// service a node's notice bins first, so timings can shift slightly
// against the nil-controller baseline. Only Config.Adaptive == nil is
// the bit-identical baseline the golden tests pin.
type PolicyController interface {
	// NoteReadFault records a read fault on page by global processor
	// proc.
	NoteReadFault(page, proc int)
	// NoteWriteFault records a write fault on page by global processor
	// proc.
	NoteWriteFault(page, proc int)
	// NoteFlush records a release flush of changedWords modified words
	// of page by global processor proc.
	NoteFlush(page, proc, changedWords int)
	// DecideEpoch applies this epoch's policy transitions.
	DecideEpoch(epoch int, acts *PolicyActions)
}

// pageModeOf returns page's current coherence mode.
func (c *Cluster) pageModeOf(page int) PageMode {
	return PageMode(c.pageModes[page].Load())
}

// PolicyActions is the handle through which policy transitions are
// applied: by the engine's DecideEpoch at a decision epoch, or by the
// verification harness between modelcheck transitions. All costs are
// charged to the acting processor. It must not be used concurrently
// with running application code except from DecideEpoch.
type PolicyActions struct {
	c *Cluster
	p *Proc
}

// Pages returns the number of shared pages.
func (a *PolicyActions) Pages() int { return a.c.pages }

// Mode returns page's current coherence mode.
func (a *PolicyActions) Mode(page int) PageMode { return a.c.pageModeOf(page) }

// HomeNode returns the protocol node currently serving as page's home.
func (a *PolicyActions) HomeNode(page int) int {
	pn, _ := a.c.homeOf(page)
	return pn
}

// NodeOf returns the protocol node hosting global processor proc.
func (a *PolicyActions) NodeOf(proc int) int { return a.c.protoOfProc(proc) }

// SuperpageRange returns the page range [first, last) of page's
// superpage — the granularity at which MigrateHome moves homes. A
// migration decided for one page drags every sibling page's home along,
// so migration evidence must be aggregated over this whole range.
func (a *PolicyActions) SuperpageRange(page int) (first, last int) {
	sp := a.c.superOf(page)
	first = sp * a.c.cfg.SuperpagePages
	last = first + a.c.cfg.SuperpagePages
	if last > a.c.pages {
		last = a.c.pages
	}
	return first, last
}

// SetMode switches page to mode, charging one directory-word broadcast
// (the mode table is Memory-Channel-resident, like the directory).
// It reports whether the mode actually changed.
func (a *PolicyActions) SetMode(page int, mode PageMode) bool {
	c, p := a.c, a.p
	old := PageMode(c.pageModes[page].Swap(int32(mode)))
	if old == mode {
		return false
	}
	p.st.Inc(stats.PolicyModeChanges)
	p.chargeProtocol(c.model.DirectoryUpdate)
	p.st.Data(wordBytes)
	p.emit(trace.EvPolicyMode, page, int64(old), int64(mode))
	return true
}

// MigrateHome moves page's superpage home to proc's protocol node,
// reusing the first-touch republish machinery: the old home's aliases
// are dropped, and every node's directory word for every page of the
// superpage is republished so the recorded home processor agrees with
// the new assignment (the dir-agree/home-agree invariants). It refuses
// — returning false — when the home is already there or any page of
// the superpage is held in exclusive mode (exclusive pages are outside
// coherence; migrating under them would republish words the holder
// owns).
func (a *PolicyActions) MigrateHome(page, proc int) bool {
	return a.c.migrateHomePolicy(a.p, page, proc)
}

// Replicate pushes page's master copy to every node and maps it
// read-only for every processor (ModeBroadcast's entry action). Nodes
// with active local writers (a live twin) are left alone — their next
// fetch merges via the twin as usual — and a page held in exclusive
// mode is not replicated at all (returns false).
func (a *PolicyActions) Replicate(page int) bool {
	return a.c.replicatePage(a.p, page)
}

// refreshPage services a write notice for page in write-update mode:
// the frame is refreshed from the master copy in place — an incoming
// diff against the twin when one exists (preserving unreleased local
// writes, exactly as the refetch path does), a counted copy otherwise —
// and the mappings survive. Reports false when the node holds no frame
// (nothing to refresh; the caller falls back to invalidation
// bookkeeping). Called with p.n.mu held.
func (p *Proc) refreshPage(page int) bool {
	c := p.c
	n := p.n
	slot := &n.frames[page]
	if slot.aliased.Load() {
		return true // the master alias is never stale
	}
	f := slot.p.Load()
	if f == nil {
		return false
	}
	var changed int
	if tw := n.twins[page]; tw != nil {
		changed = diff.Incoming(*f, tw, c.masters[page])
	} else {
		changed = diff.Refresh(*f, c.masters[page])
	}
	n.meta[page].updateTS = n.lclock.Tick()
	p.st.Inc(stats.PolicyUpdates)
	p.st.Inc(stats.IncomingDiffs)
	p.chargeProtocol(c.model.IncomingDiff(changed, c.cfg.PageWords))
	p.trace(page, "update refresh: %d words", changed)
	p.emit(trace.EvDiffIn, page, int64(changed), 1)
	return true
}

// maybeDemoteBroadcast demotes a broadcast page to write-invalidate at
// a write fault (the broadcast safety valve). The compare-and-swap
// makes the demotion race-free when two processors fault concurrently;
// with the policy layer idle the check is a single atomic load.
func (p *Proc) maybeDemoteBroadcast(page int) {
	c := p.c
	if c.pageModeOf(page) != ModeBroadcast {
		return
	}
	if !c.pageModes[page].CompareAndSwap(int32(ModeBroadcast), int32(ModeInvalidate)) {
		return
	}
	p.st.Inc(stats.PolicyModeChanges)
	p.chargeProtocol(c.model.DirectoryUpdate)
	p.st.Data(wordBytes)
	p.trace(page, "broadcast demoted by write fault")
	p.emit(trace.EvPolicyMode, page, int64(ModeBroadcast), int64(ModeInvalidate))
}

// migrateHomePolicy relocates page's superpage home to target's
// protocol node under the global home lock. Unlike first-touch
// relocation (which runs before any sharing exists), a policy
// migration happens mid-run, so after detaching the old home it
// republishes every node's directory word for every page of the
// superpage: the words record the home processor, and a stale record
// would break the dir-agree invariant the model checker enforces.
func (c *Cluster) migrateHomePolicy(p *Proc, page, target int) bool {
	sp := c.superOf(page)
	newProto := c.protoOfProc(target)

	held := c.homeLock.Acquire(p.clk.Now(), c.model.GlobalLock)
	p.chargeWait(held)

	oldProto, _, _ := decodeHome(c.homes[sp].Load())
	first := sp * c.cfg.SuperpagePages
	last := first + c.cfg.SuperpagePages
	if last > c.pages {
		last = c.pages
	}
	if oldProto == newProto {
		c.homeLock.Release(p.clk.Now())
		return false
	}
	for g := first; g < last; g++ {
		if _, _, ok := c.dir.ExclHolderOwn(g); ok {
			c.homeLock.Release(p.clk.Now())
			return false
		}
	}

	c.migrateSuperpage(p, sp, oldProto)
	c.homes[sp].Store(encodeHome(newProto, target, true))

	// Republish every node's word with the new home processor,
	// preserving each node's recorded permission (no page of the
	// superpage is exclusive, checked above).
	for x := range c.nodes {
		nx := c.nodes[x]
		nx.mu.Lock()
		for g := first; g < last; g++ {
			w := c.dir.Load(x, g, x)
			nw := c.lay.Make(c.lay.Perm(w), -1, target, true)
			if nw != w {
				c.storeDirWord(p, x, g, nw)
			}
		}
		nx.mu.Unlock()
	}

	p.st.Inc(stats.HomeMigrations)
	p.trace(page, "policy migrate: superpage %d home %d -> %d", sp, oldProto, newProto)
	p.emit(trace.EvHomeMigrate, page, int64(oldProto), int64(newProto))
	c.homeLock.Release(p.clk.Now())
	return true
}

// replicatePage pushes page's master copy to every node: private
// frames are refreshed (or allocated), every local processor with no
// mapping is mapped read-only, and the nodes' directory words are
// republished to cover the new mappings. One page transfer is charged
// — the Memory Channel broadcast delivers the data to every receive
// region in a single pass. Nodes with a live twin keep their private
// state (their writers merge through the twin as usual); a page in
// exclusive mode is not replicated.
func (c *Cluster) replicatePage(p *Proc, page int) bool {
	if _, _, ok := c.dir.ExclHolderOwn(page); ok {
		return false
	}
	homeProto, hproc := c.homeOf(page)
	_, _, done := decodeHome(c.homes[c.superOf(page)].Load())
	if !done && c.initFlag.Load() {
		// Replication maps the page everywhere, so it must count as the
		// superpage's first touch: pin the home where it is before
		// publishing words that record it. Otherwise a later first
		// touch would migrate the home out from under every directory
		// word the broadcast just wrote.
		sp := c.superOf(page)
		held := c.homeLock.Acquire(p.clk.Now(), c.model.GlobalLock)
		p.chargeWait(held)
		if pr, pp, d := decodeHome(c.homes[sp].Load()); !d {
			c.homes[sp].Store(encodeHome(pr, pp, true))
		}
		c.homeLock.Release(p.clk.Now())
		homeProto, hproc = c.homeOf(page)
		done = true
	}

	pageBytes := int64(c.cfg.PageWords) * wordBytes
	p.st.Inc(stats.PageTransfers)
	p.st.Data(pageBytes)
	p.chargeProtocol(c.model.PageTransfer(false, c.cfg.Protocol.TwoLevelFamily()))
	arrival := c.net.Transfer(c.physOfProto(homeProto), pageBytes, p.clk.Now())
	p.chargeWait(arrival)

	touched := 0
	for x := range c.nodes {
		n := c.nodes[x]
		n.mu.Lock()
		slot := &n.frames[page]
		aliased := slot.aliased.Load()
		if !aliased && n.twins[page] != nil {
			n.mu.Unlock()
			continue // active local writers: leave the private frame alone
		}
		refreshed := false
		if !aliased {
			if f := slot.p.Load(); f != nil {
				diff.Refresh(*f, c.masters[page])
			} else {
				nf := make([]int64, c.cfg.PageWords)
				diff.CopyIn(nf, c.masters[page])
				slot.p.Store(&nf)
				n.vm.Bump()
			}
			refreshed = true
		}
		mapped := false
		for l := 0; l < n.vm.Procs(); l++ {
			if n.vm.Proc(l).Get(page) == directory.Invalid {
				n.vm.Proc(l).Set(page, directory.ReadOnly)
				mapped = true
			}
		}
		if refreshed || mapped {
			n.meta[page].updateTS = n.lclock.Tick()
			p.chargeProtocol(c.model.MProtect)
			touched++
		}
		if mapped {
			w := c.lay.Make(n.vm.Loosest(page), -1, hproc, done)
			if w != c.dir.Load(x, page, x) {
				c.storeDirWord(p, x, page, w)
			}
		}
		n.mu.Unlock()
	}
	if touched == 0 {
		return false
	}
	p.st.Inc(stats.PolicyReplications)
	p.trace(page, "replicated to %d nodes", touched)
	p.emit(trace.EvPolicyReplicate, page, int64(touched), 0)
	return true
}

// decidePolicyEpoch runs the adaptive engine's decision epoch from the
// barrier: global processor 0 decides while every other processor is
// parked between the barrier rendezvous and the decision gate, then the
// gate releases everyone at the decider's post-decision time — the
// decision work extends the barrier for all, exactly like a longer
// barrier episode. Called from Barrier, only when Config.Adaptive is
// set.
func (p *Proc) decidePolicyEpoch() {
	c := p.c
	if p.global == 0 {
		c.policyEpoch++
		c.cfg.Adaptive.DecideEpoch(c.policyEpoch, &PolicyActions{c: c, p: p})
	}
	p.chargeWait(c.decideBar.Wait(p.clk.Now()))
}
