package core

import (
	"fmt"
	"os"
	"strconv"
	"strings"
	"sync"
)

// Protocol event tracing, enabled by setting CASHMERE_TRACE_PAGE to a
// page number or a comma-separated list of page numbers: every protocol
// transition touching those pages is logged to stderr. Zero overhead
// when disabled (a single nil check). A value that does not parse is
// reported on stderr rather than silently disabling the trace the user
// asked for.

var (
	traceMu    sync.Mutex
	tracePages map[int]bool
)

func init() {
	v, ok := os.LookupEnv("CASHMERE_TRACE_PAGE")
	if !ok {
		return
	}
	pages, err := parseTracePages(v)
	if err != nil {
		fmt.Fprintf(os.Stderr, "cashmere: ignoring CASHMERE_TRACE_PAGE=%q: %v\n", v, err)
		return
	}
	tracePages = pages
}

// parseTracePages parses a comma-separated list of non-negative page
// numbers ("7" or "7,12,40"). Empty elements are rejected so a typo
// like "7,,12" is reported instead of silently dropped.
func parseTracePages(v string) (map[int]bool, error) {
	pages := make(map[int]bool)
	for _, field := range strings.Split(v, ",") {
		field = strings.TrimSpace(field)
		n, err := strconv.Atoi(field)
		if err != nil {
			return nil, fmt.Errorf("bad page number %q", field)
		}
		if n < 0 {
			return nil, fmt.Errorf("negative page number %d", n)
		}
		pages[n] = true
	}
	return pages, nil
}

// trace logs a protocol event for page when tracing is enabled.
func (p *Proc) trace(page int, format string, args ...any) {
	if !tracePages[page] {
		return
	}
	traceMu.Lock()
	fmt.Fprintf(os.Stderr, "[p%d n%d pg%d] %s\n",
		p.global, p.n.id, page, fmt.Sprintf(format, args...))
	traceMu.Unlock()
}
