package core

import (
	"fmt"
	"os"
	"strconv"
	"sync"
)

// Protocol event tracing, enabled by setting CASHMERE_TRACE_PAGE to a
// page number: every protocol transition touching that page is logged
// to stderr. Zero overhead when disabled (a single nil check).

var (
	traceMu   sync.Mutex
	tracePage = -1
)

func init() {
	if v, ok := os.LookupEnv("CASHMERE_TRACE_PAGE"); ok {
		if n, err := strconv.Atoi(v); err == nil {
			tracePage = n
		}
	}
}

// trace logs a protocol event for page when tracing is enabled.
func (p *Proc) trace(page int, format string, args ...any) {
	if tracePage < 0 || page != tracePage {
		return
	}
	traceMu.Lock()
	fmt.Fprintf(os.Stderr, "[p%d n%d pg%d] %s\n",
		p.global, p.n.id, page, fmt.Sprintf(format, args...))
	traceMu.Unlock()
}
