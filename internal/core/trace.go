package core

import (
	"fmt"
	"os"
	"sync"

	"cashmere/internal/cli"
	"cashmere/internal/trace"
)

// Protocol event tracing. The structured layer lives in internal/trace;
// a cluster records events when Config.Trace carries a tracer. The
// legacy CASHMERE_TRACE_PAGE environment variable — a page number or a
// comma-separated list — is kept as a zero-configuration entry point:
// when it is set and no tracer was supplied, New builds a tracer whose
// page filter comes from the variable and whose live stream goes to
// stderr, so every free-form protocol note for those pages appears as
// it always has. A value that does not parse is reported on stderr
// rather than silently disabling the trace the user asked for, and —
// once the cluster's page count is known — page numbers beyond it are
// rejected with the same warning instead of silently never matching.

var (
	envTraceOnce  sync.Once
	envTracePages map[int]bool
)

// envPageFilter parses CASHMERE_TRACE_PAGE once per process through
// the cli env-var registry (so the variable is documented alongside
// the flags), reporting bad values on stderr.
func envPageFilter() map[int]bool {
	envTraceOnce.Do(func() {
		pages, raw, set, err := cli.TracePagesFromEnv(parseTracePages)
		if !set {
			return
		}
		if err != nil {
			fmt.Fprintf(os.Stderr, "cashmere: ignoring CASHMERE_TRACE_PAGE=%q: %v\n", raw, err)
			return
		}
		envTracePages = pages
	})
	return envTracePages
}

// envTracer builds the CASHMERE_TRACE_PAGE compatibility tracer for a
// cluster of the given shape, or returns nil when the variable is
// unset. The filter map is copied: New clamps it to the cluster's page
// count, and clusters must not edit each other's filters.
func envTracer(procs, links int) *trace.Tracer {
	env := envPageFilter()
	if len(env) == 0 {
		return nil
	}
	pages := make(map[int]bool, len(env))
	for p := range env {
		pages[p] = true
	}
	return trace.New(trace.Config{
		Procs:    procs,
		Links:    links,
		RingSize: 1 << 12,
		Pages:    pages,
		Live:     os.Stderr,
	})
}

// parseTracePages parses a comma-separated list of non-negative page
// numbers ("7" or "7,12,40"); see trace.ParsePageList for the accepted
// syntax.
func parseTracePages(v string) (map[int]bool, error) {
	return trace.ParsePageList(v)
}

// trace writes a live free-form note for page when a tracer with a
// matching page filter is attached. Zero overhead when tracing is
// disabled (a single nil check).
func (p *Proc) trace(page int, format string, args ...any) {
	if p.tr == nil {
		return
	}
	p.tr.Notef(p.global, p.n.id, page, format, args...)
}
