package core

import "cashmere/internal/trace"

// Structured event emission (see internal/trace). Every helper is
// gated on a single nil check, charges no virtual time, and takes no
// locks, so tracing never perturbs the protocol it observes: a traced
// run and an untraced run of a deterministic application produce
// identical virtual-time results.

// emit records an instantaneous event at the processor's current
// virtual time.
func (p *Proc) emit(k trace.Kind, page int, arg, arg2 int64) {
	if p.ring == nil {
		return
	}
	p.tr.EmitProc(p.global, trace.Event{
		Kind: k,
		Proc: int32(p.global),
		Node: int32(p.n.id),
		Page: int32(page),
		VT:   p.clk.Now(),
		Arg:  arg,
		Arg2: arg2,
	})
}

// emitSpan records an event covering virtual time [beginVT, now).
func (p *Proc) emitSpan(k trace.Kind, page int, beginVT int64, arg, arg2 int64) {
	if p.ring == nil {
		return
	}
	p.tr.EmitProc(p.global, trace.Event{
		Kind: k,
		Proc: int32(p.global),
		Node: int32(p.n.id),
		Page: int32(page),
		VT:   beginVT,
		Dur:  p.clk.Now() - beginVT,
		Arg:  arg,
		Arg2: arg2,
	})
}

// emitLink records an event on the processor's physical node's fabric
// link track (transport/simchan) at virtual time vt.
func (p *Proc) emitLink(k trace.Kind, vt int64, page int, arg, arg2 int64) {
	if p.ring == nil {
		return
	}
	p.tr.EmitLink(p.n.phys, trace.Event{
		Kind: k,
		Proc: -1,
		Node: int32(p.n.phys),
		Page: int32(page),
		VT:   vt,
		Arg:  arg,
		Arg2: arg2,
	})
}
