package core

import (
	"testing"

	"cashmere/internal/stats"
)

// testConfig returns a small cluster configuration for protocol kind k.
func testConfig(k Kind, nodes, ppn int) Config {
	return Config{
		Nodes:        nodes,
		ProcsPerNode: ppn,
		Protocol:     k,
		PageWords:    16,
		SharedWords:  16 * 64, // 64 pages
		Locks:        4,
		Flags:        8,
	}
}

var allKinds = []Kind{TwoLevel, TwoLevelSD, OneLevelDiff, OneLevelWrite}

func TestConfigValidation(t *testing.T) {
	if _, err := New(Config{Nodes: 0, ProcsPerNode: 1, SharedWords: 10}); err == nil {
		t.Error("zero nodes accepted")
	}
	// Clusters beyond the paper's 8 nodes are legal now that the
	// directory layout is derived from the topology.
	if _, err := New(Config{Nodes: 9, ProcsPerNode: 1, SharedWords: 10}); err != nil {
		t.Errorf("nine nodes rejected: %v", err)
	}
	if _, err := New(Config{Nodes: 32, ProcsPerNode: 4, SharedWords: 10}); err != nil {
		t.Errorf("128-proc cluster rejected: %v", err)
	}
	if _, err := New(Config{Nodes: 2, ProcsPerNode: 2, SharedWords: 0}); err == nil {
		t.Error("zero shared words accepted")
	}
	c, err := New(Config{Nodes: 2, ProcsPerNode: 2, SharedWords: 100})
	if err != nil {
		t.Fatal(err)
	}
	if c.Config().PageWords != 1024 {
		t.Errorf("default PageWords = %d", c.Config().PageWords)
	}
	if c.Pages() != 1 {
		t.Errorf("Pages = %d, want 1", c.Pages())
	}
}

func TestKindString(t *testing.T) {
	want := map[Kind]string{TwoLevel: "2L", TwoLevelSD: "2LS", OneLevelDiff: "1LD", OneLevelWrite: "1L"}
	for k, s := range want {
		if k.String() != s {
			t.Errorf("%d.String() = %q, want %q", int(k), k.String(), s)
		}
	}
	if Kind(99).String() != "Kind(99)" {
		t.Errorf("unknown kind = %q", Kind(99).String())
	}
}

func TestSingleProcStoreLoad(t *testing.T) {
	for _, k := range allKinds {
		c, err := New(testConfig(k, 1, 1))
		if err != nil {
			t.Fatal(err)
		}
		res := c.Run(func(p *Proc) {
			for i := 0; i < 100; i++ {
				p.Store(i, int64(i*i))
			}
			for i := 0; i < 100; i++ {
				if got := p.Load(i); got != int64(i*i) {
					t.Errorf("%v: Load(%d) = %d, want %d", k, i, got, i*i)
				}
			}
			p.StoreF(200, 3.25)
			if got := p.LoadF(200); got != 3.25 {
				t.Errorf("%v: LoadF = %v", k, got)
			}
		})
		if res.ExecNS <= 0 {
			t.Errorf("%v: no virtual time elapsed", k)
		}
		if res.Counts[stats.ReadFaults] == 0 && res.Counts[stats.WriteFaults] == 0 {
			t.Errorf("%v: no faults recorded", k)
		}
	}
}

func TestCrossNodeSharingViaBarrier(t *testing.T) {
	// Proc 0 (node 0) writes a region; after a barrier every processor
	// on every node reads it back.
	for _, k := range allKinds {
		c, err := New(testConfig(k, 4, 2))
		if err != nil {
			t.Fatal(err)
		}
		const words = 100
		c.Run(func(p *Proc) {
			if p.ID() == 0 {
				for i := 0; i < words; i++ {
					p.Store(i, int64(1000+i))
				}
			}
			p.Barrier()
			for i := 0; i < words; i++ {
				if got := p.Load(i); got != int64(1000+i) {
					t.Errorf("%v: proc %d Load(%d) = %d, want %d", k, p.ID(), i, got, 1000+i)
					return
				}
			}
		})
	}
}

func TestMultiWriterFalseSharingMerge(t *testing.T) {
	// Every processor writes its own word of the SAME page between two
	// barriers; afterwards every processor must observe all writes.
	// This exercises multi-writer diff merging at the home node.
	for _, k := range allKinds {
		c, err := New(testConfig(k, 4, 2))
		if err != nil {
			t.Fatal(err)
		}
		n := c.NumProcs()
		c.Run(func(p *Proc) {
			p.Store(p.ID(), int64(100+p.ID()))
			p.Barrier()
			for i := 0; i < n; i++ {
				if got := p.Load(i); got != int64(100+i) {
					t.Errorf("%v: proc %d sees word %d = %d, want %d", k, p.ID(), i, got, 100+i)
					return
				}
			}
		})
	}
}

func TestRepeatedPhases(t *testing.T) {
	// SOR-like alternation: even procs write phase A, odd write phase
	// B, with barriers between; values accumulate across phases.
	for _, k := range allKinds {
		c, err := New(testConfig(k, 2, 2))
		if err != nil {
			t.Fatal(err)
		}
		const rounds = 8
		c.Run(func(p *Proc) {
			me := p.ID()
			for r := 0; r < rounds; r++ {
				if r%2 == me%2 {
					old := p.Load(me)
					p.Store(me, old+1)
				}
				p.Barrier()
			}
			for i := 0; i < p.NProcs(); i++ {
				if got := p.Load(i); got != rounds/2 {
					t.Errorf("%v: proc %d sees counter %d = %d, want %d", k, p.ID(), i, got, rounds/2)
					return
				}
			}
		})
	}
}

func TestLockMigratorySharing(t *testing.T) {
	// A counter protected by a lock is incremented by every processor
	// many times (migratory sharing, as in Water's force phase).
	for _, k := range allKinds {
		c, err := New(testConfig(k, 4, 2))
		if err != nil {
			t.Fatal(err)
		}
		const per = 10
		total := int64(c.NumProcs() * per)
		c.Run(func(p *Proc) {
			for i := 0; i < per; i++ {
				p.Lock(0)
				p.Store(0, p.Load(0)+1)
				p.Unlock(0)
			}
			p.Barrier()
			if got := p.Load(0); got != total {
				t.Errorf("%v: proc %d sees counter = %d, want %d", k, p.ID(), got, total)
			}
		})
	}
}

func TestFlagProducerConsumer(t *testing.T) {
	// Gauss-style: proc 0 produces a row and sets a flag; all others
	// wait on the flag and read the row.
	for _, k := range allKinds {
		c, err := New(testConfig(k, 4, 2))
		if err != nil {
			t.Fatal(err)
		}
		c.Run(func(p *Proc) {
			if p.ID() == 0 {
				for i := 0; i < 20; i++ {
					p.Store(32+i, int64(7*i))
				}
				p.SetFlag(0)
			} else {
				p.WaitFlag(0)
				for i := 0; i < 20; i++ {
					if got := p.Load(32 + i); got != int64(7*i) {
						t.Errorf("%v: proc %d flag read %d = %d, want %d", k, p.ID(), i, got, 7*i)
						return
					}
				}
			}
		})
	}
}

func TestExclusiveModeEntryAndBreak(t *testing.T) {
	// Proc 0 writes a private page repeatedly: under 2L it should enter
	// exclusive mode (one transition) and take no further faults. Then
	// a processor on another node reads the page, breaking exclusivity.
	c, err := New(testConfig(TwoLevel, 2, 2))
	if err != nil {
		t.Fatal(err)
	}
	res := c.Run(func(p *Proc) {
		if p.ID() == 0 {
			for i := 0; i < 8; i++ {
				p.Store(i, int64(i+1)) // all on page 0
			}
		}
		p.Barrier()
		if p.ID() == 2 { // node 1
			for i := 0; i < 8; i++ {
				if got := p.Load(i); got != int64(i+1) {
					t.Errorf("post-break read %d = %d, want %d", i, got, i+1)
				}
			}
		}
		p.Barrier()
	})
	if res.Counts[stats.ExclTransitions] < 2 {
		t.Errorf("ExclTransitions = %d, want >= 2 (enter and leave)",
			res.Counts[stats.ExclTransitions])
	}
	if res.Counts[stats.ExplicitRequests] < 1 {
		t.Errorf("ExplicitRequests = %d, want >= 1", res.Counts[stats.ExplicitRequests])
	}
}

func TestExclusivePagesHaveNoCoherenceOverhead(t *testing.T) {
	// After entering exclusive mode, further writes to the page incur
	// no faults, twins, flushes, or notices.
	c, err := New(testConfig(TwoLevel, 2, 1))
	if err != nil {
		t.Fatal(err)
	}
	res := c.Run(func(p *Proc) {
		if p.ID() != 0 {
			return
		}
		p.Store(0, 1) // write fault; no other sharer -> exclusive
		for i := 0; i < 1000; i++ {
			p.Store(i%16, int64(i))
		}
	})
	if res.Counts[stats.WriteFaults] != 1 {
		t.Errorf("WriteFaults = %d, want 1", res.Counts[stats.WriteFaults])
	}
	if res.Counts[stats.TwinCreations] != 0 {
		t.Errorf("TwinCreations = %d, want 0 for exclusive page", res.Counts[stats.TwinCreations])
	}
	if res.Counts[stats.PageFlushes] != 0 {
		t.Errorf("PageFlushes = %d, want 0", res.Counts[stats.PageFlushes])
	}
}

// interleavedFalseSharing runs a flag-ordered false-sharing scenario on
// page 0 (words 0, 2, 3 written by different processors of different
// nodes, with a local writer twinning the page before a stale co-located
// reader refetches it) and verifies every processor's final view.
func interleavedFalseSharing(t *testing.T, k Kind) stats.Total {
	t.Helper()
	c, err := New(testConfig(k, 2, 2))
	if err != nil {
		t.Fatal(err)
	}
	res := c.Run(func(p *Proc) {
		switch p.ID() {
		case 1: // node 0, proc B: map the page, later refetch it
			if got := p.Load(1); got != 0 {
				t.Errorf("B initial read = %d, want 0", got)
			}
			p.SetFlag(0)
			p.WaitFlag(3)
			if got := p.Load(2); got != 222 {
				t.Errorf("B sees word 2 = %d, want 222", got)
			}
			if got := p.Load(3); got != 333 {
				t.Errorf("B sees word 3 = %d, want 333", got)
			}
			if got := p.Load(0); got != 100 {
				t.Errorf("B sees word 0 = %d, want 100", got)
			}
		case 2: // node 1: two remote writes to the shared page
			p.WaitFlag(0)
			p.Lock(0)
			p.Store(2, 222)
			p.Unlock(0)
			p.SetFlag(1)
			p.WaitFlag(2)
			p.Lock(0)
			p.Store(3, 333)
			p.Unlock(0)
			p.SetFlag(3)
		case 0: // node 0, proc A: concurrent local writer (twins page 0)
			p.WaitFlag(1)
			p.Lock(1)
			p.Store(0, 100)
			p.SetFlag(2)
			p.Unlock(1)
		}
		p.Barrier()
		for w, want := range map[int]int64{0: 100, 2: 222, 3: 333} {
			if got := p.Load(w); got != want {
				t.Errorf("%v: proc %d final word %d = %d, want %d", k, p.ID(), w, got, want)
			}
		}
	})
	return res.Total
}

func TestTwoWayDiffingOnFalseSharing(t *testing.T) {
	// Under 2L, refetching a page that a co-located processor has
	// twinned must use an incoming diff (two-way diffing), never a
	// shootdown (Section 2.5).
	tot := interleavedFalseSharing(t, TwoLevel)
	if tot.Counts[stats.IncomingDiffs] == 0 {
		t.Error("2L performed no incoming diffs in the false-sharing scenario")
	}
	if tot.Counts[stats.Shootdowns] != 0 {
		t.Errorf("2L performed %d shootdowns", tot.Counts[stats.Shootdowns])
	}
	if tot.Counts[stats.TwinCreations] == 0 {
		t.Error("no twins created")
	}
}

func TestFirstTouchHomeMigration(t *testing.T) {
	// After EndInit, the first toucher of a page becomes its home; a
	// page used only by node 1 should migrate there and then be
	// accessed without transfers.
	c, err := New(testConfig(TwoLevel, 2, 2))
	if err != nil {
		t.Fatal(err)
	}
	res := c.Run(func(p *Proc) {
		if p.ID() == 0 {
			// Initialize everything (first-touch disabled during init).
			for i := 0; i < 16*8; i++ {
				p.Store(i, int64(i))
			}
		}
		p.EndInit()
		if p.ID() == 2 { // node 1 adopts pages post-init
			for i := 0; i < 16*8; i++ {
				p.Store(i, int64(2*i))
			}
		}
		p.Barrier()
		if got := p.Load(5); got != 10 {
			t.Errorf("proc %d sees word 5 = %d, want 10", p.ID(), got)
		}
	})
	if res.Counts[stats.HomeMigrations] == 0 {
		t.Error("no home migrations recorded")
	}
}

func TestShootdownVariantAvoidsIncomingDiffs(t *testing.T) {
	// Cashmere-2LS must produce the same memory results as 2L on the
	// same false-sharing scenario, without ever using incoming diffs.
	tot := interleavedFalseSharing(t, TwoLevelSD)
	if tot.Counts[stats.IncomingDiffs] != 0 {
		t.Errorf("2LS performed %d incoming diffs", tot.Counts[stats.IncomingDiffs])
	}
}

func TestOneLevelVariantsOnFalseSharing(t *testing.T) {
	// The one-level protocols handle the identical access pattern with
	// per-processor protocol nodes; results must match.
	tot := interleavedFalseSharing(t, OneLevelDiff)
	if tot.Counts[stats.TwinCreations] == 0 {
		t.Error("1LD created no twins")
	}
	totW := interleavedFalseSharing(t, OneLevelWrite)
	if totW.Counts[stats.TwinCreations] != 0 {
		t.Errorf("1L created %d twins", totW.Counts[stats.TwinCreations])
	}
}

func TestOneLevelWriteDoubling(t *testing.T) {
	// 1L must charge write-doubling time and move per-word data.
	c, err := New(testConfig(OneLevelWrite, 2, 2))
	if err != nil {
		t.Fatal(err)
	}
	res := c.Run(func(p *Proc) {
		// Page 50 is in superpage 6, homed round-robin on proto node
		// 6%4 = 2, so proc 1's writes must be doubled through.
		const base = 16 * 50
		if p.ID() == 1 {
			for i := 0; i < 16; i++ {
				p.Store(base+i, int64(i))
			}
		}
		p.Barrier()
		if got := p.Load(base + 7); got != 7 {
			t.Errorf("proc %d sees %d, want 7", p.ID(), got)
		}
	})
	if res.Time[stats.WriteDoubling] == 0 {
		t.Error("no write-doubling time charged")
	}
	if res.Counts[stats.TwinCreations] != 0 {
		t.Errorf("1L created %d twins", res.Counts[stats.TwinCreations])
	}
}

func TestComputeAndPolling(t *testing.T) {
	c, err := New(testConfig(TwoLevel, 1, 2))
	if err != nil {
		t.Fatal(err)
	}
	res := c.Run(func(p *Proc) {
		p.Compute(1000, 0)
		p.Compute(500, 1<<20) // with bus traffic
		p.Poll()
		p.PollN(10)
		p.PollN(-1) // no-op
	})
	if res.Time[stats.User] < 2*1500 {
		t.Errorf("User time = %d, want >= 3000", res.Time[stats.User])
	}
	if res.Time[stats.Polling] != 2*11*c.model.Poll {
		t.Errorf("Polling time = %d, want %d", res.Time[stats.Polling], 2*11*c.model.Poll)
	}
}

func TestVirtualTimeAdvancesThroughProtocol(t *testing.T) {
	for _, k := range allKinds {
		c, err := New(testConfig(k, 2, 2))
		if err != nil {
			t.Fatal(err)
		}
		res := c.Run(func(p *Proc) {
			p.Store(p.ID(), 1)
			p.Barrier()
			p.Load((p.ID() + 1) % 4)
		})
		if res.ExecNS <= 0 {
			t.Errorf("%v: ExecNS = %d", k, res.ExecNS)
		}
		for i, f := range res.Finish {
			if f <= 0 {
				t.Errorf("%v: proc %d finish = %d", k, i, f)
			}
		}
	}
}

func TestStatsPerProtocolShape(t *testing.T) {
	// 2L on a producer/consumer page pattern should transfer fewer
	// pages than 1LD on the identical program, thanks to intra-node
	// coalescing of fetches.
	run := func(k Kind) stats.Total {
		c, err := New(testConfig(k, 4, 4))
		if err != nil {
			t.Fatal(err)
		}
		res := c.Run(func(p *Proc) {
			if p.ID() == 0 {
				for i := 0; i < 16*8; i++ { // 8 pages
					p.Store(i, int64(i))
				}
			}
			p.Barrier()
			sum := int64(0)
			for i := 0; i < 16*8; i++ {
				sum += p.Load(i)
			}
			p.Barrier()
			_ = sum
		})
		return res.Total
	}
	twoL := run(TwoLevel)
	oneL := run(OneLevelDiff)
	if twoL.Counts[stats.PageTransfers] >= oneL.Counts[stats.PageTransfers] {
		t.Errorf("2L transfers (%d) not fewer than 1LD (%d)",
			twoL.Counts[stats.PageTransfers], oneL.Counts[stats.PageTransfers])
	}
	if twoL.DataBytes >= oneL.DataBytes {
		t.Errorf("2L data (%d) not less than 1LD (%d)", twoL.DataBytes, oneL.DataBytes)
	}
}

func TestHomeOptReducesOneLevelOverhead(t *testing.T) {
	// With the home-node optimization, processors co-located with the
	// home skip twin maintenance for those pages.
	run := func(homeOpt bool) stats.Total {
		cfg := testConfig(OneLevelDiff, 2, 4)
		cfg.HomeOpt = homeOpt
		c, err := New(cfg)
		if err != nil {
			t.Fatal(err)
		}
		res := c.Run(func(p *Proc) {
			// All procs write disjoint words of the same few pages.
			for i := 0; i < 8; i++ {
				p.Store(i*16+p.ID(), int64(p.ID()))
			}
			p.Barrier()
			for i := 0; i < 8; i++ {
				if got := p.Load(i*16 + (p.ID()+1)%8); got != int64((p.ID()+1)%8) {
					t.Errorf("homeOpt=%v: bad read %d", homeOpt, got)
					return
				}
			}
			p.Barrier()
		})
		return res.Total
	}
	with := run(true)
	without := run(false)
	if with.Counts[stats.TwinCreations] >= without.Counts[stats.TwinCreations] {
		t.Errorf("home-opt twins (%d) not fewer than base (%d)",
			with.Counts[stats.TwinCreations], without.Counts[stats.TwinCreations])
	}
}

func TestLockBasedMetaSameResults(t *testing.T) {
	// The lock-based ablation must produce identical memory results,
	// only different timing.
	cfg := testConfig(TwoLevel, 2, 2)
	cfg.LockBasedMeta = true
	c, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	c.Run(func(p *Proc) {
		p.Store(p.ID(), int64(p.ID()+50))
		p.Barrier()
		for i := 0; i < 4; i++ {
			if got := p.Load(i); got != int64(i+50) {
				t.Errorf("lock-based: proc %d sees %d, want %d", p.ID(), got, i+50)
				return
			}
		}
	})
}

func TestInterruptCostVariant(t *testing.T) {
	cfg := testConfig(TwoLevelSD, 2, 2)
	cfg.UseInterrupts = true
	c, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	c.Run(func(p *Proc) {
		p.Store(p.ID(), 1)
		p.Barrier()
		p.Load((p.ID() + 2) % 4)
		p.Barrier()
	})
}
