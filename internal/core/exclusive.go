package core

import (
	"cashmere/internal/diff"
	"cashmere/internal/directory"
	"cashmere/internal/stats"
	"cashmere/internal/trace"
)

// Exclusive mode (paper Sections 2.2 and 2.4.1).
//
// A node holding a page no other node is sharing may treat it as
// private: no twin, no dirty-list entry, no flushes or write notices.
// When another node faults on the page, it sends an explicit request to
// a processor on the holder node; the holder flushes the entire page to
// the home node, leaves exclusive mode, twins the page for any remaining
// local writers (queuing no-longer-exclusive notices they will find at
// their next release), and downgrades the responding processor's
// mapping to catch future writes.

// maybeBreakExclusive checks the directory for an exclusive holder of
// page on another node and, if found, breaks the page out of exclusive
// mode. It reports whether a break was performed (the caller's fault
// handler should re-run). Called with no node locks held.
func (p *Proc) maybeBreakExclusive(page int) bool {
	holderNode, holderProc, ok := p.c.dir.ExclHolder(p.n.id, page)
	if !ok || holderNode == p.n.id {
		return false
	}
	p.breakExclusive(page, holderNode, holderProc)
	return true
}

// breakExclusive performs the explicit-request exchange with the holder
// node, doing the holder's side of the work on its behalf (the request
// is noticed at the holder's next poll; its handler cost is charged to
// the requester's wait).
func (p *Proc) breakExclusive(page, holderNode, holderProc int) {
	c := p.c
	if p.ring != nil {
		begin := p.clk.Now()
		defer func() {
			p.emitSpan(trace.EvExclBreak, page, begin, int64(holderNode), int64(holderProc))
		}()
	}
	p.st.Inc(stats.ExplicitRequests)
	req := c.model.ExplicitRequest
	if c.cfg.UseInterrupts {
		if c.physOfProto(holderNode) == p.n.phys {
			req += c.model.IntraNodeInterrupt
		} else {
			req += c.model.InterNodeInterrupt
		}
	}
	p.chargeProtocol(req)

	p.trace(page, "break exclusive: holder node %d proc %d", holderNode, holderProc)
	x := c.nodes[holderNode]
	x.mu.Lock()
	defer x.mu.Unlock()

	word := c.dir.Load(holderNode, page, holderNode)
	if _, still := c.lay.Excl(word); !still {
		return // someone else already broke it
	}

	framePtr := x.frames[page].p.Load()
	if framePtr == nil {
		c.storeDirWord(p, holderNode, page, c.lay.ClearExcl(word))
		return
	}
	frame := *framePtr

	homeProto, _ := c.homeOf(page)
	if !x.frames[page].aliased.Load() {
		// Flush the entire page to the home node.
		diff.Copy(c.masters[page], frame)
		pageBytes := int64(c.cfg.PageWords) * wordBytes
		p.st.Inc(stats.PageFlushes)
		p.st.Data(pageBytes)
		arrival := c.net.Transfer(x.phys, pageBytes, p.clk.Now())
		p.chargeWait(arrival)
	}
	x.meta[page].flushTS = x.lclock.Tick()
	x.meta[page].updateTS = x.lclock.Now()

	// The responding processor downgrades its mapping to catch future
	// writes.
	holderLocal := c.localOfProc(holderProc)
	if x.vm.Proc(holderLocal).Get(page) == directory.ReadWrite {
		x.vm.Proc(holderLocal).Set(page, directory.ReadOnly)
		p.chargeProtocol(c.model.MProtect)
	}

	// The page must now be tracked like any shared page. The twin is
	// made from the master copy just flushed — the node's latest view
	// of the home's master (Section 2.5) — so any write the holder
	// performed between the flush snapshot and its downgrade (it runs
	// until its next poll) still differs from the twin and will be
	// flushed. No twin is needed when the holder node is the home (its
	// writes land in the master directly) or under write doubling
	// (in-flight writes are propagated eagerly).
	if !x.frames[page].aliased.Load() && x.twins[page] == nil &&
		c.cfg.Protocol != OneLevelWrite {
		x.twins[page] = x.newTwin(c.masters[page])
		p.st.Inc(stats.TwinCreations)
		p.chargeProtocol(c.model.Twin)
		p.emit(trace.EvTwin, page, int64(c.cfg.PageWords), 0)
	}
	// The holder and any remaining local writers get no-longer-exclusive
	// notices to find at their next releases — even on the home node,
	// where the release skips the data flush but must still send write
	// notices to remote sharers.
	x.procs[holderLocal].nle.Add(page)
	x.wbuf = x.vm.Writers(page, x.wbuf[:0])
	for _, w := range x.wbuf {
		x.procs[w].nle.Add(page)
	}

	p.st.Inc(stats.ExclTransitions)
	_, hproc := c.homeOf(page)
	_, _, done := decodeHome(c.homes[c.superOf(page)].Load())
	w := c.lay.Make(x.vm.Loosest(page), -1, hproc, done)
	_ = homeProto
	c.storeDirWord(p, holderNode, page, w)
}

// localOfProc maps a global processor id to its index within its
// protocol node.
func (c *Cluster) localOfProc(g int) int {
	if c.cfg.Protocol.TwoLevelFamily() {
		return g % c.cfg.ProcsPerNode
	}
	return 0
}
