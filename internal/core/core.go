// Package core implements the Cashmere coherence protocols on the
// simulated cluster: the two-level Cashmere-2L protocol of the paper,
// its shootdown variant (Cashmere-2LS), and the one-level comparison
// protocols (Cashmere-1LD with twins and diffs, Cashmere-1L with write
// doubling), plus the home-node-optimization and lock-based-metadata
// ablations.
//
// The engine uses direct execution: one goroutine per simulated
// processor really runs the application against word-granularity shared
// memory, with software page tables standing in for VM protection and
// per-processor virtual clocks (see internal/sim) standing in for real
// time. All protocol state transitions — faults, fetches, diffs,
// directory updates, write notices, exclusive mode — happen for real,
// so the applications' outputs validate the protocol end to end.
package core

import (
	"fmt"
	"math"
	"math/bits"
	"os"
	"sync"
	"sync/atomic"

	"cashmere/internal/costs"
	"cashmere/internal/diff"
	"cashmere/internal/directory"
	"cashmere/internal/msync"
	"cashmere/internal/sim"
	"cashmere/internal/stats"
	"cashmere/internal/topology"
	"cashmere/internal/trace"
	"cashmere/internal/transport"
	"cashmere/internal/transport/shmchan"
	"cashmere/internal/transport/simchan"
	"cashmere/internal/vm"
	"cashmere/internal/wnotice"
)

// Kind selects a coherence protocol.
type Kind int

// The protocols evaluated in the paper.
const (
	// TwoLevel is Cashmere-2L: hardware sharing within a node,
	// software coherence with two-way diffing across nodes.
	TwoLevel Kind = iota
	// TwoLevelSD is Cashmere-2LS: identical to TwoLevel but using
	// shootdown of concurrent local writers instead of two-way diffing.
	TwoLevelSD
	// OneLevelDiff is Cashmere-1LD: every processor is its own
	// protocol node; twins and outgoing diffs propagate changes.
	OneLevelDiff
	// OneLevelWrite is Cashmere-1L: every processor is its own
	// protocol node; shared writes are "doubled" through to the home
	// copy on the fly.
	OneLevelWrite
)

// String returns the paper's abbreviation for the protocol.
func (k Kind) String() string {
	switch k {
	case TwoLevel:
		return "2L"
	case TwoLevelSD:
		return "2LS"
	case OneLevelDiff:
		return "1LD"
	case OneLevelWrite:
		return "1L"
	default:
		return fmt.Sprintf("Kind(%d)", int(k))
	}
}

// TwoLevelFamily reports whether the protocol groups an SMP node's
// processors into one protocol node.
func (k Kind) TwoLevelFamily() bool { return k == TwoLevel || k == TwoLevelSD }

// Config describes a cluster and protocol configuration.
type Config struct {
	// Nodes and ProcsPerNode give the physical topology (the paper's
	// platform is 8 nodes x 4 processors). Configurations such as 8:2
	// use fewer processors per node.
	Nodes        int
	ProcsPerNode int

	// Topology, when non-zero, is the canonical cluster description: it
	// supplies Nodes, ProcsPerNode, and SuperpagePages, and its
	// interconnect parameters are folded into Model. The flat fields
	// above remain for callers that only need a shape; fill normalizes
	// the two views so Config() always returns a populated Topology.
	Topology topology.Spec

	// DirectoryLayout selects the directory word layout.
	// directory.LayoutAuto (the default) derives it from the topology:
	// the paper's packed 32-bit layout whenever every processor id fits
	// its 6-bit fields, the wide layout otherwise. Forcing LayoutPacked
	// on a larger topology is a construction-time error.
	DirectoryLayout directory.LayoutKind

	// Protocol selects the coherence protocol.
	Protocol Kind

	// HomeOpt enables the home-node optimization for the one-level
	// protocols: processors physically co-located with a page's home
	// access the master copy directly (Section 2.6). Ignored by the
	// two-level protocols, which subsume it.
	HomeOpt bool

	// LockBasedMeta replaces the lock-free directory and write-notice
	// structures with globally-locked ones (the Section 3.3.5
	// ablation).
	LockBasedMeta bool

	// UseInterrupts delivers explicit requests and shootdowns with
	// interrupts instead of message polling (Section 3.3.4).
	UseInterrupts bool

	// PageWords is the coherence block size in 64-bit words
	// (default 1024, i.e. the platform's 8 Kbyte page).
	PageWords int

	// SharedWords is the size of the shared address space in words.
	SharedWords int

	// SuperpagePages groups pages into superpages that share a home
	// node (default 8), reflecting the Memory Channel mapping-table
	// limits of Section 2.3.
	SuperpagePages int

	// Locks, Flags: how many application locks and flags to provide.
	Locks int
	Flags int

	// Model supplies operation costs; zero value means costs.Default().
	Model *costs.Model

	// Trace attaches a structured protocol-event recorder
	// (internal/trace). It must be sized for at least the cluster's
	// processor and physical-node counts. Nil disables tracing — the
	// protocol then pays one nil check per emission site, the access
	// fast path is untouched, and virtual-time results are bit-identical
	// to a build without the tracing layer. When nil and the
	// CASHMERE_TRACE_PAGE environment variable is set, New builds a
	// compatibility tracer that streams the variable's pages to stderr.
	Trace *trace.Tracer

	// Observer, when non-nil, is called with the fully-constructed
	// cluster at the end of New, before any processor runs. It is the
	// attachment hook for monitoring layers (internal/metrics): the
	// observer can hold the *Cluster and sample SnapshotStats, LinkBusy,
	// and HubBusy while Run executes. Observation must not mutate the
	// cluster; it charges no virtual time, so observed and unobserved
	// runs produce bit-identical statistics.
	Observer func(*Cluster)

	// Transport selects the fabric backend the cluster's regions and
	// transfers run over. transport.Sim (the zero value) is the
	// virtual-time Memory Channel simulator and the only backend the
	// golden paper configurations are pinned on; transport.SHM runs the
	// same engine over the in-process shared-memory fabric (no
	// virtual-time contention modelling). transport.TCP cannot host the
	// single-process engine — New returns an error directing callers to
	// the multi-process runtime (internal/mprun, cashmere-run -transport
	// tcp).
	Transport transport.Kind

	// Adaptive, when non-nil, attaches an adaptive per-page coherence
	// policy engine (internal/policy): the protocol feeds it fault and
	// flush events, and at every barrier global processor 0 runs a
	// decision epoch that may switch pages between write-invalidate,
	// write-update, and broadcast modes, migrate homes, and replicate
	// pages (see policy.go and docs/ADAPTIVE.md). Nil — the default —
	// keeps every page in write-invalidate mode and leaves the
	// protocol's virtual-time behavior bit-identical to a build without
	// the policy layer.
	Adaptive PolicyController
}

func (c *Config) fill() error {
	topoSet := c.Topology != (topology.Spec{})
	if topoSet {
		if err := c.Topology.Validate(); err != nil {
			return fmt.Errorf("core: %w", err)
		}
		c.Nodes = c.Topology.Nodes
		c.ProcsPerNode = c.Topology.ProcsPerNode
		if c.SuperpagePages == 0 {
			c.SuperpagePages = c.Topology.SuperpagePages
		}
	}
	if c.Nodes <= 0 || c.ProcsPerNode <= 0 {
		return fmt.Errorf("core: need positive Nodes and ProcsPerNode, got %d:%d", c.Nodes, c.ProcsPerNode)
	}
	if c.PageWords == 0 {
		c.PageWords = 1024
	}
	if c.PageWords < 1 {
		return fmt.Errorf("core: invalid PageWords %d", c.PageWords)
	}
	if c.SharedWords <= 0 {
		return fmt.Errorf("core: need positive SharedWords, got %d", c.SharedWords)
	}
	if c.SuperpagePages == 0 {
		c.SuperpagePages = 8
	}
	if c.Model == nil {
		m := costs.Default()
		c.Model = &m
	}
	if topoSet {
		m := c.Topology.ApplyModel(*c.Model)
		c.Model = &m
	}
	// Normalize: the Topology view always reflects the final shape.
	c.Topology.Nodes = c.Nodes
	c.Topology.ProcsPerNode = c.ProcsPerNode
	c.Topology.SuperpagePages = c.SuperpagePages
	return nil
}

// node is one protocol node: a physical SMP node under the two-level
// protocols, a single processor under the one-level protocols.
type node struct {
	id   int // protocol node id
	phys int // physical node hosting it

	mu sync.Mutex // protects protocol state below

	vm     *vm.Node    // per-processor page tables
	frames []frameSlot // local copy of each page (nil if unmapped)
	twins  [][]int64   // twin of each page (nil if none)
	meta   []pageMeta  // second-level directory timestamps
	lclock directory.LClock

	// gwn is the node's globally-accessible write-notice list (one bin
	// per remote protocol node); under the lock-based ablation the
	// single locked list is used instead.
	gwn      *wnotice.Global
	wnLocked *wnotice.Locked

	// arrived flags each local processor's arrival at the current
	// barrier episode, for the last-arriving-local-writer flush rule.
	arrived []bool

	// twinPool recycles retired twin buffers so steady-state twinning
	// allocates nothing; wbuf is reusable scratch for Writers/Mapped
	// queries. Both are protected by mu.
	twinPool [][]int64
	wbuf     []int

	procs []*Proc // local processors
}

// newTwin returns a twin of src, refilling a pooled buffer when one is
// available. Called with n.mu held.
func (n *node) newTwin(src []int64) []int64 {
	var t []int64
	if k := len(n.twinPool); k > 0 {
		t = n.twinPool[k-1]
		n.twinPool[k-1] = nil
		n.twinPool = n.twinPool[:k-1]
	} else {
		t = make([]int64, len(src))
	}
	diff.CopyIn(t, src)
	return t
}

// dropTwin retires page's twin, if any, into the pool. Called with
// n.mu held.
func (n *node) dropTwin(page int) {
	if t := n.twins[page]; t != nil {
		n.twins[page] = nil
		n.twinPool = append(n.twinPool, t)
	}
}

// frameSlot holds an atomically-published page frame pointer: the access
// fast path reads it without the node lock. aliased records whether the
// frame is the master copy itself (home node, or the home-node
// optimization), which the 1L write-doubling fast path consults.
type frameSlot struct {
	p       framePtr
	aliased atomic.Bool
}

// pageMeta is the per-page second-level directory entry: the three
// logical timestamps of Section 2.3.
type pageMeta struct {
	flushTS  int64 // completion time of the last home-node flush
	updateTS int64 // completion time of the last local update
	wnTS     int64 // time the most recent write notice was received
}

// Cluster is a running simulated cluster.
type Cluster struct {
	cfg   Config
	model *costs.Model
	net   transport.Fabric
	dir   *directory.Global
	lay   directory.Layout // word layout, derived from the topology
	tr    *trace.Tracer    // nil when tracing is disabled

	pages      int
	superpages int

	// pageShift/pageMask provide shift/mask page arithmetic when
	// PageWords is a power of two (pageShift is -1 otherwise and the
	// access paths fall back to div/mod). Validated in New.
	pageShift int
	pageMask  int

	// masters[p] is page p's master copy — the Memory Channel receive
	// region at the home node. The home node's local frame aliases it.
	masters [][]int64

	// Home state per superpage: packed (protoNode, proc, firstTouched)
	// words readable lock-free; relocation serializes on homeLock.
	// homeNode/homeProc hold the round-robin defaults from New.
	homeLock sim.VLock
	homes    []atomic.Int64
	homeNode []int
	homeProc []int

	// pageModes holds each page's adaptive coherence mode (PageMode
	// values; all ModeInvalidate unless a policy engine or the
	// verification harness switches a page). Read lock-free on the
	// fault and acquire paths.
	pageModes []atomic.Int32

	// decideBar is the decision-epoch gate: with Config.Adaptive set,
	// every barrier ends with this second rendezvous, entered by
	// processor 0 only after running the policy engine's decision so
	// the release time charges the decision work to everyone.
	decideBar *sim.Rendezvous

	// policyEpoch counts decision epochs; touched only by global
	// processor 0 inside the decision gate.
	policyEpoch int

	// initFlag is raised by EndInit: first-touch relocation is enabled
	// only after program initialization (Section 2.3).
	initFlag atomic.Bool

	// charging gates virtual-time charging of protocol operations; it
	// is lowered during the BeginInit/EndInit initialization epoch so
	// scaled-down problems are not dominated by initialization costs
	// the paper's full-length runs amortize.
	charging atomic.Bool

	nodes []*node
	procs []*Proc

	locks []*msync.Lock
	flags []*msync.Flag
	bar   *msync.Barrier
}

// New builds a cluster for the given configuration.
func New(cfg Config) (*Cluster, error) {
	if err := cfg.fill(); err != nil {
		return nil, err
	}
	c := &Cluster{cfg: cfg, model: cfg.Model}
	c.charging.Store(true)
	c.pageShift, c.pageMask = -1, 0
	if cfg.PageWords&(cfg.PageWords-1) == 0 {
		c.pageShift = bits.TrailingZeros(uint(cfg.PageWords))
		c.pageMask = cfg.PageWords - 1
	}
	c.pages = (cfg.SharedWords + cfg.PageWords - 1) / cfg.PageWords
	c.superpages = (c.pages + cfg.SuperpagePages - 1) / cfg.SuperpagePages

	total := cfg.Nodes * cfg.ProcsPerNode
	c.tr = cfg.Trace
	if c.tr == nil {
		c.tr = envTracer(total, cfg.Nodes)
	}
	if c.tr != nil {
		if c.tr.Procs() < total || c.tr.Links() < cfg.Nodes {
			return nil, fmt.Errorf("core: tracer sized for %d procs / %d links, cluster needs %d / %d",
				c.tr.Procs(), c.tr.Links(), total, cfg.Nodes)
		}
		// Reject filter pages the address space does not contain, with
		// the same warning bad CASHMERE_TRACE_PAGE values get.
		c.tr.ClampPages(c.pages, func(page int) {
			fmt.Fprintf(os.Stderr, "cashmere: ignoring traced page %d: cluster has %d pages\n",
				page, c.pages)
		})
	}

	switch cfg.Transport {
	case transport.Sim:
		c.net = simchan.New(cfg.Nodes, *c.model)
	case transport.SHM:
		c.net = shmchan.New(cfg.Nodes, *c.model)
	case transport.TCP:
		return nil, fmt.Errorf("core: the tcp transport connects separate OS processes and cannot host the single-process engine; run it through cashmere-run -transport tcp (internal/mprun)")
	default:
		return nil, fmt.Errorf("core: unknown transport %v", cfg.Transport)
	}
	c.net.SetTracer(c.tr)

	// The directory's processor fields hold global processor ids, so the
	// layout is sized for the largest one. Oversized topologies surface
	// here as a construction error naming the violated limit, not as a
	// panic deep in an encode path mid-run.
	lay, err := directory.ChooseLayout(cfg.DirectoryLayout, total-1)
	if err != nil {
		return nil, fmt.Errorf("core: topology %s (%d processors): %w", cfg.Topology, total, err)
	}
	c.lay = lay

	protoNodes := cfg.Nodes
	if !cfg.Protocol.TwoLevelFamily() {
		protoNodes = cfg.Nodes * cfg.ProcsPerNode
	}
	physOf := func(pn int) int { return c.physOfProto(pn) }
	c.dir = directory.NewGlobal(c.net, lay, c.pages, protoNodes, physOf, cfg.LockBasedMeta)

	c.masters = make([][]int64, c.pages)
	for p := range c.masters {
		c.masters[p] = make([]int64, cfg.PageWords)
	}
	c.pageModes = make([]atomic.Int32, c.pages)

	c.homeNode = make([]int, c.superpages)
	c.homeProc = make([]int, c.superpages)
	for sp := range c.homeNode {
		// Round-robin default assignment across protocol nodes.
		c.homeNode[sp] = sp % protoNodes
		c.homeProc[sp] = c.firstProcOf(c.homeNode[sp])
	}
	c.initHomes()

	procsPerProto := cfg.ProcsPerNode
	if !cfg.Protocol.TwoLevelFamily() {
		procsPerProto = 1
	}
	c.nodes = make([]*node, protoNodes)
	for i := range c.nodes {
		n := &node{
			id:      i,
			phys:    c.physOfProto(i),
			vm:      vm.NewNode(procsPerProto, c.pages),
			frames:  make([]frameSlot, c.pages),
			twins:   make([][]int64, c.pages),
			meta:    make([]pageMeta, c.pages),
			arrived: make([]bool, procsPerProto),
		}
		if cfg.LockBasedMeta {
			n.wnLocked = wnotice.NewLocked()
		} else {
			n.gwn = wnotice.NewGlobal(protoNodes)
		}
		c.nodes[i] = n
	}

	c.procs = make([]*Proc, total)
	for g := 0; g < total; g++ {
		pn := c.protoOfProc(g)
		n := c.nodes[pn]
		local := len(n.procs)
		p := &Proc{
			c:         c,
			n:         n,
			global:    g,
			local:     local,
			table:     n.vm.Proc(local),
			vmEpoch:   n.vm.Epoch(),
			pageShift: c.pageShift,
			pageMask:  c.pageMask,
			sd:        cfg.Protocol == TwoLevelSD,
			nle:       wnotice.NewPerProc(c.pages),
			pwn:       wnotice.NewPerProc(c.pages),
			dirtyIn:   make([]bool, c.pages),
		}
		if c.tr != nil {
			p.tr = c.tr
			p.ring = c.tr.ProcRing(g)
		}
		for i := range p.tlb {
			p.tlb[i].page = -1
		}
		p.activeRange.Store(-1)
		n.procs = append(n.procs, p)
		c.procs[g] = p
	}

	c.locks = make([]*msync.Lock, cfg.Locks)
	for i := range c.locks {
		c.locks[i] = msync.NewLock(c.net)
	}
	c.flags = make([]*msync.Flag, cfg.Flags)
	for i := range c.flags {
		c.flags[i] = msync.NewFlag(c.net)
	}
	c.bar = msync.NewBarrier(total, c.model.Barrier(total, cfg.Protocol.TwoLevelFamily()))
	c.decideBar = sim.NewRendezvous(total)
	if cfg.Observer != nil {
		cfg.Observer(c)
	}
	return c, nil
}

// physOfProto maps a protocol node to its physical node.
func (c *Cluster) physOfProto(pn int) int {
	if c.cfg.Protocol.TwoLevelFamily() {
		return pn
	}
	return pn / c.cfg.ProcsPerNode
}

// protoOfProc maps a global processor id to its protocol node.
func (c *Cluster) protoOfProc(g int) int {
	if c.cfg.Protocol.TwoLevelFamily() {
		return g / c.cfg.ProcsPerNode
	}
	return g
}

// firstProcOf returns the lowest global processor id on protocol node pn.
func (c *Cluster) firstProcOf(pn int) int {
	if c.cfg.Protocol.TwoLevelFamily() {
		return pn * c.cfg.ProcsPerNode
	}
	return pn
}

// protoOfHomeProc maps the directory's home processor id back to its
// protocol node.
func (c *Cluster) protoOfHomeProc(proc int) int { return c.protoOfProc(proc) }

// NumProcs returns the total processor count.
func (c *Cluster) NumProcs() int { return len(c.procs) }

// Pages returns the number of shared pages.
func (c *Cluster) Pages() int { return c.pages }

// PageWords returns the coherence block size in words.
func (c *Cluster) PageWords() int { return c.cfg.PageWords }

// Config returns the cluster's (filled-in) configuration.
func (c *Cluster) Config() Config { return c.cfg }

// Model returns the cost model the cluster charges operations under.
func (c *Cluster) Model() costs.Model { return *c.model }

// Tracer returns the attached protocol-event tracer (which may have
// been built from CASHMERE_TRACE_PAGE), or nil when tracing is
// disabled.
func (c *Cluster) Tracer() *trace.Tracer { return c.tr }

// Result summarizes a run.
type Result struct {
	stats.Total
	Finish []int64 // per-processor finishing virtual times
}

// Run executes body on every simulated processor concurrently and
// returns the aggregated statistics. It may be called once per cluster.
func (c *Cluster) Run(body func(p *Proc)) Result {
	var wg sync.WaitGroup
	for _, p := range c.procs {
		wg.Add(1)
		go func(p *Proc) {
			defer wg.Done()
			body(p)
		}(p)
	}
	wg.Wait()

	finish := make([]int64, len(c.procs))
	perProc := make([]*stats.Proc, len(c.procs))
	for i, p := range c.procs {
		finish[i] = p.clk.Now()
		perProc[i] = &p.st
	}
	return Result{Total: stats.Aggregate(perProc, finish), Finish: finish}
}

// superOf returns the superpage containing page.
func (c *Cluster) superOf(page int) int { return page / c.cfg.SuperpagePages }

// ReadShared returns the current value of the shared word at addr. It
// is intended for validating results after Run returns: it reads the
// master copy, or the exclusive holder's frame for pages still held in
// exclusive mode (whose master may be stale by design).
func (c *Cluster) ReadShared(addr int) int64 {
	page := addr / c.cfg.PageWords
	off := addr % c.cfg.PageWords
	// Scan for the holder through each node's own directory replica:
	// the directory has no loop-back, so only the owner's doubled copy
	// of its word is authoritative.
	if holder, _, ok := c.dir.ExclHolderOwn(page); ok {
		if f := c.nodes[holder].frames[page].p.Load(); f != nil {
			return atomic.LoadInt64(&(*f)[off])
		}
	}
	return atomic.LoadInt64(&c.masters[page][off])
}

// ReadSharedF returns ReadShared(addr) interpreted as a float64.
func (c *Cluster) ReadSharedF(addr int) float64 {
	return math.Float64frombits(uint64(c.ReadShared(addr)))
}

// BytesMoved returns the total Memory Channel payload traffic so far.
func (c *Cluster) BytesMoved() int64 { return c.net.BytesMoved() }

// SnapshotStats aggregates the per-processor statistics as they stand
// right now. It is a monitoring-grade read: the per-processor counters
// are plain fields written by their owner goroutines, so a snapshot
// taken mid-run may be slightly stale or internally inconsistent
// (individual counters are read without synchronization). That is
// acceptable for a metrics scrape and free for the simulated
// processors — sampling charges no virtual time and takes no protocol
// lock. After Run returns the snapshot is exact.
func (c *Cluster) SnapshotStats() stats.Total {
	finish := make([]int64, len(c.procs))
	perProc := make([]*stats.Proc, len(c.procs))
	for i, p := range c.procs {
		finish[i] = p.clk.Now()
		perProc[i] = &p.st
	}
	return stats.Aggregate(perProc, finish)
}

// LinkBusy returns each Memory Channel link's cumulative busy
// (occupied) virtual nanoseconds, indexed by physical node. Like
// SnapshotStats, mid-run reads are monitoring-grade.
func (c *Cluster) LinkBusy() []int64 {
	busy := make([]int64, c.cfg.Nodes)
	for i := range busy {
		busy[i] = c.net.LinkBusyNS(i)
	}
	return busy
}

// HubBusy returns the shared hub's cumulative busy virtual nanoseconds
// and whether the configured fabric has a hub at all (the switched
// fabric does not).
func (c *Cluster) HubBusy() (int64, bool) { return c.net.HubBusyNS() }
