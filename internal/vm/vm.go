// Package vm provides the software page tables of the simulator.
//
// The real Cashmere-2L tracks shared accesses with virtual-memory
// protection: pages are mprotect-ed and SIGSEGV delivery enters the
// protocol. A Go process cannot cede page-fault handling to a library
// (the runtime owns signals and memory mappings), so the simulator keeps
// an explicit per-processor permission table and checks it inline on
// every shared access — the same detection points, with the paper's
// fault (72 us) and mprotect (55 us) costs charged by the protocol
// engine when the tables are consulted and changed.
//
// # Concurrency contract
//
// Tables are read on the access fast path by application goroutines and
// written by protocol code (sometimes on behalf of *other* processors:
// exclusive-mode breaks and shootdowns downgrade someone else's
// mappings), so entries are accessed atomically. All writes to a node's
// tables happen under that node's protocol mutex; reads take no lock.
// A reader that raced a concurrent Set may therefore act on a
// permission that is one transition out of date — the same window a
// real processor has between a remote mprotect and its TLB shootdown
// interrupt — and the protocol absorbs it (see core's fault handling).
// The aggregate queries Loosest, Writers, and Mapped are consistent
// only when called under the owning node's mutex; lock-free callers get
// a snapshot in which concurrent transitions may be half-visible.
//
// # Epochs
//
// Each Node carries a generation counter ("epoch") bumped after every
// permission change on any of its tables and, by the protocol engine,
// after every page-frame publish or alias flip. Per-processor software
// TLBs (core.Proc) tag cached translations with the epoch observed
// *before* reading the table and frame state; a cached entry is used
// only while its tag equals the current epoch, so any protocol
// transition — including cross-processor downgrades — invalidates every
// TLB on the node at the next access. Writers must make their state
// change visible before bumping (store state, then Bump); fillers must
// read the epoch before the state they cache. Both orders are provided
// by sync/atomic's sequential consistency.
package vm

import (
	"sync/atomic"

	"cashmere/internal/directory"
)

// Table is one processor's page permission table.
type Table struct {
	perms []uint32
	epoch *atomic.Uint64 // the owning Node's epoch (private when standalone)
}

// NewTable returns a table of pages entries, all Invalid.
func NewTable(pages int) *Table {
	return &Table{perms: make([]uint32, pages), epoch: new(atomic.Uint64)}
}

// Pages returns the number of pages the table covers.
func (t *Table) Pages() int { return len(t.perms) }

// Get returns the permission for page.
func (t *Table) Get(page int) directory.Perm {
	return directory.Perm(atomic.LoadUint32(&t.perms[page]))
}

// Set changes the permission for page (the simulator's mprotect) and
// bumps the owning node's epoch, invalidating cached translations.
func (t *Table) Set(page int, p directory.Perm) {
	atomic.StoreUint32(&t.perms[page], uint32(p))
	t.epoch.Add(1)
}

// CanRead reports whether a read access to page would succeed.
func (t *Table) CanRead(page int) bool {
	return atomic.LoadUint32(&t.perms[page]) >= uint32(directory.ReadOnly)
}

// CanWrite reports whether a write access to page would succeed.
func (t *Table) CanWrite(page int) bool {
	return atomic.LoadUint32(&t.perms[page]) >= uint32(directory.ReadWrite)
}

// Node groups the tables of one SMP node's processors and answers the
// second-level directory's mapping queries.
type Node struct {
	tables []*Table
	epoch  atomic.Uint64
}

// NewNode returns tables for procs processors over pages pages.
func NewNode(procs, pages int) *Node {
	n := &Node{tables: make([]*Table, procs)}
	for i := range n.tables {
		n.tables[i] = &Table{perms: make([]uint32, pages), epoch: &n.epoch}
	}
	return n
}

// Procs returns the number of processors on the node.
func (n *Node) Procs() int { return len(n.tables) }

// Proc returns processor i's table.
func (n *Node) Proc(i int) *Table { return n.tables[i] }

// Epoch returns the node's current translation generation. TLB fills
// must read it before reading the permission and frame state they
// cache.
func (n *Node) Epoch() *atomic.Uint64 { return &n.epoch }

// Bump invalidates every cached translation for the node. The protocol
// engine calls it after republishing a page frame or flipping an alias
// bit; Table.Set calls it implicitly. The state change must be visible
// before the bump.
func (n *Node) Bump() { n.epoch.Add(1) }

// Loosest returns the loosest permission any processor on the node
// holds for page — the value recorded in the node's global directory
// word. It short-circuits at ReadWrite, the loosest permission there
// is. Consistent only under the owning node's mutex.
func (n *Node) Loosest(page int) directory.Perm {
	loosest := directory.Invalid
	for _, t := range n.tables {
		if p := t.Get(page); p > loosest {
			if p == directory.ReadWrite {
				return p
			}
			loosest = p
		}
	}
	return loosest
}

// HasWriters reports whether any processor on the node holds a
// read-write mapping for page, without building the list Writers
// returns. Consistent only under the owning node's mutex.
func (n *Node) HasWriters(page int) bool {
	for _, t := range n.tables {
		if t.Get(page) == directory.ReadWrite {
			return true
		}
	}
	return false
}

// Writers appends to buf the processors holding read-write mappings for
// page and returns the extended slice. Consistent only under the owning
// node's mutex; callers there may reuse a scratch buffer across calls.
func (n *Node) Writers(page int, buf []int) []int {
	for i, t := range n.tables {
		if t.Get(page) == directory.ReadWrite {
			buf = append(buf, i)
		}
	}
	return buf
}

// Mapped appends to buf the processors holding any valid mapping for
// page and returns the extended slice. Consistent only under the owning
// node's mutex; callers there may reuse a scratch buffer across calls.
func (n *Node) Mapped(page int, buf []int) []int {
	for i, t := range n.tables {
		if t.Get(page) != directory.Invalid {
			buf = append(buf, i)
		}
	}
	return buf
}
