// Package vm provides the software page tables of the simulator.
//
// The real Cashmere-2L tracks shared accesses with virtual-memory
// protection: pages are mprotect-ed and SIGSEGV delivery enters the
// protocol. A Go process cannot cede page-fault handling to a library
// (the runtime owns signals and memory mappings), so the simulator keeps
// an explicit per-processor permission table and checks it inline on
// every shared access — the same detection points, with the paper's
// fault (72 us) and mprotect (55 us) costs charged by the protocol
// engine when the tables are consulted and changed.
//
// Tables are read on the access fast path by application goroutines and
// written by protocol code (sometimes on behalf of *other* processors:
// exclusive-mode breaks and shootdowns downgrade someone else's
// mappings), so entries are accessed atomically.
package vm

import (
	"sync/atomic"

	"cashmere/internal/directory"
)

// Table is one processor's page permission table.
type Table struct {
	perms []uint32
}

// NewTable returns a table of pages entries, all Invalid.
func NewTable(pages int) *Table {
	return &Table{perms: make([]uint32, pages)}
}

// Pages returns the number of pages the table covers.
func (t *Table) Pages() int { return len(t.perms) }

// Get returns the permission for page.
func (t *Table) Get(page int) directory.Perm {
	return directory.Perm(atomic.LoadUint32(&t.perms[page]))
}

// Set changes the permission for page (the simulator's mprotect).
func (t *Table) Set(page int, p directory.Perm) {
	atomic.StoreUint32(&t.perms[page], uint32(p))
}

// CanRead reports whether a read access to page would succeed.
func (t *Table) CanRead(page int) bool {
	return atomic.LoadUint32(&t.perms[page]) >= uint32(directory.ReadOnly)
}

// CanWrite reports whether a write access to page would succeed.
func (t *Table) CanWrite(page int) bool {
	return atomic.LoadUint32(&t.perms[page]) >= uint32(directory.ReadWrite)
}

// Node groups the tables of one SMP node's processors and answers the
// second-level directory's mapping queries.
type Node struct {
	tables []*Table
}

// NewNode returns tables for procs processors over pages pages.
func NewNode(procs, pages int) *Node {
	n := &Node{tables: make([]*Table, procs)}
	for i := range n.tables {
		n.tables[i] = NewTable(pages)
	}
	return n
}

// Procs returns the number of processors on the node.
func (n *Node) Procs() int { return len(n.tables) }

// Proc returns processor i's table.
func (n *Node) Proc(i int) *Table { return n.tables[i] }

// Loosest returns the loosest permission any processor on the node
// holds for page — the value recorded in the node's global directory
// word.
func (n *Node) Loosest(page int) directory.Perm {
	loosest := directory.Invalid
	for _, t := range n.tables {
		if p := t.Get(page); p > loosest {
			loosest = p
		}
	}
	return loosest
}

// Writers appends to buf the processors holding read-write mappings for
// page and returns the extended slice.
func (n *Node) Writers(page int, buf []int) []int {
	for i, t := range n.tables {
		if t.Get(page) == directory.ReadWrite {
			buf = append(buf, i)
		}
	}
	return buf
}

// Mapped appends to buf the processors holding any valid mapping for
// page and returns the extended slice.
func (n *Node) Mapped(page int, buf []int) []int {
	for i, t := range n.tables {
		if t.Get(page) != directory.Invalid {
			buf = append(buf, i)
		}
	}
	return buf
}
