package vm

import (
	"sync"
	"testing"

	"cashmere/internal/directory"
)

func TestTablePermissions(t *testing.T) {
	tab := NewTable(8)
	if tab.Pages() != 8 {
		t.Errorf("Pages = %d", tab.Pages())
	}
	if tab.Get(3) != directory.Invalid {
		t.Error("new table not Invalid")
	}
	if tab.CanRead(3) || tab.CanWrite(3) {
		t.Error("invalid page readable/writable")
	}
	tab.Set(3, directory.ReadOnly)
	if !tab.CanRead(3) {
		t.Error("RO page not readable")
	}
	if tab.CanWrite(3) {
		t.Error("RO page writable")
	}
	tab.Set(3, directory.ReadWrite)
	if !tab.CanRead(3) || !tab.CanWrite(3) {
		t.Error("RW page not accessible")
	}
	tab.Set(3, directory.Invalid)
	if tab.CanRead(3) {
		t.Error("invalidated page still readable")
	}
}

func TestNodeLoosest(t *testing.T) {
	n := NewNode(4, 4)
	if n.Procs() != 4 {
		t.Errorf("Procs = %d", n.Procs())
	}
	if n.Loosest(0) != directory.Invalid {
		t.Error("empty node loosest != Invalid")
	}
	n.Proc(1).Set(0, directory.ReadOnly)
	if n.Loosest(0) != directory.ReadOnly {
		t.Errorf("loosest = %v, want ro", n.Loosest(0))
	}
	n.Proc(3).Set(0, directory.ReadWrite)
	if n.Loosest(0) != directory.ReadWrite {
		t.Errorf("loosest = %v, want rw", n.Loosest(0))
	}
}

func TestNodeWritersAndMapped(t *testing.T) {
	n := NewNode(4, 2)
	n.Proc(0).Set(1, directory.ReadOnly)
	n.Proc(2).Set(1, directory.ReadWrite)
	n.Proc(3).Set(1, directory.ReadWrite)

	w := n.Writers(1, nil)
	if len(w) != 2 || w[0] != 2 || w[1] != 3 {
		t.Errorf("Writers = %v, want [2 3]", w)
	}
	m := n.Mapped(1, nil)
	if len(m) != 3 || m[0] != 0 || m[1] != 2 || m[2] != 3 {
		t.Errorf("Mapped = %v, want [0 2 3]", m)
	}
	// Append semantics reuse the caller's buffer.
	buf := make([]int, 0, 4)
	w2 := n.Writers(1, buf)
	if len(w2) != 2 {
		t.Errorf("Writers with buf = %v", w2)
	}
	if n.Writers(0, nil) != nil {
		t.Error("Writers of untouched page not empty")
	}
}

func TestConcurrentPermissionChanges(t *testing.T) {
	// Protocol code downgrades other processors' mappings while they
	// run; the table must tolerate concurrent Get/Set.
	tab := NewTable(64)
	var wg sync.WaitGroup
	stop := make(chan struct{})
	wg.Add(1)
	go func() {
		defer wg.Done()
		for {
			select {
			case <-stop:
				return
			default:
			}
			for p := 0; p < 64; p++ {
				tab.CanRead(p)
				tab.CanWrite(p)
			}
		}
	}()
	for i := 0; i < 1000; i++ {
		p := i % 64
		tab.Set(p, directory.ReadWrite)
		tab.Set(p, directory.ReadOnly)
		tab.Set(p, directory.Invalid)
	}
	close(stop)
	wg.Wait()
}
