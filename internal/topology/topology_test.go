package topology

import (
	"strings"
	"testing"

	"cashmere/internal/costs"
)

func TestParse(t *testing.T) {
	cases := []struct {
		in         string
		nodes, ppn int
	}{
		{"32:4", 8, 4},
		{"8:1", 8, 1},
		{"8:2", 4, 2},
		{"1:1", 1, 1},
		{"128:4", 32, 4},
		{"248:62", 4, 62},
	}
	for _, c := range cases {
		got, err := Parse(c.in)
		if err != nil {
			t.Errorf("Parse(%q): %v", c.in, err)
			continue
		}
		if got.Nodes != c.nodes || got.ProcsPerNode != c.ppn {
			t.Errorf("Parse(%q) = %d nodes x %d, want %d x %d",
				c.in, got.Nodes, got.ProcsPerNode, c.nodes, c.ppn)
		}
		if got.String() != c.in {
			t.Errorf("Parse(%q).String() = %q", c.in, got.String())
		}
	}
}

func TestParseErrors(t *testing.T) {
	for _, in := range []string{
		"", "32", "32:", ":4", "32:4:1", "a:4", "32:b",
		"0:4", "32:0", "-32:4", "32:-4",
		"31:4", // not a multiple
		"8x4",  // wrong separator
	} {
		_, err := Parse(in)
		if err == nil {
			t.Errorf("Parse(%q) did not fail", in)
			continue
		}
		// Every malformed string gets the one shared error quoting the
		// grammar, not divergent ad-hoc messages.
		if !strings.Contains(err.Error(), "procs:procsPerNode") {
			t.Errorf("Parse(%q) error %q does not quote the grammar", in, err)
		}
	}
}

func TestValidate(t *testing.T) {
	if err := New(8, 4).Validate(); err != nil {
		t.Errorf("8x4 invalid: %v", err)
	}
	if err := (Spec{Nodes: 0, ProcsPerNode: 4}).Validate(); err == nil {
		t.Error("0 nodes validated")
	}
	if err := (Spec{Nodes: 8, ProcsPerNode: 4, SuperpagePages: -1}).Validate(); err == nil {
		t.Error("negative superpages validated")
	}
}

func TestProcsAndLabel(t *testing.T) {
	s := New(8, 4)
	if s.Procs() != 32 {
		t.Errorf("Procs = %d", s.Procs())
	}
	if s.String() != "32:4" {
		t.Errorf("String = %q", s.String())
	}
}

func TestApplyModel(t *testing.T) {
	m := costs.Default()
	// Zero interconnect: the paper's model, untouched.
	got := New(8, 4).ApplyModel(m)
	if got != m {
		t.Error("zero interconnect changed the model")
	}

	s := New(32, 4)
	s.Interconnect = Interconnect{
		Fabric:             costs.FabricSwitched,
		LinkBandwidth:      100 << 20,
		AggregateBandwidth: 500 << 20,
	}
	got = s.ApplyModel(m)
	if got.MCFabric != costs.FabricSwitched {
		t.Errorf("fabric = %v", got.MCFabric)
	}
	if got.MCLinkBandwidth != 100<<20 || got.MCAggregateBandwidth != 500<<20 {
		t.Errorf("bandwidths = %d/%d", got.MCLinkBandwidth, got.MCAggregateBandwidth)
	}
}
