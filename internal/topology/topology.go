// Package topology describes the shape of a simulated Cashmere cluster:
// how many SMP nodes it has, how many processors each node carries, how
// pages group into superpages, and which interconnect contention model
// connects the nodes.
//
// The paper evaluates one fixed platform — eight 4-processor
// AlphaServer nodes on a first-generation Memory Channel — and earlier
// revisions of this reproduction baked that ceiling into the protocol
// layers. A Spec is the explicit, configuration-driven alternative:
// internal/core derives its directory layout, home assignment, and
// synchronization sizing from the Spec it is given, internal/bench
// sweeps over Specs, and the cmd/ flag surface parses them from the
// paper's P:ppn notation. Nothing in the protocol layer may assume the
// paper's 8x4 shape.
package topology

import (
	"fmt"
	"strconv"
	"strings"

	"cashmere/internal/costs"
)

// Grammar documents the topology string syntax shared by every flag
// that accepts a topology (-topology, -trace-cell, -scaling): the
// paper's notation "procs:procsPerNode", where procs is the total
// processor count and must be an exact multiple of procsPerNode.
const Grammar = `"procs:procsPerNode" — total processors, a colon, and processors per SMP node; procs must be a positive multiple of procsPerNode (e.g. "32:4" is 8 nodes of 4 processors)`

// Interconnect overrides the network contention parameters of the cost
// model. Zero-valued fields keep the model's (paper) constants, so the
// zero value is the paper's first-generation Memory Channel.
type Interconnect struct {
	// Fabric selects the contention topology: the paper's serial hub
	// (zero value) or a switched crossbar.
	Fabric costs.Fabric

	// LinkBandwidth, if nonzero, replaces the model's per-link
	// bandwidth (bytes per second; the paper's PCI-limited 29 MB/s).
	LinkBandwidth int64

	// AggregateBandwidth, if nonzero, replaces the model's aggregate
	// serial-hub bandwidth (bytes per second; the paper's ~60 MB/s).
	// Meaningless under a switched fabric, which has no shared cap.
	AggregateBandwidth int64
}

// Spec is a complete cluster topology description.
type Spec struct {
	// Nodes and ProcsPerNode give the physical shape. The paper's
	// platform is 8 nodes x 4 processors ("32:4").
	Nodes        int
	ProcsPerNode int

	// SuperpagePages groups pages into superpages sharing a home node;
	// zero selects the paper's default of 8 (the Memory Channel
	// mapping-table limit of Section 2.3).
	SuperpagePages int

	// Interconnect parameterizes the network contention model; the
	// zero value is the paper's serial Memory Channel.
	Interconnect Interconnect
}

// New returns a Spec with the given shape and paper-default superpage
// grouping and interconnect.
func New(nodes, procsPerNode int) Spec {
	return Spec{Nodes: nodes, ProcsPerNode: procsPerNode}
}

// Procs returns the total processor count.
func (s Spec) Procs() int { return s.Nodes * s.ProcsPerNode }

// String renders the paper's P:ppn notation, e.g. "32:4".
func (s Spec) String() string {
	return fmt.Sprintf("%d:%d", s.Procs(), s.ProcsPerNode)
}

// Validate reports whether the Spec describes a runnable cluster.
func (s Spec) Validate() error {
	if s.Nodes <= 0 || s.ProcsPerNode <= 0 {
		return fmt.Errorf("topology: need positive nodes and procs per node, got %d nodes x %d procs", s.Nodes, s.ProcsPerNode)
	}
	if s.SuperpagePages < 0 {
		return fmt.Errorf("topology: negative superpage grouping %d", s.SuperpagePages)
	}
	return nil
}

// ApplyModel folds the Spec's interconnect overrides into a copy of the
// cost model.
func (s Spec) ApplyModel(m costs.Model) costs.Model {
	m.MCFabric = s.Interconnect.Fabric
	if s.Interconnect.LinkBandwidth > 0 {
		m.MCLinkBandwidth = s.Interconnect.LinkBandwidth
	}
	if s.Interconnect.AggregateBandwidth > 0 {
		m.MCAggregateBandwidth = s.Interconnect.AggregateBandwidth
	}
	return m
}

// Parse parses the shared topology grammar (see Grammar): the paper's
// "procs:procsPerNode" notation, e.g. "32:4" for 8 nodes of 4
// processors. Every malformed input yields the same error, which quotes
// the grammar.
func Parse(s string) (Spec, error) {
	bad := func() (Spec, error) {
		return Spec{}, fmt.Errorf("topology: cannot parse %q: want %s", s, Grammar)
	}
	procsStr, ppnStr, ok := strings.Cut(s, ":")
	if !ok {
		return bad()
	}
	procs, err := strconv.Atoi(procsStr)
	if err != nil {
		return bad()
	}
	ppn, err := strconv.Atoi(ppnStr)
	if err != nil {
		return bad()
	}
	if procs <= 0 || ppn <= 0 || procs%ppn != 0 {
		return bad()
	}
	return New(procs/ppn, ppn), nil
}
