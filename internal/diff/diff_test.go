package diff

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func page(vals ...int64) []int64 {
	p := make([]int64, len(vals))
	copy(p, vals)
	return p
}

func TestTwinIsIndependentCopy(t *testing.T) {
	p := page(1, 2, 3)
	tw := Twin(p)
	if !Equal(p, tw) {
		t.Fatal("twin differs from page")
	}
	p[1] = 99
	if tw[1] != 2 {
		t.Error("twin aliases page storage")
	}
}

func TestChanged(t *testing.T) {
	p := page(1, 2, 3, 4)
	tw := Twin(p)
	if got := Changed(p, tw); got != 0 {
		t.Errorf("pristine page Changed = %d", got)
	}
	p[0], p[3] = 10, 40
	if got := Changed(p, tw); got != 2 {
		t.Errorf("Changed = %d, want 2", got)
	}
}

func TestOutgoingAppliesOnlyLocalMods(t *testing.T) {
	p := page(1, 2, 3, 4)
	tw := Twin(p)
	home := page(1, 2, 3, 4)
	// Local writes words 0 and 2; meanwhile home has a newer remote
	// value at word 3 which the outgoing diff must not clobber.
	p[0], p[2] = 100, 300
	home[3] = 444
	n := Outgoing(p, tw, home)
	if n != 2 {
		t.Errorf("Outgoing applied %d words, want 2", n)
	}
	want := page(100, 2, 300, 444)
	if !Equal(home, want) {
		t.Errorf("home = %v, want %v", home, want)
	}
	// Outgoing leaves the twin untouched.
	if tw[0] != 1 || tw[2] != 3 {
		t.Errorf("Outgoing modified the twin: %v", tw)
	}
}

func TestFlushUpdateUpdatesTwin(t *testing.T) {
	p := page(1, 2, 3, 4)
	tw := Twin(p)
	home := page(1, 2, 3, 4)
	p[1] = 22
	n := FlushUpdate(p, tw, home)
	if n != 1 {
		t.Errorf("FlushUpdate applied %d, want 1", n)
	}
	if home[1] != 22 {
		t.Errorf("home[1] = %d, want 22", home[1])
	}
	if tw[1] != 22 {
		t.Errorf("twin[1] = %d, want 22 (flush-update must update the twin)", tw[1])
	}
	// A second flush by another local processor now sees no changes to
	// this word and leaves a newer remote value at the home alone.
	home[1] = 555 // newer remote write arrives at home
	if n := FlushUpdate(p, tw, home); n != 0 {
		t.Errorf("re-flush applied %d words, want 0", n)
	}
	if home[1] != 555 {
		t.Errorf("re-flush clobbered newer remote value: home[1] = %d", home[1])
	}
}

func TestIncomingAppliesOnlyRemoteMods(t *testing.T) {
	// The scenario two-way diffing exists for: a local processor holds
	// dirty (unflushed) words while a fresh master copy arrives with
	// remote modifications to other words.
	p := page(1, 2, 3, 4)
	tw := Twin(p)
	p[0] = 100 // local modification, not yet flushed
	incoming := page(1, 2, 333, 4)
	n := Incoming(p, tw, incoming)
	if n != 1 {
		t.Errorf("Incoming applied %d, want 1", n)
	}
	want := page(100, 2, 333, 4) // local mod preserved, remote mod applied
	if !Equal(p, want) {
		t.Errorf("working page = %v, want %v", p, want)
	}
	// Twin picked up the remote change so the next release will not
	// flush it back (it is not a local modification).
	if tw[2] != 333 {
		t.Errorf("twin[2] = %d, want 333", tw[2])
	}
	if tw[0] != 1 {
		t.Errorf("twin[0] = %d, want 1 (local mod must stay flushable)", tw[0])
	}
	// The local modification remains the only outgoing diff.
	if got := Changed(p, tw); got != 1 {
		t.Errorf("outgoing diff after incoming diff = %d words, want 1", got)
	}
}

func TestIncomingThenFlushRoundTrip(t *testing.T) {
	// Full two-node exchange: node A writes word 0, node B writes word
	// 1; each flushes to home and fetches via incoming diff; both end
	// with the merged page.
	home := page(10, 20)
	pa, pb := page(10, 20), page(10, 20)
	ta, tb := Twin(pa), Twin(pb)

	pa[0] = 11 // A writes
	pb[1] = 22 // B writes

	FlushUpdate(pa, ta, home) // A releases
	Incoming(pb, tb, home)    // B acquires and fetches
	want := page(11, 22)
	if !Equal(pb, want) {
		t.Errorf("B's page = %v, want %v", pb, want)
	}

	FlushUpdate(pb, tb, home) // B releases
	Incoming(pa, ta, home)    // A fetches
	if !Equal(pa, want) {
		t.Errorf("A's page = %v, want %v", pa, want)
	}
	if !Equal(home, want) {
		t.Errorf("home = %v, want %v", home, want)
	}
}

func TestCopy(t *testing.T) {
	src := page(7, 8, 9)
	dst := page(0, 0, 0)
	Copy(dst, src)
	if !Equal(dst, src) {
		t.Errorf("Copy: dst = %v", dst)
	}
}

func TestEqual(t *testing.T) {
	if Equal(page(1, 2), page(1, 2, 3)) {
		t.Error("pages of different lengths reported equal")
	}
	if !Equal(page(1, 2), page(1, 2)) {
		t.Error("identical pages reported unequal")
	}
	if Equal(page(1, 2), page(1, 3)) {
		t.Error("different pages reported equal")
	}
}

// Property: for any base page and any pair of DISJOINT local and remote
// write sets, flush-update from the local side and incoming diff on the
// other side always produce the merged page — the data-race-free merge
// guarantee the protocol relies on.
func TestMergeProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 8 + rng.Intn(64)
		base := make([]int64, n)
		for i := range base {
			base[i] = rng.Int63n(1000)
		}
		home := Twin(base)
		local := Twin(base)
		remote := Twin(base)
		ltwin := Twin(local)
		rtwin := Twin(remote)

		want := Twin(base)
		perm := rng.Perm(n)
		k := rng.Intn(n + 1)
		for idx, w := range perm {
			v := rng.Int63n(1000) + 2000 // distinct from base values
			if idx < k {
				local[w] = v
			} else {
				remote[w] = v
			}
			want[w] = v
		}

		// Remote node releases first; local node then fetches with an
		// incoming diff while still holding its own dirty words, then
		// releases its own changes.
		FlushUpdate(remote, rtwin, home)
		Incoming(local, ltwin, home)
		FlushUpdate(local, ltwin, home)

		return Equal(local, want) && Equal(home, want) && Equal(ltwin, want)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

// Property: FlushUpdate makes the twin equal the page, and a second
// FlushUpdate is always a no-op.
func TestFlushUpdateIdempotent(t *testing.T) {
	f := func(vals []int64, muts []uint8) bool {
		if len(vals) == 0 {
			return true
		}
		p := make([]int64, len(vals))
		copy(p, vals)
		tw := Twin(p)
		home := Twin(p)
		for i, m := range muts {
			p[i%len(p)] += int64(m) + 1
		}
		FlushUpdate(p, tw, home)
		if !Equal(tw, p) {
			return false
		}
		return FlushUpdate(p, tw, home) == 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

// Property: Outgoing and Changed agree on the diff size.
func TestOutgoingMatchesChanged(t *testing.T) {
	f := func(vals []int64, muts []uint8) bool {
		if len(vals) == 0 {
			return true
		}
		p := make([]int64, len(vals))
		copy(p, vals)
		tw := Twin(p)
		home := Twin(p)
		for i, m := range muts {
			p[i%len(p)] += int64(m) + 1
		}
		c := Changed(p, tw)
		return Outgoing(p, tw, home) == c && Equal(home, p)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestRangeVariants(t *testing.T) {
	home := make([]int64, 16)
	p := make([]int64, 16)
	tw := Twin(p)
	p[3] = 1
	p[9] = 2

	n, lo, hi := FlushUpdateRange(p, tw, home)
	if n != 2 || lo != 3 || hi != 9 {
		t.Errorf("FlushUpdateRange = (%d,%d,%d), want (2,3,9)", n, lo, hi)
	}
	if home[3] != 1 || home[9] != 2 || tw[3] != 1 || tw[9] != 2 {
		t.Error("FlushUpdateRange did not apply to home and twin")
	}
	// Nothing left to flush: empty span.
	if n, lo, hi := FlushUpdateRange(p, tw, home); n != 0 || lo != -1 || hi != -1 {
		t.Errorf("clean FlushUpdateRange = (%d,%d,%d), want (0,-1,-1)", n, lo, hi)
	}

	home2 := make([]int64, 16)
	p2 := make([]int64, 16)
	tw2 := Twin(p2)
	p2[15] = 5
	n, lo, hi = OutgoingRange(p2, tw2, home2)
	if n != 1 || lo != 15 || hi != 15 {
		t.Errorf("OutgoingRange = (%d,%d,%d), want (1,15,15)", n, lo, hi)
	}
	if home2[15] != 5 {
		t.Error("OutgoingRange did not apply to home")
	}
	if tw2[15] != 0 {
		t.Error("OutgoingRange modified the twin")
	}
}

func TestIncomingWriteWriteOverlap(t *testing.T) {
	// Write-write overlap resolution: when a remote write (already at
	// the home) and an unreleased local write collide on a word, the
	// local write must survive in the working page — release order
	// makes it the last writer, flushed at this node's next release —
	// while the twin adopts the remote value so the flush recognizes
	// the word as locally modified.
	cases := []struct {
		name                    string
		working, twin, incoming []int64
		wantWorking, wantTwin   []int64
		wantN                   int
	}{
		{
			name:    "no changes",
			working: page(1, 2), twin: page(1, 2), incoming: page(1, 2),
			wantWorking: page(1, 2), wantTwin: page(1, 2), wantN: 0,
		},
		{
			name:    "remote only",
			working: page(1, 2), twin: page(1, 2), incoming: page(1, 9),
			wantWorking: page(1, 9), wantTwin: page(1, 9), wantN: 1,
		},
		{
			name:    "local only",
			working: page(5, 2), twin: page(1, 2), incoming: page(1, 2),
			wantWorking: page(5, 2), wantTwin: page(1, 2), wantN: 0,
		},
		{
			name:    "overlap keeps local write",
			working: page(5, 2), twin: page(1, 2), incoming: page(9, 2),
			wantWorking: page(5, 2), wantTwin: page(9, 2), wantN: 1,
		},
		{
			name:    "overlap where both wrote the same value",
			working: page(9, 2), twin: page(1, 2), incoming: page(9, 2),
			wantWorking: page(9, 2), wantTwin: page(9, 2), wantN: 1,
		},
		{
			name:    "mixed words",
			working: page(5, 2, 3, 40), twin: page(1, 2, 3, 4), incoming: page(9, 2, 33, 4),
			wantWorking: page(5, 2, 33, 40), wantTwin: page(9, 2, 33, 4), wantN: 2,
		},
	}
	for _, tc := range cases {
		tc := tc
		t.Run(tc.name, func(t *testing.T) {
			n := Incoming(tc.working, tc.twin, tc.incoming)
			if n != tc.wantN {
				t.Errorf("Incoming = %d, want %d", n, tc.wantN)
			}
			if !Equal(tc.working, tc.wantWorking) {
				t.Errorf("working = %v, want %v", tc.working, tc.wantWorking)
			}
			if !Equal(tc.twin, tc.wantTwin) {
				t.Errorf("twin = %v, want %v", tc.twin, tc.wantTwin)
			}
		})
	}
}

func TestIncomingOverlapLastWriterWins(t *testing.T) {
	// End-to-end ordering check for the overlap rule: home already has
	// the remote value; after the incoming diff, this node's release
	// must flush its local write over it (release-order last writer),
	// and a second incoming diff elsewhere must then pick it up.
	home := page(9) // remote write, flushed first
	p := page(5)    // local unreleased write
	tw := page(1)   // both diverged from the original 1

	Incoming(p, tw, home)
	if p[0] != 5 {
		t.Fatalf("local write lost at incoming diff: %v", p)
	}
	if n := FlushUpdate(p, tw, home); n != 1 {
		t.Fatalf("release flushed %d words, want 1", n)
	}
	if home[0] != 5 {
		t.Fatalf("home = %v, want the local (release-order last) write 5", home)
	}
}

func TestIncomingClobberDefect(t *testing.T) {
	// The injected historical defect must restore the old behavior —
	// remote value applied unconditionally — or the model checker's
	// defect-reintroduction test would validate nothing.
	SetClobberIncomingForTest(true)
	defer SetClobberIncomingForTest(false)
	p, tw, home := page(5), page(1), page(9)
	Incoming(p, tw, home)
	if p[0] != 9 {
		t.Fatalf("defect injected but local write survived: %v", p)
	}
}
