package diff

import "testing"

// Microbenchmarks for the diff primitives over one 1024-word page (the
// platform's 8 Kbyte coherence block) with a 1/8 modification density,
// roughly the sharing pattern of the paper's banded applications.

const benchPage = 1024

func benchPages() (page, twin, home []int64) {
	page = make([]int64, benchPage)
	twin = make([]int64, benchPage)
	home = make([]int64, benchPage)
	for i := range page {
		page[i] = int64(i)
		twin[i] = int64(i)
		home[i] = int64(i)
	}
	for i := 0; i < benchPage; i += 8 {
		page[i] = int64(i) + 1 // local modification
	}
	return
}

func BenchmarkTwin(b *testing.B) {
	page, _, _ := benchPages()
	b.SetBytes(benchPage * 8)
	for i := 0; i < b.N; i++ {
		sink = Twin(page)
	}
}

func BenchmarkChanged(b *testing.B) {
	page, twin, _ := benchPages()
	b.SetBytes(benchPage * 8)
	for i := 0; i < b.N; i++ {
		sinkN = Changed(page, twin)
	}
}

func BenchmarkOutgoing(b *testing.B) {
	page, twin, home := benchPages()
	b.SetBytes(benchPage * 8)
	for i := 0; i < b.N; i++ {
		sinkN = Outgoing(page, twin, home)
	}
}

func BenchmarkIncoming(b *testing.B) {
	page, twin, home := benchPages()
	for i := 0; i < benchPage; i += 16 {
		home[i] = int64(i) + 2 // remote modification
	}
	b.SetBytes(benchPage * 8)
	for i := 0; i < b.N; i++ {
		sinkN = Incoming(page, twin, home)
	}
}

func BenchmarkFlushUpdate(b *testing.B) {
	page, twin, home := benchPages()
	b.SetBytes(benchPage * 8)
	for i := 0; i < b.N; i++ {
		sinkN = FlushUpdate(page, twin, home)
	}
}

func BenchmarkCopy(b *testing.B) {
	page, _, home := benchPages()
	b.SetBytes(benchPage * 8)
	for i := 0; i < b.N; i++ {
		Copy(home, page)
	}
}

var (
	sink  []int64
	sinkN int
)
