// Package diff implements twin and diff maintenance for the Cashmere
// protocols (paper Sections 2.2 and 2.5).
//
// A twin is a pristine copy of a page made at the first write fault. At a
// release, the page is compared against its twin and the differences —
// the local modifications — are flushed to the home node (an "outgoing"
// diff). Cashmere-2L additionally uses the twin in the other direction:
// when fetching a fresh copy of a page that local processors are still
// writing, the incoming master data is compared against the twin and only
// the differences — which, for data-race-free programs, are exactly the
// modifications made on remote nodes — are applied to the working page
// and the twin (an "incoming" diff, or two-way diffing). This replaces
// TLB shootdown: no intra-node synchronization is needed.
//
// A flush-update writes the local modifications to both the home node and
// the twin, so that later releases by other local writers of the same
// page do not re-flush them and overwrite newer remote changes at the
// home (Section 2.5).
//
// Pages are []int64 word arrays shared between application goroutines and
// protocol code, so every word is accessed with sync/atomic; twins are
// only touched under the owning node's lock but are accessed atomically
// too for uniformity.
package diff

import "sync/atomic"

// Twin returns a newly-allocated pristine copy of page.
func Twin(page []int64) []int64 {
	t := make([]int64, len(page))
	for i := range page {
		t[i] = atomic.LoadInt64(&page[i])
	}
	return t
}

// Changed returns the number of words at which page and twin differ —
// the size of the outgoing diff a release would flush.
func Changed(page, twin []int64) int {
	n := 0
	for i := range twin {
		if atomic.LoadInt64(&page[i]) != twin[i] {
			n++
		}
	}
	return n
}

// Outgoing compares page against twin and applies the differences (the
// local modifications) to home. The twin is left untouched. It returns
// the number of words written.
func Outgoing(page, twin, home []int64) int {
	n := 0
	for i := range twin {
		v := atomic.LoadInt64(&page[i])
		if v != twin[i] {
			atomic.StoreInt64(&home[i], v)
			n++
		}
	}
	return n
}

// FlushUpdate compares page against twin and writes the differences to
// both home and the twin, returning the number of words written. After
// the call the twin equals the page's flushed contents, so a subsequent
// release by another local writer will flush only genuinely newer
// modifications.
func FlushUpdate(page, twin, home []int64) int {
	n, _, _ := FlushUpdateRange(page, twin, home)
	return n
}

// FlushUpdateRange is FlushUpdate, additionally reporting the inclusive
// span [lo, hi] of changed word offsets (-1, -1 when nothing changed).
// The span feeds the hot-page profiler's sharing-pattern classifier:
// writers whose flushed spans never overlap are false-sharing
// candidates. Tracking it costs two compares per changed word.
func FlushUpdateRange(page, twin, home []int64) (n, lo, hi int) {
	lo, hi = -1, -1
	for i := range twin {
		v := atomic.LoadInt64(&page[i])
		if v != twin[i] {
			atomic.StoreInt64(&home[i], v)
			atomic.StoreInt64(&twin[i], v)
			if n == 0 {
				lo = i
			}
			hi = i
			n++
		}
	}
	return n, lo, hi
}

// OutgoingRange is Outgoing, additionally reporting the inclusive span
// [lo, hi] of changed word offsets (-1, -1 when nothing changed), for
// the same profiling purpose as FlushUpdateRange.
func OutgoingRange(page, twin, home []int64) (n, lo, hi int) {
	lo, hi = -1, -1
	for i := range twin {
		v := atomic.LoadInt64(&page[i])
		if v != twin[i] {
			atomic.StoreInt64(&home[i], v)
			if n == 0 {
				lo = i
			}
			hi = i
			n++
		}
	}
	return n, lo, hi
}

// Incoming compares incoming (the fresh master copy) against twin and
// writes the differences — the remote modifications — to both the
// working page and the twin. Words the local node has modified (which
// differ between working and twin) are preserved in the working page:
// when a remote write and an unreleased local write collide on a word,
// the remote value landed at the home first, so release order makes the
// local write — flushed at this node's next release, against the twin
// now holding the remote value — the last writer. Overwriting the local
// word instead would destroy a write that was never flushed anywhere.
// It returns the number of words applied to the twin.
func Incoming(working, twin, incoming []int64) int {
	clobber := clobberIncoming.Load()
	n := 0
	for i := range twin {
		v := atomic.LoadInt64(&incoming[i])
		t := atomic.LoadInt64(&twin[i])
		if v != t {
			if clobber || atomic.LoadInt64(&working[i]) == t {
				atomic.StoreInt64(&working[i], v)
			}
			atomic.StoreInt64(&twin[i], v)
			n++
		}
	}
	return n
}

// clobberIncoming re-introduces the historical Incoming defect for model
// checker validation: apply every remote difference to the working page
// unconditionally, destroying unreleased local writes that collide with
// a remote write on the same word. See docs/MODELCHECK.md.
var clobberIncoming atomic.Bool

// SetClobberIncomingForTest enables or disables the historical Incoming
// defect. Test use only.
func SetClobberIncomingForTest(on bool) { clobberIncoming.Store(on) }

// Refresh overwrites dst with src word-atomically and returns the
// number of words that differed — the payload size of a write-update
// refresh applied to a frame with no twin (no unreleased local writes
// to preserve, so a counted copy is the whole merge).
func Refresh(dst, src []int64) int {
	n := 0
	for i := range src {
		v := atomic.LoadInt64(&src[i])
		if atomic.LoadInt64(&dst[i]) != v {
			atomic.StoreInt64(&dst[i], v)
			n++
		}
	}
	return n
}

// Copy overwrites dst with src word-atomically (a whole-page transfer or
// exclusive-mode flush). The slices must have equal length.
func Copy(dst, src []int64) {
	for i := range src {
		atomic.StoreInt64(&dst[i], atomic.LoadInt64(&src[i]))
	}
}

// CopyIn overwrites dst with src, reading src word-atomically but
// writing dst with plain stores. It is valid only when no other
// goroutine can access dst during the call: a freshly-allocated frame
// not yet published to the fast path, or a pooled twin being refilled
// under the owning node's lock. Plain stores avoid the atomic-exchange
// cost that dominates Copy (roughly an order of magnitude on a full
// page), which is why the allocation-free fetch and twin paths use it.
func CopyIn(dst, src []int64) {
	for i := range src {
		dst[i] = atomic.LoadInt64(&src[i])
	}
}

// Equal reports whether two pages hold identical contents.
func Equal(a, b []int64) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if atomic.LoadInt64(&a[i]) != atomic.LoadInt64(&b[i]) {
			return false
		}
	}
	return true
}
