package cli

import (
	"fmt"
	"os"
	"strconv"
	"strings"
)

// The CASHMERE_* environment variables live here next to the flag
// registrations so cashmere-flagsgen documents them in docs/FLAGS.md
// alongside the flags, and so their parsing has exactly one
// implementation.

// EnvVar documents one environment variable a cashmere binary honors.
type EnvVar struct {
	Name  string
	Usage string
}

// EnvVars returns every CASHMERE_* environment variable, for the
// generated documentation. Keep the list sorted by name.
func EnvVars() []EnvVar {
	return []EnvVar{
		{
			Name: "CASHMERE_MP_CHILD",
			Usage: "internal: marks a cashmere-run process as rank R of an N-process " +
				`tcp-transport run, as "R:N". Set by the parent launcher; not for manual use.`,
		},
		{
			Name: "CASHMERE_TRACE_PAGE",
			Usage: "page number or comma-separated list: stream every free-form protocol " +
				"note for those pages to stderr (zero-configuration predecessor of " +
				"-trace-timeline/-trace-pages; see docs/TRACING.md).",
		},
	}
}

// TracePagesFromEnv reads CASHMERE_TRACE_PAGE. It returns ok=false
// when the variable is unset; a set-but-malformed value returns the
// raw value and an error so the caller can warn without silently
// dropping the trace the user asked for. Parsing is delegated to
// parse, which accepts the list syntax (trace.ParsePageList — not
// imported here to keep this package flag-only).
func TracePagesFromEnv(parse func(string) (map[int]bool, error)) (pages map[int]bool, raw string, ok bool, err error) {
	raw, ok = os.LookupEnv("CASHMERE_TRACE_PAGE")
	if !ok {
		return nil, "", false, nil
	}
	pages, err = parse(raw)
	return pages, raw, true, err
}

// MPChildFromEnv reads CASHMERE_MP_CHILD ("rank:nodes"). ok reports
// whether the variable is set; a set-but-malformed value is an error
// (the launcher owns this variable, so a bad value means a broken
// parent/child contract, not user input to tolerate).
func MPChildFromEnv() (rank, nodes int, ok bool, err error) {
	v, ok := os.LookupEnv("CASHMERE_MP_CHILD")
	if !ok {
		return 0, 0, false, nil
	}
	r, n, found := strings.Cut(v, ":")
	if !found {
		return 0, 0, true, fmt.Errorf(`CASHMERE_MP_CHILD=%q: want "rank:nodes"`, v)
	}
	rank, err = strconv.Atoi(r)
	if err == nil {
		nodes, err = strconv.Atoi(n)
	}
	if err != nil || rank < 0 || nodes <= 0 || rank >= nodes {
		return 0, 0, true, fmt.Errorf(`CASHMERE_MP_CHILD=%q: want "rank:nodes" with 0 <= rank < nodes`, v)
	}
	return rank, nodes, true, nil
}

// MPChildEnv formats the CASHMERE_MP_CHILD value the launcher sets for
// rank of nodes.
func MPChildEnv(rank, nodes int) string {
	return fmt.Sprintf("CASHMERE_MP_CHILD=%d:%d", rank, nodes)
}
