// Package cli defines the command-line flag sets of the cashmere
// binaries in one importable place. The binaries register their flags
// through these option structs, and cmd/cashmere-flagsgen reflects
// over the same registrations to generate docs/FLAGS.md — so the
// documentation cannot drift from the code (CI regenerates it and
// fails on a diff).
//
// Defaults must be host-independent: a flag whose effective default
// depends on the environment (worker-pool width, terminal detection)
// registers a stable sentinel here and resolves it in the binary, so
// the generated documentation is identical on every machine.
package cli

import (
	"flag"
	"time"
)

//go:generate go run cashmere/cmd/cashmere-flagsgen -o ../../docs/FLAGS.md

// RunOptions is the flag set of cashmere-run.
type RunOptions struct {
	App        string
	Protocol   string
	Transport  string
	Nodes      int
	PPN        int
	Topology   string
	Fabric     string
	HomeOpt    bool
	LockBased  bool
	Interrupts bool
	Adaptive   bool
	Quick      bool
	Trace      string
	TraceTL    string
	TracePages string
	Profile    string
	HTTP       string
	Replay     string
	// MPStatsInterval is how often each -transport tcp child streams an
	// observability report to the launcher.
	MPStatsInterval time.Duration
}

// Register installs cashmere-run's flags on fs.
func (o *RunOptions) Register(fs *flag.FlagSet) {
	fs.StringVar(&o.App, "app", "SOR", "application: SOR, LU, Water, TSP, Gauss, Ilink, Em3d, Barnes")
	fs.StringVar(&o.Protocol, "protocol", "2L", "protocol: 2L, 2LS, 1LD, 1L")
	fs.StringVar(&o.Transport, "transport", "sim", `fabric backend: "sim" (Memory Channel simulator), "shm" (in-process, no virtual time), or "tcp" (N OS processes over loopback sockets; see docs/TRANSPORT.md)`)
	fs.IntVar(&o.Nodes, "nodes", 8, "SMP nodes")
	fs.IntVar(&o.PPN, "ppn", 4, "processors per node")
	fs.StringVar(&o.Topology, "topology", "", `cluster topology as "procs:procsPerNode", e.g. 128:4 (overrides -nodes/-ppn)`)
	fs.StringVar(&o.Fabric, "fabric", "serial", `interconnect fabric: "serial" (the paper's hub) or "switched" (crossbar)`)
	fs.BoolVar(&o.HomeOpt, "homeopt", false, "home-node optimization (one-level protocols)")
	fs.BoolVar(&o.LockBased, "lockbased", false, "lock-based protocol metadata (Section 3.3.5 ablation)")
	fs.BoolVar(&o.Interrupts, "interrupts", false, "interrupt-based messaging instead of polling")
	fs.BoolVar(&o.Adaptive, "adaptive", false, "adaptive per-page coherence policy (see docs/ADAPTIVE.md)")
	fs.BoolVar(&o.Quick, "quick", false, "tiny problem size")
	fs.StringVar(&o.Trace, "trace", "", "write a Chrome/Perfetto trace of the run to this file")
	fs.StringVar(&o.TraceTL, "trace-timeline", "", `write a per-page event timeline to this file ("-" for stdout)`)
	fs.StringVar(&o.TracePages, "trace-pages", "", "comma-separated page numbers to restrict tracing output to")
	fs.StringVar(&o.Profile, "profile", "", `write a hot-page/hot-lock attribution report to this file ("-" for stdout)`)
	fs.StringVar(&o.HTTP, "http", "", `serve live /metrics, /status, and pprof on this address (e.g. ":6060")`)
	fs.StringVar(&o.Replay, "replay", "", "replay a model-checker counterexample JSON file and exit")
	fs.DurationVar(&o.MPStatsInterval, "mp-stats-interval", 500*time.Millisecond, "frame-counter reporting interval of -transport tcp child processes (0 disables periodic reports)")
}

// BenchOptions is the flag set of cashmere-bench. Workers 0 means "use
// GOMAXPROCS", and Progress defaults to on only when stderr is a
// terminal; both sentinels are resolved by the binary so the
// registered defaults stay host-independent.
type BenchOptions struct {
	Quick      bool
	All        bool
	Transport  string
	Table      string
	Figure     string
	Ablation   string
	Adaptive   bool
	Scaling    string
	Workers    int
	JSON       string
	Timeout    time.Duration
	Progress   bool
	CPUProfile string
	MemProfile string
	Trace      string
	TraceCell  string
	TracePages string
	HTTP       string
	Profile    string
}

// Register installs cashmere-bench's flags on fs.
func (o *BenchOptions) Register(fs *flag.FlagSet) {
	fs.BoolVar(&o.Quick, "quick", false, "use tiny problem sizes")
	fs.BoolVar(&o.All, "all", false, "run every table, figure, and ablation")
	fs.StringVar(&o.Transport, "transport", "sim", `fabric backend for every cell: "sim" or "shm" (the multi-process "tcp" backend runs through cashmere-run only)`)
	fs.StringVar(&o.Table, "table", "", `table to regenerate: "1", "2", "3", or "costs"`)
	fs.StringVar(&o.Figure, "figure", "", `figure to regenerate: "6" or "7"`)
	fs.StringVar(&o.Ablation, "ablation", "", `ablation to run: "shootdown", "lockfree", or "adaptive"`)
	fs.BoolVar(&o.Adaptive, "adaptive", false, "run the adaptive-policy ablation (2L+A vs the fixed protocols; 16:4 with -quick, 32:4 otherwise)")
	fs.StringVar(&o.Scaling, "scaling", "", `scale-out sweep up to this topology ("procs:procsPerNode", e.g. 128:4 sweeps 1-32 nodes)`)
	fs.IntVar(&o.Workers, "j", 0, "experiment cells to execute in parallel (0 = GOMAXPROCS)")
	fs.StringVar(&o.JSON, "json", "", "write machine-readable per-cell results to this file")
	fs.DurationVar(&o.Timeout, "timeout", 0, "per-cell wall-clock timeout (0 = none)")
	fs.BoolVar(&o.Progress, "progress", false, "live progress line on stderr (default: on when stderr is a terminal)")
	fs.StringVar(&o.CPUProfile, "cpuprofile", "", "write a CPU profile to this file")
	fs.StringVar(&o.MemProfile, "memprofile", "", "write a heap profile to this file on exit")
	fs.StringVar(&o.Trace, "trace", "", "write a Chrome/Perfetto trace of the -trace-cell run to this file")
	fs.StringVar(&o.TraceCell, "trace-cell", "SOR/2L/32:4", "cell to trace, as app/variant/topology")
	fs.StringVar(&o.TracePages, "trace-pages", "", "comma-separated page numbers for per-page trace notes")
	fs.StringVar(&o.HTTP, "http", "", `serve live /metrics, /status, and pprof on this address (e.g. ":6060")`)
	fs.StringVar(&o.Profile, "profile", "", `write the -trace-cell run's hot-page/hot-lock report to this file ("-" = stdout)`)
}
