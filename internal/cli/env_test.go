package cli

import (
	"sort"
	"strings"
	"testing"
)

func TestMPChildFromEnv(t *testing.T) {
	t.Run("unset", func(t *testing.T) {
		if _, _, ok, err := MPChildFromEnv(); ok || err != nil {
			t.Fatalf("unset variable: ok=%v err=%v", ok, err)
		}
	})
	t.Run("valid", func(t *testing.T) {
		t.Setenv("CASHMERE_MP_CHILD", "2:4")
		rank, nodes, ok, err := MPChildFromEnv()
		if !ok || err != nil || rank != 2 || nodes != 4 {
			t.Fatalf("got rank=%d nodes=%d ok=%v err=%v, want 2 4 true nil", rank, nodes, ok, err)
		}
	})
	for _, bad := range []string{"", "3", "a:b", "-1:2", "2:2", "0:0"} {
		t.Run("bad "+bad, func(t *testing.T) {
			t.Setenv("CASHMERE_MP_CHILD", bad)
			if _, _, ok, err := MPChildFromEnv(); !ok || err == nil {
				t.Fatalf("value %q: ok=%v err=%v, want a parse error", bad, ok, err)
			}
		})
	}
}

func TestMPChildEnvRoundTrip(t *testing.T) {
	kv := MPChildEnv(1, 3)
	name, val, _ := strings.Cut(kv, "=")
	t.Setenv(name, val)
	rank, nodes, ok, err := MPChildFromEnv()
	if !ok || err != nil || rank != 1 || nodes != 3 {
		t.Fatalf("round trip of %q: rank=%d nodes=%d ok=%v err=%v", kv, rank, nodes, ok, err)
	}
}

func TestTracePagesFromEnv(t *testing.T) {
	parse := func(s string) (map[int]bool, error) {
		return map[int]bool{len(s): true}, nil
	}
	t.Run("unset", func(t *testing.T) {
		if _, _, ok, _ := TracePagesFromEnv(parse); ok {
			t.Fatal("unset variable reported as set")
		}
	})
	t.Run("set", func(t *testing.T) {
		t.Setenv("CASHMERE_TRACE_PAGE", "7,12")
		pages, raw, ok, err := TracePagesFromEnv(parse)
		if !ok || err != nil || raw != "7,12" || !pages[len(raw)] {
			t.Fatalf("got pages=%v raw=%q ok=%v err=%v", pages, raw, ok, err)
		}
	})
}

// TestEnvVarsSortedAndNamed keeps the generated documentation stable:
// every variable is CASHMERE_-prefixed with a usage line, in name
// order.
func TestEnvVarsSortedAndNamed(t *testing.T) {
	vars := EnvVars()
	if len(vars) == 0 {
		t.Fatal("no environment variables registered")
	}
	if !sort.SliceIsSorted(vars, func(i, j int) bool { return vars[i].Name < vars[j].Name }) {
		t.Error("EnvVars is not sorted by name")
	}
	for _, v := range vars {
		if !strings.HasPrefix(v.Name, "CASHMERE_") {
			t.Errorf("%s: not CASHMERE_-prefixed", v.Name)
		}
		if v.Usage == "" {
			t.Errorf("%s: empty usage", v.Name)
		}
	}
}
