package policy

import (
	"sync"
	"sync/atomic"
	"testing"

	"cashmere/internal/core"
	"cashmere/internal/metrics"
	"cashmere/internal/stats"
)

func TestNoteSoleConverges(t *testing.T) {
	var cell atomic.Int64
	noteSole(&cell, 3)
	if cell.Load() != 4 {
		t.Fatalf("after one proc: %d, want 4", cell.Load())
	}
	noteSole(&cell, 3)
	if cell.Load() != 4 {
		t.Fatalf("same proc again: %d, want 4", cell.Load())
	}
	noteSole(&cell, 7)
	if cell.Load() != soleMulti {
		t.Fatalf("second proc: %d, want soleMulti", cell.Load())
	}
	noteSole(&cell, 3)
	if cell.Load() != soleMulti {
		t.Fatalf("soleMulti must be absorbing, got %d", cell.Load())
	}

	// Concurrent observers must converge to the same value regardless
	// of interleaving.
	var c2 atomic.Int64
	var wg sync.WaitGroup
	for proc := 0; proc < 8; proc++ {
		wg.Add(1)
		go func(proc int) {
			defer wg.Done()
			for i := 0; i < 100; i++ {
				noteSole(&c2, proc)
			}
		}(proc)
	}
	wg.Wait()
	if c2.Load() != soleMulti {
		t.Fatalf("concurrent multi-proc: %d, want soleMulti", c2.Load())
	}
}

func TestOrMaskFolds(t *testing.T) {
	var cell atomic.Uint64
	orMask(&cell, 0)
	orMask(&cell, 5)
	orMask(&cell, 64) // folds onto bit 0
	if got := cell.Load(); got != (1<<0)|(1<<5) {
		t.Fatalf("mask = %#x, want %#x", got, (1<<0)|(1<<5))
	}
}

// runCfg executes body on a 2x2 two-level cluster with the adaptive
// engine wired at the given thresholds.
func runCfg(t *testing.T, pcfg Config, body func(p *core.Proc)) (*core.Cluster, core.Result) {
	t.Helper()
	cfg := core.Config{
		Nodes:        2,
		ProcsPerNode: 2,
		Protocol:     core.TwoLevel,
		PageWords:    64,
		SharedWords:  64 * 8,
	}
	Wire(&cfg, pcfg)
	c, err := core.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	res := c.Run(body)
	return c, res
}

// run wires twitchy thresholds with the probe effectively disabled, so
// tests can assert the mode a workload's evidence converges to.
func run(t *testing.T, adaptive bool, body func(p *core.Proc)) (*core.Cluster, core.Result) {
	t.Helper()
	if adaptive {
		return runCfg(t, Config{MinSamples: 1, HoldEpochs: 1, ProbeEpochs: 1000}, body)
	}
	cfg := core.Config{
		Nodes:        2,
		ProcsPerNode: 2,
		Protocol:     core.TwoLevel,
		PageWords:    64,
		SharedWords:  64 * 8,
	}
	c, err := core.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	res := c.Run(body)
	return c, res
}

// producerConsumer has proc 0 rewrite page 0 each phase and the other
// procs read it back, with barriers between — the write-update shape.
func producerConsumer(rounds int) func(p *core.Proc) {
	return func(p *core.Proc) {
		for r := 0; r < rounds; r++ {
			if p.ID() == 0 {
				for w := 0; w < 8; w++ {
					p.Store(w, int64(r*100+w))
				}
			}
			p.Barrier()
			for w := 0; w < 8; w++ {
				if got := p.Load(w); got != int64(r*100+w) {
					panic("stale read under adaptive policy")
				}
			}
			p.Barrier()
		}
	}
}

func TestEnginePromotesProducerConsumerToUpdate(t *testing.T) {
	c, _ := run(t, true, producerConsumer(6))
	h := c.Harness()
	if m := h.PageMode(0); m != core.ModeUpdate {
		t.Errorf("page 0 mode = %v, want update", m)
	}
	tot := c.SnapshotStats()
	if tot.Counts[stats.PolicyModeChanges] == 0 {
		t.Error("no policy mode changes recorded")
	}
	if tot.Counts[stats.PolicyUpdates] == 0 {
		t.Error("no update-mode refreshes recorded")
	}
}

// TestEnginePatternTracksProfilerTaxonomy pins the tentpole's feedback
// contract: the engine's online per-page classification must produce
// the same label the offline -profile report gives the same sharing
// shape, because both run metrics.ClassifySharing.
func TestEnginePatternTracksProfilerTaxonomy(t *testing.T) {
	cfg := core.Config{
		Nodes:        2,
		ProcsPerNode: 2,
		Protocol:     core.TwoLevel,
		PageWords:    64,
		SharedWords:  64 * 8,
	}
	e := Wire(&cfg, Config{MinSamples: 1, HoldEpochs: 1, ProbeEpochs: 1000})
	c, err := core.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	c.Run(producerConsumer(6))
	if got := e.Pattern(0); got != metrics.PatternProducerConsumer {
		t.Errorf("page 0 pattern = %q, want %q", got, metrics.PatternProducerConsumer)
	}
}

// TestEngineProbeDemotesWhenReadersVanish promotes a page through
// refetch churn, then keeps writing it with no readers: update mode
// hides read faults, so the engine must demote after ProbeEpochs of
// writes with no read evidence rather than refresh consumers forever.
func TestEngineProbeDemotesWhenReadersVanish(t *testing.T) {
	c, _ := runCfg(t, Config{MinSamples: 1, HoldEpochs: 1, ProbeEpochs: 2},
		func(p *core.Proc) {
			for r := 0; r < 3; r++ { // churn: promote to update
				if p.ID() == 0 {
					p.Store(0, int64(r))
				}
				p.Barrier()
				p.Load(0)
				p.Barrier()
			}
			for r := 0; r < 6; r++ { // writes continue, readers vanish
				if p.ID() == 0 {
					p.Store(0, int64(100+r))
				}
				p.Barrier()
			}
		})
	if m := c.Harness().PageMode(0); m != core.ModeInvalidate {
		t.Errorf("page 0 mode after readers vanished = %v, want invalidate", m)
	}
}

func TestEngineReplicatesReadOnlyPage(t *testing.T) {
	// Page 1 (words 64..127) is written once during init, then only
	// read. After enough epochs the engine should broadcast it.
	c, _ := run(t, true, func(p *core.Proc) {
		p.BeginInit()
		if p.ID() == 0 {
			for w := 0; w < 8; w++ {
				p.Store(64+w, int64(w+1))
			}
		}
		p.EndInit()
		for r := 0; r < 5; r++ {
			for w := 0; w < 8; w++ {
				if got := p.Load(64 + w); got != int64(w+1) {
					panic("wrong value on read-only page")
				}
			}
			p.Barrier()
		}
	})
	if m := c.Harness().PageMode(1); m != core.ModeBroadcast {
		t.Errorf("page 1 mode = %v, want broadcast", m)
	}
	tot := c.SnapshotStats()
	if tot.Counts[stats.PolicyReplications] == 0 {
		t.Error("no replications recorded")
	}
}

func TestEngineMigratesHomeTowardFlusher(t *testing.T) {
	// All pages share superpage homes; the sole writer of page 2 lives
	// on node 1 while the home starts on node 0 (first touch is off in
	// this harnessless run once EndInit passes; proc 2 is on node 1).
	c, _ := run(t, true, func(p *core.Proc) {
		for r := 0; r < 6; r++ {
			if p.ID() == 2 {
				p.Store(2*64, int64(r))
			}
			p.Barrier()
			p.Load(2 * 64)
			p.Barrier()
		}
	})
	h := c.Harness()
	want := h.ProtoNodeOf(2)
	if got := h.HomeOf(2); got != want {
		t.Errorf("page 2 home = %d, want %d (flusher's node)", got, want)
	}
	tot := c.SnapshotStats()
	if tot.Counts[stats.HomeMigrations] == 0 {
		t.Error("no home migrations recorded")
	}
}

// TestAdaptiveDeterministic runs the same workload twice with the
// engine on and requires identical virtual time and data volume.
func TestAdaptiveDeterministic(t *testing.T) {
	_, a := run(t, true, producerConsumer(5))
	_, b := run(t, true, producerConsumer(5))
	if a.ExecNS != b.ExecNS || a.DataBytes != b.DataBytes {
		t.Errorf("nondeterministic adaptive run: %d/%d vs %d/%d",
			a.ExecNS, a.DataBytes, b.ExecNS, b.DataBytes)
	}
}

// TestObserveOnlyEngineIsNearFree wires a controller that never acts.
// Its Note hooks charge nothing and its decision gate adds no virtual
// time, but the gate is a second host rendezvous: it reorders which
// sibling processor services a node's notice bins first, so the run is
// close to — not bit-identical with — the nil-controller baseline
// (only Config.Adaptive == nil takes the untouched baseline path; the
// golden-config tests pin that). Here we bound the drift and require
// that no policy action was taken.
type nullController struct{}

func (nullController) NoteReadFault(page, proc int)         {}
func (nullController) NoteWriteFault(page, proc int)        {}
func (nullController) NoteFlush(page, proc, changed int)    {}
func (nullController) DecideEpoch(int, *core.PolicyActions) {}

func TestObserveOnlyEngineIsNearFree(t *testing.T) {
	cfg := core.Config{
		Nodes:        2,
		ProcsPerNode: 2,
		Protocol:     core.TwoLevel,
		PageWords:    64,
		SharedWords:  64 * 8,
	}
	base, err := core.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	off := base.Run(producerConsumer(4))

	cfg.Adaptive = nullController{}
	cl, err := core.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	on := cl.Run(producerConsumer(4))

	drift := on.ExecNS - off.ExecNS
	if drift < 0 {
		drift = -drift
	}
	if drift*20 > off.ExecNS { // 5%
		t.Errorf("observe-only engine drifted too far: off %d ns, on %d ns",
			off.ExecNS, on.ExecNS)
	}
	tot := cl.SnapshotStats()
	for _, ctr := range []stats.Counter{
		stats.PolicyModeChanges, stats.PolicyUpdates,
		stats.PolicyReplications, stats.HomeMigrations,
	} {
		if tot.Counts[ctr] != 0 {
			t.Errorf("%v = %d, want 0 from a null controller", ctr, tot.Counts[ctr])
		}
	}
}
