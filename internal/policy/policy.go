// Package policy implements the adaptive per-page coherence policy
// engine: an online controller that watches the protocol's fault and
// flush streams and, at barrier decision epochs, switches individual
// pages between write-invalidate (the paper's baseline), write-update,
// and broadcast replication, and migrates page homes toward their
// dominant writer.
//
// The engine reuses the offline profiler's sharing-pattern taxonomy
// (metrics.ClassifySharing) on counters it accumulates in-run, so the
// page a -profile report labels "producer-consumer" is the same page
// the engine moves to write-update. Decisions are made from
// order-independent aggregates only — per-page sums, per-processor
// bitmasks, and converging sole-owner cells — so a run with -adaptive
// is exactly as deterministic as one without.
//
// The decision rules, their hysteresis, and the mode state machines
// are documented in docs/ADAPTIVE.md.
package policy

import (
	"math/bits"
	"sync/atomic"

	"cashmere/internal/core"
	"cashmere/internal/metrics"
)

// Config holds the engine's thresholds. The zero value is usable;
// Defaults() fills unset fields.
type Config struct {
	// MinSamples is the evidence gate: no decision is taken for a page
	// until at least this many classification-relevant events (faults
	// plus flushes) have been observed for it, mirroring the profiler's
	// low-confidence marker (metrics.LowConfidenceSamples).
	MinSamples int

	// HoldEpochs is the hysteresis window: a promotion signal (refetch
	// churn for write-update, a stable remote flusher for home
	// migration) must persist for this many consecutive decision epochs
	// before the engine acts on it.
	HoldEpochs int

	// ProbeEpochs bounds how long a page may sit in write-update mode
	// without fresh read evidence. Update mode suppresses the read
	// faults the engine's churn signal is built from, so a page whose
	// readers have moved on would otherwise be refreshed forever; after
	// ProbeEpochs of writes with no read faults the page is demoted to
	// write-invalidate to re-sample read interest. A page with live
	// readers re-promotes within a hold window.
	ProbeEpochs int
}

// Defaults returns the documented default thresholds.
func Defaults() Config {
	return Config{
		MinSamples:  metrics.LowConfidenceSamples,
		HoldEpochs:  2,
		ProbeEpochs: 8,
	}
}

func (c Config) withDefaults() Config {
	d := Defaults()
	if c.MinSamples <= 0 {
		c.MinSamples = d.MinSamples
	}
	if c.HoldEpochs <= 0 {
		c.HoldEpochs = d.HoldEpochs
	}
	if c.ProbeEpochs <= 0 {
		c.ProbeEpochs = 4 * c.HoldEpochs
	}
	return c
}

// soleNone / soleMulti are the states of a sole-owner cell: 0 while no
// processor has been observed, proc+1 after exactly one, soleMulti
// forever after a second distinct processor. The transitions commute,
// so concurrent observers converge to the same value regardless of
// interleaving — the property that keeps decisions deterministic.
const soleMulti = int64(-1)

func noteSole(cell *atomic.Int64, proc int) {
	id := int64(proc) + 1
	for {
		cur := cell.Load()
		switch {
		case cur == id || cur == soleMulti:
			return
		case cur == 0:
			if cell.CompareAndSwap(0, id) {
				return
			}
		default:
			if cell.CompareAndSwap(cur, soleMulti) {
				return
			}
		}
	}
}

func orMask(cell *atomic.Uint64, proc int) {
	bit := uint64(1) << (uint(proc) % 64)
	for {
		cur := cell.Load()
		if cur&bit != 0 || cell.CompareAndSwap(cur, cur|bit) {
			return
		}
	}
}

// pageStats is one page's concurrently-updated accumulator. Counters
// are cumulative over the run; the decision loop forms per-epoch deltas
// against its private lastXX copies.
type pageStats struct {
	readFaults  atomic.Int64
	writeFaults atomic.Int64
	flushes     atomic.Int64
	flushWords  atomic.Int64

	// readersMask / writersMask record distinct faulting processors
	// (folded mod 64; popcounts are exact for clusters of up to 64
	// processors and conservative undercounts beyond).
	readersMask atomic.Uint64
	writersMask atomic.Uint64

	// soleWriter / soleFlusher converge to the single processor that
	// writes / flushes the page, or soleMulti once two have.
	soleWriter  atomic.Int64
	soleFlusher atomic.Int64
}

// pageDecision is one page's decision-loop state. Only global processor
// 0 touches it, from DecideEpoch, so it needs no synchronization. The
// migration streak lives on the first page of each superpage — homes
// move at superpage granularity, so that is the decision's granularity.
type pageDecision struct {
	lastRF, lastWF, lastFlush int64 // cumulative counters at last epoch
	dFl                       int64 // this epoch's flush delta (set each epoch)
	prevRead, prevWrite       bool  // previous epoch had read faults / writes

	updStreak   int    // consecutive epochs of refetch-churn evidence
	updNoRead   int    // epochs in update mode with writes but no read faults
	quietEpochs int    // consecutive epochs with no write or flush on the page
	migStreak   int    // consecutive epochs of stable-remote-flusher evidence
	migTarget   int    // the flusher the migration streak is tracking
	replicated  bool   // broadcast replication already applied once
	pattern     string // profiler-taxonomy label as of the last epoch
}

// Engine is the adaptive policy controller. Create one with New, attach
// it with Wire (or set core.Config.Adaptive and call Attach from the
// Observer hook yourself), one Engine per cluster.
type Engine struct {
	cfg   Config
	stats []pageStats
	dec   []pageDecision
}

// New returns an engine with cfg's thresholds (zero fields defaulted).
func New(cfg Config) *Engine {
	return &Engine{cfg: cfg.withDefaults()}
}

// Attach sizes the engine's tables for cluster c. It must run after the
// cluster is constructed and before Run — the core.Config.Observer hook
// is the intended call site (Wire arranges this).
func (e *Engine) Attach(c *core.Cluster) {
	e.stats = make([]pageStats, c.Pages())
	e.dec = make([]pageDecision, c.Pages())
}

// Wire installs a new engine on cc: it sets cc.Adaptive and chains an
// Observer that attaches the engine to the constructed cluster before
// any previously-installed observer runs.
func Wire(cc *core.Config, cfg Config) *Engine {
	e := New(cfg)
	cc.Adaptive = e
	prev := cc.Observer
	cc.Observer = func(c *core.Cluster) {
		e.Attach(c)
		if prev != nil {
			prev(c)
		}
	}
	return e
}

// NoteReadFault implements core.PolicyController.
func (e *Engine) NoteReadFault(page, proc int) {
	st := &e.stats[page]
	st.readFaults.Add(1)
	orMask(&st.readersMask, proc)
}

// NoteWriteFault implements core.PolicyController.
func (e *Engine) NoteWriteFault(page, proc int) {
	st := &e.stats[page]
	st.writeFaults.Add(1)
	orMask(&st.writersMask, proc)
	noteSole(&st.soleWriter, proc)
}

// NoteFlush implements core.PolicyController.
func (e *Engine) NoteFlush(page, proc, changedWords int) {
	st := &e.stats[page]
	st.flushes.Add(1)
	st.flushWords.Add(int64(changedWords))
	orMask(&st.writersMask, proc)
	noteSole(&st.soleFlusher, proc)
}

// DecideEpoch implements core.PolicyController: the per-barrier
// decision pass. For every page past the MinSamples evidence gate it
// forms this epoch's fault/flush deltas, refreshes the profiler-taxonomy
// classification (observable via Pattern), and applies at most one mode
// transition per page plus one home migration per superpage:
//
//   - Refetch churn — the page is both written and read-faulted, judged
//     over a two-epoch window — sustained for HoldEpochs: write-update.
//     Consumers then service write notices by refreshing frames in
//     place instead of invalidating, faulting, and refetching. The
//     two-epoch window matters because barrier-phased applications
//     alternate pure-write and pure-read epochs on the same page.
//   - Probe demotion: update mode suppresses the read faults the churn
//     signal is built from, so a page still being written but showing
//     no read fault for ProbeEpochs goes back to write-invalidate to
//     re-sample read interest; live readers re-promote it within a
//     hold window.
//   - Read-mostly — no write or flush for HoldEpochs consecutive
//     epochs, at least two readers, and read faults still arriving:
//     broadcast — the page is pushed to every node once and mapped
//     read-only everywhere, ending its fault stream. Write-quiet
//     epochs, not the cumulative writer mask, define "read-mostly", so
//     a page initialized by one processor and then only read still
//     qualifies. Applied once per page; a later write demotes it at
//     the faulting processor (core's broadcast safety valve).
//   - A sole flusher hosted away from the home, sustained for
//     HoldEpochs: the home migrates to that processor's node, making
//     its flushes local. Homes move at superpage granularity, so the
//     evidence is aggregated over the whole superpage: every page of it
//     with any flush history must name the same sole flusher, or no
//     migration happens — a per-page decision would drag sibling pages'
//     homes away from their own writers.
func (e *Engine) DecideEpoch(epoch int, acts *core.PolicyActions) {
	for g := range e.stats {
		st := &e.stats[g]
		d := &e.dec[g]

		rf := st.readFaults.Load()
		wf := st.writeFaults.Load()
		fl := st.flushes.Load()
		dRF := rf - d.lastRF
		dWF := wf - d.lastWF
		d.dFl = fl - d.lastFlush
		d.lastRF, d.lastWF, d.lastFlush = rf, wf, fl

		if dWF+d.dFl == 0 {
			d.quietEpochs++
		} else {
			d.quietEpochs = 0
		}

		if rf+wf+fl < int64(e.cfg.MinSamples) {
			continue
		}

		rm := st.readersMask.Load()
		wm := st.writersMask.Load()
		readers := bits.OnesCount64(rm)
		writers := bits.OnesCount64(wm)
		outsideReader := rm&^wm != 0
		d.pattern = metrics.ClassifySharing(readers, writers, outsideReader,
			false, 0, 0)

		// Refetch churn is judged over a two-epoch window: barrier-phased
		// applications often alternate pure-write and pure-read epochs on
		// the same page, and the churn is just as real when the fault and
		// the flush land one barrier apart.
		read := dRF > 0
		write := dWF+d.dFl > 0
		churn := (read || d.prevRead) && (write || d.prevWrite)
		d.prevRead, d.prevWrite = read, write

		mode := acts.Mode(g)
		switch {
		case d.quietEpochs >= e.cfg.HoldEpochs && readers >= 2 && dRF > 0:
			// Read-mostly: no writes for a full hold window yet the
			// page is still taking read faults.
			d.updStreak = 0
			if mode == core.ModeInvalidate && !d.replicated &&
				acts.SetMode(g, core.ModeBroadcast) {
				acts.Replicate(g)
				d.replicated = true
			}
		case churn:
			d.updStreak++
			if d.updStreak >= e.cfg.HoldEpochs && mode == core.ModeInvalidate {
				acts.SetMode(g, core.ModeUpdate)
			}
		default:
			d.updStreak = 0
		}

		// Probe demotion: update mode hides the read faults the churn
		// signal needs, so a page still being written but showing no
		// read interest for ProbeEpochs is demoted to re-sample it.
		if acts.Mode(g) == core.ModeUpdate {
			switch {
			case read:
				d.updNoRead = 0
			case write:
				d.updNoRead++
				if d.updNoRead >= e.cfg.ProbeEpochs {
					acts.SetMode(g, core.ModeInvalidate)
					d.updNoRead, d.updStreak = 0, 0
				}
			}
		} else {
			d.updNoRead = 0
		}
	}

	// Migration pass, one decision per superpage (the streak state lives
	// on its first page).
	for first := 0; first < len(e.stats); {
		_, last := acts.SuperpageRange(first)
		d := &e.dec[first]

		proc, dFl, samples := -1, int64(0), int64(0)
		agree := true
		for g := first; g < last; g++ {
			st := &e.stats[g]
			dFl += e.dec[g].dFl
			samples += st.readFaults.Load() + st.writeFaults.Load() + st.flushes.Load()
			switch sf := st.soleFlusher.Load(); {
			case sf == 0: // page never flushed: no constraint
			case sf == soleMulti:
				agree = false
			case proc == -1:
				proc = int(sf) - 1
			case proc != int(sf)-1:
				agree = false
			}
		}

		if !agree || proc < 0 || dFl == 0 || samples < int64(e.cfg.MinSamples) ||
			acts.NodeOf(proc) == acts.HomeNode(first) {
			d.migStreak = 0
		} else {
			if d.migTarget == proc {
				d.migStreak++
			} else {
				d.migTarget, d.migStreak = proc, 1
			}
			if d.migStreak >= e.cfg.HoldEpochs && acts.MigrateHome(first, proc) {
				d.migStreak = 0
			}
		}
		first = last
	}
}

// Pattern returns page's sharing-pattern label under the profiler's
// taxonomy (metrics.ClassifySharing) as of the last decision epoch, or
// "" before the page passes the MinSamples evidence gate. It is the
// online counterpart of the -profile report's pattern column, computed
// from the engine's cumulative reader/writer masks; the per-epoch
// decision rules act on fault/flush deltas, so the label is context
// for a decision, not the decision itself.
func (e *Engine) Pattern(page int) string {
	return e.dec[page].pattern
}
