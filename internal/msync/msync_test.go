package msync

import (
	"sync"
	"testing"

	"cashmere/internal/costs"
	"cashmere/internal/transport/simchan"
)

func newNet() *simchan.Network { return simchan.New(4, costs.Default()) }

func TestLockUncontended(t *testing.T) {
	l := NewLock(newNet())
	const cost = 11000
	held := l.Acquire(0, 1000, cost)
	if held != 1000+cost {
		t.Errorf("held at %d, want %d", held, 1000+cost)
	}
	if !l.HeldBy(1, 0) {
		t.Error("array entry for node 0 not visible on node 1")
	}
	l.Release(0, held+500)
	if l.HeldBy(1, 0) {
		t.Error("array entry still set after release")
	}
	// An acquirer arriving while the previous critical section was
	// virtually active waits for its release.
	held2 := l.Acquire(1, held+100, cost)
	if held2 != held+500+cost {
		t.Errorf("second acquire held at %d, want %d", held2, held+500+cost)
	}
	l.Release(1, held2)
}

func TestLockMutualExclusion(t *testing.T) {
	l := NewLock(newNet())
	var inside, total int
	var mu sync.Mutex
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			now := int64(0)
			for i := 0; i < 200; i++ {
				now = l.Acquire(w%4, now, 11)
				mu.Lock()
				inside++
				if inside != 1 {
					t.Errorf("two holders inside critical section")
				}
				total++
				inside--
				mu.Unlock()
				now += 5
				l.Release(w%4, now)
			}
		}(w)
	}
	wg.Wait()
	if total != 1600 {
		t.Errorf("total = %d, want 1600", total)
	}
}

func TestLockContendedProgress(t *testing.T) {
	// Contending workers with lock-stepped clocks serialize their
	// critical sections: the final virtual time reflects the sum of
	// critical-section lengths, not wall-clock racing.
	l := NewLock(newNet())
	var wg sync.WaitGroup
	finals := make(chan int64, 4)
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			now := int64(0)
			for i := 0; i < 100; i++ {
				now = l.Acquire(w, now, 11)
				now += 3
				l.Release(w, now)
			}
			finals <- now
		}(w)
	}
	wg.Wait()
	close(finals)
	var max int64
	for f := range finals {
		if f > max {
			max = f
		}
	}
	// Every critical section costs at least 11+3; with genuine overlap
	// the slowest worker must see a large fraction of the serialized
	// total (4 workers x 100 sections x 14ns = 5600).
	if max < 400*(11+3)/2 {
		t.Errorf("final virtual time %d too small for contended lock", max)
	}
}

func TestBarrier(t *testing.T) {
	b := NewBarrier(3, 58)
	if b.Parties() != 3 {
		t.Errorf("Parties = %d", b.Parties())
	}
	out := make([]int64, 3)
	var wg sync.WaitGroup
	arr := []int64{10, 40, 25}
	for i := 0; i < 3; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			out[i] = b.Wait(arr[i])
		}(i)
	}
	wg.Wait()
	for i, v := range out {
		if v != 40+58 {
			t.Errorf("party %d departed at %d, want 98", i, v)
		}
	}
}

func TestFlag(t *testing.T) {
	net := newNet()
	f := NewFlag(net)
	if f.IsSet() {
		t.Error("new flag set")
	}
	done := make(chan int64, 2)
	go func() { done <- f.Wait(0) }()
	go func() { done <- f.Wait(999999) }()
	f.Set(2, 1000)
	vis := 1000 + net.Model().MCWriteLatency
	got1, got2 := <-done, <-done
	if got1 > got2 {
		got1, got2 = got2, got1
	}
	// The early waiter resumes at global visibility; the late waiter
	// at its own (later) time.
	if got1 != vis {
		t.Errorf("early waiter resumed at %d, want %d", got1, vis)
	}
	if got2 != 999999 {
		t.Errorf("late waiter resumed at %d, want its own time", got2)
	}
	if !f.IsSet() {
		t.Error("flag not set")
	}
	f.Reset(2, 2000)
	if f.IsSet() {
		t.Error("flag set after Reset")
	}
}

func TestFlagResetVisibility(t *testing.T) {
	// A reset-then-set flag must never report visibility earlier than
	// the reset: the seed wrote the clearing cell at virtual time 0,
	// so a re-raise from a processor with a lagging clock could appear
	// to be performed before the reset that enabled it.
	net := newNet()
	f := NewFlag(net)
	wlat := net.Model().MCWriteLatency

	f.Set(0, 1000)
	const resetAt = 50000
	f.Reset(1, resetAt)
	if f.IsSet() {
		t.Fatal("flag set after Reset")
	}

	// Re-raise from a processor whose clock lags the resetter's.
	f.Set(2, 100)
	got := f.Wait(0)
	if want := resetAt + wlat; got != want {
		t.Errorf("waiter observed re-raised flag at %d, want reset visibility %d", got, want)
	}

	// A set after the reset's visibility horizon is unaffected.
	f.Reset(1, resetAt)
	f.Set(2, 2*resetAt)
	if got, want := f.Wait(0), 2*resetAt+wlat; got != want {
		t.Errorf("late re-raise visible at %d, want %d", got, want)
	}
}
