// Package msync implements the application-level synchronization
// primitives of the Cashmere runtime: global locks, barriers, and flags
// (paper Sections 2.2 and 2.3).
//
// Locks are represented by a per-node entry array in Memory Channel
// space configured for loop-back: an acquirer takes its node's local
// test-and-set flag, sets its array entry, waits for the entry to loop
// back (proving the write is globally performed), and reads the whole
// array; if its entry is the only one set it holds the lock. The
// simulation resolves the contention race with a host mutex and models
// the algorithm's cost and the virtual-time handoff from the previous
// holder; the array writes are performed for real so the Memory Channel
// state is observable.
//
// Barriers are two-level: processors within a node gather through shared
// memory, the last arrival posts the node's arrival to Memory Channel
// space, and departure is broadcast. Virtual time releases every
// participant at the latest arrival plus the measured barrier cost
// (Table 1), which the cost model interpolates with the participant
// count.
//
// Flags are write-once notifications (Gauss's per-row availability
// flags): the setter's Memory Channel write is globally performed one
// write latency after the set, and waiters resume no earlier than that.
//
// # Concurrency
//
// Lock, Barrier, and Flag methods are safe for concurrent use by any
// number of simulated processors, with two documented exceptions that
// mirror the application contracts: Flag.Reset must not race with Set,
// Wait, or another Reset (the caller separates them with application
// synchronization), and each primitive must be fully constructed before
// it is shared. Contention races are resolved by host mutexes inside
// sim.VLock/sim.Rendezvous/sim.VFlag; the Memory Channel array and cell
// writes are atomic through transport.Region.
package msync

import (
	"cashmere/internal/sim"
	"cashmere/internal/trace"
	"cashmere/internal/transport"
	"sort"
	"sync"
)

// Lock is a cluster-wide application lock.
type Lock struct {
	array transport.Region // one entry per node, loop-back enabled
	v     sim.VLock
}

// NewLock allocates a lock's entry array on the network.
func NewLock(net transport.Fabric) *Lock {
	return &Lock{array: net.NewRegion(net.Nodes(), true)}
}

// Acquire takes the lock on behalf of a processor of physical node node
// whose clock reads now, charging acquireCost (the protocol family's
// measured uncontended latency). It returns the virtual time at which
// the lock is held: no earlier than the previous holder's release.
func (l *Lock) Acquire(node int, now, acquireCost int64) int64 {
	held := l.v.Acquire(now, acquireCost)
	// Set our array entry; the loop-back wait is part of acquireCost.
	l.array.Write(node, node, 1, held)
	emitMsg(l.array, node, held, trace.MsgLockAcquire)
	return held
}

// Release releases the lock at virtual time now, clearing the holder's
// array entry.
func (l *Lock) Release(node int, now int64) {
	l.array.Write(node, node, 0, now)
	l.v.Release(now)
	emitMsg(l.array, node, now, trace.MsgLockRelease)
}

// HeldBy reports whether node's array entry is set, as observed from
// observer's replica (for tests and debugging).
func (l *Lock) HeldBy(observer, node int) bool {
	return l.array.Read(observer, node) != 0
}

// Barrier is a cluster-wide application barrier over virtual time.
type Barrier struct {
	r    *sim.Rendezvous
	cost int64
}

// NewBarrier returns a barrier for parties processors with the given
// per-episode cost.
func NewBarrier(parties int, cost int64) *Barrier {
	return &Barrier{r: sim.NewRendezvous(parties), cost: cost}
}

// Wait blocks the caller (whose clock reads now) until every party has
// arrived, and returns the common departure time: the latest arrival
// plus the barrier cost.
func (b *Barrier) Wait(now int64) int64 {
	return b.r.Wait(now) + b.cost
}

// Parties returns the number of processors the barrier synchronizes.
func (b *Barrier) Parties() int { return b.r.Parties() }

// Flag is a cluster-wide set-once notification flag.
//
// Waiters blocked on an unset flag all resume at the same virtual time
// (the set's global visibility), so the order their post-wakeup
// protocol actions run in is a genuine virtual-time tie. WaitOrdered
// breaks the tie deterministically: the processors found blocked at
// the Set instant form a cohort that proceeds one at a time in
// descending waiter id, each releasing the next with its done handle.
// Virtual times are unchanged — only the host-schedule freedom of the
// equal-time wakeups is removed, so results stop being bistable (the
// Gauss pivot-row flags were the motivating case; see docs/ADAPTIVE.md).
type Flag struct {
	cell transport.Region
	wlat int64
	// resetVis is the global visibility time of the most recent Reset's
	// clearing write; a later Set can never become visible before it.
	resetVis int64

	mu   sync.Mutex
	cond *sync.Cond
	set  bool
	vis  int64 // global visibility time of the set, valid when set
	// blocked holds the ids of WaitOrdered callers parked on the unset
	// flag; at Set they become the cohort, drained in descending id.
	blocked map[int]struct{}
	cohort  []int
}

// NewFlag allocates a flag cell on the network.
func NewFlag(net transport.Fabric) *Flag {
	fl := &Flag{
		cell:    net.NewRegion(1, true),
		wlat:    net.Model().MCWriteLatency,
		blocked: make(map[int]struct{}),
	}
	fl.cond = sync.NewCond(&fl.mu)
	return fl
}

// Set raises the flag from node at virtual time now. The flag becomes
// globally visible one Memory Channel write latency later, and never
// before the clearing write of a preceding Reset is itself performed.
func (fl *Flag) Set(node int, now int64) {
	visible := fl.cell.Write(node, 0, 1, now)
	if visible < fl.resetVis {
		visible = fl.resetVis
	}
	fl.mu.Lock()
	if !fl.set {
		fl.set = true
		fl.vis = visible
		// Snapshot the blocked waiters as the ordered wakeup cohort.
		// Descending id matches the schedule the golden paper configs
		// were pinned under (cond.Broadcast wakes the most recent
		// waiter first on the host runtime), so fixing the order keeps
		// the pinned virtual times bit-identical while removing the
		// host-schedule freedom.
		fl.cohort = fl.cohort[:0]
		for id := range fl.blocked {
			fl.cohort = append(fl.cohort, id)
		}
		sort.Sort(sort.Reverse(sort.IntSlice(fl.cohort)))
		clear(fl.blocked)
	}
	fl.mu.Unlock()
	fl.cond.Broadcast()
	emitMsgSpan(fl.cell, node, now, visible-now, trace.MsgFlagSet)
}

// Wait blocks until the flag is set and returns the earliest virtual
// time the waiter can have observed it: max(now, global visibility).
func (fl *Flag) Wait(now int64) int64 {
	t, done := fl.WaitOrdered(now, -1)
	done()
	return t
}

// WaitOrdered blocks until the flag is set and returns the earliest
// virtual time the waiter can have observed it, plus a done handle the
// caller must invoke after its acquire-side actions. Callers that were
// blocked when the flag was set resume one at a time in descending id —
// the deterministic tie-break for their equal virtual resume times —
// and done releases the next of them. Callers that find the flag
// already set are not part of the tie and proceed immediately (their
// done is a no-op). A negative id opts out of the ordering.
func (fl *Flag) WaitOrdered(now int64, id int) (t int64, done func()) {
	fl.mu.Lock()
	if !fl.set && id >= 0 {
		fl.blocked[id] = struct{}{}
		for !fl.set {
			fl.cond.Wait()
		}
		// We are in the cohort: wait for our turn.
		for len(fl.cohort) > 0 && fl.cohort[0] != id {
			fl.cond.Wait()
		}
		vis := fl.vis
		fl.mu.Unlock()
		if vis > now {
			now = vis
		}
		return now, func() { fl.releaseTurn(id) }
	}
	for !fl.set {
		fl.cond.Wait()
	}
	vis := fl.vis
	fl.mu.Unlock()
	if vis > now {
		now = vis
	}
	return now, func() {}
}

// releaseTurn pops id from the cohort head and wakes the next member.
func (fl *Flag) releaseTurn(id int) {
	fl.mu.Lock()
	if len(fl.cohort) > 0 && fl.cohort[0] == id {
		fl.cohort = fl.cohort[1:]
	}
	fl.mu.Unlock()
	fl.cond.Broadcast()
}

// IsSet reports whether the flag has been raised.
func (fl *Flag) IsSet() bool {
	fl.mu.Lock()
	defer fl.mu.Unlock()
	return fl.set
}

// Reset returns the flag to the unset state at virtual time now; no
// waiter may be active, and Reset must be serialized with Set. The
// clearing write is performed at now — writing it at time 0 would
// order it before every operation that preceded the reset and let a
// re-raised flag report visibility earlier than the reset itself.
func (fl *Flag) Reset(node int, now int64) {
	fl.resetVis = fl.cell.Write(node, 0, 0, now)
	fl.mu.Lock()
	fl.set = false
	fl.vis = 0
	fl.cohort = fl.cohort[:0]
	fl.mu.Unlock()
	emitMsg(fl.cell, node, now, trace.MsgFlagReset)
}

// emitMsg records a synchronization message on node's link track of the
// region's network tracer, if one is attached.
func emitMsg(r transport.Region, node int, vt int64, sub int64) {
	emitMsgSpan(r, node, vt, 0, sub)
}

func emitMsgSpan(r transport.Region, node int, vt, dur int64, sub int64) {
	tr := r.Fabric().Tracer()
	if tr == nil {
		return
	}
	tr.EmitLink(node, trace.Event{
		Kind: trace.EvMsgSend,
		Proc: -1,
		Node: int32(node),
		Page: -1,
		VT:   vt,
		Dur:  dur,
		Arg2: sub,
	})
}
