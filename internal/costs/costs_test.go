package costs

import (
	"testing"
	"testing/quick"
	"time"
)

func TestDefaultMatchesPaperTable1(t *testing.T) {
	m := Default()
	us := int64(time.Microsecond)
	cases := []struct {
		name string
		got  int64
		want int64
	}{
		{"MCWriteLatency", m.MCWriteLatency, 5200},
		{"MProtect", m.MProtect, 55 * us},
		{"PageFault", m.PageFault, 72 * us},
		{"Twin", m.Twin, 199 * us},
		{"DirectoryUpdate", m.DirectoryUpdate, 5 * us},
		{"DirectoryUpdateLocked", m.DirectoryUpdateLocked, 16 * us},
		{"GlobalLock", m.GlobalLock, 11 * us},
		{"LockAcquire2L", m.LockAcquire2L, 19 * us},
		{"LockAcquire1L", m.LockAcquire1L, 11 * us},
		{"Barrier2Proc2L", m.Barrier2Proc2L, 58 * us},
		{"Barrier32Proc2L", m.Barrier32Proc2L, 321 * us},
		{"Barrier2Proc1L", m.Barrier2Proc1L, 41 * us},
		{"Barrier32Proc1L", m.Barrier32Proc1L, 364 * us},
		{"PageTransferLocal", m.PageTransferLocal, 467 * us},
		{"PageTransferRemote2L", m.PageTransferRemote2L, 824 * us},
		{"PageTransferRemote1L", m.PageTransferRemote1L, 777 * us},
		{"ShootdownPoll", m.ShootdownPoll, 72 * us},
		{"ShootdownInterrupt", m.ShootdownInterrupt, 142 * us},
		{"IntraNodeInterrupt", m.IntraNodeInterrupt, 80 * us},
		{"InterNodeInterrupt", m.InterNodeInterrupt, 445 * us},
	}
	for _, c := range cases {
		if c.got != c.want {
			t.Errorf("%s = %d, want %d", c.name, c.got, c.want)
		}
	}
}

func TestOutgoingDiffRanges(t *testing.T) {
	m := Default()
	const pw = 1024
	if got := m.OutgoingDiff(0, pw, true); got != m.OutgoingDiffLocalMin {
		t.Errorf("empty local diff = %d, want min %d", got, m.OutgoingDiffLocalMin)
	}
	if got := m.OutgoingDiff(pw, pw, true); got != m.OutgoingDiffLocalMax {
		t.Errorf("full local diff = %d, want max %d", got, m.OutgoingDiffLocalMax)
	}
	if got := m.OutgoingDiff(0, pw, false); got != m.OutgoingDiffRemoteMin {
		t.Errorf("empty remote diff = %d, want min %d", got, m.OutgoingDiffRemoteMin)
	}
	if got := m.OutgoingDiff(pw, pw, false); got != m.OutgoingDiffRemoteMax {
		t.Errorf("full remote diff = %d, want max %d", got, m.OutgoingDiffRemoteMax)
	}
	half := m.OutgoingDiff(pw/2, pw, false)
	if half <= m.OutgoingDiffRemoteMin || half >= m.OutgoingDiffRemoteMax {
		t.Errorf("half remote diff %d not strictly inside (%d,%d)",
			half, m.OutgoingDiffRemoteMin, m.OutgoingDiffRemoteMax)
	}
}

func TestIncomingDiffRange(t *testing.T) {
	m := Default()
	const pw = 1024
	for changed := 0; changed <= pw; changed += pw / 8 {
		got := m.IncomingDiff(changed, pw)
		if got < m.IncomingDiffMin || got > m.IncomingDiffMax {
			t.Errorf("IncomingDiff(%d) = %d outside [%d,%d]",
				changed, got, m.IncomingDiffMin, m.IncomingDiffMax)
		}
	}
}

func TestIncomingDiffCostsMoreThanOutgoing(t *testing.T) {
	// Section 3.1: "An incoming diff operation applies changes to both
	// the twin and the page and therefore incurs additional cost above
	// the outgoing diff."
	m := Default()
	const pw = 1024
	for changed := 0; changed <= pw; changed += 64 {
		in := m.IncomingDiff(changed, pw)
		out := m.OutgoingDiff(changed, pw, false)
		if in <= out {
			t.Fatalf("IncomingDiff(%d)=%d not greater than OutgoingDiff=%d", changed, in, out)
		}
	}
}

func TestInterpClamping(t *testing.T) {
	if got := interp(10, 20, 50, 10); got != 20 {
		t.Errorf("interp clamps changed to total: got %d, want 20", got)
	}
	if got := interp(10, 20, -3, 10); got != 10 {
		t.Errorf("interp with negative changed: got %d, want 10", got)
	}
	if got := interp(10, 20, 5, 0); got != 10 {
		t.Errorf("interp with zero total: got %d, want 10", got)
	}
}

func TestPageTransfer(t *testing.T) {
	m := Default()
	if got := m.PageTransfer(true, true); got != m.PageTransferLocal {
		t.Errorf("local 2L = %d, want %d", got, m.PageTransferLocal)
	}
	if got := m.PageTransfer(true, false); got != m.PageTransferLocal {
		t.Errorf("local 1L = %d, want %d", got, m.PageTransferLocal)
	}
	if got := m.PageTransfer(false, true); got != m.PageTransferRemote2L {
		t.Errorf("remote 2L = %d, want %d", got, m.PageTransferRemote2L)
	}
	if got := m.PageTransfer(false, false); got != m.PageTransferRemote1L {
		t.Errorf("remote 1L = %d, want %d", got, m.PageTransferRemote1L)
	}
}

func TestBarrierEndpoints(t *testing.T) {
	m := Default()
	if got := m.Barrier(2, true); got != m.Barrier2Proc2L {
		t.Errorf("Barrier(2, 2L) = %d, want %d", got, m.Barrier2Proc2L)
	}
	if got := m.Barrier(32, true); got != m.Barrier32Proc2L {
		t.Errorf("Barrier(32, 2L) = %d, want %d", got, m.Barrier32Proc2L)
	}
	if got := m.Barrier(2, false); got != m.Barrier2Proc1L {
		t.Errorf("Barrier(2, 1L) = %d, want %d", got, m.Barrier2Proc1L)
	}
	if got := m.Barrier(1, true); got != m.Barrier2Proc2L {
		t.Errorf("Barrier(1, 2L) clamps to 2-proc cost: got %d, want %d", got, m.Barrier2Proc2L)
	}
}

func TestBarrierExtrapolatesPast32(t *testing.T) {
	// Beyond the paper's largest measured configuration the cost keeps
	// growing along the measured slope instead of flattening.
	m := Default()
	slope1L := m.Barrier32Proc1L - m.Barrier2Proc1L
	if got, want := m.Barrier(62, false), m.Barrier32Proc1L+slope1L; got != want {
		t.Errorf("Barrier(62, 1L) = %d, want %d", got, want)
	}
	if got := m.Barrier(128, true); got <= m.Barrier(64, true) {
		t.Errorf("Barrier not growing past 32: Barrier(128)=%d <= Barrier(64)=%d",
			got, m.Barrier(64, true))
	}
}

func TestFabricNames(t *testing.T) {
	if FabricSerial.String() != "serial" || FabricSwitched.String() != "switched" {
		t.Error("fabric names wrong")
	}
	if f, err := ParseFabric("switched"); err != nil || f != FabricSwitched {
		t.Errorf("ParseFabric(switched) = %v, %v", f, err)
	}
	if f, err := ParseFabric("serial"); err != nil || f != FabricSerial {
		t.Errorf("ParseFabric(serial) = %v, %v", f, err)
	}
	if _, err := ParseFabric("mesh"); err == nil {
		t.Error("ParseFabric accepted an unknown fabric")
	}
}

func TestBarrierMonotonic(t *testing.T) {
	m := Default()
	prev := int64(0)
	for n := 2; n <= 32; n++ {
		got := m.Barrier(n, true)
		if got < prev {
			t.Fatalf("Barrier(%d) = %d < Barrier(%d) = %d", n, got, n-1, prev)
		}
		prev = got
	}
}

func TestOccupancy(t *testing.T) {
	// 29 MB/s link: one 8K page should take ~269 us.
	m := Default()
	got := Occupancy(8192, m.MCLinkBandwidth)
	want := int64(8192) * int64(time.Second) / (29 << 20)
	if got != want {
		t.Errorf("Occupancy(8192) = %d, want %d", got, want)
	}
	if got < 260*int64(time.Microsecond) || got > 280*int64(time.Microsecond) {
		t.Errorf("8K page at 29MB/s = %dns, expected ~269us", got)
	}
	if Occupancy(100, 0) != 0 {
		t.Error("zero bandwidth must yield zero occupancy")
	}
	if Occupancy(-5, 1000) != 0 {
		t.Error("negative size must yield zero occupancy")
	}
}

func TestOccupancyProperties(t *testing.T) {
	f := func(n uint16, bw uint32) bool {
		b := int64(bw)%(1<<30) + 1
		o1 := Occupancy(int64(n), b)
		o2 := Occupancy(int64(n)*2, b)
		// Doubling the bytes at least doesn't reduce occupancy, and
		// occupancy is never negative.
		return o1 >= 0 && o2 >= o1
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestDiffMonotoneInSize(t *testing.T) {
	m := Default()
	f := func(a, b uint16) bool {
		const pw = 2048
		x, y := int(a)%pw, int(b)%pw
		if x > y {
			x, y = y, x
		}
		return m.OutgoingDiff(x, pw, false) <= m.OutgoingDiff(y, pw, false) &&
			m.OutgoingDiff(x, pw, true) <= m.OutgoingDiff(y, pw, true) &&
			m.IncomingDiff(x, pw) <= m.IncomingDiff(y, pw)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
