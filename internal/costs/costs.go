// Package costs defines the timing model of the simulated Cashmere-2L
// platform: an 8-node cluster of 4-processor DEC AlphaServer 2100 4/233
// machines connected by a first-generation Memory Channel.
//
// Every constant is taken from Section 3.1 and Table 1 of the SOSP '97
// paper. Protocol code never hard-codes a latency; it always consults a
// Model, so alternative platforms (slower interrupts, larger SMPs, faster
// networks) can be explored by constructing a different Model.
package costs

import (
	"fmt"
	"time"
)

// Fabric selects the interconnect's contention topology.
type Fabric int

const (
	// FabricSerial is the paper's first-generation Memory Channel: a
	// serial global interconnect (a bus), so bulk transfers from all
	// nodes contend for one shared MCAggregateBandwidth cap. The zero
	// value, i.e. the paper's platform.
	FabricSerial Fabric = iota

	// FabricSwitched models a switched (crossbar) interconnect in the
	// style of later cluster networks: a transfer contends only for its
	// source's MCLinkBandwidth, and the fabric imposes no shared
	// aggregate cap, so total bandwidth scales with the node count.
	FabricSwitched
)

// String returns a short name for the fabric.
func (f Fabric) String() string {
	switch f {
	case FabricSerial:
		return "serial"
	case FabricSwitched:
		return "switched"
	default:
		return "Fabric(" + string(rune('0'+int(f))) + ")"
	}
}

// ParseFabric parses a fabric name as accepted by the command-line
// surface: "serial" or "switched".
func ParseFabric(s string) (Fabric, error) {
	switch s {
	case "serial":
		return FabricSerial, nil
	case "switched":
		return FabricSwitched, nil
	}
	return 0, fmt.Errorf(`costs: unknown fabric %q (want "serial" or "switched")`, s)
}

// Model holds every cost parameter of the simulated platform. All durations
// are in nanoseconds of simulated (virtual) time.
type Model struct {
	// MCWriteLatency is the process-to-process latency of a single
	// remote write on the Memory Channel (5.2 us on the paper's
	// AlphaServer 2100 cluster).
	MCWriteLatency int64

	// MCLinkBandwidth is the sustainable per-link transfer bandwidth in
	// bytes per second (29 MB/s, limited by the 32-bit PCI bus).
	MCLinkBandwidth int64

	// MCAggregateBandwidth is the peak aggregate Memory Channel
	// bandwidth in bytes per second (about 60 MB/s). The Memory Channel
	// is a serial global interconnect (a bus); transfers from all nodes
	// contend for this. Ignored by FabricSwitched, which has no shared
	// cap.
	MCAggregateBandwidth int64

	// MCFabric selects the interconnect contention topology: the
	// paper's serial hub (the zero value) or a switched crossbar whose
	// aggregate bandwidth scales with the node count.
	MCFabric Fabric

	// NodeBusBandwidth is the shared memory-bus bandwidth of one SMP
	// node in bytes per second. Capacity-miss traffic from all
	// processors of a node contends for it; this is what makes SOR and
	// Gauss degrade as the degree of clustering grows (paper Section
	// 3.3.3).
	NodeBusBandwidth int64

	// MProtect is the cost of a memory protection change (55 us).
	MProtect int64

	// PageFault is the kernel overhead of a fault on an
	// already-resident page (72 us).
	PageFault int64

	// Twin is the cost of twinning an 8 Kbyte page (199 us).
	Twin int64

	// Diff costs vary with the size of the diff; the paper reports the
	// observed ranges. Cost is interpolated linearly between Min (empty
	// diff) and Max (whole page differs).
	OutgoingDiffLocalMin, OutgoingDiffLocalMax   int64 // home node local: 340-561 us
	OutgoingDiffRemoteMin, OutgoingDiffRemoteMax int64 // home node remote: 290-363 us
	IncomingDiffMin, IncomingDiffMax             int64 // two-way diffing: 533-541 us

	// DirectoryUpdate is the cost of modifying a directory entry
	// without locking (5 us); DirectoryUpdateLocked is the cost when a
	// global lock must be acquired and released around the update
	// (16 us, i.e. 11 us of locking).
	DirectoryUpdate       int64
	DirectoryUpdateLocked int64

	// GlobalLock is the cost of acquiring and releasing an uncontended
	// Memory-Channel global lock (11 us; used at the application level
	// and for home-node relocation).
	GlobalLock int64

	// LockAcquire2L and LockAcquire1L are the application-level lock
	// acquire latencies of the two-level and one-level implementations
	// (19 us and 11 us, Table 1). The two-level implementation pays for
	// the extra intra-node ll/sc round.
	LockAcquire2L int64
	LockAcquire1L int64

	// Barrier costs from Table 1: two-processor and 32-processor
	// barriers for the two-level and one-level implementations.
	Barrier2Proc2L  int64 // 58 us
	Barrier32Proc2L int64 // 321 us
	Barrier2Proc1L  int64 // 41 us
	Barrier32Proc1L int64 // 364 us

	// PageTransferLocal is the minimum cost of transferring a page
	// between two processors on the same physical node (467 us);
	// PageTransferRemote2L and PageTransferRemote1L are the remote
	// transfer costs under the two-level (824 us) and one-level
	// (777 us) protocols. The one-level remote transfer is slightly
	// cheaper because its request path is simpler.
	PageTransferLocal    int64
	PageTransferRemote2L int64
	PageTransferRemote1L int64

	// Poll is the cost of one polling check (ldq/beq at a loop head,
	// roughly three issue slots on the 233 MHz 21064A).
	Poll int64

	// WriteDouble is the per-word computational cost of "doubling" a
	// shared write under the 1L write-through protocol (the extra
	// inline store plus write-buffer pressure). The Memory Channel
	// occupancy of the doubled word is charged separately through the
	// bus model.
	WriteDouble int64

	// Interrupt delivery costs after the paper's kernel modifications:
	// 80 us intra-node and 445 us inter-node. With the stock kernel
	// both cost 980 us.
	IntraNodeInterrupt int64
	InterNodeInterrupt int64
	StockInterrupt     int64

	// ShootdownPoll and ShootdownInterrupt are the per-processor costs
	// of a TLB-shootdown-equivalent under polling-based messaging
	// (72 us) and interrupt-based messaging (142 us), Section 3.3.4.
	ShootdownPoll      int64
	ShootdownInterrupt int64

	// ExplicitRequest is the fixed overhead of sending an explicit
	// inter-node request and having it noticed by a polling processor
	// (request write + poll detection + handler entry). Page transfer
	// costs above already include it; it is charged alone for
	// exclusive-mode break requests.
	ExplicitRequest int64

	// LLSC is the cost of an intra-node load-linked/store-conditional
	// protected operation (local locks on write-notice lists and
	// timestamps).
	LLSC int64
}

const us = int64(time.Microsecond)

// Default returns the timing model of the paper's platform: eight
// 4-processor AlphaServer 2100 4/233 nodes on a first-generation Memory
// Channel, with the polling-based messaging layer.
func Default() Model {
	return Model{
		MCWriteLatency:       5200, // 5.2 us
		MCLinkBandwidth:      29 << 20,
		MCAggregateBandwidth: 60 << 20,
		NodeBusBandwidth:     400 << 20,

		MProtect:  55 * us,
		PageFault: 72 * us,
		Twin:      199 * us,

		OutgoingDiffLocalMin:  340 * us,
		OutgoingDiffLocalMax:  561 * us,
		OutgoingDiffRemoteMin: 290 * us,
		OutgoingDiffRemoteMax: 363 * us,
		IncomingDiffMin:       533 * us,
		IncomingDiffMax:       541 * us,

		DirectoryUpdate:       5 * us,
		DirectoryUpdateLocked: 16 * us,
		GlobalLock:            11 * us,

		LockAcquire2L: 19 * us,
		LockAcquire1L: 11 * us,

		Barrier2Proc2L:  58 * us,
		Barrier32Proc2L: 321 * us,
		Barrier2Proc1L:  41 * us,
		Barrier32Proc1L: 364 * us,

		PageTransferLocal:    467 * us,
		PageTransferRemote2L: 824 * us,
		PageTransferRemote1L: 777 * us,

		Poll:        13, // ~3 issue slots at 233 MHz
		WriteDouble: 150,

		IntraNodeInterrupt: 80 * us,
		InterNodeInterrupt: 445 * us,
		StockInterrupt:     980 * us,

		ShootdownPoll:      72 * us,
		ShootdownInterrupt: 142 * us,

		ExplicitRequest: 30 * us,
		LLSC:            1 * us / 2,
	}
}

// interp linearly interpolates between min and max according to the
// fraction changed/total. A zero total yields min.
func interp(min, max, changed, total int64) int64 {
	if total <= 0 || changed <= 0 {
		return min
	}
	if changed > total {
		changed = total
	}
	return min + (max-min)*changed/total
}

// OutgoingDiff returns the cost of creating and applying an outgoing diff
// covering changedWords of a pageWords-word page. local selects the
// home-node-local cost range (only applicable to one-level protocols,
// where the home copy is in cacheable local memory rather than I/O space).
func (m Model) OutgoingDiff(changedWords, pageWords int, local bool) int64 {
	if local {
		return interp(m.OutgoingDiffLocalMin, m.OutgoingDiffLocalMax, int64(changedWords), int64(pageWords))
	}
	return interp(m.OutgoingDiffRemoteMin, m.OutgoingDiffRemoteMax, int64(changedWords), int64(pageWords))
}

// IncomingDiff returns the cost of a two-way (incoming) diff application
// covering changedWords of a pageWords-word page. The range is narrow
// (533-541 us) because the comparison of the full page dominates.
func (m Model) IncomingDiff(changedWords, pageWords int) int64 {
	return interp(m.IncomingDiffMin, m.IncomingDiffMax, int64(changedWords), int64(pageWords))
}

// PageTransfer returns the minimum page-transfer cost between the
// requesting processor and the holder. local indicates both are on the
// same physical node; twoLevel selects the protocol family's request
// path.
func (m Model) PageTransfer(local, twoLevel bool) int64 {
	switch {
	case local:
		return m.PageTransferLocal
	case twoLevel:
		return m.PageTransferRemote2L
	default:
		return m.PageTransferRemote1L
	}
}

// Barrier returns the application barrier cost for n participating
// processors, interpolating between the measured 2-processor and
// 32-processor costs (Table 1). Beyond 32 processors — past the paper's
// largest measured configuration — the cost extrapolates along the same
// slope, so barriers keep growing with cluster size in scaling studies
// instead of flattening at the 32-processor figure.
func (m Model) Barrier(n int, twoLevel bool) int64 {
	lo, hi := m.Barrier2Proc1L, m.Barrier32Proc1L
	if twoLevel {
		lo, hi = m.Barrier2Proc2L, m.Barrier32Proc2L
	}
	if n <= 2 {
		return lo
	}
	if n >= 32 {
		return hi + (hi-lo)*int64(n-32)/30
	}
	return lo + (hi-lo)*int64(n-2)/30
}

// LockAcquire returns the uncontended application lock acquire cost for
// the protocol family.
func (m Model) LockAcquire(twoLevel bool) int64 {
	if twoLevel {
		return m.LockAcquire2L
	}
	return m.LockAcquire1L
}

// Occupancy returns the time a transfer of n bytes occupies a resource of
// the given bandwidth (bytes/second).
func Occupancy(n int64, bandwidth int64) int64 {
	if bandwidth <= 0 || n <= 0 {
		return 0
	}
	// n bytes at bandwidth B/s takes n/B seconds = n*1e9/B ns.
	return n * int64(time.Second) / bandwidth
}
