package modelcheck

import (
	"testing"

	"cashmere/internal/core"
)

// The policy-op sweeps: the adaptive engine's transitions join the
// alphabet (Options.PolicyOps), so every interleaving of mode flips,
// broadcast replications, and home migrations with the protocol's own
// transitions is explored against the full invariant catalog plus the
// two adaptive invariants (policy-atomic, home-agree).

func TestExplorePolicyOps(t *testing.T) {
	mustExplore(t, Options{Protocol: core.TwoLevel, PolicyOps: true}, exploreDepth(t, 3))
}

func TestExplorePolicyOpsOneLevelDiff(t *testing.T) {
	mustExplore(t, Options{Protocol: core.OneLevelDiff, PolicyOps: true}, exploreDepth(t, 3))
}

// TestExplorePolicyOpsFirstTouch covers the interaction that once bit:
// replicating a page whose superpage has not been first-touched must
// pin the home, or the eventual first touch migrates the home out from
// under the directory words the broadcast published.
func TestExplorePolicyOpsFirstTouch(t *testing.T) {
	mustExplore(t, Options{Protocol: core.TwoLevel, PolicyOps: true, FirstTouch: true},
		exploreDepth(t, 3))
}

// TestExplorePolicyDeep is the acceptance sweep: exhaustive exploration
// of mid-schedule policy flips at depth 4 against every invariant.
func TestExplorePolicyDeep(t *testing.T) {
	if testing.Short() {
		t.Skip("deep exploration")
	}
	mustExplore(t, Options{Protocol: core.TwoLevel, PolicyOps: true}, exploreDepth(t, 4))
}

// mustRunSchedule executes a scripted schedule and fails on any
// invariant violation.
func mustRunSchedule(t *testing.T, opts Options, schedule []Op) {
	t.Helper()
	v, err := RunSchedule(opts, schedule)
	if err != nil {
		t.Fatalf("RunSchedule: %v", err)
	}
	if v != nil {
		t.Fatalf("scripted schedule violated an invariant: %v", v)
	}
}

// Scripted transition-pair schedules: each drives one policy
// transition pair through the protocol states the exhaustive bound
// cannot reach (they need 8-12 steps), checking every invariant after
// every step.

// TestScheduleInvalidateUpdateFlip cycles page 0 invalidate -> update
// -> invalidate across write/flush/acquire episodes: the update-mode
// acquire refreshes the consumer's frame in place, the flip back
// restores invalidation servicing, and a full barrier converges.
func TestScheduleInvalidateUpdateFlip(t *testing.T) {
	mustRunSchedule(t, Options{Protocol: core.TwoLevel}, []Op{
		{Proc: 0, Kind: OpWrite, Page: 0, Word: 0},
		{Proc: 2, Kind: OpRead, Page: 0, Word: 0}, // node 1 joins the sharing set
		{Proc: 0, Kind: OpModeUpdate, Page: 0},
		{Proc: 0, Kind: OpWrite, Page: 0, Word: 1},
		{Proc: 0, Kind: OpRelease}, // notices posted to node 1
		{Proc: 2, Kind: OpAcquire}, // serviced by in-place refresh
		{Proc: 2, Kind: OpRead, Page: 0, Word: 1},
		{Proc: 0, Kind: OpModeInvalidate, Page: 0},
		{Proc: 0, Kind: OpWrite, Page: 0, Word: 2},
		{Proc: 0, Kind: OpRelease},
		{Proc: 2, Kind: OpAcquire}, // back to invalidate servicing
		{Proc: 2, Kind: OpRead, Page: 0, Word: 2},
		{Proc: 0, Kind: OpBarrier},
		{Proc: 1, Kind: OpBarrier},
		{Proc: 2, Kind: OpBarrier},
		{Proc: 3, Kind: OpBarrier},
	})
}

// TestScheduleMigrateDuringRelease migrates page 0's home while
// processor 0 sits between a write (twin created, flush pending) and
// its release: the deferred flush must land on the new home with no
// write lost and every directory word agreeing on the new record.
func TestScheduleMigrateDuringRelease(t *testing.T) {
	mustRunSchedule(t, Options{Protocol: core.TwoLevel}, []Op{
		{Proc: 0, Kind: OpWrite, Page: 0, Word: 0},
		{Proc: 2, Kind: OpMigrateHome, Page: 0}, // home moves mid-release-window
		{Proc: 0, Kind: OpRelease},              // flush must find the new home
		{Proc: 2, Kind: OpAcquire},
		{Proc: 2, Kind: OpRead, Page: 0, Word: 0},
		{Proc: 0, Kind: OpBarrier},
		{Proc: 1, Kind: OpBarrier},
		{Proc: 2, Kind: OpBarrier},
		{Proc: 3, Kind: OpBarrier},
	})
}

// TestScheduleBroadcastDemotedByWrite promotes page 0 to broadcast,
// then writes it from another node: the write fault must demote the
// page to write-invalidate before twinning (the broadcast safety
// valve), and the system must converge at the following barrier.
func TestScheduleBroadcastDemotedByWrite(t *testing.T) {
	opts := Options{Protocol: core.TwoLevel}
	r, err := newRun(opts, nil)
	if err != nil {
		t.Fatal(err)
	}
	for i, op := range []Op{
		{Proc: 0, Kind: OpWrite, Page: 0, Word: 0},
		{Proc: 0, Kind: OpRelease},
		{Proc: 0, Kind: OpBroadcast, Page: 0},
		{Proc: 2, Kind: OpWrite, Page: 0, Word: 1}, // fault demotes broadcast
		{Proc: 2, Kind: OpRelease},
		{Proc: 0, Kind: OpAcquire},
		{Proc: 0, Kind: OpBarrier},
		{Proc: 1, Kind: OpBarrier},
		{Proc: 2, Kind: OpBarrier},
		{Proc: 3, Kind: OpBarrier},
	} {
		if v := r.apply(op); v != nil {
			t.Fatalf("step %d (%s): %v", i, op, v)
		}
	}
	if m := r.h.PageMode(0); m != core.ModeInvalidate {
		t.Errorf("page 0 mode after write fault = %v, want invalidate", m)
	}
}
