// Package modelcheck is a small-model checker for the Cashmere
// coherence protocols. It drives the real protocol engine
// (internal/core and the packages under it) — not a re-implementation —
// through interleavings of its atomic transitions, checking a catalog
// of safety invariants after every step.
//
// # Approach
//
// Every protocol transition (fault service, release flush, acquire
// drain, exclusive break, barrier arrival/departure) runs to completion
// under the owning node's mutex, so a schedule of transitions executed
// one at a time from a single goroutine explores exactly the
// protocol-level interleavings, deterministically. Explore enumerates
// every schedule up to a depth bound over a small model (by default
// 2 nodes x 2 processors x 2 pages); Fuzz samples long random
// schedules; RunSchedule executes a scripted interleaving (the way to
// reach states deeper than the exhaustive bound). Any invariant
// violation is reported as a Counterexample: a replayable schedule plus
// the violated invariant, serializable to JSON for `cashmere-run
// -replay`.
//
// # Invariant catalog
//
// After every step the checker asserts (names as reported in
// Violation.Invariant):
//
//   - exclusive-sole: a page in exclusive mode has exactly one holder
//     node; every other node's directory word and page tables show
//     Invalid (paper Section 2.4.1 — exclusive pages are outside the
//     coherence protocol precisely because nobody else has a copy), and
//     the holder keeps no twin (exclusive pages are not diffed; a twin
//     surviving into exclusive mode goes stale and later reflushes
//     exclusive-era data over newer remote writes).
//   - twin-stale: wherever a frame differs from its twin, the
//     difference is an unreleased local write (Section 2.5: the twin
//     always equals the node's last flushed state, which is what makes
//     outgoing and incoming diffs identify exactly the local and remote
//     modifications). A divergence with nothing pending means the twin
//     missed a flush and the next release will push stale data home.
//   - lost-write: a word written locally and not yet flushed to the
//     home ("pending") must remain visible in the writing node's frame
//     until the protocol flushes it. The oracle gives every write a
//     unique value and observes the master copy to learn when a write
//     has been flushed; a pending value that disappears from the frame
//     was destroyed by a merge (Section 2.5's two-way diffing exists to
//     make exactly this impossible).
//   - dir-agree: each node's directory word permission is at least as
//     loose as the loosest page-table permission on that node (the word
//     is the first-level directory's summary of the second level), and
//     every replica of every word agrees with the owner's doubled copy.
//   - notice-conservation: a node's globally-accessible write-notice
//     list only grows, except across that node's own acquire, which
//     must leave it empty (notices are never dropped); after an acquire
//     the acquiring processor's second-level list is empty.
//   - vt-monotone: virtual time never moves backwards, and a step by
//     one processor never moves another processor's clock (barrier
//     departures, which are charged a rendezvous release time, step
//     every clock and are checked for monotonicity only).
//   - barrier-converged: immediately after a full barrier, every node
//     frame backed by a valid mapping is word-identical to the master
//     copy, no write notices (global or per-processor) are pending
//     anywhere, and no write is still pending except on a page its
//     node holds in exclusive mode.
//   - read-value: a shared read returns zero or a value some processor
//     actually wrote to that word (catches cross-word or cross-page
//     smearing).
//
// With Options.PolicyOps, the adaptive policy engine's transitions
// (internal/policy) join the alphabet and two more invariants apply:
//
//   - policy-atomic: a broadcast promotion that acts leaves the whole
//     transition applied within its step — mode table, replicated
//     frames, and read-only mappings all consistent; no schedule can
//     observe a half-applied transition.
//   - home-agree: a home migration that acts lands the home on the
//     acting processor's node, and (via dir-agree's home check, which
//     runs continuously) every node's directory word records the new
//     home processor.
//
// See docs/MODELCHECK.md for the state space and workflow.
package modelcheck

import (
	"fmt"
	"sort"

	"cashmere/internal/core"
	"cashmere/internal/directory"
	"cashmere/internal/trace"
)

// OpKind enumerates the schedulable protocol transitions.
type OpKind int

const (
	// OpRead is a shared read of one word; services a read fault
	// (fetch, refetch, exclusive break) if the mapping is missing.
	OpRead OpKind = iota
	// OpWrite is a shared write of one word; services a write fault
	// (twinning, exclusive entry) if write permission is missing.
	OpWrite
	// OpRelease performs release-side consistency actions: flush dirty
	// and no-longer-exclusive pages, send write notices.
	OpRelease
	// OpAcquire performs acquire-side consistency actions: drain the
	// node's write-notice list and invalidate stale mappings.
	OpAcquire
	// OpBarrier is a barrier arrival. When the last processor arrives,
	// the departure half runs for every processor (in processor order)
	// within the same step, releasing them at the rendezvous time the
	// blocking barrier would compute.
	OpBarrier
	// OpBreak sends an explicit request breaking the page out of
	// exclusive mode held by another node, without the subsequent
	// map-in a fault would perform.
	OpBreak
	// OpModeInvalidate switches the page's adaptive coherence mode to
	// write-invalidate (the baseline), as the policy engine's demotion
	// transition would. New kinds append after OpBreak so recorded
	// counterexample JSON keeps its meaning.
	OpModeInvalidate
	// OpModeUpdate switches the page to write-update mode: subsequent
	// acquires service the page's write notices by refreshing the frame
	// in place instead of invalidating.
	OpModeUpdate
	// OpBroadcast switches the page to broadcast mode and, if the mode
	// changed, immediately replicates the master copy to every node —
	// the two halves of the engine's broadcast promotion, in one
	// schedule step because the engine applies them back to back inside
	// a decision epoch.
	OpBroadcast
	// OpMigrateHome migrates the page's (superpage's) home to the
	// acting processor's protocol node, the engine's home-migration
	// transition.
	OpMigrateHome
)

var opKindNames = map[OpKind]string{
	OpRead:           "read",
	OpWrite:          "write",
	OpRelease:        "release",
	OpAcquire:        "acquire",
	OpBarrier:        "barrier",
	OpBreak:          "break",
	OpModeInvalidate: "mode-invalidate",
	OpModeUpdate:     "mode-update",
	OpBroadcast:      "broadcast",
	OpMigrateHome:    "migrate-home",
}

// isPolicyOp reports whether k is one of the adaptive-policy
// transitions (enabled only under Options.PolicyOps).
func isPolicyOp(k OpKind) bool {
	return k == OpModeInvalidate || k == OpModeUpdate ||
		k == OpBroadcast || k == OpMigrateHome
}

// String returns the op kind's schedule name.
func (k OpKind) String() string {
	if s, ok := opKindNames[k]; ok {
		return s
	}
	return fmt.Sprintf("OpKind(%d)", int(k))
}

// Op is one step of a schedule: a protocol transition performed by one
// processor. Page and Word are used by OpRead, OpWrite, and OpBreak
// (Word by the accesses only).
type Op struct {
	Proc int    `json:"proc"`
	Kind OpKind `json:"kind"`
	Page int    `json:"page,omitempty"`
	Word int    `json:"word,omitempty"`
}

// String renders the op the way schedules print it.
func (o Op) String() string {
	switch o.Kind {
	case OpRead, OpWrite:
		return fmt.Sprintf("p%d:%s(page%d,w%d)", o.Proc, o.Kind, o.Page, o.Word)
	case OpBreak, OpModeInvalidate, OpModeUpdate, OpBroadcast, OpMigrateHome:
		return fmt.Sprintf("p%d:%s(page%d)", o.Proc, o.Kind, o.Page)
	default:
		return fmt.Sprintf("p%d:%s", o.Proc, o.Kind)
	}
}

// Options describes the model: the cluster shape and protocol variant
// to check, and the width of the operation alphabet.
type Options struct {
	// Nodes, ProcsPerNode, Pages, PageWords give the small model's
	// shape. Zero values default to the canonical 2 x 2 x 2 pages x 8
	// words model.
	Nodes        int `json:"nodes,omitempty"`
	ProcsPerNode int `json:"procsPerNode,omitempty"`
	Pages        int `json:"pages,omitempty"`
	PageWords    int `json:"pageWords,omitempty"`

	// Protocol selects the protocol variant (core.TwoLevel by
	// default).
	Protocol core.Kind `json:"protocol,omitempty"`

	// WideLayout forces the wide directory word layout, cross-checking
	// it against the packed layout the small model would choose.
	WideLayout bool `json:"wideLayout,omitempty"`

	// LockBasedMeta checks the globally-locked metadata ablation.
	LockBasedMeta bool `json:"lockBasedMeta,omitempty"`

	// FirstTouch enables first-touch home relocation from the first
	// step (EndInit's effect), covering the home-migration paths.
	FirstTouch bool `json:"firstTouch,omitempty"`

	// Words bounds the per-page word range the generated alphabet
	// writes (default 1: all generated writes target word 0, which
	// maximizes write-write conflict coverage per unit of depth).
	// Scripted schedules may address any word regardless.
	Words int `json:"words,omitempty"`

	// PolicyOps adds the adaptive-policy transitions to the generated
	// alphabet: per-page mode flips and broadcast replication by
	// processor 0 (the engine's decider), and home migration by any
	// processor hosted away from the page's home. Mode flips are
	// restricted to the decider, as in the engine, to bound branching.
	// Scripted schedules may use the policy op kinds regardless.
	PolicyOps bool `json:"policyOps,omitempty"`
}

func (o Options) withDefaults() Options {
	if o.Nodes == 0 {
		o.Nodes = 2
	}
	if o.ProcsPerNode == 0 {
		o.ProcsPerNode = 2
	}
	if o.Pages == 0 {
		o.Pages = 2
	}
	if o.PageWords == 0 {
		o.PageWords = 8
	}
	if o.Words == 0 {
		o.Words = 1
	}
	return o
}

// Violation describes one invariant failure.
type Violation struct {
	// Invariant is the catalog name (see the package comment).
	Invariant string `json:"invariant"`
	// Step is the index of the schedule op after which the invariant
	// failed.
	Step int `json:"step"`
	// Detail is a human-readable account of the failing state.
	Detail string `json:"detail"`
}

func (v *Violation) String() string {
	return fmt.Sprintf("invariant %q violated after step %d: %s", v.Invariant, v.Step, v.Detail)
}

// pwrite tracks one write in the oracle: its unique value and whether
// it is still "live" — issued, not yet overwritten by a later local
// write, and not yet observed flushed to the master copy. A live write
// must be visible in the writing node's frame.
type pwrite struct {
	val  int64
	live bool
}

// run is one schedule execution against a live cluster, with the
// write-history oracle and the invariant state trailing it.
type run struct {
	opts   Options
	c      *core.Cluster
	h      *core.Harness
	tracer *trace.Tracer

	nprocs, nnodes, pages, words int
	nodeOf                       []int // proc -> protocol node

	step int
	seq  int64 // next unique write value

	// pending[node][page][word] is the latest local write.
	pending [][][]pwrite
	// wordOf maps a write value to its page*pageWords+word, for the
	// read-value invariant.
	wordOf map[int64]int

	// Barrier rendezvous state.
	arrived   []bool
	arriveClk []int64

	// Previous-step snapshots for the delta invariants.
	prevClk   []int64
	prevQueue [][]int
	prevExcl  []int // exclusive holder node per page, -1 if none
}

// newRun builds a fresh cluster for opts. A non-nil tracer is attached
// for counterexample replay output.
func newRun(opts Options, tracer *trace.Tracer) (*run, error) {
	opts = opts.withDefaults()
	layout := directory.LayoutAuto
	if opts.WideLayout {
		layout = directory.LayoutWide
	}
	cfg := core.Config{
		Nodes:           opts.Nodes,
		ProcsPerNode:    opts.ProcsPerNode,
		Protocol:        opts.Protocol,
		DirectoryLayout: layout,
		LockBasedMeta:   opts.LockBasedMeta,
		PageWords:       opts.PageWords,
		SharedWords:     opts.Pages * opts.PageWords,
		SuperpagePages:  1,
		Trace:           tracer,
	}
	c, err := core.New(cfg)
	if err != nil {
		return nil, err
	}
	h := c.Harness()
	if opts.FirstTouch {
		h.SetFirstTouch(true)
	}
	r := &run{
		opts:   opts,
		c:      c,
		h:      h,
		tracer: tracer,
		nprocs: c.NumProcs(),
		nnodes: h.ProtoNodes(),
		pages:  c.Pages(),
		words:  cfg.PageWords,
		seq:    1,
		wordOf: make(map[int64]int),
	}
	r.nodeOf = make([]int, r.nprocs)
	for p := range r.nodeOf {
		r.nodeOf[p] = h.ProtoNodeOf(p)
	}
	r.pending = make([][][]pwrite, r.nnodes)
	for x := range r.pending {
		r.pending[x] = make([][]pwrite, r.pages)
		for g := range r.pending[x] {
			r.pending[x][g] = make([]pwrite, r.words)
		}
	}
	r.arrived = make([]bool, r.nprocs)
	r.arriveClk = make([]int64, r.nprocs)
	r.prevClk = make([]int64, r.nprocs)
	r.prevQueue = make([][]int, r.nnodes)
	r.prevExcl = make([]int, r.pages)
	for g := range r.prevExcl {
		r.prevExcl[g] = -1
	}
	return r, nil
}

// exclHolder returns the node holding page exclusively per the nodes'
// own directory words, or -1.
func (r *run) exclHolder(page int) int {
	dir, lay := r.h.Directory(), r.h.Layout()
	for x := 0; x < r.nnodes; x++ {
		if _, ok := lay.Excl(dir.Load(x, page, x)); ok {
			return x
		}
	}
	return -1
}

// enabled returns the ops schedulable from the current state. Generated
// accesses target words [0, opts.Words); processors that have arrived
// at the barrier have no enabled ops until the rendezvous completes.
func (r *run) enabled() []Op {
	var ops []Op
	for p := 0; p < r.nprocs; p++ {
		if r.arrived[p] {
			continue
		}
		for g := 0; g < r.pages; g++ {
			ops = append(ops, Op{Proc: p, Kind: OpRead, Page: g})
			for w := 0; w < r.opts.Words; w++ {
				ops = append(ops, Op{Proc: p, Kind: OpWrite, Page: g, Word: w})
			}
			if x := r.exclHolder(g); x >= 0 && x != r.nodeOf[p] {
				ops = append(ops, Op{Proc: p, Kind: OpBreak, Page: g})
			}
			if r.opts.PolicyOps {
				if p == 0 {
					switch r.h.PageMode(g) {
					case core.ModeInvalidate:
						ops = append(ops,
							Op{Proc: p, Kind: OpModeUpdate, Page: g},
							Op{Proc: p, Kind: OpBroadcast, Page: g})
					case core.ModeUpdate:
						ops = append(ops,
							Op{Proc: p, Kind: OpModeInvalidate, Page: g},
							Op{Proc: p, Kind: OpBroadcast, Page: g})
					case core.ModeBroadcast:
						ops = append(ops,
							Op{Proc: p, Kind: OpModeInvalidate, Page: g},
							Op{Proc: p, Kind: OpModeUpdate, Page: g})
					}
				}
				if r.nodeOf[p] != r.h.HomeOf(g) {
					ops = append(ops, Op{Proc: p, Kind: OpMigrateHome, Page: g})
				}
			}
		}
		ops = append(ops,
			Op{Proc: p, Kind: OpRelease},
			Op{Proc: p, Kind: OpAcquire},
			Op{Proc: p, Kind: OpBarrier})
	}
	return ops
}

// snapshotPre records the state the delta invariants compare against.
func (r *run) snapshotPre() {
	for p := 0; p < r.nprocs; p++ {
		r.prevClk[p] = r.h.Clock(p)
	}
	for x := 0; x < r.nnodes; x++ {
		r.prevQueue[x] = r.h.QueuedNotices(x)
	}
	for g := 0; g < r.pages; g++ {
		r.prevExcl[g] = r.exclHolder(g)
	}
}

// apply executes one schedule op (plus, for the last barrier arrival,
// the departure half for every processor), updates the oracle, and
// checks every invariant. It returns the first violation found, or nil.
func (r *run) apply(op Op) *Violation {
	if op.Proc < 0 || op.Proc >= r.nprocs {
		return &Violation{Invariant: "schedule", Step: r.step,
			Detail: fmt.Sprintf("op %s: no such processor", op)}
	}
	if (op.Kind == OpRead || op.Kind == OpWrite || op.Kind == OpBreak || isPolicyOp(op.Kind)) &&
		(op.Page < 0 || op.Page >= r.pages || op.Word < 0 || op.Word >= r.words) {
		return &Violation{Invariant: "schedule", Step: r.step,
			Detail: fmt.Sprintf("op %s: page/word out of range", op)}
	}
	r.snapshotPre()

	drained := make([]bool, r.nnodes) // nodes whose gwn a drain emptied
	barrierDone := false
	policyActed := false // a policy op performed its transition
	var readVal int64
	hasRead := false

	if r.arrived[op.Proc] {
		// A minimized or hand-written schedule may address an arrived
		// processor; the rendezvous makes that a no-op rather than an
		// error so minimization can delete arrivals freely.
	} else {
		switch op.Kind {
		case OpRead:
			readVal = r.h.Read(op.Proc, op.Page*r.words+op.Word)
			hasRead = true
		case OpWrite:
			v := r.seq
			r.seq++
			x := r.nodeOf[op.Proc]
			r.pending[x][op.Page][op.Word] = pwrite{val: v, live: true}
			r.wordOf[v] = op.Page*r.words + op.Word
			r.h.Write(op.Proc, op.Page*r.words+op.Word, v)
		case OpRelease:
			r.h.Release(op.Proc)
		case OpAcquire:
			r.h.Acquire(op.Proc)
			drained[r.nodeOf[op.Proc]] = true
		case OpBreak:
			r.h.BreakExclusive(op.Proc, op.Page)
		case OpModeInvalidate:
			policyActed = r.h.SetPageMode(op.Proc, op.Page, core.ModeInvalidate)
		case OpModeUpdate:
			policyActed = r.h.SetPageMode(op.Proc, op.Page, core.ModeUpdate)
		case OpBroadcast:
			if r.h.SetPageMode(op.Proc, op.Page, core.ModeBroadcast) {
				policyActed = r.h.Replicate(op.Proc, op.Page)
			}
		case OpMigrateHome:
			policyActed = r.h.MigrateHomeTo(op.Proc, op.Page)
		case OpBarrier:
			r.h.BarrierArrive(op.Proc)
			r.arrived[op.Proc] = true
			r.arriveClk[op.Proc] = r.h.Clock(op.Proc)
			all := true
			for p := 0; p < r.nprocs; p++ {
				all = all && r.arrived[p]
			}
			if all {
				release := int64(0)
				for p := 0; p < r.nprocs; p++ {
					if r.arriveClk[p] > release {
						release = r.arriveClk[p]
					}
				}
				release += r.h.BarrierCost()
				for p := 0; p < r.nprocs; p++ {
					r.h.BarrierDepart(p, release)
					r.arrived[p] = false
					drained[r.nodeOf[p]] = true
				}
				barrierDone = true
			}
		default:
			return &Violation{Invariant: "schedule", Step: r.step,
				Detail: fmt.Sprintf("op %s: unknown kind", op)}
		}
	}

	v := r.check(op, drained, barrierDone, policyActed, hasRead, readVal)
	r.step++
	return v
}

// settleOracle reconciles the write oracle with the post-step state:
// writes observed in the master copy have been flushed, and an
// exclusive break flushes the ex-holder's whole frame (even if a later
// action in the same step overwrote the master again).
func (r *run) settleOracle() {
	for g := 0; g < r.pages; g++ {
		if x := r.prevExcl[g]; x >= 0 && r.exclHolder(g) != x {
			for w := range r.pending[x][g] {
				r.pending[x][g][w].live = false
			}
		}
		m := r.h.Master(g)
		for w := 0; w < r.words; w++ {
			for x := 0; x < r.nnodes; x++ {
				pw := &r.pending[x][g][w]
				if pw.live && pw.val == m[w] {
					pw.live = false
				}
			}
		}
	}
}

// check runs the invariant catalog after a step.
func (r *run) check(op Op, drained []bool, barrierDone, policyActed, hasRead bool, readVal int64) *Violation {
	r.settleOracle()
	fail := func(inv, format string, args ...any) *Violation {
		return &Violation{Invariant: inv, Step: r.step,
			Detail: fmt.Sprintf("after %s: ", op) + fmt.Sprintf(format, args...)}
	}

	// policy-atomic: a broadcast promotion that acted must leave the
	// whole transition applied in one step — the mode table says
	// broadcast, and every node that was eligible for replication (no
	// live twin guarding local writes) holds a master-identical frame
	// with every local processor mapped at least read-only.
	if op.Kind == OpBroadcast && policyActed {
		if m := r.h.PageMode(op.Page); m != core.ModeBroadcast {
			return fail("policy-atomic", "page %d mode is %s after an acting broadcast op", op.Page, m)
		}
		master := r.h.Master(op.Page)
		for x := 0; x < r.nnodes; x++ {
			st := r.h.PageState(x, op.Page)
			if st.HasTwin && !st.Aliased {
				continue // replication leaves twin-guarded frames alone
			}
			if !st.HasFrame {
				return fail("policy-atomic", "page %d node %d has no frame after replication", op.Page, x)
			}
			for w := 0; w < r.words; w++ {
				if st.Frame[w] != master[w] {
					return fail("policy-atomic", "page %d word %d: node %d frame has %d, master %d after replication",
						op.Page, w, x, st.Frame[w], master[w])
				}
			}
			for l, perm := range st.Perms {
				if perm == directory.Invalid {
					return fail("policy-atomic", "page %d node %d local proc %d still unmapped after replication",
						op.Page, x, l)
				}
			}
		}
	}

	// home-agree: a home migration that acted must land the home on the
	// acting processor's node (the continuous dir-agree check below
	// separately holds every node's directory word to the new record).
	if op.Kind == OpMigrateHome && policyActed {
		if home, want := r.h.HomeOf(op.Page), r.nodeOf[op.Proc]; home != want {
			return fail("home-agree", "page %d home is node %d after migration toward proc %d (node %d)",
				op.Page, home, op.Proc, want)
		}
	}

	// read-value: reads return zero or a value written to that word.
	if hasRead && readVal != 0 {
		want := op.Page*r.words + op.Word
		got, ok := r.wordOf[readVal]
		if !ok || got != want {
			return fail("read-value", "read of page %d word %d returned %d, which was never written there",
				op.Page, op.Word, readVal)
		}
	}

	// vt-monotone.
	for p := 0; p < r.nprocs; p++ {
		clk := r.h.Clock(p)
		if clk < r.prevClk[p] {
			return fail("vt-monotone", "proc %d clock moved backwards: %d -> %d", p, r.prevClk[p], clk)
		}
		if !barrierDone && p != op.Proc && clk != r.prevClk[p] {
			return fail("vt-monotone", "step by proc %d moved proc %d's clock: %d -> %d",
				op.Proc, p, r.prevClk[p], clk)
		}
	}

	// notice-conservation.
	for x := 0; x < r.nnodes; x++ {
		queue := r.h.QueuedNotices(x)
		if drained[x] {
			if len(queue) != 0 {
				return fail("notice-conservation", "node %d notice list not empty after its acquire: %v", x, queue)
			}
			continue
		}
		if !multisetContains(queue, r.prevQueue[x]) {
			return fail("notice-conservation", "node %d lost posted notices without an acquire: had %v, now %v",
				x, r.prevQueue[x], queue)
		}
	}
	if op.Kind == OpAcquire && !r.arrived[op.Proc] {
		if n := r.h.ProcNotices(op.Proc); n != 0 {
			return fail("notice-conservation", "proc %d second-level list has %d notices after its acquire", op.Proc, n)
		}
	}

	dir, lay := r.h.Directory(), r.h.Layout()
	for g := 0; g < r.pages; g++ {
		master := r.h.Master(g)
		excl := -1
		states := make([]core.PageState, r.nnodes)
		for x := 0; x < r.nnodes; x++ {
			states[x] = r.h.PageState(x, g)
			if _, ok := lay.Excl(states[x].OwnWord); ok {
				if excl >= 0 {
					return fail("exclusive-sole", "page %d exclusive on nodes %d and %d", g, excl, x)
				}
				excl = x
			}
		}

		for x := 0; x < r.nnodes; x++ {
			st := states[x]
			loosest := directory.Invalid
			for _, p := range st.Perms {
				if p > loosest {
					loosest = p
				}
			}

			// exclusive-sole: the holder runs without a twin, and other
			// nodes have no valid view.
			if excl == x && st.HasTwin {
				return fail("exclusive-sole", "page %d exclusive on node %d, which still holds a twin", g, x)
			}
			if excl >= 0 && x != excl {
				if lay.Perm(st.OwnWord) != directory.Invalid {
					return fail("exclusive-sole", "page %d exclusive on node %d but node %d's word is %s",
						g, excl, x, lay.Format(st.OwnWord))
				}
				if loosest != directory.Invalid {
					return fail("exclusive-sole", "page %d exclusive on node %d but node %d maps it %s",
						g, excl, x, loosest)
				}
			}

			// dir-agree: the word's permission is at least as loose as
			// the node's page tables, and all replicas agree.
			if lay.Perm(st.OwnWord) < loosest {
				return fail("dir-agree", "page %d node %d word says %s but a local table says %s",
					g, x, lay.Perm(st.OwnWord), loosest)
			}
			for reader := 0; reader < r.nnodes; reader++ {
				if w := dir.Load(reader, g, x); w != st.OwnWord {
					return fail("dir-agree", "page %d node %d word: own replica %s, node %d replica %s",
						g, x, lay.Format(st.OwnWord), reader, lay.Format(w))
				}
			}
			if hp, ok := lay.Home(st.OwnWord); ok {
				if home := r.h.ProtoNodeOf(hp); home != r.h.HomeOf(g) {
					return fail("dir-agree", "page %d node %d word records home proc %d (node %d), actual home node %d",
						g, x, hp, home, r.h.HomeOf(g))
				}
			}

			// lost-write: live pending writes are visible in the frame.
			for w := 0; w < r.words; w++ {
				pw := r.pending[x][g][w]
				if !pw.live {
					continue
				}
				if !st.HasFrame {
					return fail("lost-write", "page %d word %d: node %d has pending write %d but no frame",
						g, w, x, pw.val)
				}
				if st.Frame[w] != pw.val {
					return fail("lost-write", "page %d word %d: node %d's pending write %d vanished from the frame (frame has %d, master %d)",
						g, w, x, pw.val, st.Frame[w], master[w])
				}
				if barrierDone && excl != x {
					return fail("barrier-converged", "page %d word %d: node %d still has unflushed write %d after a full barrier",
						g, w, x, pw.val)
				}
			}

			// twin-stale: frame-vs-twin divergence must be an
			// unreleased local write.
			if st.HasTwin {
				for w := 0; w < r.words; w++ {
					if st.Frame[w] == st.Twin[w] {
						continue
					}
					pw := r.pending[x][g][w]
					if !pw.live || pw.val != st.Frame[w] {
						return fail("twin-stale", "page %d word %d: node %d frame has %d but twin has %d with no unreleased local write to explain it",
							g, w, x, st.Frame[w], st.Twin[w])
					}
				}
			}

			// barrier-converged: valid mappings see the master copy.
			if barrierDone && excl < 0 && loosest != directory.Invalid && st.HasFrame {
				for w := 0; w < r.words; w++ {
					if st.Frame[w] != master[w] {
						return fail("barrier-converged", "page %d word %d: node %d maps the page %s but frame has %d, master %d",
							g, w, x, loosest, st.Frame[w], master[w])
					}
				}
			}
		}
	}

	if barrierDone {
		for x := 0; x < r.nnodes; x++ {
			if n := r.h.PendingNotices(x); n != 0 {
				return fail("barrier-converged", "node %d has %d undrained notices after a full barrier", x, n)
			}
		}
		for p := 0; p < r.nprocs; p++ {
			if n := r.h.ProcNotices(p); n != 0 {
				return fail("barrier-converged", "proc %d has %d pending second-level notices after a full barrier", p, n)
			}
		}
	}
	return nil
}

// multisetContains reports whether every element of want appears in got
// at least as many times.
func multisetContains(got, want []int) bool {
	if len(want) == 0 {
		return true
	}
	g := append([]int(nil), got...)
	w := append([]int(nil), want...)
	sort.Ints(g)
	sort.Ints(w)
	i := 0
	for _, v := range w {
		for i < len(g) && g[i] < v {
			i++
		}
		if i >= len(g) || g[i] != v {
			return false
		}
		i++
	}
	return true
}
