package modelcheck

import (
	"encoding/json"
	"fmt"
	"io"

	"cashmere/internal/trace"
)

// Counterexample is a replayable invariant violation: the model
// options, the schedule that reaches the violation, and the violation
// itself. The JSON encoding is the interchange format written by the
// checker and read back by `cashmere-run -replay`.
type Counterexample struct {
	// Options reproduces the model (always fully populated, so a
	// future default change cannot reinterpret an old file).
	Options Options `json:"options"`
	// Seed is the fuzzer seed that generated the schedule (0 for
	// exhaustive or scripted schedules).
	Seed int64 `json:"seed,omitempty"`
	// Schedule is the transition sequence; its last op triggers the
	// violation.
	Schedule []Op `json:"schedule"`
	// Violation is the invariant failure the schedule reproduces.
	Violation Violation `json:"violation"`
}

// Encode renders the counterexample as indented JSON.
func (cx *Counterexample) Encode() ([]byte, error) {
	return json.MarshalIndent(cx, "", "  ")
}

// Decode parses a counterexample from its JSON encoding.
func Decode(data []byte) (*Counterexample, error) {
	var cx Counterexample
	if err := json.Unmarshal(data, &cx); err != nil {
		return nil, fmt.Errorf("modelcheck: bad counterexample: %w", err)
	}
	if len(cx.Schedule) == 0 {
		return nil, fmt.Errorf("modelcheck: counterexample has no schedule")
	}
	return &cx, nil
}

// Minimize greedily shrinks the counterexample's schedule: it removes
// one op at a time, keeping each removal after which a violation of the
// same invariant still fires, until no single removal survives. The
// result is a new counterexample whose violation is the re-verified
// one; cx itself is untouched. A counterexample that no longer
// reproduces at all (checker bug or nondeterminism) is returned as-is.
func Minimize(cx *Counterexample) *Counterexample {
	reproduce := func(schedule []Op) *Violation {
		v, err := RunSchedule(cx.Options, schedule)
		if err != nil || v == nil || v.Invariant != cx.Violation.Invariant {
			return nil
		}
		return v
	}
	best := append([]Op(nil), cx.Schedule...)
	viol := reproduce(best)
	if viol == nil {
		return cx
	}
	for {
		shrunk := false
		for i := 0; i < len(best); i++ {
			candidate := append(append([]Op(nil), best[:i]...), best[i+1:]...)
			if v := reproduce(candidate); v != nil {
				best, viol = candidate, v
				shrunk = true
				break
			}
		}
		if !shrunk {
			break
		}
	}
	return &Counterexample{
		Options:   cx.Options,
		Seed:      cx.Seed,
		Schedule:  best,
		Violation: *viol,
	}
}

// Replay re-executes the counterexample's schedule deterministically
// against a fresh cluster with protocol-event tracing attached, writing
// a step-by-step account and the recorded protocol events to w. It
// returns the violation the replay reproduced, or nil (with a
// divergence note on w) if the schedule no longer violates anything.
func Replay(cx *Counterexample, w io.Writer) (*Violation, error) {
	opts := cx.Options.withDefaults()
	tracer := trace.New(trace.Config{
		Procs: opts.Nodes * opts.ProcsPerNode,
		Links: opts.Nodes,
	})
	r, err := newRun(opts, tracer)
	if err != nil {
		return nil, err
	}
	fmt.Fprintf(w, "replay: %s\n", r.h.String())
	fmt.Fprintf(w, "expect: %s\n\n", &cx.Violation)

	var got *Violation
	for i, op := range cx.Schedule {
		v := r.apply(op)
		fmt.Fprintf(w, "step %2d  %-24s clk(p%d)=%d\n", i, op.String(), op.Proc, r.h.Clock(op.Proc))
		if v != nil {
			got = v
			fmt.Fprintf(w, "\nVIOLATION %s\n", v)
			break
		}
	}
	if got == nil {
		fmt.Fprintf(w, "\nDIVERGENCE: schedule ran clean; the violation did not reproduce\n")
	}

	fmt.Fprintf(w, "\nprotocol events:\n")
	for _, e := range tracer.Events() {
		fmt.Fprintf(w, "  vt=%-8d p%-2d node%-2d page%-2d %-16s arg=%d arg2=%d\n",
			e.VT, e.Proc, e.Node, e.Page, e.Kind, e.Arg, e.Arg2)
	}
	return got, nil
}
