package modelcheck

import "fmt"

// Result summarizes an exploration.
type Result struct {
	// Runs is the number of complete schedules executed (leaves of the
	// exploration tree for Explore, schedules for Fuzz).
	Runs int64
	// Steps is the total number of protocol transitions executed.
	Steps int64
	// Counterexample is non-nil if an invariant was violated.
	Counterexample *Counterexample
}

// Explore exhaustively enumerates every schedule of enabled operations
// up to depth steps over the opts small model, checking every invariant
// after every step of every schedule. It stops at the first violation,
// returning it as a replayable (pre-minimization) counterexample.
//
// The state space is explored by stateless re-execution: each prefix is
// replayed from a fresh cluster, which costs depth extra work per node
// but needs no snapshot/undo support from the protocol engine. Checking
// after every step means exploring to depth d also covers every
// schedule shorter than d.
func Explore(opts Options, depth int) (Result, error) {
	if depth < 1 {
		return Result{}, fmt.Errorf("modelcheck: depth must be >= 1, got %d", depth)
	}
	var res Result
	var dfs func(prefix []Op) (*Counterexample, error)
	dfs = func(prefix []Op) (*Counterexample, error) {
		r, err := newRun(opts, nil)
		if err != nil {
			return nil, err
		}
		for _, op := range prefix {
			res.Steps++
			if v := r.apply(op); v != nil {
				// Only the last op can fire: shorter prefixes were
				// validated when they were leaves themselves.
				return &Counterexample{
					Options:   opts.withDefaults(),
					Schedule:  append([]Op(nil), prefix...),
					Violation: *v,
				}, nil
			}
		}
		res.Runs++
		if len(prefix) == depth {
			return nil, nil
		}
		for _, op := range r.enabled() {
			cx, err := dfs(append(prefix[:len(prefix):len(prefix)], op))
			if cx != nil || err != nil {
				return cx, err
			}
		}
		return nil, nil
	}
	cx, err := dfs(nil)
	if err != nil {
		return Result{}, err
	}
	res.Counterexample = cx
	return res, nil
}

// RunSchedule executes a scripted schedule against a fresh cluster,
// checking every invariant after every step. It returns the first
// violation (nil if the schedule runs clean). Scripted schedules reach
// states deeper than the exhaustive bound; they may address any word,
// and ops for processors blocked in a barrier rendezvous are no-ops.
func RunSchedule(opts Options, schedule []Op) (*Violation, error) {
	r, err := newRun(opts, nil)
	if err != nil {
		return nil, err
	}
	for _, op := range schedule {
		if v := r.apply(op); v != nil {
			return v, nil
		}
	}
	return nil, nil
}
