package modelcheck

import (
	"fmt"
	"math/rand"
)

// Fuzz executes schedules random schedules of up to maxLen enabled
// operations each, seeded deterministically from seed (schedule i uses
// seed+i, so a corpus can be replayed or sharded by seed range). Every
// invariant is checked after every step; the first violation is
// returned as a minimized, replayable counterexample.
//
// Random schedules reach protocol states far beyond the exhaustive
// depth bound — long release/acquire chains, repeated barrier episodes,
// exclusive-mode churn — trading completeness for depth.
func Fuzz(opts Options, seed int64, schedules int, maxLen int) (Result, error) {
	if maxLen < 1 {
		return Result{}, fmt.Errorf("modelcheck: maxLen must be >= 1, got %d", maxLen)
	}
	var res Result
	for i := 0; i < schedules; i++ {
		s := seed + int64(i)
		rng := rand.New(rand.NewSource(s))
		r, err := newRun(opts, nil)
		if err != nil {
			return Result{}, err
		}
		var schedule []Op
		for len(schedule) < maxLen {
			en := r.enabled()
			if len(en) == 0 {
				break
			}
			op := en[rng.Intn(len(en))]
			schedule = append(schedule, op)
			res.Steps++
			if v := r.apply(op); v != nil {
				cx := &Counterexample{
					Options:   opts.withDefaults(),
					Seed:      s,
					Schedule:  schedule,
					Violation: *v,
				}
				cx = Minimize(cx)
				res.Counterexample = cx
				return res, nil
			}
		}
		res.Runs++
	}
	return res, nil
}
