package modelcheck

import (
	"flag"
	"strings"
	"testing"

	"cashmere/internal/core"
)

var (
	depthFlag     = flag.Int("modelcheck.depth", 0, "override exhaustive exploration depth")
	schedulesFlag = flag.Int("modelcheck.schedules", 0, "override fuzz schedule count")
)

func exploreDepth(t *testing.T, def int) int {
	t.Helper()
	if *depthFlag > 0 {
		return *depthFlag
	}
	if testing.Short() {
		return def - 1
	}
	return def
}

func fuzzSchedules(t *testing.T, def int) int {
	t.Helper()
	if *schedulesFlag > 0 {
		return *schedulesFlag
	}
	if testing.Short() {
		return def / 10
	}
	return def
}

func mustExplore(t *testing.T, opts Options, depth int) Result {
	t.Helper()
	res, err := Explore(opts, depth)
	if err != nil {
		t.Fatalf("Explore: %v", err)
	}
	if cx := res.Counterexample; cx != nil {
		data, _ := cx.Encode()
		t.Fatalf("invariant violation (depth %d, %d runs):\n%s", depth, res.Runs, data)
	}
	t.Logf("depth %d: %d runs, %d steps, no violations", depth, res.Runs, res.Steps)
	return res
}

// The exhaustive sweep: every interleaving of the full operation
// alphabet over the 2x2x2 small model up to the depth bound, for every
// protocol variant and both metadata/layout ablations.

func TestExploreTwoLevel(t *testing.T) {
	mustExplore(t, Options{Protocol: core.TwoLevel}, exploreDepth(t, 3))
}

func TestExploreTwoLevelSD(t *testing.T) {
	mustExplore(t, Options{Protocol: core.TwoLevelSD}, exploreDepth(t, 3))
}

func TestExploreOneLevelDiff(t *testing.T) {
	mustExplore(t, Options{Protocol: core.OneLevelDiff}, exploreDepth(t, 3))
}

func TestExploreOneLevelWrite(t *testing.T) {
	mustExplore(t, Options{Protocol: core.OneLevelWrite}, exploreDepth(t, 3))
}

func TestExploreWideLayout(t *testing.T) {
	mustExplore(t, Options{Protocol: core.TwoLevel, WideLayout: true}, exploreDepth(t, 3))
}

func TestExploreLockBasedMeta(t *testing.T) {
	mustExplore(t, Options{Protocol: core.TwoLevel, LockBasedMeta: true}, exploreDepth(t, 3))
}

func TestExploreFirstTouch(t *testing.T) {
	mustExplore(t, Options{Protocol: core.TwoLevel, FirstTouch: true}, exploreDepth(t, 3))
}

// TestExploreDeep pushes the canonical model one level past the
// per-variant sweeps; CI's modelcheck job runs it with
// -modelcheck.depth for the full exhaustive pass.
func TestExploreDeep(t *testing.T) {
	if testing.Short() {
		t.Skip("deep exploration")
	}
	mustExplore(t, Options{Protocol: core.TwoLevel}, exploreDepth(t, 4))
}

// The fixed-seed fuzz corpus: long random schedules over every
// protocol variant. Seeds are fixed so a failure here is reproducible
// verbatim; the -modelcheck.schedules flag scales the batch for CI's
// long mode.
func TestFuzzCorpus(t *testing.T) {
	n := fuzzSchedules(t, 1000)
	for _, tc := range []struct {
		name string
		opts Options
	}{
		{"2L", Options{Protocol: core.TwoLevel}},
		{"2LS", Options{Protocol: core.TwoLevelSD}},
		{"1LD", Options{Protocol: core.OneLevelDiff}},
		{"1L", Options{Protocol: core.OneLevelWrite}},
		{"2L-widewords", Options{Protocol: core.TwoLevel, WideLayout: true, Words: 2}},
		{"2L-lockmeta", Options{Protocol: core.TwoLevel, LockBasedMeta: true}},
		{"2L-firsttouch", Options{Protocol: core.TwoLevel, FirstTouch: true}},
	} {
		tc := tc
		t.Run(tc.name, func(t *testing.T) {
			res, err := Fuzz(tc.opts, 1, n, 40)
			if err != nil {
				t.Fatal(err)
			}
			if cx := res.Counterexample; cx != nil {
				data, _ := cx.Encode()
				t.Fatalf("violation (seed %d, %d runs):\n%s", cx.Seed, res.Runs, data)
			}
			t.Logf("%d schedules, %d steps clean", res.Runs, res.Steps)
		})
	}
}

// Counterexample plumbing: encode/decode round trip, rejection of
// empty schedules, minimization, and replay divergence reporting.

func TestCounterexampleRoundTrip(t *testing.T) {
	cx := &Counterexample{
		Options: Options{}.withDefaults(),
		Seed:    42,
		Schedule: []Op{
			{Proc: 1, Kind: OpWrite, Page: 1, Word: 3},
			{Proc: 2, Kind: OpBarrier},
		},
		Violation: Violation{Invariant: "lost-write", Step: 1, Detail: "x"},
	}
	data, err := cx.Encode()
	if err != nil {
		t.Fatal(err)
	}
	got, err := Decode(data)
	if err != nil {
		t.Fatal(err)
	}
	if got.Seed != cx.Seed || len(got.Schedule) != len(cx.Schedule) ||
		got.Schedule[0] != cx.Schedule[0] || got.Schedule[1] != cx.Schedule[1] ||
		got.Violation != cx.Violation || got.Options != cx.Options {
		t.Fatalf("round trip mismatch:\n%+v\n%+v", got, cx)
	}
	if _, err := Decode([]byte(`{"schedule": []}`)); err == nil {
		t.Fatal("Decode accepted an empty schedule")
	}
	if _, err := Decode([]byte(`not json`)); err == nil {
		t.Fatal("Decode accepted garbage")
	}
}

func TestMinimizeShrinksSchedule(t *testing.T) {
	// Pad the keep-exclusive-twin trigger with irrelevant traffic on
	// the other page; minimization must strip it back down.
	core.SetInjectedDefectForTest(core.DefectKeepExclusiveTwin, true)
	defer core.SetInjectedDefectForTest(core.DefectKeepExclusiveTwin, false)

	opts := Options{Protocol: core.OneLevelDiff}
	padded := []Op{
		{Proc: 0, Kind: OpRead, Page: 1},
		{Proc: 3, Kind: OpWrite, Page: 0},
		{Proc: 1, Kind: OpWrite, Page: 1},
		{Proc: 1, Kind: OpRelease},
		{Proc: 3, Kind: OpRelease},
	}
	v, err := RunSchedule(opts, padded)
	if err != nil {
		t.Fatal(err)
	}
	if v == nil {
		t.Fatal("padded schedule does not trigger the defect")
	}
	cx := Minimize(&Counterexample{Options: opts, Schedule: padded, Violation: *v})
	if len(cx.Schedule) != 2 {
		t.Fatalf("minimized to %d ops, want 2: %v", len(cx.Schedule), cx.Schedule)
	}
	if got, err := RunSchedule(opts, cx.Schedule); err != nil || got == nil ||
		got.Invariant != v.Invariant {
		t.Fatalf("minimized schedule does not reproduce: v=%v err=%v", got, err)
	}
}

func TestReplayDivergenceReported(t *testing.T) {
	// A clean schedule presented as a counterexample must be reported
	// as a divergence, not silently accepted.
	cx := &Counterexample{
		Options:   Options{}.withDefaults(),
		Schedule:  []Op{{Proc: 0, Kind: OpWrite, Page: 0}},
		Violation: Violation{Invariant: "lost-write", Step: 0, Detail: "fabricated"},
	}
	var out strings.Builder
	got, err := Replay(cx, &out)
	if err != nil {
		t.Fatal(err)
	}
	if got != nil {
		t.Fatalf("fabricated counterexample reproduced: %v", got)
	}
	if !strings.Contains(out.String(), "DIVERGENCE") {
		t.Errorf("replay output missing DIVERGENCE marker:\n%s", out.String())
	}
}

// TestHarnessMatchesBlockingBarrier cross-checks the composite barrier
// against a goroutine cluster: the same single-writer round trip on
// both must leave identical master contents.
func TestHarnessMatchesBlockingBarrier(t *testing.T) {
	opts := Options{}.withDefaults()
	r, err := newRun(opts, nil)
	if err != nil {
		t.Fatal(err)
	}
	sched := []Op{
		{Proc: 0, Kind: OpWrite, Page: 0},
		{Proc: 0, Kind: OpBarrier},
		{Proc: 1, Kind: OpBarrier},
		{Proc: 2, Kind: OpBarrier},
		{Proc: 3, Kind: OpBarrier},
		{Proc: 3, Kind: OpRead, Page: 0},
	}
	for i, op := range sched {
		if v := r.apply(op); v != nil {
			t.Fatalf("step %d: %v", i, v)
		}
	}
	if got := r.h.Master(0)[0]; got != 1 {
		t.Fatalf("master word = %d, want the written value 1", got)
	}
}
