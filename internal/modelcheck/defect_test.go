package modelcheck

import (
	"strings"
	"testing"

	"cashmere/internal/core"
	"cashmere/internal/diff"
)

// The checker checks the checker: every protocol defect this package's
// invariants ever caught can be re-introduced behind an injection
// switch, and these tests prove that with the defect back in, the
// checker still reports a replayable counterexample — and that the same
// schedule runs clean on the fixed protocol. A checker change that
// silently stops detecting one of these bugs fails here.

// defectCase describes one historical defect: how to inject it, the
// model it shows up in, a scripted schedule reaching it, and the
// invariant that must fire.
type defectCase struct {
	name      string
	inject    func(on bool)
	opts      Options
	schedule  []Op
	invariant string
}

// Procs in the default 2x2 model: p0,p1 on node 0; p2,p3 on node 1.
// Under the one-level protocols every proc is its own protocol node.
var defectCases = []defectCase{
	{
		// A remote and an unreleased local write collide on a word; the
		// historical Incoming applied the remote value unconditionally,
		// destroying the local write.
		name:   "incoming-clobber",
		inject: diff.SetClobberIncomingForTest,
		opts:   Options{Protocol: core.TwoLevel},
		schedule: []Op{
			{Proc: 0, Kind: OpWrite, Page: 0}, // home node: master = v1
			{Proc: 2, Kind: OpWrite, Page: 0}, // node 1 twins, v2 pending
			{Proc: 0, Kind: OpWrite, Page: 0}, // master = v3
			{Proc: 0, Kind: OpBarrier},        // flush posts notice to node 1
			{Proc: 2, Kind: OpAcquire},        // drain + invalidate
			{Proc: 2, Kind: OpRead, Page: 0},  // refetch: Incoming hits the overlap
		},
		invariant: "lost-write",
	},
	{
		// A fault maps a copy that predates an already-drained write
		// notice; without the self-notice, the mapping survives the
		// processor's next acquire and keeps serving stale data.
		name:   core.DefectDropStaleMapNotice,
		inject: func(on bool) { core.SetInjectedDefectForTest(core.DefectDropStaleMapNotice, on) },
		opts:   Options{Protocol: core.TwoLevel},
		schedule: []Op{
			{Proc: 3, Kind: OpRead, Page: 0},  // node 1 maps the page
			{Proc: 0, Kind: OpWrite, Page: 0}, // home write: master = v1
			{Proc: 1, Kind: OpBarrier},
			{Proc: 0, Kind: OpBarrier},       // flush posts notice to node 1
			{Proc: 3, Kind: OpAcquire},       // drain invalidates p3 only
			{Proc: 3, Kind: OpBarrier},       //
			{Proc: 2, Kind: OpRead, Page: 0}, // p2 maps the stale frame, no notice queued
			{Proc: 2, Kind: OpBarrier},       // rendezvous: p2 still maps stale data
		},
		invariant: "barrier-converged",
	},
	{
		// A one-level release moves the page into exclusive mode but
		// keeps the twin, which then goes stale across exclusive-era
		// writes.
		name:   core.DefectKeepExclusiveTwin,
		inject: func(on bool) { core.SetInjectedDefectForTest(core.DefectKeepExclusiveTwin, on) },
		opts:   Options{Protocol: core.OneLevelDiff},
		schedule: []Op{
			{Proc: 3, Kind: OpWrite, Page: 0},
			{Proc: 3, Kind: OpRelease}, // enters exclusive, twin retained
		},
		invariant: "exclusive-sole",
	},
	{
		// A write fault joins an exclusively-held page whose directory
		// word records only read-only access (a one-level re-entry after
		// a break downgrade) without republishing the word.
		name:   core.DefectSkipExclusiveRepublish,
		inject: func(on bool) { core.SetInjectedDefectForTest(core.DefectSkipExclusiveRepublish, on) },
		opts:   Options{Protocol: core.OneLevelDiff},
		schedule: []Op{
			{Proc: 3, Kind: OpWrite, Page: 0},
			{Proc: 3, Kind: OpRelease},        // exclusive
			{Proc: 0, Kind: OpBreak, Page: 0}, // downgrades p3 to ro
			{Proc: 3, Kind: OpRelease},        // re-enters exclusive, word records ro
			{Proc: 3, Kind: OpWrite, Page: 0}, // joins exclusively at rw, word left at ro
		},
		invariant: "dir-agree",
	},
}

func TestReintroducedDefectsAreCaught(t *testing.T) {
	for _, dc := range defectCases {
		dc := dc
		t.Run(dc.name, func(t *testing.T) {
			// The schedule must run clean on the fixed protocol: what it
			// exercises is the defect, not an unrelated weakness.
			if v, err := RunSchedule(dc.opts, dc.schedule); err != nil {
				t.Fatal(err)
			} else if v != nil {
				t.Fatalf("schedule violates %q on the fixed protocol", v.Invariant)
			}

			dc.inject(true)
			defer dc.inject(false)

			v, err := RunSchedule(dc.opts, dc.schedule)
			if err != nil {
				t.Fatal(err)
			}
			if v == nil {
				t.Fatalf("defect re-introduced but the checker saw nothing")
			}
			if v.Invariant != dc.invariant {
				t.Fatalf("violated %q, want %q (detail: %s)", v.Invariant, dc.invariant, v.Detail)
			}

			// The violation must round-trip as a replayable
			// counterexample.
			cx := &Counterexample{Options: dc.opts, Schedule: dc.schedule, Violation: *v}
			data, err := cx.Encode()
			if err != nil {
				t.Fatal(err)
			}
			decoded, err := Decode(data)
			if err != nil {
				t.Fatal(err)
			}
			var out strings.Builder
			got, err := Replay(decoded, &out)
			if err != nil {
				t.Fatal(err)
			}
			if got == nil {
				t.Fatalf("replay diverged:\n%s", out.String())
			}
			if got.Invariant != dc.invariant {
				t.Fatalf("replay violated %q, want %q", got.Invariant, dc.invariant)
			}
			if !strings.Contains(out.String(), "VIOLATION") {
				t.Errorf("replay output missing VIOLATION marker:\n%s", out.String())
			}
		})
	}
}

// TestFuzzerFindsReintroducedDefects proves the random fuzzer — not just
// a scripted schedule — rediscovers the defects that originally needed
// deep interleavings, and that the minimized counterexample still
// reproduces.
func TestFuzzerFindsReintroducedDefects(t *testing.T) {
	if testing.Short() {
		t.Skip("fuzz batch")
	}
	cases := []struct {
		name   string
		inject func(on bool)
		opts   Options
	}{
		{"incoming-clobber", diff.SetClobberIncomingForTest, Options{Protocol: core.TwoLevel}},
		{core.DefectKeepExclusiveTwin,
			func(on bool) { core.SetInjectedDefectForTest(core.DefectKeepExclusiveTwin, on) },
			Options{Protocol: core.OneLevelDiff}},
	}
	for _, tc := range cases {
		tc := tc
		t.Run(tc.name, func(t *testing.T) {
			tc.inject(true)
			defer tc.inject(false)
			res, err := Fuzz(tc.opts, 1, 500, 40)
			if err != nil {
				t.Fatal(err)
			}
			cx := res.Counterexample
			if cx == nil {
				t.Fatalf("fuzzer missed the re-introduced defect in %d schedules", res.Runs)
			}
			// Minimize already re-verified the shrunken schedule; check
			// it reproduces one more time from scratch.
			v, err := RunSchedule(cx.Options, cx.Schedule)
			if err != nil {
				t.Fatal(err)
			}
			if v == nil || v.Invariant != cx.Violation.Invariant {
				t.Fatalf("minimized counterexample does not reproduce %q", cx.Violation.Invariant)
			}
			t.Logf("found %q with a %d-op schedule (seed %d)", cx.Violation.Invariant, len(cx.Schedule), cx.Seed)
		})
	}
}
