package mprun

import (
	"fmt"
	"sync"
	"testing"

	"cashmere/internal/apps"
	"cashmere/internal/costs"
	"cashmere/internal/trace"
	"cashmere/internal/transport"
	"cashmere/internal/transport/shmchan"
)

// runMesh executes app across nodes in-process goroutine "processes"
// connected by the shm messenger mesh, and fails on any node error.
// This is the full multi-process protocol — wire frames, homes, diffs,
// notices, coordinator — minus the TCP sockets, so it runs under the
// race detector in the ordinary test suite.
func runMesh(t *testing.T, app func() apps.App, nodes, ppn int) {
	t.Helper()
	mesh := shmchan.NewMesh(nodes)
	errs := make([]error, nodes)
	var wg sync.WaitGroup
	for r := 0; r < nodes; r++ {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			cfg := Config{Rank: r, Nodes: nodes, PPN: ppn, Model: costs.Default()}
			errs[r] = Run(app(), cfg, mesh.Endpoint(r))
		}(r)
	}
	wg.Wait()
	for r := 0; r < nodes; r++ {
		mesh.Endpoint(r).Close()
	}
	for r, err := range errs {
		if err != nil {
			t.Errorf("rank %d: %v", r, err)
		}
	}
}

func TestSORBarriers(t *testing.T) {
	runMesh(t, func() apps.App { return apps.SmallSOR() }, 2, 2)
}

func TestTSPLocks(t *testing.T) {
	runMesh(t, func() apps.App { return apps.SmallTSP() }, 2, 2)
}

func TestGaussFlags(t *testing.T) {
	runMesh(t, func() apps.App { return apps.SmallGauss() }, 2, 2)
}

func TestLU(t *testing.T) {
	runMesh(t, func() apps.App { return apps.SmallLU() }, 2, 2)
}

// smallByName constructs a fresh small instance per rank: application
// values carry per-run state, so mesh ranks cannot share one.
var smallByName = map[string]func() apps.App{
	"SOR":    func() apps.App { return apps.SmallSOR() },
	"LU":     func() apps.App { return apps.SmallLU() },
	"Water":  func() apps.App { return apps.SmallWater() },
	"TSP":    func() apps.App { return apps.SmallTSP() },
	"Gauss":  func() apps.App { return apps.SmallGauss() },
	"Ilink":  func() apps.App { return apps.SmallIlink() },
	"Em3d":   func() apps.App { return apps.SmallEm3d() },
	"Barnes": func() apps.App { return apps.SmallBarnes() },
}

// TestFullSuiteTwoNodes runs all eight applications on a 2x1 mesh —
// every sharing pattern over the real protocol.
func TestFullSuiteTwoNodes(t *testing.T) {
	if testing.Short() {
		t.Skip("full suite in -short mode")
	}
	for _, app := range apps.Small() {
		mk, ok := smallByName[app.Name()]
		if !ok {
			t.Fatalf("no small constructor for %s", app.Name())
		}
		t.Run(app.Name(), func(t *testing.T) {
			runMesh(t, mk, 2, 1)
		})
	}
}

// TestFullSuiteMatrix runs all eight applications at 2x2 and 3x2 —
// multi-processor nodes (intra-node sharing through one cache) and an
// uneven page distribution across three homes. Rank 0's Run verifies
// the final memory against the sequential reference, so every cell is
// a full end-to-end correctness check of the real concurrent protocol;
// under -race it doubles as a synchronization audit.
func TestFullSuiteMatrix(t *testing.T) {
	if testing.Short() {
		t.Skip("full matrix in -short mode")
	}
	for _, shape := range []struct{ nodes, ppn int }{{2, 2}, {3, 2}} {
		for _, app := range apps.Small() {
			mk, ok := smallByName[app.Name()]
			if !ok {
				t.Fatalf("no small constructor for %s", app.Name())
			}
			t.Run(fmt.Sprintf("%s/%dx%d", app.Name(), shape.nodes, shape.ppn), func(t *testing.T) {
				shape := shape
				t.Parallel()
				runMesh(t, mk, shape.nodes, shape.ppn)
			})
		}
	}
}

func TestThreeNodesUnevenProcs(t *testing.T) {
	runMesh(t, func() apps.App { return apps.SmallSOR() }, 3, 2)
}

// TestTracedRunStructure runs SOR on a traced, frame-counted 2x2 mesh
// and checks the observability layer end to end: per-processor fault
// and synchronization spans, handler-ring diff events, flush fences,
// and transport counters whose request/reply totals must agree with
// the correlated latency histograms.
func TestTracedRunStructure(t *testing.T) {
	const nodes, ppn = 2, 2
	mesh := shmchan.NewMesh(nodes)
	trs := make([]*trace.Tracer, nodes)
	stats := make([]*transport.FrameStats, nodes)
	for r := 0; r < nodes; r++ {
		trs[r] = trace.New(trace.Config{Procs: ppn + 1})
		stats[r] = transport.NewFrameStats(nodes)
		mesh.Endpoint(r).SetStats(stats[r])
	}
	errs := make([]error, nodes)
	var wg sync.WaitGroup
	for r := 0; r < nodes; r++ {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			cfg := Config{Rank: r, Nodes: nodes, PPN: ppn, Model: costs.Default(), Tracer: trs[r]}
			errs[r] = Run(apps.SmallSOR(), cfg, mesh.Endpoint(r))
		}(r)
	}
	wg.Wait()
	for r := 0; r < nodes; r++ {
		mesh.Endpoint(r).Close()
	}
	for r, err := range errs {
		if err != nil {
			t.Fatalf("rank %d: %v", r, err)
		}
	}

	diffIns := 0
	for r := 0; r < nodes; r++ {
		evs := trs[r].Events()
		if len(evs) == 0 {
			t.Fatalf("rank %d recorded no events", r)
		}
		kindsByRing := map[int]map[trace.Kind]int{}
		for _, e := range evs {
			ring := int(e.Proc)
			if ring < 0 || ring > ppn {
				t.Fatalf("rank %d event on ring %d (valid: 0..%d): %+v", r, ring, ppn, e)
			}
			if kindsByRing[ring] == nil {
				kindsByRing[ring] = map[trace.Kind]int{}
			}
			kindsByRing[ring][e.Kind]++
			switch e.Kind {
			case trace.EvBarrier, trace.EvFlushFence, trace.EvReadFault, trace.EvWriteFault, trace.EvPageFetch:
				if e.Dur <= 0 {
					t.Errorf("rank %d %v event with non-positive duration: %+v", r, e.Kind, e)
				}
			}
		}
		// Every processor goroutine barriers at least once (the
		// run-ending barrier), on its own ring.
		for ring := 0; ring < ppn; ring++ {
			if kindsByRing[ring][trace.EvBarrier] == 0 {
				t.Errorf("rank %d ring %d: no barrier spans", r, ring)
			}
		}
		// SOR shares boundary rows, so someone faulted and fetched.
		var faults, fetches, fences int
		for ring := 0; ring < ppn; ring++ {
			faults += kindsByRing[ring][trace.EvReadFault] + kindsByRing[ring][trace.EvWriteFault]
			fetches += kindsByRing[ring][trace.EvPageFetch]
			fences += kindsByRing[ring][trace.EvFlushFence]
		}
		if faults == 0 || fetches == 0 || fences == 0 {
			t.Errorf("rank %d: faults=%d fetches=%d fences=%d, want all nonzero", r, faults, fetches, fences)
		}
		// Only handler kinds live on the handler ring. (Which ranks see
		// incoming diffs depends on the app's page layout, so diff-in
		// presence is asserted cluster-wide below.)
		diffIns += kindsByRing[ppn][trace.EvDiffIn]
		for k := range kindsByRing[ppn] {
			switch k {
			case trace.EvDiffIn, trace.EvNoticeSend, trace.EvNoticeApply:
			default:
				t.Errorf("rank %d: unexpected %v on the handler ring", r, k)
			}
		}

		// Transport counters: every page request carried a correlation
		// id and every reply echoes it, so the latency histogram count
		// must equal the number of requests sent.
		snap := stats[r].Snapshot()
		var reqs, replies int64
		for _, f := range snap.Sent {
			if f.Type == "page-req" {
				reqs += f.Frames
			}
		}
		for _, f := range snap.Recv {
			if f.Type == "page-reply" {
				replies += f.Frames
			}
		}
		if reqs == 0 {
			t.Errorf("rank %d sent no page requests", r)
		}
		if replies != reqs {
			t.Errorf("rank %d: %d page replies for %d requests", r, replies, reqs)
		}
		if snap.PageFetchNS.Count != reqs {
			t.Errorf("rank %d: %d fetch latency samples for %d requests", r, snap.PageFetchNS.Count, reqs)
		}
		for _, f := range append(append([]transport.FlowCount(nil), snap.Sent...), snap.Recv...) {
			if f.Bytes <= 0 || f.Frames <= 0 {
				t.Errorf("rank %d: non-positive flow %+v", r, f)
			}
		}
	}
	if diffIns == 0 {
		t.Error("no diff-in events on any rank's handler ring")
	}
}

// TestUntracedRunMintsCorrelationIDs pins the protocol detail the
// transport statistics depend on: page requests carry a nonzero
// Frame.C even when tracing is off, so attaching FrameStats alone
// (the -http path) still yields fetch latencies.
func TestUntracedRunMintsCorrelationIDs(t *testing.T) {
	const nodes = 2
	mesh := shmchan.NewMesh(nodes)
	stats := make([]*transport.FrameStats, nodes)
	for r := 0; r < nodes; r++ {
		stats[r] = transport.NewFrameStats(nodes)
		mesh.Endpoint(r).SetStats(stats[r])
	}
	errs := make([]error, nodes)
	var wg sync.WaitGroup
	for r := 0; r < nodes; r++ {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			cfg := Config{Rank: r, Nodes: nodes, PPN: 1, Model: costs.Default()}
			errs[r] = Run(apps.SmallSOR(), cfg, mesh.Endpoint(r))
		}(r)
	}
	wg.Wait()
	for r := 0; r < nodes; r++ {
		mesh.Endpoint(r).Close()
	}
	for r, err := range errs {
		if err != nil {
			t.Fatalf("rank %d: %v", r, err)
		}
	}
	for r := 0; r < nodes; r++ {
		snap := stats[r].Snapshot()
		var reqs int64
		for _, f := range snap.Sent {
			if f.Type == "page-req" {
				reqs += f.Frames
			}
		}
		if reqs == 0 {
			t.Fatalf("rank %d sent no page requests", r)
		}
		if snap.PageFetchNS.Count != reqs {
			t.Errorf("rank %d: %d fetch latency samples for %d requests (correlation ids missing without a tracer?)",
				r, snap.PageFetchNS.Count, reqs)
		}
	}
}

func TestSingleNode(t *testing.T) {
	runMesh(t, func() apps.App { return apps.SmallSOR() }, 1, 2)
}

func TestConfigValidation(t *testing.T) {
	mesh := shmchan.NewMesh(2)
	defer mesh.Endpoint(0).Close()
	defer mesh.Endpoint(1).Close()
	cfg := Config{Rank: 0, Nodes: 3, PPN: 1, Model: costs.Default()}
	if err := Run(apps.SmallSOR(), cfg, mesh.Endpoint(0)); err == nil {
		t.Error("Run accepted a node count disagreeing with the mesh")
	}
	cfg = Config{Rank: 1, Nodes: 2, PPN: 1, Model: costs.Default()}
	if err := Run(apps.SmallSOR(), cfg, mesh.Endpoint(0)); err == nil {
		t.Error("Run accepted a rank disagreeing with the mesh")
	}
	cfg = Config{Rank: 0, Nodes: 2, PPN: 0, Model: costs.Default()}
	if err := Run(apps.SmallSOR(), cfg, mesh.Endpoint(0)); err == nil {
		t.Error("Run accepted zero processors per node")
	}
}
