package mprun

import (
	"sync"
	"testing"

	"cashmere/internal/apps"
	"cashmere/internal/costs"
	"cashmere/internal/transport/shmchan"
)

// runMesh executes app across nodes in-process goroutine "processes"
// connected by the shm messenger mesh, and fails on any node error.
// This is the full multi-process protocol — wire frames, homes, diffs,
// notices, coordinator — minus the TCP sockets, so it runs under the
// race detector in the ordinary test suite.
func runMesh(t *testing.T, app func() apps.App, nodes, ppn int) {
	t.Helper()
	mesh := shmchan.NewMesh(nodes)
	errs := make([]error, nodes)
	var wg sync.WaitGroup
	for r := 0; r < nodes; r++ {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			cfg := Config{Rank: r, Nodes: nodes, PPN: ppn, Model: costs.Default()}
			errs[r] = Run(app(), cfg, mesh.Endpoint(r))
		}(r)
	}
	wg.Wait()
	for r := 0; r < nodes; r++ {
		mesh.Endpoint(r).Close()
	}
	for r, err := range errs {
		if err != nil {
			t.Errorf("rank %d: %v", r, err)
		}
	}
}

func TestSORBarriers(t *testing.T) {
	runMesh(t, func() apps.App { return apps.SmallSOR() }, 2, 2)
}

func TestTSPLocks(t *testing.T) {
	runMesh(t, func() apps.App { return apps.SmallTSP() }, 2, 2)
}

func TestGaussFlags(t *testing.T) {
	runMesh(t, func() apps.App { return apps.SmallGauss() }, 2, 2)
}

func TestLU(t *testing.T) {
	runMesh(t, func() apps.App { return apps.SmallLU() }, 2, 2)
}

// smallByName constructs a fresh small instance per rank: application
// values carry per-run state, so mesh ranks cannot share one.
var smallByName = map[string]func() apps.App{
	"SOR":    func() apps.App { return apps.SmallSOR() },
	"LU":     func() apps.App { return apps.SmallLU() },
	"Water":  func() apps.App { return apps.SmallWater() },
	"TSP":    func() apps.App { return apps.SmallTSP() },
	"Gauss":  func() apps.App { return apps.SmallGauss() },
	"Ilink":  func() apps.App { return apps.SmallIlink() },
	"Em3d":   func() apps.App { return apps.SmallEm3d() },
	"Barnes": func() apps.App { return apps.SmallBarnes() },
}

// TestFullSuiteTwoNodes runs all eight applications on a 2x1 mesh —
// every sharing pattern over the real protocol.
func TestFullSuiteTwoNodes(t *testing.T) {
	if testing.Short() {
		t.Skip("full suite in -short mode")
	}
	for _, app := range apps.Small() {
		mk, ok := smallByName[app.Name()]
		if !ok {
			t.Fatalf("no small constructor for %s", app.Name())
		}
		t.Run(app.Name(), func(t *testing.T) {
			runMesh(t, mk, 2, 1)
		})
	}
}

func TestThreeNodesUnevenProcs(t *testing.T) {
	runMesh(t, func() apps.App { return apps.SmallSOR() }, 3, 2)
}

func TestSingleNode(t *testing.T) {
	runMesh(t, func() apps.App { return apps.SmallSOR() }, 1, 2)
}

func TestConfigValidation(t *testing.T) {
	mesh := shmchan.NewMesh(2)
	defer mesh.Endpoint(0).Close()
	defer mesh.Endpoint(1).Close()
	cfg := Config{Rank: 0, Nodes: 3, PPN: 1, Model: costs.Default()}
	if err := Run(apps.SmallSOR(), cfg, mesh.Endpoint(0)); err == nil {
		t.Error("Run accepted a node count disagreeing with the mesh")
	}
	cfg = Config{Rank: 1, Nodes: 2, PPN: 1, Model: costs.Default()}
	if err := Run(apps.SmallSOR(), cfg, mesh.Endpoint(0)); err == nil {
		t.Error("Run accepted a rank disagreeing with the mesh")
	}
	cfg = Config{Rank: 0, Nodes: 2, PPN: 0, Model: costs.Default()}
	if err := Run(apps.SmallSOR(), cfg, mesh.Endpoint(0)); err == nil {
		t.Error("Run accepted zero processors per node")
	}
}
