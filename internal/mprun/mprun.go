// Package mprun is the multi-process DSM runtime: it runs the
// benchmark applications across separate OS processes connected by a
// transport.Messenger (the TCP mesh of transport/tcpchan, or the
// in-process mesh of transport/shmchan for tests), speaking the wire
// frames of transport/wire. Where the simulator engine (internal/core)
// models the paper's protocols against a virtual clock, mprun executes
// a real home-based software-coherence protocol with actual
// concurrency: pages live on statically-assigned homes, writers track
// dirty words and flush run-encoded diffs at release operations, homes
// eagerly invalidate sharers with write notices, and all application
// synchronization funnels through a rank-0 coordinator.
//
// # Protocol
//
// Page p is homed on rank p % nodes. A processor's first access to a
// page fetches a copy from its home (TPageReq/TPageReply) and registers
// the node as a sharer. Stores are applied to the node's copy and the
// written words recorded. At every release operation (Unlock, Barrier,
// SetFlag, and once after the application body returns) the node sends
// each dirty page's modifications to its home as a run-encoded TDiff;
// the home applies the runs to the authoritative copy, sends a
// TWriteNotice to every other sharer, and answers the flusher with a
// TFlushAck once every notice is acknowledged. The flusher's release
// operation does not complete until every flushed page is acknowledged,
// so by the time a matching acquire can succeed anywhere, every stale
// copy has been invalidated — the same eager release consistency
// argument the paper's protocols make, at node granularity.
//
// A page that is invalidated while it holds unflushed local writes is
// refetched on next access and the local dirty words are re-applied
// over the fresh copy, mirroring the diff-merge of concurrent
// fine-grained sharing: two nodes writing disjoint words of one page
// between the same pair of synchronization operations both win.
//
// # Synchronization
//
// Rank 0 coordinates locks (FIFO grant queues per lock id) and
// barriers (count arrivals per generation, broadcast the release).
// Flags are broadcast by the setter after its flush. Messages from one
// rank are delivered in order; the handler runs single-threaded per
// node (the Messenger contract), so protocol state needs no locking
// against concurrent frames — only against the node's processor
// goroutines.
//
// # Observability
//
// With Config.Tracer set the runtime records wall-clock protocol
// events on internal/trace rings: fault and page-fetch spans, diff
// flushes, the release-fence wait (EvFlushFence), and lock, flag, and
// barrier waits on each processor goroutine's ring, plus incoming
// diffs and write notices on the frame handler's ring (index PPN, the
// "net" track of a merged export). Page requests carry a fresh
// correlation id in Frame.C that the home echoes into the reply, which
// is what lets transport.FrameStats measure request→reply latency at
// the messenger seam. A nil Tracer costs one branch per site and the
// runtime sends byte-identical frames apart from those ids, which are
// minted unconditionally.
package mprun

import (
	"fmt"
	"math"
	"sort"
	"sync"

	"cashmere/internal/apps"
	"cashmere/internal/costs"
	"cashmere/internal/trace"
	"cashmere/internal/transport"
	"cashmere/internal/transport/wire"
)

// Config shapes one node's share of a multi-process run.
type Config struct {
	// Rank is this node's rank; Nodes the total node (process) count.
	Rank, Nodes int
	// PPN is the number of processor goroutines this node hosts.
	PPN int
	// PageWords is the coherence unit in 64-bit words (0 = the
	// applications' default).
	PageWords int
	// Model is carried for the applications' Verify (sequential
	// reference regeneration); no virtual time is charged.
	Model costs.Model

	// Tracer, when non-nil, records this node's protocol events: ring
	// i < PPN belongs to processor goroutine i and ring PPN to the
	// frame-handler goroutine, so size it with
	// trace.Config{Procs: PPN + 1} and no link rings. The runtime has
	// no virtual clock; events carry wall nanoseconds since the
	// tracer's start in VT, which the Chrome exporters render
	// directly. Nil disables tracing at one branch per site.
	Tracer *trace.Tracer
}

// Run executes app across the mesh from this node's perspective: it
// installs the protocol handler on m, runs PPN processor goroutines
// through app.Body, and participates in the run-ending handshake. On
// rank 0 it additionally verifies the final shared memory against the
// sequential reference and broadcasts TBye; other ranks block until
// the TBye arrives. The caller retains ownership of m and must Close
// it after Run returns.
func Run(app apps.App, cfg Config, m transport.Messenger) error {
	if cfg.Nodes != m.Peers() {
		return fmt.Errorf("mprun: config says %d nodes but the mesh has %d", cfg.Nodes, m.Peers())
	}
	if cfg.Rank != m.Self() {
		return fmt.Errorf("mprun: config says rank %d but the mesh says %d", cfg.Rank, m.Self())
	}
	if cfg.PPN <= 0 {
		return fmt.Errorf("mprun: need at least one processor per node, got %d", cfg.PPN)
	}
	shape := app.Shape()
	words := shape.SharedWords
	if words == 0 {
		words = 1
	}
	pageWords := cfg.PageWords
	if pageWords <= 0 {
		pageWords = apps.PageWords
	}
	n := &node{
		cfg:       cfg,
		m:         m,
		tr:        cfg.Tracer,
		pageWords: pageWords,
		nPages:    (words + pageWords - 1) / pageWords,
		words:     words,
		flags:     make([]bool, shape.Flags),
		cache:     make(map[int]*cpage),
		home:      make(map[int]*hpage),
		granted:   make(map[int64]bool),
		pending:   make(map[pendKey]*pend),
		lockHeld:  make(map[int64]bool),
		lockQ:     make(map[int64][]waiter),
		arrivals:  make(map[int64]int),
	}
	n.cond = sync.NewCond(&n.mu)
	for p := 0; p < n.nPages; p++ {
		if p%cfg.Nodes == cfg.Rank {
			n.home[p] = &hpage{data: make([]int64, pageWords), sharers: make(map[int]bool)}
		}
	}
	m.SetHandler(n.handle)

	var wg sync.WaitGroup
	for local := 0; local < cfg.PPN; local++ {
		wg.Add(1)
		go func(local int) {
			defer wg.Done()
			p := &proc{n: n, gpid: cfg.Rank*cfg.PPN + local, local: local}
			app.Body(p)
			// Publish any writes the body left unflushed and hold every
			// node here until the whole cluster is done.
			p.Barrier()
		}(local)
	}
	wg.Wait()

	if cfg.Rank == 0 {
		verr := app.Verify(&memView{n: n})
		for r := 0; r < cfg.Nodes; r++ {
			if err := n.m.Send(r, wire.Frame{Type: wire.TBye}); err != nil {
				return fmt.Errorf("mprun: broadcasting bye: %w", err)
			}
		}
		n.mu.Lock()
		for !n.bye {
			n.cond.Wait()
		}
		n.mu.Unlock()
		if verr != nil {
			return fmt.Errorf("mprun: %s failed verification: %w", app.Name(), verr)
		}
		return nil
	}
	n.mu.Lock()
	for !n.bye {
		n.cond.Wait()
	}
	n.mu.Unlock()
	return nil
}

// cpage is a node's cached copy of one page.
type cpage struct {
	valid     bool
	requested bool
	data      []int64
	// dirty maps locally-written word offsets to their values since the
	// last flush; preserved across invalidation and re-applied over a
	// refetched copy.
	dirty map[int]int64
}

// hpage is the authoritative copy at a page's home with its sharer set.
type hpage struct {
	data    []int64
	sharers map[int]bool
}

type pendKey struct {
	page  int64
	token int64
}

// pend tracks a TDiff awaiting write-notice acknowledgements.
type pend struct {
	remaining int
	flusher   int
}

type waiter struct {
	node int
	gpid int64
}

// node is one process's share of the DSM: page cache, homed pages, and
// (on rank 0) the coordinator state. The handler goroutine and the
// processor goroutines synchronize on mu/cond.
type node struct {
	cfg       Config
	m         transport.Messenger
	tr        *trace.Tracer
	pageWords int
	nPages    int
	words     int

	mu   sync.Mutex
	cond *sync.Cond

	cache map[int]*cpage
	home  map[int]*hpage
	// pending tracks diffs this home is collecting notice acks for.
	pending map[pendKey]*pend
	// flushOut counts this node's diffs whose TFlushAck has not arrived
	// yet. A release operation completes only when it reaches zero, so
	// one processor's release can never outrun another local
	// processor's still-propagating invalidations (the node-grain cache
	// means a flush carries every local processor's writes).
	flushOut int
	tokenSeq int64
	// corrSeq numbers this node's page requests; rank<<32|seq goes in
	// Frame.C so the home's echoed reply can be correlated with the
	// request (transport.FrameStats measures the round trip).
	corrSeq int64

	flags   []bool
	granted map[int64]bool // gpid -> lock grant delivered
	barRel  int64          // highest released barrier generation
	bye     bool

	// Coordinator state, used on rank 0 only.
	lockHeld map[int64]bool
	lockQ    map[int64][]waiter
	arrivals map[int64]int
}

func (n *node) homeOf(page int) int { return page % n.cfg.Nodes }

// wallNow returns the tracer-relative wall clock, or 0 when untraced.
func (n *node) wallNow() int64 {
	if n.tr == nil {
		return 0
	}
	return n.tr.WallNow()
}

// emit records an instant on ring's track (processor goroutines own
// rings 0..PPN-1, the frame handler ring PPN; ring -1 is dropped).
// Holding n.mu while emitting is fine — Ring.Emit is a handful of
// atomic stores — but each ring must keep its single producer.
func (n *node) emit(ring int, k trace.Kind, page int, arg, arg2 int64) {
	if n.tr == nil {
		return
	}
	now := n.tr.WallNow()
	n.tr.EmitProc(ring, trace.Event{
		Kind: k, Proc: int32(ring), Node: int32(n.cfg.Rank),
		Page: int32(page), VT: now, Arg: arg, Arg2: arg2,
	})
}

// span records an interval that began at startNS (a wallNow stamp) and
// ends now.
func (n *node) span(ring int, k trace.Kind, page int, startNS, arg, arg2 int64) {
	if n.tr == nil {
		return
	}
	now := n.tr.WallNow()
	n.tr.EmitProc(ring, trace.Event{
		Kind: k, Proc: int32(ring), Node: int32(n.cfg.Rank),
		Page: int32(page), VT: startNS, Dur: now - startNS, Arg: arg, Arg2: arg2,
	})
}

func (n *node) send(to int, f wire.Frame) {
	if err := n.m.Send(to, f); err != nil {
		// A failed send is unrecoverable mid-protocol: peers would hang
		// on state that can no longer arrive. Fail loudly.
		panic(fmt.Sprintf("mprun: rank %d: %v", n.cfg.Rank, err))
	}
}

// handle processes one incoming frame. The Messenger delivers frames
// single-threaded, so this is the only goroutine mutating home and
// coordinator state.
func (n *node) handle(from int, f wire.Frame) {
	switch f.Type {
	case wire.TPageReq:
		n.mu.Lock()
		hp := n.home[int(f.A)]
		if hp == nil {
			n.mu.Unlock()
			panic(fmt.Sprintf("mprun: rank %d asked for page %d, homed on rank %d", n.cfg.Rank, f.A, n.homeOf(int(f.A))))
		}
		data := append([]int64(nil), hp.data...)
		hp.sharers[from] = true
		n.mu.Unlock()
		// Echo the requester's correlation id so its transport layer can
		// pair the reply with the request.
		n.send(from, wire.Frame{Type: wire.TPageReply, A: f.A, C: f.C, Words: data})

	case wire.TPageReply:
		n.mu.Lock()
		cp := n.cache[int(f.A)]
		if cp != nil && cp.requested {
			copy(cp.data, f.Words)
			for off, v := range cp.dirty {
				cp.data[off] = v
			}
			cp.valid = true
			cp.requested = false
		}
		n.mu.Unlock()
		n.cond.Broadcast()

	case wire.TDiff:
		n.mu.Lock()
		hp := n.home[int(f.A)]
		at := 0
		for i := 0; i+1 < len(f.Offs); i += 2 {
			start, count := int(f.Offs[i]), int(f.Offs[i+1])
			copy(hp.data[start:start+count], f.Words[at:at+count])
			at += count
		}
		var notify []int
		for s := range hp.sharers {
			if s != from {
				notify = append(notify, s)
			}
		}
		// Every copy out there is now stale: sharers restart from a
		// fresh fetch (the flusher invalidated its own copy at flush).
		hp.sharers = make(map[int]bool)
		if len(notify) > 0 {
			n.pending[pendKey{f.A, f.B}] = &pend{remaining: len(notify), flusher: from}
		}
		n.mu.Unlock()
		n.emit(n.cfg.PPN, trace.EvDiffIn, int(f.A), int64(len(f.Words)), int64(from))
		if len(notify) == 0 {
			n.send(from, wire.Frame{Type: wire.TFlushAck, A: f.A, B: f.B})
			return
		}
		sort.Ints(notify)
		for _, s := range notify {
			n.emit(n.cfg.PPN, trace.EvNoticeSend, int(f.A), int64(s), 0)
			n.send(s, wire.Frame{Type: wire.TWriteNotice, A: f.A, B: f.B})
		}

	case wire.TWriteNotice:
		n.mu.Lock()
		var invalidated int64
		if cp := n.cache[int(f.A)]; cp != nil {
			if cp.valid {
				invalidated = 1
			}
			cp.valid = false
		}
		n.mu.Unlock()
		n.emit(n.cfg.PPN, trace.EvNoticeApply, int(f.A), invalidated, int64(from))
		n.send(from, wire.Frame{Type: wire.TNoticeAck, A: f.A, B: f.B})

	case wire.TNoticeAck:
		n.mu.Lock()
		key := pendKey{f.A, f.B}
		p := n.pending[key]
		p.remaining--
		var flusher = -1
		if p.remaining == 0 {
			flusher = p.flusher
			delete(n.pending, key)
		}
		n.mu.Unlock()
		if flusher >= 0 {
			n.send(flusher, wire.Frame{Type: wire.TFlushAck, A: f.A, B: f.B})
		}

	case wire.TFlushAck:
		n.mu.Lock()
		n.flushOut--
		n.mu.Unlock()
		n.cond.Broadcast()

	case wire.TBarArrive:
		n.mu.Lock()
		n.arrivals[f.A]++
		release := n.arrivals[f.A] == n.cfg.Nodes*n.cfg.PPN
		if release {
			delete(n.arrivals, f.A)
		}
		n.mu.Unlock()
		if release {
			for r := 0; r < n.cfg.Nodes; r++ {
				n.send(r, wire.Frame{Type: wire.TBarRelease, A: f.A})
			}
		}

	case wire.TBarRelease:
		n.mu.Lock()
		if f.A > n.barRel {
			n.barRel = f.A
		}
		n.mu.Unlock()
		n.cond.Broadcast()

	case wire.TLockReq:
		n.mu.Lock()
		var grant bool
		if !n.lockHeld[f.A] {
			n.lockHeld[f.A] = true
			grant = true
		} else {
			n.lockQ[f.A] = append(n.lockQ[f.A], waiter{node: from, gpid: f.B})
		}
		n.mu.Unlock()
		if grant {
			n.send(from, wire.Frame{Type: wire.TLockGrant, A: f.A, B: f.B})
		}

	case wire.TLockGrant:
		n.mu.Lock()
		n.granted[f.B] = true
		n.mu.Unlock()
		n.cond.Broadcast()

	case wire.TLockRelease:
		n.mu.Lock()
		var next waiter
		var grant bool
		if q := n.lockQ[f.A]; len(q) > 0 {
			next, n.lockQ[f.A] = q[0], q[1:]
			grant = true
		} else {
			n.lockHeld[f.A] = false
		}
		n.mu.Unlock()
		if grant {
			n.send(next.node, wire.Frame{Type: wire.TLockGrant, A: f.A, B: next.gpid})
		}

	case wire.TFlagSet:
		n.mu.Lock()
		n.flags[f.A] = true
		n.mu.Unlock()
		n.cond.Broadcast()

	case wire.TBye:
		n.mu.Lock()
		n.bye = true
		n.mu.Unlock()
		n.cond.Broadcast()

	default:
		panic(fmt.Sprintf("mprun: rank %d received unexpected %v frame", n.cfg.Rank, f.Type))
	}
}

// ensureLocked makes page p's cached copy valid, requesting it from its
// home as needed; called and returns with n.mu held. ring is the
// calling goroutine's trace ring (-1 from the verification view). The
// processor that sends the request records the fetch as an EvPageFetch
// span from request to reply; pile-in waiters record only their fault
// span.
func (n *node) ensureLocked(ring, p int) *cpage {
	cp := n.cache[p]
	if cp == nil {
		cp = &cpage{data: make([]int64, n.pageWords), dirty: make(map[int]int64)}
		n.cache[p] = cp
	}
	var t0 int64
	sent := false
	for !cp.valid {
		if !cp.requested {
			cp.requested = true
			t0 = n.wallNow()
			sent = true
			n.corrSeq++
			n.send(n.homeOf(p), wire.Frame{
				Type: wire.TPageReq, A: int64(p),
				C: int64(n.cfg.Rank)<<32 | n.corrSeq,
			})
		}
		n.cond.Wait()
	}
	if sent {
		n.span(ring, trace.EvPageFetch, p, t0,
			int64(n.pageWords)*transport.WordBytes, int64(n.homeOf(p)))
	}
	return cp
}

func (n *node) load(ring, addr int) int64 {
	p, off := addr/n.pageWords, addr%n.pageWords
	n.mu.Lock()
	if cp := n.cache[p]; cp != nil && cp.valid {
		v := cp.data[off]
		n.mu.Unlock()
		return v
	}
	t0 := n.wallNow()
	cp := n.ensureLocked(ring, p)
	v := cp.data[off]
	n.mu.Unlock()
	n.span(ring, trace.EvReadFault, p, t0, 0, 0)
	return v
}

func (n *node) store(ring, addr int, v int64) {
	p, off := addr/n.pageWords, addr%n.pageWords
	n.mu.Lock()
	cp := n.cache[p]
	if cp == nil || !cp.valid {
		t0 := n.wallNow()
		cp = n.ensureLocked(ring, p)
		cp.data[off] = v
		cp.dirty[off] = v
		n.mu.Unlock()
		n.span(ring, trace.EvWriteFault, p, t0, 0, 0)
		return
	}
	cp.data[off] = v
	cp.dirty[off] = v
	n.mu.Unlock()
}

// flush publishes every dirty page to its home and waits until each
// home confirms that all stale copies have been invalidated. It is the
// release operation's write-back; the caller performs the matching
// release message only after flush returns. ring is the flushing
// processor's trace ring; the fence span covers diff construction
// through the last flush-ack and is recorded only when the release
// actually sent or waited on something.
func (n *node) flush(ring int) {
	n.mu.Lock()
	t0 := n.wallNow()
	n.tokenSeq++
	token := int64(n.cfg.Rank)<<32 | n.tokenSeq
	type outDiff struct {
		page   int
		lo, hi int
		f      wire.Frame
	}
	var diffs []outDiff
	for p, cp := range n.cache {
		if len(cp.dirty) == 0 {
			continue
		}
		offs := make([]int, 0, len(cp.dirty))
		for off := range cp.dirty {
			offs = append(offs, off)
		}
		sort.Ints(offs)
		f := wire.Frame{Type: wire.TDiff, A: int64(p), B: token}
		for i := 0; i < len(offs); {
			j := i + 1
			for j < len(offs) && offs[j] == offs[j-1]+1 {
				j++
			}
			f.Offs = append(f.Offs, int32(offs[i]), int32(j-i))
			for k := i; k < j; k++ {
				f.Words = append(f.Words, cp.dirty[offs[k]])
			}
			i = j
		}
		cp.dirty = make(map[int]int64)
		// Our copy may be missing other nodes' concurrent writes the
		// home has merged; refetch on next access.
		cp.valid = false
		diffs = append(diffs, outDiff{page: p, lo: offs[0], hi: offs[len(offs)-1], f: f})
	}
	n.flushOut += len(diffs)
	for _, d := range diffs {
		n.emit(ring, trace.EvDiffOut, d.page, int64(len(d.f.Words)), trace.PackWordSpan(d.lo, d.hi))
		n.send(n.homeOf(d.page), d.f)
	}
	// Wait for every outstanding flush of this node, not just our own
	// diffs: a release may carry no dirty words itself yet must still
	// fence behind another local processor's in-flight invalidations.
	fenced := len(diffs) > 0 || n.flushOut > 0
	for n.flushOut > 0 {
		n.cond.Wait()
	}
	n.mu.Unlock()
	if fenced {
		n.span(ring, trace.EvFlushFence, -1, t0, int64(len(diffs)), 0)
	}
}

// proc is one processor goroutine's view of the DSM; it implements
// apps.Proc. local is the node-relative index, which doubles as the
// goroutine's trace ring.
type proc struct {
	n      *node
	gpid   int
	local  int
	barGen int64
}

var _ apps.Proc = (*proc)(nil)

func (p *proc) ID() int     { return p.gpid }
func (p *proc) NProcs() int { return p.n.cfg.Nodes * p.n.cfg.PPN }

func (p *proc) Load(addr int) int64     { return p.n.load(p.local, addr) }
func (p *proc) Store(addr int, v int64) { p.n.store(p.local, addr, v) }

func (p *proc) LoadF(addr int) float64 {
	return math.Float64frombits(uint64(p.n.load(p.local, addr)))
}
func (p *proc) StoreF(addr int, v float64) {
	p.n.store(p.local, addr, int64(math.Float64bits(v)))
}

func (p *proc) LoadFRow(dst []float64, addr int) {
	for i := range dst {
		dst[i] = p.LoadF(addr + i)
	}
}

func (p *proc) StoreFRow(addr int, src []float64) {
	for i, v := range src {
		p.StoreF(addr+i, v)
	}
}

// Compute is a no-op: the multi-process runtime runs in real time and
// charges no virtual clock.
func (p *proc) Compute(ns, busBytes int64) {}

// Poll and PollN are no-ops: requests are served by the handler
// goroutine, not by polling processors.
func (p *proc) Poll()         {}
func (p *proc) PollN(n int64) {}

// Lock acquires application lock i through the rank-0 coordinator.
func (p *proc) Lock(i int) {
	n := p.n
	t0 := n.wallNow()
	n.send(0, wire.Frame{Type: wire.TLockReq, A: int64(i), B: int64(p.gpid)})
	n.mu.Lock()
	for !n.granted[int64(p.gpid)] {
		n.cond.Wait()
	}
	delete(n.granted, int64(p.gpid))
	n.mu.Unlock()
	n.span(p.local, trace.EvLock, -1, t0, int64(i), 0)
}

// Unlock releases lock i: dirty pages are flushed before the grant can
// pass to the next holder.
func (p *proc) Unlock(i int) {
	n := p.n
	t0 := n.wallNow()
	n.flush(p.local)
	n.send(0, wire.Frame{Type: wire.TLockRelease, A: int64(i), B: int64(p.gpid)})
	n.span(p.local, trace.EvUnlock, -1, t0, int64(i), 0)
}

// SetFlag raises flag i for the whole cluster after flushing, so a
// woken waiter finds the protected data at its home.
func (p *proc) SetFlag(i int) {
	n := p.n
	t0 := n.wallNow()
	n.flush(p.local)
	for r := 0; r < n.cfg.Nodes; r++ {
		n.send(r, wire.Frame{Type: wire.TFlagSet, A: int64(i)})
	}
	n.span(p.local, trace.EvFlagSet, -1, t0, int64(i), 0)
}

// WaitFlag blocks until flag i is raised.
func (p *proc) WaitFlag(i int) {
	n := p.n
	t0 := n.wallNow()
	n.mu.Lock()
	for !n.flags[i] {
		n.cond.Wait()
	}
	n.mu.Unlock()
	n.span(p.local, trace.EvFlagWait, -1, t0, int64(i), 0)
}

// Barrier flushes and waits for every processor in the cluster.
func (p *proc) Barrier() {
	n := p.n
	t0 := n.wallNow()
	n.flush(p.local)
	p.barGen++
	n.send(0, wire.Frame{Type: wire.TBarArrive, A: p.barGen, B: int64(p.gpid)})
	n.mu.Lock()
	for n.barRel < p.barGen {
		n.cond.Wait()
	}
	n.mu.Unlock()
	n.span(p.local, trace.EvBarrier, -1, t0, p.barGen, 0)
}

// BeginInit and EndInit bracket the initialization epoch with the same
// barrier pairs the simulator engine uses, which is what makes proc
// 0's initialization writes visible everywhere before the body starts.
// There is no virtual clock to pause here.
func (p *proc) BeginInit() {
	p.Barrier()
	p.Barrier()
}

func (p *proc) EndInit() {
	p.Barrier()
	p.Barrier()
}

// Warmup runs f inside the engine's barrier bracket; with no virtual
// clock there is nothing to uncharge.
func (p *proc) Warmup(f func()) {
	p.Barrier()
	p.Barrier()
	f()
	p.Barrier()
	p.Barrier()
}

// memView is rank 0's post-run read of the shared space for Verify: it
// fetches pages through the normal protocol (every final value is at
// its home after the closing barrier). It reads with ring -1 — the
// verification pass runs on the main goroutine, which owns no trace
// ring, so its events are dropped rather than corrupting a processor
// track.
type memView struct {
	n *node
}

var _ apps.Memory = (*memView)(nil)

func (v *memView) Model() costs.Model { return v.n.cfg.Model }

func (v *memView) ReadShared(addr int) int64 { return v.n.load(-1, addr) }

func (v *memView) ReadSharedF(addr int) float64 {
	return math.Float64frombits(uint64(v.n.load(-1, addr)))
}
