package apps

import (
	"testing"

	"cashmere/internal/core"
	"cashmere/internal/transport"
)

// TestAppsOverSHMTransport runs the protocol engine over the in-process
// shared-memory backend (transport/shmchan) instead of the Memory
// Channel simulator: region writes travel through the lock-free rings
// and become visible by drain-on-read, so Verify passing end to end
// checks the backend's visibility guarantees against real protocol
// traffic. Virtual times are degenerate on this fabric (no contention
// model), so only correctness is asserted. The CI race lane runs this
// test under -race.
func TestAppsOverSHMTransport(t *testing.T) {
	makers := []func() App{
		func() App { return SmallSOR() },
		func() App { return SmallTSP() },
		func() App { return SmallGauss() },
	}
	for _, mk := range makers {
		app := mk()
		for _, k := range kindsUnderTest {
			cfg := smallConfig(k)
			cfg.Transport = transport.SHM
			if _, err := Run(mk(), cfg); err != nil {
				t.Errorf("%s over shm: %v", app.Name(), err)
			}
		}
	}
}

// TestTCPTransportRejectedByEngine pins the constructor-time error for
// the transport/engine combination the single-process cluster cannot
// host (satellite: no panics out of core.New).
func TestTCPTransportRejectedByEngine(t *testing.T) {
	cfg := smallConfig(core.TwoLevel)
	cfg.Transport = transport.TCP
	if _, err := Run(SmallSOR(), cfg); err == nil {
		t.Fatal("core.New accepted the tcp transport for the in-process engine")
	}
}
