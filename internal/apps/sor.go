package apps

import (
	"fmt"

	"cashmere/internal/costs"
)

// SOR is Red-Black Successive Over-Relaxation for partial differential
// equations (paper Section 3.2). The red and black halves of the grid
// are updated in alternating phases separated by barriers; the grid is
// divided into bands of rows, one band per processor, so communication
// happens only across band boundaries. A high computation-to-
// communication ratio makes SOR scale well under every protocol.
type SOR struct {
	Rows, Cols, Iters int

	grid int // base address of the Rows x Cols float64 grid

	seq   []float64
	seqNS int64
}

// DefaultSOR returns the scaled-down default instance. Rows are padded
// to whole pages (Cols == PageWords) so bands are page-aligned, exactly
// as the paper's first-touch placement wants.
func DefaultSOR() *SOR { return &SOR{Rows: 514, Cols: PageWords, Iters: 8} }

// SmallSOR returns a tiny instance for tests.
func SmallSOR() *SOR { return &SOR{Rows: 12, Cols: 64, Iters: 3} }

// Name returns "SOR".
func (s *SOR) Name() string { return "SOR" }

// DataSet describes the grid.
func (s *SOR) DataSet() string {
	return fmt.Sprintf("%dx%d grid (%.1f MB), %d iters",
		s.Rows, s.Cols, float64(s.Rows*s.Cols*8)/(1<<20), s.Iters)
}

// Shape returns the resources SOR needs.
func (s *SOR) Shape() Shape {
	l := NewLayout(PageWords)
	s.grid = l.Array(s.Rows * s.Cols)
	return Shape{SharedWords: l.Words()}
}

// Per-point update cost: four loads, one multiply-add chain on the
// 233 MHz 21064A (~5 flops plus addressing).
const sorPointNS = 16000

// sorTraffic is the capacity-miss traffic per updated point: the grid
// greatly exceeds the 1 MB board cache, so roughly one 64-byte line per
// three point loads streams from memory.
const sorTraffic = 2400

func (s *SOR) init(store func(addr int, v float64)) {
	for r := 0; r < s.Rows; r++ {
		for c := 0; c < s.Cols; c++ {
			v := 0.0
			if r == 0 || r == s.Rows-1 || c == 0 || c == s.Cols-1 {
				v = 1.0 // fixed boundary
			}
			store(s.grid+r*s.Cols+c, v)
		}
	}
}

// initRows is init by whole rows, for the range store kernel.
func (s *SOR) initRows(p Proc) {
	row := make([]float64, s.Cols)
	for r := 0; r < s.Rows; r++ {
		for c := 0; c < s.Cols; c++ {
			v := 0.0
			if r == 0 || r == s.Rows-1 || c == 0 || c == s.Cols-1 {
				v = 1.0 // fixed boundary
			}
			row[c] = v
		}
		p.StoreFRow(s.grid+r*s.Cols, row)
	}
}

// Body runs the parallel SOR program.
func (s *SOR) Body(p Proc) {
	p.BeginInit()
	if p.ID() == 0 {
		s.initRows(p)
	}
	p.EndInit()

	lo, hi := chunk(s.Rows-2, p.ID(), p.NProcs())
	lo++ // interior rows 1..Rows-2
	hi++
	at := func(r, c int) int { return s.grid + r*s.Cols + c }

	p.Warmup(func() {
		for r := lo; r < hi; r++ {
			p.StoreF(at(r, 1), p.LoadF(at(r, 1)))
		}
		p.LoadF(at(lo-1, 1))
		p.LoadF(at(hi, 1))
	})

	// Row buffers for the range load kernel. Red-black phases make the
	// buffered values exact: a point only reads opposite-parity
	// neighbours, which the current phase never updates, so a row
	// loaded once per phase (and rotated top<-mid<-bot as the sweep
	// descends) always supplies the same values the per-point loads
	// did. Stores stay per-point — updated points are stride-2, not
	// contiguous — which also keeps the accounting identical.
	top := make([]float64, s.Cols)
	mid := make([]float64, s.Cols)
	bot := make([]float64, s.Cols)

	for it := 0; it < s.Iters; it++ {
		for phase := 0; phase < 2; phase++ {
			p.LoadFRow(top, at(lo-1, 0))
			p.LoadFRow(mid, at(lo, 0))
			for r := lo; r < hi; r++ {
				p.LoadFRow(bot, at(r+1, 0))
				updated := 0
				for c := 1 + (r+phase)%2; c < s.Cols-1; c += 2 {
					v := 0.25 * (top[c] + bot[c] + mid[c-1] + mid[c+1])
					p.StoreF(at(r, c), v)
					updated++
				}
				p.PollN(int64(updated))
				p.Compute(int64(updated)*sorPointNS, int64(updated)*sorTraffic)
				top, mid, bot = mid, bot, top
			}
			p.Barrier()
		}
	}
}

// runSeq computes the sequential reference once.
func (s *SOR) runSeq(m costs.Model) {
	if s.seq != nil {
		return
	}
	s.Shape()
	g := make([]float64, s.Rows*s.Cols)
	s.init(func(addr int, v float64) { g[addr-s.grid] = v })
	clk := NewSeqClock(m)
	for it := 0; it < s.Iters; it++ {
		for phase := 0; phase < 2; phase++ {
			for r := 1; r < s.Rows-1; r++ {
				updated := 0
				for c := 1 + (r+phase)%2; c < s.Cols-1; c += 2 {
					g[r*s.Cols+c] = 0.25 * (g[(r-1)*s.Cols+c] + g[(r+1)*s.Cols+c] +
						g[r*s.Cols+c-1] + g[r*s.Cols+c+1])
					updated++
				}
				clk.Compute(int64(updated)*sorPointNS, int64(updated)*sorTraffic)
			}
		}
	}
	s.seq = g
	s.seqNS = clk.NS()
}

// SeqTime returns the sequential execution time.
func (s *SOR) SeqTime(m costs.Model) int64 {
	s.runSeq(m)
	return s.seqNS
}

// Verify compares the parallel grid against the reference. SOR is
// barrier-synchronized and each point has a unique writer per phase, so
// the comparison is exact.
func (s *SOR) Verify(c Memory) error {
	s.runSeq(c.Model())
	for i, want := range s.seq {
		if got := c.ReadSharedF(s.grid + i); got != want {
			return fmt.Errorf("SOR: grid[%d] = %g, want %g", i, got, want)
		}
	}
	return nil
}
