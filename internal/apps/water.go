package apps

import (
	"fmt"
	"math"

	"cashmere/internal/costs"
)

// Water is the molecular dynamics simulation from SPLASH (paper Section
// 3.2). The shared molecule array is divided into contiguous chunks,
// one per processor; the bulk of interprocessor communication happens in
// the inter-molecular force phase, where contributions to other
// processors' molecules are accumulated under per-stripe locks —
// producing the migratory sharing pattern the paper calls out. The
// physics here is a Lennard-Jones-style pair interaction on point
// molecules (the full SPC water potential adds only local computation),
// with the original's structure: predict, pairwise forces with locked
// accumulation, correct.
type Water struct {
	N     int // molecules
	Steps int

	pos, vel, force int // base addresses of 3*N float64 arrays

	seqPos []float64
	seqNS  int64
}

// waterStripes is the number of accumulation locks (molecules are
// striped across them).
const waterStripes = 16

// DefaultWater returns the scaled-down default instance.
func DefaultWater() *Water { return &Water{N: 512, Steps: 3} }

// SmallWater returns a tiny instance for tests.
func SmallWater() *Water { return &Water{N: 48, Steps: 2} }

// Name returns "Water".
func (w *Water) Name() string { return "Water" }

// DataSet describes the simulation.
func (w *Water) DataSet() string {
	return fmt.Sprintf("%d molecules (%.1f MB), %d steps",
		w.N, float64(9*w.N*8)/(1<<20), w.Steps)
}

// Shape returns the resources Water needs.
func (w *Water) Shape() Shape {
	l := NewLayout(PageWords)
	w.pos = l.Array(3 * w.N)
	w.vel = l.Array(3 * w.N)
	w.force = l.Array(3 * w.N)
	return Shape{SharedWords: l.Words(), Locks: waterStripes}
}

const (
	waterPairNS   = 40000 // pair interaction (scaled to the paper's ratio)
	waterTraffic  = 24
	waterDT       = 1e-3
	waterCutoffSq = 9.0
)

func (w *Water) initPos(i, d int) float64 {
	// A jittered lattice in a box of side ~N^(1/3).
	side := int(math.Cbrt(float64(w.N))) + 1
	c := [3]int{i % side, (i / side) % side, i / (side * side)}
	return float64(c[d]) + 0.3*float64((i*7+d*3)%10)/10.0
}

// pairForce returns the force on molecule i from j along dimension d,
// given the displacement vector and squared distance.
func pairForce(dx [3]float64, r2 float64, d int) float64 {
	if r2 >= waterCutoffSq || r2 == 0 {
		return 0
	}
	inv := 1.0 / (r2*r2*r2 + 0.1) // softened LJ-style kernel
	return dx[d] * (inv - 0.5*inv*inv)
}

// Body runs the parallel simulation.
func (w *Water) Body(p Proc) {
	n := w.N
	p.BeginInit()
	if p.ID() == 0 {
		for i := 0; i < n; i++ {
			for d := 0; d < 3; d++ {
				p.StoreF(w.pos+3*i+d, w.initPos(i, d))
				p.StoreF(w.vel+3*i+d, 0)
				p.StoreF(w.force+3*i+d, 0)
			}
		}
	}
	p.EndInit()

	lo, hi := chunk(n, p.ID(), p.NProcs())
	acc := make([]float64, 3*n) // private accumulation buffer

	p.Warmup(func() {
		for i := 0; i < 3*n; i += PageWords / 2 {
			p.LoadF(w.pos + i)
		}
		for i := lo; i < hi; i++ {
			p.StoreF(w.pos+3*i, p.LoadF(w.pos+3*i))
			p.StoreF(w.vel+3*i, p.LoadF(w.vel+3*i))
		}
	})

	for step := 0; step < w.Steps; step++ {
		// Predict: advance own molecules by current velocities.
		for i := lo; i < hi; i++ {
			for d := 0; d < 3; d++ {
				p.StoreF(w.pos+3*i+d, p.LoadF(w.pos+3*i+d)+waterDT*p.LoadF(w.vel+3*i+d))
			}
		}
		p.Compute(int64(hi-lo)*60, int64(hi-lo)*waterTraffic)
		p.Barrier()

		// Zero own force entries.
		for i := lo; i < hi; i++ {
			for d := 0; d < 3; d++ {
				p.StoreF(w.force+3*i+d, 0)
			}
		}
		p.Barrier()

		// Inter-molecular forces, half-shell pairing for load balance
		// (each molecule interacts with the next n/2 molecules mod n,
		// as in SPLASH Water).
		for i := range acc {
			acc[i] = 0
		}
		pairs := 0
		for i := lo; i < hi; i++ {
			var pi [3]float64
			for d := 0; d < 3; d++ {
				pi[d] = p.LoadF(w.pos + 3*i + d)
			}
			for k := 1; k <= n/2; k++ {
				j := (i + k) % n
				if 2*k == n && i >= j {
					continue // count the antipodal pair once
				}
				var dx [3]float64
				r2 := 0.0
				for d := 0; d < 3; d++ {
					dx[d] = pi[d] - p.LoadF(w.pos+3*j+d)
					r2 += dx[d] * dx[d]
				}
				for d := 0; d < 3; d++ {
					f := pairForce(dx, r2, d)
					acc[3*i+d] += f
					acc[3*j+d] -= f
				}
				pairs++
			}
			p.PollN(int64(n / 2))
		}
		p.Compute(int64(pairs)*waterPairNS, int64(pairs)*8)

		// Migratory accumulation into the shared force array: one lock
		// per contiguous molecule stripe, starting at our own stripe to
		// avoid convoys, skipping stripes we contributed nothing to
		// (the cutoff keeps interactions local).
		mine := p.ID() % waterStripes
		for si := 0; si < waterStripes; si++ {
			s := (mine + si) % waterStripes
			slo, shi := chunk(n, s, waterStripes)
			touched := false
			for i := 3 * slo; i < 3*shi; i++ {
				if acc[i] != 0 {
					touched = true
					break
				}
			}
			if !touched {
				continue
			}
			p.Lock(s)
			for i := slo; i < shi; i++ {
				for d := 0; d < 3; d++ {
					if acc[3*i+d] != 0 {
						p.StoreF(w.force+3*i+d, p.LoadF(w.force+3*i+d)+acc[3*i+d])
					}
				}
			}
			p.Unlock(s)
		}
		p.Barrier()

		// Correct: integrate forces into velocities and positions.
		for i := lo; i < hi; i++ {
			for d := 0; d < 3; d++ {
				v := p.LoadF(w.vel+3*i+d) + waterDT*p.LoadF(w.force+3*i+d)
				p.StoreF(w.vel+3*i+d, v)
				p.StoreF(w.pos+3*i+d, p.LoadF(w.pos+3*i+d)+waterDT*v)
			}
		}
		p.Compute(int64(hi-lo)*120, int64(hi-lo)*waterTraffic)
		p.Barrier()
	}
}

// runSeq computes the sequential reference.
func (w *Water) runSeq(m costs.Model) {
	if w.seqPos != nil {
		return
	}
	w.Shape()
	n := w.N
	pos := make([]float64, 3*n)
	vel := make([]float64, 3*n)
	force := make([]float64, 3*n)
	for i := 0; i < n; i++ {
		for d := 0; d < 3; d++ {
			pos[3*i+d] = w.initPos(i, d)
		}
	}
	clk := NewSeqClock(m)
	for step := 0; step < w.Steps; step++ {
		for i := 0; i < 3*n; i++ {
			pos[i] += waterDT * vel[i]
		}
		clk.Compute(int64(n)*60, int64(n)*waterTraffic)
		for i := range force {
			force[i] = 0
		}
		pairs := 0
		for i := 0; i < n; i++ {
			for k := 1; k <= n/2; k++ {
				j := (i + k) % n
				if 2*k == n && i >= j {
					continue
				}
				var dx [3]float64
				r2 := 0.0
				for d := 0; d < 3; d++ {
					dx[d] = pos[3*i+d] - pos[3*j+d]
					r2 += dx[d] * dx[d]
				}
				for d := 0; d < 3; d++ {
					f := pairForce(dx, r2, d)
					force[3*i+d] += f
					force[3*j+d] -= f
				}
				pairs++
			}
		}
		clk.Compute(int64(pairs)*waterPairNS, int64(pairs)*8)
		for i := 0; i < 3*n; i++ {
			v := vel[i] + waterDT*force[i]
			vel[i] = v
			pos[i] += waterDT * v
		}
		clk.Compute(int64(n)*120, int64(n)*waterTraffic)
	}
	w.seqPos = pos
	w.seqNS = clk.NS()
}

// SeqTime returns the sequential execution time.
func (w *Water) SeqTime(m costs.Model) int64 {
	w.runSeq(m)
	return w.seqNS
}

// Verify compares final positions with a tolerance: force accumulation
// order differs between processors (the locked stripes), so results
// agree only up to floating-point reassociation.
func (w *Water) Verify(c Memory) error {
	w.runSeq(c.Model())
	for i, want := range w.seqPos {
		got := c.ReadSharedF(w.pos + i)
		if err := verifyF("Water pos", i, got, want, 1e-9); err != nil {
			return fmt.Errorf("Water: %w", err)
		}
	}
	return nil
}
