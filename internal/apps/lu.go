package apps

import (
	"fmt"

	"cashmere/internal/core"
	"cashmere/internal/costs"
)

// LU is the blocked dense LU factorization kernel from SPLASH-2 (paper
// Section 3.2): A = L*U without pivoting. The matrix is divided into
// B x B blocks for temporal and spatial locality; each block is owned
// by one processor (2D scatter), which performs all computation on it.
// Barriers separate the diagonal, perimeter, and interior phases of
// each step. Block ownership makes LU's page accesses bursty: a pivot
// block sits in exclusive mode while being factored, then is suddenly
// demanded by every perimeter owner — the behaviour behind LU's
// negative clustering effect under the one-level protocols (Section
// 3.3.3).
type LU struct {
	N, B int // matrix dimension and block size

	mat int // base address, block-major: block (I,J) contiguous

	seq   []float64
	seqNS int64
}

// DefaultLU returns the scaled-down default instance; with B = 32 each
// block is exactly one 8 Kbyte page.
func DefaultLU() *LU { return &LU{N: 384, B: 32} }

// SmallLU returns a tiny instance for tests.
func SmallLU() *LU { return &LU{N: 32, B: 8} }

// Name returns "LU".
func (l *LU) Name() string { return "LU" }

// DataSet describes the matrix.
func (l *LU) DataSet() string {
	return fmt.Sprintf("%dx%d matrix (%.1f MB), %dx%d blocks",
		l.N, l.N, float64(l.N*l.N*8)/(1<<20), l.B, l.B)
}

// Shape returns the resources LU needs.
func (l *LU) Shape() Shape {
	lay := NewLayout(PageWords)
	l.mat = lay.Array(l.N * l.N)
	return Shape{SharedWords: lay.Words()}
}

// Per-element costs on the 21064A: one fused multiply-subtract chain.
const luFlopNS = 1200
const luTraffic = 80

func (l *LU) nb() int { return l.N / l.B }

// blockBase returns the address of block (I,J), stored block-major.
func (l *LU) blockBase(I, J int) int {
	return l.mat + (I*l.nb()+J)*l.B*l.B
}

// owner implements the SPLASH-2 2D scatter: block (I,J) belongs to
// processor (I mod pr)*pc + (J mod pc).
func luGrid(nprocs int) (pr, pc int) {
	pr = 1
	for (pr*2)*(pr*2) <= nprocs && nprocs%(pr*2) == 0 {
		pr *= 2
	}
	return pr, nprocs / pr
}

func (l *LU) owner(I, J, nprocs int) int {
	pr, pc := luGrid(nprocs)
	return (I%pr)*pc + (J % pc)
}

func (l *LU) initVal(i, j int) float64 {
	v := 1.0 / float64(i+j+1)
	if i == j {
		v += float64(l.N)
	}
	return v
}

// Body runs the parallel blocked LU factorization.
func (l *LU) Body(p *core.Proc) {
	n, nb := l.N, l.nb()
	p.BeginInit()
	if p.ID() == 0 {
		for i := 0; i < n; i++ {
			for j := 0; j < n; j++ {
				l.store(p.StoreF, i, j, l.initVal(i, j))
			}
		}
	}
	p.EndInit()

	np := p.NProcs()
	me := p.ID()
	p.Warmup(func() {
		for i := 0; i < nb; i++ {
			for j := 0; j < nb; j++ {
				if l.owner(i, j, np) == me {
					a := l.blockBase(i, j)
					p.StoreF(a, p.LoadF(a))
				}
			}
		}
	})
	for k := 0; k < nb; k++ {
		// Factor the diagonal block.
		if l.owner(k, k, np) == me {
			l.factorDiag(p, k)
		}
		p.Barrier()
		// Perimeter blocks in pivot row and column.
		for j := k + 1; j < nb; j++ {
			if l.owner(k, j, np) == me {
				l.solveRow(p, k, j)
			}
			if l.owner(j, k, np) == me {
				l.solveCol(p, j, k)
			}
		}
		p.Barrier()
		// Interior update.
		for i := k + 1; i < nb; i++ {
			for j := k + 1; j < nb; j++ {
				if l.owner(i, j, np) == me {
					l.updateInterior(p, i, j, k)
				}
			}
		}
		p.Barrier()
	}
}

// Element accessors translating (i,j) to the block-major address.
func (l *LU) addr(i, j int) int {
	I, J := i/l.B, j/l.B
	return l.blockBase(I, J) + (i%l.B)*l.B + (j % l.B)
}

func (l *LU) store(st func(int, float64), i, j int, v float64) { st(l.addr(i, j), v) }

// factorDiag performs an unblocked LU factorization of diagonal block k.
func (l *LU) factorDiag(p *core.Proc, k int) {
	b := l.B
	base := k * b
	ops := 0
	for kk := 0; kk < b; kk++ {
		piv := p.LoadF(l.addr(base+kk, base+kk))
		for i := kk + 1; i < b; i++ {
			m := p.LoadF(l.addr(base+i, base+kk)) / piv
			p.StoreF(l.addr(base+i, base+kk), m)
			for j := kk + 1; j < b; j++ {
				v := p.LoadF(l.addr(base+i, base+j)) - m*p.LoadF(l.addr(base+kk, base+j))
				p.StoreF(l.addr(base+i, base+j), v)
				ops++
			}
		}
		p.Poll()
	}
	p.Compute(int64(ops)*luFlopNS, int64(ops)*luTraffic)
}

// solveRow computes U_kj = L_kk^{-1} A_kj for perimeter block (k,j).
func (l *LU) solveRow(p *core.Proc, k, j int) {
	b := l.B
	rbase, cbase := k*b, j*b
	ops := 0
	for kk := 0; kk < b; kk++ {
		for i := kk + 1; i < b; i++ {
			m := p.LoadF(l.addr(k*b+i, k*b+kk))
			for c := 0; c < b; c++ {
				v := p.LoadF(l.addr(rbase+i, cbase+c)) - m*p.LoadF(l.addr(rbase+kk, cbase+c))
				p.StoreF(l.addr(rbase+i, cbase+c), v)
				ops++
			}
		}
		p.Poll()
	}
	p.Compute(int64(ops)*luFlopNS, int64(ops)*luTraffic)
}

// solveCol computes L_jk = A_jk U_kk^{-1} for perimeter block (j,k).
func (l *LU) solveCol(p *core.Proc, j, k int) {
	b := l.B
	rbase, cbase := j*b, k*b
	ops := 0
	for kk := 0; kk < b; kk++ {
		piv := p.LoadF(l.addr(k*b+kk, k*b+kk))
		for i := 0; i < b; i++ {
			m := p.LoadF(l.addr(rbase+i, cbase+kk)) / piv
			p.StoreF(l.addr(rbase+i, cbase+kk), m)
			for c := kk + 1; c < b; c++ {
				v := p.LoadF(l.addr(rbase+i, cbase+c)) - m*p.LoadF(l.addr(k*b+kk, k*b+c))
				p.StoreF(l.addr(rbase+i, cbase+c), v)
				ops++
			}
		}
		p.Poll()
	}
	p.Compute(int64(ops)*luFlopNS, int64(ops)*luTraffic)
}

// updateInterior applies A_ij -= L_ik * U_kj.
func (l *LU) updateInterior(p *core.Proc, i, j, k int) {
	b := l.B
	ops := 0
	for r := 0; r < b; r++ {
		for kk := 0; kk < b; kk++ {
			m := p.LoadF(l.addr(i*b+r, k*b+kk))
			if m == 0 {
				continue
			}
			for c := 0; c < b; c++ {
				v := p.LoadF(l.addr(i*b+r, j*b+c)) - m*p.LoadF(l.addr(k*b+kk, j*b+c))
				p.StoreF(l.addr(i*b+r, j*b+c), v)
				ops++
			}
		}
		p.Poll()
	}
	p.Compute(int64(ops)*luFlopNS, int64(ops)*luTraffic)
}

// runSeq computes the sequential reference (identical blocked
// algorithm, identical floating-point operation order).
func (l *LU) runSeq(m costs.Model) {
	if l.seq != nil {
		return
	}
	l.Shape()
	a := make([]float64, l.N*l.N)
	ld := func(addr int) float64 { return a[addr-l.mat] }
	st := func(addr int, v float64) { a[addr-l.mat] = v }
	clk := NewSeqClock(m)
	sp := &seqProcLU{lu: l, ld: ld, st: st, clk: clk}

	for i := 0; i < l.N; i++ {
		for j := 0; j < l.N; j++ {
			st(l.addr(i, j), l.initVal(i, j))
		}
	}
	nb := l.nb()
	for k := 0; k < nb; k++ {
		sp.factorDiag(k)
		for j := k + 1; j < nb; j++ {
			sp.solveRow(k, j)
			sp.solveCol(j, k)
		}
		for i := k + 1; i < nb; i++ {
			for j := k + 1; j < nb; j++ {
				sp.updateInterior(i, j, k)
			}
		}
	}
	l.seq = a
	l.seqNS = clk.NS()
}

// seqProcLU mirrors the parallel kernels on plain memory.
type seqProcLU struct {
	lu  *LU
	ld  func(int) float64
	st  func(int, float64)
	clk *SeqClock
}

func (s *seqProcLU) factorDiag(k int) {
	l, b := s.lu, s.lu.B
	base := k * b
	ops := 0
	for kk := 0; kk < b; kk++ {
		piv := s.ld(l.addr(base+kk, base+kk))
		for i := kk + 1; i < b; i++ {
			m := s.ld(l.addr(base+i, base+kk)) / piv
			s.st(l.addr(base+i, base+kk), m)
			for j := kk + 1; j < b; j++ {
				s.st(l.addr(base+i, base+j), s.ld(l.addr(base+i, base+j))-m*s.ld(l.addr(base+kk, base+j)))
				ops++
			}
		}
	}
	s.clk.Compute(int64(ops)*luFlopNS, int64(ops)*luTraffic)
}

func (s *seqProcLU) solveRow(k, j int) {
	l, b := s.lu, s.lu.B
	rbase, cbase := k*b, j*b
	ops := 0
	for kk := 0; kk < b; kk++ {
		for i := kk + 1; i < b; i++ {
			m := s.ld(l.addr(k*b+i, k*b+kk))
			for c := 0; c < b; c++ {
				s.st(l.addr(rbase+i, cbase+c), s.ld(l.addr(rbase+i, cbase+c))-m*s.ld(l.addr(rbase+kk, cbase+c)))
				ops++
			}
		}
	}
	s.clk.Compute(int64(ops)*luFlopNS, int64(ops)*luTraffic)
}

func (s *seqProcLU) solveCol(j, k int) {
	l, b := s.lu, s.lu.B
	rbase, cbase := j*b, k*b
	ops := 0
	for kk := 0; kk < b; kk++ {
		piv := s.ld(l.addr(k*b+kk, k*b+kk))
		for i := 0; i < b; i++ {
			m := s.ld(l.addr(rbase+i, cbase+kk)) / piv
			s.st(l.addr(rbase+i, cbase+kk), m)
			for c := kk + 1; c < b; c++ {
				s.st(l.addr(rbase+i, cbase+c), s.ld(l.addr(rbase+i, cbase+c))-m*s.ld(l.addr(k*b+kk, k*b+c)))
				ops++
			}
		}
	}
	s.clk.Compute(int64(ops)*luFlopNS, int64(ops)*luTraffic)
}

func (s *seqProcLU) updateInterior(i, j, k int) {
	l, b := s.lu, s.lu.B
	ops := 0
	for r := 0; r < b; r++ {
		for kk := 0; kk < b; kk++ {
			m := s.ld(l.addr(i*b+r, k*b+kk))
			if m == 0 {
				continue
			}
			for c := 0; c < b; c++ {
				s.st(l.addr(i*b+r, j*b+c), s.ld(l.addr(i*b+r, j*b+c))-m*s.ld(l.addr(k*b+kk, j*b+c)))
				ops++
			}
		}
	}
	s.clk.Compute(int64(ops)*luFlopNS, int64(ops)*luTraffic)
}

// SeqTime returns the sequential execution time.
func (l *LU) SeqTime(m costs.Model) int64 {
	l.runSeq(m)
	return l.seqNS
}

// Verify compares the parallel factorization against the reference.
// Every element is written by exactly one owner in a fixed order, so
// the comparison is exact.
func (l *LU) Verify(c *core.Cluster) error {
	l.runSeq(*c.Config().Model)
	for i, want := range l.seq {
		if got := c.ReadSharedF(l.mat + i); got != want {
			return fmt.Errorf("LU: element %d = %g, want %g", i, got, want)
		}
	}
	return nil
}
