package apps

import (
	"fmt"

	"cashmere/internal/costs"
)

// LU is the blocked dense LU factorization kernel from SPLASH-2 (paper
// Section 3.2): A = L*U without pivoting. The matrix is divided into
// B x B blocks for temporal and spatial locality; each block is owned
// by one processor (2D scatter), which performs all computation on it.
// Barriers separate the diagonal, perimeter, and interior phases of
// each step. Block ownership makes LU's page accesses bursty: a pivot
// block sits in exclusive mode while being factored, then is suddenly
// demanded by every perimeter owner — the behaviour behind LU's
// negative clustering effect under the one-level protocols (Section
// 3.3.3).
type LU struct {
	N, B int // matrix dimension and block size

	mat int // base address, block-major: block (I,J) contiguous

	seq   []float64
	seqNS int64
}

// DefaultLU returns the scaled-down default instance; with B = 32 each
// block is exactly one 8 Kbyte page.
func DefaultLU() *LU { return &LU{N: 384, B: 32} }

// SmallLU returns a tiny instance for tests.
func SmallLU() *LU { return &LU{N: 32, B: 8} }

// Name returns "LU".
func (l *LU) Name() string { return "LU" }

// DataSet describes the matrix.
func (l *LU) DataSet() string {
	return fmt.Sprintf("%dx%d matrix (%.1f MB), %dx%d blocks",
		l.N, l.N, float64(l.N*l.N*8)/(1<<20), l.B, l.B)
}

// Shape returns the resources LU needs.
func (l *LU) Shape() Shape {
	lay := NewLayout(PageWords)
	l.mat = lay.Array(l.N * l.N)
	return Shape{SharedWords: lay.Words()}
}

// Per-element costs on the 21064A: one fused multiply-subtract chain.
const luFlopNS = 1200
const luTraffic = 80

func (l *LU) nb() int { return l.N / l.B }

// blockBase returns the address of block (I,J), stored block-major.
func (l *LU) blockBase(I, J int) int {
	return l.mat + (I*l.nb()+J)*l.B*l.B
}

// owner implements the SPLASH-2 2D scatter: block (I,J) belongs to
// processor (I mod pr)*pc + (J mod pc).
func luGrid(nprocs int) (pr, pc int) {
	pr = 1
	for (pr*2)*(pr*2) <= nprocs && nprocs%(pr*2) == 0 {
		pr *= 2
	}
	return pr, nprocs / pr
}

func (l *LU) owner(I, J, nprocs int) int {
	pr, pc := luGrid(nprocs)
	return (I%pr)*pc + (J % pc)
}

func (l *LU) initVal(i, j int) float64 {
	v := 1.0 / float64(i+j+1)
	if i == j {
		v += float64(l.N)
	}
	return v
}

// Body runs the parallel blocked LU factorization.
func (l *LU) Body(p Proc) {
	n, nb := l.N, l.nb()
	p.BeginInit()
	if p.ID() == 0 {
		// Rows are contiguous per block in the block-major layout, so
		// initialize one in-block row run at a time.
		b := l.B
		row := make([]float64, b)
		for i := 0; i < n; i++ {
			for J := 0; J < nb; J++ {
				for c := 0; c < b; c++ {
					row[c] = l.initVal(i, J*b+c)
				}
				p.StoreFRow(l.addr(i, J*b), row)
			}
		}
	}
	p.EndInit()

	np := p.NProcs()
	me := p.ID()
	p.Warmup(func() {
		for i := 0; i < nb; i++ {
			for j := 0; j < nb; j++ {
				if l.owner(i, j, np) == me {
					a := l.blockBase(i, j)
					p.StoreF(a, p.LoadF(a))
				}
			}
		}
	})
	scratch := newLUScratch(l.B)
	for k := 0; k < nb; k++ {
		// Factor the diagonal block.
		if l.owner(k, k, np) == me {
			l.factorDiag(p, k, scratch)
		}
		p.Barrier()
		// Perimeter blocks in pivot row and column.
		for j := k + 1; j < nb; j++ {
			if l.owner(k, j, np) == me {
				l.solveRow(p, k, j, scratch)
			}
			if l.owner(j, k, np) == me {
				l.solveCol(p, j, k, scratch)
			}
		}
		p.Barrier()
		// Interior update.
		for i := k + 1; i < nb; i++ {
			for j := k + 1; j < nb; j++ {
				if l.owner(i, j, np) == me {
					l.updateInterior(p, i, j, k, scratch)
				}
			}
		}
		p.Barrier()
	}
}

// Element accessors translating (i,j) to the block-major address.
func (l *LU) addr(i, j int) int {
	I, J := i/l.B, j/l.B
	return l.blockBase(I, J) + (i%l.B)*l.B + (j % l.B)
}

func (l *LU) store(st func(int, float64), i, j int, v float64) { st(l.addr(i, j), v) }

// luScratch holds per-processor row buffers for the range kernels; each
// Body goroutine owns one, so the kernels allocate nothing per call.
type luScratch struct {
	piv, row, aux []float64
}

func newLUScratch(b int) *luScratch {
	return &luScratch{
		piv: make([]float64, b),
		row: make([]float64, b),
		aux: make([]float64, b),
	}
}

// factorDiag performs an unblocked LU factorization of diagonal block k.
// Each (kk,i) step reads and writes the contiguous tail [kk,b) of
// in-block row i, so the tails move through the range kernels; the
// floating-point expressions and the fault order (block read before
// block write) match the scalar version exactly.
func (l *LU) factorDiag(p Proc, k int, s *luScratch) {
	b := l.B
	base := k * b
	ops := 0
	for kk := 0; kk < b; kk++ {
		tail := s.piv[:b-kk]
		p.LoadFRow(tail, l.addr(base+kk, base+kk))
		piv := tail[0]
		for i := kk + 1; i < b; i++ {
			row := s.row[:b-kk]
			p.LoadFRow(row, l.addr(base+i, base+kk))
			m := row[0] / piv
			row[0] = m
			for c := 1; c < len(row); c++ {
				row[c] = row[c] - m*tail[c]
				ops++
			}
			p.StoreFRow(l.addr(base+i, base+kk), row)
		}
		p.Poll()
	}
	p.Compute(int64(ops)*luFlopNS, int64(ops)*luTraffic)
}

// solveRow computes U_kj = L_kk^{-1} A_kj for perimeter block (k,j).
// The multipliers come from a strided column of the diagonal block and
// stay scalar; the target rows are full contiguous in-block rows. The
// multiplier load stays first so the diagonal page still faults before
// the target page, and the kk pivot row loads lazily after the first
// target row exactly where the scalar version first touched it.
func (l *LU) solveRow(p Proc, k, j int, s *luScratch) {
	b := l.B
	rbase, cbase := k*b, j*b
	ops := 0
	for kk := 0; kk < b; kk++ {
		loaded := false
		for i := kk + 1; i < b; i++ {
			m := p.LoadF(l.addr(k*b+i, k*b+kk))
			p.LoadFRow(s.row, l.addr(rbase+i, cbase))
			if !loaded {
				p.LoadFRow(s.piv, l.addr(rbase+kk, cbase))
				loaded = true
			}
			for c := 0; c < b; c++ {
				s.row[c] = s.row[c] - m*s.piv[c]
				ops++
			}
			p.StoreFRow(l.addr(rbase+i, cbase), s.row)
		}
		p.Poll()
	}
	p.Compute(int64(ops)*luFlopNS, int64(ops)*luTraffic)
}

// solveCol computes L_jk = A_jk U_kk^{-1} for perimeter block (j,k).
// Both the pivot row tail in the diagonal block and the target row
// tails are contiguous runs [kk,b); the pivot tail loads first (its
// first word is the pivot), preserving the diagonal-then-target fault
// order of the scalar version.
func (l *LU) solveCol(p Proc, j, k int, s *luScratch) {
	b := l.B
	rbase, cbase := j*b, k*b
	ops := 0
	for kk := 0; kk < b; kk++ {
		tail := s.piv[:b-kk]
		p.LoadFRow(tail, l.addr(k*b+kk, k*b+kk))
		piv := tail[0]
		for i := 0; i < b; i++ {
			row := s.row[:b-kk]
			p.LoadFRow(row, l.addr(rbase+i, cbase+kk))
			m := row[0] / piv
			row[0] = m
			for c := 1; c < len(row); c++ {
				row[c] = row[c] - m*tail[c]
				ops++
			}
			p.StoreFRow(l.addr(rbase+i, cbase+kk), row)
		}
		p.Poll()
	}
	p.Compute(int64(ops)*luFlopNS, int64(ops)*luTraffic)
}

// updateInterior applies A_ij -= L_ik * U_kj. The multipliers for
// target row r form in-block row r of L_ik, loaded as one run; the
// target row loads lazily on the first nonzero multiplier, so a row
// whose multipliers are all zero touches neither A_ij nor U_kj, exactly
// like the scalar version.
func (l *LU) updateInterior(p Proc, i, j, k int, s *luScratch) {
	b := l.B
	ops := 0
	for r := 0; r < b; r++ {
		p.LoadFRow(s.piv, l.addr(i*b+r, k*b))
		loaded := false
		for kk := 0; kk < b; kk++ {
			m := s.piv[kk]
			if m == 0 {
				continue
			}
			if !loaded {
				p.LoadFRow(s.row, l.addr(i*b+r, j*b))
				loaded = true
			}
			p.LoadFRow(s.aux, l.addr(k*b+kk, j*b))
			for c := 0; c < b; c++ {
				s.row[c] = s.row[c] - m*s.aux[c]
				ops++
			}
			p.StoreFRow(l.addr(i*b+r, j*b), s.row)
		}
		p.Poll()
	}
	p.Compute(int64(ops)*luFlopNS, int64(ops)*luTraffic)
}

// runSeq computes the sequential reference (identical blocked
// algorithm, identical floating-point operation order).
func (l *LU) runSeq(m costs.Model) {
	if l.seq != nil {
		return
	}
	l.Shape()
	a := make([]float64, l.N*l.N)
	ld := func(addr int) float64 { return a[addr-l.mat] }
	st := func(addr int, v float64) { a[addr-l.mat] = v }
	clk := NewSeqClock(m)
	sp := &seqProcLU{lu: l, ld: ld, st: st, clk: clk}

	for i := 0; i < l.N; i++ {
		for j := 0; j < l.N; j++ {
			st(l.addr(i, j), l.initVal(i, j))
		}
	}
	nb := l.nb()
	for k := 0; k < nb; k++ {
		sp.factorDiag(k)
		for j := k + 1; j < nb; j++ {
			sp.solveRow(k, j)
			sp.solveCol(j, k)
		}
		for i := k + 1; i < nb; i++ {
			for j := k + 1; j < nb; j++ {
				sp.updateInterior(i, j, k)
			}
		}
	}
	l.seq = a
	l.seqNS = clk.NS()
}

// seqProcLU mirrors the parallel kernels on plain memory.
type seqProcLU struct {
	lu  *LU
	ld  func(int) float64
	st  func(int, float64)
	clk *SeqClock
}

func (s *seqProcLU) factorDiag(k int) {
	l, b := s.lu, s.lu.B
	base := k * b
	ops := 0
	for kk := 0; kk < b; kk++ {
		piv := s.ld(l.addr(base+kk, base+kk))
		for i := kk + 1; i < b; i++ {
			m := s.ld(l.addr(base+i, base+kk)) / piv
			s.st(l.addr(base+i, base+kk), m)
			for j := kk + 1; j < b; j++ {
				s.st(l.addr(base+i, base+j), s.ld(l.addr(base+i, base+j))-m*s.ld(l.addr(base+kk, base+j)))
				ops++
			}
		}
	}
	s.clk.Compute(int64(ops)*luFlopNS, int64(ops)*luTraffic)
}

func (s *seqProcLU) solveRow(k, j int) {
	l, b := s.lu, s.lu.B
	rbase, cbase := k*b, j*b
	ops := 0
	for kk := 0; kk < b; kk++ {
		for i := kk + 1; i < b; i++ {
			m := s.ld(l.addr(k*b+i, k*b+kk))
			for c := 0; c < b; c++ {
				s.st(l.addr(rbase+i, cbase+c), s.ld(l.addr(rbase+i, cbase+c))-m*s.ld(l.addr(rbase+kk, cbase+c)))
				ops++
			}
		}
	}
	s.clk.Compute(int64(ops)*luFlopNS, int64(ops)*luTraffic)
}

func (s *seqProcLU) solveCol(j, k int) {
	l, b := s.lu, s.lu.B
	rbase, cbase := j*b, k*b
	ops := 0
	for kk := 0; kk < b; kk++ {
		piv := s.ld(l.addr(k*b+kk, k*b+kk))
		for i := 0; i < b; i++ {
			m := s.ld(l.addr(rbase+i, cbase+kk)) / piv
			s.st(l.addr(rbase+i, cbase+kk), m)
			for c := kk + 1; c < b; c++ {
				s.st(l.addr(rbase+i, cbase+c), s.ld(l.addr(rbase+i, cbase+c))-m*s.ld(l.addr(k*b+kk, k*b+c)))
				ops++
			}
		}
	}
	s.clk.Compute(int64(ops)*luFlopNS, int64(ops)*luTraffic)
}

func (s *seqProcLU) updateInterior(i, j, k int) {
	l, b := s.lu, s.lu.B
	ops := 0
	for r := 0; r < b; r++ {
		for kk := 0; kk < b; kk++ {
			m := s.ld(l.addr(i*b+r, k*b+kk))
			if m == 0 {
				continue
			}
			for c := 0; c < b; c++ {
				s.st(l.addr(i*b+r, j*b+c), s.ld(l.addr(i*b+r, j*b+c))-m*s.ld(l.addr(k*b+kk, j*b+c)))
				ops++
			}
		}
	}
	s.clk.Compute(int64(ops)*luFlopNS, int64(ops)*luTraffic)
}

// SeqTime returns the sequential execution time.
func (l *LU) SeqTime(m costs.Model) int64 {
	l.runSeq(m)
	return l.seqNS
}

// Verify compares the parallel factorization against the reference.
// Every element is written by exactly one owner in a fixed order, so
// the comparison is exact.
func (l *LU) Verify(c Memory) error {
	l.runSeq(c.Model())
	for i, want := range l.seq {
		if got := c.ReadSharedF(l.mat + i); got != want {
			return fmt.Errorf("LU: element %d = %g, want %g", i, got, want)
		}
	}
	return nil
}
