package apps

import (
	"fmt"

	"cashmere/internal/costs"
)

// Ilink models the FASTLINK genetic linkage analysis program of paper
// Section 3.2 (Dwarkadas et al., Human Heredity 1994). The real program
// traverses pedigree data updating a pool of sparse arrays of genotype
// probabilities; we reproduce its computational and communication
// structure: a master-slave computation in which the master updates the
// shared pool (one-to-all), slaves update the non-zero elements assigned
// to them round-robin, and the master combines the results (all-to-one),
// with barriers between phases, an inherent serial component, and
// inherent load imbalance (the amount of work per non-zero varies).
//
// The substitution preserves what the evaluation measures: Ilink's
// behaviour is dominated by its one-to-all/all-to-one sharing and
// master-side serial fraction, both of which are reproduced exactly.
type Ilink struct {
	Slots int // genotype pool size
	Iters int // pedigree traversals

	pool int // shared probability pool
	out  int // per-iteration combined result (master-written)

	seq   []float64
	seqNS int64
}

// DefaultIlink returns the scaled-down default instance.
func DefaultIlink() *Ilink { return &Ilink{Slots: 16 * PageWords, Iters: 10} }

// SmallIlink returns a tiny instance for tests.
func SmallIlink() *Ilink { return &Ilink{Slots: 200, Iters: 3} }

// Name returns "Ilink".
func (il *Ilink) Name() string { return "Ilink" }

// DataSet describes the pool.
func (il *Ilink) DataSet() string {
	return fmt.Sprintf("%d-slot genotype pool (%.1f MB), %d traversals",
		il.Slots, float64(il.Slots*8)/(1<<20), il.Iters)
}

// Shape returns the resources Ilink needs.
func (il *Ilink) Shape() Shape {
	l := NewLayout(PageWords)
	il.pool = l.Array(il.Slots)
	il.out = l.Array(il.Iters)
	return Shape{SharedWords: l.Words()}
}

const ilinkOpNS = 60000
const ilinkTraffic = 12

// nonzero reports whether slot s holds a non-zero genotype probability
// (the pool is sparse; roughly 60% of slots participate).
func (il *Ilink) nonzero(s int) bool { return (s*7+3)%5 != 0 }

// workUnits models the varying per-element work (the source of load
// imbalance).
func (il *Ilink) workUnits(s int) int { return 1 + (s*13)%7 }

func (il *Ilink) initVal(s int) float64 {
	if !il.nonzero(s) {
		return 0
	}
	return 1.0 / float64(2+s%31)
}

// update is the per-element genotype probability update.
func (il *Ilink) update(v float64, it int) float64 {
	return v * (1.0 - v/float64(4+it))
}

// Body runs the parallel master-slave computation.
func (il *Ilink) Body(p Proc) {
	p.BeginInit()
	if p.ID() == 0 {
		for s := 0; s < il.Slots; s++ {
			p.StoreF(il.pool+s, il.initVal(s))
		}
	}
	p.EndInit()

	np, me := p.NProcs(), p.ID()
	p.Warmup(func() {
		k := 0
		for s := 0; s < il.Slots; s++ {
			if !il.nonzero(s) {
				continue
			}
			if k%np == me {
				p.StoreF(il.pool+s, p.LoadF(il.pool+s))
			}
			k++
		}
	})
	for it := 0; it < il.Iters; it++ {
		// One-to-all: the master reseeds a slice of the pool (the new
		// pedigree evidence), serially.
		if me == 0 {
			for s := 0; s < il.Slots; s += 16 {
				v := p.LoadF(il.pool + s)
				p.StoreF(il.pool+s, v+1.0/float64(16+it))
			}
			p.Compute(int64(il.Slots/16)*ilinkOpNS/8, int64(il.Slots/16)*ilinkTraffic)
		}
		p.Barrier()
		// Slaves update their round-robin share of the non-zeros.
		k := 0
		for s := 0; s < il.Slots; s++ {
			if !il.nonzero(s) {
				continue
			}
			if k%np == me {
				w := il.workUnits(s)
				v := p.LoadF(il.pool + s)
				for u := 0; u < w; u++ {
					v = il.update(v, it)
				}
				p.StoreF(il.pool+s, v)
				p.Compute(int64(w)*ilinkOpNS, ilinkTraffic)
				p.Poll()
			}
			k++
		}
		p.Barrier()
		// All-to-one: the master combines.
		if me == 0 {
			sum := 0.0
			for s := 0; s < il.Slots; s++ {
				sum += p.LoadF(il.pool + s)
			}
			p.StoreF(il.out+it, sum)
			p.Compute(int64(il.Slots)*ilinkOpNS/64, int64(il.Slots)*ilinkTraffic)
		}
		p.Barrier()
	}
}

// runSeq computes the sequential reference.
func (il *Ilink) runSeq(m costs.Model) {
	if il.seq != nil {
		return
	}
	il.Shape()
	pool := make([]float64, il.Slots)
	for s := range pool {
		pool[s] = il.initVal(s)
	}
	out := make([]float64, il.Iters)
	clk := NewSeqClock(m)
	for it := 0; it < il.Iters; it++ {
		for s := 0; s < il.Slots; s += 16 {
			pool[s] += 1.0 / float64(16+it)
		}
		clk.Compute(int64(il.Slots/16)*ilinkOpNS/8, int64(il.Slots/16)*ilinkTraffic)
		for s := 0; s < il.Slots; s++ {
			if !il.nonzero(s) {
				continue
			}
			w := il.workUnits(s)
			v := pool[s]
			for u := 0; u < w; u++ {
				v = il.update(v, it)
			}
			pool[s] = v
			clk.Compute(int64(w)*ilinkOpNS, ilinkTraffic)
		}
		sum := 0.0
		for s := range pool {
			sum += pool[s]
		}
		out[it] = sum
		clk.Compute(int64(il.Slots)*ilinkOpNS/64, int64(il.Slots)*ilinkTraffic)
	}
	il.seq = out
	il.seqNS = clk.NS()
}

// SeqTime returns the sequential execution time.
func (il *Ilink) SeqTime(m costs.Model) int64 {
	il.runSeq(m)
	return il.seqNS
}

// Verify compares the per-iteration combined results; every slot has a
// single writer per phase and the master's summation order is fixed, so
// the comparison is exact.
func (il *Ilink) Verify(c Memory) error {
	il.runSeq(c.Model())
	for it, want := range il.seq {
		if got := c.ReadSharedF(il.out + it); got != want {
			return fmt.Errorf("Ilink: result[%d] = %g, want %g", it, got, want)
		}
	}
	return nil
}
