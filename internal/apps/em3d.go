package apps

import (
	"fmt"

	"cashmere/internal/costs"
)

// Em3d simulates electromagnetic wave propagation through 3D objects
// (paper Section 3.2, after Culler et al.'s Split-C benchmark). The
// data structure is a bipartite graph of electric and magnetic field
// nodes; in each half-step every E node is updated from the H nodes it
// depends on, then vice versa, with barriers in between. With the
// standard input, a processor's nodes depend only on its own and its
// neighbours' nodes, so communication is boundary exchange with a much
// lower computation-to-communication ratio than SOR — which is why
// Em3d gains more from the two-level protocols (Section 3.3.2).
type Em3d struct {
	Nodes  int // field nodes of each kind
	Degree int // dependencies per node (neighbourhood radius)
	Iters  int

	e, h int // base addresses of the two value arrays

	seq   []float64 // final E then H values
	seqNS int64
}

// DefaultEm3d returns the scaled-down default instance.
func DefaultEm3d() *Em3d { return &Em3d{Nodes: 32 * PageWords, Degree: 4, Iters: 8} }

// SmallEm3d returns a tiny instance for tests.
func SmallEm3d() *Em3d { return &Em3d{Nodes: 256, Degree: 2, Iters: 3} }

// Name returns "Em3d".
func (e *Em3d) Name() string { return "Em3d" }

// DataSet describes the graph.
func (e *Em3d) DataSet() string {
	return fmt.Sprintf("%d E + %d H nodes, degree %d (%.1f MB), %d iters",
		e.Nodes, e.Nodes, e.Degree, float64(2*e.Nodes*8)/(1<<20), e.Iters)
}

// Shape returns the resources Em3d needs.
func (e *Em3d) Shape() Shape {
	l := NewLayout(PageWords)
	e.e = l.Array(e.Nodes)
	e.h = l.Array(e.Nodes)
	return Shape{SharedWords: l.Words()}
}

const em3dOpNS = 1280
const em3dTraffic = 160

// weight is the dependency coefficient between a node and its d-th
// neighbour; deterministic and symmetric across the E and H updates.
func (e *Em3d) weight(d int) float64 {
	return 1.0 / float64(2*e.Degree+2+d)
}

func (e *Em3d) initVal(kind, i int) float64 {
	return float64((i*31+kind*17)%101) / 101.0
}

// dep returns the index of node i's d-th dependency, clamped to the
// array (the graph is a band matrix).
func (e *Em3d) dep(i, d int) int {
	j := i + d - e.Degree/2
	if j < 0 {
		j += e.Nodes
	}
	if j >= e.Nodes {
		j -= e.Nodes
	}
	return j
}

// Body runs the parallel simulation.
func (e *Em3d) Body(p Proc) {
	p.BeginInit()
	if p.ID() == 0 {
		// One page-sized run per array at a time, so pages are first
		// touched in the same E-then-H interleaved order as the scalar
		// per-node init.
		ebuf := make([]float64, PageWords)
		hbuf := make([]float64, PageWords)
		for i0 := 0; i0 < e.Nodes; i0 += PageWords {
			run := min(PageWords, e.Nodes-i0)
			for t := 0; t < run; t++ {
				ebuf[t] = e.initVal(0, i0+t)
				hbuf[t] = e.initVal(1, i0+t)
			}
			p.StoreFRow(e.e+i0, ebuf[:run])
			p.StoreFRow(e.h+i0, hbuf[:run])
		}
	}
	p.EndInit()

	lo, hi := chunk(e.Nodes, p.ID(), p.NProcs())
	p.Warmup(func() {
		for i := lo; i < hi; i += PageWords / 2 {
			p.StoreF(e.e+i, p.LoadF(e.e+i))
			p.StoreF(e.h+i, p.LoadF(e.h+i))
		}
		p.LoadF(e.e + e.dep(lo, 0))
		p.LoadF(e.h + e.dep(lo, 0))
	})
	buf := make([]float64, PageWords)
	win := make([]float64, e.Degree)
	for it := 0; it < e.Iters; it++ {
		e.halfStep(p, buf, win, e.e, e.h, lo, hi)
		p.PollN(int64(hi - lo))
		p.Compute(int64(hi-lo)*int64(e.Degree)*em3dOpNS, int64(hi-lo)*em3dTraffic)
		p.Barrier()
		e.halfStep(p, buf, win, e.h, e.e, lo, hi)
		p.PollN(int64(hi - lo))
		p.Compute(int64(hi-lo)*int64(e.Degree)*em3dOpNS, int64(hi-lo)*em3dTraffic)
		p.Barrier()
	}
}

// halfStep updates dst[lo:hi] from its dependency windows in src using
// the range kernels. Segments are clipped at every dst page boundary
// and at every src page crossing of the window's leading edge, so each
// source and destination page is first touched at exactly the node
// index where the scalar per-word sweep first touched it; the handful
// of nodes whose window wraps around the array fall back to the scalar
// path. The source array is never written during a half-step, so the
// per-node window loads read the same values the scalar sweep did.
func (e *Em3d) halfStep(p Proc, buf, win []float64, dst, src, lo, hi int) {
	deg, half := e.Degree, e.Degree/2
	for i := lo; i < hi; {
		if i < half || i+deg-half > e.Nodes {
			// Dependency window wraps: scalar fallback.
			v := p.LoadF(dst + i)
			for d := 0; d < deg; d++ {
				v -= e.weight(d) * p.LoadF(src+e.dep(i, d))
			}
			p.StoreF(dst+i, v)
			i++
			continue
		}
		end := hi
		if r := e.Nodes + half - deg + 1; r < end {
			end = r // stop before the window wraps again
		}
		if r := i + PageWords - (dst+i)%PageWords; r < end {
			end = r // dst page boundary
		}
		lead := src + i + deg - half - 1
		if r := i + PageWords - lead%PageWords; r < end {
			end = r // src page crossing of the window's leading edge
		}
		seg := buf[:end-i]
		p.LoadFRow(seg, dst+i)
		for t := range seg {
			p.LoadFRow(win, src+i+t-half)
			v := seg[t]
			for d := 0; d < deg; d++ {
				v -= e.weight(d) * win[d]
			}
			seg[t] = v
		}
		p.StoreFRow(dst+i, seg)
		i = end
	}
}

// runSeq computes the sequential reference.
func (e *Em3d) runSeq(m costs.Model) {
	if e.seq != nil {
		return
	}
	e.Shape()
	ev := make([]float64, e.Nodes)
	hv := make([]float64, e.Nodes)
	for i := range ev {
		ev[i] = e.initVal(0, i)
		hv[i] = e.initVal(1, i)
	}
	clk := NewSeqClock(m)
	for it := 0; it < e.Iters; it++ {
		for i := range ev {
			v := ev[i]
			for d := 0; d < e.Degree; d++ {
				v -= e.weight(d) * hv[e.dep(i, d)]
			}
			ev[i] = v
		}
		clk.Compute(int64(e.Nodes)*int64(e.Degree)*em3dOpNS, int64(e.Nodes)*em3dTraffic)
		for i := range hv {
			v := hv[i]
			for d := 0; d < e.Degree; d++ {
				v -= e.weight(d) * ev[e.dep(i, d)]
			}
			hv[i] = v
		}
		clk.Compute(int64(e.Nodes)*int64(e.Degree)*em3dOpNS, int64(e.Nodes)*em3dTraffic)
	}
	e.seq = append(ev, hv...)
	e.seqNS = clk.NS()
}

// SeqTime returns the sequential execution time.
func (e *Em3d) SeqTime(m costs.Model) int64 {
	e.runSeq(m)
	return e.seqNS
}

// Verify compares both field arrays; the computation is barrier-
// synchronized with a unique writer per node, so it is exact.
func (e *Em3d) Verify(c Memory) error {
	e.runSeq(c.Model())
	for i := 0; i < e.Nodes; i++ {
		if got := c.ReadSharedF(e.e + i); got != e.seq[i] {
			return fmt.Errorf("Em3d: E[%d] = %g, want %g", i, got, e.seq[i])
		}
		if got := c.ReadSharedF(e.h + i); got != e.seq[e.Nodes+i] {
			return fmt.Errorf("Em3d: H[%d] = %g, want %g", i, got, e.seq[e.Nodes+i])
		}
	}
	return nil
}
