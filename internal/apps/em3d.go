package apps

import (
	"fmt"

	"cashmere/internal/core"
	"cashmere/internal/costs"
)

// Em3d simulates electromagnetic wave propagation through 3D objects
// (paper Section 3.2, after Culler et al.'s Split-C benchmark). The
// data structure is a bipartite graph of electric and magnetic field
// nodes; in each half-step every E node is updated from the H nodes it
// depends on, then vice versa, with barriers in between. With the
// standard input, a processor's nodes depend only on its own and its
// neighbours' nodes, so communication is boundary exchange with a much
// lower computation-to-communication ratio than SOR — which is why
// Em3d gains more from the two-level protocols (Section 3.3.2).
type Em3d struct {
	Nodes  int // field nodes of each kind
	Degree int // dependencies per node (neighbourhood radius)
	Iters  int

	e, h int // base addresses of the two value arrays

	seq   []float64 // final E then H values
	seqNS int64
}

// DefaultEm3d returns the scaled-down default instance.
func DefaultEm3d() *Em3d { return &Em3d{Nodes: 32 * PageWords, Degree: 4, Iters: 8} }

// SmallEm3d returns a tiny instance for tests.
func SmallEm3d() *Em3d { return &Em3d{Nodes: 256, Degree: 2, Iters: 3} }

// Name returns "Em3d".
func (e *Em3d) Name() string { return "Em3d" }

// DataSet describes the graph.
func (e *Em3d) DataSet() string {
	return fmt.Sprintf("%d E + %d H nodes, degree %d (%.1f MB), %d iters",
		e.Nodes, e.Nodes, e.Degree, float64(2*e.Nodes*8)/(1<<20), e.Iters)
}

// Shape returns the resources Em3d needs.
func (e *Em3d) Shape() Shape {
	l := NewLayout(PageWords)
	e.e = l.Array(e.Nodes)
	e.h = l.Array(e.Nodes)
	return Shape{SharedWords: l.Words()}
}

const em3dOpNS = 1280
const em3dTraffic = 160

// weight is the dependency coefficient between a node and its d-th
// neighbour; deterministic and symmetric across the E and H updates.
func (e *Em3d) weight(d int) float64 {
	return 1.0 / float64(2*e.Degree+2+d)
}

func (e *Em3d) initVal(kind, i int) float64 {
	return float64((i*31+kind*17)%101) / 101.0
}

// dep returns the index of node i's d-th dependency, clamped to the
// array (the graph is a band matrix).
func (e *Em3d) dep(i, d int) int {
	j := i + d - e.Degree/2
	if j < 0 {
		j += e.Nodes
	}
	if j >= e.Nodes {
		j -= e.Nodes
	}
	return j
}

// Body runs the parallel simulation.
func (e *Em3d) Body(p *core.Proc) {
	p.BeginInit()
	if p.ID() == 0 {
		for i := 0; i < e.Nodes; i++ {
			p.StoreF(e.e+i, e.initVal(0, i))
			p.StoreF(e.h+i, e.initVal(1, i))
		}
	}
	p.EndInit()

	lo, hi := chunk(e.Nodes, p.ID(), p.NProcs())
	p.Warmup(func() {
		for i := lo; i < hi; i += PageWords / 2 {
			p.StoreF(e.e+i, p.LoadF(e.e+i))
			p.StoreF(e.h+i, p.LoadF(e.h+i))
		}
		p.LoadF(e.e + e.dep(lo, 0))
		p.LoadF(e.h + e.dep(lo, 0))
	})
	for it := 0; it < e.Iters; it++ {
		for i := lo; i < hi; i++ {
			v := p.LoadF(e.e + i)
			for d := 0; d < e.Degree; d++ {
				v -= e.weight(d) * p.LoadF(e.h+e.dep(i, d))
			}
			p.StoreF(e.e+i, v)
		}
		p.PollN(int64(hi - lo))
		p.Compute(int64(hi-lo)*int64(e.Degree)*em3dOpNS, int64(hi-lo)*em3dTraffic)
		p.Barrier()
		for i := lo; i < hi; i++ {
			v := p.LoadF(e.h + i)
			for d := 0; d < e.Degree; d++ {
				v -= e.weight(d) * p.LoadF(e.e+e.dep(i, d))
			}
			p.StoreF(e.h+i, v)
		}
		p.PollN(int64(hi - lo))
		p.Compute(int64(hi-lo)*int64(e.Degree)*em3dOpNS, int64(hi-lo)*em3dTraffic)
		p.Barrier()
	}
}

// runSeq computes the sequential reference.
func (e *Em3d) runSeq(m costs.Model) {
	if e.seq != nil {
		return
	}
	e.Shape()
	ev := make([]float64, e.Nodes)
	hv := make([]float64, e.Nodes)
	for i := range ev {
		ev[i] = e.initVal(0, i)
		hv[i] = e.initVal(1, i)
	}
	clk := NewSeqClock(m)
	for it := 0; it < e.Iters; it++ {
		for i := range ev {
			v := ev[i]
			for d := 0; d < e.Degree; d++ {
				v -= e.weight(d) * hv[e.dep(i, d)]
			}
			ev[i] = v
		}
		clk.Compute(int64(e.Nodes)*int64(e.Degree)*em3dOpNS, int64(e.Nodes)*em3dTraffic)
		for i := range hv {
			v := hv[i]
			for d := 0; d < e.Degree; d++ {
				v -= e.weight(d) * ev[e.dep(i, d)]
			}
			hv[i] = v
		}
		clk.Compute(int64(e.Nodes)*int64(e.Degree)*em3dOpNS, int64(e.Nodes)*em3dTraffic)
	}
	e.seq = append(ev, hv...)
	e.seqNS = clk.NS()
}

// SeqTime returns the sequential execution time.
func (e *Em3d) SeqTime(m costs.Model) int64 {
	e.runSeq(m)
	return e.seqNS
}

// Verify compares both field arrays; the computation is barrier-
// synchronized with a unique writer per node, so it is exact.
func (e *Em3d) Verify(c *core.Cluster) error {
	e.runSeq(*c.Config().Model)
	for i := 0; i < e.Nodes; i++ {
		if got := c.ReadSharedF(e.e + i); got != e.seq[i] {
			return fmt.Errorf("Em3d: E[%d] = %g, want %g", i, got, e.seq[i])
		}
		if got := c.ReadSharedF(e.h + i); got != e.seq[e.Nodes+i] {
			return fmt.Errorf("Em3d: H[%d] = %g, want %g", i, got, e.seq[e.Nodes+i])
		}
	}
	return nil
}
