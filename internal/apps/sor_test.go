package apps

import (
	"testing"

	"cashmere/internal/core"
)

// kindsUnderTest lists the protocols every application must pass under.
var kindsUnderTest = []core.Kind{
	core.TwoLevel, core.TwoLevelSD, core.OneLevelDiff, core.OneLevelWrite,
}

// smallConfig returns a 2x2 test topology with small pages so the tiny
// test problems still span multiple pages.
func smallConfig(k core.Kind) core.Config {
	return core.Config{
		Nodes:        2,
		ProcsPerNode: 2,
		Protocol:     k,
		PageWords:    64,
	}
}

// checkApp runs app under every protocol on the small topology,
// verifying results each time.
func checkApp(t *testing.T, mk func() App) {
	t.Helper()
	for _, k := range kindsUnderTest {
		app := mk()
		cfg := smallConfig(k)
		res, err := Run(app, cfg)
		if err != nil {
			t.Fatalf("%v: %v", k, err)
		}
		if res.ExecNS <= 0 {
			t.Errorf("%v: no virtual time elapsed", k)
		}
		sp := Speedup(app, cfg, res)
		if sp <= 0 {
			t.Errorf("%v: speedup = %v", k, sp)
		}
	}
	// Home-node optimization variants of the one-level protocols.
	for _, k := range []core.Kind{core.OneLevelDiff, core.OneLevelWrite} {
		app := mk()
		cfg := smallConfig(k)
		cfg.HomeOpt = true
		if _, err := Run(app, cfg); err != nil {
			t.Fatalf("%v+homeopt: %v", k, err)
		}
	}
}

func TestSORSmallAllProtocols(t *testing.T) {
	checkApp(t, func() App { return SmallSOR() })
}

func TestSORSequentialDeterministic(t *testing.T) {
	a := SmallSOR()
	b := SmallSOR()
	m := defaultCosts()
	if a.SeqTime(m) != b.SeqTime(m) {
		t.Error("sequential time not deterministic")
	}
	if a.SeqTime(m) <= 0 {
		t.Error("sequential time not positive")
	}
}

func TestSORSingleProcMatchesSeqPlusOverhead(t *testing.T) {
	// A single-processor parallel run must take at least the
	// sequential time (protocol overhead is non-negative).
	app := SmallSOR()
	cfg := core.Config{Nodes: 1, ProcsPerNode: 1, Protocol: core.TwoLevel, PageWords: 64}
	res, err := Run(app, cfg)
	if err != nil {
		t.Fatal(err)
	}
	seq := app.SeqTime(defaultCosts())
	if res.ExecNS < seq {
		t.Errorf("1-proc run (%d ns) faster than sequential (%d ns)", res.ExecNS, seq)
	}
	// And within a sane overhead envelope. The test problem is tiny
	// (330 us of compute), so 72 us faults and barrier costs dominate;
	// at realistic sizes the overhead ratio is far smaller (see the
	// bench harness).
	if res.ExecNS > 20*seq {
		t.Errorf("1-proc run (%d ns) more than 20x sequential (%d ns)", res.ExecNS, seq)
	}
}

func TestSORMetadata(t *testing.T) {
	a := DefaultSOR()
	if a.Name() != "SOR" {
		t.Errorf("Name = %q", a.Name())
	}
	if a.DataSet() == "" {
		t.Error("empty DataSet")
	}
	sh := a.Shape()
	if sh.SharedWords < a.Rows*a.Cols {
		t.Errorf("SharedWords = %d < grid %d", sh.SharedWords, a.Rows*a.Cols)
	}
}
