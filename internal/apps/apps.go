// Package apps implements the paper's eight-application benchmark suite
// (Section 3.2): SOR, LU, Water, TSP, Gauss, Ilink, Em3d, and Barnes.
//
// Each application has a parallel body written against the DSM API
// (the Proc interface, satisfied both by the simulator's core.Proc and
// by the multi-process runtime's processor) and a sequential reference
// that performs the same
// computation on plain memory while accumulating the same modelled
// computation time. The sequential time is the Table 2 baseline used
// for speedups; the reference results validate the parallel run, so the
// coherence protocols are checked end to end on every benchmark.
//
// Problem sizes are scaled down from the paper's (which were sized for
// a 32-processor AlphaServer cluster and multi-minute runs) but keep
// each application's sharing pattern: band partitioning with boundary
// exchange (SOR, Em3d), block ownership with bursty handoff (LU),
// migratory lock-protected accumulation (Water), a central work queue
// (TSP), single-producer/multiple-consumer pivot rows under flags
// (Gauss), master-slave phases (Ilink), and sequential tree building
// with dynamically balanced force computation (Barnes).
package apps

import (
	"fmt"

	"cashmere/internal/costs"
	"cashmere/internal/sim"
)

// Proc is the DSM API surface an application body runs against: shared
// word/float accesses, modelled computation, synchronization, and the
// initialization epoch. core.Proc (the simulator engine) and the
// multi-process runtime's processor (internal/mprun) both satisfy it,
// which is what lets one application source run on either.
type Proc interface {
	// ID returns the global processor id, 0..NProcs()-1.
	ID() int
	// NProcs returns the total processor count.
	NProcs() int

	// Load and Store access one shared 64-bit word.
	Load(addr int) int64
	Store(addr int, v int64)
	// LoadF/StoreF access a shared word as a float64.
	LoadF(addr int) float64
	StoreF(addr int, v float64)
	// LoadFRow/StoreFRow access a contiguous run of shared float64s.
	LoadFRow(dst []float64, addr int)
	StoreFRow(addr int, src []float64)

	// Compute charges ns nanoseconds of local computation plus busBytes
	// of memory-bus traffic.
	Compute(ns, busBytes int64)
	// Poll services pending protocol requests (PollN amortizes the
	// check over n loop iterations).
	Poll()
	PollN(n int64)

	// Lock/Unlock, SetFlag/WaitFlag, and Barrier are the application
	// synchronization operations (paper Section 2.2).
	Lock(i int)
	Unlock(i int)
	SetFlag(i int)
	WaitFlag(i int)
	Barrier()

	// BeginInit/EndInit bracket the initialization epoch; Warmup runs f
	// without charging virtual time.
	BeginInit()
	EndInit()
	Warmup(f func())
}

// Memory is the post-run view an application's Verify reads: the final
// shared memory contents plus the cost model the run was charged under
// (for regenerating the sequential reference).
type Memory interface {
	// Model returns the cost model the run used.
	Model() costs.Model
	// ReadShared returns the current value of the shared word at addr.
	ReadShared(addr int) int64
	// ReadSharedF returns ReadShared(addr) as a float64.
	ReadSharedF(addr int) float64
}

// Shape gives the cluster resources an application needs.
type Shape struct {
	SharedWords int
	Locks       int
	Flags       int
}

// App is one benchmark application at a fixed problem size.
type App interface {
	// Name returns the application's name as used in the paper.
	Name() string
	// DataSet describes the problem size (for Table 2).
	DataSet() string
	// Shape returns the shared-memory and synchronization resources
	// required.
	Shape() Shape
	// Body runs the parallel program on one processor.
	Body(p Proc)
	// SeqTime returns the sequential (uninstrumented) execution time in
	// virtual nanoseconds under the given cost model.
	SeqTime(m costs.Model) int64
	// Verify checks the shared memory left by a parallel run against
	// the sequential reference.
	Verify(c Memory) error
}

// SeqClock accumulates the virtual time of a sequential reference run,
// mirroring core.Proc.Compute's bus model with the whole node memory
// bus to itself.
type SeqClock struct {
	clk sim.Clock
	bw  int64
}

// NewSeqClock returns a clock using the model's node memory bus
// bandwidth.
func NewSeqClock(m costs.Model) *SeqClock {
	return &SeqClock{bw: m.NodeBusBandwidth}
}

// Compute charges ns nanoseconds of computation plus busBytes of memory
// traffic, exactly as core.Proc.Compute does for a lone processor.
func (s *SeqClock) Compute(ns, busBytes int64) {
	s.clk.Advance(ns + sim.Stall(ns, busBytes, 1, s.bw))
}

// NS returns the accumulated virtual time.
func (s *SeqClock) NS() int64 { return s.clk.Now() }

// Layout hands out page-aligned base addresses in the shared space.
type Layout struct {
	next      int
	pageWords int
}

// NewLayout returns an allocator for a space with the given page size.
func NewLayout(pageWords int) *Layout {
	if pageWords <= 0 {
		panic("apps: page size must be positive")
	}
	return &Layout{pageWords: pageWords}
}

// Array reserves words shared words starting on a page boundary and
// returns the base address.
func (l *Layout) Array(words int) int {
	// Round the cursor up to a page boundary.
	l.next = (l.next + l.pageWords - 1) / l.pageWords * l.pageWords
	base := l.next
	l.next += words
	return base
}

// Raw reserves words without alignment.
func (l *Layout) Raw(words int) int {
	base := l.next
	l.next += words
	return base
}

// Words returns the total space reserved so far.
func (l *Layout) Words() int { return l.next }

// PageWords is the page size used by the applications' layouts; it
// matches the core default (8 Kbytes of 64-bit words).
const PageWords = 1024

// chunk returns the half-open range [lo,hi) of n items assigned to
// worker id of nproc by even contiguous partitioning.
func chunk(n, id, nproc int) (lo, hi int) {
	per := n / nproc
	rem := n % nproc
	lo = id*per + min(id, rem)
	hi = lo + per
	if id < rem {
		hi++
	}
	return lo, hi
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}

// verifyF compares a parallel float64 result against the reference with
// a relative/absolute tolerance.
func verifyF(what string, i int, got, want, tol float64) error {
	d := got - want
	if d < 0 {
		d = -d
	}
	bound := tol
	if w := want; w < 0 {
		w = -w
		if w*tol > bound {
			bound = w * tol
		}
	} else if w*tol > bound {
		bound = w * tol
	}
	if d > bound {
		return fmt.Errorf("%s[%d] = %g, want %g (|diff| %g > %g)", what, i, got, want, d, bound)
	}
	return nil
}

// All returns the full benchmark suite at the default (scaled-down)
// problem sizes, in the paper's Table 2 order.
func All() []App {
	return []App{
		DefaultSOR(),
		DefaultLU(),
		DefaultWater(),
		DefaultTSP(),
		DefaultGauss(),
		DefaultIlink(),
		DefaultEm3d(),
		DefaultBarnes(),
	}
}

// Small returns tiny instances of the full suite for tests.
func Small() []App {
	return []App{
		SmallSOR(),
		SmallLU(),
		SmallWater(),
		SmallTSP(),
		SmallGauss(),
		SmallIlink(),
		SmallEm3d(),
		SmallBarnes(),
	}
}

// ByName returns the suite application with the given (case-sensitive)
// name, or nil.
func ByName(name string) App {
	for _, a := range All() {
		if a.Name() == name {
			return a
		}
	}
	return nil
}
