package apps

import (
	"fmt"
	"math"

	"cashmere/internal/costs"
)

// Barnes is the N-body simulation from SPLASH using the hierarchical
// Barnes-Hut method (paper Section 3.2). The major shared structures
// are the body array and the cell (oct-tree) array. Tree construction
// is performed sequentially, as in the original, while the force
// computation is parallelized with dynamic load balancing (a shared
// work counter under a lock) and the integration phase is statically
// partitioned; barriers separate the phases. The single-producer tree
// plus all-consumer force phase makes Barnes the heaviest generator of
// page fetches, directory updates, and write notices in the suite —
// the application with the paper's largest two-level win (46%).
type Barnes struct {
	N     int
	Steps int
	Theta float64

	// Shared layout. Tree nodes are interleaved records of nodeStride
	// words so one traversal step touches one region of one page:
	// child[8], com[3], mass, center[3], half, body.
	pos, vel, acc int // 3*N float64 each
	nodes         int // nodeStride*cap record array
	nnodes        int // shared node count
	counter       int // dynamic load-balance cursor

	cap int

	seqPos []float64
	seqNS  int64
}

// DefaultBarnes returns the scaled-down default instance.
func DefaultBarnes() *Barnes { return &Barnes{N: 4096, Steps: 2, Theta: 0.7} }

// SmallBarnes returns a tiny instance for tests.
func SmallBarnes() *Barnes { return &Barnes{N: 64, Steps: 2, Theta: 0.8} }

// Name returns "Barnes".
func (b *Barnes) Name() string { return "Barnes" }

// DataSet describes the simulation.
func (b *Barnes) DataSet() string {
	return fmt.Sprintf("%d bodies (%.1f MB with cells), theta %.1f, %d steps",
		b.N, float64((9*b.N+nodeStride*b.cap)*8)/(1<<20), b.Theta, b.Steps)
}

// Shape returns the resources Barnes needs.
func (b *Barnes) Shape() Shape {
	b.cap = 4*b.N + 64
	l := NewLayout(PageWords)
	b.pos = l.Array(3 * b.N)
	b.vel = l.Array(3 * b.N)
	b.acc = l.Array(3 * b.N)
	b.nodes = l.Array(nodeStride * b.cap)
	b.nnodes = l.Array(1)
	b.counter = l.Array(1)
	return Shape{SharedWords: l.Words(), Locks: 1}
}

// nodeStride is the record size of one tree node; field offsets follow.
const (
	nodeStride = 20
	offChild   = 0 // 8 words
	offCOM     = 8 // 3 words
	offMass    = 11
	offCenter  = 12 // 3 words
	offHalf    = 15
	offBody    = 16
)

const (
	barnesInteractNS = 50000
	barnesBuildNS    = 600
	barnesDT         = 2e-2
	barnesSoft       = 0.05
	barnesChunk      = 32
)

func (b *Barnes) initPos(i, d int) float64 {
	// A jittered cube, same recipe as Water but a larger spread.
	side := int(math.Cbrt(float64(b.N))) + 1
	c := [3]int{i % side, (i / side) % side, i / (side * side)}
	return 2.0*float64(c[d]) + 0.7*float64((i*13+d*5)%10)/10.0
}

// mem abstracts shared vs plain memory so the tree code is written once
// and used by both the parallel body and the sequential reference.
type mem interface {
	ld(addr int) float64
	st(addr int, v float64)
	ldi(addr int) int64
	sti(addr int, v int64)
}

type procMem struct{ p Proc }

func (m procMem) ld(a int) float64    { return m.p.LoadF(a) }
func (m procMem) st(a int, v float64) { m.p.StoreF(a, v) }
func (m procMem) ldi(a int) int64     { return m.p.Load(a) }
func (m procMem) sti(a int, v int64)  { m.p.Store(a, v) }

type flatMem struct{ w []float64 }

func (m flatMem) ld(a int) float64    { return m.w[a] }
func (m flatMem) st(a int, v float64) { m.w[a] = v }
func (m flatMem) ldi(a int) int64     { return int64(m.w[a]) }
func (m flatMem) sti(a int, v int64)  { m.w[a] = float64(v) }

// buildTree constructs the oct-tree over the current positions and
// returns the number of tree operations performed (for time charging).
func (b *Barnes) buildTree(m mem) int64 {
	ops := int64(0)
	// Bounding cube.
	lo, hi := math.MaxFloat64, -math.MaxFloat64
	for i := 0; i < b.N; i++ {
		for d := 0; d < 3; d++ {
			v := m.ld(b.pos + 3*i + d)
			lo = math.Min(lo, v)
			hi = math.Max(hi, v)
		}
	}
	half := (hi-lo)/2 + 1e-6
	mid := (hi + lo) / 2

	newNode := func(cx, cy, cz, h float64) int {
		id := int(m.ldi(b.nnodes))
		if id >= b.cap {
			panic("barnes: node pool exhausted")
		}
		m.sti(b.nnodes, int64(id+1))
		for c := 0; c < 8; c++ {
			m.sti(b.nodes+nodeStride*id+offChild+c, -1)
		}
		m.st(b.nodes+nodeStride*id+offCenter+0, cx)
		m.st(b.nodes+nodeStride*id+offCenter+1, cy)
		m.st(b.nodes+nodeStride*id+offCenter+2, cz)
		m.st(b.nodes+nodeStride*id+offHalf, h)
		m.sti(b.nodes+nodeStride*id+offBody, -1)
		m.st(b.nodes+nodeStride*id+offMass, 0)
		return id
	}

	m.sti(b.nnodes, 0)
	root := newNode(mid, mid, mid, half)

	var insert func(node, body int)
	insert = func(node, body int) {
		ops++
		oct := 0
		var cc [3]float64
		for d := 0; d < 3; d++ {
			cc[d] = m.ld(b.nodes + nodeStride*node + offCenter + d)
			if m.ld(b.pos+3*body+d) >= cc[d] {
				oct |= 1 << d
			}
		}
		child := int(m.ldi(b.nodes + nodeStride*node + offChild + oct))
		h := m.ld(b.nodes+nodeStride*node+offHalf) / 2
		var ch [3]float64
		for d := 0; d < 3; d++ {
			ch[d] = cc[d] - h
			if oct&(1<<d) != 0 {
				ch[d] = cc[d] + h
			}
		}
		switch {
		case child < 0:
			leaf := newNode(ch[0], ch[1], ch[2], h)
			m.sti(b.nodes+nodeStride*leaf+offBody, int64(body))
			m.sti(b.nodes+nodeStride*node+offChild+oct, int64(leaf))
		case m.ldi(b.nodes+nodeStride*child+offBody) >= 0:
			// Split the leaf and reinsert both bodies.
			old := int(m.ldi(b.nodes + nodeStride*child + offBody))
			m.sti(b.nodes+nodeStride*child+offBody, -1)
			insert(child, old)
			insert(child, body)
		default:
			insert(child, body)
		}
	}
	for i := 0; i < b.N; i++ {
		insert(root, i)
	}

	// Centers of mass, bottom-up.
	var com func(node int)
	com = func(node int) {
		ops++
		if bd := m.ldi(b.nodes + nodeStride*node + offBody); bd >= 0 {
			for d := 0; d < 3; d++ {
				m.st(b.nodes+nodeStride*node+offCOM+d, m.ld(b.pos+3*int(bd)+d))
			}
			m.st(b.nodes+nodeStride*node+offMass, 1)
			return
		}
		var sum [3]float64
		mass := 0.0
		for c := 0; c < 8; c++ {
			ch := int(m.ldi(b.nodes + nodeStride*node + offChild + c))
			if ch < 0 {
				continue
			}
			com(ch)
			cm := m.ld(b.nodes + nodeStride*ch + offMass)
			mass += cm
			for d := 0; d < 3; d++ {
				sum[d] += cm * m.ld(b.nodes+nodeStride*ch+offCOM+d)
			}
		}
		m.st(b.nodes+nodeStride*node+offMass, mass)
		for d := 0; d < 3; d++ {
			if mass > 0 {
				m.st(b.nodes+nodeStride*node+offCOM+d, sum[d]/mass)
			}
		}
	}
	com(root)
	return ops
}

// forceOn computes the acceleration on body i by tree traversal into
// out (3 words), returning the interaction count.
func (b *Barnes) forceOn(m mem, i int, out []float64) int64 {
	var pi [3]float64
	for d := 0; d < 3; d++ {
		pi[d] = m.ld(b.pos + 3*i + d)
	}
	var a [3]float64
	inter := int64(0)
	var walk func(node int)
	walk = func(node int) {
		bd := m.ldi(b.nodes + nodeStride*node + offBody)
		if bd == int64(i) {
			return
		}
		var dx [3]float64
		r2 := barnesSoft
		for d := 0; d < 3; d++ {
			dx[d] = m.ld(b.nodes+nodeStride*node+offCOM+d) - pi[d]
			r2 += dx[d] * dx[d]
		}
		size := 2 * m.ld(b.nodes+nodeStride*node+offHalf)
		if bd >= 0 || size*size < b.Theta*b.Theta*r2 {
			// Leaf or far-enough cell: single interaction.
			mass := m.ld(b.nodes + nodeStride*node + offMass)
			inv := mass / (r2 * math.Sqrt(r2))
			for d := 0; d < 3; d++ {
				a[d] += dx[d] * inv
			}
			inter++
			return
		}
		for c := 0; c < 8; c++ {
			if ch := int(m.ldi(b.nodes + nodeStride*node + offChild + c)); ch >= 0 {
				walk(ch)
			}
		}
	}
	walk(0)
	copy(out, a[:])
	return inter
}

// Body runs the parallel simulation.
func (b *Barnes) Body(p Proc) {
	m := procMem{p}
	p.BeginInit()
	if p.ID() == 0 {
		for i := 0; i < b.N; i++ {
			for d := 0; d < 3; d++ {
				p.StoreF(b.pos+3*i+d, b.initPos(i, d))
				p.StoreF(b.vel+3*i+d, 0)
			}
		}
	}
	p.EndInit()

	lo, hi := chunk(b.N, p.ID(), p.NProcs())
	accBuf := make([]float64, 3*b.N)
	p.Warmup(func() {
		for i := 0; i < 3*b.N; i += PageWords / 2 {
			p.LoadF(b.pos + i)
		}
		for i := lo; i < hi; i++ {
			p.StoreF(b.vel+3*i, p.LoadF(b.vel+3*i))
		}
	})
	for step := 0; step < b.Steps; step++ {
		// Sequential tree build by processor 0.
		if p.ID() == 0 {
			ops := b.buildTree(m)
			p.Compute(ops*barnesBuildNS, ops*8)
			p.Store(b.counter, 0)
		}
		p.Barrier()

		// Force computation over interleaved chunks (bodies are spread
		// uniformly, so interleaving chunks of barnesChunk bodies
		// balances load; the original's lock-based dynamic balancing
		// adds only noise at this scale). Forces land in a private
		// buffer and are written to the shared array once per phase, as
		// SPLASH Barnes computes into cell-private state.
		np, me := p.NProcs(), p.ID()
		for k := me * barnesChunk; k < b.N; k += np * barnesChunk {
			end := k + barnesChunk
			if end > b.N {
				end = b.N
			}
			inter := int64(0)
			for i := k; i < end; i++ {
				inter += b.forceOn(m, i, accBuf[3*i:3*i+3])
				p.Poll()
			}
			p.Compute(inter*barnesInteractNS, inter*8)
		}
		for k := me * barnesChunk; k < b.N; k += np * barnesChunk {
			end := k + barnesChunk
			if end > b.N {
				end = b.N
			}
			for i := k; i < end; i++ {
				for d := 0; d < 3; d++ {
					p.StoreF(b.acc+3*i+d, accBuf[3*i+d])
				}
			}
		}
		p.Barrier()

		// Integration, statically partitioned.
		for i := lo; i < hi; i++ {
			for d := 0; d < 3; d++ {
				v := p.LoadF(b.vel+3*i+d) + barnesDT*p.LoadF(b.acc+3*i+d)
				p.StoreF(b.vel+3*i+d, v)
				p.StoreF(b.pos+3*i+d, p.LoadF(b.pos+3*i+d)+barnesDT*v)
			}
		}
		p.Compute(int64(hi-lo)*100, int64(hi-lo)*24)
		p.Barrier()
	}
}

// runSeq computes the sequential reference on plain memory using the
// exact same tree code.
func (b *Barnes) runSeq(mo costs.Model) {
	if b.seqPos != nil {
		return
	}
	sh := b.Shape()
	m := flatMem{w: make([]float64, sh.SharedWords)}
	for i := 0; i < b.N; i++ {
		for d := 0; d < 3; d++ {
			m.st(b.pos+3*i+d, b.initPos(i, d))
		}
	}
	clk := NewSeqClock(mo)
	for step := 0; step < b.Steps; step++ {
		ops := b.buildTree(m)
		clk.Compute(ops*barnesBuildNS, ops*8)
		inter := int64(0)
		buf := make([]float64, 3)
		for i := 0; i < b.N; i++ {
			inter += b.forceOn(m, i, buf)
			for d := 0; d < 3; d++ {
				m.st(b.acc+3*i+d, buf[d])
			}
		}
		clk.Compute(inter*barnesInteractNS, inter*8)
		for i := 0; i < b.N; i++ {
			for d := 0; d < 3; d++ {
				v := m.ld(b.vel+3*i+d) + barnesDT*m.ld(b.acc+3*i+d)
				m.st(b.vel+3*i+d, v)
				m.st(b.pos+3*i+d, m.ld(b.pos+3*i+d)+barnesDT*v)
			}
		}
		clk.Compute(int64(b.N)*100, int64(b.N)*24)
	}
	b.seqPos = make([]float64, 3*b.N)
	for i := range b.seqPos {
		b.seqPos[i] = m.ld(b.pos + i)
	}
	b.seqNS = clk.NS()
}

// SeqTime returns the sequential execution time.
func (b *Barnes) SeqTime(m costs.Model) int64 {
	b.runSeq(m)
	return b.seqNS
}

// Verify compares final positions. The tree and every per-body
// traversal are deterministic regardless of which processor computes a
// body's force, so the comparison is exact.
func (b *Barnes) Verify(c Memory) error {
	b.runSeq(c.Model())
	for i, want := range b.seqPos {
		if got := c.ReadSharedF(b.pos + i); got != want {
			return fmt.Errorf("Barnes: pos[%d] = %g, want %g", i, got, want)
		}
	}
	return nil
}
