package apps

import (
	"fmt"

	"cashmere/internal/costs"
)

// Gauss solves a linear system A*x = b by Gaussian elimination with
// back-substitution (paper Section 3.2). Rows are distributed cyclically
// among processors for load balance; a synchronization flag per row
// announces that the pivot row is available. The access pattern is
// essentially single-producer/multiple-consumer — every processor reads
// each pivot row — which is why the two-level protocols' ability to
// coalesce remote fetches gives Gauss one of the paper's biggest wins
// (a four-fold reduction in data transferred, Section 3.3.2). Cyclic
// rows within shared pages also generate substantial multi-writer false
// sharing.
type Gauss struct {
	N int // system dimension

	mat int // N x (N+1) augmented matrix, row-major
	sol int // solution vector (N)

	seq   []float64
	seqNS int64
}

// DefaultGauss returns the scaled-down default instance.
func DefaultGauss() *Gauss { return &Gauss{N: 320} }

// SmallGauss returns a tiny instance for tests.
func SmallGauss() *Gauss { return &Gauss{N: 24} }

// Name returns "Gauss".
func (g *Gauss) Name() string { return "Gauss" }

// DataSet describes the system.
func (g *Gauss) DataSet() string {
	return fmt.Sprintf("%dx%d system (%.1f MB)", g.N, g.N, float64(g.N*(g.N+1)*8)/(1<<20))
}

// Shape returns the resources Gauss needs: one flag per row.
func (g *Gauss) Shape() Shape {
	l := NewLayout(PageWords)
	g.mat = l.Array(g.N * (g.N + 1))
	g.sol = l.Array(g.N)
	return Shape{SharedWords: l.Words(), Flags: g.N}
}

const gaussFlopNS = 12000
const gaussTraffic = 1900

func (g *Gauss) rowW() int { return g.N + 1 }

func (g *Gauss) initVal(i, j int) float64 {
	if j == g.N {
		return float64(i + 1) // right-hand side
	}
	v := 1.0 / float64(1+(i+2*j)%17)
	if i == j {
		v += float64(g.N)
	}
	return v
}

// Body runs the parallel elimination.
func (g *Gauss) Body(p Proc) {
	n, w := g.N, g.rowW()
	p.BeginInit()
	if p.ID() == 0 {
		row := make([]float64, w)
		for i := 0; i < n; i++ {
			for j := 0; j <= n; j++ {
				row[j] = g.initVal(i, j)
			}
			p.StoreFRow(g.mat+i*w, row)
		}
	}
	p.EndInit()

	np, me := p.NProcs(), p.ID()
	p.Warmup(func() {
		for i := me; i < n; i += np {
			p.StoreF(g.mat+i*w, p.LoadF(g.mat+i*w))
		}
	})
	// Row buffers for the range kernels. Rows are packed, not
	// page-aligned — the false sharing is the point of Gauss — so runs
	// are clipped at every page boundary of the rows involved: each
	// segment then touches its pages in the same read-then-write order
	// as the scalar per-word walk, keeping fault sequences identical.
	rbuf := make([]float64, w)
	kbuf := make([]float64, w)
	for k := 0; k < n; k++ {
		if k%np == me {
			// Normalize the pivot row and announce it.
			piv := p.LoadF(g.mat + k*w + k)
			for j := k; j <= n; {
				run := n + 1 - j
				if r := PageWords - (g.mat+k*w+j)%PageWords; r < run {
					run = r
				}
				seg := rbuf[:run]
				p.LoadFRow(seg, g.mat+k*w+j)
				for t := range seg {
					seg[t] = seg[t] / piv
				}
				p.StoreFRow(g.mat+k*w+j, seg)
				j += run
			}
			p.Compute(int64(n-k+1)*gaussFlopNS, int64(n-k+1)*gaussTraffic)
			p.SetFlag(k)
		} else {
			p.WaitFlag(k)
		}
		// Eliminate the pivot from our remaining rows. Segments stop at
		// the page boundaries of both the target row and the pivot row.
		for i := k + 1; i < n; i++ {
			if i%np != me {
				continue
			}
			m := p.LoadF(g.mat + i*w + k)
			for j := k; j <= n; {
				run := n + 1 - j
				if r := PageWords - (g.mat+i*w+j)%PageWords; r < run {
					run = r
				}
				if r := PageWords - (g.mat+k*w+j)%PageWords; r < run {
					run = r
				}
				ib, kb := rbuf[:run], kbuf[:run]
				p.LoadFRow(ib, g.mat+i*w+j)
				p.LoadFRow(kb, g.mat+k*w+j)
				for t := 0; t < run; t++ {
					ib[t] = ib[t] - m*kb[t]
				}
				p.StoreFRow(g.mat+i*w+j, ib)
				j += run
			}
			p.PollN(int64(n - k + 1))
			p.Compute(int64(n-k+1)*gaussFlopNS, int64(n-k+1)*gaussTraffic)
		}
	}
	p.Barrier()
	// Back substitution is the (small) serial component.
	if me == 0 {
		for i := n - 1; i >= 0; i-- {
			x := p.LoadF(g.mat + i*w + n)
			for j := i + 1; j < n; j++ {
				x -= p.LoadF(g.mat+i*w+j) * p.LoadF(g.sol+j)
			}
			p.StoreF(g.sol+i, x)
			p.Compute(int64(n-i)*gaussFlopNS, 0)
		}
	}
	p.Barrier()
}

// runSeq computes the sequential reference.
func (g *Gauss) runSeq(m costs.Model) {
	if g.seq != nil {
		return
	}
	g.Shape()
	n, w := g.N, g.rowW()
	a := make([]float64, n*w)
	x := make([]float64, n)
	for i := 0; i < n; i++ {
		for j := 0; j <= n; j++ {
			a[i*w+j] = g.initVal(i, j)
		}
	}
	clk := NewSeqClock(m)
	for k := 0; k < n; k++ {
		piv := a[k*w+k]
		for j := k; j <= n; j++ {
			a[k*w+j] /= piv
		}
		clk.Compute(int64(n-k+1)*gaussFlopNS, int64(n-k+1)*gaussTraffic)
		for i := k + 1; i < n; i++ {
			mm := a[i*w+k]
			for j := k; j <= n; j++ {
				a[i*w+j] -= mm * a[k*w+j]
			}
			clk.Compute(int64(n-k+1)*gaussFlopNS, int64(n-k+1)*gaussTraffic)
		}
	}
	for i := n - 1; i >= 0; i-- {
		v := a[i*w+n]
		for j := i + 1; j < n; j++ {
			v -= a[i*w+j] * x[j]
		}
		x[i] = v
		clk.Compute(int64(n-i)*gaussFlopNS, 0)
	}
	g.seq = x
	g.seqNS = clk.NS()
}

// SeqTime returns the sequential execution time.
func (g *Gauss) SeqTime(m costs.Model) int64 {
	g.runSeq(m)
	return g.seqNS
}

// Verify compares the solution vector. Every row is eliminated by its
// single owner in the same order as the reference, so the comparison is
// exact.
func (g *Gauss) Verify(c Memory) error {
	g.runSeq(c.Model())
	for i, want := range g.seq {
		if got := c.ReadSharedF(g.sol + i); got != want {
			return fmt.Errorf("Gauss: x[%d] = %g, want %g", i, got, want)
		}
	}
	return nil
}
