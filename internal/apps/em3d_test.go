package apps

import (
	"testing"
)

func TestEm3dSmallAllProtocols(t *testing.T) {
	checkApp(t, func() App { return SmallEm3d() })
}

func TestEm3dDepWraps(t *testing.T) {
	e := SmallEm3d()
	for i := 0; i < e.Nodes; i++ {
		for d := 0; d < e.Degree; d++ {
			j := e.dep(i, d)
			if j < 0 || j >= e.Nodes {
				t.Fatalf("dep(%d,%d) = %d out of range", i, d, j)
			}
		}
	}
}

func TestEm3dValuesEvolve(t *testing.T) {
	e := SmallEm3d()
	e.runSeq(defaultCosts())
	same := 0
	for i := 0; i < e.Nodes; i++ {
		if e.seq[i] == e.initVal(0, i) {
			same++
		}
	}
	if same == e.Nodes {
		t.Error("E field unchanged after simulation")
	}
}

func TestIlinkSmallAllProtocols(t *testing.T) {
	checkApp(t, func() App { return SmallIlink() })
}

func TestIlinkLoadImbalance(t *testing.T) {
	// The paper attributes Ilink's limited scalability to serial
	// fraction and load imbalance; the synthetic workload must exhibit
	// varying per-slot work.
	il := SmallIlink()
	seen := map[int]bool{}
	for s := 0; s < il.Slots; s++ {
		if il.nonzero(s) {
			seen[il.workUnits(s)] = true
		}
	}
	if len(seen) < 3 {
		t.Errorf("work units take only %d distinct values", len(seen))
	}
}

func TestIlinkSparsity(t *testing.T) {
	il := SmallIlink()
	nz := 0
	for s := 0; s < il.Slots; s++ {
		if il.nonzero(s) {
			nz++
		}
	}
	frac := float64(nz) / float64(il.Slots)
	if frac < 0.4 || frac > 0.95 {
		t.Errorf("non-zero fraction = %.2f, want sparse-but-busy pool", frac)
	}
}
