package apps

import "cashmere/internal/costs"

// defaultCosts returns the default cost model for tests.
func defaultCosts() costs.Model { return costs.Default() }
