package apps

import (
	"testing"

	"cashmere/internal/core"
	"cashmere/internal/stats"
)

func TestWaterSmallAllProtocols(t *testing.T) {
	checkApp(t, func() App { return SmallWater() })
}

func TestWaterMigratorySharing(t *testing.T) {
	// Water's force accumulation must actually exercise the locks.
	w := SmallWater()
	cfg := smallConfig(core.TwoLevel)
	res, err := Run(w, cfg)
	if err != nil {
		t.Fatal(err)
	}
	// Every processor locks at least its own neighbourhood's stripes
	// each step (the cutoff keeps it from needing every stripe).
	wantLocks := int64(w.Steps * 4)
	if got := res.Counts[stats.LockAcquires]; got < wantLocks {
		t.Errorf("lock acquires = %d, want >= %d", got, wantLocks)
	}
}

func TestWaterMoleculesMove(t *testing.T) {
	w := SmallWater()
	w.runSeq(defaultCosts())
	moved := 0
	for i := 0; i < w.N; i++ {
		for d := 0; d < 3; d++ {
			if w.seqPos[3*i+d] != w.initPos(i, d) {
				moved++
			}
		}
	}
	if moved == 0 {
		t.Error("no molecule moved during the simulation")
	}
}

func TestTSPSmallAllProtocols(t *testing.T) {
	checkApp(t, func() App { return SmallTSP() })
}

func TestTSPTaskPrefixesDistinct(t *testing.T) {
	ts := SmallTSP()
	ts.Shape()
	seen := map[string]bool{}
	var buf []int
	for k := 0; k < ts.ntask; k++ {
		buf = ts.taskPrefix(k, buf)
		if len(buf) != ts.Depth+1 || buf[0] != 0 {
			t.Fatalf("task %d prefix %v malformed", k, buf)
		}
		key := ""
		inPrefix := map[int]bool{}
		for _, c := range buf {
			if c < 0 || c >= ts.Cities || inPrefix[c] {
				t.Fatalf("task %d prefix %v has invalid/repeated city", k, buf)
			}
			inPrefix[c] = true
			key += string(rune('A' + c))
		}
		if seen[key] {
			t.Fatalf("duplicate task prefix %v", buf)
		}
		seen[key] = true
	}
}

func TestTSPSeqFindsOptimal(t *testing.T) {
	// Brute-force a tiny instance and compare with the DFS.
	ts := &TSP{Cities: 6, Depth: 1}
	ts.runSeq(defaultCosts())
	best := tspInf
	perm := []int{1, 2, 3, 4, 5}
	var rec func(k int)
	rec = func(k int) {
		if k == len(perm) {
			cost := ts.distVal(0, perm[0])
			for i := 1; i < len(perm); i++ {
				cost += ts.distVal(perm[i-1], perm[i])
			}
			cost += ts.distVal(perm[len(perm)-1], 0)
			if cost < best {
				best = cost
			}
			return
		}
		for i := k; i < len(perm); i++ {
			perm[k], perm[i] = perm[i], perm[k]
			rec(k + 1)
			perm[k], perm[i] = perm[i], perm[k]
		}
	}
	rec(0)
	if ts.seqBest != best {
		t.Errorf("DFS best = %d, brute force = %d", ts.seqBest, best)
	}
}

func TestBarnesSmallAllProtocols(t *testing.T) {
	checkApp(t, func() App { return SmallBarnes() })
}

func TestBarnesTreeInvariants(t *testing.T) {
	b := SmallBarnes()
	sh := b.Shape()
	m := flatMem{w: make([]float64, sh.SharedWords)}
	for i := 0; i < b.N; i++ {
		for d := 0; d < 3; d++ {
			m.st(b.pos+3*i+d, b.initPos(i, d))
		}
	}
	b.buildTree(m)
	// Total mass at the root equals the body count.
	if got := m.ld(b.nodes + offMass); got != float64(b.N) {
		t.Errorf("root mass = %g, want %d", got, b.N)
	}
	// Every body appears in exactly one leaf.
	found := make([]int, b.N)
	n := int(m.ldi(b.nnodes))
	for node := 0; node < n; node++ {
		if bd := m.ldi(b.nodes + nodeStride*node + offBody); bd >= 0 {
			found[bd]++
		}
	}
	for i, c := range found {
		if c != 1 {
			t.Errorf("body %d appears in %d leaves", i, c)
		}
	}
}

func TestBarnesThetaControlsInteractions(t *testing.T) {
	// A smaller theta must produce at least as many interactions.
	count := func(theta float64) int64 {
		b := SmallBarnes()
		b.Theta = theta
		sh := b.Shape()
		m := flatMem{w: make([]float64, sh.SharedWords)}
		for i := 0; i < b.N; i++ {
			for d := 0; d < 3; d++ {
				m.st(b.pos+3*i+d, b.initPos(i, d))
			}
		}
		b.buildTree(m)
		total := int64(0)
		buf := make([]float64, 3)
		for i := 0; i < b.N; i++ {
			total += b.forceOn(m, i, buf)
		}
		return total
	}
	tight, loose := count(0.2), count(1.5)
	if tight <= loose {
		t.Errorf("theta=0.2 interactions (%d) not more than theta=1.5 (%d)", tight, loose)
	}
}

func TestSuiteRegistry(t *testing.T) {
	all := All()
	if len(all) != 8 {
		t.Fatalf("All() returned %d apps, want 8", len(all))
	}
	wantOrder := []string{"SOR", "LU", "Water", "TSP", "Gauss", "Ilink", "Em3d", "Barnes"}
	for i, a := range all {
		if a.Name() != wantOrder[i] {
			t.Errorf("All()[%d] = %s, want %s", i, a.Name(), wantOrder[i])
		}
		if ByName(a.Name()) == nil {
			t.Errorf("ByName(%q) = nil", a.Name())
		}
		if a.DataSet() == "" {
			t.Errorf("%s has empty DataSet", a.Name())
		}
		if a.SeqTime(defaultCosts()) <= 0 {
			t.Errorf("%s SeqTime not positive", a.Name())
		}
	}
	if ByName("nope") != nil {
		t.Error("ByName of unknown app returned non-nil")
	}
	if len(Small()) != 8 {
		t.Error("Small() must cover the full suite")
	}
}
