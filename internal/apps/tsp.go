package apps

import (
	"fmt"
	"sort"

	"cashmere/internal/costs"
)

// TSP is a branch-and-bound solution to the travelling salesman problem
// (paper Section 3.2). Partial tours sit in a shared queue protected by
// one lock; the current shortest tour is protected by a second lock.
// The algorithm is non-deterministic: the earlier some processor
// stumbles on the shortest path, the faster the rest of the search
// space is pruned — which is why the paper's TSP user times vary.
// Reads of the global bound during pruning are deliberately
// unsynchronized (a stale bound only weakens pruning, never
// correctness), matching branch-and-bound practice.
type TSP struct {
	Cities int
	Depth  int // prefix depth enumerated into the shared queue

	dist  int // Cities x Cities distance matrix (int64)
	tasks int // task records: Depth cities each
	qhead int // next unclaimed task index
	ntask int // number of tasks
	best  int // current shortest tour length
	path  int // the best tour found (Cities entries)

	seqBest int64
	seqNS   int64
}

// DefaultTSP returns the scaled-down default instance.
func DefaultTSP() *TSP { return &TSP{Cities: 11, Depth: 4} }

// SmallTSP returns a tiny instance for tests.
func SmallTSP() *TSP { return &TSP{Cities: 8, Depth: 2} }

// Name returns "TSP".
func (t *TSP) Name() string { return "TSP" }

// DataSet describes the instance.
func (t *TSP) DataSet() string {
	return fmt.Sprintf("%d cities, branch-and-bound (queue depth %d)", t.Cities, t.Depth)
}

// distVal is the deterministic pseudo-random distance between cities.
func (t *TSP) distVal(i, j int) int64 {
	if i == j {
		return 0
	}
	if i > j {
		i, j = j, i
	}
	h := uint64(i*31+j*17+37) * 2654435761
	return int64(h%97) + 3
}

// greedyBound returns the cost of the nearest-neighbour tour — the
// initial upper bound both searches start from (branch-and-bound codes
// seed the bound with a heuristic tour so pruning bites immediately).
func (t *TSP) greedyBound() int64 {
	visited := make([]bool, t.Cities)
	visited[0] = true
	cur, cost := 0, int64(0)
	for n := 1; n < t.Cities; n++ {
		best, bestD := -1, int64(1<<40)
		for c := 1; c < t.Cities; c++ {
			if !visited[c] {
				if d := t.distVal(cur, c); d < bestD {
					best, bestD = c, d
				}
			}
		}
		visited[best] = true
		cost += bestD
		cur = best
	}
	return cost + t.distVal(cur, 0)
}

// numTasks counts the depth-limited prefixes starting at city 0.
func (t *TSP) numTasks() int {
	n := 1
	for d := 0; d < t.Depth; d++ {
		n *= t.Cities - 1 - d
	}
	return n
}

// prefixCost returns the path cost of a task prefix.
func (t *TSP) prefixCost(prefix []int) int64 {
	cost := int64(0)
	for i := 1; i < len(prefix); i++ {
		cost += t.distVal(prefix[i-1], prefix[i])
	}
	return cost
}

// sortedTasks returns task indices ordered by ascending prefix cost —
// the static analogue of the paper's priority queue of unsolved tours:
// promising prefixes are explored first, so the global bound tightens
// before the expensive subtrees are reached.
func (t *TSP) sortedTasks() []int {
	type kc struct {
		k int
		c int64
	}
	all := make([]kc, t.ntask)
	var buf []int
	for k := range all {
		buf = t.taskPrefix(k, buf)
		all[k] = kc{k, t.prefixCost(buf)}
	}
	sort.Slice(all, func(i, j int) bool {
		if all[i].c != all[j].c {
			return all[i].c < all[j].c
		}
		return all[i].k < all[j].k
	})
	out := make([]int, t.ntask)
	for i, e := range all {
		out[i] = e.k
	}
	return out
}

// taskPrefix decodes task index k into a tour prefix (starting at city
// 0) using the factorial number system over the remaining cities.
func (t *TSP) taskPrefix(k int, out []int) []int {
	remaining := make([]int, 0, t.Cities-1)
	for c := 1; c < t.Cities; c++ {
		remaining = append(remaining, c)
	}
	out = append(out[:0], 0)
	radix := t.Cities - 1
	for d := 0; d < t.Depth; d++ {
		idx := k % radix
		k /= radix
		out = append(out, remaining[idx])
		remaining = append(remaining[:idx], remaining[idx+1:]...)
		radix--
	}
	return out
}

// Shape returns the resources TSP needs.
func (t *TSP) Shape() Shape {
	t.ntask = t.numTasks()
	l := NewLayout(PageWords)
	t.dist = l.Array(t.Cities * t.Cities)
	t.tasks = l.Array(t.ntask * (t.Depth + 1))
	t.qhead = l.Array(1)
	t.best = l.Array(1)
	t.path = l.Array(t.Cities)
	return Shape{SharedWords: l.Words(), Locks: 2}
}

const (
	tspQueueLock = 0
	tspBestLock  = 1
	tspNodeNS    = 50000
)

const tspInf = int64(1) << 40

// Body runs the parallel branch-and-bound search.
func (t *TSP) Body(p Proc) {
	p.BeginInit()
	if p.ID() == 0 {
		for i := 0; i < t.Cities; i++ {
			for j := 0; j < t.Cities; j++ {
				p.Store(t.dist+i*t.Cities+j, t.distVal(i, j))
			}
		}
		var buf []int
		for k := 0; k < t.ntask; k++ {
			buf = t.taskPrefix(k, buf)
			for d, c := range buf {
				p.Store(t.tasks+k*(t.Depth+1)+d, int64(c))
			}
		}
		p.Store(t.qhead, 0)
		p.Store(t.best, t.greedyBound())
	}
	p.EndInit()

	p.Warmup(func() {
		for a := t.dist; a < t.dist+t.Cities*t.Cities; a += PageWords / 2 {
			p.Load(a)
		}
		for a := t.tasks; a < t.tasks+t.ntask*(t.Depth+1); a += PageWords / 2 {
			p.Load(a)
		}
	})

	// Unsolved tours are dealt out in an interleaved round-robin: with
	// hundreds of prefixes per processor the load balances as well as
	// the original's central queue, whose fine-grained host-time racing
	// a virtual-time simulation cannot arbitrate fairly (the queue lock
	// itself is still exercised for every bound improvement). Each
	// round-robin step acquires the queue lock to publish progress, as
	// the original does when deleting a tour.
	s := &tspSearch{t: t, p: p}
	np, me := p.NProcs(), p.ID()
	for k := me; k < t.ntask; k += np {
		s.runTask(k)
	}
	p.Barrier()
}

// tspSearch is the per-processor DFS state. bestSeen caches the
// tightest bound this processor has observed; pruning and the decision
// to take the bound lock use it, so the lock is only acquired for
// genuine improvements (stale shared reads would otherwise drag every
// near-optimal leaf through the lock).
type tspSearch struct {
	t        *TSP
	p        Proc
	visited  [64]bool
	tour     [64]int
	nodes    int64
	bestSeen int64
}

func (s *tspSearch) runTask(k int) {
	t, p := s.t, s.p
	if v := p.Load(t.best); s.bestSeen == 0 || v < s.bestSeen {
		s.bestSeen = v
	}
	for i := range s.visited[:t.Cities] {
		s.visited[i] = false
	}
	cost := int64(0)
	for d := 0; d <= t.Depth; d++ {
		c := int(p.Load(t.tasks + k*(t.Depth+1) + d))
		s.tour[d] = c
		s.visited[c] = true
		if d > 0 {
			cost += p.Load(t.dist + s.tour[d-1]*t.Cities + c)
		}
	}
	s.nodes = 0
	s.dfs(t.Depth, cost)
	p.Compute(s.nodes*tspNodeNS, 0)
	p.PollN(s.nodes)
}

func (s *tspSearch) dfs(depth int, cost int64) {
	t, p := s.t, s.p
	s.nodes++
	if cost >= s.bestSeen {
		return
	}
	if depth == t.Cities-1 {
		total := cost + p.Load(t.dist+s.tour[depth]*t.Cities+0)
		if total >= s.bestSeen {
			return
		}
		s.bestSeen = total
		p.Lock(tspBestLock)
		if v := p.Load(t.best); total < v {
			p.Store(t.best, total)
			for i := 0; i < t.Cities; i++ {
				p.Store(t.path+i, int64(s.tour[i]))
			}
		} else if v < s.bestSeen {
			s.bestSeen = v
		}
		p.Unlock(tspBestLock)
		return
	}
	last := s.tour[depth]
	for c := 1; c < t.Cities; c++ {
		if s.visited[c] {
			continue
		}
		s.visited[c] = true
		s.tour[depth+1] = c
		s.dfs(depth+1, cost+p.Load(t.dist+last*t.Cities+c))
		s.visited[c] = false
	}
}

// runSeq solves the instance sequentially with the same DFS.
func (t *TSP) runSeq(m costs.Model) {
	if t.seqBest != 0 {
		return
	}
	t.Shape()
	clk := NewSeqClock(m)
	var visited [64]bool
	var tour [64]int
	best := t.greedyBound()
	nodes := int64(0)
	var dfs func(depth int, cost int64)
	dfs = func(depth int, cost int64) {
		nodes++
		if cost >= best {
			return
		}
		if depth == t.Cities-1 {
			total := cost + t.distVal(tour[depth], 0)
			if total < best {
				best = total
			}
			return
		}
		last := tour[depth]
		for c := 1; c < t.Cities; c++ {
			if visited[c] {
				continue
			}
			visited[c] = true
			tour[depth+1] = c
			dfs(depth+1, cost+t.distVal(last, c))
			visited[c] = false
		}
	}
	// The same task order the parallel search uses.
	var buf []int
	for k := 0; k < t.ntask; k++ {
		buf = t.taskPrefix(k, buf)
		for i := range visited[:t.Cities] {
			visited[i] = false
		}
		for d, c := range buf {
			tour[d] = c
			visited[c] = true
		}
		dfs(t.Depth, t.prefixCost(buf))
	}
	clk.Compute(nodes*tspNodeNS, 0)
	t.seqBest = best
	t.seqNS = clk.NS()
}

// SeqTime returns the sequential execution time.
func (t *TSP) SeqTime(m costs.Model) int64 {
	t.runSeq(m)
	return t.seqNS
}

// Verify checks that the parallel search found the optimal tour length
// and that the recorded tour is a valid permutation achieving it.
func (t *TSP) Verify(c Memory) error {
	t.runSeq(c.Model())
	got := c.ReadShared(t.best)
	if got != t.seqBest {
		return fmt.Errorf("TSP: best = %d, want %d", got, t.seqBest)
	}
	if c.ReadShared(t.path+1) == 0 {
		// No tour improved on the initial bound, so no path was
		// recorded; the optimum must equal the greedy tour's cost.
		if t.seqBest != t.greedyBound() {
			return fmt.Errorf("TSP: no tour recorded but greedy bound %d != optimal %d",
				t.greedyBound(), t.seqBest)
		}
		return nil
	}
	seen := make([]bool, t.Cities)
	prev := int(c.ReadShared(t.path))
	if prev != 0 {
		return fmt.Errorf("TSP: tour does not start at city 0")
	}
	seen[0] = true
	cost := int64(0)
	for i := 1; i < t.Cities; i++ {
		city := int(c.ReadShared(t.path + i))
		if city < 0 || city >= t.Cities || seen[city] {
			return fmt.Errorf("TSP: invalid tour city %d at position %d", city, i)
		}
		seen[city] = true
		cost += t.distVal(prev, city)
		prev = city
	}
	cost += t.distVal(prev, 0)
	if cost != t.seqBest {
		return fmt.Errorf("TSP: recorded tour costs %d, want %d", cost, t.seqBest)
	}
	return nil
}
