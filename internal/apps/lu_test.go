package apps

import (
	"testing"

	"cashmere/internal/core"
	"cashmere/internal/stats"
)

func TestLUSmallAllProtocols(t *testing.T) {
	checkApp(t, func() App { return SmallLU() })
}

func TestLUGrid(t *testing.T) {
	cases := map[int][2]int{
		1:  {1, 1},
		2:  {1, 2},
		4:  {2, 2},
		8:  {2, 4},
		16: {4, 4},
		24: {4, 6},
		32: {4, 8},
	}
	for np, want := range cases {
		pr, pc := luGrid(np)
		if pr*pc != np {
			t.Errorf("luGrid(%d) = %dx%d does not cover all procs", np, pr, pc)
		}
		if pr != want[0] || pc != want[1] {
			t.Errorf("luGrid(%d) = %dx%d, want %dx%d", np, pr, pc, want[0], want[1])
		}
	}
}

func TestLUOwnershipCoversAllBlocks(t *testing.T) {
	l := SmallLU()
	for _, np := range []int{1, 2, 4, 8} {
		counts := make([]int, np)
		nb := l.nb()
		for i := 0; i < nb; i++ {
			for j := 0; j < nb; j++ {
				o := l.owner(i, j, np)
				if o < 0 || o >= np {
					t.Fatalf("owner(%d,%d,%d) = %d out of range", i, j, np, o)
				}
				counts[o]++
			}
		}
		total := 0
		for _, c := range counts {
			total += c
		}
		if total != nb*nb {
			t.Errorf("np=%d: %d blocks assigned, want %d", np, total, nb*nb)
		}
	}
}

func TestLUFactorizationCorrect(t *testing.T) {
	// Multiply L*U back together from the sequential reference and
	// compare against the original matrix: a true end-to-end check
	// that the kernel really factors.
	l := SmallLU()
	l.runSeq(defaultCosts())
	n := l.N
	a := func(i, j int) float64 { return l.seq[l.addr(i, j)-l.mat] }
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			sum := 0.0
			for k := 0; k <= min(i, j); k++ {
				lik := a(i, k)
				if k == i {
					lik = 1.0 // unit diagonal of L
				}
				sum += lik * a(k, j)
			}
			if err := verifyF("LU recomposition", i*n+j, sum, l.initVal(i, j), 1e-9); err != nil {
				t.Fatal(err)
			}
		}
	}
}

func TestGaussSmallAllProtocols(t *testing.T) {
	checkApp(t, func() App { return SmallGauss() })
}

func TestGaussSolvesSystem(t *testing.T) {
	// The sequential solution must actually satisfy A*x = b.
	g := SmallGauss()
	g.runSeq(defaultCosts())
	n := g.N
	for i := 0; i < n; i++ {
		sum := 0.0
		for j := 0; j < n; j++ {
			sum += g.initVal(i, j) * g.seq[j]
		}
		if err := verifyF("Gauss residual", i, sum, g.initVal(i, n), 1e-6); err != nil {
			t.Fatal(err)
		}
	}
}

func TestGaussFlagsPerRow(t *testing.T) {
	g := SmallGauss()
	sh := g.Shape()
	if sh.Flags != g.N {
		t.Errorf("Flags = %d, want %d", sh.Flags, g.N)
	}
}

func TestGaussLockFlagAcquireCount(t *testing.T) {
	// Every non-owner performs one flag acquire per row.
	g := SmallGauss()
	cfg := smallConfig(core.TwoLevel)
	res, err := Run(g, cfg)
	if err != nil {
		t.Fatal(err)
	}
	want := int64(g.N * 3) // 4 procs: 3 waiters per row
	if got := res.Counts[stats.LockAcquires]; got < want {
		t.Errorf("flag acquires = %d, want >= %d", got, want)
	}
}
