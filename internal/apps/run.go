package apps

import (
	"fmt"

	"cashmere/internal/core"
	"cashmere/internal/costs"
)

// Run executes app on a fresh cluster built from cfg (whose SharedWords,
// Locks, Flags, and PageWords are filled in from the application's
// shape), verifies the result against the sequential reference, and
// returns the run's statistics.
func Run(app App, cfg core.Config) (core.Result, error) {
	shape := app.Shape()
	cfg.SharedWords = shape.SharedWords
	if cfg.SharedWords == 0 {
		cfg.SharedWords = 1
	}
	cfg.Locks = shape.Locks
	cfg.Flags = shape.Flags
	if cfg.PageWords == 0 {
		cfg.PageWords = PageWords
	}
	c, err := core.New(cfg)
	if err != nil {
		return core.Result{}, fmt.Errorf("apps: building cluster for %s: %w", app.Name(), err)
	}
	res := c.Run(func(p *core.Proc) { app.Body(p) })
	if err := app.Verify(c); err != nil {
		return res, fmt.Errorf("apps: %s failed verification under %v: %w", app.Name(), cfg.Protocol, err)
	}
	return res, nil
}

// Speedup returns the application's speedup for a run: sequential time
// over parallel virtual execution time.
func Speedup(app App, cfg core.Config, res core.Result) float64 {
	m := costs.Default()
	if cfg.Model != nil {
		m = *cfg.Model
	}
	if res.ExecNS <= 0 {
		return 0
	}
	return float64(app.SeqTime(m)) / float64(res.ExecNS)
}
