package directory

import (
	"strings"
	"testing"
	"testing/quick"

	"cashmere/internal/costs"
	"cashmere/internal/transport/simchan"
)

func TestWordPacking(t *testing.T) {
	l := Packed()
	var w Word
	if l.Perm(w) != Invalid {
		t.Errorf("zero word perm = %v", l.Perm(w))
	}
	if _, ok := l.Excl(w); ok {
		t.Error("zero word has exclusive holder")
	}
	if _, ok := l.Home(w); ok {
		t.Error("zero word has home")
	}
	if l.FirstTouched(w) {
		t.Error("zero word first-touched")
	}

	w = l.WithFirstTouched(l.WithHome(l.WithExcl(l.WithPerm(w, ReadWrite), 31), 17))
	if l.Perm(w) != ReadWrite {
		t.Errorf("perm = %v, want rw", l.Perm(w))
	}
	if p, ok := l.Excl(w); !ok || p != 31 {
		t.Errorf("excl = %d,%v want 31", p, ok)
	}
	if p, ok := l.Home(w); !ok || p != 17 {
		t.Errorf("home = %d,%v want 17", p, ok)
	}
	if !l.FirstTouched(w) {
		t.Error("first-touch bit lost")
	}

	w = l.WithPerm(l.ClearExcl(w), ReadOnly)
	if _, ok := l.Excl(w); ok {
		t.Error("ClearExcl did not clear")
	}
	if l.Perm(w) != ReadOnly {
		t.Errorf("perm after update = %v", l.Perm(w))
	}
	if p, ok := l.Home(w); !ok || p != 17 {
		t.Error("home lost by unrelated updates")
	}
}

func TestPackedLayoutMatchesPaperBits(t *testing.T) {
	// The packed layout is the hardware format of Section 2.3: perm in
	// bits 0-1, excl proc+1 in bits 2-7, home proc+1 in bits 8-13,
	// first-touch in bit 14. Encodings must be numerically identical to
	// that format (and to earlier revisions of this codebase, which used
	// it directly), not merely round-trip.
	l := Packed()
	w := l.Make(ReadWrite, 31, 17, true)
	want := Word(uint64(ReadWrite) | uint64(31+1)<<2 | uint64(17+1)<<8 | 1<<14)
	if w != want {
		t.Errorf("packed encoding = %#x, want %#x", uint64(w), uint64(want))
	}
	if w>>32 != 0 {
		t.Errorf("packed word %#x overflows 32 bits", uint64(w))
	}
	if l.Wide() {
		t.Error("Packed().Wide() = true")
	}
	if l.MaxProc() != 62 {
		t.Errorf("Packed().MaxProc() = %d, want 62", l.MaxProc())
	}
}

// layoutsUnderTest returns both layouts sized for the packed bound, so
// every boundary case runs against each.
func layoutsUnderTest(t *testing.T) map[string]Layout {
	t.Helper()
	wide, err := ChooseLayout(LayoutWide, 62)
	if err != nil {
		t.Fatalf("ChooseLayout(wide, 62): %v", err)
	}
	if !wide.Wide() {
		t.Fatal("forced wide layout is not wide")
	}
	return map[string]Layout{"packed": Packed(), "wide": wide}
}

func TestWordFieldBoundaries(t *testing.T) {
	// Round-trips at the field boundaries: proc 0 (the "none" encoding is
	// proc+1, so 0 must still read back), the packed maximum 62, and every
	// combination of home/excl/touched occupancy — in both layouts.
	for name, l := range layoutsUnderTest(t) {
		t.Run(name, func(t *testing.T) {
			for _, proc := range []int{0, 1, 61, 62, l.MaxProc()} {
				if proc > l.MaxProc() {
					continue
				}
				w := l.WithExcl(0, proc)
				if p, ok := l.Excl(w); !ok || p != proc {
					t.Errorf("excl %d roundtrip = %d,%v", proc, p, ok)
				}
				if p, ok := l.Home(w); ok {
					t.Errorf("excl %d leaked into home: %d", proc, p)
				}
				w = l.WithHome(0, proc)
				if p, ok := l.Home(w); !ok || p != proc {
					t.Errorf("home %d roundtrip = %d,%v", proc, p, ok)
				}
				if p, ok := l.Excl(w); ok {
					t.Errorf("home %d leaked into excl: %d", proc, p)
				}
			}
			// All occupancy combinations of (excl, home, touched).
			for _, excl := range []int{-1, 0, l.MaxProc()} {
				for _, home := range []int{-1, 0, l.MaxProc()} {
					for _, ft := range []bool{false, true} {
						w := l.Make(ReadOnly, excl, home, ft)
						if l.Perm(w) != ReadOnly {
							t.Errorf("perm lost at excl=%d home=%d ft=%v", excl, home, ft)
						}
						if p, ok := l.Excl(w); ok != (excl >= 0) || (ok && p != excl) {
							t.Errorf("excl=%d home=%d ft=%v: Excl = %d,%v", excl, home, ft, p, ok)
						}
						if p, ok := l.Home(w); ok != (home >= 0) || (ok && p != home) {
							t.Errorf("excl=%d home=%d ft=%v: Home = %d,%v", excl, home, ft, p, ok)
						}
						if l.FirstTouched(w) != ft {
							t.Errorf("excl=%d home=%d ft=%v: FirstTouched = %v", excl, home, ft, !ft)
						}
					}
				}
			}
		})
	}
}

func TestWordRangePanics(t *testing.T) {
	// Proc 63 overflows the packed 6-bit field (it holds proc+1);
	// every layout rejects MaxProc()+1 and negative ids.
	for name, l := range layoutsUnderTest(t) {
		over := l.MaxProc() + 1
		for _, f := range []func(){
			func() { l.WithExcl(0, over) },
			func() { l.WithExcl(0, -1) },
			func() { l.WithHome(0, over) },
			func() { l.WithHome(0, -1) },
		} {
			func() {
				defer func() {
					if recover() == nil {
						t.Errorf("%s: out-of-range proc id did not panic", name)
					}
				}()
				f()
			}()
		}
	}
	if Packed().MaxProc()+1 != 63 {
		t.Error("packed overflow boundary moved from 63")
	}
}

func TestChooseLayout(t *testing.T) {
	cases := []struct {
		kind    LayoutKind
		maxProc int
		wide    bool
		err     bool
	}{
		{LayoutAuto, 0, false, false},
		{LayoutAuto, 62, false, false},
		{LayoutAuto, 63, true, false},  // first id past the packed bound
		{LayoutAuto, 511, true, false}, // 128 nodes x 4
		{LayoutPacked, 62, false, false},
		{LayoutPacked, 63, false, true},
		{LayoutWide, 3, true, false},
		{LayoutWide, 1 << 20, true, false},
		{LayoutAuto, 1 << 62, false, true},
		{LayoutAuto, -1, false, true},
		{LayoutKind(42), 0, false, true},
	}
	for _, c := range cases {
		l, err := ChooseLayout(c.kind, c.maxProc)
		if (err != nil) != c.err {
			t.Errorf("ChooseLayout(%v, %d) error = %v, want err=%v", c.kind, c.maxProc, err, c.err)
			continue
		}
		if err != nil {
			continue
		}
		if l.Wide() != c.wide {
			t.Errorf("ChooseLayout(%v, %d).Wide() = %v, want %v", c.kind, c.maxProc, l.Wide(), c.wide)
		}
		if l.MaxProc() < c.maxProc {
			t.Errorf("ChooseLayout(%v, %d).MaxProc() = %d, too small", c.kind, c.maxProc, l.MaxProc())
		}
		// The chosen layout must actually round-trip the largest id.
		if p, ok := l.Excl(l.WithExcl(0, c.maxProc)); !ok || p != c.maxProc {
			t.Errorf("ChooseLayout(%v, %d): max id does not roundtrip", c.kind, c.maxProc)
		}
	}
	if _, err := ChooseLayout(LayoutPacked, 63); err == nil ||
		!strings.Contains(err.Error(), "62") {
		t.Error("packed overflow error does not name the 62-proc limit")
	}
	if LayoutAuto.String() != "auto" || LayoutPacked.String() != "packed" || LayoutWide.String() != "wide" {
		t.Error("LayoutKind names wrong")
	}
}

func TestWordRoundTripProperty(t *testing.T) {
	for name, l := range layoutsUnderTest(t) {
		mod := l.MaxProc() + 1
		f := func(perm uint8, excl, home uint16, ft bool) bool {
			p := Perm(perm % 3)
			e := int(excl) % mod
			h := int(home) % mod
			w := l.Make(p, e, h, ft)
			ge, ok1 := l.Excl(w)
			gh, ok2 := l.Home(w)
			return l.Perm(w) == p && ok1 && ge == e && ok2 && gh == h && l.FirstTouched(w) == ft
		}
		if err := quick.Check(f, nil); err != nil {
			t.Errorf("%s: %v", name, err)
		}
	}
}

func TestWordFormat(t *testing.T) {
	l := Packed()
	w := l.Make(ReadWrite, 3, 5, true)
	s := l.Format(w)
	for _, want := range []string{"rw", "excl=3", "home=5", "(ft)"} {
		if !strings.Contains(s, want) {
			t.Errorf("Format() = %q missing %q", s, want)
		}
	}
	if Invalid.String() != "inv" || ReadOnly.String() != "ro" {
		t.Error("Perm names wrong")
	}
	if !strings.Contains(Perm(9).String(), "9") {
		t.Error("unknown perm not rendered numerically")
	}
}

func ident(n int) int { return n }

func newTestGlobal(net *simchan.Network, pages, protoNodes int, physOf func(int) int, lockBased bool) *Global {
	return NewGlobal(net, Packed(), pages, protoNodes, physOf, lockBased)
}

func TestGlobalStoreLoad(t *testing.T) {
	net := simchan.New(4, costs.Default())
	g := newTestGlobal(net, 10, 4, ident, false)
	if g.Pages() != 10 || g.ProtoNodes() != 4 {
		t.Errorf("dims = %d,%d", g.Pages(), g.ProtoNodes())
	}
	if g.Layout() != Packed() {
		t.Error("Layout() does not report the constructor's layout")
	}
	w := g.Layout().Make(ReadWrite, -1, 2, false)
	done := g.Store(1, 7, w, 1000)
	if done <= 1000 {
		t.Errorf("Store globally performed at %d", done)
	}
	// Every node, including the writer (manual doubling), sees it.
	for reader := 0; reader < 4; reader++ {
		if got := g.Load(reader, 7, 1); got != w {
			t.Errorf("reader %d load = %v, want %v", reader, got, w)
		}
	}
	// Other pages and words untouched.
	if got := g.Load(0, 7, 2); got != 0 {
		t.Errorf("unrelated word = %v", got)
	}
	if got := g.Load(0, 6, 1); got != 0 {
		t.Errorf("unrelated page = %v", got)
	}
}

func TestGlobalSharers(t *testing.T) {
	net := simchan.New(4, costs.Default())
	g := newTestGlobal(net, 4, 4, ident, false)
	l := g.Layout()
	g.Store(0, 2, l.WithPerm(0, ReadOnly), 0)
	g.Store(3, 2, l.WithPerm(0, ReadWrite), 0)
	if got := g.Sharers(1, 2, -1); got != 2 {
		t.Errorf("Sharers(all) = %d, want 2", got)
	}
	if got := g.Sharers(1, 2, 0); got != 1 {
		t.Errorf("Sharers(except 0) = %d, want 1", got)
	}
	if got := g.Sharers(1, 2, 3); got != 1 {
		t.Errorf("Sharers(except 3) = %d, want 1", got)
	}
	if got := g.Sharers(1, 1, -1); got != 0 {
		t.Errorf("Sharers(untouched page) = %d", got)
	}
}

func TestGlobalExclHolder(t *testing.T) {
	net := simchan.New(4, costs.Default())
	g := newTestGlobal(net, 4, 4, ident, false)
	if _, _, ok := g.ExclHolder(0, 1); ok {
		t.Error("found exclusive holder on empty directory")
	}
	g.Store(2, 1, g.Layout().Make(ReadWrite, 9, -1, false), 0)
	node, proc, ok := g.ExclHolder(0, 1)
	if !ok || node != 2 || proc != 9 {
		t.Errorf("ExclHolder = %d,%d,%v want 2,9,true", node, proc, ok)
	}
}

func TestGlobalExclHolderOwn(t *testing.T) {
	net := simchan.New(4, costs.Default())
	g := newTestGlobal(net, 4, 4, ident, false)
	if _, _, ok := g.ExclHolderOwn(1); ok {
		t.Error("found exclusive holder on empty directory")
	}
	// A normal Store is seen by both scans.
	g.Store(2, 1, g.Layout().Make(ReadWrite, 9, -1, false), 0)
	if node, proc, ok := g.ExclHolderOwn(1); !ok || node != 2 || proc != 9 {
		t.Errorf("ExclHolderOwn = %d,%d,%v want 2,9,true", node, proc, ok)
	}
	// A word whose broadcast was not delivered — present only in the
	// owner's doubled replica — is found by the owner-replica scan but
	// invisible to an observer scanning replica 0.
	w := g.Layout().Make(ReadWrite, 13, -1, false)
	g.region.Poke(3, g.off(2, 3), int64(w))
	if node, proc, ok := g.ExclHolderOwn(2); !ok || node != 3 || proc != 13 {
		t.Errorf("ExclHolderOwn(undelivered) = %d,%d,%v want 3,13,true", node, proc, ok)
	}
	if _, _, ok := g.ExclHolder(0, 2); ok {
		t.Error("replica-0 scan saw a word whose broadcast was never delivered")
	}
}

func TestGlobalHome(t *testing.T) {
	net := simchan.New(4, costs.Default())
	g := newTestGlobal(net, 4, 4, ident, false)
	if _, ok := g.Home(0, 3); ok {
		t.Error("found home on empty directory")
	}
	g.Store(1, 3, g.Layout().WithHome(0, 6), 0)
	if p, ok := g.Home(2, 3); !ok || p != 6 {
		t.Errorf("Home = %d,%v want 6,true", p, ok)
	}
}

func TestGlobalLockBased(t *testing.T) {
	net := simchan.New(2, costs.Default())
	g := newTestGlobal(net, 3, 2, ident, true)
	if !g.LockBased() {
		t.Error("LockBased() = false")
	}
	l := g.PageLock(1)
	if l == nil {
		t.Fatal("PageLock returned nil for lock-based directory")
	}
	held := l.Acquire(0, 5)
	l.Release(held + 100)
	got := l.Acquire(held+10, 5) // overlapping arrival waits
	if got != held+105 {
		t.Errorf("overlapping acquire held at %d, want %d", got, held+105)
	}
	l.Release(got)

	gf := newTestGlobal(net, 3, 2, ident, false)
	if gf.PageLock(0) != nil {
		t.Error("lock-free directory returned a page lock")
	}
}

func TestGlobalOneLevelMapping(t *testing.T) {
	// One-level protocols: 8 protocol nodes (processors) on 2 physical
	// nodes; reads must hit the reader's physical replica.
	net := simchan.New(2, costs.Default())
	physOf := func(proc int) int { return proc / 4 }
	g := newTestGlobal(net, 2, 8, physOf, false)
	g.Store(5, 0, g.Layout().WithPerm(0, ReadOnly), 0) // proc 5 lives on phys node 1
	for reader := 0; reader < 8; reader++ {
		if got := g.Load(reader, 0, 5); g.Layout().Perm(got) != ReadOnly {
			t.Errorf("proc %d sees %v", reader, got)
		}
	}
}

func TestGlobalWideLayoutLargeCluster(t *testing.T) {
	// A 128-node cluster of 4-way SMPs (511 = largest proc id) cannot use
	// the packed layout; the wide words must survive the region's int64
	// storage and round-trip through Store/Load.
	lay, err := ChooseLayout(LayoutAuto, 511)
	if err != nil {
		t.Fatal(err)
	}
	if !lay.Wide() {
		t.Fatal("512-proc cluster chose the packed layout")
	}
	net := simchan.New(128, costs.Default())
	g := NewGlobal(net, lay, 4, 128, ident, false)
	w := lay.Make(ReadWrite, 511, 509, true)
	g.Store(127, 3, w, 0)
	got := g.Load(0, 3, 127)
	if got != w {
		t.Errorf("wide word load = %#x, want %#x", uint64(got), uint64(w))
	}
	if p, ok := lay.Excl(got); !ok || p != 511 {
		t.Errorf("wide excl = %d,%v", p, ok)
	}
	node, proc, ok := g.ExclHolder(5, 3)
	if !ok || node != 127 || proc != 511 {
		t.Errorf("ExclHolder = %d,%d,%v", node, proc, ok)
	}
}

func TestLayoutBoundaryPackedToWide(t *testing.T) {
	// The packed layout's 6-bit fields hold proc+1, so id 62 is the last
	// packed topology and 63 the first wide one. Auto selection must flip
	// exactly there, and the first wide layout must still round-trip the
	// id the packed layout just rejected.
	atBound, err := ChooseLayout(LayoutAuto, 62)
	if err != nil {
		t.Fatalf("ChooseLayout(auto, 62): %v", err)
	}
	if atBound != Packed() {
		t.Errorf("auto layout at 62 procs is not the packed layout")
	}
	past, err := ChooseLayout(LayoutAuto, 63)
	if err != nil {
		t.Fatalf("ChooseLayout(auto, 63): %v", err)
	}
	if !past.Wide() {
		t.Fatal("auto layout at 63 procs is not wide")
	}
	if past.MaxProc() < 63 {
		t.Errorf("first wide layout MaxProc = %d, cannot hold 63", past.MaxProc())
	}
	if p, ok := past.Excl(past.WithExcl(0, 63)); !ok || p != 63 {
		t.Errorf("first wide layout: excl 63 roundtrip = %d,%v", p, ok)
	}
	if _, err := ChooseLayout(LayoutPacked, 63); err == nil {
		t.Error("packed layout accepted proc id 63")
	}
}

func TestPackedWideEquivalenceAtBoundary(t *testing.T) {
	// At exactly the packed bound (62 procs) both layouts are legal; their
	// raw encodings differ but every decoded field must agree for every
	// word either can represent. A divergence here would mean the two
	// directory formats disagree about protocol state on the same topology.
	packed := Packed()
	wide, err := ChooseLayout(LayoutWide, 62)
	if err != nil {
		t.Fatal(err)
	}
	for _, perm := range []Perm{Invalid, ReadOnly, ReadWrite} {
		for _, excl := range []int{-1, 0, 1, 61, 62} {
			for _, home := range []int{-1, 0, 62} {
				for _, ft := range []bool{false, true} {
					pw := packed.Make(perm, excl, home, ft)
					ww := wide.Make(perm, excl, home, ft)
					if packed.Perm(pw) != wide.Perm(ww) {
						t.Errorf("perm disagrees at perm=%v excl=%d home=%d ft=%v", perm, excl, home, ft)
					}
					pe, pok := packed.Excl(pw)
					we, wok := wide.Excl(ww)
					if pok != wok || (pok && pe != we) {
						t.Errorf("excl disagrees at perm=%v excl=%d home=%d ft=%v: packed %d,%v wide %d,%v",
							perm, excl, home, ft, pe, pok, we, wok)
					}
					ph, pok := packed.Home(pw)
					wh, wok := wide.Home(ww)
					if pok != wok || (pok && ph != wh) {
						t.Errorf("home disagrees at perm=%v excl=%d home=%d ft=%v: packed %d,%v wide %d,%v",
							perm, excl, home, ft, ph, pok, wh, wok)
					}
					if packed.FirstTouched(pw) != wide.FirstTouched(ww) {
						t.Errorf("first-touch disagrees at perm=%v excl=%d home=%d ft=%v", perm, excl, home, ft)
					}
					if packed.Format(pw) != wide.Format(ww) {
						t.Errorf("Format disagrees: packed %q wide %q", packed.Format(pw), wide.Format(ww))
					}
				}
			}
		}
	}
}

func TestGlobalPackedWideEquivalenceStoreLoad(t *testing.T) {
	// The same Store sequence against a packed-backed and a wide-backed
	// directory at the 62-proc boundary must leave every reader decoding
	// identical protocol state from both.
	wide, err := ChooseLayout(LayoutWide, 62)
	if err != nil {
		t.Fatal(err)
	}
	net := simchan.New(4, costs.Default())
	gp := NewGlobal(net, Packed(), 3, 4, ident, false)
	gw := NewGlobal(net, wide, 3, 4, ident, false)
	stores := []struct {
		writer, page int
		perm         Perm
		excl, home   int
		ft           bool
	}{
		{0, 0, ReadOnly, -1, 62, false},
		{3, 0, ReadWrite, 62, -1, false},
		{1, 1, ReadWrite, -1, 0, true},
		{2, 2, Invalid, -1, -1, false},
		{3, 0, ReadOnly, -1, -1, false}, // overwrite drops the excl holder
	}
	for _, s := range stores {
		gp.Store(s.writer, s.page, Packed().Make(s.perm, s.excl, s.home, s.ft), 0)
		gw.Store(s.writer, s.page, wide.Make(s.perm, s.excl, s.home, s.ft), 0)
	}
	for reader := 0; reader < 4; reader++ {
		for page := 0; page < 3; page++ {
			for node := 0; node < 4; node++ {
				pw := gp.Load(reader, page, node)
				ww := gw.Load(reader, page, node)
				if Packed().Format(pw) != wide.Format(ww) {
					t.Errorf("reader %d page %d node %d: packed %q, wide %q",
						reader, page, node, Packed().Format(pw), wide.Format(ww))
				}
			}
			pn, pp, pok := gp.ExclHolder(reader, page)
			wn, wp, wok := gw.ExclHolder(reader, page)
			if pn != wn || pp != wp || pok != wok {
				t.Errorf("reader %d page %d: ExclHolder packed %d,%d,%v wide %d,%d,%v",
					reader, page, pn, pp, pok, wn, wp, wok)
			}
			if gp.Sharers(reader, page, -1) != gw.Sharers(reader, page, -1) {
				t.Errorf("reader %d page %d: sharer counts disagree", reader, page)
			}
		}
	}
}

func TestGlobalExclHolderOwnWideLayout(t *testing.T) {
	// ExclHolderOwn under the wide layout, including a processor id the
	// packed fields cannot encode and a word present only in the owner's
	// doubled replica (broadcast not yet delivered).
	lay, err := ChooseLayout(LayoutAuto, 511)
	if err != nil {
		t.Fatal(err)
	}
	if !lay.Wide() {
		t.Fatal("511-proc cluster chose the packed layout")
	}
	net := simchan.New(4, costs.Default())
	g := NewGlobal(net, lay, 4, 4, ident, false)
	if _, _, ok := g.ExclHolderOwn(1); ok {
		t.Error("found exclusive holder on empty directory")
	}
	g.Store(2, 1, lay.Make(ReadWrite, 300, -1, false), 0)
	if node, proc, ok := g.ExclHolderOwn(1); !ok || node != 2 || proc != 300 {
		t.Errorf("ExclHolderOwn = %d,%d,%v want 2,300,true", node, proc, ok)
	}
	// Owner-replica-only word with a proc id past the packed bound.
	w := lay.Make(ReadWrite, 511, -1, false)
	g.region.Poke(3, g.off(2, 3), int64(w))
	if node, proc, ok := g.ExclHolderOwn(2); !ok || node != 3 || proc != 511 {
		t.Errorf("ExclHolderOwn(undelivered) = %d,%d,%v want 3,511,true", node, proc, ok)
	}
	if _, _, ok := g.ExclHolder(0, 2); ok {
		t.Error("replica-0 scan saw a word whose broadcast was never delivered")
	}
}

func TestLClock(t *testing.T) {
	var c LClock
	if c.Now() != 0 {
		t.Errorf("new clock = %d", c.Now())
	}
	if got := c.Tick(); got != 1 {
		t.Errorf("first Tick = %d", got)
	}
	if got := c.Tick(); got != 2 {
		t.Errorf("second Tick = %d", got)
	}
	if c.Now() != 2 {
		t.Errorf("Now = %d", c.Now())
	}
}
