package directory

import (
	"strings"
	"testing"
	"testing/quick"

	"cashmere/internal/costs"
	"cashmere/internal/memchan"
)

func TestWordPacking(t *testing.T) {
	var w Word
	if w.Perm() != Invalid {
		t.Errorf("zero word perm = %v", w.Perm())
	}
	if _, ok := w.Excl(); ok {
		t.Error("zero word has exclusive holder")
	}
	if _, ok := w.Home(); ok {
		t.Error("zero word has home")
	}
	if w.FirstTouched() {
		t.Error("zero word first-touched")
	}

	w = w.WithPerm(ReadWrite).WithExcl(31).WithHome(17).WithFirstTouched()
	if w.Perm() != ReadWrite {
		t.Errorf("perm = %v, want rw", w.Perm())
	}
	if p, ok := w.Excl(); !ok || p != 31 {
		t.Errorf("excl = %d,%v want 31", p, ok)
	}
	if p, ok := w.Home(); !ok || p != 17 {
		t.Errorf("home = %d,%v want 17", p, ok)
	}
	if !w.FirstTouched() {
		t.Error("first-touch bit lost")
	}

	w = w.ClearExcl().WithPerm(ReadOnly)
	if _, ok := w.Excl(); ok {
		t.Error("ClearExcl did not clear")
	}
	if w.Perm() != ReadOnly {
		t.Errorf("perm after update = %v", w.Perm())
	}
	if p, ok := w.Home(); !ok || p != 17 {
		t.Error("home lost by unrelated updates")
	}
}

func TestWordProcZeroIsValid(t *testing.T) {
	w := Word(0).WithExcl(0).WithHome(0)
	if p, ok := w.Excl(); !ok || p != 0 {
		t.Errorf("excl proc 0 roundtrip = %d,%v", p, ok)
	}
	if p, ok := w.Home(); !ok || p != 0 {
		t.Errorf("home proc 0 roundtrip = %d,%v", p, ok)
	}
}

func TestWordRangePanics(t *testing.T) {
	for _, f := range []func(){
		func() { Word(0).WithExcl(63) },
		func() { Word(0).WithExcl(-1) },
		func() { Word(0).WithHome(63) },
		func() { Word(0).WithHome(-1) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("out-of-range proc id did not panic")
				}
			}()
			f()
		}()
	}
}

func TestWordRoundTripProperty(t *testing.T) {
	f := func(perm uint8, excl, home uint8, ft bool) bool {
		p := Perm(perm % 3)
		e := int(excl) % 63
		h := int(home) % 63
		w := Word(0).WithPerm(p).WithExcl(e).WithHome(h)
		if ft {
			w = w.WithFirstTouched()
		}
		ge, ok1 := w.Excl()
		gh, ok2 := w.Home()
		return w.Perm() == p && ok1 && ge == e && ok2 && gh == h && w.FirstTouched() == ft
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestWordString(t *testing.T) {
	w := Word(0).WithPerm(ReadWrite).WithExcl(3).WithHome(5).WithFirstTouched()
	s := w.String()
	for _, want := range []string{"rw", "excl=3", "home=5", "(ft)"} {
		if !strings.Contains(s, want) {
			t.Errorf("String() = %q missing %q", s, want)
		}
	}
	if Invalid.String() != "inv" || ReadOnly.String() != "ro" {
		t.Error("Perm names wrong")
	}
	if !strings.Contains(Perm(9).String(), "9") {
		t.Error("unknown perm not rendered numerically")
	}
}

func ident(n int) int { return n }

func TestGlobalStoreLoad(t *testing.T) {
	net := memchan.New(4, costs.Default())
	g := NewGlobal(net, 10, 4, ident, false)
	if g.Pages() != 10 || g.ProtoNodes() != 4 {
		t.Errorf("dims = %d,%d", g.Pages(), g.ProtoNodes())
	}
	w := Word(0).WithPerm(ReadWrite).WithHome(2)
	done := g.Store(1, 7, w, 1000)
	if done <= 1000 {
		t.Errorf("Store globally performed at %d", done)
	}
	// Every node, including the writer (manual doubling), sees it.
	for reader := 0; reader < 4; reader++ {
		if got := g.Load(reader, 7, 1); got != w {
			t.Errorf("reader %d load = %v, want %v", reader, got, w)
		}
	}
	// Other pages and words untouched.
	if got := g.Load(0, 7, 2); got != 0 {
		t.Errorf("unrelated word = %v", got)
	}
	if got := g.Load(0, 6, 1); got != 0 {
		t.Errorf("unrelated page = %v", got)
	}
}

func TestGlobalSharers(t *testing.T) {
	net := memchan.New(4, costs.Default())
	g := NewGlobal(net, 4, 4, ident, false)
	g.Store(0, 2, Word(0).WithPerm(ReadOnly), 0)
	g.Store(3, 2, Word(0).WithPerm(ReadWrite), 0)
	if got := g.Sharers(1, 2, -1); got != 2 {
		t.Errorf("Sharers(all) = %d, want 2", got)
	}
	if got := g.Sharers(1, 2, 0); got != 1 {
		t.Errorf("Sharers(except 0) = %d, want 1", got)
	}
	if got := g.Sharers(1, 2, 3); got != 1 {
		t.Errorf("Sharers(except 3) = %d, want 1", got)
	}
	if got := g.Sharers(1, 1, -1); got != 0 {
		t.Errorf("Sharers(untouched page) = %d", got)
	}
}

func TestGlobalExclHolder(t *testing.T) {
	net := memchan.New(4, costs.Default())
	g := NewGlobal(net, 4, 4, ident, false)
	if _, _, ok := g.ExclHolder(0, 1); ok {
		t.Error("found exclusive holder on empty directory")
	}
	g.Store(2, 1, Word(0).WithPerm(ReadWrite).WithExcl(9), 0)
	node, proc, ok := g.ExclHolder(0, 1)
	if !ok || node != 2 || proc != 9 {
		t.Errorf("ExclHolder = %d,%d,%v want 2,9,true", node, proc, ok)
	}
}

func TestGlobalExclHolderOwn(t *testing.T) {
	net := memchan.New(4, costs.Default())
	g := NewGlobal(net, 4, 4, ident, false)
	if _, _, ok := g.ExclHolderOwn(1); ok {
		t.Error("found exclusive holder on empty directory")
	}
	// A normal Store is seen by both scans.
	g.Store(2, 1, Word(0).WithPerm(ReadWrite).WithExcl(9), 0)
	if node, proc, ok := g.ExclHolderOwn(1); !ok || node != 2 || proc != 9 {
		t.Errorf("ExclHolderOwn = %d,%d,%v want 2,9,true", node, proc, ok)
	}
	// A word whose broadcast was not delivered — present only in the
	// owner's doubled replica — is found by the owner-replica scan but
	// invisible to an observer scanning replica 0.
	w := Word(0).WithPerm(ReadWrite).WithExcl(13)
	g.region.Poke(3, g.off(2, 3), int64(w))
	if node, proc, ok := g.ExclHolderOwn(2); !ok || node != 3 || proc != 13 {
		t.Errorf("ExclHolderOwn(undelivered) = %d,%d,%v want 3,13,true", node, proc, ok)
	}
	if _, _, ok := g.ExclHolder(0, 2); ok {
		t.Error("replica-0 scan saw a word whose broadcast was never delivered")
	}
}

func TestGlobalHome(t *testing.T) {
	net := memchan.New(4, costs.Default())
	g := NewGlobal(net, 4, 4, ident, false)
	if _, ok := g.Home(0, 3); ok {
		t.Error("found home on empty directory")
	}
	g.Store(1, 3, Word(0).WithHome(6), 0)
	if p, ok := g.Home(2, 3); !ok || p != 6 {
		t.Errorf("Home = %d,%v want 6,true", p, ok)
	}
}

func TestGlobalLockBased(t *testing.T) {
	net := memchan.New(2, costs.Default())
	g := NewGlobal(net, 3, 2, ident, true)
	if !g.LockBased() {
		t.Error("LockBased() = false")
	}
	l := g.PageLock(1)
	if l == nil {
		t.Fatal("PageLock returned nil for lock-based directory")
	}
	held := l.Acquire(0, 5)
	l.Release(held + 100)
	got := l.Acquire(held+10, 5) // overlapping arrival waits
	if got != held+105 {
		t.Errorf("overlapping acquire held at %d, want %d", got, held+105)
	}
	l.Release(got)

	gf := NewGlobal(net, 3, 2, ident, false)
	if gf.PageLock(0) != nil {
		t.Error("lock-free directory returned a page lock")
	}
}

func TestGlobalOneLevelMapping(t *testing.T) {
	// One-level protocols: 8 protocol nodes (processors) on 2 physical
	// nodes; reads must hit the reader's physical replica.
	net := memchan.New(2, costs.Default())
	physOf := func(proc int) int { return proc / 4 }
	g := NewGlobal(net, 2, 8, physOf, false)
	g.Store(5, 0, Word(0).WithPerm(ReadOnly), 0) // proc 5 lives on phys node 1
	for reader := 0; reader < 8; reader++ {
		if got := g.Load(reader, 0, 5); got.Perm() != ReadOnly {
			t.Errorf("proc %d sees %v", reader, got)
		}
	}
}

func TestLClock(t *testing.T) {
	var c LClock
	if c.Now() != 0 {
		t.Errorf("new clock = %d", c.Now())
	}
	if got := c.Tick(); got != 1 {
		t.Errorf("first Tick = %d", got)
	}
	if got := c.Tick(); got != 2 {
		t.Errorf("second Tick = %d", got)
	}
	if c.Now() != 2 {
		t.Errorf("Now = %d", c.Now())
	}
}
