// Package directory implements the distributed page directory of the
// Cashmere protocols (paper Section 2.3).
//
// Each shared page has one directory entry consisting of one word per
// protocol node. Crucially, each word is written by exactly one node —
// the node whose view it records — so no global lock is needed to keep
// the entry consistent: expanding the entry to a word per node is the
// paper's alternative to compressing it into a single globally-locked
// word. The entry is replicated on every physical node by Memory Channel
// broadcast; because the directory region does not use loop-back, a
// writer must manually "double" its write into its own replica.
//
// A word packs (paper layout, Section 2.3):
//
//	bits 0-1   loosest permission for the page on that node
//	bits 2-7   processor holding the page in exclusive mode, plus one
//	bits 8-13  home processor, plus one (redundant across words)
//	bit  14    home was assigned by first-touch (vs round-robin default)
//
// The one-level protocols use the same machinery with one word per
// processor, and the lock-based ablation (Section 3.3.5) serializes
// updates behind per-page global locks.
//
// # Concurrency
//
// All methods are safe for concurrent use. Reads are lock-free atomic
// loads from the caller's local replica. The soundness of concurrent
// Store calls rests on the single-writer discipline above: node x only
// ever stores words at index x of an entry, so two Stores to the same
// word never race at the protocol level (the simulator's atomics make
// any accidental violation a stale read, not a torn one). Under the
// lock-based ablation callers must bracket Store with the page's
// PageLock; the directory itself does not acquire it.
package directory

import (
	"fmt"
	"sync/atomic"

	"cashmere/internal/memchan"
	"cashmere/internal/sim"
)

// Perm is a page access permission, from most to least restrictive.
type Perm uint8

// Page permissions.
const (
	Invalid Perm = iota
	ReadOnly
	ReadWrite
)

// String returns a short name for the permission.
func (p Perm) String() string {
	switch p {
	case Invalid:
		return "inv"
	case ReadOnly:
		return "ro"
	case ReadWrite:
		return "rw"
	default:
		return fmt.Sprintf("Perm(%d)", uint8(p))
	}
}

// Word is one node's packed 32-bit view of a page.
type Word uint32

const (
	permMask   = 0x3
	exclShift  = 2
	exclMask   = 0x3f << exclShift
	homeShift  = 8
	homeMask   = 0x3f << homeShift
	touchedBit = 1 << 14
	maxProc    = 62 // 6-bit field holds proc+1
)

// Perm returns the loosest permission any processor on the node holds.
func (w Word) Perm() Perm { return Perm(w & permMask) }

// WithPerm returns w with the permission field set to p.
func (w Word) WithPerm(p Perm) Word { return (w &^ permMask) | Word(p)&permMask }

// Excl returns the processor holding the page exclusively on this node,
// if any.
func (w Word) Excl() (proc int, ok bool) {
	v := int(w&exclMask) >> exclShift
	return v - 1, v != 0
}

// WithExcl returns w recording proc as the exclusive holder.
func (w Word) WithExcl(proc int) Word {
	if proc < 0 || proc > maxProc {
		panic(fmt.Sprintf("directory: exclusive proc %d out of range", proc))
	}
	return (w &^ exclMask) | Word(proc+1)<<exclShift
}

// ClearExcl returns w with no exclusive holder.
func (w Word) ClearExcl() Word { return w &^ exclMask }

// Home returns the home processor recorded in this word, if set.
func (w Word) Home() (proc int, ok bool) {
	v := int(w&homeMask) >> homeShift
	return v - 1, v != 0
}

// WithHome returns w recording proc as the home processor.
func (w Word) WithHome(proc int) Word {
	if proc < 0 || proc > maxProc {
		panic(fmt.Sprintf("directory: home proc %d out of range", proc))
	}
	return (w &^ homeMask) | Word(proc+1)<<homeShift
}

// FirstTouched reports whether the home was assigned by the first-touch
// heuristic rather than the round-robin default.
func (w Word) FirstTouched() bool { return w&touchedBit != 0 }

// WithFirstTouched returns w with the first-touch bit set.
func (w Word) WithFirstTouched() Word { return w | touchedBit }

// String renders the word for debugging.
func (w Word) String() string {
	s := w.Perm().String()
	if p, ok := w.Excl(); ok {
		s += fmt.Sprintf(" excl=%d", p)
	}
	if p, ok := w.Home(); ok {
		s += fmt.Sprintf(" home=%d", p)
		if w.FirstTouched() {
			s += "(ft)"
		}
	}
	return s
}

// Global is the distributed, replicated page directory. Words are
// indexed by (page, protocol node); physOf maps protocol nodes to the
// physical nodes of the Memory Channel (identity for two-level
// protocols; proc-to-SMP mapping for one-level protocols, where every
// processor is its own protocol node).
type Global struct {
	region     *memchan.Region
	pages      int
	protoNodes int
	physOf     func(int) int
	lockBased  bool
	locks      []sim.VLock
}

// NewGlobal creates a directory for pages pages and protoNodes protocol
// nodes on the given network. When lockBased is true, updates must be
// bracketed by Lock/Unlock on the page's global lock (the Section 3.3.5
// ablation).
func NewGlobal(net *memchan.Network, pages, protoNodes int, physOf func(int) int, lockBased bool) *Global {
	g := &Global{
		region:     net.NewRegion(pages*protoNodes, false),
		pages:      pages,
		protoNodes: protoNodes,
		physOf:     physOf,
		lockBased:  lockBased,
	}
	if lockBased {
		g.locks = make([]sim.VLock, pages)
	}
	return g
}

// Pages returns the number of pages the directory covers.
func (g *Global) Pages() int { return g.pages }

// ProtoNodes returns the number of protocol nodes per entry.
func (g *Global) ProtoNodes() int { return g.protoNodes }

// LockBased reports whether updates require the per-page global lock.
func (g *Global) LockBased() bool { return g.lockBased }

// PageLock returns the global lock for page under the lock-based
// variant, or nil for the lock-free directory.
func (g *Global) PageLock(page int) *sim.VLock {
	if !g.lockBased {
		return nil
	}
	return &g.locks[page]
}

func (g *Global) off(page, protoNode int) int {
	return page*g.protoNodes + protoNode
}

// Load returns protocol node protoNode's word for page, as read by a
// processor on the given protocol node reader (reads always hit the
// local replica).
func (g *Global) Load(reader, page, protoNode int) Word {
	return Word(g.region.Read(g.physOf(reader), g.off(page, protoNode)))
}

// Store broadcasts writer's own word for page at virtual time now and
// doubles it into the local replica. It returns the time the update is
// globally performed. Only the word's owning node may store it; that
// discipline is what makes the directory lock-free.
func (g *Global) Store(writer, page int, w Word, now int64) int64 {
	phys := g.physOf(writer)
	off := g.off(page, writer)
	done := g.region.Write(phys, off, int64(w), now)
	g.region.Poke(phys, off, int64(w))
	return done
}

// Sharers returns the number of protocol nodes with a valid (read-only
// or read-write) view of page, excluding except (pass a negative except
// to count all).
func (g *Global) Sharers(reader, page, except int) int {
	n := 0
	for node := 0; node < g.protoNodes; node++ {
		if node == except {
			continue
		}
		if g.Load(reader, page, node).Perm() != Invalid {
			n++
		}
	}
	return n
}

// ExclHolder scans page's entry for an exclusive holder and returns the
// protocol node and processor holding it, as seen from reader's replica.
func (g *Global) ExclHolder(reader, page int) (node, proc int, ok bool) {
	for n := 0; n < g.protoNodes; n++ {
		if p, has := g.Load(reader, page, n).Excl(); has {
			return n, p, true
		}
	}
	return 0, 0, false
}

// ExclHolderOwn scans page's entry for an exclusive holder, reading
// each node's word through that node's own replica. The directory
// region has no loop-back, so a node's doubled local copy is the
// authoritative version of its word; any other replica only sees it
// once the broadcast has been delivered. Out-of-band inspection (such
// as result validation after a run) must use this rather than trusting
// one observer's replica for every word.
func (g *Global) ExclHolderOwn(page int) (node, proc int, ok bool) {
	for n := 0; n < g.protoNodes; n++ {
		if p, has := g.Load(n, page, n).Excl(); has {
			return n, p, true
		}
	}
	return 0, 0, false
}

// Home returns the home processor of page as recorded in the directory
// (any node's word; home indications are redundant), and whether one is
// recorded.
func (g *Global) Home(reader, page int) (proc int, ok bool) {
	for n := 0; n < g.protoNodes; n++ {
		if p, has := g.Load(reader, page, n).Home(); has {
			return p, true
		}
	}
	return 0, false
}

// LClock is a node's protocol logical clock (paper Section 2.2:
// incremented on page faults, page flushes, acquires and releases). It
// is shared by the node's processors and updated with atomic operations,
// standing in for the paper's ll/sc sequences.
type LClock struct {
	v atomic.Int64
}

// Tick increments the clock and returns the new value.
func (c *LClock) Tick() int64 { return c.v.Add(1) }

// Now returns the current logical time.
func (c *LClock) Now() int64 { return c.v.Load() }
