// Package directory implements the distributed page directory of the
// Cashmere protocols (paper Section 2.3).
//
// Each shared page has one directory entry consisting of one word per
// protocol node. Crucially, each word is written by exactly one node —
// the node whose view it records — so no global lock is needed to keep
// the entry consistent: expanding the entry to a word per node is the
// paper's alternative to compressing it into a single globally-locked
// word. The entry is replicated on every physical node by Memory Channel
// broadcast; because the directory region does not use loop-back, a
// writer must manually "double" its write into its own replica.
//
// # Word layouts
//
// How a word packs its fields is described by a Layout, derived from the
// cluster topology. The packed legacy layout is the paper's 32-bit
// format (Section 2.3), bit-identical to the original platform's and the
// fast default whenever every processor id fits its 6-bit fields:
//
//	bits 0-1   loosest permission for the page on that node
//	bits 2-7   processor holding the page in exclusive mode, plus one
//	bits 8-13  home processor, plus one (redundant across words)
//	bit  14    home was assigned by first-touch (vs round-robin default)
//
// Clusters with more than 62 processors use the wide layout: the same
// field order with processor fields widened to whatever the topology
// needs (at least 7 bits), still within the one 64-bit word the
// simulated region stores. Widening the word rather than adding words
// per entry preserves the single-writer discipline unchanged: every
// word still has exactly one writing node, whatever its width.
//
// The one-level protocols use the same machinery with one word per
// processor, and the lock-based ablation (Section 3.3.5) serializes
// updates behind per-page global locks.
//
// # Concurrency
//
// All methods are safe for concurrent use. Reads are lock-free atomic
// loads from the caller's local replica. The soundness of concurrent
// Store calls rests on the single-writer discipline above: node x only
// ever stores words at index x of an entry, so two Stores to the same
// word never race at the protocol level (the simulator's atomics make
// any accidental violation a stale read, not a torn one). Under the
// lock-based ablation callers must bracket Store with the page's
// PageLock; the directory itself does not acquire it.
package directory

import (
	"fmt"
	"math/bits"
	"sync/atomic"

	"cashmere/internal/sim"
	"cashmere/internal/transport"
)

// Perm is a page access permission, from most to least restrictive.
type Perm uint8

// Page permissions.
const (
	Invalid Perm = iota
	ReadOnly
	ReadWrite
)

// String returns a short name for the permission.
func (p Perm) String() string {
	switch p {
	case Invalid:
		return "inv"
	case ReadOnly:
		return "ro"
	case ReadWrite:
		return "rw"
	default:
		return fmt.Sprintf("Perm(%d)", uint8(p))
	}
}

// Word is one node's packed view of a page. Its field boundaries are
// given by the Layout that encoded it; a Word is meaningless without
// its Layout. Packed-layout words occupy the low 32 bits, matching the
// paper's hardware format bit for bit.
type Word uint64

const (
	permBits = 2
	permMask = Word(1<<permBits - 1)

	// packedProcBits is the paper's processor field width: 6 bits
	// holding proc+1, so ids 0..62.
	packedProcBits = 6

	// wideMinProcBits keeps every wide layout distinguishable from the
	// packed legacy layout: a topology small enough for 6-bit fields
	// always uses the packed layout instead.
	wideMinProcBits = 7

	// maxProcBits bounds the wide layout so both processor fields and
	// the first-touch bit stay inside the 63 low bits of the region's
	// int64 word (2 + 2*30 + 1 = 63).
	maxProcBits = 30
)

// LayoutKind selects how the directory word layout is chosen for a
// topology.
type LayoutKind int

const (
	// LayoutAuto derives the layout from the topology: the paper's
	// packed 32-bit layout whenever every processor id fits its 6-bit
	// fields, the wide layout otherwise. The default.
	LayoutAuto LayoutKind = iota
	// LayoutPacked forces the paper's packed layout; topologies whose
	// processor ids exceed its bound are a construction-time error.
	LayoutPacked
	// LayoutWide forces the wide layout regardless of topology size
	// (used to cross-check the two layouts on small runs).
	LayoutWide
)

// String returns a short name for the layout kind.
func (k LayoutKind) String() string {
	switch k {
	case LayoutAuto:
		return "auto"
	case LayoutPacked:
		return "packed"
	case LayoutWide:
		return "wide"
	default:
		return fmt.Sprintf("LayoutKind(%d)", int(k))
	}
}

// Layout describes how a Word packs its permission, exclusive-holder,
// home, and first-touch fields. The zero value is not meaningful; use
// Packed or ChooseLayout.
type Layout struct {
	procBits  uint
	exclShift uint
	homeShift uint
	touched   Word
	procMask  Word // in-field mask, unshifted
}

// Packed returns the paper's packed 32-bit layout: 6-bit processor
// fields holding proc+1, the format of Section 2.3.
func Packed() Layout { return layoutWithProcBits(packedProcBits) }

func layoutWithProcBits(pb uint) Layout {
	return Layout{
		procBits:  pb,
		exclShift: permBits,
		homeShift: permBits + pb,
		touched:   1 << (permBits + 2*pb),
		procMask:  Word(1<<pb - 1),
	}
}

// ChooseLayout returns the directory word layout for a cluster whose
// largest processor id is maxProcID, honoring the kind. It fails when
// the processor ids cannot be encoded — packed layouts hold ids up to
// 62, wide layouts up to 2^30-2 — so misconfigured topologies surface
// at construction instead of as a mid-run panic in an encode path.
func ChooseLayout(kind LayoutKind, maxProcID int) (Layout, error) {
	if maxProcID < 0 {
		return Layout{}, fmt.Errorf("directory: negative processor id %d", maxProcID)
	}
	packed := Packed()
	switch kind {
	case LayoutAuto:
		if maxProcID <= packed.MaxProc() {
			return packed, nil
		}
	case LayoutPacked:
		if maxProcID > packed.MaxProc() {
			return Layout{}, fmt.Errorf("directory: packed word layout holds processor ids 0..%d, need %d",
				packed.MaxProc(), maxProcID)
		}
		return packed, nil
	case LayoutWide:
		// fall through to the wide sizing below
	default:
		return Layout{}, fmt.Errorf("directory: unknown layout kind %d", int(kind))
	}
	pb := uint(bits.Len(uint(maxProcID + 1))) // field stores proc+1
	if pb < wideMinProcBits {
		pb = wideMinProcBits
	}
	if pb > maxProcBits {
		return Layout{}, fmt.Errorf("directory: wide word layout holds processor ids 0..%d, need %d",
			layoutWithProcBits(maxProcBits).MaxProc(), maxProcID)
	}
	return layoutWithProcBits(pb), nil
}

// MaxProc returns the largest processor id the layout's fields encode
// (the fields hold proc+1, so one value is lost to "none").
func (l Layout) MaxProc() int { return int(l.procMask) - 1 }

// Wide reports whether l is a wide (non-paper) layout.
func (l Layout) Wide() bool { return l.procBits != packedProcBits }

// Perm returns the loosest permission any processor on the node holds.
func (l Layout) Perm(w Word) Perm { return Perm(w & permMask) }

// WithPerm returns w with the permission field set to p.
func (l Layout) WithPerm(w Word, p Perm) Word { return (w &^ permMask) | Word(p)&permMask }

// Excl returns the processor holding the page exclusively on this node,
// if any.
func (l Layout) Excl(w Word) (proc int, ok bool) {
	v := int(w >> l.exclShift & l.procMask)
	return v - 1, v != 0
}

// WithExcl returns w recording proc as the exclusive holder. Processor
// ids are validated against the layout at cluster construction; an
// out-of-range id here is a protocol bug and panics.
func (l Layout) WithExcl(w Word, proc int) Word {
	if proc < 0 || proc > l.MaxProc() {
		panic(fmt.Sprintf("directory: exclusive proc %d out of layout range 0..%d", proc, l.MaxProc()))
	}
	return (w &^ (l.procMask << l.exclShift)) | Word(proc+1)<<l.exclShift
}

// ClearExcl returns w with no exclusive holder.
func (l Layout) ClearExcl(w Word) Word { return w &^ (l.procMask << l.exclShift) }

// Home returns the home processor recorded in this word, if set.
func (l Layout) Home(w Word) (proc int, ok bool) {
	v := int(w >> l.homeShift & l.procMask)
	return v - 1, v != 0
}

// WithHome returns w recording proc as the home processor. See WithExcl
// for the range contract.
func (l Layout) WithHome(w Word, proc int) Word {
	if proc < 0 || proc > l.MaxProc() {
		panic(fmt.Sprintf("directory: home proc %d out of layout range 0..%d", proc, l.MaxProc()))
	}
	return (w &^ (l.procMask << l.homeShift)) | Word(proc+1)<<l.homeShift
}

// FirstTouched reports whether the home was assigned by the first-touch
// heuristic rather than the round-robin default.
func (l Layout) FirstTouched(w Word) bool { return w&l.touched != 0 }

// WithFirstTouched returns w with the first-touch bit set.
func (l Layout) WithFirstTouched(w Word) Word { return w | l.touched }

// Make assembles a word in one call: permission, exclusive holder
// (negative for none), home processor (negative for none), and the
// first-touch bit.
func (l Layout) Make(p Perm, excl, home int, touched bool) Word {
	w := l.WithPerm(0, p)
	if excl >= 0 {
		w = l.WithExcl(w, excl)
	}
	if home >= 0 {
		w = l.WithHome(w, home)
	}
	if touched {
		w = l.WithFirstTouched(w)
	}
	return w
}

// Format renders the word for debugging.
func (l Layout) Format(w Word) string {
	s := l.Perm(w).String()
	if p, ok := l.Excl(w); ok {
		s += fmt.Sprintf(" excl=%d", p)
	}
	if p, ok := l.Home(w); ok {
		s += fmt.Sprintf(" home=%d", p)
		if l.FirstTouched(w) {
			s += "(ft)"
		}
	}
	return s
}

// Global is the distributed, replicated page directory. Words are
// indexed by (page, protocol node); physOf maps protocol nodes to the
// physical nodes of the Memory Channel (identity for two-level
// protocols; proc-to-SMP mapping for one-level protocols, where every
// processor is its own protocol node).
type Global struct {
	region     transport.Region
	lay        Layout
	pages      int
	protoNodes int
	physOf     func(int) int
	lockBased  bool
	locks      []sim.VLock
}

// NewGlobal creates a directory for pages pages and protoNodes protocol
// nodes on the given network, with words encoded by lay. When lockBased
// is true, updates must be bracketed by Lock/Unlock on the page's
// global lock (the Section 3.3.5 ablation).
func NewGlobal(net transport.Fabric, lay Layout, pages, protoNodes int, physOf func(int) int, lockBased bool) *Global {
	g := &Global{
		region:     net.NewRegion(pages*protoNodes, false),
		lay:        lay,
		pages:      pages,
		protoNodes: protoNodes,
		physOf:     physOf,
		lockBased:  lockBased,
	}
	if lockBased {
		g.locks = make([]sim.VLock, pages)
	}
	return g
}

// Pages returns the number of pages the directory covers.
func (g *Global) Pages() int { return g.pages }

// ProtoNodes returns the number of protocol nodes per entry.
func (g *Global) ProtoNodes() int { return g.protoNodes }

// Layout returns the word layout the directory's entries use.
func (g *Global) Layout() Layout { return g.lay }

// LockBased reports whether updates require the per-page global lock.
func (g *Global) LockBased() bool { return g.lockBased }

// PageLock returns the global lock for page under the lock-based
// variant, or nil for the lock-free directory.
func (g *Global) PageLock(page int) *sim.VLock {
	if !g.lockBased {
		return nil
	}
	return &g.locks[page]
}

func (g *Global) off(page, protoNode int) int {
	return page*g.protoNodes + protoNode
}

// Load returns protocol node protoNode's word for page, as read by a
// processor on the given protocol node reader (reads always hit the
// local replica).
func (g *Global) Load(reader, page, protoNode int) Word {
	return Word(g.region.Read(g.physOf(reader), g.off(page, protoNode)))
}

// Store broadcasts writer's own word for page at virtual time now and
// doubles it into the local replica. It returns the time the update is
// globally performed. Only the word's owning node may store it; that
// discipline is what makes the directory lock-free.
func (g *Global) Store(writer, page int, w Word, now int64) int64 {
	phys := g.physOf(writer)
	off := g.off(page, writer)
	done := g.region.Write(phys, off, int64(w), now)
	g.region.Poke(phys, off, int64(w))
	return done
}

// Sharers returns the number of protocol nodes with a valid (read-only
// or read-write) view of page, excluding except (pass a negative except
// to count all).
func (g *Global) Sharers(reader, page, except int) int {
	n := 0
	for node := 0; node < g.protoNodes; node++ {
		if node == except {
			continue
		}
		if g.lay.Perm(g.Load(reader, page, node)) != Invalid {
			n++
		}
	}
	return n
}

// ExclHolder scans page's entry for an exclusive holder and returns the
// protocol node and processor holding it, as seen from reader's replica.
func (g *Global) ExclHolder(reader, page int) (node, proc int, ok bool) {
	for n := 0; n < g.protoNodes; n++ {
		if p, has := g.lay.Excl(g.Load(reader, page, n)); has {
			return n, p, true
		}
	}
	return 0, 0, false
}

// ExclHolderOwn scans page's entry for an exclusive holder, reading
// each node's word through that node's own replica. The directory
// region has no loop-back, so a node's doubled local copy is the
// authoritative version of its word; any other replica only sees it
// once the broadcast has been delivered. Out-of-band inspection (such
// as result validation after a run) must use this rather than trusting
// one observer's replica for every word.
func (g *Global) ExclHolderOwn(page int) (node, proc int, ok bool) {
	for n := 0; n < g.protoNodes; n++ {
		if p, has := g.lay.Excl(g.Load(n, page, n)); has {
			return n, p, true
		}
	}
	return 0, 0, false
}

// Home returns the home processor of page as recorded in the directory
// (any node's word; home indications are redundant), and whether one is
// recorded.
func (g *Global) Home(reader, page int) (proc int, ok bool) {
	for n := 0; n < g.protoNodes; n++ {
		if p, has := g.lay.Home(g.Load(reader, page, n)); has {
			return p, true
		}
	}
	return 0, false
}

// LClock is a node's protocol logical clock (paper Section 2.2:
// incremented on page faults, page flushes, acquires and releases). It
// is shared by the node's processors and updated with atomic operations,
// standing in for the paper's ll/sc sequences.
type LClock struct {
	v atomic.Int64
}

// Tick increments the clock and returns the new value.
func (c *LClock) Tick() int64 { return c.v.Add(1) }

// Now returns the current logical time.
func (c *LClock) Now() int64 { return c.v.Load() }
