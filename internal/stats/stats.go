// Package stats collects the protocol statistics the paper reports.
//
// Every category in Table 3 (read/write faults, page transfers, directory
// updates, write notices, exclusive-mode transitions, data transferred,
// twin creations, incoming diffs, flush-updates, shootdowns) has a
// counter, and every component of the Figure 6 execution-time breakdown
// (User, Protocol, Polling, Comm & Wait, Write Doubling) has a virtual-
// time accumulator.
//
// A Proc value is owned by a single simulated processor and updated
// without synchronization; Aggregate folds the per-processor values into
// the cluster-wide totals reported by the benchmark harness.
package stats

import (
	"fmt"
	"strings"
)

// Counter identifies one event counter.
type Counter int

// The protocol event counters of Table 3, plus a few internal ones used
// by tests and ablations.
const (
	LockAcquires Counter = iota // application lock + flag acquires
	Barriers
	ReadFaults
	WriteFaults
	PageTransfers
	DirectoryUpdates
	WriteNotices
	ExclTransitions // transitions into and out of exclusive mode
	TwinCreations
	IncomingDiffs
	FlushUpdates
	Shootdowns
	PageFlushes // outgoing diff flushes to the home node
	HomeMigrations
	ExplicitRequests
	PolicyModeChanges  // adaptive policy per-page mode transitions
	PolicyUpdates      // write-update refreshes applied at acquires
	PolicyReplications // broadcast replications of read-mostly pages
	numCounters
)

var counterNames = [...]string{
	LockAcquires:       "LockAcquires",
	Barriers:           "Barriers",
	ReadFaults:         "ReadFaults",
	WriteFaults:        "WriteFaults",
	PageTransfers:      "PageTransfers",
	DirectoryUpdates:   "DirectoryUpdates",
	WriteNotices:       "WriteNotices",
	ExclTransitions:    "ExclTransitions",
	TwinCreations:      "TwinCreations",
	IncomingDiffs:      "IncomingDiffs",
	FlushUpdates:       "FlushUpdates",
	Shootdowns:         "Shootdowns",
	PageFlushes:        "PageFlushes",
	HomeMigrations:     "HomeMigrations",
	ExplicitRequests:   "ExplicitRequests",
	PolicyModeChanges:  "PolicyModeChanges",
	PolicyUpdates:      "PolicyUpdates",
	PolicyReplications: "PolicyReplications",
}

// String returns the counter's name.
func (c Counter) String() string {
	if c >= 0 && int(c) < len(counterNames) {
		return counterNames[c]
	}
	return fmt.Sprintf("Counter(%d)", int(c))
}

// NumCounters is the number of defined counters.
const NumCounters = int(numCounters)

// Component identifies one band of the Figure 6 execution-time breakdown.
type Component int

// The five components of Figure 6.
const (
	User          Component = iota // user code, cache misses, trap entry
	Protocol                       // time inside protocol code
	Polling                        // message-poll instructions at loop heads
	CommWait                       // communication and wait time
	WriteDoubling                  // extra in-line stores (1L only)
	numComponents
)

var componentNames = [...]string{
	User:          "User",
	Protocol:      "Protocol",
	Polling:       "Polling",
	CommWait:      "Comm & Wait",
	WriteDoubling: "Write Doubling",
}

// String returns the component's display name as used in Figure 6.
func (c Component) String() string {
	if c >= 0 && int(c) < len(componentNames) {
		return componentNames[c]
	}
	return fmt.Sprintf("Component(%d)", int(c))
}

// NumComponents is the number of breakdown components.
const NumComponents = int(numComponents)

// Proc accumulates statistics for one simulated processor. The zero
// value is ready to use.
type Proc struct {
	Counts    [NumCounters]int64
	Time      [NumComponents]int64 // virtual ns per breakdown component
	DataBytes int64                // bytes moved across the Memory Channel
}

// Add increments counter c by n.
func (p *Proc) Add(c Counter, n int64) { p.Counts[c] += n }

// Inc increments counter c by one.
func (p *Proc) Inc(c Counter) { p.Counts[c]++ }

// Charge adds ns nanoseconds of virtual time to breakdown component c.
func (p *Proc) Charge(c Component, ns int64) { p.Time[c] += ns }

// Data records n bytes transferred across the Memory Channel.
func (p *Proc) Data(n int64) { p.DataBytes += n }

// Total is the aggregate over all processors of a run, plus the overall
// execution time (the maximum finishing virtual time).
type Total struct {
	Counts    [NumCounters]int64
	Time      [NumComponents]int64
	DataBytes int64
	ExecNS    int64 // wall (virtual) execution time of the slowest processor
	Procs     int
}

// Aggregate folds per-processor stats and finishing times into a Total.
func Aggregate(procs []*Proc, finish []int64) Total {
	var t Total
	t.Procs = len(procs)
	for _, p := range procs {
		for i := range p.Counts {
			t.Counts[i] += p.Counts[i]
		}
		for i := range p.Time {
			t.Time[i] += p.Time[i]
		}
		t.DataBytes += p.DataBytes
	}
	for _, f := range finish {
		if f > t.ExecNS {
			t.ExecNS = f
		}
	}
	return t
}

// CountsMap returns the nonzero counters keyed by their Counter.String()
// names. It is the single naming surface shared by the bench JSON
// results, the /metrics Prometheus encoder, and cashmere-benchdiff, so
// the exported counter vocabularies can never skew.
func (t Total) CountsMap() map[string]int64 {
	out := make(map[string]int64)
	for c := Counter(0); int(c) < NumCounters; c++ {
		if t.Counts[c] != 0 {
			out[c.String()] = t.Counts[c]
		}
	}
	return out
}

// TimeMap returns the nonzero execution-time breakdown components in
// virtual nanoseconds, keyed by their Component.String() names —
// CountsMap's counterpart for the Figure 6 components.
func (t Total) TimeMap() map[string]int64 {
	out := make(map[string]int64)
	for c := Component(0); int(c) < NumComponents; c++ {
		if t.Time[c] != 0 {
			out[c.String()] = t.Time[c]
		}
	}
	return out
}

// Merge folds another Total into t: counts, times, data bytes, and
// processor counts add; ExecNS takes the maximum (the runs are separate
// clusters, so summing their virtual spans would be meaningless). The
// live metrics registry uses it to fold completed runs into one
// cluster-fleet view.
func (t *Total) Merge(o Total) {
	for i := range t.Counts {
		t.Counts[i] += o.Counts[i]
	}
	for i := range t.Time {
		t.Time[i] += o.Time[i]
	}
	t.DataBytes += o.DataBytes
	t.Procs += o.Procs
	if o.ExecNS > t.ExecNS {
		t.ExecNS = o.ExecNS
	}
}

// DataMB returns the total Memory Channel traffic in megabytes.
func (t Total) DataMB() float64 { return float64(t.DataBytes) / (1 << 20) }

// ExecSeconds returns the virtual execution time in seconds.
func (t Total) ExecSeconds() float64 { return float64(t.ExecNS) / 1e9 }

// BreakdownPercent returns each component's share of the summed
// per-processor time, in percent. The shares total 100 for a non-empty
// run.
func (t Total) BreakdownPercent() [NumComponents]float64 {
	var out [NumComponents]float64
	var sum int64
	for _, v := range t.Time {
		sum += v
	}
	if sum == 0 {
		return out
	}
	for i, v := range t.Time {
		out[i] = 100 * float64(v) / float64(sum)
	}
	return out
}

// String renders the totals in a compact human-readable block.
func (t Total) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "exec %.3fs over %d procs, %.2f MB transferred\n",
		t.ExecSeconds(), t.Procs, t.DataMB())
	for c := Counter(0); int(c) < NumCounters; c++ {
		if t.Counts[c] != 0 {
			fmt.Fprintf(&b, "  %-18s %d\n", c.String(), t.Counts[c])
		}
	}
	pct := t.BreakdownPercent()
	for c := Component(0); int(c) < NumComponents; c++ {
		if t.Time[c] != 0 {
			fmt.Fprintf(&b, "  %-18s %.1f%%\n", c.String(), pct[c])
		}
	}
	return b.String()
}
