package stats

import (
	"math"
	"strings"
	"testing"
)

func TestProcCounters(t *testing.T) {
	var p Proc
	p.Inc(ReadFaults)
	p.Inc(ReadFaults)
	p.Add(WriteNotices, 7)
	if p.Counts[ReadFaults] != 2 {
		t.Errorf("ReadFaults = %d, want 2", p.Counts[ReadFaults])
	}
	if p.Counts[WriteNotices] != 7 {
		t.Errorf("WriteNotices = %d, want 7", p.Counts[WriteNotices])
	}
	if p.Counts[WriteFaults] != 0 {
		t.Errorf("untouched counter = %d, want 0", p.Counts[WriteFaults])
	}
}

func TestProcTimeAndData(t *testing.T) {
	var p Proc
	p.Charge(User, 100)
	p.Charge(User, 50)
	p.Charge(Protocol, 25)
	p.Data(4096)
	if p.Time[User] != 150 || p.Time[Protocol] != 25 {
		t.Errorf("Time = %v", p.Time)
	}
	if p.DataBytes != 4096 {
		t.Errorf("DataBytes = %d", p.DataBytes)
	}
}

func TestAggregate(t *testing.T) {
	a, b := &Proc{}, &Proc{}
	a.Inc(Barriers)
	b.Inc(Barriers)
	b.Add(PageTransfers, 3)
	a.Charge(CommWait, 10)
	b.Charge(CommWait, 30)
	a.Data(100)
	b.Data(200)
	tot := Aggregate([]*Proc{a, b}, []int64{500, 900})
	if tot.Counts[Barriers] != 2 {
		t.Errorf("Barriers = %d, want 2", tot.Counts[Barriers])
	}
	if tot.Counts[PageTransfers] != 3 {
		t.Errorf("PageTransfers = %d, want 3", tot.Counts[PageTransfers])
	}
	if tot.Time[CommWait] != 40 {
		t.Errorf("CommWait = %d, want 40", tot.Time[CommWait])
	}
	if tot.DataBytes != 300 {
		t.Errorf("DataBytes = %d, want 300", tot.DataBytes)
	}
	if tot.ExecNS != 900 {
		t.Errorf("ExecNS = %d, want max finish 900", tot.ExecNS)
	}
	if tot.Procs != 2 {
		t.Errorf("Procs = %d, want 2", tot.Procs)
	}
}

func TestAggregateEmpty(t *testing.T) {
	tot := Aggregate(nil, nil)
	if tot.ExecNS != 0 || tot.Procs != 0 || tot.DataBytes != 0 {
		t.Errorf("empty aggregate = %+v", tot)
	}
}

func TestBreakdownPercentSumsTo100(t *testing.T) {
	var p Proc
	p.Charge(User, 600)
	p.Charge(Protocol, 250)
	p.Charge(Polling, 50)
	p.Charge(CommWait, 100)
	tot := Aggregate([]*Proc{&p}, []int64{1000})
	pct := tot.BreakdownPercent()
	sum := 0.0
	for _, v := range pct {
		sum += v
	}
	if math.Abs(sum-100) > 1e-9 {
		t.Errorf("breakdown sums to %f, want 100", sum)
	}
	if math.Abs(pct[User]-60) > 1e-9 {
		t.Errorf("User%% = %f, want 60", pct[User])
	}
}

func TestBreakdownPercentZero(t *testing.T) {
	var tot Total
	pct := tot.BreakdownPercent()
	for i, v := range pct {
		if v != 0 {
			t.Errorf("component %d = %f, want 0", i, v)
		}
	}
}

func TestDataMB(t *testing.T) {
	tot := Total{DataBytes: 3 << 20}
	if tot.DataMB() != 3 {
		t.Errorf("DataMB = %f, want 3", tot.DataMB())
	}
}

func TestCounterNames(t *testing.T) {
	if ReadFaults.String() != "ReadFaults" {
		t.Errorf("ReadFaults.String() = %q", ReadFaults.String())
	}
	if Shootdowns.String() != "Shootdowns" {
		t.Errorf("Shootdowns.String() = %q", Shootdowns.String())
	}
	for c := Counter(0); int(c) < NumCounters; c++ {
		if s := c.String(); s == "" || strings.HasPrefix(s, "Counter(") {
			t.Errorf("counter %d has no name", int(c))
		}
	}
	if s := Counter(999).String(); !strings.HasPrefix(s, "Counter(") {
		t.Errorf("out-of-range counter name = %q", s)
	}
}

func TestComponentNames(t *testing.T) {
	want := []string{"User", "Protocol", "Polling", "Comm & Wait", "Write Doubling"}
	for i, w := range want {
		if got := Component(i).String(); got != w {
			t.Errorf("Component(%d).String() = %q, want %q", i, got, w)
		}
	}
	if s := Component(99).String(); !strings.HasPrefix(s, "Component(") {
		t.Errorf("out-of-range component name = %q", s)
	}
}

func TestTotalString(t *testing.T) {
	var p Proc
	p.Inc(Barriers)
	p.Charge(User, 1e9)
	p.Data(1 << 20)
	tot := Aggregate([]*Proc{&p}, []int64{2e9})
	s := tot.String()
	for _, want := range []string{"exec 2.000s", "Barriers", "User", "1.00 MB"} {
		if !strings.Contains(s, want) {
			t.Errorf("String() missing %q:\n%s", want, s)
		}
	}
}

func TestCountsAndTimeMaps(t *testing.T) {
	var p Proc
	p.Add(ReadFaults, 7)
	p.Inc(Barriers)
	p.Charge(User, 123)
	p.Charge(Protocol, 45)
	tot := Aggregate([]*Proc{&p}, []int64{100})

	counts := tot.CountsMap()
	if len(counts) != 2 || counts["ReadFaults"] != 7 || counts["Barriers"] != 1 {
		t.Errorf("CountsMap = %v, want ReadFaults:7 Barriers:1 only", counts)
	}
	times := tot.TimeMap()
	if len(times) != 2 || times["User"] != 123 || times["Protocol"] != 45 {
		t.Errorf("TimeMap = %v, want User:123 Protocol:45 only", times)
	}
	// Zero totals yield empty (but non-nil) maps.
	var zero Total
	if m := zero.CountsMap(); len(m) != 0 || m == nil {
		t.Errorf("zero CountsMap = %v", m)
	}
}

func TestTotalMerge(t *testing.T) {
	a := Total{ExecNS: 100, DataBytes: 5, Procs: 2}
	a.Counts[ReadFaults] = 3
	a.Time[User] = 10
	b := Total{ExecNS: 40, DataBytes: 7, Procs: 4}
	b.Counts[ReadFaults] = 4
	b.Counts[Barriers] = 1
	b.Time[Protocol] = 9

	a.Merge(b)
	if a.Counts[ReadFaults] != 7 || a.Counts[Barriers] != 1 {
		t.Errorf("merged counts = %v", a.CountsMap())
	}
	if a.Time[User] != 10 || a.Time[Protocol] != 9 {
		t.Errorf("merged times = %v", a.TimeMap())
	}
	if a.DataBytes != 12 || a.Procs != 6 {
		t.Errorf("merged data/procs = %d/%d", a.DataBytes, a.Procs)
	}
	if a.ExecNS != 100 {
		t.Errorf("merged ExecNS = %d, want max 100", a.ExecNS)
	}
}
