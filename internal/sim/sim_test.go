package sim

import (
	"sync"
	"testing"
	"testing/quick"
	"time"
)

func TestClockAdvance(t *testing.T) {
	var c Clock
	c.Advance(100)
	c.Advance(50)
	if c.Now() != 150 {
		t.Errorf("Now = %d, want 150", c.Now())
	}
	c.Advance(-30)
	if c.Now() != 150 {
		t.Errorf("negative Advance moved the clock: %d", c.Now())
	}
}

func TestClockAdvanceTo(t *testing.T) {
	var c Clock
	c.Advance(100)
	if w := c.AdvanceTo(250); w != 150 {
		t.Errorf("wait = %d, want 150", w)
	}
	if c.Now() != 250 {
		t.Errorf("Now = %d, want 250", c.Now())
	}
	if w := c.AdvanceTo(200); w != 0 {
		t.Errorf("past AdvanceTo waited %d, want 0", w)
	}
	if c.Now() != 250 {
		t.Errorf("past AdvanceTo moved clock back: %d", c.Now())
	}
}

func TestBusSerialOccupancy(t *testing.T) {
	b := NewBus(1 << 20) // 1 MB/s: 1 byte = ~954ns
	end1 := b.Use(0, 1<<20)
	if end1 != int64(time.Second) {
		t.Errorf("first transfer ends at %d, want 1s", end1)
	}
	// Second transfer requested at time 0 must queue behind the first.
	end2 := b.Use(0, 1<<20)
	if end2 != 2*int64(time.Second) {
		t.Errorf("queued transfer ends at %d, want 2s", end2)
	}
	// A transfer requested after the bus is free starts immediately.
	end3 := b.Use(5*int64(time.Second), 1<<20)
	if end3 != 6*int64(time.Second) {
		t.Errorf("late transfer ends at %d, want 6s", end3)
	}
	if b.FreeAt() != end3 {
		t.Errorf("FreeAt = %d, want %d", b.FreeAt(), end3)
	}
}

func TestBusZeroBandwidth(t *testing.T) {
	b := NewBus(0)
	if end := b.Use(42, 1000); end != 42 {
		t.Errorf("zero-bandwidth bus delayed transfer: %d", end)
	}
	var nilBus *Bus
	if end := nilBus.Use(42, 1000); end != 42 {
		t.Errorf("nil bus delayed transfer: %d", end)
	}
	if nilBus.FreeAt() != 0 {
		t.Errorf("nil bus FreeAt = %d", nilBus.FreeAt())
	}
}

func TestBusConcurrent(t *testing.T) {
	b := NewBus(100 << 20)
	const workers = 8
	const transfers = 200
	const size = 4096
	occ := int64(size) * int64(time.Second) / (100 << 20)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < transfers; i++ {
				if end := b.Use(0, size); end > (maxQueueFactor+1)*occ {
					t.Errorf("transfer completed at %d, above queue cap %d",
						end, (maxQueueFactor+1)*occ)
					return
				}
			}
		}()
	}
	wg.Wait()
	// With every request at time 0, queueing is bounded by the cap.
	if got := b.FreeAt(); got > (maxQueueFactor+1)*occ {
		t.Errorf("FreeAt = %d, above cap %d", got, (maxQueueFactor+1)*occ)
	}
	if got := b.FreeAt(); got < maxQueueFactor*occ {
		t.Errorf("FreeAt = %d, queue never built up to the cap %d", got, maxQueueFactor*occ)
	}
}

func TestBusQueueCap(t *testing.T) {
	// A request from a processor whose clock lags far behind a prior
	// reservation waits at most maxQueueFactor occupancies.
	b := NewBus(1 << 20)
	occ := int64(1000) * int64(time.Second) / (1 << 20)
	b.Use(int64(time.Hour), 1000) // a reservation far in the future
	end := b.Use(0, 1000)
	if end > (maxQueueFactor+1)*occ {
		t.Errorf("lagging transfer completed at %d, want <= %d", end, (maxQueueFactor+1)*occ)
	}
}

func TestBusBusyAccounting(t *testing.T) {
	b := NewBus(1 << 20) // 1 MB/s
	occ := int64(time.Second)
	// Two transfers requested at the same instant contend: the second
	// queues behind the first, yet busy time is the exact sum of the
	// two occupancies — the bus is serially occupied, so overlapping
	// requests never double-count.
	b.Use(0, 1<<20)
	end2 := b.Use(0, 1<<20)
	if end2 != 2*occ {
		t.Fatalf("queued transfer ends at %d, want %d", end2, 2*occ)
	}
	if got := b.BusyNS(); got != 2*occ {
		t.Errorf("BusyNS after two contended transfers = %d, want %d", got, 2*occ)
	}
	// A later idle-bus transfer adds exactly its own occupancy: idle
	// gaps are not busy time.
	b.Use(10*occ, 1<<20)
	if got := b.BusyNS(); got != 3*occ {
		t.Errorf("BusyNS after idle-gap transfer = %d, want %d", got, 3*occ)
	}
	var nilBus *Bus
	if nilBus.BusyNS() != 0 {
		t.Errorf("nil bus BusyNS = %d", nilBus.BusyNS())
	}
	zero := NewBus(0)
	zero.Use(0, 1000)
	if zero.BusyNS() != 0 {
		t.Errorf("zero-bandwidth bus accumulated busy time: %d", zero.BusyNS())
	}
}

func TestStall(t *testing.T) {
	// One sharer moving 1000 bytes in 1us on a 1GB/s bus: occupancy
	// ~1us, no stall.
	if got := Stall(1000, 1000, 1, 1<<30); got != 0 {
		t.Errorf("uncontended stall = %d", got)
	}
	// Four sharers at the same rate need 4x the bus: stall ~3x ns.
	ns := int64(1000)
	got := Stall(ns, 1000, 4, 1<<30)
	occ4 := int64(4000) * int64(time.Second) / (1 << 30)
	if got != occ4-ns {
		t.Errorf("4-sharer stall = %d, want %d", got, occ4-ns)
	}
	// Degenerate inputs.
	if Stall(0, 100, 4, 1<<30) != 0 || Stall(100, 0, 4, 1<<30) != 0 || Stall(100, 100, 4, 0) != 0 {
		t.Error("degenerate Stall inputs must yield 0")
	}
	if Stall(10, 1<<20, 0, 1<<20) <= 0 {
		t.Error("zero sharers clamps to one, still stalls when saturated")
	}
}

func TestRendezvousReturnsMaxArrival(t *testing.T) {
	r := NewRendezvous(3)
	times := []int64{100, 300, 200}
	out := make([]int64, 3)
	var wg sync.WaitGroup
	for i := 0; i < 3; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			out[i] = r.Wait(times[i])
		}(i)
	}
	wg.Wait()
	for i, v := range out {
		if v != 300 {
			t.Errorf("party %d released at %d, want 300", i, v)
		}
	}
	if r.Parties() != 3 {
		t.Errorf("Parties = %d", r.Parties())
	}
}

func TestRendezvousReusable(t *testing.T) {
	r := NewRendezvous(2)
	var wg sync.WaitGroup
	rel := make([][]int64, 2)
	for i := 0; i < 2; i++ {
		rel[i] = make([]int64, 3)
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			now := int64(10 * (i + 1))
			for round := 0; round < 3; round++ {
				now = r.Wait(now) + int64(i)
				rel[i][round] = now
			}
		}(i)
	}
	wg.Wait()
	// Round 0 releases at max(10,20)=20; each round's release must be
	// strictly increasing and identical (modulo the +i skew applied
	// after release).
	if rel[0][0] != 20 || rel[1][0] != 21 {
		t.Errorf("round 0 releases = %d,%d want 20,21", rel[0][0], rel[1][0])
	}
	for round := 1; round < 3; round++ {
		if rel[0][round] <= rel[0][round-1] {
			t.Errorf("round %d release %d not after previous %d",
				round, rel[0][round], rel[0][round-1])
		}
		if rel[1][round] != rel[0][round]+1 {
			t.Errorf("round %d parties released at different times: %d vs %d",
				round, rel[0][round], rel[1][round])
		}
	}
}

func TestRendezvousSingleParty(t *testing.T) {
	r := NewRendezvous(1)
	if got := r.Wait(77); got != 77 {
		t.Errorf("single-party rendezvous = %d, want 77", got)
	}
}

func TestRendezvousPanicsOnZeroParties(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("NewRendezvous(0) did not panic")
		}
	}()
	NewRendezvous(0)
}

func TestVLockOverlapSemantics(t *testing.T) {
	var l VLock
	// First acquire: never held, no wait.
	if held := l.Acquire(100, 10); held != 110 {
		t.Errorf("first acquire held at %d, want 110", held)
	}
	l.Release(500)
	// Overlapping arrival (after the CS began, before it ended): waits.
	if held := l.Acquire(200, 10); held != 510 {
		t.Errorf("overlapping acquire held at %d, want 510", held)
	}
	l.Release(600)
	// Arrival after the previous release: no wait.
	if held := l.Acquire(700, 10); held != 710 {
		t.Errorf("late acquire held at %d, want 710", held)
	}
	l.Release(720)
	// Virtually-early arrival (before the previous CS began): the host
	// scheduler granted out of virtual order; the caller is not dragged
	// into the future.
	if held := l.Acquire(50, 10); held != 60 {
		t.Errorf("virtually-early acquire held at %d, want 60", held)
	}
	l.Release(65)
}

func TestVLockMutualExclusion(t *testing.T) {
	var l VLock
	counter := 0
	var wg sync.WaitGroup
	for i := 0; i < 16; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			now := int64(0)
			for j := 0; j < 100; j++ {
				now = l.Acquire(now, 1)
				counter++ // host mutex provides real exclusion
				now++
				l.Release(now)
			}
		}()
	}
	wg.Wait()
	if counter != 1600 {
		t.Errorf("counter = %d, want 1600", counter)
	}
	// Workers whose clocks marched together serialize: the final
	// release time reflects accumulated critical sections.
	if held := l.Acquire(1<<40, 0); held != 1<<40 {
		t.Errorf("fresh late acquire = %d, want its own now", held)
	}
	l.Release(1 << 40)
}

func TestVFlag(t *testing.T) {
	f := NewVFlag()
	if f.IsSet() {
		t.Error("new flag is set")
	}
	done := make(chan int64)
	go func() { done <- f.Wait() }()
	f.Set(123)
	if got := <-done; got != 123 {
		t.Errorf("Wait = %d, want 123", got)
	}
	// Second Set keeps the earliest time.
	f.Set(99)
	if got := f.Wait(); got != 123 {
		t.Errorf("Wait after re-Set = %d, want 123", got)
	}
	f.Reset()
	if f.IsSet() {
		t.Error("Reset flag still set")
	}
	f.Set(7)
	if got := f.Wait(); got != 7 {
		t.Errorf("Wait after Reset+Set = %d, want 7", got)
	}
}

func TestVFlagManyWaiters(t *testing.T) {
	f := NewVFlag()
	const n = 20
	out := make(chan int64, n)
	for i := 0; i < n; i++ {
		go func() { out <- f.Wait() }()
	}
	f.Set(55)
	for i := 0; i < n; i++ {
		if got := <-out; got != 55 {
			t.Fatalf("waiter got %d, want 55", got)
		}
	}
}

func TestClockProperties(t *testing.T) {
	f := func(steps []int16) bool {
		var c Clock
		prev := int64(0)
		for _, s := range steps {
			c.Advance(int64(s))
			if c.Now() < prev {
				return false
			}
			prev = c.Now()
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
