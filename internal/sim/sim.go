// Package sim provides the virtual-time machinery of the simulator.
//
// The simulator uses direct execution: each simulated processor is a
// goroutine that really executes the application and protocol code, while
// its *performance* is modelled by a per-processor virtual clock measured
// in nanoseconds. Computation and protocol operations advance the clock
// by amounts taken from the cost model; synchronization primitives
// reconcile clocks between processors (a barrier releases everyone at the
// latest arrival time, a lock passes its release time to the next holder,
// a flag wait completes when the setter's write has propagated).
//
// Two shared resources are modelled as serially-occupied buses, matching
// the paper's platform: the Memory Channel (a serial global interconnect,
// Section 3.3.3) and each SMP node's memory bus (whose saturation causes
// the negative clustering effects of SOR and Gauss).
package sim

import (
	"sync"
	"sync/atomic"

	"cashmere/internal/costs"
)

// Clock is a virtual-time clock owned by a single simulated processor.
// Only the owning goroutine may call its methods.
type Clock struct {
	now int64
}

// Now returns the current virtual time in nanoseconds.
func (c *Clock) Now() int64 { return c.now }

// Advance moves the clock forward by ns nanoseconds. Negative amounts
// are ignored: virtual time never runs backwards.
func (c *Clock) Advance(ns int64) {
	if ns > 0 {
		c.now += ns
	}
}

// AdvanceTo moves the clock forward to t if t is later than now and
// returns the amount of time skipped (the wait). It returns 0 when t is
// not in the future.
func (c *Clock) AdvanceTo(t int64) int64 {
	if t <= c.now {
		return 0
	}
	d := t - c.now
	c.now = t
	return d
}

// Bus models a serially-occupied shared resource with a fixed bandwidth:
// the Memory Channel hub or an SMP node's memory bus. Transfers are
// granted in the order processors request them; each occupies the bus
// for bytes/bandwidth seconds starting no earlier than the bus's previous
// completion time. Bus is safe for concurrent use.
type Bus struct {
	freeAt    atomic.Int64
	busy      atomic.Int64 // total virtual time the bus has been occupied
	bandwidth int64
}

// NewBus returns a bus with the given bandwidth in bytes per second.
// A zero or negative bandwidth disables contention modelling: transfers
// complete instantaneously.
func NewBus(bandwidth int64) *Bus {
	return &Bus{bandwidth: bandwidth}
}

// maxQueueFactor bounds how long one transfer can wait behind earlier
// reservations, in multiples of its own occupancy. Processor clocks in a
// direct-execution simulation are only loosely synchronized; without a
// bound, a reservation made by a processor whose clock runs ahead would
// stall processors that are behind for arbitrarily long virtual times.
// A factor of 64 admits realistic queues (e.g. 32 processors each
// fetching a page) while damping the cross-epoch feedback.
const maxQueueFactor = 64

// Use requests a transfer of n bytes starting at virtual time now and
// returns the completion time. The transfer begins at max(now, bus free
// time), with the queueing delay bounded by maxQueueFactor occupancies,
// and occupies the bus for its duration.
func (b *Bus) Use(now, n int64) int64 {
	if b == nil || b.bandwidth <= 0 || n <= 0 {
		return now
	}
	occ := costs.Occupancy(n, b.bandwidth)
	for {
		free := b.freeAt.Load()
		start := now
		if free > start {
			start = free
		}
		if cap := now + maxQueueFactor*occ; start > cap {
			start = cap
		}
		end := start + occ
		next := free
		if end > next {
			next = end
		}
		if b.freeAt.CompareAndSwap(free, next) {
			b.busy.Add(occ)
			return end
		}
	}
}

// BusyNS returns the total virtual time the bus has been occupied by
// transfers — the exact sum of every granted occupancy (the bus is
// serially occupied, so occupancies never overlap). Dividing by the
// current virtual time yields the bus's utilization; the live metrics
// layer exports that ratio for every Memory Channel link and the hub.
func (b *Bus) BusyNS() int64 {
	if b == nil {
		return 0
	}
	return b.busy.Load()
}

// Stall returns the extra time a computation of ns nanoseconds incurs
// when it issues busBytes of memory traffic on a bus of the given
// bandwidth shared by sharers concurrently-active processors. This
// analytic model (every sharer gets an equal share of the bus) is
// deterministic and fair, unlike timestamp-ordered reservations, which
// misbehave under the loosely-synchronized clocks of direct execution.
func Stall(ns, busBytes, sharers, bandwidth int64) int64 {
	if busBytes <= 0 || bandwidth <= 0 || ns <= 0 {
		return 0
	}
	if sharers < 1 {
		sharers = 1
	}
	need := costs.Occupancy(busBytes*sharers, bandwidth)
	if need <= ns {
		return 0
	}
	return need - ns
}

// FreeAt reports the virtual time at which the bus next becomes free.
func (b *Bus) FreeAt() int64 {
	if b == nil {
		return 0
	}
	return b.freeAt.Load()
}

// Rendezvous is a reusable n-party barrier over virtual time: Wait blocks
// until all n parties have arrived and returns the latest arrival time,
// which becomes the common departure time.
type Rendezvous struct {
	mu      sync.Mutex
	cond    *sync.Cond
	n       int
	arrived int
	gen     uint64
	maxTime int64
	// release holds the departure time of the two generations that can
	// be simultaneously active (sleepers of generation g and early
	// arrivals of g+1), indexed by generation parity.
	release [2]int64
}

// NewRendezvous returns a rendezvous for n parties. n must be positive.
func NewRendezvous(n int) *Rendezvous {
	if n <= 0 {
		panic("sim: rendezvous requires at least one party")
	}
	r := &Rendezvous{n: n}
	r.cond = sync.NewCond(&r.mu)
	return r
}

// Wait records an arrival at virtual time now, blocks until all parties
// have arrived, and returns the maximum arrival time.
func (r *Rendezvous) Wait(now int64) int64 {
	r.mu.Lock()
	defer r.mu.Unlock()
	gen := r.gen
	if now > r.maxTime {
		r.maxTime = now
	}
	r.arrived++
	if r.arrived == r.n {
		r.arrived = 0
		r.release[gen%2] = r.maxTime
		r.gen++
		r.cond.Broadcast()
		return r.maxTime
	}
	for r.gen == gen {
		r.cond.Wait()
	}
	return r.release[gen%2]
}

// maxTime is deliberately never reset between generations: every party
// departs a barrier at its release time, so all arrivals of the next
// generation are at least the previous maximum, and keeping the running
// maximum is semantically exact. Waiters read their own generation's
// snapshot from release[] because a fast party may already have raised
// maxTime for the next generation before they wake.

// Parties returns the number of parties the rendezvous synchronizes.
func (r *Rendezvous) Parties() int { return r.n }

// VLock is a mutual-exclusion lock over virtual time. Grants follow the
// host scheduler, which may disagree with virtual-time order: a caller
// whose clock is still early may be granted the lock after a holder
// whose critical section lies entirely in the caller's virtual future.
// Only a critical section that virtually overlaps the caller's arrival
// (it began at or before the caller's now) delays the caller — dragging
// a virtually-early acquirer behind a virtually-late holder would
// serialize work that, in virtual time, never contended.
type VLock struct {
	mu       sync.Mutex
	heldAt   int64 // virtual start of the current/most recent critical section
	released int64 // virtual end of the most recent critical section
}

// Acquire takes the lock for a caller whose clock reads now, charging
// cost (the platform's lock acquire latency), and returns the virtual
// time at which the caller holds the lock.
func (l *VLock) Acquire(now, cost int64) int64 {
	l.mu.Lock()
	held := now
	if now >= l.heldAt && l.released > now {
		held = l.released
	}
	held += cost
	l.heldAt = held
	return held
}

// Release releases the lock, recording now as the critical section's
// virtual end.
func (l *VLock) Release(now int64) {
	if now > l.released {
		l.released = now
	}
	l.mu.Unlock()
}

// VFlag is a set-once synchronization flag over virtual time (the
// paper's per-row availability flags in Gauss). Set publishes a virtual
// set-time; Wait blocks until the flag is set and returns that time.
// A flag may be Reset between uses when no waiter is active.
type VFlag struct {
	mu      sync.Mutex
	cond    *sync.Cond
	set     bool
	setTime int64
}

// NewVFlag returns an unset flag.
func NewVFlag() *VFlag {
	f := &VFlag{}
	f.cond = sync.NewCond(&f.mu)
	return f
}

// Set marks the flag set as of virtual time now and wakes all waiters.
// Setting an already-set flag keeps the earliest set time.
func (f *VFlag) Set(now int64) {
	f.mu.Lock()
	if !f.set {
		f.set = true
		f.setTime = now
	}
	f.mu.Unlock()
	f.cond.Broadcast()
}

// Wait blocks until the flag is set and returns the virtual time at
// which it was set.
func (f *VFlag) Wait() int64 {
	f.mu.Lock()
	defer f.mu.Unlock()
	for !f.set {
		f.cond.Wait()
	}
	return f.setTime
}

// IsSet reports whether the flag has been set.
func (f *VFlag) IsSet() bool {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.set
}

// Reset returns the flag to the unset state. The caller must ensure no
// goroutine is concurrently waiting.
func (f *VFlag) Reset() {
	f.mu.Lock()
	f.set = false
	f.setTime = 0
	f.mu.Unlock()
}
