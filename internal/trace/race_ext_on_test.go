//go:build race

package trace_test

// raceEnabled reports that this binary was built with the race
// detector; the golden test skips there because the detector's timing
// perturbation flips the simulator's host-order virtual-time tie-breaks
// (see internal/bench/determinism_test.go).
const raceEnabled = true
