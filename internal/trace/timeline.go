package trace

import (
	"fmt"
	"io"
)

// WritePageTimeline writes a chronological text dump of every recorded
// event touching the given pages — the structured successor of the
// CASHMERE_TRACE_PAGE stderr stream, usable after the run instead of
// interleaved with it. A nil pages slice uses the tracer's page filter;
// an empty filter dumps every page-bearing event.
//
// Each line carries the virtual timestamp, the emitting track, the
// event name, and its payload:
//
//	vt=1204133ns p1 n1 pg0 read-fault dur=92000ns
//	vt=1204133ns p1 n1 pg0 page-fetch dur=85000ns bytes=8192 home=0
func WritePageTimeline(w io.Writer, t *Tracer, pages []int) error {
	var filter map[int]bool
	if pages == nil {
		filter = t.pages
	} else {
		filter = make(map[int]bool, len(pages))
		for _, p := range pages {
			filter[p] = true
		}
	}
	for _, e := range t.Events() {
		if e.Page < 0 {
			continue
		}
		if len(filter) > 0 && !filter[int(e.Page)] {
			continue
		}
		track := fmt.Sprintf("p%d n%d", e.Proc, e.Node)
		if e.Proc < 0 {
			track = fmt.Sprintf("link%d", e.Node)
		}
		line := fmt.Sprintf("vt=%dns %s pg%d %s", e.VT, track, e.Page, e.Kind)
		if e.Dur > 0 {
			line += fmt.Sprintf(" dur=%dns", e.Dur)
		}
		names := argNames[e.Kind]
		if names[0] == "" {
			names[0] = "arg"
		}
		if names[1] == "" {
			names[1] = "arg2"
		}
		if e.Arg != 0 {
			line += fmt.Sprintf(" %s=%d", names[0], e.Arg)
		}
		if e.Arg2 != 0 {
			line += fmt.Sprintf(" %s=%d", names[1], e.Arg2)
		}
		if _, err := fmt.Fprintln(w, line); err != nil {
			return err
		}
	}
	return nil
}
