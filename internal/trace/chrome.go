package trace

import (
	"encoding/json"
	"io"
	"strconv"
)

// Chrome trace-event export. The output is the JSON-object form of the
// Chrome trace-event format ({"traceEvents": [...]}), which Perfetto
// (https://ui.perfetto.dev) loads directly. The timeline is virtual
// time — the time axis the protocol's cost model defines — rendered as
// one process ("processors") with a thread per simulated processor and
// a second process with a thread per fabric link (transport/simchan;
// the track group keeps its historical "memchan" name so existing
// Perfetto queries stay valid). Spans are "X" (complete) events;
// instants are "i" events with thread scope.
//
// By default the export contains only virtual-time data and is
// therefore byte-for-byte deterministic for deterministic runs (the
// golden test relies on this). ChromeOptions.Wall adds each event's
// host wall-clock stamp to its args.

// ChromeOptions configures WriteChrome.
type ChromeOptions struct {
	// Wall includes each event's host wall-clock nanosecond stamp as an
	// arg. It makes the output nondeterministic across runs.
	Wall bool
}

// chromePIDs for the two track groups.
const (
	chromePIDProcs = 1
	chromePIDLinks = 2
)

type chromeEvent struct {
	Name string         `json:"name"`
	Cat  string         `json:"cat,omitempty"`
	Ph   string         `json:"ph"`
	Ts   float64        `json:"ts"`
	Dur  *float64       `json:"dur,omitempty"`
	Pid  int            `json:"pid"`
	Tid  int            `json:"tid"`
	S    string         `json:"s,omitempty"`
	Args map[string]any `json:"args,omitempty"`
}

type chromeFile struct {
	TraceEvents     []chromeEvent `json:"traceEvents"`
	DisplayTimeUnit string        `json:"displayTimeUnit"`
}

// argNames gives kind-specific names to Arg/Arg2 so the Perfetto UI
// reads naturally; kinds missing here fall back to "arg"/"arg2".
var argNames = map[Kind][2]string{
	EvPageFetch:       {"bytes", "home"},
	EvTwin:            {"words", ""},
	EvDiffOut:         {"words", "span"},
	EvDiffIn:          {"words", ""},
	EvNoticeSend:      {"to", ""},
	EvShootdown:       {"victim", ""},
	EvShootdownDrain:  {"writers", ""},
	EvExclBreak:       {"holder_node", "holder_proc"},
	EvLock:            {"lock", ""},
	EvUnlock:          {"lock", ""},
	EvFlagSet:         {"flag", ""},
	EvFlagWait:        {"flag", ""},
	EvDirUpdate:       {"by", ""},
	EvHomeMigrate:     {"from", "to"},
	EvLinkTransfer:    {"bytes", ""},
	EvMsgSend:         {"off", "subtype"},
	EvPolicyMode:      {"old_mode", "new_mode"},
	EvPolicyReplicate: {"nodes", ""},
	EvFlushFence:      {"pages", ""},
}

// eventArgs builds the kind-specific args map the exporters share, or
// nil when the event carries nothing worth rendering.
func eventArgs(e Event, wall bool) map[string]any {
	args := make(map[string]any)
	if e.Page >= 0 {
		args["page"] = e.Page
	}
	names := argNames[e.Kind]
	if names[0] == "" {
		names[0] = "arg"
	}
	if names[1] == "" {
		names[1] = "arg2"
	}
	if e.Arg != 0 {
		args[names[0]] = e.Arg
	}
	if e.Arg2 != 0 {
		args[names[1]] = e.Arg2
	}
	if wall {
		args["wt_ns"] = e.WT
	}
	if len(args) == 0 {
		return nil
	}
	return args
}

// WriteChrome writes the tracer's events as Chrome trace-event JSON.
func WriteChrome(w io.Writer, t *Tracer, opts ChromeOptions) error {
	file := chromeFile{DisplayTimeUnit: "ns"}

	meta := func(pid int, name string) {
		file.TraceEvents = append(file.TraceEvents, chromeEvent{
			Name: "process_name", Ph: "M", Pid: pid,
			Args: map[string]any{"name": name},
		})
	}
	thread := func(pid, tid int, name string) {
		file.TraceEvents = append(file.TraceEvents, chromeEvent{
			Name: "thread_name", Ph: "M", Pid: pid, Tid: tid,
			Args: map[string]any{"name": name},
		})
	}
	meta(chromePIDProcs, "processors")
	for i := 0; i < t.Procs(); i++ {
		thread(chromePIDProcs, i, "cpu "+strconv.Itoa(i))
	}
	if t.Links() > 0 {
		meta(chromePIDLinks, "memchan")
		for i := 0; i < t.Links(); i++ {
			thread(chromePIDLinks, i, "link "+strconv.Itoa(i))
		}
	}

	for _, e := range t.Events() {
		ce := chromeEvent{
			Name: e.Kind.String(),
			Cat:  "protocol",
			Ts:   float64(e.VT) / 1e3, // trace-event ts is microseconds
		}
		if e.Proc >= 0 {
			ce.Pid, ce.Tid = chromePIDProcs, int(e.Proc)
		} else {
			ce.Pid, ce.Tid = chromePIDLinks, int(e.Node)
			ce.Cat = "memchan"
		}
		if e.Dur > 0 {
			ce.Ph = "X"
			d := float64(e.Dur) / 1e3
			ce.Dur = &d
		} else {
			ce.Ph = "i"
			ce.S = "t"
		}
		ce.Args = eventArgs(e, opts.Wall)
		file.TraceEvents = append(file.TraceEvents, ce)
	}

	buf, err := json.MarshalIndent(&file, "", " ")
	if err != nil {
		return err
	}
	buf = append(buf, '\n')
	_, err = w.Write(buf)
	return err
}
