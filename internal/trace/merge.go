package trace

import (
	"encoding/json"
	"io"
	"sort"
	"strconv"
)

// Multi-rank Chrome trace-event export for the multi-process DSM
// runtime (internal/mprun). Where WriteChrome renders one simulated
// cluster on the virtual-time axis, WriteChromeRanks merges the
// wall-clock event buffers collected from N separate OS processes into
// a single timeline: one Perfetto process ("rank R") per rank, with a
// thread per local processor goroutine plus a "net" thread for the
// rank's frame-handler goroutine. Each rank's clock is shifted by its
// estimated offset from rank 0 (measured during the transport hello
// exchange; see transport/tcpchan.ClockOffsets) so spans that causally
// ordered across ranks — a TPageReq on one rank and the TPageReply
// serviced on another — line up on screen to within the estimate's
// error (about half the connection round-trip).

// RankTrack is one rank's recorded events, positioned on the merged
// timeline.
type RankTrack struct {
	// Rank is the node's rank; it names the Perfetto process.
	Rank int
	// Procs is the number of local processor threads. An event whose
	// Proc equals Procs is rendered on the rank's "net" (frame handler)
	// thread; smaller values on "proc <i>".
	Procs int
	// OffsetNS is added to every event timestamp to align this rank's
	// clock with the merged timeline (typically: the rank's tracer epoch
	// in rank-0 clock terms; the exporter re-bases the merged timeline
	// to start at zero, so only differences between tracks matter).
	OffsetNS int64
	// Events are the rank's committed events in emission order. VT
	// carries the rank-local wall-clock nanosecond stamp (the
	// multi-process runtime has no virtual clock).
	Events []Event
}

// WriteChromeRanks writes the merged multi-rank timeline as Chrome
// trace-event JSON. Output is deterministic for fixed inputs: events
// are ordered by aligned timestamp, then rank, then thread, then
// per-track emission order.
func WriteChromeRanks(w io.Writer, tracks []RankTrack, opts ChromeOptions) error {
	file := chromeFile{DisplayTimeUnit: "ns"}

	sorted := append([]RankTrack(nil), tracks...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i].Rank < sorted[j].Rank })

	// Re-base so the merged timeline starts at zero: Perfetto renders
	// absolute unix-epoch microseconds poorly.
	base := int64(0)
	haveBase := false
	for _, tk := range sorted {
		for _, e := range tk.Events {
			if t := e.VT + tk.OffsetNS; !haveBase || t < base {
				base, haveBase = t, true
			}
		}
	}

	for _, tk := range sorted {
		pid := tk.Rank + 1
		file.TraceEvents = append(file.TraceEvents, chromeEvent{
			Name: "process_name", Ph: "M", Pid: pid,
			Args: map[string]any{"name": "rank " + strconv.Itoa(tk.Rank)},
		})
		for i := 0; i <= tk.Procs; i++ {
			name := "proc " + strconv.Itoa(i)
			if i == tk.Procs {
				name = "net"
			}
			file.TraceEvents = append(file.TraceEvents, chromeEvent{
				Name: "thread_name", Ph: "M", Pid: pid, Tid: i,
				Args: map[string]any{"name": name},
			})
		}
	}

	type keyed struct {
		ce   chromeEvent
		ts   int64
		rank int
		tid  int
		seq  int
	}
	var all []keyed
	for _, tk := range sorted {
		for i, e := range tk.Events {
			at := e.VT + tk.OffsetNS - base
			ce := chromeEvent{
				Name: e.Kind.String(),
				Cat:  "mprun",
				Ts:   float64(at) / 1e3, // trace-event ts is microseconds
				Pid:  tk.Rank + 1,
				Tid:  int(e.Proc),
			}
			if e.Dur > 0 {
				ce.Ph = "X"
				d := float64(e.Dur) / 1e3
				ce.Dur = &d
			} else {
				ce.Ph = "i"
				ce.S = "t"
			}
			ce.Args = eventArgs(e, opts.Wall)
			all = append(all, keyed{ce: ce, ts: at, rank: tk.Rank, tid: int(e.Proc), seq: i})
		}
	}
	sort.Slice(all, func(i, j int) bool {
		a, b := all[i], all[j]
		if a.ts != b.ts {
			return a.ts < b.ts
		}
		if a.rank != b.rank {
			return a.rank < b.rank
		}
		if a.tid != b.tid {
			return a.tid < b.tid
		}
		return a.seq < b.seq
	})
	for _, k := range all {
		file.TraceEvents = append(file.TraceEvents, k.ce)
	}

	buf, err := json.MarshalIndent(&file, "", " ")
	if err != nil {
		return err
	}
	buf = append(buf, '\n')
	_, err = w.Write(buf)
	return err
}
