package trace_test

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"testing"

	"cashmere/internal/trace"
)

// syntheticRankTracks hand-authors the event buffers of a 2-rank, 2
// procs-per-node SOR-shaped run: each rank faults in the other's
// boundary row, flushes a diff at the barrier, and the homes apply
// diffs and post write notices on their handler ("net") threads. The
// tracks deliberately arrive out of rank order and with different
// clock offsets, so the golden file pins the exporter's sorting,
// alignment, and re-basing behavior — a real run's wall-clock stamps
// could never be byte-stable.
func syntheticRankTracks() []trace.RankTrack {
	ev := func(k trace.Kind, proc, node, page int, vt, dur, arg, arg2 int64) trace.Event {
		return trace.Event{
			Kind: k, Proc: int32(proc), Node: int32(node), Page: int32(page),
			VT: vt, Dur: dur, WT: vt, Arg: arg, Arg2: arg2,
		}
	}
	// Rank 0's tracer started at offset 1_000_000 on the merged
	// timeline; rank 1's at 1_000_500 (a 500 ns clock skew after
	// alignment). Events interleave across ranks when merged.
	rank0 := []trace.Event{
		ev(trace.EvReadFault, 0, 0, 3, 100, 900, 0, 0),
		ev(trace.EvPageFetch, 0, 0, 3, 150, 800, 1024, 1),
		ev(trace.EvWriteFault, 1, 0, 2, 400, 300, 0, 0),
		ev(trace.EvDiffOut, 0, 0, 2, 2_000, 0, 16, trace.PackWordSpan(0, 15)),
		ev(trace.EvFlushFence, 0, 0, -1, 1_950, 600, 1, 0),
		ev(trace.EvBarrier, 0, 0, -1, 1_900, 1_200, 1, 0),
		ev(trace.EvBarrier, 1, 0, -1, 1_980, 1_100, 1, 0),
		// Handler thread: rank 1's diff lands on a page homed here.
		ev(trace.EvDiffIn, 2, 0, 5, 2_600, 0, 16, 1),
		ev(trace.EvNoticeSend, 2, 0, 5, 2_610, 0, 1, 0),
	}
	rank1 := []trace.Event{
		ev(trace.EvReadFault, 0, 1, 5, 120, 700, 0, 0),
		ev(trace.EvPageFetch, 0, 1, 5, 160, 600, 1024, 0),
		ev(trace.EvDiffOut, 1, 1, 5, 1_800, 0, 16, trace.PackWordSpan(16, 31)),
		ev(trace.EvFlushFence, 1, 1, -1, 1_750, 700, 1, 0),
		ev(trace.EvBarrier, 0, 1, -1, 1_700, 1_400, 1, 0),
		ev(trace.EvBarrier, 1, 1, -1, 1_740, 1_300, 1, 0),
		// Handler thread: rank 0's write notice invalidates our copy.
		ev(trace.EvNoticeApply, 2, 1, 5, 2_900, 0, 1, 0),
	}
	return []trace.RankTrack{
		{Rank: 1, Procs: 2, OffsetNS: 1_000_500, Events: rank1},
		{Rank: 0, Procs: 2, OffsetNS: 1_000_000, Events: rank0},
	}
}

func mergedJSON(t *testing.T) []byte {
	t.Helper()
	var buf bytes.Buffer
	if err := trace.WriteChromeRanks(&buf, syntheticRankTracks(), trace.ChromeOptions{}); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// TestChromeRanksGolden pins the merged multi-rank Perfetto export
// byte-for-byte. The input is synthetic and the exporter is a pure
// function of its input, so no scheduling caveats apply. Regenerate
// with:
//
//	go test ./internal/trace -run TestChromeRanksGolden -update
func TestChromeRanksGolden(t *testing.T) {
	got := mergedJSON(t)
	golden := filepath.Join("testdata", "merged_ranks_chrome.json")
	if *update {
		if err := os.WriteFile(golden, got, 0o644); err != nil {
			t.Fatal(err)
		}
		t.Logf("wrote %s (%d bytes)", golden, len(got))
		return
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("%v (regenerate with -update)", err)
	}
	if !bytes.Equal(got, want) {
		line := 1 + bytes.Count(want[:commonPrefix(got, want)], []byte("\n"))
		t.Errorf("merged trace diverges from %s at line %d (got %d bytes, want %d); regenerate with -update if the change is intended",
			golden, line, len(got), len(want))
	}
}

// TestChromeRanksStructure validates the merged export's shape: one
// Perfetto process per rank with proc/net thread names, timestamps
// re-based to zero, clock offsets applied, and events sorted by
// aligned time.
func TestChromeRanksStructure(t *testing.T) {
	var file struct {
		TraceEvents []struct {
			Name string         `json:"name"`
			Ph   string         `json:"ph"`
			PID  int            `json:"pid"`
			TID  int            `json:"tid"`
			TS   float64        `json:"ts"`
			Dur  float64        `json:"dur"`
			Args map[string]any `json:"args"`
		} `json:"traceEvents"`
	}
	if err := json.Unmarshal(mergedJSON(t), &file); err != nil {
		t.Fatalf("merged output is not valid JSON: %v", err)
	}

	threadNames := map[[2]int]string{} // (pid, tid) -> name
	var procNames []string
	var minTS = -1.0
	var lastTS float64
	var real int
	for _, e := range file.TraceEvents {
		switch e.Ph {
		case "M":
			name, _ := e.Args["name"].(string)
			if e.Name == "process_name" {
				procNames = append(procNames, name)
			} else {
				threadNames[[2]int{e.PID, e.TID}] = name
			}
		case "X", "i":
			real++
			if minTS < 0 || e.TS < minTS {
				minTS = e.TS
			}
			if e.TS < lastTS {
				t.Errorf("events out of timestamp order: %g after %g", e.TS, lastTS)
			}
			lastTS = e.TS
		default:
			t.Errorf("unexpected phase %q", e.Ph)
		}
	}
	if want := []string{"rank 0", "rank 1"}; len(procNames) != 2 || procNames[0] != want[0] || procNames[1] != want[1] {
		t.Errorf("process names = %v, want %v", procNames, want)
	}
	for pid := 1; pid <= 2; pid++ {
		for tid := 0; tid < 2; tid++ {
			if got := threadNames[[2]int{pid, tid}]; got != "proc "+string(rune('0'+tid)) {
				t.Errorf("thread (%d,%d) named %q", pid, tid, got)
			}
		}
		if got := threadNames[[2]int{pid, 2}]; got != "net" {
			t.Errorf("thread (%d,2) named %q, want net", pid, got)
		}
	}
	if real == 0 {
		t.Fatal("no events in merged output")
	}
	if minTS != 0 {
		t.Errorf("merged timeline starts at %g µs, want re-base to 0", minTS)
	}

	// Alignment: rank 0's first event (VT 100, offset 1_000_000) is the
	// timeline base; rank 1's first event (VT 120, offset 1_000_500)
	// must land 520 ns = 0.52 µs later.
	var first0, first1 float64 = -1, -1
	for _, e := range file.TraceEvents {
		if e.Ph != "X" && e.Ph != "i" {
			continue
		}
		if e.PID == 1 && first0 < 0 {
			first0 = e.TS
		}
		if e.PID == 2 && first1 < 0 {
			first1 = e.TS
		}
	}
	if first0 != 0 || first1 != 0.52 {
		t.Errorf("first event per rank at %g/%g µs, want 0/0.52 (clock offsets misapplied)", first0, first1)
	}
}

// TestMergedEventArgsMatchSingle ensures the merged exporter labels
// event args with the same names WriteChrome uses (both go through the
// shared eventArgs helper), so Perfetto queries written against
// single-process traces keep working on merged ones.
func TestMergedEventArgsMatchSingle(t *testing.T) {
	var file struct {
		TraceEvents []struct {
			Name string         `json:"name"`
			Ph   string         `json:"ph"`
			Args map[string]any `json:"args"`
		} `json:"traceEvents"`
	}
	if err := json.Unmarshal(mergedJSON(t), &file); err != nil {
		t.Fatal(err)
	}
	want := map[string][]string{
		"page-fetch":  {"bytes", "page"},
		"diff-out":    {"words", "page"},
		"flush-fence": {"pages"},
		"lock":        {},
	}
	seen := map[string]bool{}
	for _, e := range file.TraceEvents {
		keys, ok := want[e.Name]
		if !ok {
			continue
		}
		seen[e.Name] = true
		for _, k := range keys {
			if _, ok := e.Args[k]; !ok {
				t.Errorf("%s event missing %q arg (got %v)", e.Name, k, e.Args)
			}
		}
	}
	for _, name := range []string{"page-fetch", "diff-out", "flush-fence"} {
		if !seen[name] {
			t.Errorf("no %s event in synthetic merge", name)
		}
	}
}
