package trace_test

import (
	"bytes"
	"encoding/json"
	"flag"
	"os"
	"path/filepath"
	"runtime"
	"testing"

	"cashmere/internal/core"
	"cashmere/internal/trace"
)

var update = flag.Bool("update", false, "rewrite golden files")

// tracedRun drives a small deterministic workload on two
// single-processor nodes under a fresh tracer and returns it. The
// phases are serialized by set-once flags so no two processors ever
// contend for the interconnect at the same virtual instant — the
// simulator breaks genuine virtual-time ties by host arrival order, so
// a byte-stable trace must avoid them. (Application init epochs are
// avoided for the same reason: the charging toggle around BeginInit
// races with the other processors' barrier wake-ups.) The workload
// still exercises the protocol broadly: remote write faults with twin
// creation, read faults with page fetches, release-time diff flushes
// and write notices, acquire-time invalidations, and an ordered lock
// handoff.
func tracedRun(t *testing.T) *trace.Tracer {
	t.Helper()
	tr := trace.New(trace.Config{Procs: 2, Links: 2})
	c, err := core.New(core.Config{
		Nodes:        2,
		ProcsPerNode: 1,
		Protocol:     core.TwoLevel,
		PageWords:    16,
		SharedWords:  16 * 8, // 8 pages, homes alternating round-robin
		Locks:        1,
		Flags:        8,
		Trace:        tr,
	})
	if err != nil {
		t.Fatal(err)
	}
	const half = 4 * 16 // words per processor's half of the array
	c.Run(func(p *core.Proc) {
		me := p.ID()
		mine, theirs := me*half, (1-me)*half

		// Phase A: each processor fills its half, in turn.
		if me == 1 {
			p.WaitFlag(0)
		}
		for i := 0; i < half; i++ {
			p.Store(mine+i, int64(me*1000+i))
		}
		p.SetFlag(me)
		if me == 0 {
			p.WaitFlag(1)
		}
		p.Barrier()

		// Phase B: each processor reads the other's half, in turn.
		if me == 1 {
			p.WaitFlag(2)
		}
		for i := 0; i < half; i++ {
			if got := p.Load(theirs + i); got != int64((1-me)*1000+i) {
				t.Errorf("proc %d read %d at %d", me, got, theirs+i)
				break
			}
		}
		p.SetFlag(2 + me)
		if me == 0 {
			p.WaitFlag(3)
		}
		p.Barrier()

		// Phase C: an ordered lock handoff over a shared counter.
		if me == 0 {
			p.Lock(0)
			p.Store(0, 42)
			p.Unlock(0)
			p.SetFlag(4)
			p.WaitFlag(5)
		} else {
			p.WaitFlag(4)
			p.Lock(0)
			p.Store(1, p.Load(0)+1)
			p.Unlock(0)
			p.SetFlag(5)
		}
		p.Barrier()
	})
	return tr
}

func chromeJSON(t *testing.T, tr *trace.Tracer) []byte {
	t.Helper()
	var buf bytes.Buffer
	if err := trace.WriteChrome(&buf, tr, trace.ChromeOptions{}); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// TestChromeGolden pins the complete Chrome trace-event JSON of the
// two-processor workload against a golden file. Wall-time stamps are
// excluded from the export by default and virtual time is a function of
// the program and cost model alone, so with the tie-free workload above
// the file is bit-stable. GOMAXPROCS is pinned and the test skips under
// -race for the same reasons as the virtual-time determinism test (see
// internal/bench/determinism_test.go). Regenerate with:
//
//	go test ./internal/trace -run TestChromeGolden -update
func TestChromeGolden(t *testing.T) {
	if raceEnabled {
		t.Skip("virtual-time tie-breaks are host-order dependent under -race (see internal/bench/determinism_test.go)")
	}
	defer runtime.GOMAXPROCS(runtime.GOMAXPROCS(1))

	got := chromeJSON(t, tracedRun(t))
	golden := filepath.Join("testdata", "two_proc_chrome.json")
	if *update {
		if err := os.WriteFile(golden, got, 0o644); err != nil {
			t.Fatal(err)
		}
		t.Logf("wrote %s (%d bytes)", golden, len(got))
		return
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("%v (regenerate with -update)", err)
	}
	if bytes.Equal(got, want) {
		return
	}
	// Distinguish a real regression from an unrepeatable host schedule:
	// if a second fresh run disagrees with the first, this host isn't
	// scheduling repeatably and the comparison is meaningless.
	again := chromeJSON(t, tracedRun(t))
	if !bytes.Equal(again, got) {
		t.Skip("host schedule not repeatable; golden comparison skipped")
	}
	line := 1 + bytes.Count(want[:commonPrefix(got, want)], []byte("\n"))
	t.Errorf("chrome trace diverges from %s at line %d (got %d bytes, want %d); regenerate with -update if the change is intended",
		golden, line, len(got), len(want))
}

func commonPrefix(a, b []byte) int {
	n := 0
	for n < len(a) && n < len(b) && a[n] == b[n] {
		n++
	}
	return n
}

// TestChromeStructure validates the exporter's output shape on the same
// run without pinning exact bytes, so it runs under -race too: the file
// must parse as Chrome trace-event JSON with the expected process and
// thread metadata and only committed, well-formed events.
func TestChromeStructure(t *testing.T) {
	tr := tracedRun(t)
	evs := tr.Events()
	if len(evs) == 0 {
		t.Fatal("two-proc run recorded no events")
	}
	kinds := map[string]bool{}
	for _, e := range evs {
		kinds[e.Kind.String()] = true
	}
	for _, want := range []string{
		"read-fault", "write-fault", "page-fetch", "twin", "diff-out",
		"notice-send", "barrier", "lock", "unlock", "flag-set",
		"flag-wait", "dir-update", "link-transfer", "msg-send",
	} {
		if !kinds[want] {
			t.Errorf("no %s events in the two-node run (got %v)", want, kinds)
		}
	}
	if tr.Dropped() != 0 {
		t.Errorf("default ring size dropped %d events on a tiny run", tr.Dropped())
	}
	var file struct {
		TraceEvents []struct {
			Name string         `json:"name"`
			Ph   string         `json:"ph"`
			PID  int            `json:"pid"`
			TID  int            `json:"tid"`
			TS   float64        `json:"ts"`
			Args map[string]any `json:"args"`
		} `json:"traceEvents"`
	}
	if err := json.Unmarshal(chromeJSON(t, tr), &file); err != nil {
		t.Fatalf("chrome output is not valid JSON: %v", err)
	}
	var meta, spans, instants int
	for _, e := range file.TraceEvents {
		switch e.Ph {
		case "M":
			meta++
		case "X":
			spans++
		case "i":
			instants++
		default:
			t.Errorf("unexpected phase %q in event %+v", e.Ph, e)
		}
		if e.Ph != "M" && e.PID != 1 && e.PID != 2 {
			t.Errorf("event on unknown pid %d: %+v", e.PID, e)
		}
	}
	if meta < 2+2+2 { // two process_name + two cpu threads + two link threads
		t.Errorf("only %d metadata events", meta)
	}
	if spans == 0 || instants == 0 {
		t.Errorf("want both spans and instants, got %d/%d", spans, instants)
	}
}
