// Package trace is the protocol observability layer: a low-overhead
// structured recorder of typed protocol events (faults, page fetches,
// twins and diffs, write notices, shootdowns, synchronization epochs,
// and Memory Channel traffic), stamped with both virtual time and host
// wall time.
//
// Each simulated processor owns a lock-free ring buffer (single
// producer; concurrent readers validate slots with per-slot sequence
// numbers, so an export racing the run sees only committed events) and
// each Memory Channel link has a mutex-guarded ring for events emitted
// outside processor context. Emission never charges virtual time, so a
// traced run produces the same virtual-time results as an untraced one;
// with tracing disabled the protocol pays a single nil check per
// emission site and the access fast path is untouched.
//
// Exporters turn a recorded run into:
//
//   - Chrome trace-event JSON ([WriteChrome]), loadable in Perfetto,
//     with one track per simulated processor and one per fabric link
//     (transport/simchan), plus a multi-rank merge ([WriteChromeRanks])
//     for the multi-process runtime;
//   - a per-page text timeline ([WritePageTimeline]), the structured
//     successor of the CASHMERE_TRACE_PAGE stderr dump; and
//   - histogram summaries ([Tracer.Summary]: fault latency, diff size,
//     messages per barrier interval) for the cashmere-bench -json
//     results file.
//
// # Concurrency
//
// A processor ring's Emit may be called only by its owning goroutine.
// EmitLink, Notef, Snapshot, Events, and Summary are safe to call from
// any goroutine at any time, including concurrently with emission.
package trace

import (
	"fmt"
	"io"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// Kind identifies one protocol event type.
type Kind uint8

// The protocol events of the Cashmere-2L coherence engine. Span events
// (nonzero Dur) cover an interval of virtual time; the rest are
// instants.
const (
	EvNone            Kind = iota
	EvReadFault            // span: read access violation entry to resolution
	EvWriteFault           // span: write access violation entry to resolution
	EvPageFetch            // span: page transfer from the home node; Arg=bytes, Arg2=home protocol node
	EvTwin                 // instant: twin created; Arg=page words
	EvDiffOut              // instant: outgoing diff flushed to the home; Arg=changed words, Arg2=PackWordSpan of the changed offsets
	EvDiffIn               // instant: incoming diff applied; Arg=changed words
	EvNoticeSend           // instant: write notice posted; Arg=destination protocol node
	EvNoticeApply          // instant: write notice consumed as an invalidation at an acquire
	EvShootdown            // instant: 2LS write-mapping revocation; Arg=victim local processor
	EvShootdownDrain       // instant: in-flight store-range runs drained; Arg=revoked writers
	EvExclEnter            // instant: page entered exclusive mode
	EvExclBreak            // span: explicit-request exchange breaking exclusive mode; Arg=holder node, Arg2=holder proc
	EvBarrier              // span: barrier arrival through departure-side acquire
	EvLock                 // span: lock acquisition through acquire actions; Arg=lock index
	EvUnlock               // span: release actions through lock release; Arg=lock index
	EvFlagSet              // span: release actions through flag raise; Arg=flag index
	EvFlagWait             // span: flag wait through acquire actions; Arg=flag index
	EvDirUpdate            // instant: directory word broadcast; Arg=writing protocol node
	EvHomeMigrate          // instant: first-touch superpage relocation; Arg=old home, Arg2=new home
	EvLinkTransfer         // span: bulk transfer occupying a fabric link; Arg=bytes
	EvMsgSend              // instant/span: synchronization write on a fabric link; Arg2=msgLock*/msgFlag* subtype
	EvMsgDeliver           // instant: synchronization write observed by a waiter
	EvPolicyMode           // instant: adaptive policy changed a page's coherence mode; Arg=old mode, Arg2=new mode
	EvPolicyReplicate      // instant: adaptive policy replicated a page cluster-wide; Arg=nodes touched
	EvFlushFence           // span: multi-process release flush through the last flush-ack; Arg=pages flushed
	numKinds
)

// EvMsgSend subtypes, recorded in Arg2.
const (
	MsgLockAcquire int64 = iota
	MsgLockRelease
	MsgFlagSet
	MsgFlagReset
)

var kindNames = [...]string{
	EvNone:            "none",
	EvReadFault:       "read-fault",
	EvWriteFault:      "write-fault",
	EvPageFetch:       "page-fetch",
	EvTwin:            "twin",
	EvDiffOut:         "diff-out",
	EvDiffIn:          "diff-in",
	EvNoticeSend:      "notice-send",
	EvNoticeApply:     "notice-apply",
	EvShootdown:       "shootdown",
	EvShootdownDrain:  "shootdown-drain",
	EvExclEnter:       "excl-enter",
	EvExclBreak:       "excl-break",
	EvBarrier:         "barrier",
	EvLock:            "lock",
	EvUnlock:          "unlock",
	EvFlagSet:         "flag-set",
	EvFlagWait:        "flag-wait",
	EvDirUpdate:       "dir-update",
	EvHomeMigrate:     "home-migrate",
	EvLinkTransfer:    "link-transfer",
	EvMsgSend:         "msg-send",
	EvMsgDeliver:      "msg-deliver",
	EvPolicyMode:      "policy-mode",
	EvPolicyReplicate: "policy-replicate",
	EvFlushFence:      "flush-fence",
}

// String returns the event kind's name.
func (k Kind) String() string {
	if int(k) < len(kindNames) {
		return kindNames[k]
	}
	return fmt.Sprintf("Kind(%d)", int(k))
}

// NumKinds is the number of defined event kinds.
const NumKinds = int(numKinds)

// Event is one recorded protocol event.
type Event struct {
	Kind Kind
	Proc int32 // emitting global processor id; -1 on link tracks
	Node int32 // protocol node (processor events) or physical link (link events)
	Page int32 // page number; -1 when not page-related
	VT   int64 // virtual time at the event (span start), nanoseconds
	Dur  int64 // span length in virtual nanoseconds; 0 for instants
	WT   int64 // host wall-clock nanoseconds since the tracer started
	Arg  int64 // kind-specific payload (bytes, words, target ids)
	Arg2 int64 // second kind-specific payload
}

// packMeta squeezes kind, proc, node, and page into one word so a slot
// commits in few atomic stores. Proc, node (12 bits each) and page
// (32 bits) are stored biased by one so -1 round-trips.
func packMeta(e Event) int64 {
	return int64(e.Kind)<<56 |
		int64(uint64(uint32(e.Proc+1))&0xfff)<<44 |
		int64(uint64(uint32(e.Node+1))&0xfff)<<32 |
		int64(uint32(e.Page+1))
}

func unpackMeta(m int64, e *Event) {
	e.Kind = Kind(uint64(m) >> 56)
	e.Proc = int32(uint64(m)>>44&0xfff) - 1
	e.Node = int32(uint64(m)>>32&0xfff) - 1
	e.Page = int32(uint32(m)) - 1
}

// slot holds one event in atomically-accessed words. seq is 2*pos+1
// while position pos is being written and 2*pos+2 once it has
// committed, so a reader can detect both torn and recycled slots.
type slot struct {
	seq atomic.Uint64
	w   [5]atomic.Int64 // meta, vt, dur, wt, arg
	a2  atomic.Int64
}

// Ring is a fixed-capacity event buffer with a single producer. When
// full it overwrites the oldest events (the most recent window is the
// interesting one); Dropped reports how many were lost. Readers never
// block the producer: Snapshot skips slots that are mid-write.
type Ring struct {
	slots []slot
	mask  uint64
	head  atomic.Uint64 // next position to write; monotonically increasing

	// Producer-owned summary accumulators (see hist.go). The histogram
	// buckets themselves are atomic so Summary may run concurrently.
	counts    [NumKinds]atomic.Int64
	faultNS   hist
	diffWords hist
	msgsBar   hist
	msgsSince int64 // producer-only: protocol messages since the last barrier
}

// NewRing returns a ring holding at least capacity events (rounded up
// to a power of two, minimum 2).
func NewRing(capacity int) *Ring {
	n := 2
	for n < capacity {
		n <<= 1
	}
	return &Ring{slots: make([]slot, n), mask: uint64(n - 1)}
}

// Cap returns the ring's capacity in events.
func (r *Ring) Cap() int { return len(r.slots) }

// Emitted returns the total number of events emitted, including any
// that have since been overwritten.
func (r *Ring) Emitted() uint64 { return r.head.Load() }

// Dropped returns how many events have been overwritten.
func (r *Ring) Dropped() uint64 {
	if h := r.head.Load(); h > uint64(len(r.slots)) {
		return h - uint64(len(r.slots))
	}
	return 0
}

// Emit records e. Only the ring's owning goroutine may call it.
func (r *Ring) Emit(e Event) {
	pos := r.head.Load()
	s := &r.slots[pos&r.mask]
	s.seq.Store(2*pos + 1)
	s.w[0].Store(packMeta(e))
	s.w[1].Store(e.VT)
	s.w[2].Store(e.Dur)
	s.w[3].Store(e.WT)
	s.w[4].Store(e.Arg)
	s.a2.Store(e.Arg2)
	s.seq.Store(2*pos + 2)
	r.head.Store(pos + 1)
	r.note(e)
}

// Snapshot appends the ring's committed events to dst, oldest first,
// and returns the result. It is safe to call while the producer is
// emitting: a slot overwritten or mid-write during the read is skipped.
func (r *Ring) Snapshot(dst []Event) []Event {
	head := r.head.Load()
	start := uint64(0)
	if head > uint64(len(r.slots)) {
		start = head - uint64(len(r.slots))
	}
	for pos := start; pos < head; pos++ {
		s := &r.slots[pos&r.mask]
		want := 2*pos + 2
		if s.seq.Load() != want {
			continue // being rewritten by a newer event
		}
		var e Event
		unpackMeta(s.w[0].Load(), &e)
		e.VT = s.w[1].Load()
		e.Dur = s.w[2].Load()
		e.WT = s.w[3].Load()
		e.Arg = s.w[4].Load()
		e.Arg2 = s.a2.Load()
		if s.seq.Load() != want {
			continue // overwritten while we were reading
		}
		dst = append(dst, e)
	}
	return dst
}

// Config describes a Tracer.
type Config struct {
	// Procs and Links size the per-processor and per-link ring sets. A
	// cluster needs one ring per simulated processor and one per
	// physical node (fabric link). The multi-process runtime uses one
	// ring per local processor goroutine plus one for the frame-handler
	// goroutine, and no link rings.
	Procs int
	Links int

	// RingSize is the per-ring capacity in events (rounded up to a
	// power of two). Zero means DefaultRingSize.
	RingSize int

	// Pages, when non-empty, is the page filter for the live Notef
	// stream and the default page set of WritePageTimeline. It does not
	// restrict which events are recorded.
	Pages map[int]bool

	// Live, when set, receives Notef lines for pages in the filter as
	// they happen — the behavior CASHMERE_TRACE_PAGE historically
	// provided on stderr.
	Live io.Writer
}

// DefaultRingSize is the per-ring event capacity used when Config
// leaves RingSize zero.
const DefaultRingSize = 1 << 14

// Tracer records the events of one cluster run.
type Tracer struct {
	start time.Time

	procs []*Ring
	links []*Ring
	lmu   []sync.Mutex // guards the corresponding links ring (multi-producer)

	pages  map[int]bool
	live   io.Writer
	livemu sync.Mutex
}

// New returns a tracer for a cluster with the given shape.
func New(cfg Config) *Tracer {
	if cfg.RingSize <= 0 {
		cfg.RingSize = DefaultRingSize
	}
	t := &Tracer{
		start: time.Now(),
		procs: make([]*Ring, cfg.Procs),
		links: make([]*Ring, cfg.Links),
		lmu:   make([]sync.Mutex, cfg.Links),
		live:  cfg.Live,
	}
	for i := range t.procs {
		t.procs[i] = NewRing(cfg.RingSize)
	}
	for i := range t.links {
		t.links[i] = NewRing(cfg.RingSize)
	}
	if len(cfg.Pages) > 0 {
		t.pages = make(map[int]bool, len(cfg.Pages))
		for p, ok := range cfg.Pages {
			if ok {
				t.pages[p] = true
			}
		}
	}
	return t
}

// Procs returns the number of processor rings.
func (t *Tracer) Procs() int { return len(t.procs) }

// Links returns the number of link rings.
func (t *Tracer) Links() int { return len(t.links) }

// ProcRing returns processor i's ring, or nil if i is out of range.
func (t *Tracer) ProcRing(i int) *Ring {
	if i < 0 || i >= len(t.procs) {
		return nil
	}
	return t.procs[i]
}

// WallNow returns nanoseconds of host wall time since the tracer was
// created — the WT stamp of events.
func (t *Tracer) WallNow() int64 { return time.Since(t.start).Nanoseconds() }

// EmitProc records e on processor proc's track, stamping wall time.
func (t *Tracer) EmitProc(proc int, e Event) {
	r := t.ProcRing(proc)
	if r == nil {
		return
	}
	e.WT = t.WallNow()
	r.Emit(e)
}

// EmitLink records e on link link's track, stamping wall time. Unlike
// processor rings, link rings accept concurrent emitters (any processor
// of a node injects traffic on its link), serialized by a per-link
// mutex.
func (t *Tracer) EmitLink(link int, e Event) {
	if link < 0 || link >= len(t.links) {
		return
	}
	e.WT = t.WallNow()
	t.lmu[link].Lock()
	t.links[link].Emit(e)
	t.lmu[link].Unlock()
}

// TracesPage reports whether page is in the live page filter.
func (t *Tracer) TracesPage(page int) bool { return t.pages[page] }

// FilterPages returns the sorted page filter, or nil when no filter is
// set.
func (t *Tracer) FilterPages() []int {
	if len(t.pages) == 0 {
		return nil
	}
	out := make([]int, 0, len(t.pages))
	for p := range t.pages {
		out = append(out, p)
	}
	sort.Ints(out)
	return out
}

// ClampPages removes filter pages outside [0, pages), calling warn for
// each removed page. The cluster applies it once the page count is
// known, so a typo'd CASHMERE_TRACE_PAGE or -trace-pages entry is
// reported instead of silently never matching.
func (t *Tracer) ClampPages(pages int, warn func(page int)) {
	for p := range t.pages {
		if p >= pages {
			delete(t.pages, p)
			if warn != nil {
				warn(p)
			}
		}
	}
}

// Notef writes a live free-form trace line for page if it is in the
// page filter — the formatted stderr stream CASHMERE_TRACE_PAGE users
// rely on, now carried by the tracer.
func (t *Tracer) Notef(proc, node, page int, format string, args ...any) {
	if t.live == nil || !t.pages[page] {
		return
	}
	t.livemu.Lock()
	fmt.Fprintf(t.live, "[p%d n%d pg%d] %s\n", proc, node, page, fmt.Sprintf(format, args...))
	t.livemu.Unlock()
}

// Events returns every committed event, merged across all rings and
// sorted by virtual time. Ties preserve per-ring emission order, with
// processor tracks (in id order) before link tracks, so the merge is
// deterministic whenever the per-processor virtual-time streams are.
func (t *Tracer) Events() []Event {
	type tagged struct {
		e     Event
		track int
		seq   int
	}
	var all []tagged
	var buf []Event
	track := 0
	collect := func(r *Ring) {
		buf = r.Snapshot(buf[:0])
		for i, e := range buf {
			all = append(all, tagged{e, track, i})
		}
		track++
	}
	for _, r := range t.procs {
		collect(r)
	}
	for i, r := range t.links {
		t.lmu[i].Lock()
		collect(r)
		t.lmu[i].Unlock()
	}
	sort.SliceStable(all, func(i, j int) bool {
		a, b := all[i], all[j]
		if a.e.VT != b.e.VT {
			return a.e.VT < b.e.VT
		}
		if a.track != b.track {
			return a.track < b.track
		}
		return a.seq < b.seq
	})
	out := make([]Event, len(all))
	for i, tg := range all {
		out[i] = tg.e
	}
	return out
}

// Dropped returns the total number of events overwritten across all
// rings.
func (t *Tracer) Dropped() uint64 {
	var n uint64
	for _, r := range t.procs {
		n += r.Dropped()
	}
	for _, r := range t.links {
		n += r.Dropped()
	}
	return n
}

// PackWordSpan packs an inclusive changed-word span [lo, hi] into one
// event payload word (EvDiffOut's Arg2): lo in the upper half, hi+1 in
// the lower. An empty span (lo < 0) packs to zero, which UnpackWordSpan
// reports as not-ok, so a zero-filled legacy event decodes as "span
// unknown" rather than as word 0.
func PackWordSpan(lo, hi int) int64 {
	if lo < 0 {
		return 0
	}
	return int64(lo)<<32 | int64(hi+1)
}

// UnpackWordSpan decodes a PackWordSpan payload. ok is false when no
// span was recorded.
func UnpackWordSpan(v int64) (lo, hi int, ok bool) {
	if v == 0 {
		return 0, 0, false
	}
	return int(v >> 32), int(v&0xffffffff) - 1, true
}

// ParsePageList parses a comma-separated list of non-negative page
// numbers ("7" or "7,12,40"). Empty elements are rejected so a typo
// like "7,,12" is reported instead of silently dropped. This is the
// syntax of both the CASHMERE_TRACE_PAGE environment variable and the
// -trace-pages flag.
func ParsePageList(v string) (map[int]bool, error) {
	pages := make(map[int]bool)
	for _, field := range strings.Split(v, ",") {
		field = strings.TrimSpace(field)
		n, err := strconv.Atoi(field)
		if err != nil {
			return nil, fmt.Errorf("bad page number %q", field)
		}
		if n < 0 {
			return nil, fmt.Errorf("negative page number %d", n)
		}
		pages[n] = true
	}
	return pages, nil
}
