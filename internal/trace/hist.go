package trace

import (
	"math/bits"
	"sync/atomic"
)

// Histogram summaries are accumulated at emission time, not derived
// from ring contents, so they stay exact even after a ring has wrapped
// and overwritten its oldest events. Buckets are powers of two (bucket
// i holds values v with bits.Len64(v) == i, i.e. 2^(i-1) <= v < 2^i),
// which is plenty of resolution for "where does protocol time go"
// questions while keeping the accumulators atomic and allocation-free.

// hist is a power-of-two-bucketed histogram safe for one concurrent
// writer and any number of readers.
type hist struct {
	buckets [65]atomic.Int64
	count   atomic.Int64
	sum     atomic.Int64
}

func (h *hist) add(v int64) {
	if v < 0 {
		v = 0
	}
	h.buckets[bits.Len64(uint64(v))].Add(1)
	h.count.Add(1)
	h.sum.Add(v)
}

// note feeds r's summary accumulators from one emitted event. Called by
// the ring's producer only.
func (r *Ring) note(e Event) {
	r.counts[e.Kind].Add(1)
	switch e.Kind {
	case EvReadFault, EvWriteFault:
		r.faultNS.add(e.Dur)
	case EvDiffOut, EvDiffIn:
		r.diffWords.add(e.Arg)
	case EvNoticeSend, EvDirUpdate, EvPageFetch, EvMsgSend:
		r.msgsSince++
	case EvBarrier:
		r.msgsBar.add(r.msgsSince)
		r.msgsSince = 0
	}
}

// HistAcc is the exported power-of-two histogram accumulator for
// layers outside the tracer rings (the transport frame statistics use
// it for request→reply wall latencies). All operations are atomic:
// Add may be called from any number of goroutines concurrently with
// Export.
type HistAcc struct{ h hist }

// Add records one sample (negative values count as zero).
func (a *HistAcc) Add(v int64) { a.h.add(v) }

// Export renders the accumulator's current state.
func (a *HistAcc) Export() Hist { return exportHist(&a.h) }

// HistBucket is one populated histogram bucket: values in [Lo, 2*Lo)
// (Lo = 0 covers exactly zero).
type HistBucket struct {
	Lo    int64 `json:"lo"`
	Count int64 `json:"count"`
}

// Hist is the exported form of a histogram.
type Hist struct {
	Count   int64        `json:"count"`
	Sum     int64        `json:"sum"`
	Mean    float64      `json:"mean,omitempty"`
	Buckets []HistBucket `json:"buckets,omitempty"`
}

// export renders h; merge folds additional histograms in first.
func exportHist(hs ...*hist) Hist {
	var out Hist
	var buckets [65]int64
	for _, h := range hs {
		out.Count += h.count.Load()
		out.Sum += h.sum.Load()
		for i := range h.buckets {
			buckets[i] += h.buckets[i].Load()
		}
	}
	if out.Count > 0 {
		out.Mean = float64(out.Sum) / float64(out.Count)
	}
	for i, c := range buckets {
		if c == 0 {
			continue
		}
		lo := int64(0)
		if i > 0 {
			lo = int64(1) << (i - 1)
		}
		out.Buckets = append(out.Buckets, HistBucket{Lo: lo, Count: c})
	}
	return out
}

// Summary is the aggregate view of a traced run: per-kind event counts
// and the three headline distributions of the paper's evaluation —
// fault service latency, diff size, and protocol messages per barrier
// interval (per processor). It marshals to JSON for the cashmere-bench
// results file.
type Summary struct {
	// Events counts recorded events by kind name; zero kinds are
	// omitted.
	Events map[string]int64 `json:"events,omitempty"`

	// Dropped is the number of events lost to ring wraparound (the
	// summaries above are exact regardless).
	Dropped uint64 `json:"dropped,omitempty"`

	// FaultLatencyNS is the distribution of read/write fault service
	// times in virtual nanoseconds (EvReadFault/EvWriteFault spans).
	FaultLatencyNS Hist `json:"fault_latency_ns"`

	// DiffWords is the distribution of outgoing and incoming diff sizes
	// in changed words.
	DiffWords Hist `json:"diff_words"`

	// MsgsPerBarrier is the distribution, per processor, of protocol
	// messages (write notices, directory updates, page fetch requests,
	// synchronization writes) sent between consecutive barriers.
	MsgsPerBarrier Hist `json:"msgs_per_barrier"`
}

// Summary aggregates the tracer's accumulators. It may be called at any
// time, including while the run is still emitting.
func (t *Tracer) Summary() Summary {
	var s Summary
	s.Events = make(map[string]int64)
	var faults, diffs, msgs []*hist
	all := append(append([]*Ring(nil), t.procs...), t.links...)
	for _, r := range all {
		for k := 0; k < NumKinds; k++ {
			if n := r.counts[k].Load(); n != 0 {
				s.Events[Kind(k).String()] += n
			}
		}
		faults = append(faults, &r.faultNS)
		diffs = append(diffs, &r.diffWords)
		msgs = append(msgs, &r.msgsBar)
	}
	if len(s.Events) == 0 {
		s.Events = nil
	}
	s.Dropped = t.Dropped()
	s.FaultLatencyNS = exportHist(faults...)
	s.DiffWords = exportHist(diffs...)
	s.MsgsPerBarrier = exportHist(msgs...)
	return s
}
