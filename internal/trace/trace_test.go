package trace

import (
	"strings"
	"sync"
	"testing"
)

// TestRingWraparound exercises the overwrite path: a full ring keeps
// the newest window, reports the overflow in Dropped, and Snapshot
// returns exactly the surviving events oldest-first.
func TestRingWraparound(t *testing.T) {
	r := NewRing(4)
	if r.Cap() != 4 {
		t.Fatalf("Cap = %d, want 4", r.Cap())
	}
	for i := 0; i < 10; i++ {
		r.Emit(Event{Kind: EvDirUpdate, Proc: 3, Node: 1, Page: int32(i), VT: int64(i * 100), Arg: int64(i)})
	}
	if got := r.Emitted(); got != 10 {
		t.Errorf("Emitted = %d, want 10", got)
	}
	if got := r.Dropped(); got != 6 {
		t.Errorf("Dropped = %d, want 6", got)
	}
	evs := r.Snapshot(nil)
	if len(evs) != 4 {
		t.Fatalf("Snapshot returned %d events, want 4", len(evs))
	}
	for i, e := range evs {
		want := int64(6 + i)
		if e.Arg != want || e.VT != want*100 || e.Page != int32(want) {
			t.Errorf("event %d = %+v, want Arg=%d VT=%d Page=%d", i, e, want, want*100, want)
		}
		if e.Kind != EvDirUpdate || e.Proc != 3 || e.Node != 1 {
			t.Errorf("event %d metadata = %+v", i, e)
		}
	}
}

// TestRingCapacityRounding checks the power-of-two rounding and the
// minimum size.
func TestRingCapacityRounding(t *testing.T) {
	for _, c := range []struct{ ask, want int }{{0, 2}, {1, 2}, {3, 4}, {4, 4}, {5, 8}, {1000, 1024}} {
		if got := NewRing(c.ask).Cap(); got != c.want {
			t.Errorf("NewRing(%d).Cap() = %d, want %d", c.ask, got, c.want)
		}
	}
}

// TestMetaRoundTrip checks the packed metadata word, including the -1
// sentinels for proc and page used by link-track events.
func TestMetaRoundTrip(t *testing.T) {
	cases := []Event{
		{Kind: EvReadFault, Proc: 0, Node: 0, Page: 0},
		{Kind: EvMsgSend, Proc: -1, Node: 7, Page: -1},
		{Kind: EvBarrier, Proc: 31, Node: 7, Page: -1},
		{Kind: EvLinkTransfer, Proc: -1, Node: 0, Page: 1<<31 - 2},
	}
	for _, in := range cases {
		var out Event
		unpackMeta(packMeta(in), &out)
		if out.Kind != in.Kind || out.Proc != in.Proc || out.Node != in.Node || out.Page != in.Page {
			t.Errorf("round trip %+v -> %+v", in, out)
		}
	}
}

// TestRingConcurrentSnapshot runs an exporter against a live producer.
// Every event the snapshot returns must be fully committed — the
// sequence validation must never surface a torn slot — and the race
// detector checks the memory discipline.
func TestRingConcurrentSnapshot(t *testing.T) {
	r := NewRing(64)
	const total = 20000
	done := make(chan struct{})
	go func() {
		defer close(done)
		for i := 0; i < total; i++ {
			// Arg mirrors VT so a reader can verify slot integrity.
			r.Emit(Event{Kind: EvDirUpdate, Proc: 1, Node: 0, Page: int32(i % 128), VT: int64(i), Arg: int64(i)})
		}
	}()
	var buf []Event
	for alive := true; alive; {
		select {
		case <-done:
			alive = false
		default:
		}
		buf = r.Snapshot(buf[:0])
		for _, e := range buf {
			if e.Arg != e.VT {
				t.Fatalf("torn event surfaced: %+v", e)
			}
			if e.Kind != EvDirUpdate {
				t.Fatalf("corrupt kind: %+v", e)
			}
		}
	}
	if got := r.Emitted(); got != total {
		t.Errorf("Emitted = %d, want %d", got, total)
	}
	buf = r.Snapshot(buf[:0])
	if len(buf) != r.Cap() {
		t.Errorf("final snapshot has %d events, want %d", len(buf), r.Cap())
	}
}

// TestTracerConcurrentEmitExport drives every tracer surface at once:
// per-processor producers, multi-producer link emission, and a
// concurrent Events export. Correctness here is largely the race
// detector's verdict plus the final census.
func TestTracerConcurrentEmitExport(t *testing.T) {
	tr := New(Config{Procs: 4, Links: 2, RingSize: 1 << 10})
	const perProc = 500
	var wg sync.WaitGroup
	for p := 0; p < tr.Procs(); p++ {
		p := p
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < perProc; i++ {
				tr.EmitProc(p, Event{Kind: EvReadFault, Proc: int32(p), Node: int32(p / 2), Page: int32(i), VT: int64(i), Dur: 10})
				tr.EmitLink(p/2, Event{Kind: EvLinkTransfer, Proc: -1, Node: int32(p / 2), Page: -1, VT: int64(i), Arg: 64})
			}
		}()
	}
	stop := make(chan struct{})
	var exp sync.WaitGroup
	exp.Add(1)
	go func() {
		defer exp.Done()
		for {
			select {
			case <-stop:
				return
			default:
				_ = tr.Events()
				_ = tr.Summary()
			}
		}
	}()
	wg.Wait()
	close(stop)
	exp.Wait()

	evs := tr.Events()
	want := tr.Procs()*perProc + tr.Procs()*perProc // proc events + link events
	if len(evs) != want {
		t.Fatalf("Events returned %d, want %d", len(evs), want)
	}
	for i := 1; i < len(evs); i++ {
		if evs[i].VT < evs[i-1].VT {
			t.Fatalf("Events not sorted by VT at %d: %d after %d", i, evs[i].VT, evs[i-1].VT)
		}
	}
	sum := tr.Summary()
	if sum.Events["read-fault"] != int64(tr.Procs()*perProc) {
		t.Errorf("summary read-fault = %d, want %d", sum.Events["read-fault"], tr.Procs()*perProc)
	}
	if sum.FaultLatencyNS.Count != int64(tr.Procs()*perProc) {
		t.Errorf("fault latency count = %d", sum.FaultLatencyNS.Count)
	}
}

// TestSummarySurvivesWraparound: histogram summaries accumulate at
// emission time, so they stay exact even after the ring has overwritten
// the events they came from.
func TestSummarySurvivesWraparound(t *testing.T) {
	tr := New(Config{Procs: 1, Links: 0, RingSize: 2})
	const n = 100
	var wantSum int64
	for i := 1; i <= n; i++ {
		tr.EmitProc(0, Event{Kind: EvWriteFault, Proc: 0, Node: 0, Page: 0, VT: int64(i), Dur: int64(i)})
		wantSum += int64(i)
	}
	sum := tr.Summary()
	if sum.Events["write-fault"] != n {
		t.Errorf("write-fault count = %d, want %d", sum.Events["write-fault"], n)
	}
	if sum.FaultLatencyNS.Count != n || sum.FaultLatencyNS.Sum != wantSum {
		t.Errorf("fault hist = count %d sum %d, want %d/%d",
			sum.FaultLatencyNS.Count, sum.FaultLatencyNS.Sum, n, wantSum)
	}
	if sum.Dropped == 0 {
		t.Error("expected drops with a 2-slot ring")
	}
	var total int64
	for _, b := range sum.FaultLatencyNS.Buckets {
		total += b.Count
	}
	if total != n {
		t.Errorf("bucket counts sum to %d, want %d", total, n)
	}
}

// TestClampPages checks the out-of-range page rejection shared by
// CASHMERE_TRACE_PAGE and -trace-pages.
func TestClampPages(t *testing.T) {
	tr := New(Config{Procs: 1, Links: 1, RingSize: 4,
		Pages: map[int]bool{1: true, 9: true, 99: true}})
	var warned []int
	tr.ClampPages(10, func(p int) { warned = append(warned, p) })
	if len(warned) != 1 || warned[0] != 99 {
		t.Errorf("warned = %v, want [99]", warned)
	}
	if !tr.TracesPage(1) || !tr.TracesPage(9) {
		t.Error("in-range pages dropped from filter")
	}
	if tr.TracesPage(99) {
		t.Error("out-of-range page survived clamp")
	}
	if got := tr.FilterPages(); len(got) != 2 || got[0] != 1 || got[1] != 9 {
		t.Errorf("FilterPages = %v, want [1 9]", got)
	}
}

// TestParsePageList checks both directions of the list syntax,
// including the rejects that used to be silently dropped.
func TestParsePageList(t *testing.T) {
	good, err := ParsePageList("7, 12,40")
	if err != nil {
		t.Fatalf("ParsePageList: %v", err)
	}
	for _, p := range []int{7, 12, 40} {
		if !good[p] {
			t.Errorf("page %d missing from %v", p, good)
		}
	}
	for _, bad := range []string{"", "7,,12", "7,-3", "x", "7,nope"} {
		if _, err := ParsePageList(bad); err == nil {
			t.Errorf("ParsePageList(%q) accepted", bad)
		}
	}
}

// TestNotef checks the live CASHMERE_TRACE_PAGE-style stream honors the
// page filter and format.
func TestNotef(t *testing.T) {
	var sb strings.Builder
	tr := New(Config{Procs: 1, Links: 1, RingSize: 4,
		Pages: map[int]bool{5: true}, Live: &sb})
	tr.Notef(2, 1, 5, "fetch %d bytes", 8192)
	tr.Notef(2, 1, 6, "should be filtered")
	got := sb.String()
	want := "[p2 n1 pg5] fetch 8192 bytes\n"
	if got != want {
		t.Errorf("Notef output %q, want %q", got, want)
	}
}
