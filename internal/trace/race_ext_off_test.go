//go:build !race

package trace_test

const raceEnabled = false
