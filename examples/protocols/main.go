// Protocols example: runs one application (Em3d, the paper's clearest
// two-level win) under all four coherence protocols and prints the
// comparison — a miniature of the paper's Figure 7.
//
//	go run ./examples/protocols
package main

import (
	"fmt"
	"log"

	"cashmere"
	"cashmere/internal/apps"
	"cashmere/internal/core"
)

func main() {
	kinds := []cashmere.Kind{
		cashmere.TwoLevel, cashmere.TwoLevelSD,
		cashmere.OneLevelDiff, cashmere.OneLevelWrite,
	}
	fmt.Printf("%-5s %9s %10s %12s %14s\n", "proto", "speedup", "exec (s)", "data (MB)", "transfers")
	for _, k := range kinds {
		app := apps.DefaultEm3d()
		cfg := core.Config{Nodes: 8, ProcsPerNode: 4, Protocol: k}
		res, err := apps.Run(app, cfg)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-5s %9.1f %10.3f %12.2f %14d\n",
			k, apps.Speedup(app, cfg, res), res.ExecSeconds(), res.DataMB(),
			res.Counts[4])
	}
	fmt.Println("\nThe two-level protocols coalesce page fetches within each")
	fmt.Println("SMP node, cutting transfers and data volume (paper Section 3.3.2).")
}
