// TSP example: branch-and-bound travelling salesman with a shared bound
// under a lock — the paper's non-deterministic, lock-based benchmark.
// Demonstrates lock-protected shared state and result validation.
//
//	go run ./examples/tsp
package main

import (
	"fmt"
	"log"

	"cashmere"
	"cashmere/internal/apps"
	"cashmere/internal/core"
)

func main() {
	app := apps.DefaultTSP()
	cfg := core.Config{Nodes: 8, ProcsPerNode: 4, Protocol: cashmere.TwoLevel}
	res, err := apps.Run(app, cfg) // Run verifies optimality internally
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("TSP %s: optimal tour verified\n", app.DataSet())
	fmt.Printf("speedup %.1f, lock acquires %d, data %.2f MB\n",
		apps.Speedup(app, cfg, res), res.Counts[0], res.DataMB())
}
