// SOR example: runs the red-black successive over-relaxation benchmark
// (the paper's highest computation-to-communication-ratio application)
// on the full simulated cluster under a chosen protocol and prints its
// speedup and protocol statistics.
//
//	go run ./examples/sor
//	go run ./examples/sor -protocol 1LD -nodes 4 -ppn 4
package main

import (
	"flag"
	"fmt"
	"log"

	"cashmere"
	"cashmere/internal/apps"
	"cashmere/internal/core"
)

func main() {
	proto := flag.String("protocol", "2L", "2L, 2LS, 1LD, or 1L")
	nodes := flag.Int("nodes", 8, "SMP nodes")
	ppn := flag.Int("ppn", 4, "processors per node")
	flag.Parse()

	kinds := map[string]cashmere.Kind{
		"2L": cashmere.TwoLevel, "2LS": cashmere.TwoLevelSD,
		"1LD": cashmere.OneLevelDiff, "1L": cashmere.OneLevelWrite,
	}
	kind, ok := kinds[*proto]
	if !ok {
		log.Fatalf("unknown protocol %q", *proto)
	}

	app := apps.DefaultSOR()
	cfg := core.Config{Nodes: *nodes, ProcsPerNode: *ppn, Protocol: kind}
	res, err := apps.Run(app, cfg)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("SOR %s on %d:%d under %s\n", app.DataSet(), *nodes**ppn, *ppn, kind)
	fmt.Printf("speedup %.1f (sequential %.2fs, parallel %.2fs)\n",
		apps.Speedup(app, cfg, res),
		float64(app.SeqTime(cashmere.DefaultCosts()))/1e9, res.ExecSeconds())
	fmt.Print(res.Total.String())
}
