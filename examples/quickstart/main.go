// Quickstart: a tiny shared-memory program on a simulated Cashmere-2L
// cluster. Every processor writes one word of a shared page; after a
// barrier every processor reads all of them back.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"cashmere"
)

func main() {
	cfg := cashmere.Config{
		Nodes:        4,
		ProcsPerNode: 2,
		Protocol:     cashmere.TwoLevel,
		SharedWords:  1 << 14,
	}
	c, err := cashmere.New(cfg)
	if err != nil {
		log.Fatal(err)
	}
	res := c.Run(func(p *cashmere.Proc) {
		p.Store(p.ID(), int64(100+p.ID()))
		p.Barrier()
		sum := int64(0)
		for i := 0; i < p.NProcs(); i++ {
			sum += p.Load(i)
		}
		if p.ID() == 0 {
			fmt.Printf("proc 0 sees sum = %d\n", sum)
		}
	})
	fmt.Printf("virtual execution time: %.3f ms over %d processors\n",
		res.ExecSeconds()*1000, res.Procs)
	fmt.Printf("page transfers: %d, data moved: %.2f MB\n",
		res.Counts[4], res.DataMB())
}
